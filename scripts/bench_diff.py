#!/usr/bin/env python3
"""Diff two BENCH_mcheck.json files and fail on model-checker regressions.

Usage: bench_diff.py BASELINE CURRENT [--delta OUT.json]

The bench's verdicts, state counts and prune counts are deterministic
(seeded exploration, fixed configs), so compared against a committed
baseline:

  - a verdict change on any (name, kind, engine, n, extra) entry fails;
  - growth in states explored fails (the memoization or the
    partial-order reduction lost ground);
  - an entry present in the baseline but missing from the current run
    fails (a silent sweep cap crept back in);
  - new entries and wall-time changes are reported, never asserted
    (CI runners are noisy).

Exit status 0 = no regression, 1 = regression, 2 = usage/IO error.
Stdlib only.
"""

import argparse
import json
import sys


def key(entry):
    extra = tuple(
        sorted(
            (k, v)
            for k, v in entry.items()
            if k
            not in (
                "name",
                "kind",
                "engine",
                "n",
                "verdict",
                "runs",
                "states",
                "pruned",
                "pruned_dedup",
                "pruned_por",
                "truncated",
                "trunc_reason",
                "wall_s",
                "wall_hint_s",
                "states_per_sec",
            )
        )
    )
    return (entry["name"], entry["kind"], entry["engine"], entry["n"], extra)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    entries = {}
    for e in doc.get("entries", []):
        entries[key(e)] = e
    return doc.get("schema", "?"), entries


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--delta", help="write a JSON delta report here")
    args = ap.parse_args()

    try:
        base_schema, base = load(args.baseline)
        cur_schema, cur = load(args.current)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"bench_diff: cannot read inputs: {exc}", file=sys.stderr)
        return 2

    regressions = []
    changes = []

    for k, b in sorted(base.items()):
        label = "{} {} engine={} n={} {}".format(*k)
        c = cur.get(k)
        if c is None:
            regressions.append(f"{label}: entry disappeared from the sweep")
            continue
        if c["verdict"] != b["verdict"]:
            regressions.append(
                f"{label}: verdict {b['verdict']} -> {c['verdict']}"
            )
        if c["states"] > b["states"]:
            regressions.append(
                f"{label}: states explored grew {b['states']} -> {c['states']}"
            )
        elif c["states"] != b["states"]:
            changes.append(
                f"{label}: states {b['states']} -> {c['states']}"
            )
        if c.get("truncated") and not b.get("truncated"):
            regressions.append(
                f"{label}: now truncated ({c.get('trunc_reason', '?')})"
            )

    added = [k for k in cur if k not in base]
    for k in sorted(added):
        changes.append("{} {} engine={} n={} {}: new entry".format(*k))

    report = {
        "baseline_schema": base_schema,
        "current_schema": cur_schema,
        "regressions": regressions,
        "changes": changes,
        "status": "fail" if regressions else "ok",
    }
    if args.delta:
        with open(args.delta, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    for line in changes:
        print(f"note: {line}")
    for line in regressions:
        print(f"REGRESSION: {line}")
    print(
        f"bench_diff: {len(base)} baseline entries, {len(cur)} current, "
        f"{len(regressions)} regression(s)"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
