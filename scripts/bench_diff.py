#!/usr/bin/env python3
"""Diff two bench JSON files and fail on deterministic regressions.

Usage: bench_diff.py BASELINE CURRENT [--delta OUT.json]

Both inputs must carry the same kind of schema; the mode is picked from
it automatically.

cfc-mcheck-bench (BENCH_mcheck.json, schema /4): verdicts, state counts
and prune counts are deterministic (seeded exploration, fixed configs),
so against a committed baseline:

  - a verdict change on any (name, kind, engine, n, extra) entry fails;
  - growth in states explored fails (the memoization, the partial-order
    reduction or the symmetry canonicalisation lost ground) — except on
    share_seen=1 rows, whose state counts depend on worker timing (the
    verdict does not) and are only noted;
  - an entry present in the baseline but missing from the current run
    fails (a silent sweep cap crept back in);
  - an exhaustive baseline entry coming back truncated fails — this is
    the n=4 tournament-lock headline gate (the bench itself also
    refuses to write such a row);
  - new entries and wall-time changes are reported, never asserted
    (CI runners are noisy).

cfc-native-bench (BENCH_native.json): wall-clock columns are noisy on CI
runners and never asserted, but two families of fields are deterministic
and gated on every row present in both files (a --quick run sweeps a
subset of the full baseline, so missing rows are only noted):

  - "entries": an exclusion_ok flip fails (the witness saw a lost
    update);
  - "recoverable": an exclusion_ok flip under crash injection, growth of
    recovery_rmr_max (the cold-cache recovery path got more expensive),
    or a change of predicted_rmr_held (the closed form silently moved)
    fails.

cfc-kv-bench (BENCH_kv.json): the sharded KV service on two drivers.

  - "wheel_entries" keyed (name, clients, theta, mix) are fully
    deterministic (seeded wheel runs) except wall_s: a nonzero
    lost_updates/torn_scans fails (a bucket lock dropped a mutation), a
    growth of entry_steps_max fails, any other deterministic field
    change is noted; a baseline row missing from the current run fails
    when both files were produced in the same mode (same "quick" flag)
    and is a note otherwise (full baselines carry 4096-client rows a
    --quick CI run does not sweep);
  - "native_entries" keyed (name, domains, theta, mix): an exclusion_ok
    flip fails; throughput is wall-clock and CI schedulers routinely
    swing it 100x, so only a 1000x collapse against the baseline fails
    (the total-collapse detector — a livelocked lock, not a noisy
    neighbour);
  - a determinism_ok flip to false fails on its own.

cfc-scale-bench (BENCH_scale.json): everything except wall_s is
deterministic (seeded wheel runs, exact streaming measures), and a
--quick run sweeps a subset of the n values, so missing rows are notes
and rows present in both files are gated:

  - "cf_entries" keyed (name, n): an ok flip or a false ok fails (a
    measured contention-free count diverged from the registered closed
    form); any change of cf_steps or cf_registers fails (the solo path
    itself moved — intentional algorithm changes must refresh the
    baseline);
  - "chaos_entries" keyed (name, n): growth of entry_steps_max or
    recovery_rmr_max fails (the crash-recovery curve regressed); other
    deterministic field changes are noted;
  - a determinism_ok flip to false fails on its own.

cfc-lint (lint_report.json): the static-analysis verdicts are fully
deterministic, so every change against the committed baseline is
intentional or a regression.  Subjects are keyed (family, name, config):

  - a subject present in the baseline but missing from the current
    report fails (the battery silently shrank);
  - a flip of liveness, spin_class or replay_safe fails;
  - growth of the harmful race count fails (total race count changes
    are notes — adding a register legitimately adds Sync pairs);
  - a register vanishing or changing its required semantics
    (safe/regular/atomic) fails;
  - growth of a subject's error-severity violation count, or of the
    report-wide error total, fails;
  - new subjects and new registers are notes.

Exit status 0 = no regression, 1 = regression, 2 = usage/IO error.
Stdlib only.
"""

import argparse
import json
import sys


def key(entry):
    extra = tuple(
        sorted(
            (k, v)
            for k, v in entry.items()
            if k
            not in (
                "name",
                "kind",
                "engine",
                "n",
                "verdict",
                "runs",
                "states",
                "pruned",
                "pruned_dedup",
                "pruned_sym",
                "pruned_por",
                "fp_collisions",
                "seen_pop",
                "seen_cap",
                "truncated",
                "trunc_reason",
                "wall_s",
                "wall_hint_s",
                "states_per_sec",
            )
        )
    )
    return (entry["name"], entry["kind"], entry["engine"], entry["n"], extra)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc


def index(rows, key_fn):
    out = {}
    for e in rows:
        out[key_fn(e)] = e
    return out


def diff_mcheck(base_doc, cur_doc, regressions, changes):
    base = index(base_doc.get("entries", []), key)
    cur = index(cur_doc.get("entries", []), key)

    for k, b in sorted(base.items()):
        label = "{} {} engine={} n={} {}".format(*k)
        c = cur.get(k)
        if c is None:
            regressions.append(f"{label}: entry disappeared from the sweep")
            continue
        if c["verdict"] != b["verdict"]:
            regressions.append(
                f"{label}: verdict {b['verdict']} -> {c['verdict']}"
            )
        pooled = c.get("share_seen") == 1
        if c["states"] > b["states"] and not pooled:
            regressions.append(
                f"{label}: states explored grew {b['states']} -> {c['states']}"
            )
        elif c["states"] != b["states"]:
            changes.append(
                f"{label}: states {b['states']} -> {c['states']}"
            )
        if c.get("truncated") and not b.get("truncated"):
            regressions.append(
                f"{label}: now truncated ({c.get('trunc_reason', '?')})"
            )

    added = [k for k in cur if k not in base]
    for k in sorted(added):
        changes.append("{} {} engine={} n={} {}: new entry".format(*k))
    return len(base), len(cur)


# The native sweep's size depends on the run mode (--quick sweeps fewer
# domain counts and rounds than the committed full baseline), so keys
# deliberately exclude [rounds] and a baseline row absent from the
# current run is a note, not a failure.  Only rows present in both are
# gated, and only on their deterministic fields.
def native_entry_key(e):
    return (e["name"], e["domains"], e["mean_think"])


def native_rec_key(e):
    return (e["name"], e["domains"], e["crash_every"])


def diff_native(base_doc, cur_doc, regressions, changes):
    base = index(base_doc.get("entries", []), native_entry_key)
    cur = index(cur_doc.get("entries", []), native_entry_key)
    for k, b in sorted(base.items()):
        label = "{} domains={} think={}".format(*k)
        c = cur.get(k)
        if c is None:
            changes.append(f"{label}: not in current sweep (mode mismatch?)")
            continue
        if b["exclusion_ok"] and not c["exclusion_ok"]:
            regressions.append(f"{label}: exclusion_ok flipped true -> false")
    for k in sorted(set(cur) - set(base)):
        changes.append("{} domains={} think={}: new entry".format(*k))

    rbase = index(base_doc.get("recoverable", []), native_rec_key)
    rcur = index(cur_doc.get("recoverable", []), native_rec_key)
    for k, b in sorted(rbase.items()):
        label = "recoverable {} domains={} crash_every={}".format(*k)
        c = rcur.get(k)
        if c is None:
            changes.append(f"{label}: not in current sweep (mode mismatch?)")
            continue
        if b["exclusion_ok"] and not c["exclusion_ok"]:
            regressions.append(
                f"{label}: exclusion_ok flipped true -> false under crashes"
            )
        if c["recovery_rmr_max"] > b["recovery_rmr_max"]:
            regressions.append(
                f"{label}: recovery_rmr_max grew "
                f"{b['recovery_rmr_max']} -> {c['recovery_rmr_max']}"
            )
        if c["predicted_rmr_held"] != b["predicted_rmr_held"]:
            regressions.append(
                f"{label}: predicted_rmr_held changed "
                f"{b['predicted_rmr_held']} -> {c['predicted_rmr_held']}"
            )
        if c["recoveries"] != b["recoveries"]:
            changes.append(
                f"{label}: recoveries {b['recoveries']} -> {c['recoveries']}"
            )
    for k in sorted(set(rcur) - set(rbase)):
        changes.append(
            "recoverable {} domains={} crash_every={}: new entry".format(*k)
        )
    return len(base) + len(rbase), len(cur) + len(rcur)


def scale_key(e):
    return (e["name"], e["n"])


def diff_scale(base_doc, cur_doc, regressions, changes):
    base = index(base_doc.get("cf_entries", []), scale_key)
    cur = index(cur_doc.get("cf_entries", []), scale_key)
    for k, b in sorted(base.items()):
        label = "cf {} n={}".format(*k)
        c = cur.get(k)
        if c is None:
            changes.append(f"{label}: not in current sweep (mode mismatch?)")
            continue
        if not c["ok"]:
            regressions.append(
                f"{label}: closed-form mismatch (cf_steps={c['cf_steps']} "
                f"predicted={c['predicted_steps']}, "
                f"cf_registers={c['cf_registers']} "
                f"predicted={c['predicted_registers']})"
            )
        for field in ("cf_steps", "cf_registers"):
            if c[field] != b[field]:
                regressions.append(
                    f"{label}: {field} changed {b[field]} -> {c[field]} "
                    f"(solo path moved; refresh the baseline if intended)"
                )
    for k in sorted(set(cur) - set(base)):
        changes.append("cf {} n={}: new entry".format(*k))

    cbase = index(base_doc.get("chaos_entries", []), scale_key)
    ccur = index(cur_doc.get("chaos_entries", []), scale_key)
    for k, b in sorted(cbase.items()):
        label = "chaos {} n={}".format(*k)
        c = ccur.get(k)
        if c is None:
            changes.append(f"{label}: not in current sweep (mode mismatch?)")
            continue
        for field in ("entry_steps_max", "recovery_rmr_max"):
            if c[field] > b[field]:
                regressions.append(
                    f"{label}: {field} grew {b[field]} -> {c[field]}"
                )
        for field in (
            "acquisitions",
            "crashes",
            "recoveries",
            "recovery_steps_max",
            "events",
            "spawned",
            "live_peak",
        ):
            if c[field] != b[field]:
                changes.append(
                    f"{label}: {field} {b[field]} -> {c[field]}"
                )
    for k in sorted(set(ccur) - set(cbase)):
        changes.append("chaos {} n={}: new entry".format(*k))

    if not cur_doc.get("determinism_ok", True):
        regressions.append(
            "determinism_ok is false: same seed no longer reproduces the "
            "chaos run bit for bit"
        )
    return len(base) + len(cbase), len(cur) + len(ccur)


def kv_wheel_key(e):
    return (e["name"], e["clients"], e["theta"], e["mix"])


def kv_native_key(e):
    return (e["name"], e["domains"], e["theta"], e["mix"])


KV_WHEEL_DET_FIELDS = (
    "ops",
    "acquisitions",
    "hot_share",
    "turns",
    "total_steps",
    "spawned",
    "live_peak",
)


def diff_kv(base_doc, cur_doc, regressions, changes):
    same_mode = base_doc.get("quick") == cur_doc.get("quick")
    base = index(base_doc.get("wheel_entries", []), kv_wheel_key)
    cur = index(cur_doc.get("wheel_entries", []), kv_wheel_key)
    for k, b in sorted(base.items()):
        label = "kv wheel {} clients={} theta={} mix={}".format(*k)
        c = cur.get(k)
        if c is None:
            if same_mode:
                regressions.append(f"{label}: entry disappeared from the sweep")
            else:
                changes.append(f"{label}: not in current sweep (mode differs)")
            continue
        if c["lost_updates"] != 0 or c["torn_scans"] != 0:
            regressions.append(
                f"{label}: witness failure (lost_updates={c['lost_updates']} "
                f"torn_scans={c['torn_scans']})"
            )
        if c["entry_steps_max"] > b["entry_steps_max"]:
            regressions.append(
                f"{label}: entry_steps_max grew "
                f"{b['entry_steps_max']} -> {c['entry_steps_max']}"
            )
        elif c["entry_steps_max"] != b["entry_steps_max"]:
            changes.append(
                f"{label}: entry_steps_max "
                f"{b['entry_steps_max']} -> {c['entry_steps_max']}"
            )
        for field in KV_WHEEL_DET_FIELDS:
            if c[field] != b[field]:
                changes.append(f"{label}: {field} {b[field]} -> {c[field]}")
    for k in sorted(set(cur) - set(base)):
        changes.append("kv wheel {} clients={} theta={} mix={}: new entry".format(*k))

    nbase = index(base_doc.get("native_entries", []), kv_native_key)
    ncur = index(cur_doc.get("native_entries", []), kv_native_key)
    for k, b in sorted(nbase.items()):
        label = "kv native {} domains={} theta={} mix={}".format(*k)
        c = ncur.get(k)
        if c is None:
            if same_mode:
                regressions.append(f"{label}: entry disappeared from the sweep")
            else:
                changes.append(f"{label}: not in current sweep (mode differs)")
            continue
        if b["exclusion_ok"] and not c["exclusion_ok"]:
            regressions.append(f"{label}: exclusion_ok flipped true -> false")
        if b["throughput"] > 0 and c["throughput"] * 1000 < b["throughput"]:
            regressions.append(
                f"{label}: throughput collapsed "
                f"{b['throughput']:.0f} -> {c['throughput']:.0f} ops/s (>1000x)"
            )
    for k in sorted(set(ncur) - set(nbase)):
        changes.append(
            "kv native {} domains={} theta={} mix={}: new entry".format(*k)
        )

    if not cur_doc.get("determinism_ok", True):
        regressions.append(
            "determinism_ok is false: same seed no longer reproduces the "
            "wheel KV run bit for bit"
        )
    return len(base) + len(nbase), len(cur) + len(ncur)


def lint_key(e):
    return (e["family"], e["name"], e["config"])


def diff_lint(base_doc, cur_doc, regressions, changes):
    base = index(base_doc.get("subjects", []), lint_key)
    cur = index(cur_doc.get("subjects", []), lint_key)
    for k, b in sorted(base.items()):
        label = "lint {} {} [{}]".format(*k)
        c = cur.get(k)
        if c is None:
            regressions.append(f"{label}: subject vanished from the battery")
            continue
        for field in ("liveness", "spin_class", "replay_safe"):
            if c[field] != b[field]:
                regressions.append(
                    f"{label}: {field} flipped {b[field]} -> {c[field]}"
                )
        if c["races"]["harmful"] > b["races"]["harmful"]:
            regressions.append(
                f"{label}: harmful races grew "
                f"{b['races']['harmful']} -> {c['races']['harmful']}"
            )
        if c["races"]["total"] != b["races"]["total"]:
            changes.append(
                f"{label}: race count {b['races']['total']} -> "
                f"{c['races']['total']}"
            )
        bsem = {r["name"]: r["semantics"] for r in b.get("registers", [])}
        csem = {r["name"]: r["semantics"] for r in c.get("registers", [])}
        for name, sem in sorted(bsem.items()):
            if name not in csem:
                regressions.append(f"{label}: register {name} vanished")
            elif csem[name] != sem:
                regressions.append(
                    f"{label}: register {name} semantics flipped "
                    f"{sem} -> {csem[name]}"
                )
        for name in sorted(set(csem) - set(bsem)):
            changes.append(f"{label}: new register {name} ({csem[name]})")
        berr = sum(
            1 for v in b.get("violations", []) if v["severity"] == "error"
        )
        cerr = sum(
            1 for v in c.get("violations", []) if v["severity"] == "error"
        )
        if cerr > berr:
            regressions.append(
                f"{label}: error violations grew {berr} -> {cerr}"
            )
    for k in sorted(set(cur) - set(base)):
        changes.append("lint {} {} [{}]: new subject".format(*k))
    if cur_doc.get("errors", 0) > base_doc.get("errors", 0):
        regressions.append(
            f"lint: report-wide errors grew {base_doc.get('errors', 0)} -> "
            f"{cur_doc.get('errors', 0)}"
        )
    return len(base), len(cur)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--delta", help="write a JSON delta report here")
    args = ap.parse_args()

    try:
        base_doc = load(args.baseline)
        cur_doc = load(args.current)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot read inputs: {exc}", file=sys.stderr)
        return 2

    base_schema = base_doc.get("schema", "?")
    cur_schema = cur_doc.get("schema", "?")
    base_family = base_schema.split("/")[0]
    if base_family != cur_schema.split("/")[0]:
        print(
            f"bench_diff: schema mismatch {base_schema} vs {cur_schema}",
            file=sys.stderr,
        )
        return 2

    regressions = []
    changes = []
    try:
        if base_family == "cfc-native-bench":
            n_base, n_cur = diff_native(base_doc, cur_doc, regressions, changes)
        elif base_family == "cfc-scale-bench":
            n_base, n_cur = diff_scale(base_doc, cur_doc, regressions, changes)
        elif base_family == "cfc-kv-bench":
            n_base, n_cur = diff_kv(base_doc, cur_doc, regressions, changes)
        elif base_family == "cfc-lint":
            n_base, n_cur = diff_lint(base_doc, cur_doc, regressions, changes)
        else:
            n_base, n_cur = diff_mcheck(base_doc, cur_doc, regressions, changes)
    except KeyError as exc:
        print(f"bench_diff: malformed entry, missing {exc}", file=sys.stderr)
        return 2

    report = {
        "baseline_schema": base_schema,
        "current_schema": cur_schema,
        "regressions": regressions,
        "changes": changes,
        "status": "fail" if regressions else "ok",
    }
    if args.delta:
        with open(args.delta, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    for line in changes:
        print(f"note: {line}")
    for line in regressions:
        print(f"REGRESSION: {line}")
    print(
        f"bench_diff: {n_base} baseline entries, {n_cur} current, "
        f"{len(regressions)} regression(s)"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
