(* cfc-tables: command-line front end to the reproduction.

   Subcommands:
     mutex      print Table M (symbolic + numeric at given n, l)
     naming     print Table N (symbolic + numeric at given n)
     sweep      the Theorem 1-3 sweep over n and l grids
     detect     the §2.6 contention-detection table
     unbounded  the worst-case-unbounded demonstration
     backoff    the §4 workload experiment
     mcheck     bounded-exhaustive verification of an algorithm
     cf         contention-free complexity of one algorithm
     faults     crash-recovery injection, chaos schedules, diagnostics
     native     domain-parallel lock service with RMR counters
     scale      the O(active-set) event-wheel rig at large n
     lint       static access-graph analysis gate (CI fails on errors) *)

open Cmdliner
open Cfc_base
open Cfc_mutex

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let l_arg =
  Arg.(
    value & opt int 2
    & info [ "l" ] ~docv:"L" ~doc:"Atomicity (register width in bits).")

let mutex_cmd =
  let run n l =
    Texttab.print (Cfc_core.Report.mutex_table_symbolic ());
    print_newline ();
    Texttab.print (Cfc_core.Report.mutex_table ~n ~l)
  in
  Cmd.v
    (Cmd.info "mutex" ~doc:"The paper's mutual exclusion bounds table.")
    Term.(const run $ n_arg $ l_arg)

let naming_cmd =
  let run n =
    if not (Ixmath.is_pow2 n) then
      Printf.eprintf "warning: tree algorithms need n a power of two\n";
    Texttab.print (Cfc_core.Report.naming_table_symbolic ());
    print_newline ();
    Texttab.print (Cfc_core.Report.naming_table ~n)
  in
  Cmd.v
    (Cmd.info "naming" ~doc:"The paper's naming bounds table.")
    Term.(const run $ n_arg)

let sweep_cmd =
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 16; 256; 4096 ]
      & info [ "ns" ] ~docv:"N,N,..." ~doc:"Process counts.")
  in
  let ls_arg =
    Arg.(
      value
      & opt (list int) [ 2; 4; 8 ]
      & info [ "ls" ] ~docv:"L,L,..." ~doc:"Atomicities.")
  in
  let run ns ls = Texttab.print (Cfc_core.Report.thm_sweep ~ns ~ls) in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Theorem 1-3: lower/measured/upper sweep.")
    Term.(const run $ ns_arg $ ls_arg)

let detect_cmd =
  let run n l =
    Texttab.print (Cfc_core.Report.detection_table ~ns:[ n ] ~ls:[ l ])
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Contention detection (§2.6) table.")
    Term.(const run $ n_arg $ l_arg)

let unbounded_cmd =
  let run () =
    Texttab.print
      (Cfc_core.Report.unbounded_table ~spins:[ 10; 100; 1000; 10000 ])
  in
  Cmd.v
    (Cmd.info "unbounded"
       ~doc:"Demonstrate the unbounded worst-case entry cost [AT92].")
    Term.(const run $ const ())

let alg_arg =
  let names =
    String.concat ", "
      (List.map (fun (module A : Mutex_intf.ALG) -> A.name) Registry.all)
  in
  Arg.(
    value & opt string "lamport-fast"
    & info [ "algorithm"; "a" ] ~docv:"NAME"
        ~doc:(Printf.sprintf "Mutex algorithm: one of %s." names))

let find_alg name =
  match Registry.find name with
  | Some alg -> alg
  | None ->
    Printf.eprintf "unknown algorithm %s\n" name;
    exit 2

(* Every subcommand that instantiates an algorithm must reject unsupported
   parameters with a clean message, not an OCaml backtrace. *)
let find_supported_alg name p =
  let ((module A : Mutex_intf.ALG) as alg) = find_alg name in
  if not (A.supports p) then begin
    Printf.eprintf "%s does not support n=%d l=%d\n" A.name p.Mutex_intf.n
      p.Mutex_intf.l;
    exit 2
  end;
  alg

let cf_cmd =
  let run name n l =
    let p = { Mutex_intf.n; l } in
    let ((module A : Mutex_intf.ALG) as alg) = find_supported_alg name p in
    let r = Cfc_core.Mutex_harness.contention_free alg p in
    Format.printf "%s n=%d l=%d (atomicity %d): contention-free %a@."
      A.name n l r.Cfc_core.Mutex_harness.atomicity_observed
      Cfc_core.Measures.pp_sample r.Cfc_core.Mutex_harness.max
  in
  Cmd.v
    (Cmd.info "cf" ~doc:"Contention-free complexity of one algorithm.")
    Term.(const run $ alg_arg $ n_arg $ l_arg)

(* Parallel exploration defaults to every core at the CLI; the library
   default stays 1 (sequential) so programmatic callers keep the exact
   sequential stats. *)
let domains_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Explore first-level branches on D domains (1 = sequential; \
           default: all recommended cores).")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("incremental", Cfc_mcheck.Explore.Incremental);
             ("replay", Cfc_mcheck.Explore.Replay) ])
        Cfc_mcheck.Explore.Incremental
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Exploration engine: $(b,incremental) (checkpoint/undo, default) \
           or $(b,replay) (re-execute each prefix; reference).")

let mcheck_cmd =
  let depth_arg =
    Arg.(
      value & opt int 60
      & info [ "depth" ] ~docv:"D" ~doc:"Max scheduler steps per run.")
  in
  let no_por_arg =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "Disable the access-graph partial-order reduction (explore \
             every interleaving the memoization alone would).")
  in
  let sym_arg =
    Arg.(
      value & flag
      & info [ "sym" ]
          ~doc:
            "Enable the pid-symmetry reduction: memo keys are \
             canonicalised under the admissible pid permutations derived \
             from the access-graph analysis (a no-op when no non-trivial \
             group is derivable, e.g. the pid-ordered tree scan).")
  in
  let compact_arg =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Store 2x62-bit state fingerprints instead of full keys in \
             the seen set (detected collisions are re-explored, counted, \
             and reported).")
  in
  let run name n l depth domains engine no_por sym compact =
    let alg = find_supported_alg name { Mutex_intf.n; l } in
    let config =
      { Cfc_mcheck.Explore.max_depth = depth; max_steps_per_proc = depth;
        max_states = 2_000_000 }
    in
    (* Pre-classify replay safety statically so an unsafe algorithm
       starts on the replay engine instead of burning half the search
       before the incremental engine's dynamic fallback fires. *)
    let replay_safe =
      match Cfc_analysis.Subjects.of_mutex ~l ~n alg with
      | None -> true
      | Some subject ->
        let report = Cfc_analysis.Analyze.analyze subject in
        if not report.Cfc_analysis.Analyze.replay_safe then
          Printf.printf
            "note: statically replay-unsafe; using the replay engine\n";
        report.Cfc_analysis.Analyze.replay_safe
    in
    (* The same analysis family also yields the independence hint that
       drives the partial-order reduction. *)
    let independence =
      if no_por then None
      else Cfc_mcheck.Independence.mutex alg { Mutex_intf.n; l }
    in
    let symmetry =
      if not sym then None
      else
        match Cfc_mcheck.Symmetry.mutex alg { Mutex_intf.n; l } with
        | Some _ as s -> s
        | None ->
          Printf.printf
            "note: no non-trivial symmetry group derivable; --sym is a \
             no-op\n";
          None
    in
    match
      Cfc_mcheck.Props.check_mutex ~config ~engine ~domains ~replay_safe
        ?independence ?symmetry ~compact alg { Mutex_intf.n; l }
    with
    | Cfc_mcheck.Explore.Ok stats ->
      Printf.printf
        "OK: no violation within bounds (%d maximal runs, %d states \
         explored, %d deduped, %d sym-merged, %d por-pruned, seen %d/%d%s%s)\n"
        stats.Cfc_mcheck.Explore.runs stats.Cfc_mcheck.Explore.states
        stats.Cfc_mcheck.Explore.pruned_dedup
        stats.Cfc_mcheck.Explore.pruned_sym
        stats.Cfc_mcheck.Explore.pruned_por
        stats.Cfc_mcheck.Explore.seen_pop stats.Cfc_mcheck.Explore.seen_cap
        (if stats.Cfc_mcheck.Explore.fp_collisions > 0 then
           Printf.sprintf ", %d fp collisions re-explored"
             stats.Cfc_mcheck.Explore.fp_collisions
         else "")
        (if stats.Cfc_mcheck.Explore.truncated then ", some branches truncated"
         else "")
    | Cfc_mcheck.Explore.Violation { schedule; violation; _ } ->
      Format.printf "VIOLATION: %a@.schedule: %s@." Cfc_core.Spec.pp_violation
        violation
        (String.concat "," (List.map string_of_int schedule));
      exit 1
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:"Bounded-exhaustive mutual exclusion verification.")
    Term.(
      const run $ alg_arg $ n_arg $ l_arg $ depth_arg $ domains_arg
      $ engine_arg $ no_por_arg $ sym_arg $ compact_arg)

let trace_cmd =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Random schedule seed.")
  in
  let limit_arg =
    Arg.(
      value & opt int 60
      & info [ "limit" ] ~docv:"K" ~doc:"Print at most K events.")
  in
  let run name n l seed limit =
    let alg = find_supported_alg name { Mutex_intf.n; l } in
    let out =
      Cfc_core.Mutex_harness.run
        ~pick:(Cfc_runtime.Schedule.random ~seed)
        alg { Mutex_intf.n; l }
    in
    let printed = ref 0 in
    Cfc_runtime.Trace.iter
      (fun e ->
        if !printed < limit then begin
          incr printed;
          Format.printf "%a@." Cfc_runtime.Event.pp e
        end)
      out.Cfc_runtime.Runner.trace;
    Printf.printf "... (%d events total, %d shared accesses)\n"
      (Cfc_runtime.Trace.length out.Cfc_runtime.Runner.trace)
      out.Cfc_runtime.Runner.total_steps
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the event trace of a contended run.")
    Term.(const run $ alg_arg $ n_arg $ l_arg $ seed_arg $ limit_arg)

let backoff_cmd =
  let run n =
    Texttab.print
      (Cfc_workload.Workload_report.backoff_table ~n ~rounds:50
         ~thinks:[ 0; 10; 100 ] ~seed:11
         ~algs:[ Registry.lamport_fast; Registry.backoff; Registry.bakery ])
  in
  Cmd.v
    (Cmd.info "backoff" ~doc:"The §4 backoff workload experiment.")
    Term.(const run $ n_arg)

let faults_cmd =
  let seeds_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4; 5 ]
      & info [ "seeds" ] ~docv:"S,S,..." ~doc:"Chaos schedule seeds.")
  in
  let pairs_arg =
    Arg.(
      value & opt int 2
      & info [ "pairs" ] ~docv:"K"
          ~doc:"Crash-recovery pairs injected per run.")
  in
  (* Default: every recoverable lock in the registry; a new recoverable
     algorithm is exercised by this subcommand the moment it registers.
     [-a NAME] restricts to one lock (which must be recoverable). *)
  let rec_alg_arg =
    let names =
      String.concat ", "
        (List.map
           (fun (module A : Mutex_intf.ALG) -> A.name)
           Registry.recoverable)
    in
    Arg.(
      value & opt (some string) None
      & info [ "algorithm"; "a" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Restrict to one recoverable lock (one of %s); default: all."
               names))
  in
  let run name n pairs seeds domains =
    let p = Mutex_intf.params n in
    let algs =
      match name with
      | Some name ->
        let ((module A : Mutex_intf.ALG) as alg) = find_supported_alg name p in
        if A.recovery p = None then begin
          Printf.eprintf "%s is not a recoverable lock\n" A.name;
          exit 2
        end;
        [ alg ]
      | None ->
        List.filter
          (fun (module A : Mutex_intf.ALG) -> A.supports p)
          Registry.recoverable
    in
    Texttab.print
      (Cfc_core.Report.recoverable_table
         ~ns:(List.sort_uniq compare [ 2; 4; 8; n ]));
    List.iter
      (fun ((module A : Mutex_intf.ALG) as alg) ->
        print_newline ();
        (* Bounded-exhaustive verification under the fault model, ahead of
           the randomized chaos schedules below. *)
        (match
           Cfc_mcheck.Props.check_mutex_recoverable ~domains ~pairs alg p
         with
        | Cfc_mcheck.Explore.Ok stats ->
          Printf.printf
            "mcheck %s: recoverable mutual exclusion holds within bounds \
             (%d states, %d pruned%s)\n"
            A.name stats.Cfc_mcheck.Explore.states
            stats.Cfc_mcheck.Explore.pruned_dedup
            (if stats.Cfc_mcheck.Explore.truncated then ", truncated" else "")
        | Cfc_mcheck.Explore.Violation { schedule; violation; _ } ->
          Format.printf "mcheck %s VIOLATION: %a@.schedule: %s@." A.name
            Cfc_core.Spec.pp_violation violation
            (String.concat ","
               (List.map
                  (Format.asprintf "%a" Cfc_mcheck.Explore.pp_action)
                  schedule));
          exit 1);
        print_newline ();
        Printf.printf
          "chaos runs: %s, n=%d, %d crash-recovery pairs per seed\n" A.name n
          pairs;
        let table, stalled =
          Cfc_core.Report.faults_table ~alg ~n ~pairs ~seeds
        in
        Texttab.print table;
        match stalled with
        | None -> ()
        | Some out ->
          print_newline ();
          print_string "diagnosis of the first stalled run:\n";
          Format.printf "%a@." Cfc_runtime.Runner.pp_diagnosis out)
      algs
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Crash-recovery fault injection: every recoverable lock's \
          predicted-vs-measured recovery paths, seeded chaos schedules, \
          and stall diagnostics.")
    Term.(const run $ rec_alg_arg $ n_arg $ pairs_arg $ seeds_arg $ domains_arg)

let native_cmd =
  let domains_list_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4 ]
      & info [ "domains" ] ~docv:"D,D,..." ~doc:"Worker domain counts.")
  in
  let thinks_arg =
    Arg.(
      value
      & opt (list int) [ 0; 20 ]
      & info [ "thinks" ] ~docv:"T,T,..."
          ~doc:"Mean geometric think times (cpu_relax turns).")
  in
  let rounds_arg =
    Arg.(
      value & opt int 2_000
      & info [ "rounds" ] ~docv:"R" ~doc:"Acquisitions per domain.")
  in
  let run name domain_counts thinks rounds =
    let ((module A : Mutex_intf.ALG) as alg) = find_alg name in
    let t =
      Texttab.create
        ~header:[ "domains"; "think"; "acq/s"; "p50 ns"; "p90 ns"; "p99 ns";
                  "max ns"; "rmr/acq"; "cas fail"; "excl" ]
    in
    List.iter
      (fun domains ->
        if A.supports (Mutex_intf.params (max 2 domains)) then
          List.iter
            (fun mean_think ->
              let r =
                Cfc_native.Lock_service.run alg
                  { Cfc_native.Lock_service.domains; rounds; mean_think;
                    cs_len = 3; seed = 42; crash_every = 0 }
              in
              let open Cfc_native.Lock_service in
              Texttab.add_row t
                [ string_of_int domains; string_of_int mean_think;
                  Printf.sprintf "%.0f" r.throughput;
                  Printf.sprintf "%.0f" r.p50_ns;
                  Printf.sprintf "%.0f" r.p90_ns;
                  Printf.sprintf "%.0f" r.p99_ns;
                  string_of_int r.max_ns;
                  Printf.sprintf "%.2f" r.rmr_per_acq;
                  string_of_int r.counters.Cfc_native.Instr_mem.cas_failures;
                  (if r.exclusion_ok then "ok" else "VIOLATED") ])
            thinks
        else
          Printf.eprintf "%s: skipping domains=%d (unsupported)\n" A.name
            domains)
      domain_counts;
    Printf.printf
      "%s on the instrumented native backend (%d rounds/domain, \
       write-invalidate RMR estimate):\n"
      A.name rounds;
    Texttab.print t
  in
  Cmd.v
    (Cmd.info "native"
       ~doc:
         "Domain-parallel lock service on the instrumented native backend: \
          throughput, acquisition-latency percentiles, and \
          RMR-per-acquisition.")
    Term.(const run $ alg_arg $ domains_list_arg $ thinks_arg $ rounds_arg)

let models_cmd =
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"List every one of the 256 models instead of the summary.")
  in
  let run all =
    let atlas = Cfc_naming.Model_atlas.all () in
    if all then begin
      let t =
        Texttab.create
          ~header:[ "model"; "c-f reg"; "c-f step"; "w-c reg"; "w-c step";
                    "witness" ]
      in
      List.iter
        (fun (m, c) ->
          match c with
          | Cfc_naming.Model_atlas.Unsolvable ->
            Texttab.add_row t
              [ Model.to_string m; "unsolvable"; ""; ""; ""; "§3.1 symmetry" ]
          | Cfc_naming.Model_atlas.Bounds b ->
            let cell c = Format.asprintf "%a" Cfc_naming.Model_atlas.pp_cell c in
            Texttab.add_row t
              [ Model.to_string m; cell b.cf_register; cell b.cf_step;
                cell b.wc_register; cell b.wc_step; b.witness ])
        atlas;
      Texttab.print t
    end
    else begin
      Printf.printf
        "model atlas (the §3.3 exercise): %d of 256 models solvable\n\
         (the 32 breaker-free models — every op either never modifies or\n\
         never returns — cannot break symmetry).\n\n\
         equivalence classes of the solvable models:\n"
        (Cfc_naming.Model_atlas.solvable_count ());
      let classes = Hashtbl.create 8 in
      List.iter
        (fun (_, c) ->
          match c with
          | Cfc_naming.Model_atlas.Unsolvable -> ()
          | Cfc_naming.Model_atlas.Bounds b ->
            let key =
              (b.cf_register, b.cf_step, b.wc_register, b.wc_step)
            in
            Hashtbl.replace classes key
              (1 + Option.value ~default:0 (Hashtbl.find_opt classes key)))
        atlas;
      let t =
        Texttab.create
          ~header:[ "c-f reg"; "c-f step"; "w-c reg"; "w-c step"; "#models" ]
      in
      Hashtbl.iter
        (fun (a, b, c, d) count ->
          let cell x =
            Format.asprintf "%a" Cfc_naming.Model_atlas.pp_cell x
          in
          Texttab.add_row t
            [ cell a; cell b; cell c; cell d; string_of_int count ])
        classes;
      Texttab.print t;
      print_string "use --all for the full 256-row table.\n"
    end
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:"Classify all 256 operation models (the §3.3 exercise).")
    Term.(const run $ all_arg)

let scale_cmd =
  let n_arg =
    Arg.(
      value & opt int 4096
      & info [ "n" ] ~docv:"N" ~doc:"Number of processes (clients).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Root seed (think-time streams and the chaos plan).")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Run the crash-recovery workload (recoverable locks only) \
             instead of the contention-free curve.")
  in
  let pairs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "pairs" ] ~docv:"K"
          ~doc:"Crash-recovery pairs for --chaos (default: one per client).")
  in
  let scale_alg_arg =
    Arg.(
      value & opt (some string) None
      & info [ "algorithm"; "a" ] ~docv:"NAME"
          ~doc:"Restrict to one algorithm; default: every supporting one.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the rows as JSON (BENCH_scale.json row format).")
  in
  let run name n seed chaos pairs json =
    let p = Mutex_intf.params n in
    let algs =
      match name with
      | Some name ->
        let ((module A : Mutex_intf.ALG) as alg) = find_supported_alg name p in
        if chaos && A.recovery p = None then begin
          Printf.eprintf "%s is not a recoverable lock\n" A.name;
          exit 2
        end;
        [ alg ]
      | None ->
        List.filter
          (fun (module A : Mutex_intf.ALG) ->
            A.supports p && ((not chaos) || A.recovery p <> None))
          (if chaos then Registry.recoverable else Registry.all)
    in
    if algs = [] then begin
      Printf.eprintf "no algorithm supports n=%d%s\n" n
        (if chaos then " with recovery" else "");
      exit 2
    end;
    let open Cfc_workload in
    let write_json rows =
      match json with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" rows);
        close_out oc;
        Printf.printf "wrote %s\n" path
    in
    if chaos then begin
      let pairs = match pairs with Some k -> k | None -> n in
      let sc =
        { Workload.sc_n = n; sc_rounds = 2; sc_mean_think = 4 * n;
          sc_cs_len = 3; sc_seed = seed; sc_chaos_pairs = pairs }
      in
      let rows = List.map (fun alg -> Workload_report.scale_chaos_row alg sc) algs in
      Printf.printf
        "chaos rig: n=%d clients, %d crash-recovery pairs, seed=%d \
         (deterministic; the exclusion monitor runs streamed)\n"
        n pairs seed;
      Texttab.print (Workload_report.scale_chaos_table rows);
      write_json (List.map Workload_report.json_of_scale_chaos_row rows)
    end
    else begin
      let rows =
        List.map (fun alg -> Workload_report.scale_cf_row alg ~n) algs
      in
      Printf.printf
        "streaming contention-free curve at n=%d (event wheel, no trace; \
         checked against the registered closed forms)\n"
        n;
      Texttab.print (Workload_report.scale_cf_table rows);
      write_json (List.map Workload_report.json_of_scale_cf_row rows);
      if List.exists (fun r -> not r.Workload_report.scf_ok) rows then begin
        Printf.eprintf "closed-form mismatch (see the table)\n";
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "The O(active-set) event-wheel rig: streaming contention-free \
          measurements at large n, or ([--chaos]) thousands of seeded \
          crash-recovering clients against a recoverable lock.")
    Term.(
      const run $ scale_alg_arg $ n_arg $ seed_arg $ chaos_arg $ pairs_arg
      $ json_arg)

let kv_cmd =
  let alg_arg =
    Arg.(
      value & opt string "mcs-lock"
      & info [ "algorithm"; "a" ] ~docv:"NAME"
          ~doc:"The registry lock guarding every bucket.")
  in
  let driver_arg =
    Arg.(
      value
      & opt (enum [ ("wheel", `Wheel); ("native", `Native) ]) `Wheel
      & info [ "driver" ] ~docv:"DRIVER"
          ~doc:
            "$(b,wheel): deterministic event-wheel clients with per-shard \
             streaming measures; $(b,native): domain-parallel with \
             latency histograms and the RMR estimate.")
  in
  let clients_arg =
    Arg.(
      value & opt int 256
      & info [ "clients"; "n" ] ~docv:"N"
          ~doc:"Simulated clients (wheel) or worker domains (native).")
  in
  let buckets_arg =
    Arg.(
      value & opt int 16
      & info [ "buckets" ] ~docv:"B" ~doc:"Shards, one lock each.")
  in
  let keys_arg =
    Arg.(value & opt int 4096 & info [ "keys" ] ~docv:"K" ~doc:"Key space.")
  in
  let ops_arg =
    Arg.(
      value & opt int 8
      & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per client.")
  in
  let theta_arg =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~docv:"THETA"
          ~doc:"Zipf skew: 0 uniform, 0.99 YCSB-zipfian.")
  in
  let mix_arg =
    Arg.(
      value & opt string "A"
      & info [ "mix" ] ~docv:"MIX" ~doc:"YCSB mix: A, B, C or E.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed.")
  in
  let run name driver clients buckets keys ops theta mix seed =
    let open Cfc_workload in
    let mix =
      match Ycsb.mix_of_name mix with
      | Some m -> m
      | None ->
        Printf.eprintf "unknown mix %s (A, B, C or E)\n" mix;
        exit 2
    in
    let p = Mutex_intf.params (max 2 clients) in
    let alg = find_supported_alg name p in
    let pct x = Printf.sprintf "%.0f" x in
    match driver with
    | `Wheel ->
      let kc =
        { Kv_sim.kc_clients = clients; kc_buckets = buckets; kc_keys = keys;
          kc_ops = ops; kc_mean_think = 4 * clients; kc_theta = theta;
          kc_mix = mix; kc_seed = seed }
      in
      let r = Kv_sim.run alg kc in
      Printf.printf
        "sharded KV on the event wheel: %d clients, %d buckets, %d keys, \
         mix %s, theta=%.2f, seed=%d (deterministic)\n\
         ops=%d acquisitions=%d lost_updates=%d torn_scans=%d \
         hot_share=%.3f turns=%d steps=%d live_peak=%d\n"
        clients buckets keys mix.Ycsb.mix_name theta seed r.Kv_sim.kr_ops
        r.kr_acquisitions r.kr_lost_updates r.kr_torn_scans r.kr_hot_share
        r.kr_turns r.kr_total_steps r.kr_live_peak;
      let t =
        Texttab.create
          ~header:
            [ "shard"; "ops"; "read"; "upd"; "scan"; "rmw"; "acq";
              "entry max"; "entry mean"; "events" ]
      in
      Array.iteri
        (fun b (s : Kv_sim.shard_stat) ->
          Texttab.add_row t
            [ string_of_int b; string_of_int s.Kv_sim.ss_ops;
              string_of_int s.ss_reads; string_of_int s.ss_updates;
              string_of_int s.ss_scans; string_of_int s.ss_rmws;
              string_of_int s.ss_acquisitions;
              string_of_int s.ss_entry_steps_max;
              Printf.sprintf "%.1f" s.ss_entry_steps_mean;
              string_of_int s.ss_events ])
        r.kr_shards;
      Texttab.print t
    | `Native ->
      let c =
        { Cfc_native.Kv_service.domains = clients; buckets; keys; ops;
          mean_think = 10; theta; mix; seed }
      in
      let r = Cfc_native.Kv_service.run alg c in
      let open Cfc_native.Kv_service in
      Printf.printf
        "sharded KV, domain-parallel: %d domains, %d buckets, %d keys, \
         mix %s, theta=%.2f, seed=%d\n\
         ops=%d throughput=%.0f/s p50=%.0fns p99=%.0fns rmr/op=%.3f \
         lost_updates=%d torn_scans=%d exclusion=%s hot_share=%.3f\n"
        clients buckets keys mix.Ycsb.mix_name theta seed r.total_ops
        r.throughput r.p50_ns r.p99_ns r.rmr_per_op r.lost_updates
        r.torn_scans
        (if r.exclusion_ok then "ok" else "VIOLATED")
        r.hot_share;
      let t =
        Texttab.create
          ~header:
            [ "shard"; "ops"; "read"; "upd"; "scan"; "rmw"; "p50 ns";
              "p99 ns"; "max ns" ]
      in
      Array.iteri
        (fun b s ->
          Texttab.add_row t
            [ string_of_int b; string_of_int s.ks_ops;
              string_of_int s.ks_reads; string_of_int s.ks_updates;
              string_of_int s.ks_scans; string_of_int s.ks_rmws;
              pct s.ks_p50_ns; pct s.ks_p99_ns; string_of_int s.ks_max_ns ])
        r.shards;
      Texttab.print t;
      if not r.exclusion_ok then exit 1
  in
  Cmd.v
    (Cmd.info "kv"
       ~doc:
         "Sharded lock-backed KV service under Zipfian YCSB traffic \
          (EXP-KV): every bucket guarded by one registry lock, driven \
          deterministically on the event wheel or domain-parallel with \
          the RMR estimate.")
    Term.(
      const run $ alg_arg $ driver_arg $ clients_arg $ buckets_arg
      $ keys_arg $ ops_arg $ theta_arg $ mix_arg $ seed_arg)

let lint_cmd =
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the JSON report to $(docv) ('-' for stdout).")
  in
  let fixtures_arg =
    Arg.(
      value & flag
      & info [ "fixtures" ]
          ~doc:
            "Include the deliberately broken fixtures; the gate must then \
             exit nonzero.")
  in
  let run json fixtures =
    let outcome = Cfc_analysis.Lint.run ~fixtures () in
    (* With the JSON report on stdout, keep stdout machine-readable and
       let the table go to callers that asked for a file (or nothing). *)
    (match json with
    | Some "-" -> print_string (Cfc_analysis.Lint.to_json outcome)
    | Some path ->
      Cfc_analysis.Lint.print outcome;
      let oc = open_out path in
      output_string oc (Cfc_analysis.Lint.to_json outcome);
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> Cfc_analysis.Lint.print outcome);
    Stdlib.exit (Cfc_analysis.Lint.exit_code outcome)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis gate: symbolic access-graph CF complexity vs \
          closed forms and traces, atomicity conformance, spin structure, \
          replay safety, and the determinism source scan.")
    Term.(const run $ json_arg $ fixtures_arg)

let races_cmd =
  let fixtures_arg =
    Arg.(
      value & flag
      & info [ "fixtures" ]
          ~doc:"Include the deliberately broken fixtures.")
  in
  let subject_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "subject" ] ~docv:"NAME"
          ~doc:"Only subjects whose algorithm name contains $(docv).")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Print the full per-subject race/wakeup/register tables.")
  in
  let run fixtures subject verbose =
    let subjects =
      Cfc_analysis.Subjects.registry ()
      @ (if fixtures then Cfc_analysis.Fixtures.subjects () else [])
    in
    let subjects =
      match subject with
      | None -> subjects
      | Some s ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec at i =
            i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
          in
          at 0
        in
        List.filter
          (fun (x : Cfc_analysis.Subjects.t) -> contains x.alg_name s)
          subjects
    in
    let harmful_total = ref 0 in
    let summary =
      Texttab.create
        ~header:
          [ "algorithm"; "config"; "liveness"; "races"; "harmful"; "benign";
            "atomic-req" ]
    in
    List.iter
      (fun (s : Cfc_analysis.Subjects.t) ->
        let report = Cfc_analysis.Analyze.analyze s in
        let p = Cfc_analysis.Product.of_report report in
        let harmful = Cfc_analysis.Product.harmful p in
        harmful_total := !harmful_total + List.length harmful;
        let benign =
          List.length
            (List.filter
               (fun (r : Cfc_analysis.Product.race) ->
                 r.r_verdict <> Cfc_analysis.Product.Sync
                 && r.r_verdict <> Cfc_analysis.Product.Harmful)
               p.races)
        in
        let atomic_req =
          List.filter
            (fun (g : Cfc_analysis.Product.reg_verdict) ->
              g.g_semantics = Cfc_analysis.Product.Atomic_required)
            p.registers
        in
        Texttab.add_row summary
          [
            s.alg_name; s.config;
            Cfc_analysis.Product.liveness_name p.liveness;
            string_of_int (List.length p.races);
            string_of_int (List.length harmful);
            string_of_int benign;
            String.concat ","
              (List.map
                 (fun (g : Cfc_analysis.Product.reg_verdict) -> g.g_name)
                 atomic_req);
          ];
        if verbose then Cfc_analysis.Product.print p
        else
          List.iter
            (fun (r : Cfc_analysis.Product.race) ->
              Printf.printf "HARMFUL %s %s on %s: %s\n  %s: %s\n  %s: %s\n"
                s.alg_name s.config r.r_name r.r_note r.r_left.p_group
                r.r_left.p_path r.r_right.p_group r.r_right.p_path)
            harmful)
      subjects;
    Texttab.print summary;
    if !harmful_total > 0 then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Pairwise product passes over the solo access graphs: race \
          classification, spin-wakeup liveness skeleton, and \
          weaker-register sensitivity per subject.")
    Term.(const run $ fixtures_arg $ subject_arg $ verbose_arg)

let () =
  let doc =
    "Reproduction of Alur & Taubenfeld, 'Contention-Free Complexity of \
     Shared Memory Algorithms' (PODC 1994)."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "cfc-tables" ~version:"1.0.0" ~doc)
          [ mutex_cmd; naming_cmd; sweep_cmd; detect_cmd; unbounded_cmd;
            cf_cmd; mcheck_cmd; backoff_cmd; trace_cmd; faults_cmd;
            native_cmd; scale_cmd; kv_cmd; models_cmd; lint_cmd;
            races_cmd ]))
