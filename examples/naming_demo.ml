(* Naming demo: the five model columns of the paper's table, side by
   side.  Shows how the same problem costs n-1 steps with test-and-set
   alone and log n with test-and-flip — the paper's point that the four
   complexity measures tell synchronization primitives apart.

     dune exec examples/naming_demo.exe *)

open Cfc_base
open Cfc_naming

let () =
  let n = 16 in
  Format.printf
    "assigning unique names to %d identical processes (no ids!)@.@." n;
  List.iter
    (fun alg ->
      let (module A : Naming_intf.ALG) = alg in
      if A.supports ~n then begin
        let r = Cfc_core.Naming_harness.contention_free alg ~n in
        Format.printf "%-18s model=%-14s cf steps=%2d cf regs=%2d  names: %s@."
          A.name
          (Model.to_string A.model)
          r.Cfc_core.Naming_harness.max.Cfc_core.Measures.steps
          r.Cfc_core.Naming_harness.max.Cfc_core.Measures.registers
          (String.concat ","
             (Array.to_list
                (Array.map string_of_int r.Cfc_core.Naming_harness.names)))
      end)
    Registry.all;

  (* The Theorem 6 adversary: identical processes run in lockstep, so
     without test-and-flip someone is forced to take n-1 steps. *)
  Format.printf "@.lockstep adversary (Theorem 6), n=%d:@." n;
  List.iter
    (fun alg ->
      let (module A : Naming_intf.ALG) = alg in
      if A.supports ~n then
        Format.printf "  %-18s max steps under lockstep: %d%s@." A.name
          (Cfc_core.Naming_harness.lockstep_steps alg ~n)
          (if Model.mem Ops.Test_and_flip A.model then
             "  (taf: stays logarithmic)"
           else "  (>= n-1 forced without taf)"))
    [ Registry.tas_scan; Registry.taf_tree ];

  (* Wait-freedom: crash half the processes mid-run; survivors still get
     unique names. *)
  Format.printf "@.crash-tolerance (wait-freedom), n=%d, 3 crashes:@." n;
  let out =
    Cfc_core.Naming_harness.run
      ~crash_at:[ (5, 0); (9, 3); (14, 7) ]
      ~pick:(Cfc_runtime.Schedule.random ~seed:99)
      Registry.taf_tree ~n
  in
  let names = Cfc_core.Measures.decisions out.Cfc_runtime.Runner.trace ~nprocs:n in
  Format.printf "  %d of %d processes decided; uniqueness: %s@."
    (List.length names) n
    (match Cfc_core.Spec.unique_names out.Cfc_runtime.Runner.trace ~nprocs:n ~n with
    | None -> "ok"
    | Some v -> Format.asprintf "VIOLATED (%a)" Cfc_core.Spec.pp_violation v)
