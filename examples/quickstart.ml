(* Quickstart: build a Theorem-3 tree mutex on the instrumented
   simulator, run it solo and contended, and read off the paper's
   contention-free complexity measures.

     dune exec examples/quickstart.exe *)

open Cfc_runtime
open Cfc_mutex

let () =
  (* 49 processes, 3-bit registers: the tree is 2 levels of 7-slot
     Lamport nodes (a 3-bit gate encodes 7 slots plus "free"), so the
     contention-free cost is exactly 7·2 = 14 steps over 3·2 = 6
     registers — Theorem 3's 7·⌈log n / l⌉ bound. *)
  let p = { Mutex_intf.n = 49; l = 3 } in

  (* 1. Measure the contention-free complexity (solo runs, §2.2). *)
  let cf = Cfc_core.Mutex_harness.contention_free Registry.tree p in
  Format.printf "tree mutex, n=%d, l=%d:@." p.Mutex_intf.n p.Mutex_intf.l;
  Format.printf "  contention-free: %a@." Cfc_core.Measures.pp_sample
    cf.Cfc_core.Mutex_harness.max;
  Format.printf "  theorem 3 bound: steps <= 7.ceil(log n/l) = %d, \
                 registers <= %d@."
    (Cfc_core.Bounds.mutex_cf_step_upper ~n:p.Mutex_intf.n ~l:p.Mutex_intf.l)
    (Cfc_core.Bounds.mutex_cf_register_upper ~n:p.Mutex_intf.n
       ~l:p.Mutex_intf.l);

  (* 2. Run 8 of the processes against each other under a random
     schedule and check mutual exclusion on the trace. *)
  let out =
    Cfc_core.Mutex_harness.run ~rounds:3
      ~pick:(Schedule.random ~seed:2024)
      Registry.tree { p with Mutex_intf.n = 8 }
  in
  (match Cfc_core.Spec.mutual_exclusion out.Runner.trace ~nprocs:8 with
  | None -> Format.printf "  contended run: mutual exclusion held ✓@."
  | Some v -> Format.printf "  VIOLATION: %a@." Cfc_core.Spec.pp_violation v);
  Format.printf "  contended run: %d shared-memory accesses for %d \
                 critical sections@."
    out.Runner.total_steps (8 * 3);

  (* 3. Peek at the first few trace events — the raw material every
     measure in this library is computed from. *)
  Format.printf "@.first 12 trace events of the contended run:@.";
  List.iteri
    (fun i e -> if i < 12 then Format.printf "  %a@." Event.pp e)
    (Trace.to_list out.Runner.trace)
