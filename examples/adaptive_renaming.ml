(* Adaptive one-shot renaming with the Moir-Anderson splitter grid: the
   contention-sensitive companion to the paper's theme.  A process that
   runs without contention pays exactly one splitter (4 steps, 2
   registers) and gets name 1; with k participants every name fits in
   1..k(k+1)/2 no matter how large the original id space was.

     dune exec examples/adaptive_renaming.exe *)

open Cfc_renaming
open Cfc_core

let () =
  let n = 12 in

  (* Contention-free: the definitional O(1) path. *)
  let cf = Renaming_harness.contention_free Registry.ma_grid ~n in
  Format.printf
    "solo process (any of %d ids): %a, name %d@." n Measures.pp_sample
    cf.Renaming_harness.max
    cf.Renaming_harness.names.(0);

  (* Dial the participation level and watch the name space adapt. *)
  Format.printf "@.%-14s %-22s %-10s@." "participants" "names handed out"
    "k(k+1)/2";
  List.iter
    (fun k ->
      let participants = List.init k (fun i -> i) in
      let out =
        Renaming_harness.run ~participants
          ~pick:(Cfc_runtime.Schedule.random ~seed:2026)
          Registry.ma_grid ~n
      in
      let names =
        Measures.decisions out.Cfc_runtime.Runner.trace ~nprocs:n
        |> List.map snd |> List.sort compare
      in
      Format.printf "%-14d %-22s %-10d@." k
        (String.concat "," (List.map string_of_int names))
        (Ma_grid.name_space ~n ~k))
    [ 1; 2; 4; 8; 12 ];

  (* Crashes do not block survivors (wait-freedom). *)
  let out =
    Renaming_harness.run
      ~crash_at:[ (3, 0); (7, 5) ]
      ~pick:(Cfc_runtime.Schedule.random ~seed:7)
      Registry.ma_grid ~n
  in
  let survivors =
    Measures.decisions out.Cfc_runtime.Runner.trace ~nprocs:n
  in
  Format.printf
    "@.with 2 crashes: %d of %d processes renamed, uniqueness %s@."
    (List.length survivors) n
    (match Renaming_harness.check out ~n ~k:n ~bound:Ma_grid.name_space with
    | None -> "ok"
    | Some v -> Format.asprintf "VIOLATED (%a)" Spec.pp_violation v)
