(* The introduction's motivation, as a workload simulation: "contention
   for a critical section is rare in a well designed system" [Lam87], so
   an algorithm with constant contention-free cost (Lamport's fast mutex,
   or the Theorem-3 tree for small registers) beats a classic O(n)
   algorithm (the bakery) precisely in the common, uncontended regime —
   and §4's backoff keeps the winner near that cost even under load.

     dune exec examples/low_contention.exe *)

open Cfc_base
open Cfc_mutex
open Cfc_workload

let () =
  let n = 8 in
  let t =
    Texttab.create
      ~header:[ "algorithm"; "think time"; "contention level";
                "winner entry (mean)"; "winner entry (max)";
                "solo cost"; "total traffic" ]
  in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      List.iter
        (fun think ->
          let r =
            Workload.run_mutex alg
              { Workload.n; rounds = 40; mean_think = think; cs_len = 3;
                seed = 5 }
          in
          Texttab.add_row t
            [ A.name; string_of_int think;
              Printf.sprintf "%.2f" r.Workload.observed_contention;
              Printf.sprintf "%.2f" r.Workload.entry_steps_mean;
              string_of_int r.Workload.entry_steps_max;
              string_of_int r.Workload.cf_steps;
              string_of_int r.Workload.total_steps ])
        [ 0; 20; 300 ];
      Texttab.add_sep t)
    [ Registry.lamport_fast; Registry.backoff;
      Registry.kessels_tournament; Registry.bakery ];
  Texttab.print t;
  print_string
    "\nreading guide:\n\
     - think time dials contention: 0 = saturation, 300 = rare.\n\
     - at think=300 (the realistic regime) the fast algorithms' winner\n\
    \  cost approaches their solo cost (7), the bakery pays ~3n.\n\
     - backoff keeps total traffic down under saturation without\n\
    \  hurting the winner (§4 / MS93).\n"
