(* Exhaustive (bounded) verification with the model checker: every
   interleaving class of small configurations is explored by
   deterministic replay.  Also demonstrates bug-finding: the flat
   "chunked splitter" looks plausible and survives n=2, but the checker
   digs out a 16-step two-winner counterexample at n=3 — the exact bug
   class the splitter-tree in this library avoids.

     dune exec examples/verify_exhaustive.exe *)

open Cfc_mutex
open Cfc_mcheck

let report name = function
  | Explore.Ok stats ->
    Printf.printf
      "  %-28s OK  (%6d runs, %7d states, %6d deduped, %6d sym-merged, \
       %6d por-pruned%s)\n%!"
      name stats.Explore.runs stats.Explore.states stats.Explore.pruned_dedup
      stats.Explore.pruned_sym stats.Explore.pruned_por
      (if stats.Explore.truncated then ", truncated" else "")
  | Explore.Violation { schedule; violation; _ } ->
    Format.printf "  %-28s VIOLATION %a@.    schedule: %s@.%!" name
      Cfc_core.Spec.pp_violation violation
      (String.concat "," (List.map string_of_int schedule))

let () =
  print_endline "mutual exclusion, n=2, all algorithms:";
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params 2 in
      if A.supports p then
        let independence = Independence.mutex alg p in
        report A.name (Props.check_mutex ?independence alg p))
    Registry.all;

  print_endline "\ncontention detection, n=3:";
  List.iter
    (fun det ->
      let (module D : Mutex_intf.DETECTOR) = det in
      let p = { Mutex_intf.n = 3; l = 1 } in
      if D.supports p then report D.name (Props.check_detector det p))
    Registry.detectors;

  print_endline "\nnaming, n=4, all algorithms:";
  List.iter
    (fun alg ->
      let (module A : Cfc_naming.Naming_intf.ALG) = alg in
      if A.supports ~n:4 then report A.name (Props.check_naming alg ~n:4))
    Cfc_naming.Registry.all;

  print_endline "\nconsensus, n=2, all inputs:";
  List.iter
    (fun alg ->
      let (module C : Cfc_consensus.Consensus_intf.ALG) = alg in
      List.iter
        (fun (a, b) ->
          report
            (Printf.sprintf "%s inputs=%d,%d" C.name a b)
            (Props.check_consensus alg ~n:2 ~inputs:[| a; b |]))
        [ (0, 0); (0, 1); (1, 0); (1, 1) ])
    Cfc_consensus.Registry.all;
  print_endline
    "\nconsensus limits, demonstrated (read/write registers cannot agree;\n\
     one TAS bit stops at two processes):";
  report "broken-rw-consensus"
    (Props.check_consensus Cfc_consensus.Registry.broken_rw ~n:2
       ~inputs:[| 0; 1 |]);
  report "broken-3p-tas-consensus"
    (Props.check_consensus Cfc_consensus.Registry.broken_three ~n:3
       ~inputs:[| 0; 1; 1 |]);

  print_endline
    "\nbug-finding: a plausible-but-wrong flat chunked splitter (the\n\
     pairwise argument holds, so n=2 verifies; a third process breaks it):";
  let module Broken : Mutex_intf.DETECTOR = struct
    let name = "flat-chunked-splitter"
    let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1 && p.Mutex_intf.l >= 1
    let atomicity (p : Mutex_intf.params) =
      min p.Mutex_intf.l (Cfc_base.Ixmath.bits_needed p.Mutex_intf.n)
    let predicted_cf_steps (_ : Mutex_intf.params) = None
    let predicted_wc_steps (_ : Mutex_intf.params) = None

    module Make (M : Cfc_base.Mem_intf.MEM) = struct
      type t = { l : int; x : M.reg array; y : M.reg }

      let create (p : Mutex_intf.params) =
        let open Cfc_base in
        let n = p.Mutex_intf.n and l = p.Mutex_intf.l in
        let m = Ixmath.ceil_div (Ixmath.bits_needed n) l in
        { l;
          x = M.alloc_array ~width:(min l (Ixmath.bits_needed n)) ~init:0 m;
          y = M.alloc ~width:1 ~init:0 () }

      let chunk t id j =
        (id lsr (j * t.l)) land (Cfc_base.Ixmath.pow2 t.l - 1)

      let detect t ~me =
        let id = me + 1 in
        for j = 0 to Array.length t.x - 1 do
          M.write t.x.(j) (chunk t id j)
        done;
        if M.read t.y = 1 then false
        else begin
          M.write t.y 1;
          let ok = ref true in
          for j = 0 to Array.length t.x - 1 do
            if M.read t.x.(j) <> chunk t id j then ok := false
          done;
          !ok
        end
    end
  end in
  report "flat-chunked n=2 (sound)"
    (Props.check_detector (module Broken) { Mutex_intf.n = 2; l = 1 });
  report "flat-chunked n=3 (broken)"
    (Props.check_detector (module Broken) { Mutex_intf.n = 3; l = 1 })
