(* Tests for the effect-based simulator runtime: register semantics, the
   scheduler's one-access-per-step discipline, schedules, crashes, traces. *)

open Cfc_base
open Cfc_runtime

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Register semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_register_rw () =
  let m = Memory.create () in
  let r = Memory.alloc ~width:4 ~init:3 m in
  check "init" 3 (Register.read r);
  Register.write r 15;
  check "write" 15 (Register.read r);
  (match Register.write r 16 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "width overflow accepted");
  Register.reset r;
  check "reset" 3 (Register.read r)

let test_register_model_enforced () =
  let m = Memory.create () in
  let r = Memory.alloc ~model:Model.tas_only ~width:1 ~init:0 m in
  (match Register.read r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read allowed in tas-only model");
  check "tas returns old" 0
    (Option.get (Register.bit_op r Ops.Test_and_set));
  check "tas returns old (set)" 1
    (Option.get (Register.bit_op r Ops.Test_and_set))

let test_bit_ops_semantics () =
  List.iter
    (fun (op, v, expect_v', expect_ret) ->
      let v', ret = Ops.apply op v in
      check (Ops.to_string op ^ " value") expect_v' v';
      Alcotest.(check (option int)) (Ops.to_string op ^ " ret") expect_ret ret)
    [ (Ops.Skip, 0, 0, None);
      (Ops.Skip, 1, 1, None);
      (Ops.Read, 1, 1, Some 1);
      (Ops.Write_0, 1, 0, None);
      (Ops.Test_and_reset, 1, 0, Some 1);
      (Ops.Write_1, 0, 1, None);
      (Ops.Test_and_set, 0, 1, Some 0);
      (Ops.Flip, 0, 1, None);
      (Ops.Flip, 1, 0, None);
      (Ops.Test_and_flip, 1, 0, Some 1) ]

let test_dual_involution () =
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Ops.to_string op ^ " dual involutive")
        true
        (Ops.equal op (Ops.dual (Ops.dual op))))
    Ops.all

(* dual(op) on v behaves like op on (1-v), with complemented results. *)
let test_dual_semantics () =
  List.iter
    (fun op ->
      List.iter
        (fun v ->
          let v1, r1 = Ops.apply (Ops.dual op) v in
          let v2, r2 = Ops.apply op (1 - v) in
          check (Ops.to_string op ^ " dual value") (1 - v2) v1;
          Alcotest.(check (option int))
            (Ops.to_string op ^ " dual ret")
            (Option.map (fun x -> 1 - x) r2)
            r1)
        [ 0; 1 ])
    Ops.all

(* ------------------------------------------------------------------ *)
(* Scheduler basics                                                    *)
(* ------------------------------------------------------------------ *)

(* A process that writes its pid then reads the other's register. *)
let two_writers () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let a = M.alloc ~name:"a" ~width:8 ~init:0 ()
  and b = M.alloc ~name:"b" ~width:8 ~init:0 () in
  let proc own other v () =
    M.write own v;
    ignore (M.read other)
  in
  (memory, [| proc a b 7; proc b a 9 |])

let test_round_robin_interleaving () =
  let memory, procs = two_writers () in
  let out = Runner.run ~memory ~pick:(Schedule.round_robin ()) procs in
  check_bool "completed" true out.Runner.completed;
  check "total steps" 4 out.Runner.total_steps;
  (* Round robin: p0 writes, p1 writes, p0 reads 9, p1 reads 7. *)
  let evs =
    Trace.to_list out.Runner.trace
    |> List.filter_map (fun e ->
           match e.Event.body with
           | Event.Access (r, k) -> Some (e.Event.pid, r.Register.name, k)
           | Event.Region_change _ | Event.Crash | Event.Recover -> None)
  in
  match evs with
  | [ (0, "a", Event.A_write 7); (1, "b", Event.A_write 9);
      (0, "b", Event.A_read 9); (1, "a", Event.A_read 7) ] -> ()
  | _ -> Alcotest.fail "unexpected interleaving"

let test_solo_schedule () =
  let memory, procs = two_writers () in
  let out = Runner.run ~memory ~pick:(Schedule.solo 1) procs in
  check_bool "not all completed" false out.Runner.completed;
  check "p1 steps" 2 (Scheduler.steps_taken out.Runner.scheduler 1);
  check "p0 steps" 0 (Scheduler.steps_taken out.Runner.scheduler 0);
  check_bool "p0 never started" false (Scheduler.started out.Runner.scheduler 0)

let test_sequential_schedule () =
  let memory, procs = two_writers () in
  let out = Runner.run ~memory ~pick:(Schedule.sequential ()) procs in
  check_bool "completed" true out.Runner.completed;
  let pids =
    Trace.to_list out.Runner.trace
    |> List.filter_map (fun e ->
           match e.Event.body with
           | Event.Access _ -> Some e.Event.pid
           | Event.Region_change _ | Event.Crash | Event.Recover -> None)
  in
  Alcotest.(check (list int)) "p0 fully before p1" [ 0; 0; 1; 1 ] pids

let test_explicit_schedule () =
  let memory, procs = two_writers () in
  let out = Runner.run ~memory ~pick:(Schedule.of_list [ 1; 1; 0; 0 ]) procs in
  check_bool "completed" true out.Runner.completed;
  let first = Trace.get out.Runner.trace 0 in
  check "first actor" 1 first.Event.pid

let test_max_steps_cutoff () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:1 ~init:0 () in
  let spin () = while M.read r = 0 do () done in
  let out =
    Runner.run ~max_steps:100 ~memory ~pick:(Schedule.solo 0) [| spin |]
  in
  check_bool "did not complete" false out.Runner.completed;
  check "exactly budget" 100 out.Runner.total_steps

(* pref_then: follows the prefix, then hands over to the continuation. *)
let test_pref_then () =
  let memory, procs = two_writers () in
  let pick =
    Schedule.pref_then [ 1; 1 ] (Schedule.round_robin ())
  in
  let out = Runner.run ~memory ~pick procs in
  check_bool "completed" true out.Runner.completed;
  let pids =
    Trace.to_list out.Runner.trace
    |> List.filter_map (fun e ->
           match e.Event.body with
           | Event.Access _ -> Some e.Event.pid
           | Event.Region_change _ | Event.Crash | Event.Recover -> None)
  in
  (* p1's two steps from the prefix, then round-robin finishes p0. *)
  Alcotest.(check (list int)) "prefix then rr" [ 1; 1; 0; 0 ] pids

(* biased: the favored process gets the lion's share of the turns. *)
let test_biased_favoring () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let regs = M.alloc_array ~width:8 ~init:0 4 in
  let p i () =
    for k = 1 to 50 do
      M.write regs.(i) (k land 255)
    done
  in
  let out =
    Runner.run ~max_steps:80 ~memory
      ~pick:(Schedule.biased ~seed:3 ~favored:2 ~bias:16)
      (Array.init 4 (fun i -> p i))
  in
  let counts = Array.make 4 0 in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access _ -> counts.(e.Event.pid) <- counts.(e.Event.pid) + 1
      | Event.Region_change _ | Event.Crash | Event.Recover -> ())
    out.Runner.trace;
  check_bool
    (Printf.sprintf "favored %d > sum of others %d" counts.(2)
       (counts.(0) + counts.(1) + counts.(3)))
    true
    (counts.(2) > counts.(0) + counts.(1) + counts.(3))

(* ------------------------------------------------------------------ *)
(* Regions, decisions, crashes                                         *)
(* ------------------------------------------------------------------ *)

let test_regions_and_decide () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:1 ~init:0 () in
  let p () =
    Proc.region Event.Trying;
    M.write r 1;
    Proc.decide 42
  in
  let out = Runner.run ~memory ~pick:(Schedule.solo 0) [| p |] in
  check_bool "completed" true out.Runner.completed;
  (match Scheduler.region out.Runner.scheduler 0 with
  | Event.Halted -> ()
  | _ -> Alcotest.fail "should end halted");
  let saw_decided =
    Trace.fold
      (fun acc e ->
        acc
        ||
        match e.Event.body with
        | Event.Region_change (Event.Decided 42) -> true
        | _ -> false)
      false out.Runner.trace
  in
  check_bool "decided event recorded" true saw_decided

let test_crash_stops_process () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:8 ~init:0 () in
  let p i () =
    for k = 1 to 10 do
      M.write r ((10 * i) + k)
    done
  in
  (* Crash p0 after its 3rd scheduler step. *)
  let out =
    Runner.run ~memory ~crash_at:[ (3, 0) ]
      ~pick:(Schedule.round_robin ())
      [| p 0; p 1 |]
  in
  check_bool "completed" true out.Runner.completed;
  (match Scheduler.status out.Runner.scheduler 0 with
  | Scheduler.Crashed -> ()
  | _ -> Alcotest.fail "p0 should be crashed");
  check_bool "p0 stopped early"
    true
    (Scheduler.steps_taken out.Runner.scheduler 0 < 10);
  check "p1 ran to completion" 10 (Scheduler.steps_taken out.Runner.scheduler 1)

let test_crash_before_start () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:8 ~init:0 () in
  let p () = M.write r 1 in
  let out =
    Runner.run ~memory ~crash_at:[ (0, 0) ] ~pick:(Schedule.round_robin ())
      [| p |]
  in
  check "no steps" 0 (Scheduler.steps_taken out.Runner.scheduler 0);
  check_bool "completed (quiescent)" true out.Runner.completed

(* ------------------------------------------------------------------ *)
(* Fault plans and recovery                                            *)
(* ------------------------------------------------------------------ *)

let check_invalid name substr f =
  match f () with
  | exception Invalid_argument msg ->
    check_bool
      (Printf.sprintf "%s: message mentions %S (got %S)" name substr msg)
      true
      (let len = String.length substr in
       let rec scan i =
         i + len <= String.length msg
         && (String.sub msg i len = substr || scan (i + 1))
       in
       scan 0)
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

(* Final value of the register named [name] in [memory] (registers are
   abstract through [MEM], so post-mortem reads go through the arena). *)
let final_value memory name =
  (List.find (fun r -> r.Register.name = name) (Memory.registers memory))
    .Register.value

let test_fault_validation () =
  let v plan = ignore (Fault.validate ~nprocs:2 plan) in
  check_invalid "duplicate" "duplicate" (fun () ->
      v [ Fault.crash ~step:3 ~pid:0; Fault.crash ~step:3 ~pid:0 ]);
  check_invalid "pid range" "out of range" (fun () ->
      v [ Fault.crash ~step:1 ~pid:2 ]);
  check_invalid "negative pid" "out of range" (fun () ->
      v [ Fault.crash ~step:1 ~pid:(-1) ]);
  check_invalid "negative step" "negative step" (fun () ->
      v [ Fault.crash ~step:(-1) ~pid:0 ]);
  check_invalid "double crash" "already crashed" (fun () ->
      v [ Fault.crash ~step:1 ~pid:0; Fault.crash ~step:4 ~pid:0 ]);
  check_invalid "recover uncrashed" "not crashed" (fun () ->
      v [ Fault.recover ~step:2 ~pid:1 ]);
  (* A legal plan comes back sorted by step. *)
  let sorted =
    Fault.validate ~nprocs:2
      [ Fault.recover ~step:5 ~pid:0; Fault.crash ~step:2 ~pid:0 ]
  in
  check "sorted length" 2 (List.length sorted);
  check "sorted head step" 2 (List.hd sorted).Fault.step

(* Recovery restarts the thunk from the top with fresh local state while
   shared memory persists: the restarted run sees its own earlier write. *)
let test_recover_restarts_fresh () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let attempts = M.alloc ~name:"attempts" ~width:4 ~init:0 () in
  let sum = M.alloc ~name:"sum" ~width:8 ~init:0 () in
  let local_seen = ref [] in
  let p () =
    let mine = ref 0 in
    (* fresh every (re)start *)
    incr mine;
    local_seen := !mine :: !local_seen;
    M.write attempts (M.read attempts + 1);
    M.write sum 7;
    ignore (M.read sum)
  in
  let out =
    Runner.run ~memory
      ~faults:[ Fault.crash ~step:3 ~pid:0; Fault.recover ~step:3 ~pid:0 ]
      ~pick:(Schedule.solo 0) [| p |]
  in
  check_bool "completed" true out.Runner.completed;
  (* Two starts, each with a fresh [mine]. *)
  check_bool "local state fresh on restart" true
    (!local_seen = [ 1; 1 ]);
  (* Shared memory persisted across the crash: the restarted increment
     saw the first one. *)
  check "attempts" 2 (final_value memory "attempts");
  let recovers =
    Trace.fold
      (fun acc e ->
        match e.Event.body with Event.Recover -> acc + 1 | _ -> acc)
      0 out.Runner.trace
  in
  check "one recover event" 1 recovers

let test_crash_recover_at_step0 () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~name:"r" ~width:4 ~init:0 () in
  let p () = M.write r 1 in
  let out =
    Runner.run ~memory
      ~faults:[ Fault.crash ~step:0 ~pid:0; Fault.recover ~step:0 ~pid:0 ]
      ~pick:(Schedule.round_robin ()) [| p |]
  in
  check_bool "completed" true out.Runner.completed;
  check "write landed" 1 (final_value memory "r")

(* A recover scheduled after all runnable work has drained still fires:
   the runner fast-forwards the step clock to the pending fault. *)
let test_recover_after_quiescence () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~name:"r" ~width:8 ~init:0 () in
  let p () = M.write r (M.read r + 1) in
  let out =
    Runner.run ~memory
      ~faults:[ Fault.crash ~step:1 ~pid:0; Fault.recover ~step:50 ~pid:0 ]
      ~pick:(Schedule.round_robin ()) [| p |]
  in
  check_bool "completed" true out.Runner.completed;
  (* First run crashed after its read; the restart performed both. *)
  check "restart completed the write" 1 (final_value memory "r")

let test_chaos_deterministic () =
  let mk seed = Fault.chaos ~seed ~nprocs:3 ~pairs:2 ~horizon:40 in
  check_bool "same seed, same plan" true (mk 7 = mk 7);
  check "pairs" 4 (List.length (mk 7));
  (* And the plans drive identical runs. *)
  let run () =
    let memory = Memory.create () in
    let (module M) = Sim_mem.mem memory in
    let r = M.alloc ~width:8 ~init:0 () in
    let p _i () =
      for _ = 1 to 6 do
        M.write r (M.read r + 1)
      done
    in
    let out =
      Runner.run ~memory ~faults:(mk 7)
        ~pick:(Schedule.round_robin ())
        (Array.init 3 (fun i -> p i))
    in
    (out.Runner.total_steps, List.length (Trace.to_list out.Runner.trace))
  in
  check_bool "same plan, same run" true (run () = run ())

let test_out_of_steps_diagnosis () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:1 ~init:0 () in
  let p () =
    while M.read r = 0 do
      M.pause ()
    done
  in
  let out =
    Runner.run ~memory ~max_steps:25 ~pick:(Schedule.solo 0) [| p |]
  in
  check_bool "not completed" false out.Runner.completed;
  (match out.Runner.stopped with
  | Runner.Out_of_steps -> ()
  | _ -> Alcotest.fail "expected Out_of_steps");
  (match Runner.diagnose ~recent:3 out with
  | [ rep ] ->
    check "report pid" 0 rep.Runner.d_pid;
    check_bool "report has steps" true (rep.Runner.d_steps > 0);
    check_bool "report has recent events" true (rep.Runner.d_recent <> [])
  | _ -> Alcotest.fail "expected one process report");
  let rendered = Format.asprintf "%a" Runner.pp_diagnosis out in
  check_bool "diagnosis mentions stop reason" true
    (String.length rendered > 0)

let test_process_error_context () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:4 ~init:0 () in
  let p () =
    M.write r 1;
    ignore (M.read r);
    failwith "algorithm bug"
  in
  match Runner.run ~memory ~pick:(Schedule.solo 0) [| p |] with
  | _ -> Alcotest.fail "expected Process_error"
  | exception Runner.Process_error { pid; steps; error; recent } ->
    check "errored pid" 0 pid;
    check "steps before error" 2 steps;
    check_bool "underlying error kept" true
      (match error with Failure m -> m = "algorithm bug" | _ -> false);
    check_bool "recent events attached" true (recent <> [])

let test_model_violation_is_error () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc_bit ~model:Model.tas_only ~init:0 () in
  let p () = ignore (M.read r) in
  let _, err =
    Runner.run_collect ~memory ~pick:(Schedule.solo 0) [| p |]
  in
  check_bool "violation detected" true (err <> None)

(* ------------------------------------------------------------------ *)
(* Trace queries                                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_measures () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let a = M.alloc ~name:"a" ~width:4 ~init:0 ()
  and b = M.alloc ~name:"b" ~width:4 ~init:0 () in
  let p () =
    M.write a 1;
    ignore (M.read a);
    M.write b 2;
    M.write a 3
  in
  let out = Runner.run ~memory ~pick:(Schedule.solo 0) [| p |] in
  let t = out.Runner.trace in
  check "steps" 4 (Trace.step_count ~pid:0 t);
  check "registers" 2 (Trace.distinct_registers ~pid:0 t);
  let reads, writes = Trace.rw_step_count ~pid:0 t in
  check "reads" 1 reads;
  check "writes" 3 writes;
  let rregs, wregs = Trace.rw_register_count ~pid:0 t in
  check "read registers" 1 rregs;
  check "written registers" 2 wregs

let test_trace_fragment_bounds () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let a = M.alloc ~width:4 ~init:0 () in
  let p () =
    for i = 1 to 5 do
      M.write a i
    done
  in
  let out = Runner.run ~memory ~pick:(Schedule.solo 0) [| p |] in
  let t = out.Runner.trace in
  check "window" 2 (Trace.step_count ~from:1 ~until:3 ~pid:0 t)

(* Multi-grain sub-word stores (§1.3 / MS93): one step, neighbours
   untouched, whole word readable in one step. *)
let test_write_field () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let w = M.alloc ~name:"w" ~width:8 ~init:0 () in
  let p () =
    M.write_field w ~index:0 ~width:2 3;
    M.write_field w ~index:3 ~width:2 2;
    ignore (M.read w)
  in
  let out = Runner.run ~memory ~pick:(Schedule.solo 0) [| p |] in
  check "three steps" 3 (Trace.step_count ~pid:0 out.Runner.trace);
  check "one register" 1 (Trace.distinct_registers ~pid:0 out.Runner.trace);
  let reads, writes = Trace.rw_step_count ~pid:0 out.Runner.trace in
  check "field writes count as writes" 2 writes;
  check "one read" 1 reads;
  (* value = 3 + 2 << 6 = 131 *)
  let last =
    Trace.accesses_of ~pid:0 out.Runner.trace |> List.rev |> List.hd
  in
  (match last with
  | _, Event.A_read v -> check "packed value" 131 v
  | _ -> Alcotest.fail "expected read");
  (* Out-of-range / model-restricted fields are rejected. *)
  let m2 = Memory.create () in
  let (module M2) = Sim_mem.mem m2 in
  let w2 = M2.alloc ~width:4 ~init:0 () in
  let bad () = M2.write_field w2 ~index:2 ~width:2 1 in
  let _, err = Runner.run_collect ~memory:m2 ~pick:(Schedule.solo 0) [| bad |] in
  check_bool "out of range rejected" true (err <> None)

(* Memory fingerprints distinguish states and match after reset. *)
let test_memory_fingerprint () =
  let m = Memory.create () in
  let a = Memory.alloc ~width:8 ~init:0 m in
  let f0 = Memory.fingerprint m in
  Register.write a 5;
  check_bool "changed" false (Memory.fingerprint m = f0);
  Memory.reset m;
  check "restored" f0 (Memory.fingerprint m)

(* qcheck: arbitrary interleavings of independent single-writer processes
   always produce per-process step counts equal to their program length. *)
let prop_step_counts_independent =
  QCheck.Test.make ~count:100
    ~name:"independent processes keep their step counts under any schedule"
    QCheck.(pair (int_bound 1000) (int_range 1 5))
    (fun (seed, nprocs) ->
      let memory = Memory.create () in
      let (module M) = Sim_mem.mem memory in
      let regs = M.alloc_array ~width:8 ~init:0 nprocs in
      let p i () =
        for k = 1 to 7 do
          M.write regs.(i) k
        done
      in
      let out =
        Runner.run ~memory
          ~pick:(Schedule.random ~seed)
          (Array.init nprocs (fun i -> p i))
      in
      out.Runner.completed
      && List.for_all
           (fun pid -> Scheduler.steps_taken out.Runner.scheduler pid = 7)
           (List.init nprocs Fun.id))

(* Packed fields behave exactly like the separate registers they pack:
   applying the same random write sequence to a field-per-bit word and to
   an array of independent bits always leaves the word equal to the bits'
   binary encoding. *)
let prop_fields_equal_bits =
  QCheck.Test.make ~count:200 ~name:"write_field = independent bits"
    QCheck.(pair (int_range 1 8) (small_list (pair (int_bound 7) (int_bound 1))))
    (fun (k, writes) ->
      let memory = Memory.create () in
      let (module M) = Sim_mem.mem memory in
      let word = M.alloc ~name:"w" ~width:k ~init:0 () in
      let bits = M.alloc_array ~name:"b" ~width:1 ~init:0 k in
      let result = ref None in
      let p () =
        List.iter
          (fun (i, v) ->
            let i = i mod k in
            M.write_field word ~index:i ~width:1 v;
            M.write bits.(i) v)
          writes;
        let encoded =
          Array.to_list bits
          |> List.mapi (fun i b -> M.read b lsl i)
          |> List.fold_left ( + ) 0
        in
        result := Some (M.read word = encoded)
      in
      let out = Runner.run ~memory ~pick:(Schedule.solo 0) [| p |] in
      out.Runner.completed && !result = Some true)

(* Determinism: the same seed replays to the identical trace — the
   property the model checker's replay exploration rests on. *)
let prop_replay_deterministic =
  QCheck.Test.make ~count:60 ~name:"same schedule, same trace"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, nprocs) ->
      let run () =
        let memory = Memory.create () in
        let (module M) = Sim_mem.mem memory in
        let regs = M.alloc_array ~width:8 ~init:0 nprocs in
        let p i () =
          for k = 1 to 5 do
            M.write regs.(i) k;
            ignore (M.read regs.((i + 1) mod nprocs))
          done
        in
        let out =
          Runner.run ~memory
            ~pick:(Schedule.random ~seed)
            (Array.init nprocs (fun i -> p i))
        in
        Trace.to_list out.Runner.trace
        |> List.map (fun e ->
               ( e.Event.pid,
                 match e.Event.body with
                 | Event.Access (r, Event.A_read v) -> (r.Register.id, 0, v)
                 | Event.Access (r, Event.A_write v) -> (r.Register.id, 1, v)
                 | Event.Access (r, _) -> (r.Register.id, 2, 0)
                 | Event.Region_change _ -> (-1, 3, 0)
                 | Event.Crash -> (-1, 4, 0)
                 | Event.Recover -> (-1, 5, 0) ))
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Access-time width enforcement                                       *)
(* ------------------------------------------------------------------ *)

let test_width_errors_descriptive () =
  let m = Memory.create () in
  let r = Memory.alloc ~name:"wide" ~width:4 ~init:0 m in
  check_invalid "write" "write value 16 does not fit in declared width 4"
    (fun () -> Register.write r 16);
  check_invalid "fetch_and_store"
    "fetch_and_store value 99 does not fit in declared width 4" (fun () ->
      ignore (Register.fetch_and_store r 99));
  check_invalid "compare_and_set"
    "compare_and_set value 31 does not fit in declared width 4" (fun () ->
      ignore (Register.compare_and_set r ~expected:0 31));
  check_invalid "names the register" "register wide" (fun () ->
      Register.write r 16)

let test_corrupted_bit_diagnosed () =
  (* [restore] deliberately bypasses the width check (the model checker
     and the symbolic analyzer use it to re-seat snapshots); a bit cell
     corrupted through it must still be diagnosed descriptively at the
     next operation — previously this tripped a bare assert, which
     [-noassert] silently removes. *)
  let m = Memory.create () in
  let b = Memory.alloc ~name:"bit" ~width:1 ~init:0 m in
  Register.restore b 3;
  check_invalid "corrupted bit" "value 3 is not a bit" (fun () ->
      ignore (Register.bit_op b Ops.Read))

(* ------------------------------------------------------------------ *)
(* Event wheel                                                         *)
(* ------------------------------------------------------------------ *)

let event_strings trace =
  List.rev
    (Trace.fold
       (fun acc e -> Format.asprintf "%a" Event.pp e :: acc)
       [] trace)

(* A solo run through the wheel is event-for-event the scheduler's solo
   run: same accesses, same region changes, same halt marker. *)
let test_wheel_matches_scheduler_solo () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:8 ~init:0 () in
  let proc () =
    Proc.region Event.Trying;
    let v = M.read r in
    M.write r (v + 1);
    Proc.region Event.Critical;
    M.write r 7;
    Proc.region Event.Remainder
  in
  let sched = Runner.run ~memory ~pick:(Schedule.solo 0) [| proc |] in
  Memory.reset memory;
  let tr = Trace.create () in
  let wheel =
    Wheel.create ~sink:(Wheel.trace_sink tr) ~nprocs:1
      ~spawn:(fun _ -> proc) ()
  in
  Wheel.wake wheel 0;
  check_bool "quiescent" true (Wheel.run wheel = Wheel.Quiescent);
  Alcotest.(check (list string))
    "same event stream"
    (event_strings sched.Runner.trace)
    (event_strings tr);
  check "total steps" sched.Runner.total_steps (Wheel.total_steps wheel)

(* A sleeping process leaves the active set: the virtual clock jumps
   over the delay instead of burning a turn per tick. *)
let test_wheel_sleep_jumps_clock () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~name:"r" ~width:8 ~init:0 () in
  let proc () =
    M.write r 1;
    Proc.sleep 1_000_000;
    M.write r 2
  in
  let wheel = Wheel.create ~nprocs:1 ~spawn:(fun _ -> proc) () in
  Wheel.wake wheel 0;
  check_bool "quiescent" true (Wheel.run wheel = Wheel.Quiescent);
  check "write after wake" 2 (final_value memory "r");
  check_bool "clock jumped past the delay" true (Wheel.now wheel >= 1_000_000);
  check_bool "turns stayed O(accesses)" true (Wheel.turns wheel <= 5)

(* Lazy spawn: a huge arena materialises only the processes actually
   woken. *)
let test_wheel_lazy_spawn () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~width:8 ~init:0 () in
  let calls = ref 0 in
  let spawn _pid =
    incr calls;
    fun () -> M.write r 1
  in
  let wheel = Wheel.create ~nprocs:100_000 ~spawn () in
  Wheel.wake wheel 5;
  check_bool "quiescent" true (Wheel.run wheel = Wheel.Quiescent);
  check "one spawn call" 1 !calls;
  check "one record materialised" 1 (Wheel.spawned wheel);
  check_bool "others never started" true (Wheel.status wheel 99_999 = Wheel.Runnable);
  check_bool "woken one halted" true (Wheel.status wheel 5 = Wheel.Halted)

(* Turn-keyed faults: a crash discards the incarnation's local state and
   the recover restarts the thunk from the top, exactly like the
   scheduler's fault convention. *)
let test_wheel_fault_restart_fresh () =
  let memory = Memory.create () in
  let (module M) = Sim_mem.mem memory in
  let r = M.alloc ~name:"r" ~width:8 ~init:0 () in
  let proc () =
    let v = M.read r in
    M.write r (v + 1)
  in
  let crashes = ref 0 and recoveries = ref 0 in
  let count ~pid:_ = function
    | Event.Crash -> incr crashes
    | Event.Recover -> incr recoveries
    | Event.Access _ | Event.Region_change _ -> ()
  in
  let wheel =
    Wheel.create ~sink:count
      ~faults:[ Fault.crash ~step:1 ~pid:0; Fault.recover ~step:1 ~pid:0 ]
      ~nprocs:1
      ~spawn:(fun _ -> proc)
      ()
  in
  Wheel.wake wheel 0;
  check_bool "quiescent" true (Wheel.run wheel = Wheel.Quiescent);
  check "one crash" 1 !crashes;
  check "one recovery" 1 !recoveries;
  (* First incarnation crashed between its read and its write; the
     restart performed both against the unchanged register. *)
  check "restart was fresh" 1 (final_value memory "r");
  check "steps count both incarnations" 3 (Wheel.steps_taken wheel 0);
  check_bool "halted" true (Wheel.status wheel 0 = Wheel.Halted)

(* Same-tick pops are FIFO in wake order, and a full run (sleeps + chaos
   faults) is bit-for-bit deterministic. *)
let test_wheel_fifo_and_deterministic () =
  let run () =
    let memory = Memory.create () in
    let (module M) = Sim_mem.mem memory in
    let rs = Array.init 3 (fun i -> M.alloc ~name:(Printf.sprintf "r%d" i) ~width:8 ~init:0 ()) in
    let spawn pid () =
      M.write rs.(pid) 1;
      Proc.sleep ((pid * 5) + 1);
      M.write rs.(pid) 2
    in
    let tr = Trace.create () in
    let wheel =
      Wheel.create ~sink:(Wheel.trace_sink tr)
        ~faults:(Fault.chaos ~seed:9 ~nprocs:3 ~pairs:2 ~horizon:30)
        ~nprocs:3 ~spawn ()
    in
    Wheel.wake wheel 2;
    Wheel.wake wheel 0;
    Wheel.wake wheel 1;
    check_bool "quiescent" true (Wheel.run wheel = Wheel.Quiescent);
    (event_strings tr, Wheel.now wheel, Wheel.turns wheel,
     Wheel.total_steps wheel)
  in
  let es1, now1, turns1, steps1 = run () in
  let es2, now2, turns2, steps2 = run () in
  (match es1 with
  | first :: _ ->
    let contains s sub =
      let rec scan i =
        i + String.length sub <= String.length s
        && (String.sub s i (String.length sub) = sub || scan (i + 1))
      in
      scan 0
    in
    check_bool
      ("first event from first-woken pid: " ^ first)
      true (contains first "p2")
  | [] -> Alcotest.fail "empty event stream");
  Alcotest.(check (list string)) "same event stream" es1 es2;
  check "same now" now1 now2;
  check "same turns" turns1 turns2;
  check "same steps" steps1 steps2

(* Trace folds must be stack-safe on recording-scale traces: a million
   events through fold and fold_states without overflow. *)
let test_trace_fold_million_events () =
  let tr = Trace.create () in
  for i = 1 to 1_000_000 do
    ignore
      (Trace.record tr ~pid:(i land 1)
         (Event.Region_change
            (if i land 1 = 0 then Event.Trying else Event.Remainder)))
  done;
  check "length" 1_000_000 (Trace.length tr);
  check "fold visits all" 1_000_000 (Trace.fold (fun acc _ -> acc + 1) 0 tr);
  check "fold_states visits all" 1_000_000
    (Trace.fold_states ~nprocs:2 (fun acc _ _ -> acc + 1) 0 tr)

let () =
  Alcotest.run "cfc_runtime"
    [ ( "registers",
        [ Alcotest.test_case "read/write/width/reset" `Quick test_register_rw;
          Alcotest.test_case "model enforcement" `Quick
            test_register_model_enforced;
          Alcotest.test_case "bit op semantics" `Quick test_bit_ops_semantics;
          Alcotest.test_case "dual involution" `Quick test_dual_involution;
          Alcotest.test_case "dual semantics" `Quick test_dual_semantics;
          Alcotest.test_case "width errors descriptive" `Quick
            test_width_errors_descriptive;
          Alcotest.test_case "corrupted bit diagnosed" `Quick
            test_corrupted_bit_diagnosed ] );
      ( "scheduler",
        [ Alcotest.test_case "round robin interleaving" `Quick
            test_round_robin_interleaving;
          Alcotest.test_case "solo" `Quick test_solo_schedule;
          Alcotest.test_case "sequential" `Quick test_sequential_schedule;
          Alcotest.test_case "explicit" `Quick test_explicit_schedule;
          Alcotest.test_case "max steps cutoff" `Quick test_max_steps_cutoff;
          Alcotest.test_case "pref_then" `Quick test_pref_then;
          Alcotest.test_case "biased favoring" `Quick test_biased_favoring ] );
      ( "regions+crashes",
        [ Alcotest.test_case "regions and decide" `Quick
            test_regions_and_decide;
          Alcotest.test_case "crash stops process" `Quick
            test_crash_stops_process;
          Alcotest.test_case "crash before start" `Quick
            test_crash_before_start;
          Alcotest.test_case "model violation" `Quick
            test_model_violation_is_error ] );
      ( "faults+recovery",
        [ Alcotest.test_case "plan validation" `Quick test_fault_validation;
          Alcotest.test_case "recover restarts fresh" `Quick
            test_recover_restarts_fresh;
          Alcotest.test_case "crash+recover at step 0" `Quick
            test_crash_recover_at_step0;
          Alcotest.test_case "recover after quiescence" `Quick
            test_recover_after_quiescence;
          Alcotest.test_case "chaos deterministic" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "out-of-steps diagnosis" `Quick
            test_out_of_steps_diagnosis;
          Alcotest.test_case "process error context" `Quick
            test_process_error_context ] );
      ( "trace",
        [ Alcotest.test_case "write_field" `Quick test_write_field;
          Alcotest.test_case "measures" `Quick test_trace_measures;
          Alcotest.test_case "fragment bounds" `Quick
            test_trace_fragment_bounds;
          Alcotest.test_case "memory fingerprint" `Quick
            test_memory_fingerprint;
          Alcotest.test_case "folds stack-safe at a million events" `Quick
            test_trace_fold_million_events;
          QCheck_alcotest.to_alcotest prop_step_counts_independent;
          QCheck_alcotest.to_alcotest prop_fields_equal_bits;
          QCheck_alcotest.to_alcotest prop_replay_deterministic ] );
      ( "wheel",
        [ Alcotest.test_case "solo run matches the scheduler" `Quick
            test_wheel_matches_scheduler_solo;
          Alcotest.test_case "sleep jumps the clock" `Quick
            test_wheel_sleep_jumps_clock;
          Alcotest.test_case "lazy spawn" `Quick test_wheel_lazy_spawn;
          Alcotest.test_case "fault restart is fresh" `Quick
            test_wheel_fault_restart_fresh;
          Alcotest.test_case "same-tick FIFO + determinism" `Quick
            test_wheel_fifo_and_deterministic ] ) ]
