(* Tests for the workload generator and the §4 (discussion) claims:
   winner's time-to-enter stays near the contention-free cost, backoff
   reduces total shared-memory traffic under contention, and the
   introduction's motivation — the fast algorithm beats the bakery when
   contention is rare. *)

open Cfc_mutex
open Cfc_workload

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let cfg ?(n = 6) ?(rounds = 30) ?(think = 10) ?(seed = 7) () =
  { Workload.n; rounds; mean_think = think; cs_len = 3; seed }

let test_all_acquisitions_complete () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 6 in
      if A.supports p then begin
        let r = Workload.run_mutex (module A) (cfg ()) in
        check (A.name ^ " acquisitions") (6 * 30) r.Workload.acquisitions
      end)
    Registry.all

(* §4: winner's entry cost since release stays within a small factor of
   the contention-free cost for the fast algorithm, at every contention
   level. *)
let test_winner_near_cf () =
  List.iter
    (fun think ->
      let r = Workload.run_mutex Registry.lamport_fast (cfg ~think ()) in
      check_bool
        (Printf.sprintf "think=%d mean %.1f within 2x cf" think
           r.Workload.entry_steps_mean)
        true
        (r.Workload.entry_steps_mean <= 2. *. float_of_int r.Workload.cf_steps);
      check_bool
        (Printf.sprintf "think=%d max %d within 4x cf" think
           r.Workload.entry_steps_max)
        true
        (r.Workload.entry_steps_max <= 4 * r.Workload.cf_steps))
    [ 0; 5; 40; 200 ]

(* Backoff reduces total shared-memory traffic under contention. *)
let test_backoff_reduces_traffic () =
  let with_ = Workload.run_mutex Registry.backoff (cfg ~think:5 ()) in
  let without = Workload.run_mutex Registry.lamport_fast (cfg ~think:5 ()) in
  check_bool
    (Printf.sprintf "backoff traffic %d < plain %d" with_.Workload.total_steps
       without.Workload.total_steps)
    true
    (with_.Workload.total_steps < without.Workload.total_steps)

(* MS93 packing: the packed variant's contention-free cost equals plain
   Lamport's (the deterministic slow-path scan comparison lives in
   test_mutex). *)
let test_packed_same_cf () =
  let big = cfg ~n:6 ~think:0 () in
  let plain = Workload.run_mutex Registry.lamport_fast big in
  let packed = Workload.run_mutex Registry.ms_packed big in
  check "same contention-free cost" plain.Workload.cf_steps
    packed.Workload.cf_steps;
  check "same acquisitions" plain.Workload.acquisitions
    packed.Workload.acquisitions

(* The introduction's motivation: under rare contention the fast
   algorithm's winner cost beats the bakery's. *)
let test_fast_beats_bakery_rare_contention () =
  let fast = Workload.run_mutex Registry.lamport_fast (cfg ~think:200 ()) in
  let bakery = Workload.run_mutex Registry.bakery (cfg ~think:200 ()) in
  check_bool "rare contention reached" true
    (fast.Workload.observed_contention < 1.5);
  check_bool
    (Printf.sprintf "fast %.1f < bakery %.1f" fast.Workload.entry_steps_mean
       bakery.Workload.entry_steps_mean)
    true
    (fast.Workload.entry_steps_mean < bakery.Workload.entry_steps_mean)

(* Contention level responds to think time (saturation vs rare). *)
let test_contention_dial () =
  let hot = Workload.run_mutex Registry.lamport_fast (cfg ~think:0 ()) in
  let cold = Workload.run_mutex Registry.lamport_fast (cfg ~think:200 ()) in
  check_bool "dial works" true
    (hot.Workload.observed_contention
    > cold.Workload.observed_contention +. 1.)

(* The sweep helper covers all requested points, in order. *)
let test_sweep_shape () =
  let sweep =
    Workload.contention_sweep Registry.lamport_fast ~n:4 ~rounds:10
      ~thinks:[ 0; 10; 100 ] ~seed:3
  in
  Alcotest.(check (list int)) "think points" [ 0; 10; 100 ]
    (List.map fst sweep);
  List.iter
    (fun (_, r) -> check "acquisitions" 40 r.Workload.acquisitions)
    sweep

(* The think-time stream must be genuinely geometric (memoryless, mean
   [mean]), not a bounded uniform: a uniform draw on [0, 2*mean] can
   never exceed twice the mean, while the geometric tail does so
   routinely, and its empirical mean sits at [mean] rather than below
   it. *)
let test_think_stream_geometric () =
  let mean = 10 in
  let draw = Workload.think_stream ~seed:123 ~pid:0 in
  let n = 100_000 in
  let sum = ref 0 and maxv = ref 0 in
  for _ = 1 to n do
    let v = draw ~mean in
    check_bool "nonnegative" true (v >= 0);
    sum := !sum + v;
    if v > !maxv then maxv := v
  done;
  let emp = float_of_int !sum /. float_of_int n in
  check_bool
    (Printf.sprintf "tail exceeds 3x mean (max %d)" !maxv)
    true (!maxv >= 3 * mean);
  check_bool
    (Printf.sprintf "empirical mean %.2f within 0.2 of %d" emp mean)
    true
    (Float.abs (emp -. float_of_int mean) < 0.2);
  (* Deterministic per (seed, pid); distinct pids decorrelated. *)
  let a = Workload.think_stream ~seed:5 ~pid:1 in
  let b = Workload.think_stream ~seed:5 ~pid:1 in
  let c = Workload.think_stream ~seed:5 ~pid:2 in
  let sa = List.init 50 (fun _ -> a ~mean) in
  let sb = List.init 50 (fun _ -> b ~mean) in
  let sc = List.init 50 (fun _ -> c ~mean) in
  Alcotest.(check (list int)) "same (seed, pid) replays" sa sb;
  check_bool "different pid differs" true (sa <> sc);
  let z = Workload.think_stream ~seed:5 ~pid:0 in
  check "mean 0 is always 0" 0
    (List.fold_left ( + ) 0 (List.init 100 (fun _ -> z ~mean:0)))

(* rounds = 0 is a legal empty run: zero acquisitions and well-defined
   (non-NaN) statistics. *)
let test_empty_run () =
  let r = Workload.run_mutex Registry.lamport_fast (cfg ~rounds:0 ()) in
  check "no acquisitions" 0 r.Workload.acquisitions;
  check_bool "mean is finite" true (Float.is_finite r.Workload.entry_steps_mean);
  check_bool "contention is finite" true
    (Float.is_finite r.Workload.observed_contention);
  check "max steps" 0 r.Workload.entry_steps_max;
  check "max regs" 0 r.Workload.entry_registers_max

(* Exhausting the step budget must raise, not silently return the
   statistics of a truncated run. *)
let test_stall_raises () =
  match Workload.run_mutex ~max_steps:50 Registry.bakery (cfg ()) with
  | _ -> Alcotest.fail "truncated run reported as a measurement"
  | exception Workload.Stalled { alg; acquisitions; max_steps; _ } ->
    check_bool "alg recorded" true (alg = "bakery");
    check "budget recorded" 50 max_steps;
    check_bool "under-count visible" true (acquisitions < 6 * 30)

(* Determinism: same seed, same numbers. *)
let test_deterministic () =
  let a = Workload.run_mutex Registry.lamport_fast (cfg ()) in
  let b = Workload.run_mutex Registry.lamport_fast (cfg ()) in
  check "total steps equal" a.Workload.total_steps b.Workload.total_steps;
  check_bool "means equal" true
    (a.Workload.entry_steps_mean = b.Workload.entry_steps_mean)

(* ------------------------------------------------------------------ *)
(* The O(active-set) scale rig                                          *)
(* ------------------------------------------------------------------ *)

let scfg ?(n = 64) ?(rounds = 2) ?(think = 512) ?(seed = 42) ?(pairs = 0) () =
  { Workload.sc_n = n; sc_rounds = rounds; sc_mean_think = think;
    sc_cs_len = 3; sc_seed = seed; sc_chaos_pairs = pairs }

(* Crash-free: every client completes every cycle, and the monitor saw
   no exclusion violation (run_mutex_scale would have raised).  Kept at
   n = 64: algorithms with unbounded-spin gates (tree-lamport) need
   turns well past the default budget when all of a larger population
   collides during warm-up — scale_bench covers the big n. *)
let test_scale_all_acquisitions_complete () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 64 in
      if A.supports p then begin
        let r = Workload.run_mutex_scale (module A) (scfg ()) in
        check (A.name ^ " acquisitions") (64 * 2) r.Workload.sr_acquisitions;
        check (A.name ^ " crashes") 0 r.Workload.sr_crashes;
        check (A.name ^ " spawned") 64 r.Workload.sr_spawned
      end)
    Registry.all

(* Chaos: crashes and recoveries happen, clients still finish, and the
   whole result record is reproducible from the seed alone. *)
let test_scale_chaos_deterministic () =
  let sc = scfg ~n:300 ~pairs:300 ~think:1200 () in
  let a = Workload.run_mutex_scale Registry.rec_tas sc in
  let b = Workload.run_mutex_scale Registry.rec_tas sc in
  check_bool "identical result records" true (a = b);
  check_bool "crashes happened" true (a.Workload.sr_crashes > 0);
  check_bool "recoveries happened" true (a.Workload.sr_recoveries > 0);
  check_bool "recovery paths measured" true (a.Workload.sr_recovery_steps_max > 0);
  (* A different seed moves the curve: the plan and think times are
     genuinely seed-driven, not fixed. *)
  let c = Workload.run_mutex_scale Registry.rec_tas (scfg ~n:300 ~pairs:300 ~think:1200 ~seed:43 ()) in
  check_bool "different seed differs" true (a <> c)

(* Chaos over a non-recoverable lock must be rejected up front (a crash
   while holding tas would deadlock the rig). *)
let test_scale_chaos_needs_recovery () =
  match Workload.run_mutex_scale Registry.tas_lock (scfg ~pairs:4 ()) with
  | _ -> Alcotest.fail "chaos accepted on a non-recoverable lock"
  | exception Invalid_argument _ -> ()

(* The O(active-set) claim: simulation cost (wheel turns) is a function
   of the work actually performed, not of virtual time.  Stretching the
   mean think time 64x makes the virtual timeline 64x longer but must
   leave the turn count essentially unchanged, because sleeping clients
   are parked in the calendar queue and the clock jumps over them.
   (sr_live_peak ~ n is expected here — every live client, runnable or
   parked on a timer, holds one heap slot; only finished or never-woken
   processes are free.) *)
let test_scale_cost_independent_of_think () =
  let n = 1000 in
  let run think = Workload.run_mutex_scale Registry.mcs (scfg ~n ~think ()) in
  let short = run 1_000 and long = run 64_000 in
  check "all cycles done (short)" (n * 2) short.Workload.sr_acquisitions;
  check "all cycles done (long)" (n * 2) long.Workload.sr_acquisitions;
  check_bool
    (Printf.sprintf "turns %d vs %d within 2x despite 64x think"
       short.Workload.sr_turns long.Workload.sr_turns)
    true
    (long.Workload.sr_turns < 2 * short.Workload.sr_turns);
  check_bool
    (Printf.sprintf "live peak %d bounded by n=%d" long.Workload.sr_live_peak n)
    true
    (long.Workload.sr_live_peak <= n)

let () =
  Alcotest.run "cfc_workload"
    [ ( "workload",
        [ Alcotest.test_case "all acquisitions complete" `Quick
            test_all_acquisitions_complete;
          Alcotest.test_case "winner near contention-free (§4)" `Quick
            test_winner_near_cf;
          Alcotest.test_case "backoff reduces traffic (§4)" `Quick
            test_backoff_reduces_traffic;
          Alcotest.test_case "packed variant matches plain cf cost (MS93)"
            `Quick test_packed_same_cf;
          Alcotest.test_case "fast beats bakery when contention rare" `Quick
            test_fast_beats_bakery_rare_contention;
          Alcotest.test_case "contention dial" `Quick test_contention_dial;
          Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "think stream is geometric" `Quick
            test_think_stream_geometric;
          Alcotest.test_case "empty run is well-defined" `Quick
            test_empty_run;
          Alcotest.test_case "step-budget exhaustion raises" `Quick
            test_stall_raises ] );
      ( "scale",
        [ Alcotest.test_case "all acquisitions complete (wheel)" `Quick
            test_scale_all_acquisitions_complete;
          Alcotest.test_case "chaos deterministic in the seed" `Quick
            test_scale_chaos_deterministic;
          Alcotest.test_case "chaos requires a recoverable lock" `Quick
            test_scale_chaos_needs_recovery;
          Alcotest.test_case "cost independent of think time" `Quick
            test_scale_cost_independent_of_think ] ) ]
