(* Tests for the workload generator and the §4 (discussion) claims:
   winner's time-to-enter stays near the contention-free cost, backoff
   reduces total shared-memory traffic under contention, and the
   introduction's motivation — the fast algorithm beats the bakery when
   contention is rare. *)

open Cfc_base
open Cfc_mutex
open Cfc_workload

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let cfg ?(n = 6) ?(rounds = 30) ?(think = 10) ?(seed = 7) () =
  { Workload.n; rounds; mean_think = think; cs_len = 3; seed }

let test_all_acquisitions_complete () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 6 in
      if A.supports p then begin
        let r = Workload.run_mutex (module A) (cfg ()) in
        check (A.name ^ " acquisitions") (6 * 30) r.Workload.acquisitions
      end)
    Registry.all

(* §4: winner's entry cost since release stays within a small factor of
   the contention-free cost for the fast algorithm, at every contention
   level. *)
let test_winner_near_cf () =
  List.iter
    (fun think ->
      let r = Workload.run_mutex Registry.lamport_fast (cfg ~think ()) in
      check_bool
        (Printf.sprintf "think=%d mean %.1f within 2x cf" think
           r.Workload.entry_steps_mean)
        true
        (r.Workload.entry_steps_mean <= 2. *. float_of_int r.Workload.cf_steps);
      check_bool
        (Printf.sprintf "think=%d max %d within 4x cf" think
           r.Workload.entry_steps_max)
        true
        (r.Workload.entry_steps_max <= 4 * r.Workload.cf_steps))
    [ 0; 5; 40; 200 ]

(* Backoff reduces total shared-memory traffic under contention. *)
let test_backoff_reduces_traffic () =
  let with_ = Workload.run_mutex Registry.backoff (cfg ~think:5 ()) in
  let without = Workload.run_mutex Registry.lamport_fast (cfg ~think:5 ()) in
  check_bool
    (Printf.sprintf "backoff traffic %d < plain %d" with_.Workload.total_steps
       without.Workload.total_steps)
    true
    (with_.Workload.total_steps < without.Workload.total_steps)

(* MS93 packing: the packed variant's contention-free cost equals plain
   Lamport's (the deterministic slow-path scan comparison lives in
   test_mutex). *)
let test_packed_same_cf () =
  let big = cfg ~n:6 ~think:0 () in
  let plain = Workload.run_mutex Registry.lamport_fast big in
  let packed = Workload.run_mutex Registry.ms_packed big in
  check "same contention-free cost" plain.Workload.cf_steps
    packed.Workload.cf_steps;
  check "same acquisitions" plain.Workload.acquisitions
    packed.Workload.acquisitions

(* The introduction's motivation: under rare contention the fast
   algorithm's winner cost beats the bakery's. *)
let test_fast_beats_bakery_rare_contention () =
  let fast = Workload.run_mutex Registry.lamport_fast (cfg ~think:200 ()) in
  let bakery = Workload.run_mutex Registry.bakery (cfg ~think:200 ()) in
  check_bool "rare contention reached" true
    (fast.Workload.observed_contention < 1.5);
  check_bool
    (Printf.sprintf "fast %.1f < bakery %.1f" fast.Workload.entry_steps_mean
       bakery.Workload.entry_steps_mean)
    true
    (fast.Workload.entry_steps_mean < bakery.Workload.entry_steps_mean)

(* Contention level responds to think time (saturation vs rare). *)
let test_contention_dial () =
  let hot = Workload.run_mutex Registry.lamport_fast (cfg ~think:0 ()) in
  let cold = Workload.run_mutex Registry.lamport_fast (cfg ~think:200 ()) in
  check_bool "dial works" true
    (hot.Workload.observed_contention
    > cold.Workload.observed_contention +. 1.)

(* The sweep helper covers all requested points, in order. *)
let test_sweep_shape () =
  let sweep =
    Workload.contention_sweep Registry.lamport_fast ~n:4 ~rounds:10
      ~thinks:[ 0; 10; 100 ] ~seed:3
  in
  Alcotest.(check (list int)) "think points" [ 0; 10; 100 ]
    (List.map fst sweep);
  List.iter
    (fun (_, r) -> check "acquisitions" 40 r.Workload.acquisitions)
    sweep

(* The think-time stream must be genuinely geometric (memoryless, mean
   [mean]), not a bounded uniform: a uniform draw on [0, 2*mean] can
   never exceed twice the mean, while the geometric tail does so
   routinely, and its empirical mean sits at [mean] rather than below
   it. *)
let test_think_stream_geometric () =
  let mean = 10 in
  let draw = Workload.think_stream ~seed:123 ~pid:0 in
  let n = 100_000 in
  let sum = ref 0 and maxv = ref 0 in
  for _ = 1 to n do
    let v = draw ~mean in
    check_bool "nonnegative" true (v >= 0);
    sum := !sum + v;
    if v > !maxv then maxv := v
  done;
  let emp = float_of_int !sum /. float_of_int n in
  check_bool
    (Printf.sprintf "tail exceeds 3x mean (max %d)" !maxv)
    true (!maxv >= 3 * mean);
  check_bool
    (Printf.sprintf "empirical mean %.2f within 0.2 of %d" emp mean)
    true
    (Float.abs (emp -. float_of_int mean) < 0.2);
  (* Deterministic per (seed, pid); distinct pids decorrelated. *)
  let a = Workload.think_stream ~seed:5 ~pid:1 in
  let b = Workload.think_stream ~seed:5 ~pid:1 in
  let c = Workload.think_stream ~seed:5 ~pid:2 in
  let sa = List.init 50 (fun _ -> a ~mean) in
  let sb = List.init 50 (fun _ -> b ~mean) in
  let sc = List.init 50 (fun _ -> c ~mean) in
  Alcotest.(check (list int)) "same (seed, pid) replays" sa sb;
  check_bool "different pid differs" true (sa <> sc);
  let z = Workload.think_stream ~seed:5 ~pid:0 in
  check "mean 0 is always 0" 0
    (List.fold_left ( + ) 0 (List.init 100 (fun _ -> z ~mean:0)))

(* Regression for the think-stream seeding bug: the per-pid state must
   be [Random.State.make [| Ixmath.mix_seed seed pid |]] — the raw
   [| seed; pid |] pair correlates adjacent pids.  Pinning the exact
   derivation is also the simulated/native parity contract: the native
   Lock_service and Kv_service build their worker streams from the same
   expression, so equality here is equality there. *)
let test_think_stream_split_seeded () =
  let mean = 10 in
  List.iter
    (fun (seed, pid) ->
      let stream = Workload.think_stream ~seed ~pid in
      let st = Random.State.make [| Ixmath.mix_seed seed pid |] in
      let pinned () = Ixmath.geometric ~u:(Random.State.float st 1.0) ~mean in
      for i = 1 to 200 do
        check
          (Printf.sprintf "seed=%d pid=%d draw %d pinned to mix_seed" seed
             pid i)
          (pinned ()) (stream ~mean)
      done)
    [ (42, 0); (42, 1); (7, 63); (123456789, 12) ];
  (* Adjacent-pid streams are pairwise uncorrelated: the Pearson
     coefficient over a long prefix stays near 0.  (With the raw
     [| seed; pid |] seeding this check fails: adjacent states produce
     visibly correlated sequences.) *)
  let len = 4_000 in
  let draws pid =
    let s = Workload.think_stream ~seed:42 ~pid in
    Array.init len (fun _ -> float_of_int (s ~mean))
  in
  let pearson a b =
    let n = float_of_int len in
    let mean x = Array.fold_left ( +. ) 0. x /. n in
    let ma = mean a and mb = mean b in
    let cov = ref 0. and va = ref 0. and vb = ref 0. in
    for i = 0 to len - 1 do
      cov := !cov +. ((a.(i) -. ma) *. (b.(i) -. mb));
      va := !va +. ((a.(i) -. ma) ** 2.);
      vb := !vb +. ((b.(i) -. mb) ** 2.)
    done;
    !cov /. sqrt (!va *. !vb)
  in
  for pid = 0 to 4 do
    let r = pearson (draws pid) (draws (pid + 1)) in
    check_bool
      (Printf.sprintf "pids %d,%d uncorrelated (r=%.4f)" pid (pid + 1) r)
      true
      (Float.abs r < 0.06)
  done

(* rounds = 0 is a legal empty run: zero acquisitions and well-defined
   (non-NaN) statistics. *)
let test_empty_run () =
  let r = Workload.run_mutex Registry.lamport_fast (cfg ~rounds:0 ()) in
  check "no acquisitions" 0 r.Workload.acquisitions;
  check_bool "mean is finite" true (Float.is_finite r.Workload.entry_steps_mean);
  check_bool "contention is finite" true
    (Float.is_finite r.Workload.observed_contention);
  check "max steps" 0 r.Workload.entry_steps_max;
  check "max regs" 0 r.Workload.entry_registers_max

(* Exhausting the step budget must raise, not silently return the
   statistics of a truncated run. *)
let test_stall_raises () =
  match Workload.run_mutex ~max_steps:50 Registry.bakery (cfg ()) with
  | _ -> Alcotest.fail "truncated run reported as a measurement"
  | exception Workload.Stalled { alg; acquisitions; max_steps; _ } ->
    check_bool "alg recorded" true (alg = "bakery");
    check "budget recorded" 50 max_steps;
    check_bool "under-count visible" true (acquisitions < 6 * 30)

(* Determinism: same seed, same numbers. *)
let test_deterministic () =
  let a = Workload.run_mutex Registry.lamport_fast (cfg ()) in
  let b = Workload.run_mutex Registry.lamport_fast (cfg ()) in
  check "total steps equal" a.Workload.total_steps b.Workload.total_steps;
  check_bool "means equal" true
    (a.Workload.entry_steps_mean = b.Workload.entry_steps_mean)

(* ------------------------------------------------------------------ *)
(* The O(active-set) scale rig                                          *)
(* ------------------------------------------------------------------ *)

let scfg ?(n = 64) ?(rounds = 2) ?(think = 512) ?(seed = 42) ?(pairs = 0) () =
  { Workload.sc_n = n; sc_rounds = rounds; sc_mean_think = think;
    sc_cs_len = 3; sc_seed = seed; sc_chaos_pairs = pairs }

(* Crash-free: every client completes every cycle, and the monitor saw
   no exclusion violation (run_mutex_scale would have raised).  Kept at
   n = 64: algorithms with unbounded-spin gates (tree-lamport) need
   turns well past the default budget when all of a larger population
   collides during warm-up — scale_bench covers the big n. *)
let test_scale_all_acquisitions_complete () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 64 in
      if A.supports p then begin
        let r = Workload.run_mutex_scale (module A) (scfg ()) in
        check (A.name ^ " acquisitions") (64 * 2) r.Workload.sr_acquisitions;
        check (A.name ^ " crashes") 0 r.Workload.sr_crashes;
        check (A.name ^ " spawned") 64 r.Workload.sr_spawned
      end)
    Registry.all

(* Chaos: crashes and recoveries happen, clients still finish, and the
   whole result record is reproducible from the seed alone. *)
let test_scale_chaos_deterministic () =
  let sc = scfg ~n:300 ~pairs:300 ~think:1200 () in
  let a = Workload.run_mutex_scale Registry.rec_tas sc in
  let b = Workload.run_mutex_scale Registry.rec_tas sc in
  check_bool "identical result records" true (a = b);
  check_bool "crashes happened" true (a.Workload.sr_crashes > 0);
  check_bool "recoveries happened" true (a.Workload.sr_recoveries > 0);
  check_bool "recovery paths measured" true (a.Workload.sr_recovery_steps_max > 0);
  (* A different seed moves the curve: the plan and think times are
     genuinely seed-driven, not fixed. *)
  let c = Workload.run_mutex_scale Registry.rec_tas (scfg ~n:300 ~pairs:300 ~think:1200 ~seed:43 ()) in
  check_bool "different seed differs" true (a <> c)

(* Chaos over a non-recoverable lock must be rejected up front (a crash
   while holding tas would deadlock the rig). *)
let test_scale_chaos_needs_recovery () =
  match Workload.run_mutex_scale Registry.tas_lock (scfg ~pairs:4 ()) with
  | _ -> Alcotest.fail "chaos accepted on a non-recoverable lock"
  | exception Invalid_argument _ -> ()

(* The O(active-set) claim: simulation cost (wheel turns) is a function
   of the work actually performed, not of virtual time.  Stretching the
   mean think time 64x makes the virtual timeline 64x longer but must
   leave the turn count essentially unchanged, because sleeping clients
   are parked in the calendar queue and the clock jumps over them.
   (sr_live_peak ~ n is expected here — every live client, runnable or
   parked on a timer, holds one heap slot; only finished or never-woken
   processes are free.) *)
let test_scale_cost_independent_of_think () =
  let n = 1000 in
  let run think = Workload.run_mutex_scale Registry.mcs (scfg ~n ~think ()) in
  let short = run 1_000 and long = run 64_000 in
  check "all cycles done (short)" (n * 2) short.Workload.sr_acquisitions;
  check "all cycles done (long)" (n * 2) long.Workload.sr_acquisitions;
  check_bool
    (Printf.sprintf "turns %d vs %d within 2x despite 64x think"
       short.Workload.sr_turns long.Workload.sr_turns)
    true
    (long.Workload.sr_turns < 2 * short.Workload.sr_turns);
  check_bool
    (Printf.sprintf "live peak %d bounded by n=%d" long.Workload.sr_live_peak n)
    true
    (long.Workload.sr_live_peak <= n)

(* ------------------------------------------------------------------ *)
(* YCSB generator                                                       *)
(* ------------------------------------------------------------------ *)

let count_kinds stream n =
  let c = Array.make 4 0 in
  for _ = 1 to n do
    (match Ycsb.next stream with
    | Ycsb.Read _ -> c.(0) <- c.(0) + 1
    | Ycsb.Update _ -> c.(1) <- c.(1) + 1
    | Ycsb.Scan _ -> c.(2) <- c.(2) + 1
    | Ycsb.Rmw _ -> c.(3) <- c.(3) + 1)
  done;
  c

(* Empirical op-kind frequencies of each preset match its declared
   probabilities (seeded, hence deterministic). *)
let test_ycsb_mix_frequencies () =
  let n = 20_000 in
  List.iter
    (fun m ->
      let s = Ycsb.stream ~seed:11 ~client:0 ~nkeys:1000 ~theta:0.6 m in
      let c = count_kinds s n in
      let freq i = float_of_int c.(i) /. float_of_int n in
      List.iteri
        (fun i expect ->
          check_bool
            (Printf.sprintf "mix %s kind %d freq %.3f ~ %.3f" m.Ycsb.mix_name
               i (freq i) expect)
            true
            (Float.abs (freq i -. expect) < 0.01))
        [ m.Ycsb.read; m.Ycsb.update; m.Ycsb.scan; m.Ycsb.rmw ])
    Ycsb.mixes;
  (* C is exactly read-only; E's scans carry the declared length. *)
  let c = Ycsb.stream ~seed:3 ~client:1 ~nkeys:100 ~theta:0.0 Ycsb.mix_c in
  for _ = 1 to 500 do
    match Ycsb.next c with
    | Ycsb.Read _ -> ()
    | _ -> Alcotest.fail "mix C produced a non-read"
  done;
  let e = Ycsb.stream ~seed:3 ~client:1 ~nkeys:100 ~theta:0.0 Ycsb.mix_e in
  for _ = 1 to 500 do
    match Ycsb.next e with
    | Ycsb.Scan (_, len) ->
      check "scan length" Ycsb.mix_e.Ycsb.scan_len len
    | Ycsb.Rmw _ -> ()
    | _ -> Alcotest.fail "mix E produced a non-scan non-rmw"
  done

let test_ycsb_stream_seeding () =
  let take s n = List.init n (fun _ -> Ycsb.next s) in
  let mk client =
    Ycsb.stream ~seed:42 ~client ~nkeys:4096 ~theta:0.99 Ycsb.mix_a
  in
  Alcotest.(check bool)
    "same (seed, client) replays" true
    (take (mk 3) 100 = take (mk 3) 100);
  check_bool "distinct clients differ" true (take (mk 3) 100 <> take (mk 4) 100);
  (* The op stream is salted away from the think stream: a client's key
     draws must not replay its think-time uniform draws. *)
  let ops = mk 5 in
  let think = Workload.think_stream ~seed:42 ~pid:5 in
  let keys = List.init 100 (fun _ -> Ycsb.key_of (Ycsb.next ops)) in
  let thinks = List.init 100 (fun _ -> think ~mean:50) in
  check_bool "op stream disjoint from think stream" true (keys <> thinks);
  (* Zipf head: at theta = 0.99 the hottest rank dominates the coldest. *)
  let z = Ycsb.stream ~seed:9 ~client:0 ~nkeys:64 ~theta:0.99 Ycsb.mix_c in
  let hot = ref 0 and cold = ref 0 in
  for _ = 1 to 10_000 do
    match Ycsb.key_of (Ycsb.next z) with
    | 0 -> incr hot
    | 63 -> incr cold
    | _ -> ()
  done;
  check_bool
    (Printf.sprintf "rank 0 (%d) >> rank 63 (%d)" !hot !cold)
    true
    (!hot > 10 * max 1 !cold);
  match Ycsb.stream ~seed:1 ~client:0 ~nkeys:0 ~theta:0.0 Ycsb.mix_a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nkeys=0 accepted"

(* ------------------------------------------------------------------ *)
(* The sharded KV service on the wheel                                  *)
(* ------------------------------------------------------------------ *)

let kcfg ?(clients = 32) ?(buckets = 8) ?(keys = 1024) ?(ops = 6)
    ?(think = 128) ?(theta = 0.99) ?(mix = Ycsb.mix_a) ?(seed = 42) () =
  { Kv_sim.kc_clients = clients; kc_buckets = buckets; kc_keys = keys;
    kc_ops = ops; kc_mean_think = think; kc_theta = theta; kc_mix = mix;
    kc_seed = seed }

(* Every op completes as a monitored lock acquisition on its shard, the
   per-shard tallies add up, and both witnesses come out clean — across
   a spread of registry locks and all four mixes. *)
let test_kv_complete_and_clean () =
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      List.iter
        (fun mix ->
          let r = Kv_sim.run alg (kcfg ~mix ()) in
          let label s = Printf.sprintf "%s/%s %s" A.name mix.Ycsb.mix_name s in
          check (label "ops") (32 * 6) r.Kv_sim.kr_ops;
          check (label "acquisitions") r.Kv_sim.kr_ops r.Kv_sim.kr_acquisitions;
          check (label "lost updates") 0 r.Kv_sim.kr_lost_updates;
          check (label "torn scans") 0 r.Kv_sim.kr_torn_scans;
          check (label "spawned") 32 r.Kv_sim.kr_spawned;
          let shard_ops =
            Array.fold_left (fun acc s -> acc + s.Kv_sim.ss_ops) 0
              r.Kv_sim.kr_shards
          in
          check (label "shard ops sum") r.Kv_sim.kr_ops shard_ops;
          Array.iter
            (fun s ->
              check (label "kind sum")
                s.Kv_sim.ss_ops
                (s.Kv_sim.ss_reads + s.Kv_sim.ss_updates + s.Kv_sim.ss_scans
               + s.Kv_sim.ss_rmws);
              check (label "per-shard acq = ops") s.Kv_sim.ss_ops
                s.Kv_sim.ss_acquisitions)
            r.Kv_sim.kr_shards)
        Ycsb.mixes)
    [ Registry.mcs; Registry.tas_lock; Registry.lamport_fast ]

let test_kv_deterministic () =
  let kc = kcfg ~mix:Ycsb.mix_e () in
  let a = Kv_sim.run Registry.mcs kc in
  let b = Kv_sim.run Registry.mcs kc in
  check_bool "identical result records" true (a = b);
  let c = Kv_sim.run Registry.mcs { kc with Kv_sim.kc_seed = 43 } in
  check_bool "different seed differs" true (a <> c)

(* The Zipf dial reaches the service: a skewed key space concentrates
   traffic on the hottest shard. *)
let test_kv_theta_hot_share () =
  let run theta =
    Kv_sim.run Registry.mcs
      (kcfg ~clients:64 ~ops:64 ~buckets:16 ~keys:4096 ~think:64 ~theta ())
  in
  let uniform = run 0.0 and skewed = run 0.99 in
  check_bool
    (Printf.sprintf "hot share %.3f (theta=0.99) > %.3f (theta=0)"
       skewed.Kv_sim.kr_hot_share uniform.Kv_sim.kr_hot_share)
    true
    (skewed.Kv_sim.kr_hot_share > uniform.Kv_sim.kr_hot_share)

let test_kv_rejects () =
  (match Kv_sim.run Registry.mcs (kcfg ~clients:1 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clients=1 accepted");
  match Kv_sim.run Registry.mcs (kcfg ~keys:0 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "keys=0 accepted"

let () =
  Alcotest.run "cfc_workload"
    [ ( "workload",
        [ Alcotest.test_case "all acquisitions complete" `Quick
            test_all_acquisitions_complete;
          Alcotest.test_case "winner near contention-free (§4)" `Quick
            test_winner_near_cf;
          Alcotest.test_case "backoff reduces traffic (§4)" `Quick
            test_backoff_reduces_traffic;
          Alcotest.test_case "packed variant matches plain cf cost (MS93)"
            `Quick test_packed_same_cf;
          Alcotest.test_case "fast beats bakery when contention rare" `Quick
            test_fast_beats_bakery_rare_contention;
          Alcotest.test_case "contention dial" `Quick test_contention_dial;
          Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "think stream is geometric" `Quick
            test_think_stream_geometric;
          Alcotest.test_case "think stream split-seeding (regression)" `Quick
            test_think_stream_split_seeded;
          Alcotest.test_case "empty run is well-defined" `Quick
            test_empty_run;
          Alcotest.test_case "step-budget exhaustion raises" `Quick
            test_stall_raises ] );
      ( "scale",
        [ Alcotest.test_case "all acquisitions complete (wheel)" `Quick
            test_scale_all_acquisitions_complete;
          Alcotest.test_case "chaos deterministic in the seed" `Quick
            test_scale_chaos_deterministic;
          Alcotest.test_case "chaos requires a recoverable lock" `Quick
            test_scale_chaos_needs_recovery;
          Alcotest.test_case "cost independent of think time" `Quick
            test_scale_cost_independent_of_think ] );
      ( "ycsb",
        [ Alcotest.test_case "mix frequencies" `Quick
            test_ycsb_mix_frequencies;
          Alcotest.test_case "stream seeding" `Quick test_ycsb_stream_seeding ] );
      ( "kv",
        [ Alcotest.test_case "complete and witness-clean" `Quick
            test_kv_complete_and_clean;
          Alcotest.test_case "deterministic in the seed" `Quick
            test_kv_deterministic;
          Alcotest.test_case "zipf skew concentrates the hot shard" `Quick
            test_kv_theta_hot_share;
          Alcotest.test_case "bad dimensions rejected" `Quick
            test_kv_rejects ] ) ]
