(* Tests for the workload generator and the §4 (discussion) claims:
   winner's time-to-enter stays near the contention-free cost, backoff
   reduces total shared-memory traffic under contention, and the
   introduction's motivation — the fast algorithm beats the bakery when
   contention is rare. *)

open Cfc_mutex
open Cfc_workload

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let cfg ?(n = 6) ?(rounds = 30) ?(think = 10) ?(seed = 7) () =
  { Workload.n; rounds; mean_think = think; cs_len = 3; seed }

let test_all_acquisitions_complete () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 6 in
      if A.supports p then begin
        let r = Workload.run_mutex (module A) (cfg ()) in
        check (A.name ^ " acquisitions") (6 * 30) r.Workload.acquisitions
      end)
    Registry.all

(* §4: winner's entry cost since release stays within a small factor of
   the contention-free cost for the fast algorithm, at every contention
   level. *)
let test_winner_near_cf () =
  List.iter
    (fun think ->
      let r = Workload.run_mutex Registry.lamport_fast (cfg ~think ()) in
      check_bool
        (Printf.sprintf "think=%d mean %.1f within 2x cf" think
           r.Workload.entry_steps_mean)
        true
        (r.Workload.entry_steps_mean <= 2. *. float_of_int r.Workload.cf_steps);
      check_bool
        (Printf.sprintf "think=%d max %d within 4x cf" think
           r.Workload.entry_steps_max)
        true
        (r.Workload.entry_steps_max <= 4 * r.Workload.cf_steps))
    [ 0; 5; 40; 200 ]

(* Backoff reduces total shared-memory traffic under contention. *)
let test_backoff_reduces_traffic () =
  let with_ = Workload.run_mutex Registry.backoff (cfg ~think:5 ()) in
  let without = Workload.run_mutex Registry.lamport_fast (cfg ~think:5 ()) in
  check_bool
    (Printf.sprintf "backoff traffic %d < plain %d" with_.Workload.total_steps
       without.Workload.total_steps)
    true
    (with_.Workload.total_steps < without.Workload.total_steps)

(* MS93 packing: the packed variant's contention-free cost equals plain
   Lamport's (the deterministic slow-path scan comparison lives in
   test_mutex). *)
let test_packed_same_cf () =
  let big = cfg ~n:6 ~think:0 () in
  let plain = Workload.run_mutex Registry.lamport_fast big in
  let packed = Workload.run_mutex Registry.ms_packed big in
  check "same contention-free cost" plain.Workload.cf_steps
    packed.Workload.cf_steps;
  check "same acquisitions" plain.Workload.acquisitions
    packed.Workload.acquisitions

(* The introduction's motivation: under rare contention the fast
   algorithm's winner cost beats the bakery's. *)
let test_fast_beats_bakery_rare_contention () =
  let fast = Workload.run_mutex Registry.lamport_fast (cfg ~think:200 ()) in
  let bakery = Workload.run_mutex Registry.bakery (cfg ~think:200 ()) in
  check_bool "rare contention reached" true
    (fast.Workload.observed_contention < 1.5);
  check_bool
    (Printf.sprintf "fast %.1f < bakery %.1f" fast.Workload.entry_steps_mean
       bakery.Workload.entry_steps_mean)
    true
    (fast.Workload.entry_steps_mean < bakery.Workload.entry_steps_mean)

(* Contention level responds to think time (saturation vs rare). *)
let test_contention_dial () =
  let hot = Workload.run_mutex Registry.lamport_fast (cfg ~think:0 ()) in
  let cold = Workload.run_mutex Registry.lamport_fast (cfg ~think:200 ()) in
  check_bool "dial works" true
    (hot.Workload.observed_contention
    > cold.Workload.observed_contention +. 1.)

(* The sweep helper covers all requested points, in order. *)
let test_sweep_shape () =
  let sweep =
    Workload.contention_sweep Registry.lamport_fast ~n:4 ~rounds:10
      ~thinks:[ 0; 10; 100 ] ~seed:3
  in
  Alcotest.(check (list int)) "think points" [ 0; 10; 100 ]
    (List.map fst sweep);
  List.iter
    (fun (_, r) -> check "acquisitions" 40 r.Workload.acquisitions)
    sweep

(* Determinism: same seed, same numbers. *)
let test_deterministic () =
  let a = Workload.run_mutex Registry.lamport_fast (cfg ()) in
  let b = Workload.run_mutex Registry.lamport_fast (cfg ()) in
  check "total steps equal" a.Workload.total_steps b.Workload.total_steps;
  check_bool "means equal" true
    (a.Workload.entry_steps_mean = b.Workload.entry_steps_mean)

let () =
  Alcotest.run "cfc_workload"
    [ ( "workload",
        [ Alcotest.test_case "all acquisitions complete" `Quick
            test_all_acquisitions_complete;
          Alcotest.test_case "winner near contention-free (§4)" `Quick
            test_winner_near_cf;
          Alcotest.test_case "backoff reduces traffic (§4)" `Quick
            test_backoff_reduces_traffic;
          Alcotest.test_case "packed variant matches plain cf cost (MS93)"
            `Quick test_packed_same_cf;
          Alcotest.test_case "fast beats bakery when contention rare" `Quick
            test_fast_beats_bakery_rare_contention;
          Alcotest.test_case "contention dial" `Quick test_contention_dial;
          Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
          Alcotest.test_case "deterministic" `Quick test_deterministic ] ) ]
