(* Tests for one-shot renaming (Moir-Anderson splitter grid): the
   contention-sensitive companion problem from the paper's introduction.
   Exact O(1) contention-free cost, adaptive k(k+1)/2 name bound,
   uniqueness under random schedules / crashes / partial participation,
   and exhaustive verification at small n. *)

open Cfc_renaming
open Cfc_core
open Cfc_mcheck

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Solo: one splitter win — 4 steps, 2 registers, name 1, any id. *)
let test_cf_exact () =
  List.iter
    (fun n ->
      let r = Renaming_harness.contention_free Registry.ma_grid ~n in
      Array.iteri
        (fun me s ->
          check (Printf.sprintf "n=%d p%d steps" n me) 4 s.Measures.steps;
          check
            (Printf.sprintf "n=%d p%d regs" n me)
            2 s.Measures.registers;
          check (Printf.sprintf "n=%d p%d name" n me) 1
            r.Renaming_harness.names.(me))
        r.Renaming_harness.per_process)
    [ 1; 2; 5; 16 ]

(* The name space adapts to the number of participants, not n. *)
let test_adaptive_bound () =
  let n = 12 in
  List.iter
    (fun k ->
      let participants = List.init k (fun i -> i * (n / k)) in
      List.iter
        (fun seed ->
          let out =
            Renaming_harness.run ~participants
              ~pick:(Cfc_runtime.Schedule.random ~seed)
              Registry.ma_grid ~n
          in
          let names =
            Measures.decisions out.Cfc_runtime.Runner.trace ~nprocs:n
          in
          check
            (Printf.sprintf "k=%d seed=%d all named" k seed)
            k (List.length names);
          match
            Renaming_harness.check out ~n ~k ~bound:Ma_grid.name_space
          with
          | None -> ()
          | Some v ->
            Alcotest.failf "k=%d seed=%d: %a" k seed Spec.pp_violation v)
        [ 1; 2; 3; 4; 5 ])
    [ 1; 2; 3; 4; 6 ]

let prop_unique_random =
  QCheck.Test.make ~count:150
    ~name:"renaming: unique in-range names under random schedules"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 8))
    (fun (seed, n) ->
      let out =
        Renaming_harness.run
          ~pick:(Cfc_runtime.Schedule.random ~seed)
          Registry.ma_grid ~n
      in
      out.Cfc_runtime.Runner.completed
      && Renaming_harness.check out ~n ~k:n ~bound:Ma_grid.name_space = None)

(* Wait-freedom: crashed processes never block survivors, and survivors'
   names stay within the bound for the number of STARTERS (crashed
   starters still count as participants). *)
let prop_unique_with_crashes =
  QCheck.Test.make ~count:150
    ~name:"renaming: wait-free under crashes"
    QCheck.(
      triple (int_bound 1_000_000) (int_range 2 8)
        (small_list (pair (int_bound 40) (int_bound 7))))
    (fun (seed, n, crashes) ->
      (* Fault plans are validated now: at most one (un-recovered) crash
         per pid, no duplicate points — keep each pid's first. *)
      let crash_at =
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun (at, p) ->
            let p = p mod n in
            if Hashtbl.mem seen p then None
            else begin
              Hashtbl.add seen p ();
              Some (at, p)
            end)
          crashes
      in
      let out =
        Renaming_harness.run ~crash_at
          ~pick:(Cfc_runtime.Schedule.random ~seed)
          Registry.ma_grid ~n
      in
      out.Cfc_runtime.Runner.completed
      && Renaming_harness.check out ~n ~k:n ~bound:Ma_grid.name_space = None)

let test_exhaustive () =
  List.iter
    (fun n ->
      match Props.check_renaming Registry.ma_grid ~n with
      | Explore.Ok stats ->
        check_bool
          (Printf.sprintf "n=%d explored" n)
          true (stats.Explore.runs > 0)
      | Explore.Violation { violation; _ } ->
        Alcotest.failf "n=%d: %a" n Spec.pp_violation violation)
    [ 2; 3 ]

(* Cell enumeration is a bijection onto 1..n(n+1)/2. *)
let test_cell_index () =
  let n = 6 in
  let seen = Hashtbl.create 32 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 - r do
      if r + c <= n - 1 then begin
        let i = Ma_grid.cell_index ~r ~c in
        check_bool
          (Printf.sprintf "(%d,%d) -> %d fresh" r c i)
          true
          (not (Hashtbl.mem seen i));
        Hashtbl.replace seen i ();
        check_bool "in range" true (i >= 1 && i <= n * (n + 1) / 2)
      end
    done
  done;
  check "covers the triangle" (n * (n + 1) / 2) (Hashtbl.length seen)

(* Sequential participants walk right along row 0 (every gate they meet
   is already set), so the i-th arrival deterministically gets the cell
   (0, i): name i(i+1)/2 + 1.  Also pins down that the k(k+1)/2 bound
   counts total participants, not concurrent ones. *)
let test_sequential_names () =
  let n = 10 in
  let out =
    Renaming_harness.run
      ~pick:(Cfc_runtime.Schedule.sequential ())
      Registry.ma_grid ~n
  in
  let names = Measures.decisions out.Cfc_runtime.Runner.trace ~nprocs:n in
  List.iteri
    (fun i (pid, v) ->
      check (Printf.sprintf "arrival %d (p%d)" i pid)
        ((i * (i + 1) / 2) + 1)
        v)
    (List.sort compare names)

let () =
  Alcotest.run "cfc_renaming"
    [ ( "ma-grid",
        [ Alcotest.test_case "cf exact (one splitter)" `Quick test_cf_exact;
          Alcotest.test_case "adaptive k(k+1)/2 bound" `Quick
            test_adaptive_bound;
          QCheck_alcotest.to_alcotest prop_unique_random;
          QCheck_alcotest.to_alcotest prop_unique_with_crashes;
          Alcotest.test_case "exhaustive n in {2,3}" `Quick test_exhaustive;
          Alcotest.test_case "cell enumeration" `Quick test_cell_index;
          Alcotest.test_case "sequential arrivals" `Quick
            test_sequential_names ] ) ]
