(* Tests for cfc_base: the integer math every bound formula relies on,
   the operation/model algebra of §3.1-3.2, and the table renderer. *)

open Cfc_base

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_pow2 () =
  check "2^0" 1 (Ixmath.pow2 0);
  check "2^10" 1024 (Ixmath.pow2 10);
  check_bool "is_pow2 1" true (Ixmath.is_pow2 1);
  check_bool "is_pow2 1024" true (Ixmath.is_pow2 1024);
  check_bool "is_pow2 0" false (Ixmath.is_pow2 0);
  check_bool "is_pow2 1023" false (Ixmath.is_pow2 1023)

let test_logs () =
  check "floor_log2 1" 0 (Ixmath.floor_log2 1);
  check "floor_log2 7" 2 (Ixmath.floor_log2 7);
  check "floor_log2 8" 3 (Ixmath.floor_log2 8);
  check "ceil_log2 1" 0 (Ixmath.ceil_log2 1);
  check "ceil_log2 7" 3 (Ixmath.ceil_log2 7);
  check "ceil_log2 8" 3 (Ixmath.ceil_log2 8);
  check "ceil_log2 9" 4 (Ixmath.ceil_log2 9)

let test_bits_needed () =
  check "bits 0" 1 (Ixmath.bits_needed 0);
  check "bits 1" 1 (Ixmath.bits_needed 1);
  check "bits 2" 2 (Ixmath.bits_needed 2);
  check "bits 7" 3 (Ixmath.bits_needed 7);
  check "bits 8" 4 (Ixmath.bits_needed 8)

let test_ceil_div_log () =
  check "ceil_div 7 3" 3 (Ixmath.ceil_div 7 3);
  check "ceil_div 6 3" 2 (Ixmath.ceil_div 6 3);
  check "ceil_div 0 3" 0 (Ixmath.ceil_div 0 3);
  check "ceil_log 3 1" 1 (Ixmath.ceil_log ~base:3 1);
  check "ceil_log 3 3" 1 (Ixmath.ceil_log ~base:3 3);
  check "ceil_log 3 4" 2 (Ixmath.ceil_log ~base:3 4);
  check "ceil_log 3 9" 2 (Ixmath.ceil_log ~base:3 9);
  check "ceil_log 3 10" 3 (Ixmath.ceil_log ~base:3 10);
  check "ipow" 243 (Ixmath.ipow 3 5)

let prop_ceil_log_is_least =
  QCheck.Test.make ~count:500 ~name:"ceil_log returns the least valid depth"
    QCheck.(pair (int_range 2 10) (int_range 1 100_000))
    (fun (base, n) ->
      let d = Ixmath.ceil_log ~base n in
      Ixmath.ipow base d >= n && (d = 1 || Ixmath.ipow base (d - 1) < n))

let prop_bits_roundtrip =
  QCheck.Test.make ~count:500 ~name:"bits_needed stores the value"
    QCheck.(int_range 0 1_000_000)
    (fun v ->
      let w = Ixmath.bits_needed v in
      v < Ixmath.pow2 w && (w = 1 || v >= Ixmath.pow2 (w - 1)))

(* Hardening near max_int: the log-domain helpers must stay exact where
   naive power-growing loops would wrap, and ipow must raise rather than
   silently overflow. *)
let test_ixmath_extremes () =
  check "floor_log2 max_int" 61 (Ixmath.floor_log2 max_int);
  check "ceil_log2 max_int" 62 (Ixmath.ceil_log2 max_int);
  check "floor_log2 2^61" 61 (Ixmath.floor_log2 (Ixmath.pow2 61));
  check "bits_needed max_int" 62 (Ixmath.bits_needed max_int);
  check "ceil_div max_int 1" max_int (Ixmath.ceil_div max_int 1);
  check "ceil_div max_int max_int" 1 (Ixmath.ceil_div max_int max_int);
  check "ceil_log 2 max_int" 62 (Ixmath.ceil_log ~base:2 max_int);
  check "ipow 2 61" (Ixmath.pow2 61) (Ixmath.ipow 2 61);
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "ipow 2 62 raises" true (raises (fun () -> Ixmath.ipow 2 62));
  check_bool "ipow 3 40 raises" true (raises (fun () -> Ixmath.ipow 3 40));
  check_bool "ipow 10 19 raises" true (raises (fun () -> Ixmath.ipow 10 19));
  check "ipow 0 0" 1 (Ixmath.ipow 0 0);
  check "ipow 0 5" 0 (Ixmath.ipow 0 5);
  check "ipow 1 max" 1 (Ixmath.ipow 1 1_000_000);
  check_bool "floor_log2 0 raises" true (raises (fun () -> Ixmath.floor_log2 0));
  check_bool "ceil_div by 0 raises" true (raises (fun () -> Ixmath.ceil_div 1 0));
  check_bool "ceil_div neg raises" true (raises (fun () -> Ixmath.ceil_div (-1) 2));
  check_bool "ceil_log base 1 raises" true
    (raises (fun () -> Ixmath.ceil_log ~base:1 5));
  check_bool "bits_needed neg raises" true
    (raises (fun () -> Ixmath.bits_needed (-1)))

(* A reference pow that saturates instead of wrapping lets the properties
   run right up against max_int. *)
let sat_pow b e =
  let rec go acc e =
    if e = 0 then acc
    else if acc > max_int / b then max_int
    else go (acc * b) (e - 1)
  in
  go 1 e

let prop_floor_log2_near_max =
  QCheck.Test.make ~count:500 ~name:"floor_log2 exact near max_int"
    QCheck.(int_range 0 2000)
    (fun d ->
      let n = max_int - d in
      let k = Ixmath.floor_log2 n in
      let above = sat_pow 2 (k + 1) in
      (* A saturated power stands for a value beyond max_int >= n. *)
      sat_pow 2 k <= n && (above > n || above = max_int))

let prop_ceil_div_near_max =
  QCheck.Test.make ~count:500 ~name:"ceil_div characterization near max_int"
    QCheck.(pair (int_range 0 5000) (int_range 1 1_000_000))
    (fun (d, b) ->
      let a = max_int - d in
      let q = Ixmath.ceil_div a b in
      (* q is the least integer with q*b >= a (stated division-side to
         avoid overflowing the test itself). *)
      q >= a / b
      && q - (a / b) <= 1
      && (a mod b = 0) = (q = a / b))

let prop_ceil_log_near_max =
  QCheck.Test.make ~count:500 ~name:"ceil_log least depth near max_int"
    QCheck.(pair (int_range 2 16) (int_range 0 5000))
    (fun (base, d) ->
      let n = max_int - d in
      let depth = Ixmath.ceil_log ~base n in
      sat_pow base depth >= n && (depth = 1 || sat_pow base (depth - 1) < n))

let prop_ipow_raises_or_exact =
  QCheck.Test.make ~count:1000 ~name:"ipow never wraps: exact or raises"
    QCheck.(pair (int_range 2 1000) (int_range 0 70))
    (fun (b, e) ->
      match Ixmath.ipow b e with
      | v -> sat_pow b e = v && v < max_int
      | exception Invalid_argument _ -> sat_pow b e = max_int)

let prop_geometric_mean =
  QCheck.Test.make ~count:20 ~name:"geometric inversion has the right mean"
    QCheck.(int_range 1 50)
    (fun mean ->
      let st = Random.State.make [| 7; mean |] in
      let n = 20_000 in
      let sum = ref 0 in
      for _ = 1 to n do
        sum :=
          !sum + Ixmath.geometric ~u:(Random.State.float st 1.0) ~mean
      done;
      let emp = float_of_int !sum /. float_of_int n in
      Float.abs (emp -. float_of_int mean) < 0.1 *. float_of_int mean +. 0.5)

(* The success probability is computed in float space: an int [mean + 1]
   would wrap at [mean = max_int] and yield a negative variate. *)
let test_geometric_extreme_mean () =
  List.iter
    (fun mean ->
      List.iter
        (fun u ->
          let v = Ixmath.geometric ~u ~mean in
          Alcotest.(check bool)
            (Printf.sprintf "geometric mean=%d u=%f nonnegative" mean u)
            true (v >= 0))
        [ 0.0; 0.5; 0.999_999 ])
    [ 1; max_int / 2; max_int - 1; max_int ]

(* mix_seed: deterministic, nonnegative, and a full-avalanche spread —
   nearby (root, pid) pairs must not produce nearby or colliding seeds
   (the scale rig derives one independent stream per process from it). *)
let test_mix_seed () =
  Alcotest.(check int)
    "deterministic" (Ixmath.mix_seed 42 7) (Ixmath.mix_seed 42 7);
  let seen = Hashtbl.create 4096 in
  for root = 0 to 7 do
    for pid = 0 to 511 do
      let s = Ixmath.mix_seed root pid in
      Alcotest.(check bool) "nonnegative" true (s >= 0);
      (match Hashtbl.find_opt seen s with
      | Some (root', pid') ->
        Alcotest.failf "collision: (%d,%d) and (%d,%d) -> %d" root pid root'
          pid' s
      | None -> ());
      Hashtbl.add seen s (root, pid)
    done
  done;
  (* Adjacent pids flip roughly half the bits, not just the low ones. *)
  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x
  in
  let d = popcount (Ixmath.mix_seed 42 0 lxor Ixmath.mix_seed 42 1) in
  Alcotest.(check bool)
    (Printf.sprintf "avalanche: %d bits differ" d)
    true
    (d > 15 && d < 50)

let test_zipf_edges () =
  (match Ixmath.zipf ~n:0 ~theta:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=0 accepted");
  (match Ixmath.zipf ~n:4 ~theta:(-0.5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative theta accepted");
  (match Ixmath.zipf ~n:4 ~theta:Float.nan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan theta accepted");
  let z = Ixmath.zipf ~n:1 ~theta:0.99 in
  Alcotest.(check int) "n=1 always rank 0" 0 (Ixmath.zipf_draw z ~u:0.7);
  Alcotest.(check (float 0.)) "n=1 cdf" 1.0 (Ixmath.zipf_cdf z 0);
  (match Ixmath.zipf_draw z ~u:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "u=1 accepted");
  (match Ixmath.zipf_cdf z 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rank out of range accepted")

(* The CDF is exactly the normalized partial sums of k^-theta, monotone,
   ending at 1; a draw inverts it: cdf(k-1) <= u < cdf(k). *)
let prop_zipf_cdf =
  QCheck.Test.make ~count:200 ~name:"zipf cdf = normalized partial sums"
    QCheck.(pair (int_range 1 200) (int_range 0 3))
    (fun (n, ti) ->
      let theta = [| 0.0; 0.6; 0.99; 2.5 |].(ti) in
      let z = Ixmath.zipf ~n ~theta in
      let total = ref 0. in
      for k = 1 to n do
        total := !total +. (float_of_int k ** -.theta)
      done;
      let acc = ref 0. and ok = ref true in
      for k = 0 to n - 1 do
        acc := !acc +. (float_of_int (k + 1) ** -.theta);
        let expect = !acc /. !total in
        if Float.abs (Ixmath.zipf_cdf z k -. expect) > 1e-9 then ok := false;
        if k > 0 && Ixmath.zipf_cdf z k < Ixmath.zipf_cdf z (k - 1) then
          ok := false
      done;
      !ok && Ixmath.zipf_cdf z (n - 1) = 1.0)

let prop_zipf_draw_inverts =
  QCheck.Test.make ~count:500 ~name:"zipf draw inverts the cdf"
    QCheck.(triple (int_range 1 100) (int_range 0 2) (float_bound_exclusive 1.0))
    (fun (n, ti, u) ->
      let u = Float.abs u in
      QCheck.assume (u < 1.0);
      let theta = [| 0.0; 0.99; 1.8 |].(ti) in
      let z = Ixmath.zipf ~n ~theta in
      let k = Ixmath.zipf_draw z ~u in
      0 <= k && k < n
      && u < Ixmath.zipf_cdf z k
      && (k = 0 || Ixmath.zipf_cdf z (k - 1) <= u))

(* Empirical rank frequencies against the CDF masses: rank 0 of a
   theta=0.99 space is drawn with its closed-form probability, and
   theta=0 is uniform.  Seeded draws, so the check is deterministic. *)
let prop_zipf_empirical =
  QCheck.Test.make ~count:10 ~name:"zipf empirical rank frequency matches cdf"
    QCheck.(pair (int_range 2 64) (int_range 0 2))
    (fun (n, ti) ->
      let theta = [| 0.0; 0.6; 0.99 |].(ti) in
      let z = Ixmath.zipf ~n ~theta in
      let st = Random.State.make [| Ixmath.mix_seed 7 (n + ti) |] in
      let rounds = 40_000 in
      let counts = Array.make n 0 in
      for _ = 1 to rounds do
        let k = Ixmath.zipf_draw z ~u:(Random.State.float st 1.0) in
        counts.(k) <- counts.(k) + 1
      done;
      let mass k =
        Ixmath.zipf_cdf z k -. (if k = 0 then 0. else Ixmath.zipf_cdf z (k - 1))
      in
      (* 4-sigma binomial envelope per rank, plus an absolute floor for
         tiny masses. *)
      let ok = ref true in
      for k = 0 to n - 1 do
        let p = mass k in
        let emp = float_of_int counts.(k) /. float_of_int rounds in
        let sigma = sqrt (p *. (1. -. p) /. float_of_int rounds) in
        if Float.abs (emp -. p) > (4. *. sigma) +. 1e-3 then ok := false
      done;
      !ok)

let test_ops_strings () =
  List.iter
    (fun op ->
      Alcotest.(check (option string))
        (Ops.to_string op ^ " roundtrip")
        (Some (Ops.to_string op))
        (Option.map Ops.to_string (Ops.of_string (Ops.to_string op))))
    Ops.all;
  check_bool "bad name" true (Ops.of_string "nonsense" = None);
  check "eight ops" 8 (List.length Ops.all);
  Alcotest.(check (list int))
    "indices are 0..7" (List.init 8 Fun.id)
    (List.map Ops.to_index Ops.all)

let test_model_algebra () =
  check_bool "subset" true (Model.subset Model.tas_read Model.tas_tar_read);
  check_bool "not subset" false (Model.subset Model.tas_tar_read Model.tas_read);
  check_bool "rmw self-dual" true (Model.is_self_dual Model.rmw);
  check_bool "taf self-dual" true (Model.is_self_dual Model.taf);
  check_bool "read/write self-dual" true (Model.is_self_dual Model.read_write);
  check_bool "tas not self-dual" false (Model.is_self_dual Model.tas_only);
  check "rmw cardinal" 8 (Model.cardinal Model.rmw);
  check "union" 3 (Model.cardinal (Model.union Model.tas_read Model.taf));
  check_bool "named tas" true (Model.to_string Model.tas_only = "tas")

let prop_dual_involution_model =
  QCheck.Test.make ~count:256 ~name:"model dual is an involution"
    QCheck.(int_bound 255)
    (fun mask ->
      let m =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) Ops.all
        |> Model.of_list
      in
      Model.equal m (Model.dual (Model.dual m)))

let test_texttab () =
  let t = Texttab.create ~header:[ "a"; "bb" ] in
  Texttab.add_row t [ "1"; "2" ];
  Texttab.add_sep t;
  Texttab.add_row t [ "333" ];
  let s = Texttab.render t in
  check_bool "has header" true
    (String.length s > 0 && String.contains s 'b');
  (* Padded short row and separator line both render. *)
  (* top sep, header, sep, row, explicit sep, padded row, bottom sep *)
  check "lines" 7
    (String.split_on_char '\n' s |> List.filter (( <> ) "") |> List.length);
  (match Texttab.add_row t [ "1"; "2"; "3" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overlong row accepted")

let () =
  Alcotest.run "cfc_base"
    [ ( "ixmath",
        [ Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "logs" `Quick test_logs;
          Alcotest.test_case "bits_needed" `Quick test_bits_needed;
          Alcotest.test_case "ceil_div/log" `Quick test_ceil_div_log;
          QCheck_alcotest.to_alcotest prop_ceil_log_is_least;
          QCheck_alcotest.to_alcotest prop_bits_roundtrip;
          Alcotest.test_case "extremes near max_int" `Quick
            test_ixmath_extremes;
          QCheck_alcotest.to_alcotest prop_floor_log2_near_max;
          QCheck_alcotest.to_alcotest prop_ceil_div_near_max;
          QCheck_alcotest.to_alcotest prop_ceil_log_near_max;
          QCheck_alcotest.to_alcotest prop_ipow_raises_or_exact;
          QCheck_alcotest.to_alcotest prop_geometric_mean;
          Alcotest.test_case "geometric extreme means stay nonnegative"
            `Quick test_geometric_extreme_mean;
          Alcotest.test_case "mix_seed determinism + avalanche" `Quick
            test_mix_seed;
          Alcotest.test_case "zipf edge cases" `Quick test_zipf_edges;
          QCheck_alcotest.to_alcotest prop_zipf_cdf;
          QCheck_alcotest.to_alcotest prop_zipf_draw_inverts;
          QCheck_alcotest.to_alcotest prop_zipf_empirical ] );
      ( "ops+models",
        [ Alcotest.test_case "ops strings" `Quick test_ops_strings;
          Alcotest.test_case "model algebra" `Quick test_model_algebra;
          QCheck_alcotest.to_alcotest prop_dual_involution_model ] );
      ("texttab", [ Alcotest.test_case "render" `Quick test_texttab ]) ]
