(* Tests for the bounded model checker: exhaustive verification of the
   small configurations, and — crucially — the ability to FIND a planted
   violation (a checker that cannot fail cannot verify either). *)

open Cfc_base
open Cfc_runtime
open Cfc_mutex
open Cfc_mcheck

let check_bool = Alcotest.(check bool)

let expect_ok name = function
  | Explore.Ok stats ->
    check_bool (name ^ " explored something") true (stats.Explore.runs > 0)
  | Explore.Violation { violation; schedule; _ } ->
    Alcotest.failf "%s: %a (schedule %s)" name Cfc_core.Spec.pp_violation
      violation
      (String.concat "," (List.map string_of_int schedule))

(* A deliberately broken "lock" (test-and-test-and-set without atomicity:
   read then write) to prove the checker catches real races. *)
module Broken_lock : Mutex_intf.ALG = struct
  let name = "broken-lock"
  let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 2
  let atomicity (_ : Mutex_intf.params) = 1
  let predicted_cf_steps (_ : Mutex_intf.params) = None
  let predicted_cf_registers (_ : Mutex_intf.params) = None
  let recovery (_ : Mutex_intf.params) = None

  module Make (M : Cfc_base.Mem_intf.MEM) = struct
    type t = { flag : M.reg }

    let create (_ : Mutex_intf.params) =
      { flag = M.alloc ~name:"broken.flag" ~width:1 ~init:0 () }

    let lock t ~me:_ =
      (* Race: both processes can read 0 before either writes 1. *)
      while M.read t.flag = 1 do
        M.pause ()
      done;
      M.write t.flag 1

    let unlock t ~me:_ = M.write t.flag 0
  end
end

let test_finds_planted_race () =
  match Props.check_mutex (module Broken_lock) (Mutex_intf.params 2) with
  | Explore.Ok _ -> Alcotest.fail "missed the planted race"
  | Explore.Violation { schedule; violation; _ } ->
    check_bool "non-trivial schedule" true (List.length schedule > 0);
    check_bool "describes exclusion failure" true
      (violation.Cfc_core.Spec.what <> "")

(* The counterexample replays deterministically to the same violation. *)
let test_counterexample_replays () =
  match Props.check_mutex (module Broken_lock) (Mutex_intf.params 2) with
  | Explore.Ok _ -> Alcotest.fail "missed the planted race"
  | Explore.Violation { schedule; _ } ->
    let out =
      Explore.replay
        ~system:
          (Cfc_core.Mutex_harness.system (module Broken_lock)
             (Mutex_intf.params 2))
        ~schedule
    in
    let bad =
      Cfc_core.Spec.mutual_exclusion out.Runner.trace ~nprocs:2 <> None
      || List.exists
           (fun pid ->
             match Scheduler.status out.Runner.scheduler pid with
             | Scheduler.Errored _ -> true
             | _ -> false)
           [ 0; 1 ]
    in
    check_bool "replay reproduces violation" true bad

(* Exhaustive verification of the real algorithms at n=2 (and n=3 for the
   cheap ones). *)
let test_mutex_n2_exhaustive () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 2 in
      if A.supports p then
        expect_ok (A.name ^ " n=2") (Props.check_mutex (module A) p))
    Registry.all

let test_tree_l2_n3 () =
  let config =
    { Explore.max_depth = 80; max_steps_per_proc = 30; max_states = 400_000 }
  in
  expect_ok "tree n=3 l=2"
    (Props.check_mutex ~config Registry.tree { Mutex_intf.n = 3; l = 2 })

let test_mutex_two_rounds () =
  (* Re-entry (rounds=2) exercises state restoration after unlock. *)
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params 2 in
      let config =
        { Explore.max_depth = 80; max_steps_per_proc = 40;
          max_states = 400_000 }
      in
      expect_ok
        (A.name ^ " n=2 rounds=2")
        (Props.check_mutex ~config ~rounds:2 alg p))
    [ Registry.lamport_fast; Registry.peterson_tournament;
      Registry.kessels_tournament; Registry.tas_lock; Registry.mcs;
      Registry.ms_packed ]

let test_detectors_exhaustive () =
  List.iter
    (fun (module D : Mutex_intf.DETECTOR) ->
      List.iter
        (fun (n, l) ->
          let p = { Mutex_intf.n; l } in
          if D.supports p then
            expect_ok
              (Printf.sprintf "%s n=%d l=%d" D.name n l)
              (Props.check_detector (module D) p))
        [ (2, 4); (3, 4); (3, 1) ])
    Registry.detectors

let test_naming_exhaustive () =
  List.iter
    (fun (module A : Cfc_naming.Naming_intf.ALG) ->
      List.iter
        (fun n ->
          if A.supports ~n then
            expect_ok
              (Printf.sprintf "%s n=%d" A.name n)
              (Props.check_naming (module A) ~n))
        [ 2; 4 ])
    Cfc_naming.Registry.all

(* The flat "chunked splitter" this project originally shipped for the
   §2.6 claim: write the id chunk by chunk, gate, then verify chunks.
   Pairwise it is sound, but with n >= 3 a third process sharing a chunk
   value can restore it between verification reads — the model checker
   found a 16-step two-winner counterexample at n=3, l=1, which led to
   the splitter-tree replacement.  Kept as a regression fixture: the
   checker must keep finding this bug. *)
module Broken_chunked : Mutex_intf.DETECTOR = struct
  let name = "broken-chunked-splitter"
  let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1 && p.Mutex_intf.l >= 1
  let atomicity (p : Mutex_intf.params) =
    min p.Mutex_intf.l (Ixmath.bits_needed p.Mutex_intf.n)
  let predicted_cf_steps (_ : Mutex_intf.params) = None
  let predicted_wc_steps (_ : Mutex_intf.params) = None

  module Make (M : Cfc_base.Mem_intf.MEM) = struct
    type t = { l : int; x : M.reg array; y : M.reg }

    let create (p : Mutex_intf.params) =
      let n = p.Mutex_intf.n and l = p.Mutex_intf.l in
      let m = Ixmath.ceil_div (Ixmath.bits_needed n) l in
      {
        l;
        x = M.alloc_array ~name:"bx" ~width:(min l (Ixmath.bits_needed n))
            ~init:0 m;
        y = M.alloc ~name:"by" ~width:1 ~init:0 ();
      }

    let chunk t id j = (id lsr (j * t.l)) land (Ixmath.pow2 t.l - 1)

    let detect t ~me =
      let id = me + 1 in
      let m = Array.length t.x in
      for j = 0 to m - 1 do
        M.write t.x.(j) (chunk t id j)
      done;
      if M.read t.y = 1 then false
      else begin
        M.write t.y 1;
        let ok = ref true in
        for j = 0 to m - 1 do
          if M.read t.x.(j) <> chunk t id j then ok := false
        done;
        !ok
      end
  end
end

let test_finds_chunked_splitter_bug () =
  (* Sound for n=2 (pairwise argument holds)... *)
  expect_ok "chunked n=2"
    (Props.check_detector (module Broken_chunked) { Mutex_intf.n = 2; l = 1 });
  (* ...but broken for n=3 with chunk collisions. *)
  match
    Props.check_detector (module Broken_chunked) { Mutex_intf.n = 3; l = 1 }
  with
  | Explore.Ok _ -> Alcotest.fail "missed the chunked-splitter unsoundness"
  | Explore.Violation { schedule; _ } ->
    check_bool "counterexample within 20 steps" true
      (List.length schedule <= 20)

(* The recoverable lock, exhaustively verified under the crash-recovery
   fault model: every interleaving of 2 processes with up to 2
   crash-recovery pairs injected at every possible point (per CLAUDE.md:
   model-check a new algorithm before trusting paper arguments). *)
let test_recoverable_n2_crash_recovery () =
  match
    Props.check_mutex_recoverable ~pairs:2 Registry.rec_tas
      (Mutex_intf.params 2)
  with
  | Explore.Ok stats ->
    check_bool "explored runs" true (stats.Explore.runs > 0);
    check_bool "not truncated (exhaustive within bounds)" false
      stats.Explore.truncated
  | Explore.Violation { violation; schedule; _ } ->
    Alcotest.failf "recoverable-tas n=2: %a (schedule %s)"
      Cfc_core.Spec.pp_violation violation
      (String.concat ","
         (List.map (Format.asprintf "%a" Explore.pp_action) schedule))

(* Without fault injection the recoverable lock is just another mutex. *)
let test_recoverable_n2_crash_free () =
  expect_ok "recoverable-tas n=2 crash-free"
    (Props.check_mutex Registry.rec_tas (Mutex_intf.params 2))

(* A deliberately broken recoverable lock, kept as a regression fixture
   mirroring the chunked splitter below: acquisition is a sound CAS, but
   ownership is additionally cached in a per-process hint register that
   the release clears only AFTER freeing the lock — and recovery trusts
   the hint without re-reading the owner register.  Crash in that window
   and the restarted incarnation walks straight into a critical section
   someone else can also win.  The fault-aware checker must find this;
   the crash-free checker must not (the lock is correct without
   crashes). *)
module Broken_recovery : Mutex_intf.ALG = struct
  let name = "broken-recovery"
  let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
  let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.Mutex_intf.n
  let predicted_cf_steps (_ : Mutex_intf.params) = None
  let predicted_cf_registers (_ : Mutex_intf.params) = None
  let recovery (_ : Mutex_intf.params) = None

  module Make (M : Cfc_base.Mem_intf.MEM) = struct
    type t = { owner : M.reg; mine : M.reg array }

    let create (p : Mutex_intf.params) =
      let n = p.Mutex_intf.n in
      {
        owner =
          M.alloc ~name:"brec.owner" ~width:(Ixmath.bits_needed n) ~init:0 ();
        mine = M.alloc_array ~name:"brec.mine" ~width:1 ~init:0 n;
      }

    let lock t ~me =
      (* BUG: the stale hint is trusted; the owner register is never
         re-read on restart. *)
      if M.read t.mine.(me) = 1 then ()
      else begin
        while not (M.compare_and_set t.owner ~expected:0 (me + 1)) do
          M.pause ()
        done;
        M.write t.mine.(me) 1
      end

    let unlock t ~me =
      (* BUG amplifier: the lock is freed before the hint is cleared, so
         a crash between the two writes leaves a dangling hint. *)
      M.write t.owner 0;
      M.write t.mine.(me) 0
  end
end

let test_finds_broken_recovery () =
  (* Crash-free the lock is correct... *)
  expect_ok "broken-recovery crash-free"
    (Props.check_mutex (module Broken_recovery) (Mutex_intf.params 2));
  (* ...but one crash-recovery pair exposes the stale hint. *)
  match
    Props.check_mutex_recoverable ~pairs:1 (module Broken_recovery)
      (Mutex_intf.params 2)
  with
  | Explore.Ok _ -> Alcotest.fail "missed the stale-hint recovery bug"
  | Explore.Violation { schedule; violation; _ } ->
    check_bool "schedule contains a crash" true
      (List.exists
         (function Explore.Crash _ -> true | _ -> false)
         schedule);
    check_bool "schedule contains a recovery" true
      (List.exists
         (function Explore.Recover _ -> true | _ -> false)
         schedule);
    check_bool "describes the failure" true
      (violation.Cfc_core.Spec.what <> "");
    (* The counterexample replays deterministically. *)
    let out =
      Explore.replay_actions
        ~system:
          (Cfc_core.Mutex_harness.system (module Broken_recovery)
             (Mutex_intf.params 2))
        ~schedule
    in
    let bad =
      Cfc_core.Spec.mutual_exclusion_recoverable out.Runner.trace ~nprocs:2
      <> None
      || List.exists
           (fun pid ->
             match Scheduler.status out.Runner.scheduler pid with
             | Scheduler.Errored _ -> true
             | _ -> false)
           [ 0; 1 ]
    in
    check_bool "replay reproduces violation" true bad

(* The queue-lock variant of the same mistake, kept in the library
   ({!Cfc_mcheck.Fixtures}) so the benchmark's committed verdicts refute
   the very same module: intent recorded before the enqueue forges a
   grant for the restarted incarnation.  Refuted at both n=2 and n=3 —
   the counterexample needs only one crash–recovery pair. *)
let test_finds_broken_recovery_queue () =
  List.iter
    (fun n ->
      let p = Mutex_intf.params n in
      expect_ok
        (Printf.sprintf "broken-recovery-queue n=%d crash-free" n)
        (Props.check_mutex Fixtures.broken_recovery_queue p);
      match
        Props.check_mutex_recoverable ~pairs:1 Fixtures.broken_recovery_queue
          p
      with
      | Explore.Ok _ ->
        Alcotest.failf "missed the forged-grant recovery bug at n=%d" n
      | Explore.Violation { schedule; violation; _ } ->
        check_bool "schedule contains a crash" true
          (List.exists
             (function Explore.Crash _ -> true | _ -> false)
             schedule);
        check_bool "describes the failure" true
          (violation.Cfc_core.Spec.what <> "");
        (* The counterexample replays deterministically. *)
        let out =
          Explore.replay_actions
            ~system:
              (Cfc_core.Mutex_harness.system Fixtures.broken_recovery_queue p)
            ~schedule
        in
        check_bool "replay reproduces violation" true
          (Cfc_core.Spec.mutual_exclusion_recoverable out.Runner.trace
             ~nprocs:n
          <> None))
    [ 2; 3 ]

(* The recoverable queue lock under exhaustive fault injection.  The
   default bounds truncate on depth before covering every interleaving
   of two crash–recovery pairs, so this test widens them until the
   exploration is complete — every schedule of 2 processes with 2
   crash–recovery pairs each is covered (131,718 states, well inside the
   budget).  At n=3 full coverage is out of reach (3M+ states), so the
   check is a deliberately bounded sweep capped by max_states, same
   practice as the benchmark's n=3 entries. *)
let test_rec_queue_crash_recovery () =
  (match
     Props.check_mutex_recoverable
       ~config:
         { Explore.max_depth = 90; max_steps_per_proc = 40;
           max_states = 2_000_000 }
       ~pairs:2 Registry.rec_queue (Mutex_intf.params 2)
   with
  | Explore.Ok stats ->
    check_bool "n=2 explored runs" true (stats.Explore.runs > 0);
    check_bool "n=2 not truncated (exhaustive within bounds)" false
      stats.Explore.truncated
  | Explore.Violation { violation; schedule; _ } ->
    Alcotest.failf "recoverable-queue n=2: %a (schedule %s)"
      Cfc_core.Spec.pp_violation violation
      (String.concat ","
         (List.map (Format.asprintf "%a" Explore.pp_action) schedule)));
  match
    Props.check_mutex_recoverable
      ~config:
        { Explore.max_depth = 90; max_steps_per_proc = 25;
          max_states = 150_000 }
      ~pairs:1 Registry.rec_queue (Mutex_intf.params 3)
  with
  | Explore.Ok stats -> check_bool "n=3 explored runs" true (stats.Explore.runs > 0)
  | Explore.Violation { violation; _ } ->
    Alcotest.failf "recoverable-queue n=3: %a" Cfc_core.Spec.pp_violation
      violation

(* A broken naming "algorithm" (plain read/write, cannot break symmetry):
   the checker must find duplicate names. *)
module Broken_naming : Cfc_naming.Naming_intf.ALG = struct
  let name = "broken-naming"
  let model = Model.read_write
  let supports ~n = n >= 2
  let predicted_cf_steps ~n:_ = None
  let predicted_wc_steps ~n:_ = None
  let predicted_cf_registers ~n:_ = None
  let predicted_wc_registers ~n:_ = None

  module Make (M : Cfc_base.Mem_intf.MEM) = struct
    type t = { counter : M.reg array; n : int }

    let create ~n =
      { counter = M.alloc_array ~name:"ctr" ~width:1 ~init:0 8; n }

    (* Read a unary counter, claim the next slot — non-atomically. *)
    let run t =
      let rec first_zero i =
        if i >= Array.length t.counter then i
        else if M.read t.counter.(i) = 0 then i
        else first_zero (i + 1)
      in
      let i = first_zero 0 in
      M.write t.counter.(min i (Array.length t.counter - 1)) 1;
      min (i + 1) t.n
  end
end

let test_finds_naming_race () =
  match Props.check_naming (module Broken_naming) ~n:2 with
  | Explore.Ok _ -> Alcotest.fail "missed duplicate names"
  | Explore.Violation { violation; _ } ->
    check_bool "duplicate found" true
      (violation.Cfc_core.Spec.what <> "")

(* ------------------------------------------------------------------ *)
(* Engine and domain equivalence: the incremental engine (and its
   domain-parallel mode) must be indistinguishable from the replay
   reference — same verdicts, same counterexample schedules, and (for
   domains = 1) the same exact {runs; states; pruned; truncated}. *)

let pp_stats ppf (s : Explore.stats) =
  Format.fprintf ppf
    "{runs=%d; states=%d; pruned_dedup=%d; pruned_sym=%d; pruned_por=%d; \
     fp_collisions=%d; seen_pop=%d; seen_cap=%d; truncated=%b}"
    s.Explore.runs s.Explore.states s.Explore.pruned_dedup s.Explore.pruned_sym
    s.Explore.pruned_por s.Explore.fp_collisions s.Explore.seen_pop
    s.Explore.seen_cap s.Explore.truncated

let pp_gen_result pp_schedule ppf = function
  | Explore.Ok s -> Format.fprintf ppf "Ok %a" pp_stats s
  | Explore.Violation { schedule; violation; stats } ->
    Format.fprintf ppf "Violation {schedule=%a; %a; %a}" pp_schedule schedule
      Cfc_core.Spec.pp_violation violation pp_stats stats

let pp_int_schedule ppf s =
  Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int s))

let pp_action_schedule ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (List.map (Format.asprintf "%a" Explore.pp_action) s))

let result_t : Explore.result Alcotest.testable =
  Alcotest.testable (pp_gen_result pp_int_schedule) ( = )

let fault_result_t : Explore.fault_result Alcotest.testable =
  Alcotest.testable (pp_gen_result pp_action_schedule) ( = )

(* Verdict + schedule only (parallel stats legitimately differ from the
   sequential engine's, and with the shared seen set they additionally
   vary run to run — only the verdict and schedule are guaranteed). *)
let drop_stats = function
  | Explore.Ok _ -> None
  | Explore.Violation { schedule; violation; _ } -> Some (schedule, violation)

let test_engine_equivalence_registry () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 2 in
      if A.supports p then
        Alcotest.check result_t (A.name ^ " n=2 replay=incremental")
          (Props.check_mutex ~engine:Explore.Replay (module A) p)
          (Props.check_mutex ~engine:Explore.Incremental (module A) p))
    Registry.all;
  List.iter
    (fun (module A : Cfc_naming.Naming_intf.ALG) ->
      if A.supports ~n:2 then
        Alcotest.check result_t (A.name ^ " naming n=2 replay=incremental")
          (Props.check_naming ~engine:Explore.Replay (module A) ~n:2)
          (Props.check_naming ~engine:Explore.Incremental (module A) ~n:2))
    Cfc_naming.Registry.all

let test_engine_equivalence_broken () =
  let p2 = Mutex_intf.params 2 in
  Alcotest.check result_t "broken-lock replay=incremental"
    (Props.check_mutex ~engine:Explore.Replay (module Broken_lock) p2)
    (Props.check_mutex ~engine:Explore.Incremental (module Broken_lock) p2);
  Alcotest.check result_t "broken-chunked n=3 replay=incremental"
    (Props.check_detector ~engine:Explore.Replay (module Broken_chunked)
       { Mutex_intf.n = 3; l = 1 })
    (Props.check_detector ~engine:Explore.Incremental (module Broken_chunked)
       { Mutex_intf.n = 3; l = 1 });
  Alcotest.check fault_result_t "broken-recovery replay=incremental"
    (Props.check_mutex_recoverable ~engine:Explore.Replay ~pairs:1
       (module Broken_recovery) p2)
    (Props.check_mutex_recoverable ~engine:Explore.Incremental ~pairs:1
       (module Broken_recovery) p2);
  Alcotest.check fault_result_t "recoverable-tas pairs=2 replay=incremental"
    (Props.check_mutex_recoverable ~engine:Explore.Replay ~pairs:2
       Registry.rec_tas p2)
    (Props.check_mutex_recoverable ~engine:Explore.Incremental ~pairs:2
       Registry.rec_tas p2);
  Alcotest.check result_t "broken-naming replay=incremental"
    (Props.check_naming ~engine:Explore.Replay (module Broken_naming) ~n:2)
    (Props.check_naming ~engine:Explore.Incremental (module Broken_naming)
       ~n:2)

let test_domains_equivalence () =
  (* With private per-branch tables ([share_seen:false]) the parallel
     stats are deterministic: any domains>1 gives the same result, bit
     for bit. *)
  let check_alg name run =
    let seq = run 1 and par2 = run 2 and par3 = run 3 in
    Alcotest.(check bool)
      (name ^ ": domains=2 verdict+schedule = sequential")
      true
      (drop_stats par2 = drop_stats seq);
    Alcotest.(check bool) (name ^ ": domains=2 = domains=3") true (par2 = par3)
  in
  let p2 = Mutex_intf.params 2 in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      check_alg A.name (fun domains ->
          Props.check_mutex ~domains ~share_seen:false alg p2))
    [ Registry.lamport_fast; Registry.tas_lock; Registry.peterson_tournament ];
  check_alg "broken-lock" (fun domains ->
      Props.check_mutex ~domains ~share_seen:false (module Broken_lock) p2);
  let fault_check name run =
    let seq = run 1 and par2 = run 2 and par3 = run 3 in
    Alcotest.(check bool)
      (name ^ ": domains=2 verdict+schedule = sequential")
      true
      (drop_stats par2 = drop_stats seq);
    Alcotest.(check bool) (name ^ ": domains=2 = domains=3") true (par2 = par3)
  in
  fault_check "recoverable-tas pairs=1" (fun domains ->
      Props.check_mutex_recoverable ~domains ~share_seen:false ~pairs:1
        Registry.rec_tas p2);
  fault_check "broken-recovery pairs=1" (fun domains ->
      Props.check_mutex_recoverable ~domains ~share_seen:false ~pairs:1
        (module Broken_recovery) p2)

(* The shared (pooled) seen set must leave the verdict and the reported
   counterexample schedule exactly equal to the sequential search's, for
   every domain count and on every repetition — completion-gated
   cross-branch pruning makes pruning timing-invisible to the DFS.  The
   stats are explicitly allowed to vary, so only verdict+schedule are
   compared. *)
let test_shared_seen_determinism () =
  let p2 = Mutex_intf.params 2 in
  let check name seq run =
    let expected = drop_stats seq in
    List.iter
      (fun domains ->
        List.iter
          (fun rep ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: shared-seen domains=%d rep=%d" name domains
                 rep)
              true
              (drop_stats (run domains) = expected))
          [ 1; 2 ])
      [ 1; 2; 4 ]
  in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      check A.name
        (Props.check_mutex alg p2)
        (fun domains -> Props.check_mutex ~domains ~share_seen:true alg p2))
    [ Registry.lamport_fast; Registry.peterson_tournament ];
  check "broken-lock"
    (Props.check_mutex (module Broken_lock) p2)
    (fun domains ->
      Props.check_mutex ~domains ~share_seen:true (module Broken_lock) p2);
  (* and composed with POR, where the shared entries carry sleep/step
     payloads *)
  let independence =
    Option.get (Independence.mutex Registry.peterson_tournament p2)
  in
  check "peterson-tournament por"
    (Props.check_mutex ~independence Registry.peterson_tournament p2)
    (fun domains ->
      Props.check_mutex ~domains ~share_seen:true ~independence
        Registry.peterson_tournament p2);
  (* fault injection: the violating branch and schedule stay fixed *)
  let seq =
    Props.check_mutex_recoverable ~pairs:1 (module Broken_recovery) p2
  in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "broken-recovery: shared-seen domains=%d" domains)
        true
        (drop_stats
           (Props.check_mutex_recoverable ~domains ~share_seen:true ~pairs:1
              (module Broken_recovery) p2)
        = drop_stats seq))
    [ 2; 4 ]

let test_symmetric_still_refutes () =
  List.iter
    (fun engine ->
      List.iter
        (fun domains ->
          match
            Props.check_naming ~engine ~domains ~symmetric:true
              (module Broken_naming) ~n:2
          with
          | Explore.Ok _ ->
            Alcotest.fail "symmetric reduction hid the naming race"
          | Explore.Violation { violation; _ } ->
            Alcotest.(check bool) "duplicate found" true
              (violation.Cfc_core.Spec.what <> ""))
        [ 1; 2 ])
    [ Explore.Replay; Explore.Incremental ]

(* ------------------------------------------------------------------ *)
(* State-key regression: the pre-rewrite fingerprint packed access kinds
   into magic integer ranges (A_xchg as [20_000 + v], A_cas as
   [30_000 + 2·expected + success], A_field as [10_000 + 64·i + w]), so
   an exchange writing 10_001 aliased a successful CAS with expected=0.
   The variant-typed key must keep every such pair distinct. *)

let test_state_key_kinds_distinct () =
  let key kind =
    let cl = { State_key.reg = 0; kind } in
    { State_key.k_regvals = [| 0 |];
      k_procs =
        [| { State_key.k_status = 0; k_region = Event.Remainder;
             k_obs_hash = State_key.cell_hash 0 cl; k_obs = [ cl ] } |] }
  in
  let distinct what a b =
    Alcotest.(check bool) what false (State_key.equal (key a) (key b))
  in
  (* 20_000 + 10_001 = 30_000 + 2·0 + 1 under the old packing. *)
  distinct "xchg 10_001 vs cas(0,_,true)"
    (Event.A_xchg (10_001, 7))
    (Event.A_cas (0, 7, true));
  (* 20_000 + v collides with 30_000 + 2e + s for every v >= 10_000. *)
  distinct "xchg 10_004 vs cas(2,_,false)"
    (Event.A_xchg (10_004, 0))
    (Event.A_cas (2, 0, false));
  (* 10_000 + 64·i + w reaches the xchg band at large field indexes. *)
  distinct "field(156,16,_) vs xchg 6" (Event.A_field (156, 16, 3))
    (Event.A_xchg (6, 3));
  (* Same packed value, different observed results must also differ. *)
  distinct "cas success vs failure" (Event.A_cas (0, 7, true))
    (Event.A_cas (0, 7, false));
  Alcotest.(check bool) "identical cells compare equal" true
    (State_key.equal
       (key (Event.A_xchg (10_001, 7)))
       (key (Event.A_xchg (10_001, 7))))

(* An exchange-based lock whose register values live in the >= 10_000
   range that used to alias other access kinds; the exploration must
   still verify it and both engines must agree exactly. *)
module Big_values : Mutex_intf.ALG = struct
  let name = "big-values"
  let supports (p : Mutex_intf.params) = p.Mutex_intf.n = 2
  let atomicity (_ : Mutex_intf.params) = 15
  let predicted_cf_steps (_ : Mutex_intf.params) = None
  let predicted_cf_registers (_ : Mutex_intf.params) = None
  let recovery (_ : Mutex_intf.params) = None

  module Make (M : Cfc_base.Mem_intf.MEM) = struct
    type t = { owner : M.reg }

    let create (_ : Mutex_intf.params) =
      { owner = M.alloc ~name:"big.owner" ~width:15 ~init:0 () }

    (* Process 0 acquires by CAS, process 1 by exchange with a sentinel
       chosen so the old packing would alias the two observations. *)
    let lock t ~me =
      if me = 0 then
        while not (M.compare_and_set t.owner ~expected:0 10_002) do
          M.pause ()
        done
      else
        while M.fetch_and_store t.owner 10_001 <> 0 do
          M.pause ()
        done

    let unlock t ~me:_ = M.write t.owner 0
  end
end

let test_large_register_values () =
  let p = Mutex_intf.params 2 in
  let inc = Props.check_mutex ~engine:Explore.Incremental (module Big_values) p
  and rep = Props.check_mutex ~engine:Explore.Replay (module Big_values) p in
  expect_ok "big-values n=2" inc;
  Alcotest.check result_t "big-values replay=incremental" rep inc

(* Pruning effectiveness: the state memo must prune a substantial share
   on a spin-heavy system, or exploration would not terminate in bounds. *)
let test_pruning_observable () =
  match Props.check_mutex Registry.peterson_tournament (Mutex_intf.params 2)
  with
  | Explore.Ok stats ->
    check_bool "pruned > 0" true (stats.Explore.pruned_dedup > 0)
  | Explore.Violation { violation; _ } ->
    Alcotest.failf "unexpected: %a" Cfc_core.Spec.pp_violation violation

(* ------------------------------------------------------------------ *)
(* Partial-order reduction: the reduced search is anchored exactly like
   the incremental engine was — the verdict must match the unreduced
   search on every registry system and every broken fixture, violation
   schedules must replay, and the static independence relation the
   reduction trusts is validated against dynamic commutation on live
   schedulers. *)

let verdict_of = function Explore.Ok _ -> "ok" | Explore.Violation _ -> "violation"

let test_por_equivalence_registry () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 2 in
      if A.supports p then begin
        match Independence.mutex (module A) p with
        | None ->
          Alcotest.failf "%s: no independence model (analysis regressed?)"
            A.name
        | Some independence ->
          let off = Props.check_mutex (module A) p in
          let on = Props.check_mutex ~independence (module A) p in
          Alcotest.(check string)
            (A.name ^ " n=2 por verdict") (verdict_of off) (verdict_of on);
          let s_off = (match off with Explore.Ok s | Explore.Violation { stats = s; _ } -> s)
          and s_on = (match on with Explore.Ok s | Explore.Violation { stats = s; _ } -> s) in
          check_bool (A.name ^ " n=2 por explores no more states") true
            (s_on.Explore.states <= s_off.Explore.states);
          check_bool (A.name ^ " n=2 por off reports pruned_por=0") true
            (s_off.Explore.pruned_por = 0)
      end)
    Registry.all

let test_por_equivalence_n3 () =
  let config =
    { Explore.max_depth = 90; max_steps_per_proc = 25; max_states = 150_000 }
  in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params 3 in
      if A.supports p then begin
        match Independence.mutex alg p with
        | None -> Alcotest.failf "%s n=3: no independence model" A.name
        | Some independence ->
          let off = Props.check_mutex ~config alg p in
          let on = Props.check_mutex ~config ~independence alg p in
          Alcotest.(check string)
            (A.name ^ " n=3 por verdict") (verdict_of off) (verdict_of on)
      end)
    [ Registry.peterson_tournament; Registry.one_bit; Registry.mcs ]

(* The planted race must survive the reduction, and the reduced search's
   counterexample must replay to a real violation. *)
let test_por_finds_planted_race () =
  let p = Mutex_intf.params 2 in
  let independence =
    match Independence.mutex (module Broken_lock) p with
    | Some i -> i
    | None -> Alcotest.fail "broken-lock: no independence model"
  in
  match Props.check_mutex ~independence (module Broken_lock) p with
  | Explore.Ok _ -> Alcotest.fail "reduction hid the planted race"
  | Explore.Violation { schedule; _ } ->
    let out =
      Explore.replay
        ~system:(Cfc_core.Mutex_harness.system (module Broken_lock) p)
        ~schedule
    in
    check_bool "por counterexample replays to violation" true
      (Cfc_core.Spec.mutual_exclusion out.Runner.trace ~nprocs:2 <> None)

let test_por_finds_chunked_splitter_bug () =
  let p = { Mutex_intf.n = 3; l = 1 } in
  let independence =
    match Independence.detector (module Broken_chunked) p with
    | Some i -> i
    | None -> Alcotest.fail "broken-chunked: no independence model"
  in
  match Props.check_detector ~independence (module Broken_chunked) p with
  | Explore.Ok _ -> Alcotest.fail "reduction hid the chunked-splitter bug"
  | Explore.Violation { schedule; _ } ->
    let out =
      Explore.replay
        ~system:(Cfc_core.Detect_harness.system (module Broken_chunked) p)
        ~schedule
    in
    check_bool "por counterexample replays to violation" true
      (Cfc_core.Spec.at_most_one_winner out.Runner.trace ~nprocs:3 <> None)

let test_por_domains_equivalence () =
  let p = Mutex_intf.params 2 in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let independence = Option.get (Independence.mutex alg p) in
      let run domains =
        Props.check_mutex ~domains ~share_seen:false ~independence alg p
      in
      let seq = run 1 and par2 = run 2 and par3 = run 3 in
      check_bool (A.name ^ ": por domains=2 verdict+schedule = sequential")
        true
        (drop_stats par2 = drop_stats seq);
      check_bool (A.name ^ ": por domains=2 = domains=3") true (par2 = par3))
    [ Registry.peterson_tournament; Registry.bakery; Registry.lamport_fast ];
  let independence =
    Option.get (Independence.mutex (module Broken_lock) p)
  in
  let run domains =
    Props.check_mutex ~domains ~independence (module Broken_lock) p
  in
  check_bool "broken-lock: por domains=2 verdict+schedule = sequential" true
    (drop_stats (run 2) = drop_stats (run 1))

(* [seen_hint] pre-sizes the memo table; apart from the reported capacity
   ([seen_cap], which is exactly what the hint overrides) it must be
   invisible in the result, reduced or not. *)
let test_seen_hint_invisible () =
  let p = Mutex_intf.params 2 in
  let alg = Registry.lamport_fast in
  let (module A : Mutex_intf.ALG) = alg in
  let scrub_cap = function
    | Explore.Ok s -> Explore.Ok { s with Explore.seen_cap = 0 }
    | Explore.Violation v ->
      Explore.Violation
        { v with stats = { v.stats with Explore.seen_cap = 0 } }
  in
  Alcotest.check result_t "seen_hint invisible (unreduced)"
    (scrub_cap (Props.check_mutex alg p))
    (scrub_cap (Props.check_mutex ~seen_hint:4096 alg p));
  let independence = Option.get (Independence.mutex alg p) in
  Alcotest.check result_t "seen_hint invisible (por)"
    (scrub_cap (Props.check_mutex ~independence alg p))
    (scrub_cap (Props.check_mutex ~independence ~seen_hint:4096 alg p))

(* ------------------------------------------------------------------ *)
(* Symmetry reduction: the canonicalisation is anchored exactly like the
   other reductions — a qcheck congruence property (permuting the pids
   of an execution permutes the state key, and both executions share one
   canonical form), registry-wide verdict-equivalence sweeps against the
   unreduced engine (alone, composed with POR, and composed with POR and
   the compact seen set), and regressions that the broken fixtures stay
   refuted under the full composition. *)

(* The registry algorithms whose derived symmetry group is non-trivial,
   paired with their checked system.  The derivation is expected to
   succeed on the structurally symmetric algorithms — pin a few by name
   so a silent analysis regression cannot empty this list. *)
let sym_subjects =
  List.filter_map
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 2 in
      if not (A.supports p) then None
      else
        match Symmetry.mutex (module A) p with
        | Some s when Symmetry.group_order s > 1 ->
          Some (A.name, Cfc_core.Mutex_harness.system (module A) p, s)
        | Some _ | None -> None)
    Registry.all

let test_symmetry_groups_exist () =
  let names = List.map (fun (n, _, _) -> n) sym_subjects in
  List.iter
    (fun expected ->
      check_bool
        (Printf.sprintf "%s n=2 has a non-trivial symmetry group" expected)
        true
        (List.mem expected names))
    [ "peterson-2p-tournament"; "tas-lock"; "mcs-lock" ];
  (* Two must-NOT-derive pins (if either ever derives a group, the
     derivation got laxer and needs a fresh soundness argument):
     tree-lamport's scan loop reads the per-pid flag registers in fixed
     index order in every variant, so a pid renaming does not map traces
     to traces; kessels' turn bits are written context-dependently (one
     side copies the other's bit, the other negates it), so no static
     value correspondence exists. *)
  List.iter
    (fun (alg, why) ->
      let (module A : Mutex_intf.ALG) = alg in
      match Symmetry.mutex alg (Mutex_intf.params 2) with
      | None -> ()
      | Some s ->
        check_bool
          (Printf.sprintf "%s n=2 derives no group (%s)" A.name why)
          true
          (Symmetry.group_order s <= 1))
    [ (Registry.tree, "pid-ordered scan");
      (Registry.kessels_tournament, "context-dependent turn writes") ];
  (* beyond n=2: peterson's tournament at n=4 must get the order-8
     tree-automorphism group — this is the headline n=4 configuration —
     not all of S4 (cross-subtree swaps do not preserve the bracket) *)
  (match Symmetry.mutex Registry.peterson_tournament { Mutex_intf.n = 4; l = 2 }
   with
  | Some s ->
    Alcotest.(check int)
      "peterson-2p-tournament n=4 tree-automorphism group order" 8
      (Symmetry.group_order s)
  | None -> Alcotest.fail "peterson-2p-tournament n=4: no symmetry group")

(* Permuting the pids of a whole execution: schedule [pi . sigma] instead
   of [sigma].  The reached state's key must be exactly [remap_key pi]
   of the original key (whenever the permutation's partial value maps
   cover the values in play), and both keys must canonicalise to the
   same representative — this is the congruence the memoization rests
   on, checked against real executions. *)
let congruence_sample ~seed ~subject ~len =
  let _, system, s = subject in
  let n = Symmetry.nprocs s in
  let rng = Random.State.make [| seed |] in
  let schedule = List.init len (fun _ -> Random.State.int rng n) in
  let key sched =
    let out = Explore.replay ~system ~schedule:sched in
    State_key.of_system out.Runner.memory out.Runner.scheduler
      out.Runner.trace
  in
  let key1 = key schedule in
  List.fold_left
    (fun acc pi ->
      match acc with
      | Error _ -> acc
      | Ok tested -> (
        match Symmetry.remap_key s pi key1 with
        | exception Symmetry.Inapplicable -> acc
        | mapped ->
          let key2 = key (List.map (fun p -> pi.(p)) schedule) in
          if not (State_key.equal mapped key2) then
            Error "remapped key <> permuted execution's key"
          else if
            not
              (State_key.equal
                 (fst (Symmetry.canon s key1))
                 (fst (Symmetry.canon s key2)))
          then Error "canonical forms differ across a pid permutation"
          else Ok (tested + 1)))
    (Ok 0) (Symmetry.perms s)

let prop_symmetry_congruence =
  QCheck.Test.make ~count:200
    ~name:"pid-permuted executions share one canonical key"
    QCheck.(triple (int_bound 100_000) (int_bound 1_000) (int_bound 40))
    (fun (seed, pick, len) ->
      sym_subjects = []
      ||
      let subject = List.nth sym_subjects (pick mod List.length sym_subjects) in
      match congruence_sample ~seed ~subject ~len with
      | Ok _ -> true
      | Error _ -> false)

(* The qcheck property is vacuous if every permutation hits a value
   outside its partial maps; this deterministic sweep pins a floor on how
   many (schedule, permutation) pairs are actually compared. *)
let test_symmetry_congruence_coverage () =
  let tested = ref 0 in
  List.iteri
    (fun i subject ->
      let name, _, _ = subject in
      for seed = 0 to 24 do
        List.iter
          (fun len ->
            match
              congruence_sample ~seed:((1000 * i) + seed) ~subject ~len
            with
            | Ok t -> tested := !tested + t
            | Error what -> Alcotest.failf "%s: %s" name what)
          [ 0; 5; 13; 29; 41 ]
      done)
    sym_subjects;
  check_bool
    (Printf.sprintf "enough permuted executions compared (%d)" !tested)
    true (!tested >= 25)

(* Verdict equivalence at n=2 over the whole registry: symmetry alone,
   symmetry x POR, and symmetry x POR x compact must all agree with the
   unreduced search; the compact run must report no collisions and be
   bit-identical to its exact twin. *)
let test_sym_equivalence_registry () =
  let total_sym = ref 0 in
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 2 in
      if A.supports p then
        match Symmetry.mutex (module A) p with
        | None -> ()
        | Some symmetry ->
          let off = Props.check_mutex (module A) p in
          let s = Props.check_mutex ~symmetry (module A) p in
          Alcotest.(check string)
            (A.name ^ " n=2 sym verdict") (verdict_of off) (verdict_of s);
          let stats_of_r = function
            | Explore.Ok st | Explore.Violation { stats = st; _ } -> st
          in
          check_bool (A.name ^ " n=2 sym explores no more states") true
            ((stats_of_r s).Explore.states
            <= (stats_of_r off).Explore.states);
          total_sym := !total_sym + (stats_of_r s).Explore.pruned_sym;
          (match Independence.mutex (module A) p with
          | None -> ()
          | Some independence ->
            let sp = Props.check_mutex ~symmetry ~independence (module A) p in
            Alcotest.(check string)
              (A.name ^ " n=2 sym x por verdict")
              (verdict_of off) (verdict_of sp);
            let spc =
              Props.check_mutex ~symmetry ~independence ~compact:true
                (module A) p
            in
            Alcotest.check result_t (A.name ^ " n=2 compact = exact") sp spc;
            check_bool (A.name ^ " n=2 compact: no collisions") true
              ((stats_of_r spc).Explore.fp_collisions = 0)))
    Registry.all;
  check_bool
    (Printf.sprintf "symmetry actually merged states somewhere (%d)"
       !total_sym)
    true (!total_sym > 0)

let test_sym_equivalence_n3 () =
  let config =
    { Explore.max_depth = 90; max_steps_per_proc = 25; max_states = 150_000 }
  in
  List.iter
    (fun (alg, p) ->
      let (module A : Mutex_intf.ALG) = alg in
      if A.supports p then
        match Symmetry.mutex alg p with
        | None -> Alcotest.failf "%s n=3: no symmetry group" A.name
        | Some symmetry ->
          let off = Props.check_mutex ~config alg p in
          let s = Props.check_mutex ~config ~symmetry alg p in
          Alcotest.(check string)
            (A.name ^ " n=3 sym verdict") (verdict_of off) (verdict_of s);
          (match Independence.mutex alg p with
          | None -> ()
          | Some independence ->
            let sp =
              Props.check_mutex ~config ~symmetry ~independence alg p
            in
            Alcotest.(check string)
              (A.name ^ " n=3 sym x por verdict")
              (verdict_of off) (verdict_of sp);
            let spc =
              Props.check_mutex ~config ~symmetry ~independence ~compact:true
                alg p
            in
            Alcotest.check result_t (A.name ^ " n=3 compact = exact") sp spc))
    [ (Registry.peterson_tournament, Mutex_intf.params 3);
      (Registry.tas_lock, Mutex_intf.params 3) ]

(* The broken fixtures must stay refuted under the full composition —
   a reduction that can only verify cannot be trusted to verify. *)
let test_sym_refutes_fixtures () =
  let p2 = Mutex_intf.params 2 in
  (match Symmetry.mutex (module Broken_lock) p2 with
  | None -> Alcotest.fail "broken-lock: no symmetry group"
  | Some symmetry -> (
    let independence = Option.get (Independence.mutex (module Broken_lock) p2) in
    match
      Props.check_mutex ~symmetry ~independence ~compact:true
        (module Broken_lock) p2
    with
    | Explore.Ok _ -> Alcotest.fail "sym x por x compact hid the planted race"
    | Explore.Violation { schedule; _ } ->
      let out =
        Explore.replay
          ~system:(Cfc_core.Mutex_harness.system (module Broken_lock) p2)
          ~schedule
      in
      check_bool "sym counterexample replays to violation" true
        (Cfc_core.Spec.mutual_exclusion out.Runner.trace ~nprocs:2 <> None)));
  let p31 = { Mutex_intf.n = 3; l = 1 } in
  (match Symmetry.detector (module Broken_chunked) p31 with
  | None -> Alcotest.fail "broken-chunked: no symmetry group"
  | Some symmetry -> (
    let independence =
      Option.get (Independence.detector (module Broken_chunked) p31)
    in
    match
      Props.check_detector ~symmetry ~independence (module Broken_chunked) p31
    with
    | Explore.Ok _ ->
      Alcotest.fail "sym x por hid the chunked-splitter bug at n=3"
    | Explore.Violation _ -> ()));
  match Symmetry.mutex (module Broken_recovery) p2 with
  | None -> Alcotest.fail "broken-recovery: no symmetry group"
  | Some symmetry -> (
    match
      Props.check_mutex_recoverable ~symmetry ~pairs:1
        (module Broken_recovery) p2
    with
    | Explore.Ok _ ->
      Alcotest.fail "symmetry hid the stale-hint recovery bug"
    | Explore.Violation { schedule; _ } ->
      check_bool "sym fault counterexample has a crash" true
        (List.exists
           (function Explore.Crash _ -> true | _ -> false)
           schedule))

(* --- static independence vs dynamic commutation ------------------- *)

(* Registry algorithms (n=2) whose access-graph analysis yields a usable
   independence model, with that model. *)
let commutation_subjects =
  List.filter_map
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 2 in
      if not (A.supports p) then None
      else
        match Independence.mutex (module A) p with
        | Some ind -> Some ((module A : Mutex_intf.ALG), p, ind)
        | None -> None)
    Registry.all

(* Drive a fresh system down one seeded random schedule prefix while
   tracking every process's position in its access graph; if the reached
   state has two enabled processes whose next-step footprints are
   statically independent, execute the pair in both orders (from fresh
   systems, via the replay engine) and compare the end-state
   fingerprints.  This is the claim the reduction rests on, checked
   against the real scheduler rather than the abstraction. *)
let commutation_sample ~seed ~subject ~prefix_len =
  let (module A : Mutex_intf.ALG), p, ind = subject in
  let system = Cfc_core.Mutex_harness.system (module A) p in
  let memory, procs = system () in
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  let tr = Independence.track ind ~nprocs:(Array.length procs) in
  let rng = Random.State.make [| seed |] in
  let feed from =
    for i = from to Trace.length trace - 1 do
      let e = Trace.get trace i in
      match e.Event.body with
      | Event.Access (r, k) ->
        Independence.observe tr ~pid:e.Event.pid ~reg:r.Register.id ~kind:k
      | _ -> ()
    done
  in
  let prefix = ref [] in
  let steps = ref prefix_len in
  while !steps > 0 do
    (match Scheduler.runnable sched with
    | [] -> steps := 1
    | pids -> (
      let pid = List.nth pids (Random.State.int rng (List.length pids)) in
      let from = Trace.length trace in
      match Scheduler.step sched pid with
      | Scheduler.Progress | Scheduler.Finished ->
        prefix := pid :: !prefix;
        feed from
      | Scheduler.Not_runnable -> ()));
    decr steps
  done;
  let prefix = List.rev !prefix in
  match Scheduler.runnable sched with
  | a :: b :: _ -> (
    match (Independence.next_fp tr a, Independence.next_fp tr b) with
    | Some fa, Some fb when not (Independence.conflict fa fb) ->
      let key schedule =
        let out = Explore.replay ~system ~schedule in
        State_key.of_system out.Runner.memory out.Runner.scheduler
          out.Runner.trace
      in
      `Tested
        (State_key.equal (key (prefix @ [ a; b ])) (key (prefix @ [ b; a ])))
    | _ -> `Conflicting)
  | _ -> `No_pair

let prop_independent_steps_commute =
  QCheck.Test.make ~count:200
    ~name:"statically independent enabled steps commute dynamically"
    QCheck.(triple (int_bound 100_000) (int_bound 1_000) (int_bound 40))
    (fun (seed, pick, prefix_len) ->
      let subject =
        List.nth commutation_subjects
          (pick mod List.length commutation_subjects)
      in
      match commutation_sample ~seed ~subject ~prefix_len with
      | `Tested commutes -> commutes
      | `Conflicting | `No_pair -> true)

(* The qcheck property above is vacuous if random prefixes never reach a
   statically-independent pair; this deterministic sweep pins a floor on
   how many pairs actually get exercised (and re-checks them). *)
let test_commutation_coverage () =
  let tested = ref 0 in
  List.iteri
    (fun i subject ->
      for seed = 0 to 9 do
        List.iter
          (fun prefix_len ->
            match
              commutation_sample ~seed:((1000 * i) + seed) ~subject
                ~prefix_len
            with
            | `Tested commutes ->
              incr tested;
              check_bool "independent pair commutes" true commutes
            | `Conflicting | `No_pair -> ())
          [ 3; 9; 17 ]
      done)
    commutation_subjects;
  check_bool
    (Printf.sprintf "enough independent pairs exercised (%d)" !tested)
    true (!tested >= 25)

(* ------------------------------------------------------------------ *)
(* Static race enumeration vs dynamic conflicts: every cross-process
   conflicting access pair the exhaustive n=2 search actually executes
   must be matched by a race the static product enumeration reports on
   the same register with the same unordered class pair.  The static
   subject is [of_mutex_checked] — the solo that mirrors the checked
   system, witness register included, so register ids align with the
   checked arena. *)

type coverage = {
  cov_name : string;
  cov_pairs : int;
  cov_missing : Cfc_mcheck.Conflicts.pair list;
}

let conflict_coverage alg =
  let (module A : Mutex_intf.ALG) = alg in
  let subject =
    match Cfc_analysis.Subjects.of_mutex_checked ~n:2 alg with
    | Some s -> s
    | None -> Alcotest.failf "%s: no checked subject at n=2" A.name
  in
  let product =
    Cfc_analysis.Product.of_report (Cfc_analysis.Analyze.analyze subject)
  in
  let conflicts = Cfc_mcheck.Conflicts.create () in
  (match
     Props.check_mutex
       ~observe_access:(Cfc_mcheck.Conflicts.observer conflicts)
       alg (Mutex_intf.params 2)
   with
  | Explore.Ok _ -> ()
  | Explore.Violation { violation; _ } ->
    Alcotest.failf "%s refuted at n=2: %a" A.name
      Cfc_core.Spec.pp_violation violation);
  let pairs = Cfc_mcheck.Conflicts.pairs conflicts in
  let missing =
    List.filter
      (fun (p : Cfc_mcheck.Conflicts.pair) ->
        not
          (Cfc_analysis.Product.has_pair product ~reg:p.Cfc_mcheck.Conflicts.rid
             ~cls_a:p.cls_a ~cls_b:p.cls_b))
      pairs
  in
  { cov_name = A.name; cov_pairs = List.length pairs; cov_missing = missing }

let check_covered cov =
  List.iter
    (fun (p : Cfc_mcheck.Conflicts.pair) ->
      Alcotest.failf
        "%s: dynamic conflict on %s (pid %d %s / pid %d %s) has no static \
         race"
        cov.cov_name p.Cfc_mcheck.Conflicts.reg p.pid_a p.cls_a p.pid_b
        p.cls_b)
    cov.cov_missing

(* Memoized per algorithm: the qcheck property samples the registry, the
   deterministic sweep below guarantees every algorithm is hit and pins a
   floor on how many conflict pairs the property actually exercises. *)
let coverage_memo = Hashtbl.create 16

let coverage_of alg =
  let (module A : Mutex_intf.ALG) = alg in
  match Hashtbl.find_opt coverage_memo A.name with
  | Some c -> c
  | None ->
    let c = conflict_coverage alg in
    Hashtbl.add coverage_memo A.name c;
    c

let prop_static_covers_dynamic =
  QCheck.Test.make ~count:30
    ~name:"static race set covers observed dynamic conflicts (n=2)"
    QCheck.(int_bound 100_000)
    (fun pick ->
      let alg = List.nth Registry.all (pick mod List.length Registry.all) in
      (coverage_of alg).cov_missing = [])

let test_conflict_coverage_registry () =
  let total = ref 0 in
  List.iter
    (fun alg ->
      let cov = coverage_of alg in
      check_covered cov;
      total := !total + cov.cov_pairs)
    Registry.all;
  check_bool
    (Printf.sprintf "enough dynamic conflict pairs exercised (%d)" !total)
    true (!total >= 50)

let () =
  Alcotest.run "cfc_mcheck"
    [ ( "finds-bugs",
        [ Alcotest.test_case "planted mutex race" `Quick
            test_finds_planted_race;
          Alcotest.test_case "counterexample replays" `Quick
            test_counterexample_replays;
          Alcotest.test_case "planted naming race" `Quick
            test_finds_naming_race;
          Alcotest.test_case "chunked-splitter unsoundness (regression)"
            `Quick test_finds_chunked_splitter_bug ] );
      ( "crash-recovery",
        [ Alcotest.test_case "recoverable-tas n=2, 2 pairs" `Slow
            test_recoverable_n2_crash_recovery;
          Alcotest.test_case "recoverable-tas n=2 crash-free" `Quick
            test_recoverable_n2_crash_free;
          Alcotest.test_case "recoverable-queue n=2 (exhaustive) and n=3"
            `Slow test_rec_queue_crash_recovery;
          Alcotest.test_case "broken recovery found (regression)" `Quick
            test_finds_broken_recovery;
          Alcotest.test_case "broken recovery queue found n∈{2,3}" `Quick
            test_finds_broken_recovery_queue ] );
      ( "verifies",
        [ Alcotest.test_case "all mutexes n=2" `Slow test_mutex_n2_exhaustive;
          Alcotest.test_case "tree n=3 l=2" `Slow test_tree_l2_n3;
          Alcotest.test_case "two rounds" `Slow test_mutex_two_rounds;
          Alcotest.test_case "detectors" `Quick test_detectors_exhaustive;
          Alcotest.test_case "naming n∈{2,4}" `Slow test_naming_exhaustive ] );
      ( "engine-equivalence",
        [ Alcotest.test_case "registry n=2 replay=incremental" `Slow
            test_engine_equivalence_registry;
          Alcotest.test_case "broken fixtures replay=incremental" `Quick
            test_engine_equivalence_broken;
          Alcotest.test_case "domains=1 vs domains>1" `Slow
            test_domains_equivalence;
          Alcotest.test_case "shared seen set deterministic" `Slow
            test_shared_seen_determinism;
          Alcotest.test_case "symmetric still refutes" `Quick
            test_symmetric_still_refutes ] );
      ( "symmetry",
        [ Alcotest.test_case "groups derived for the symmetric algorithms"
            `Quick test_symmetry_groups_exist;
          QCheck_alcotest.to_alcotest prop_symmetry_congruence;
          Alcotest.test_case "congruence coverage floor" `Slow
            test_symmetry_congruence_coverage;
          Alcotest.test_case "registry n=2 sym/por/compact = unreduced" `Slow
            test_sym_equivalence_registry;
          Alcotest.test_case "n=3 sym/por/compact = unreduced" `Slow
            test_sym_equivalence_n3;
          Alcotest.test_case "broken fixtures survive the composition" `Quick
            test_sym_refutes_fixtures ] );
      ( "state-key",
        [ Alcotest.test_case "access kinds never alias (regression)" `Quick
            test_state_key_kinds_distinct;
          Alcotest.test_case "register values >= 10_000" `Quick
            test_large_register_values ] );
      ( "partial-order-reduction",
        [ Alcotest.test_case "registry n=2 por=unreduced" `Slow
            test_por_equivalence_registry;
          Alcotest.test_case "n=3 por=unreduced" `Slow
            test_por_equivalence_n3;
          Alcotest.test_case "planted race survives reduction" `Quick
            test_por_finds_planted_race;
          Alcotest.test_case "chunked-splitter bug survives reduction" `Quick
            test_por_finds_chunked_splitter_bug;
          Alcotest.test_case "por under domains" `Slow
            test_por_domains_equivalence;
          Alcotest.test_case "seen_hint invisible" `Quick
            test_seen_hint_invisible;
          QCheck_alcotest.to_alcotest prop_independent_steps_commute;
          Alcotest.test_case "commutation coverage floor" `Slow
            test_commutation_coverage ] );
      ( "static-vs-dynamic-conflicts",
        [ QCheck_alcotest.to_alcotest prop_static_covers_dynamic;
          Alcotest.test_case "registry coverage floor" `Slow
            test_conflict_coverage_registry ] );
      ( "mechanics",
        [ Alcotest.test_case "pruning observable" `Quick
            test_pruning_observable ] ) ]
