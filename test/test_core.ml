(* Tests for the measurement framework itself: the §2.2 fragment
   definitions on hand-built traces, the bound formulas of Theorems 1-7,
   and the sandwich lower-bound <= measured <= upper-bound on real
   algorithms. *)

open Cfc_base
open Cfc_runtime
open Cfc_mutex
open Cfc_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Measures on hand-built traces                                       *)
(* ------------------------------------------------------------------ *)

let mk_regs () =
  let m = Memory.create () in
  (Memory.alloc ~name:"r1" ~width:4 ~init:0 m,
   Memory.alloc ~name:"r2" ~width:4 ~init:0 m)

(* The §2.2 worst-case entry window: steps taken while another process
   occupies its critical section or exit code do not count. *)
let test_wc_entry_window () =
  let r1, r2 = mk_regs () in
  let t = Trace.create () in
  let ev pid body = ignore (Trace.record t ~pid body) in
  ev 1 (Event.Region_change Event.Trying);
  ev 1 (Event.Access (r1, Event.A_write 1));
  ev 1 (Event.Region_change Event.Critical);
  ev 0 (Event.Region_change Event.Trying);
  ev 0 (Event.Access (r1, Event.A_read 1));   (* p1 in CS: must not count *)
  ev 0 (Event.Access (r2, Event.A_read 0));   (* p1 in CS: must not count *)
  ev 1 (Event.Region_change Event.Exiting);
  ev 1 (Event.Access (r1, Event.A_write 0));  (* p1 exit step *)
  ev 1 (Event.Region_change Event.Remainder);
  ev 0 (Event.Access (r1, Event.A_read 0));   (* counts *)
  ev 0 (Event.Access (r1, Event.A_write 2));  (* counts *)
  ev 0 (Event.Region_change Event.Critical);
  let entries = Measures.mutex_wc_entry t ~nprocs:2 in
  (match List.filter (fun (pid, _) -> pid = 0) entries with
  | [ (_, s) ] ->
    check "p0 entry steps" 2 s.Measures.steps;
    check "p0 entry registers" 1 s.Measures.registers
  | other -> Alcotest.failf "expected 1 entry for p0, got %d" (List.length other));
  (match List.filter (fun (pid, _) -> pid = 1) entries with
  | [ (_, s) ] -> check "p1 entry steps" 1 s.Measures.steps
  | other -> Alcotest.failf "expected 1 entry for p1, got %d" (List.length other));
  let exits = Measures.mutex_wc_exit t ~nprocs:2 in
  match exits with
  | [ (1, s) ] -> check "p1 exit steps" 1 s.Measures.steps
  | _ -> Alcotest.fail "expected exactly p1's exit fragment"

(* Contention-free measure: only Trying and Exiting accesses count;
   critical-section work is free. *)
let test_cf_regions () =
  let r1, r2 = mk_regs () in
  let t = Trace.create () in
  let ev pid body = ignore (Trace.record t ~pid body) in
  ev 0 (Event.Region_change Event.Trying);
  ev 0 (Event.Access (r1, Event.A_write 1));
  ev 0 (Event.Access (r2, Event.A_read 0));
  ev 0 (Event.Region_change Event.Critical);
  ev 0 (Event.Access (r2, Event.A_write 3));  (* CS work: not counted *)
  ev 0 (Event.Region_change Event.Exiting);
  ev 0 (Event.Access (r1, Event.A_write 0));
  ev 0 (Event.Region_change Event.Remainder);
  let s = Measures.mutex_contention_free t ~nprocs:1 ~pid:0 in
  check "cf steps" 3 s.Measures.steps;
  check "cf registers" 2 s.Measures.registers;
  check "cf writes" 2 s.Measures.write_steps;
  check "cf reads" 1 s.Measures.read_steps

(* Multiple entries by the same process produce one fragment each. *)
let test_repeated_entries () =
  let r1, _ = mk_regs () in
  let t = Trace.create () in
  let ev pid body = ignore (Trace.record t ~pid body) in
  for i = 1 to 3 do
    ev 0 (Event.Region_change Event.Trying);
    for _ = 1 to i do
      ev 0 (Event.Access (r1, Event.A_read 0))
    done;
    ev 0 (Event.Region_change Event.Critical);
    ev 0 (Event.Region_change Event.Exiting);
    ev 0 (Event.Region_change Event.Remainder)
  done;
  let entries = Measures.mutex_wc_entry t ~nprocs:1 in
  check "three fragments" 3 (List.length entries);
  let steps = List.map (fun (_, s) -> s.Measures.steps) entries in
  Alcotest.(check (list int)) "growing" [ 1; 2; 3 ] steps

(* decisions/at_most_one_winner plumbing. *)
let test_decisions () =
  let t = Trace.create () in
  let ev pid body = ignore (Trace.record t ~pid body) in
  ev 0 (Event.Region_change (Event.Decided 1));
  ev 1 (Event.Region_change (Event.Decided 0));
  ev 2 (Event.Region_change (Event.Decided 0));
  Alcotest.(check (list (pair int int)))
    "decisions" [ (0, 1); (1, 0); (2, 0) ]
    (Measures.decisions t ~nprocs:3);
  check_bool "one winner ok" true (Spec.at_most_one_winner t ~nprocs:3 = None);
  ev 1 (Event.Region_change (Event.Decided 1));
  check_bool "two winners flagged" true
    (Spec.at_most_one_winner t ~nprocs:3 <> None)

(* Recovery paths: a path opens at Recover, counts the pid's accesses,
   and closes at its next Critical; a second crash abandons the open
   fragment. *)
let test_recovery_paths () =
  let r1, r2 = mk_regs () in
  let t = Trace.create () in
  let ev pid body = ignore (Trace.record t ~pid body) in
  ev 0 (Event.Region_change Event.Trying);
  ev 0 (Event.Access (r1, Event.A_write 1));
  ev 0 Event.Crash;
  ev 0 Event.Recover;
  ev 0 (Event.Access (r1, Event.A_read 1));
  ev 0 (Event.Access (r2, Event.A_write 2));
  ev 0 (Event.Region_change Event.Critical);
  (* p1: first recovery is abandoned by a second crash, second one
     completes with a single step. *)
  ev 1 Event.Crash;
  ev 1 Event.Recover;
  ev 1 (Event.Access (r1, Event.A_read 1));
  ev 1 Event.Crash;
  ev 1 Event.Recover;
  ev 1 (Event.Access (r2, Event.A_read 2));
  ev 1 (Event.Region_change Event.Critical);
  (* p0's later CS re-entry without a crash opens no new path. *)
  ev 0 (Event.Region_change Event.Exiting);
  ev 0 (Event.Region_change Event.Remainder);
  ev 0 (Event.Region_change Event.Trying);
  ev 0 (Event.Region_change Event.Critical);
  let paths = Measures.recovery_paths t ~nprocs:2 in
  match paths with
  | [ (0, s0); (1, s1) ] ->
    check "p0 path steps" 2 s0.Measures.steps;
    check "p0 path registers" 2 s0.Measures.registers;
    check "p1 path steps" 1 s1.Measures.steps;
    check "p1 path registers" 1 s1.Measures.registers
  | _ ->
    Alcotest.failf "expected one completed path per pid, got %d"
      (List.length paths)

(* Recovery RMR: same fragment windows as [recovery_paths] (one-to-one),
   under the cold-cache rule — the crash invalidates the dying
   incarnation's copies, so a register cached before the crash is remote
   again on the recovery path; another process's write invalidates as
   usual. *)
let test_recovery_rmr () =
  let r1, r2 = mk_regs () in
  let t = Trace.create () in
  let ev pid body = ignore (Trace.record t ~pid body) in
  ev 0 (Event.Region_change Event.Trying);
  ev 0 (Event.Access (r1, Event.A_write 1)); (* p0 caches r1... *)
  ev 0 Event.Crash;                          (* ...and loses it *)
  ev 0 Event.Recover;
  ev 0 (Event.Access (r1, Event.A_read 1));  (* remote: cold cache *)
  ev 0 (Event.Access (r1, Event.A_read 1));  (* local: just re-cached *)
  ev 0 (Event.Access (r2, Event.A_write 2)); (* remote: first touch *)
  ev 0 (Event.Region_change Event.Critical);
  let paths = Measures.recovery_paths t ~nprocs:2 in
  let rmrs = Measures.recovery_rmr t ~nprocs:2 in
  check "one path" 1 (List.length paths);
  (match (paths, rmrs) with
  | [ (0, s) ], [ (0, rmr) ] ->
    check "path steps" 3 s.Measures.steps;
    check "rmr counts cold registers, not steps" 2 rmr
  | _ -> Alcotest.fail "recovery_rmr disagrees with recovery_paths");
  (* A second crash–recover pair on the same process: the re-cached r1
     is lost again, and the completed fragments stay one-to-one. *)
  ev 0 (Event.Region_change Event.Exiting);
  ev 0 Event.Crash;
  ev 0 Event.Recover;
  ev 0 (Event.Access (r1, Event.A_read 1));  (* remote again *)
  ev 1 (Event.Access (r1, Event.A_write 7)); (* p1 invalidates p0 *)
  ev 0 (Event.Access (r1, Event.A_read 7));  (* remote: invalidated *)
  ev 0 (Event.Region_change Event.Critical);
  let paths = Measures.recovery_paths t ~nprocs:2 in
  let rmrs = Measures.recovery_rmr t ~nprocs:2 in
  Alcotest.(check (list (pair int int)))
    "per-incarnation rmr" [ (0, 2); (0, 2) ] rmrs;
  check "still one path per completed recovery" 2 (List.length paths);
  (* The second incarnation's fragment counts only its own accesses — the
     pre-crash fragment is not double-attributed. *)
  (match List.rev paths with
  | (0, s) :: _ -> check "second path steps" 2 s.Measures.steps
  | _ -> Alcotest.fail "missing second path")

(* Every recoverable lock's exact recovery costs, via the harness (which
   itself goes through [Measures.recovery_paths]): every crash point
   yields a completed recovery ([Stalled] would be a deadlock
   regression), costing exactly the closed form of its crash region —
   [rec_steps_held] in [Critical], [rec_steps_not_held] outside the
   critical/exit code, and one of the two in the ambiguous [Exiting]
   (the release may or may not have taken effect).  The recovery RMR
   equals the path's register count: the restarted incarnation starts
   with a cold cache, so solo every distinct register is remote once —
   the §1.2 registers-equal-remotes claim extended to recovery. *)
let test_recoverable_recovery_exact () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 4 in
      let forms = Option.get (A.recovery p) in
      let sweep = Recovery_harness.solo_sweep (module A : Mutex_intf.ALG) p in
      check_bool (A.name ^ ": sweep non-empty") true (sweep <> []);
      Alcotest.(check int) (A.name ^ ": no stalled points") 0
        (List.length (Recovery_harness.stalled sweep));
      List.iter
        (fun (pt : Recovery_harness.sweep_point) ->
          match pt.Recovery_harness.outcome with
          | Recovery_harness.Stalled -> ()
          | Recovery_harness.Recovered { path; rmr } ->
            let label what =
              Printf.sprintf "%s: crash@%d (%s) %s" A.name
                pt.Recovery_harness.crash_step
                (Format.asprintf "%a" Event.pp_region
                   pt.Recovery_harness.crash_region)
                what
            in
            (match pt.Recovery_harness.crash_region with
            | Event.Critical ->
              check (label "steps = held form")
                forms.Mutex_intf.rec_steps_held path.Measures.steps;
              check (label "registers = held form")
                forms.Mutex_intf.rec_registers_held path.Measures.registers
            | Event.Exiting ->
              check_bool (label "steps within forms") true
                (path.Measures.steps = forms.Mutex_intf.rec_steps_held
                || path.Measures.steps = forms.Mutex_intf.rec_steps_not_held)
            | _ ->
              check (label "steps = not-held form")
                forms.Mutex_intf.rec_steps_not_held path.Measures.steps;
              check (label "registers = not-held form")
                forms.Mutex_intf.rec_registers_not_held
                  path.Measures.registers);
            check (label "rmr = cold-cache registers") path.Measures.registers
              rmr)
        sweep)
    Registry.recoverable

(* Crash during recovery: re-crash the restarted incarnation at every
   step of (and just past) its recovery path.  The final incarnation
   must still recover, at a cost that is itself one of the closed
   forms — recovery code re-entered from the top is just another
   recovery. *)
let test_double_crash_sweep () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 3 in
      let forms = Option.get (A.recovery p) in
      let points = Recovery_harness.double_sweep (module A : Mutex_intf.ALG) p in
      check_bool (A.name ^ ": double sweep non-empty") true (points <> []);
      check_bool (A.name ^ ": some re-crash hit the recovery path") true
        (List.exists
           (fun (pt : Recovery_harness.double_point) ->
             pt.Recovery_harness.second_crash
             > pt.Recovery_harness.first_crash)
           points);
      List.iter
        (fun (pt : Recovery_harness.double_point) ->
          match pt.Recovery_harness.final with
          | Recovery_harness.Stalled ->
            Alcotest.failf "%s: stalled after crash@%d+%d" A.name
              pt.Recovery_harness.first_crash
              pt.Recovery_harness.second_crash
          | Recovery_harness.Recovered { path; rmr } ->
            check_bool
              (Printf.sprintf "%s: crash@%d+%d cost is a closed form" A.name
                 pt.Recovery_harness.first_crash
                 pt.Recovery_harness.second_crash)
              true
              (path.Measures.steps = forms.Mutex_intf.rec_steps_held
              || path.Measures.steps = forms.Mutex_intf.rec_steps_not_held);
            check "double-crash rmr = cold-cache registers"
              path.Measures.registers rmr)
        points)
    Registry.recoverable

(* ------------------------------------------------------------------ *)
(* Occupancy windows across crash–recovery                             *)
(* ------------------------------------------------------------------ *)

(* A crash + recovery inside someone's entry window must not corrupt the
   winner's §2.2 fragment: the recovered process restarts in Remainder,
   so it stops occupying the critical section / exit code from the
   recovery on.  Before trace-level region bookkeeping learned about
   [Recover] events, the crashed incarnation's stale [Exiting] region
   (i) clipped the winner's entry fragment to zero steps and (ii)
   attached a spurious exit fragment to the restarted incarnation. *)
let run_crash_proto ~faults ~mid =
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let a = M.alloc ~name:"a" ~width:4 ~init:0 () in
  let b = M.alloc ~name:"b" ~width:4 ~init:0 () in
  let scratch = M.alloc ~name:"s" ~width:4 ~init:0 () in
  (* 4 accesses per cycle: read a (entry), write scratch (CS), write a +
     write b (exit) — a two-step exit so a fault can land mid-exit. *)
  let proc me () =
    Proc.region Event.Trying;
    ignore (M.read a);
    Proc.region Event.Critical;
    M.write scratch me;
    Proc.region Event.Exiting;
    M.write a me;
    M.write b me;
    Proc.region Event.Remainder
  in
  let procs = [| proc 0; proc 1 |] in
  (* p1 first (all 4 accesses fault-free, 3 when crashed mid-exit), then
     p0's full cycle, then whatever is left of p1. *)
  let prefix = List.init (if mid then 3 else 4) (fun _ -> 1) in
  let pick =
    Schedule.pref_then prefix
      (Schedule.pref_then [ 0; 0; 0; 0 ] (Schedule.solo 1))
  in
  Runner.run ~memory ~pick ~faults procs

let test_winner_fragment_survives_fault () =
  let fragment_of out =
    match
      List.filter (fun (pid, _) -> pid = 0)
        (Measures.mutex_wc_entry out.Runner.trace ~nprocs:2)
    with
    | [ (_, s) ] -> s
    | other ->
      Alcotest.failf "expected exactly one p0 entry, got %d"
        (List.length other)
  in
  let clean = fragment_of (run_crash_proto ~faults:[] ~mid:false) in
  check "fault-free winner fragment" 1 clean.Measures.steps;
  (* Crash p1 just before scheduler step 3 — after its exit's first
     write, before the second — and restart it in the same step. *)
  let faults =
    [ Fault.crash ~step:3 ~pid:1; Fault.recover ~step:3 ~pid:1 ]
  in
  let out = run_crash_proto ~faults ~mid:true in
  let faulted = fragment_of out in
  check "winner fragment unchanged by mid-exit crash" clean.Measures.steps
    faulted.Measures.steps;
  check "winner registers unchanged" clean.Measures.registers
    faulted.Measures.registers;
  (* The restarted incarnation's completed exit is the only p1 exit
     fragment; the half-done pre-crash exit must not leak one. *)
  let p1_exits =
    List.filter (fun (pid, _) -> pid = 1)
      (Measures.mutex_wc_exit out.Runner.trace ~nprocs:2)
  in
  (match p1_exits with
  | [ (_, s) ] -> check "restarted exit steps" 2 s.Measures.steps
  | other ->
    Alcotest.failf "expected exactly one p1 exit fragment, got %d"
      (List.length other));
  (* regions_at agrees: after the recovery (and before p1 restarts), p1
     is back in Remainder, not ghost-occupying Exiting. *)
  let crash_seq =
    Trace.fold
      (fun acc e ->
        match e.Event.body with Event.Recover -> e.Event.seq | _ -> acc)
      (-1) out.Runner.trace
  in
  let regions = Trace.regions_at out.Runner.trace (crash_seq + 1) ~nprocs:2 in
  check_bool "p1 region reset on recovery" true
    (Event.region_equal regions.(1) Event.Remainder)

(* ------------------------------------------------------------------ *)
(* Remote accesses: local spin vs spin on shared (§1.2 / YA93)         *)
(* ------------------------------------------------------------------ *)

let rmr_per_acq (module A : Mutex_intf.ALG) ~n ~rounds ~cs_len ~seed =
  let p = Mutex_intf.params n in
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let scratch = M.alloc ~name:"s" ~width:8 ~init:0 () in
  let proc me () =
    for _ = 1 to rounds do
      Proc.region Event.Trying;
      L.lock inst ~me;
      Proc.region Event.Critical;
      for k = 1 to cs_len do
        M.write scratch (k land 255)
      done;
      Proc.region Event.Exiting;
      L.unlock inst ~me;
      Proc.region Event.Remainder
    done
  in
  let out =
    Runner.run ~memory ~pick:(Schedule.random ~seed) (Array.init n proc)
  in
  let remote = Measures.remote_accesses out.Runner.trace ~nprocs:n in
  float_of_int (Array.fold_left ( + ) 0 remote) /. float_of_int (n * rounds)

(* The mcs-lock waiter spins on a flag only its predecessor writes, so
   its remote accesses per acquisition stay bounded at any contention;
   tas-lock spins with test-and-set writes on the one shared bit, so its
   remote count grows with contention. *)
let prop_local_spin_vs_shared_spin =
  QCheck.Test.make ~count:15 ~name:"mcs bounded rmr, tas grows (YA93)"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let mcs6 = rmr_per_acq Registry.mcs ~n:6 ~rounds:5 ~cs_len:20 ~seed in
      let tas2 = rmr_per_acq Registry.tas_lock ~n:2 ~rounds:5 ~cs_len:20 ~seed in
      let tas6 = rmr_per_acq Registry.tas_lock ~n:6 ~rounds:5 ~cs_len:20 ~seed in
      mcs6 <= 20.0 && tas6 > tas2 && tas6 > 2.0 *. mcs6)

(* ------------------------------------------------------------------ *)
(* Bound formulas                                                      *)
(* ------------------------------------------------------------------ *)

let test_bound_values () =
  (* Spot values computed by hand: n=2^16, l=1: log n=16, loglog n=4,
     denom = 1-2+12 = 11. *)
  let v = Bounds.mutex_cf_step_lower ~n:65536 ~l:1 in
  check_bool "thm1 value" true (abs_float (v -. (16. /. 11.)) < 1e-9);
  (* n=2^16, l=16: sqrt(16/20). *)
  let v = Bounds.mutex_cf_register_lower ~n:65536 ~l:16 in
  check_bool "thm2 value" true (abs_float (v -. sqrt (16. /. 20.)) < 1e-9);
  check "thm3 step upper n=2^16 l=4" (7 * 4)
    (Bounds.mutex_cf_step_upper ~n:65536 ~l:4);
  check "thm3 reg upper n=2^16 l=4" (3 * 4)
    (Bounds.mutex_cf_register_upper ~n:65536 ~l:4);
  (* Degenerate smalls return 0 rather than exploding. *)
  check_bool "n=1 is vacuous" true (Bounds.mutex_cf_step_lower ~n:1 ~l:1 = 0.);
  check_bool "n=2 l=1 denom<=0 vacuous" true
    (Bounds.mutex_cf_step_lower ~n:2 ~l:1 = 0.)

let test_bound_monotone () =
  (* The step lower bound grows with n and shrinks with l. *)
  let ns = [ 16; 256; 65536; 1 lsl 20 ] in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      check_bool "monotone in n" true
        (Bounds.mutex_cf_step_lower ~n:b ~l:4
        >= Bounds.mutex_cf_step_lower ~n:a ~l:4);
      pairs rest
    | _ -> ()
  in
  pairs ns;
  List.iter
    (fun l ->
      check_bool "antitone in l" true
        (Bounds.mutex_cf_step_lower ~n:65536 ~l
        >= Bounds.mutex_cf_step_lower ~n:65536 ~l:(l + 4)))
    [ 1; 4; 8 ]

let test_naming_table_shape () =
  check "five columns" 5 (List.length Bounds.naming_table);
  (* The tas column is all linear; rmw all log. *)
  (match Bounds.naming_table with
  | ("tas", a, b, c, d) :: _ ->
    List.iter
      (fun cell -> check_bool "tas linear" true (cell = Bounds.Linear))
      [ a; b; c; d ]
  | _ -> Alcotest.fail "tas first");
  match List.rev Bounds.naming_table with
  | ("rmw", a, b, c, d) :: _ ->
    List.iter
      (fun cell -> check_bool "rmw log" true (cell = Bounds.Log))
      [ a; b; c; d ]
  | _ -> Alcotest.fail "rmw last"

(* ------------------------------------------------------------------ *)
(* Sandwich: lower bound <= measured <= upper bound                    *)
(* ------------------------------------------------------------------ *)

(* Theorem 1/2 lower bounds hold for every register-model algorithm at
   its true atomicity. *)
let prop_lower_bounds_hold =
  QCheck.Test.make ~count:40
    ~name:"theorem 1 and 2 lower bounds hold for all measured algorithms"
    QCheck.(pair (int_range 2 40) (int_range 1 8))
    (fun (n, l) ->
      List.for_all
        (fun (module A : Mutex_intf.ALG) ->
          let p = { Mutex_intf.n; l } in
          if not (A.supports p) then true
          else begin
            let r = Mutex_harness.contention_free (module A) p in
            let atomicity = r.Mutex_harness.atomicity_observed in
            let s = r.Mutex_harness.max in
            float_of_int s.Measures.steps
            > Bounds.mutex_cf_step_lower ~n ~l:atomicity -. 1e-9
            && float_of_int s.Measures.registers
               >= Bounds.mutex_cf_register_lower ~n ~l:atomicity -. 1e-9
          end)
        Registry.register_model)

(* The tree meets Theorem 3 with the capacity-(2^l - 1) caveat: measured
   = 7·⌈log_c n⌉ <= 7·⌈log n/(l-1)⌉, and equals the paper's 7·⌈log n/l⌉
   whenever the depths coincide. *)
let prop_tree_upper =
  QCheck.Test.make ~count:60 ~name:"tree within theorem 3 upper bounds"
    QCheck.(pair (int_range 2 2000) (int_range 2 8))
    (fun (n, l) ->
      let p = { Mutex_intf.n; l } in
      let r = Mutex_harness.contention_free Registry.tree p in
      let s = r.Mutex_harness.max in
      let loose = 7 * Ixmath.ceil_div (Ixmath.ceil_log2 (max 2 n)) (l - 1) in
      s.Measures.steps <= max loose (Bounds.mutex_cf_step_upper ~n ~l)
      && s.Measures.registers * 7 = s.Measures.steps * 3)

(* Lemma 3's inequality is satisfied by the measured (r, w) of every
   correct detector: a sanity check that the combinatorial lemma and our
   instrumentation speak the same language. *)
let prop_lemma3_on_detectors =
  QCheck.Test.make ~count:40
    ~name:"lemma 3 inequality holds for measured detector complexities"
    QCheck.(pair (int_range 2 64) (int_range 1 6))
    (fun (n, l) ->
      List.for_all
        (fun (module D : Mutex_intf.DETECTOR) ->
          let p = { Mutex_intf.n; l } in
          if not (D.supports p) then true
          else begin
            let r = Detect_harness.contention_free (module D) p in
            let s = r.Detect_harness.max in
            Bounds.lemma3_holds ~n ~l:r.Detect_harness.atomicity_observed
              ~r:s.Measures.read_registers ~w:s.Measures.write_steps
          end)
        Registry.detectors)

(* Lemma 6 likewise for register complexity. *)
let prop_lemma6_on_detectors =
  QCheck.Test.make ~count:40
    ~name:"lemma 6 inequality holds for measured detector complexities"
    QCheck.(pair (int_range 2 64) (int_range 1 6))
    (fun (n, l) ->
      List.for_all
        (fun (module D : Mutex_intf.DETECTOR) ->
          let p = { Mutex_intf.n; l } in
          if not (D.supports p) then true
          else begin
            let r = Detect_harness.contention_free (module D) p in
            let s = r.Detect_harness.max in
            Bounds.lemma6_holds ~n ~l:r.Detect_harness.atomicity_observed
              ~c:s.Measures.registers ~w:s.Measures.write_registers
          end)
        Registry.detectors)

(* The §2.4 corollary: bits accessed contention-free >= l + c - 1 where c
   is the Theorem 1 bound; our tree with atomicity l accesses about
   l·(steps) bits, comfortably above. *)
let test_bits_accessed () =
  List.iter
    (fun (n, l) ->
      let p = { Mutex_intf.n; l } in
      let r = Mutex_harness.contention_free Registry.tree p in
      let bits_touched =
        l * r.Mutex_harness.max.Measures.steps
      in
      check_bool
        (Printf.sprintf "n=%d l=%d bits %d >= bound" n l bits_touched)
        true
        (float_of_int bits_touched >= Bounds.bits_accessed_lower ~n ~l))
    [ (16, 2); (256, 2); (256, 4); (4096, 3) ]

(* ------------------------------------------------------------------ *)
(* Streaming (Online) vs materialised measures                         *)
(* ------------------------------------------------------------------ *)

(* One contended run of [alg] at [n]; the trace is then replayed into
   [Measures.Online] and [Spec.Monitor], and every streaming measure
   with a materialised counterpart must agree EXACTLY — same samples,
   same fragment lists, same order.  This is the gate that lets the
   EXP-SCALE sweeps trust the streaming numbers at n where no trace can
   be materialised. *)
let assert_online_equals_materialised ?faults ~pick ~what alg n =
  let (module A : Mutex_intf.ALG) = alg in
  let p = Mutex_intf.params n in
  let out = Mutex_harness.run ~rounds:2 ?faults ~pick:(pick ()) alg p in
  let trace = out.Runner.trace in
  let online = Measures.Online.create ~nprocs:n in
  Measures.Online.feed_trace online trace;
  let ctx tag = Printf.sprintf "%s n=%d %s: %s" A.name n what tag in
  let eq tag a b = check_bool (ctx tag) true (a = b) in
  eq "events_seen" (Measures.Online.events_seen online) (Trace.length trace);
  eq "per_process"
    (Array.to_list (Measures.Online.per_process online))
    (Array.to_list (Measures.per_process_samples trace ~nprocs:n));
  for pid = 0 to n - 1 do
    eq "contention_free"
      (Measures.Online.contention_free online ~pid)
      (Measures.mutex_contention_free trace ~nprocs:n ~pid)
  done;
  eq "wc_entries"
    (Measures.Online.wc_entries online)
    (Measures.mutex_wc_entry trace ~nprocs:n);
  eq "wc_exits"
    (Measures.Online.wc_exits online)
    (Measures.mutex_wc_exit trace ~nprocs:n);
  eq "recovery_paths"
    (Measures.Online.recovery_paths online)
    (Measures.recovery_paths trace ~nprocs:n);
  eq "recovery_rmr"
    (Measures.Online.recovery_rmr online)
    (Measures.recovery_rmr trace ~nprocs:n);
  eq "decisions"
    (Measures.Online.decisions online)
    (Measures.decisions trace ~nprocs:n);
  eq "remote_accesses"
    (Array.to_list (Measures.Online.remote_accesses online))
    (Array.to_list (Measures.remote_accesses trace ~nprocs:n));
  (* The streaming exclusion monitors agree with the trace checkers —
     the plain one only on crash-free runs (a crashed holder makes the
     plain checker's verdict meaningless, matching Spec's own docs). *)
  let feed_monitor m =
    Trace.iter (fun e -> Spec.Monitor.feed m ~pid:e.Event.pid e.Event.body) trace;
    Spec.Monitor.result m
  in
  if faults = None then
    eq "mutual_exclusion"
      (feed_monitor (Spec.Monitor.mutual_exclusion ()))
      (Spec.mutual_exclusion trace ~nprocs:n);
  eq "mutual_exclusion_recoverable"
    (feed_monitor (Spec.Monitor.mutual_exclusion_recoverable ()))
    (Spec.mutual_exclusion_recoverable trace ~nprocs:n)

let schedules n =
  [ ("round-robin", fun () -> Schedule.round_robin ());
    ("random", fun () -> Schedule.random ~seed:(11 * n + 1)) ]

(* Every registry algorithm, crash-free, at n in {2, 3, 8} under two
   schedule families. *)
let test_online_equals_materialised_registry () =
  List.iter
    (fun n ->
      List.iter
        (fun ((module A : Mutex_intf.ALG) as alg) ->
          if A.supports (Mutex_intf.params n) then
            List.iter
              (fun (what, pick) ->
                assert_online_equals_materialised ~pick ~what alg n)
              (schedules n))
        Registry.all)
    [ 2; 3; 8 ]

(* The recoverable locks again, now under seeded chaos plans: the
   recovery-path and recovery-RMR accumulators must match through
   crash eviction and restart. *)
let test_online_equals_materialised_faults () =
  List.iter
    (fun n ->
      List.iter
        (fun ((module A : Mutex_intf.ALG) as alg) ->
          let p = Mutex_intf.params n in
          if A.supports p && A.recovery p <> None then
            List.iter
              (fun seed ->
                let faults =
                  Fault.chaos ~seed ~nprocs:n ~pairs:2 ~horizon:(40 * n)
                in
                List.iter
                  (fun (what, pick) ->
                    assert_online_equals_materialised ~faults ~pick
                      ~what:(Printf.sprintf "%s chaos seed=%d" what seed)
                      alg n)
                  (schedules n))
              [ 1; 2; 3 ])
        Registry.recoverable)
    [ 2; 3; 8 ]

(* Randomized amplification: arbitrary seeds drive both the schedule and
   the fault plan; a cheap spin lock and a recoverable lock cover the
   plain and crash paths. *)
let prop_online_equivalence =
  QCheck.Test.make ~count:40 ~name:"online measures = materialised (seeded)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let pick = ("seeded", fun () -> Schedule.random ~seed) in
      assert_online_equals_materialised ~pick:(snd pick) ~what:"qcheck"
        Registry.lamport_fast 3;
      let faults = Fault.chaos ~seed ~nprocs:3 ~pairs:2 ~horizon:60 in
      assert_online_equals_materialised ~faults ~pick:(snd pick)
        ~what:"qcheck chaos" Registry.rec_tas 3;
      true)

(* The wheel-driven streaming harness returns the exact same cf_result
   as the trace-driven one, per process. *)
let test_cf_streaming_equals_materialised () =
  List.iter
    (fun ((module A : Mutex_intf.ALG) as alg) ->
      let p = Mutex_intf.params 8 in
      if A.supports p then begin
        let a = Mutex_harness.contention_free alg p in
        let b = Mutex_harness.contention_free_streaming alg p in
        check_bool (A.name ^ " max sample") true
          (a.Mutex_harness.max = b.Mutex_harness.max);
        check_bool (A.name ^ " per-process samples") true
          (a.Mutex_harness.per_process = b.Mutex_harness.per_process);
        check (A.name ^ " atomicity observed")
          a.Mutex_harness.atomicity_observed b.Mutex_harness.atomicity_observed
      end)
    Registry.all

let () =
  Alcotest.run "cfc_core"
    [ ( "measures",
        [ Alcotest.test_case "wc entry window" `Quick test_wc_entry_window;
          Alcotest.test_case "cf regions" `Quick test_cf_regions;
          Alcotest.test_case "repeated entries" `Quick test_repeated_entries;
          Alcotest.test_case "decisions" `Quick test_decisions;
          Alcotest.test_case "recovery paths" `Quick test_recovery_paths;
          Alcotest.test_case "recovery rmr (cold cache, per incarnation)"
            `Quick test_recovery_rmr;
          Alcotest.test_case "exact recovery cost (all recoverable locks)"
            `Quick test_recoverable_recovery_exact;
          Alcotest.test_case "double-crash sweep (crash during recovery)"
            `Quick test_double_crash_sweep;
          Alcotest.test_case "winner fragment survives mid-exit crash"
            `Quick test_winner_fragment_survives_fault;
          QCheck_alcotest.to_alcotest prop_local_spin_vs_shared_spin ] );
      ( "streaming",
        [ Alcotest.test_case "online = materialised (registry)" `Quick
            test_online_equals_materialised_registry;
          Alcotest.test_case "online = materialised (chaos faults)" `Quick
            test_online_equals_materialised_faults;
          QCheck_alcotest.to_alcotest prop_online_equivalence;
          Alcotest.test_case "cf streaming harness = trace harness" `Quick
            test_cf_streaming_equals_materialised ] );
      ( "bounds",
        [ Alcotest.test_case "spot values" `Quick test_bound_values;
          Alcotest.test_case "monotonicity" `Quick test_bound_monotone;
          Alcotest.test_case "naming table shape" `Quick
            test_naming_table_shape ] );
      ( "sandwich",
        [ QCheck_alcotest.to_alcotest prop_lower_bounds_hold;
          QCheck_alcotest.to_alcotest prop_tree_upper;
          QCheck_alcotest.to_alcotest prop_lemma3_on_detectors;
          QCheck_alcotest.to_alcotest prop_lemma6_on_detectors;
          Alcotest.test_case "bits accessed corollary" `Quick
            test_bits_accessed ] ) ]
