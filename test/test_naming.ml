(* Tests for the naming algorithms (§3): exact complexity counts
   (Theorem 4), safety (unique names in 1..n) under sequential, random,
   lockstep and crashy schedules, wait-freedom, the lower-bound
   realizations (Theorems 5–7), and model dualization. *)

open Cfc_base
open Cfc_naming
open Cfc_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let powers = [ 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Contention-free exact counts (Theorem 4)                            *)
(* ------------------------------------------------------------------ *)

let test_cf_counts () =
  List.iter
    (fun (module A : Naming_intf.ALG) ->
      List.iter
        (fun n ->
          if A.supports ~n then begin
            let r = Naming_harness.contention_free (module A) ~n in
            let ctx = Printf.sprintf "%s n=%d" A.name n in
            (match A.predicted_cf_steps ~n with
            | Some s ->
              check_bool
                (Printf.sprintf "%s cf steps %d <= %d" ctx
                   r.Naming_harness.max.Measures.steps s)
                true
                (r.Naming_harness.max.Measures.steps <= s)
            | None -> ());
            match A.predicted_cf_registers ~n with
            | Some s ->
              check_bool
                (Printf.sprintf "%s cf regs %d <= %d" ctx
                   r.Naming_harness.max.Measures.registers s)
                true
                (r.Naming_harness.max.Measures.registers <= s)
            | None -> ()
          end)
        powers)
    Registry.all

(* The taf tree is exactly log n on both contention-free measures, for
   every process. *)
let test_taf_tree_exact () =
  List.iter
    (fun n ->
      let r = Naming_harness.contention_free Registry.taf_tree ~n in
      Array.iteri
        (fun pid s ->
          check
            (Printf.sprintf "taf n=%d p%d steps" n pid)
            (Ixmath.ceil_log2 n) s.Measures.steps;
          check
            (Printf.sprintf "taf n=%d p%d regs" n pid)
            (Ixmath.ceil_log2 n) s.Measures.registers)
        r.Naming_harness.per_process)
    powers

(* The tas scan costs process k exactly k steps sequentially (max n-1),
   and assigns names in arrival order. *)
let test_tas_scan_exact () =
  let n = 8 in
  let r = Naming_harness.contention_free Registry.tas_scan ~n in
  Array.iteri
    (fun pid s ->
      let expected_steps = min (pid + 1) (n - 1) in
      check (Printf.sprintf "scan p%d steps" pid) expected_steps
        s.Measures.steps;
      check (Printf.sprintf "scan p%d name" pid) (pid + 1)
        r.Naming_harness.names.(pid))
    r.Naming_harness.per_process

(* The read+tas search: exactly log n registers; steps log n or
   log n + 1 (even-indexed claims pay the extra test-and-set); name n
   costs exactly log n. *)
let test_tas_read_search_exact () =
  List.iter
    (fun n ->
      let logn = Ixmath.ceil_log2 n in
      let r = Naming_harness.contention_free Registry.tas_read_search ~n in
      Array.iteri
        (fun pid s ->
          let name = r.Naming_harness.names.(pid) in
          let expect_steps =
            if name = n || name mod 2 = 1 then logn else logn + 1
          in
          check
            (Printf.sprintf "search n=%d p%d (name %d) steps" n pid name)
            expect_steps s.Measures.steps;
          check
            (Printf.sprintf "search n=%d p%d regs" n pid)
            logn s.Measures.registers)
        r.Naming_harness.per_process;
      check "max steps is logn+1" (logn + 1)
        r.Naming_harness.max.Measures.steps)
    [ 4; 8; 16; 32 ]

(* Names are a permutation of 1..n in every contention-free run. *)
let test_names_are_permutation () =
  List.iter
    (fun (module A : Naming_intf.ALG) ->
      List.iter
        (fun n ->
          if A.supports ~n then begin
            let r = Naming_harness.contention_free (module A) ~n in
            let sorted =
              List.sort compare (Array.to_list r.Naming_harness.names)
            in
            Alcotest.(check (list int))
              (Printf.sprintf "%s n=%d permutation" A.name n)
              (List.init n (fun i -> i + 1))
              sorted
          end)
        powers)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Safety under adversarial schedules                                  *)
(* ------------------------------------------------------------------ *)

let prop_unique_names_random =
  QCheck.Test.make ~count:120
    ~name:"naming: unique names under random schedules (all algorithms)"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 5))
    (fun (seed, log_n) ->
      let n = Ixmath.pow2 log_n in
      List.for_all
        (fun (module A : Naming_intf.ALG) ->
          if not (A.supports ~n) then true
          else begin
            let out =
              Naming_harness.run
                ~pick:(Cfc_runtime.Schedule.random ~seed)
                (module A) ~n
            in
            out.Cfc_runtime.Runner.completed
            && Spec.unique_names out.Cfc_runtime.Runner.trace ~nprocs:n ~n
               = None
            && Spec.all_named out.Cfc_runtime.Runner.trace ~nprocs:n = None
          end)
        Registry.all)

(* Wait-freedom: unique names for survivors no matter which processes
   crash when. *)
let prop_unique_names_crashes =
  QCheck.Test.make ~count:120
    ~name:"naming: wait-free with crash injection"
    QCheck.(
      triple (int_bound 1_000_000) (int_range 2 5)
        (small_list (pair (int_bound 60) (int_bound 31))))
    (fun (seed, log_n, crashes) ->
      let n = Ixmath.pow2 log_n in
      (* Fault plans are validated now: at most one (un-recovered) crash
         per pid, no duplicate points — keep each pid's first. *)
      let crash_at =
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun (at, p) ->
            let p = p mod n in
            if Hashtbl.mem seen p then None
            else begin
              Hashtbl.add seen p ();
              Some (at, p)
            end)
          crashes
      in
      List.for_all
        (fun (module A : Naming_intf.ALG) ->
          if not (A.supports ~n) then true
          else begin
            let out =
              Naming_harness.run ~crash_at
                ~pick:(Cfc_runtime.Schedule.random ~seed)
                (module A) ~n
            in
            out.Cfc_runtime.Runner.completed
            && Spec.unique_names out.Cfc_runtime.Runner.trace ~nprocs:n ~n
               = None
            && Spec.all_named out.Cfc_runtime.Runner.trace ~nprocs:n = None
          end)
        Registry.all)

(* ------------------------------------------------------------------ *)
(* Lower bounds realized (Theorems 5, 6, 7)                            *)
(* ------------------------------------------------------------------ *)

(* Theorem 5: contention-free register complexity >= log n, every model,
   every algorithm. *)
let test_thm5_cf_registers () =
  List.iter
    (fun (module A : Naming_intf.ALG) ->
      List.iter
        (fun n ->
          if A.supports ~n then begin
            let r = Naming_harness.contention_free (module A) ~n in
            let bound = Bounds.naming_lower_cf_registers ~n in
            check_bool
              (Printf.sprintf "%s n=%d cf regs %d >= log n" A.name n
                 r.Naming_harness.max.Measures.registers)
              true
              (float_of_int r.Naming_harness.max.Measures.registers
              >= bound -. 1e-9)
          end)
        powers)
    Registry.all

(* Theorem 6: without test-and-flip, the lockstep adversary forces n-1
   steps on some process; with test-and-flip it cannot. *)
let test_thm6_lockstep () =
  let n = 16 in
  List.iter
    (fun (alg, expect_linear) ->
      let (module A : Naming_intf.ALG) = alg in
      let steps = Naming_harness.lockstep_steps alg ~n in
      if expect_linear then
        check_bool
          (Printf.sprintf "%s lockstep steps %d >= n-1" A.name steps)
          true
          (steps >= Bounds.naming_wc_steps_no_taf ~n)
      else
        check_bool
          (Printf.sprintf "%s lockstep steps %d stays logarithmic" A.name
             steps)
          true
          (steps <= 2 * Ixmath.ceil_log2 n))
    [ (Registry.tas_scan, true); (Registry.tar_scan, true);
      (Registry.taf_tree, false); (Registry.rmw_tree, false) ]

(* Theorem 7: with test-and-set only, contention-free register
   complexity is exactly n-1 (the scan meets the bound). *)
let test_thm7_tas_only () =
  List.iter
    (fun n ->
      let r = Naming_harness.contention_free Registry.tas_scan ~n in
      check
        (Printf.sprintf "tas-only n=%d cf regs" n)
        (Bounds.naming_tas_only_cf_registers ~n)
        r.Naming_harness.max.Measures.registers)
    powers

(* The tas/tar tree keeps worst-case REGISTER complexity at log n even
   under adversarial schedules (the column-3 separation from column 2). *)
let test_tas_tar_tree_wc_registers () =
  List.iter
    (fun n ->
      let s =
        Naming_harness.wc_estimate ~seeds:[ 1; 2; 3; 4 ]
          Registry.tas_tar_tree ~n
      in
      check
        (Printf.sprintf "tas-tar n=%d wc regs" n)
        (Ixmath.ceil_log2 n) s.Measures.registers)
    powers

(* In contrast, the scan's worst-case register complexity grows
   linearly. *)
let test_scan_wc_registers_linear () =
  let n = 16 in
  let s = Naming_harness.wc_estimate ~seeds:[ 1; 2 ] Registry.tas_scan ~n in
  check "scan wc regs" (n - 1) s.Measures.registers

(* ------------------------------------------------------------------ *)
(* Dualization                                                         *)
(* ------------------------------------------------------------------ *)

let test_dual_model () =
  let (module D : Naming_intf.ALG) = Registry.tar_scan in
  check_bool "dual model is test-and-reset only" true
    (Model.equal D.model (Model.of_list [ Ops.Test_and_reset ]));
  check_bool "dual of dual is original" true
    (Model.equal
       (Model.dual (Model.dual Model.tas_only))
       Model.tas_only)

(* The dualized scan behaves exactly like the original on every measure
   and assignment. *)
let test_dual_equivalent () =
  List.iter
    (fun n ->
      let a = Naming_harness.contention_free Registry.tas_scan ~n in
      let b = Naming_harness.contention_free Registry.tar_scan ~n in
      Alcotest.(check (array int))
        (Printf.sprintf "names agree n=%d" n)
        a.Naming_harness.names b.Naming_harness.names;
      check "steps agree" a.Naming_harness.max.Measures.steps
        b.Naming_harness.max.Measures.steps;
      check "registers agree" a.Naming_harness.max.Measures.registers
        b.Naming_harness.max.Measures.registers)
    powers

(* The read/write model cannot solve naming deterministically: just
   check the registry offers no algorithm for it (a meta-test documenting
   the §3.1 impossibility). *)
let test_no_read_write_algorithm () =
  check_bool "no algorithm in the read/write model" true
    (List.for_all
       (fun (module A : Naming_intf.ALG) ->
         not (Model.subset A.model Model.read_write))
       Registry.all)

(* ------------------------------------------------------------------ *)
(* The model atlas (§3.3's exercise)                                   *)
(* ------------------------------------------------------------------ *)

(* The atlas agrees with the paper's five published columns. *)
let test_atlas_matches_paper () =
  List.iter
    (fun (m, cfr, cfs, wcr, wcs) ->
      match Model_atlas.classify m with
      | Model_atlas.Unsolvable ->
        Alcotest.failf "%s classified unsolvable" (Model.to_string m)
      | Model_atlas.Bounds b ->
        let cell = function
          | Model_atlas.Linear -> "n-1"
          | Model_atlas.Logarithmic -> "log n"
        in
        List.iter2
          (fun (what, got) expect ->
            Alcotest.(check string)
              (Printf.sprintf "%s %s" (Model.to_string m) what)
              expect (cell got))
          [ ("cf reg", b.cf_register);
            ("cf step", b.cf_step);
            ("wc reg", b.wc_register);
            ("wc step", b.wc_step) ]
          [ cfr; cfs; wcr; wcs ])
    [ (Model.tas_only, "n-1", "n-1", "n-1", "n-1");
      (Model.tas_read, "log n", "log n", "n-1", "n-1");
      (Model.tas_tar_read, "log n", "log n", "log n", "n-1");
      (Model.taf, "log n", "log n", "log n", "log n");
      (Model.rmw, "log n", "log n", "log n", "log n") ]

(* Exactly the 32 breaker-free models are unsolvable, and classification
   is invariant under duality. *)
let test_atlas_structure () =
  let atlas = Model_atlas.all () in
  check "256 models" 256 (List.length atlas);
  check "solvable count" 224 (Model_atlas.solvable_count ());
  let cells = function
    | Model_atlas.Unsolvable -> None
    | Model_atlas.Bounds b ->
      (* the witness construction may differ between duals *)
      Some (b.cf_register, b.cf_step, b.wc_register, b.wc_step)
  in
  List.iter
    (fun (m, c) ->
      check_bool
        (Model.to_string m ^ " dual-invariant")
        true
        (cells (Model_atlas.classify (Model.dual m)) = cells c))
    atlas

(* Adding operations never hurts: every measure stays or improves. *)
let test_atlas_monotone () =
  let better a b =
    (* b at least as good as a *)
    match (a, b) with
    | Model_atlas.Linear, _ -> true
    | Model_atlas.Logarithmic, Model_atlas.Logarithmic -> true
    | Model_atlas.Logarithmic, Model_atlas.Linear -> false
  in
  List.iter
    (fun (m, c) ->
      List.iter
        (fun op ->
          let m' = Model.add op m in
          match (c, Model_atlas.classify m') with
          | _, Model_atlas.Unsolvable when c <> Model_atlas.Unsolvable ->
            Alcotest.fail "adding an op lost solvability"
          | Model_atlas.Bounds a, Model_atlas.Bounds b ->
            check_bool
              (Printf.sprintf "%s + %s monotone" (Model.to_string m)
                 (Ops.to_string op))
              true
              (better a.cf_register b.cf_register
              && better a.cf_step b.cf_step
              && better a.wc_register b.wc_register
              && better a.wc_step b.wc_step)
          | _, _ -> ())
        Ops.all)
    (Model_atlas.all ())

(* The atlas's logarithmic contention-free cells are realized by actual
   measured algorithms (through dualization where needed). *)
let test_atlas_witnessed () =
  let n = 16 in
  let logn = Ixmath.ceil_log2 n in
  let measure alg =
    (Naming_harness.contention_free alg ~n).Naming_harness.max
  in
  (* {tar}: dual scan measures n-1 (Linear cell). *)
  let tar = measure Registry.tar_scan in
  check "tar cf steps" (n - 1) tar.Measures.steps;
  (* {tas, tar}: alternation tree measures within [log n, 2 log n]. *)
  let tt = measure Registry.tas_tar_tree in
  check_bool "tas+tar cf steps logarithmic" true
    (tt.Measures.steps >= logn && tt.Measures.steps <= 2 * logn);
  (* {read, tar}: dual of the search measures log n registers. *)
  let module Dual_search = Dualize.Make (Tas_read_search) in
  let r = measure (module Dual_search) in
  check "read+tar cf regs" logn r.Measures.registers;
  check_bool "read+tar cf steps logarithmic" true
    (r.Measures.steps <= logn + 1)

let () =
  Alcotest.run "cfc_naming"
    [ ( "contention-free",
        [ Alcotest.test_case "cf counts within predictions" `Quick
            test_cf_counts;
          Alcotest.test_case "taf tree exact" `Quick test_taf_tree_exact;
          Alcotest.test_case "tas scan exact" `Quick test_tas_scan_exact;
          Alcotest.test_case "tas+read search exact" `Quick
            test_tas_read_search_exact;
          Alcotest.test_case "names are permutations" `Quick
            test_names_are_permutation ] );
      ( "safety",
        [ QCheck_alcotest.to_alcotest prop_unique_names_random;
          QCheck_alcotest.to_alcotest prop_unique_names_crashes ] );
      ( "lower-bounds",
        [ Alcotest.test_case "thm5 cf registers >= log n" `Quick
            test_thm5_cf_registers;
          Alcotest.test_case "thm6 lockstep adversary" `Quick
            test_thm6_lockstep;
          Alcotest.test_case "thm7 tas-only n-1" `Quick test_thm7_tas_only;
          Alcotest.test_case "tas/tar tree wc registers log n" `Quick
            test_tas_tar_tree_wc_registers;
          Alcotest.test_case "scan wc registers linear" `Quick
            test_scan_wc_registers_linear ] );
      ( "atlas",
        [ Alcotest.test_case "matches the paper's columns" `Quick
            test_atlas_matches_paper;
          Alcotest.test_case "structure (256, duals)" `Quick
            test_atlas_structure;
          Alcotest.test_case "monotone in operations" `Quick
            test_atlas_monotone;
          Alcotest.test_case "witnessed by measurement" `Quick
            test_atlas_witnessed ] );
      ( "duality",
        [ Alcotest.test_case "dual model algebra" `Quick test_dual_model;
          Alcotest.test_case "dual equivalent" `Quick test_dual_equivalent;
          Alcotest.test_case "read/write unsolvable (meta)" `Quick
            test_no_read_write_algorithm ] ) ]
