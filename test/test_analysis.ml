(* Tests for the symbolic access-graph analyzer (lib/analysis): the
   three-way agreement static = closed form = trace-measured over every
   registered algorithm of every family, the symbolic-vs-simulated solo
   equivalence property, the spin-structure and replay-safety
   classifications, the lint gate (clean on the real registry, failing
   on the broken fixtures), and the determinism source scan. *)

open Cfc_base
open Cfc_runtime
open Cfc_analysis

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One full lint pass (fixtures included) shared by every test below —
   the whole battery takes well under a second, but there is no reason
   to repeat it per test. *)
let outcome = lazy (Lint.run ~fixtures:true ())

let is_fixture (row : Lint.row) =
  let name = row.Lint.report.Analyze.subject.Subjects.alg_name in
  String.length name >= 8 && String.sub name 0 8 = "fixture-"

let row_label (row : Lint.row) =
  let s = row.Lint.report.Analyze.subject in
  Printf.sprintf "%s %s %s"
    (Subjects.family_name s.Subjects.family)
    s.Subjects.alg_name s.Subjects.config

(* ------------------------------------------------------------------ *)
(* Three-way agreement: static = closed form = measured                *)
(* ------------------------------------------------------------------ *)

let test_three_way_agreement () =
  let rows = List.filter (fun r -> not (is_fixture r)) (Lazy.force outcome).Lint.rows in
  check_bool "battery is non-trivial" true (List.length rows >= 40);
  List.iter
    (fun (row : Lint.row) ->
      let subject = row.Lint.report.Analyze.subject in
      let static = row.Lint.report.Analyze.static_cf in
      let label what = row_label row ^ ": " ^ what in
      (* The static sample must equal the harness-measured one in every
         component, not just the headline counts. *)
      check_bool
        (label "static sample = measured sample")
        true
        (static = row.Lint.measured);
      (match subject.Subjects.predicted_steps with
      | Some p ->
        check (label "static steps = closed form") p
          static.Cfc_core.Measures.steps
      | None -> ());
      (match subject.Subjects.predicted_registers with
      | Some p ->
        check (label "static registers = closed form") p
          static.Cfc_core.Measures.registers
      | None -> ());
      check (label "no violations") 0 (List.length row.Lint.violations))
    rows

(* Every family registry must be represented in the battery, so the
   agreement above cannot silently shrink to one family. *)
let test_battery_covers_families () =
  let rows = (Lazy.force outcome).Lint.rows in
  List.iter
    (fun family ->
      check_bool
        (Subjects.family_name family ^ " present")
        true
        (List.exists
           (fun (r : Lint.row) ->
             r.Lint.report.Analyze.subject.Subjects.family = family)
           rows))
    [ Subjects.Mutex; Subjects.Detector; Subjects.Naming; Subjects.Consensus;
      Subjects.Renaming ]

(* ------------------------------------------------------------------ *)
(* Symbolic vs simulated solo executions                               *)
(* ------------------------------------------------------------------ *)

(* The (register, operation class) signature of one solo execution on
   the symbolic backend. *)
let sym_signature (v : Subjects.variant) =
  let ctx = Sym_mem.create () in
  let solo = v.Subjects.make (Sym_mem.mem ctx) in
  List.iter (fun f -> f ()) solo.Subjects.context;
  Sym_mem.start_recording ctx;
  solo.Subjects.body ();
  List.map Sym_mem.step_sig (Sym_mem.steps ctx)

(* The same signature from the effect-based simulator: run the contexts
   and the body as one solo process and drop the context prefix. *)
let sim_signature (v : Subjects.variant) =
  let accesses run =
    let memory = Memory.create () in
    let solo = v.Subjects.make (Sim_mem.mem memory) in
    let p () = run solo in
    let out = Runner.run ~memory ~pick:(Schedule.solo 0) [| p |] in
    List.map
      (fun ((r : Register.t), kind) ->
        ( r.Register.id,
          match kind with
          | Event.A_read _ -> "read"
          | Event.A_write _ -> "write"
          | Event.A_field _ -> "write-field"
          | Event.A_xchg _ -> "xchg"
          | Event.A_cas _ -> "cas"
          | Event.A_bit (op, _) -> "bit:" ^ Ops.to_string op ))
      (Trace.accesses_of ~pid:0 out.Runner.trace)
  in
  let prefix =
    accesses (fun solo -> List.iter (fun f -> f ()) solo.Subjects.context)
  in
  let full =
    accesses (fun solo ->
        List.iter (fun f -> f ()) solo.Subjects.context;
        solo.Subjects.body ())
  in
  (* The context prefix is deterministic, so the body's accesses are the
     suffix beyond it. *)
  List.filteri (fun i _ -> i >= List.length prefix) full

let subjects_with_variants =
  lazy
    (List.concat_map
       (fun (s : Subjects.t) ->
         List.map (fun v -> (s, v)) s.Subjects.variants)
       (Subjects.registry ()))

let prop_sym_matches_sim =
  QCheck.Test.make ~count:300
    ~name:"analysis: symbolic solo visits the simulated access sequence"
    QCheck.(int_bound (List.length (Lazy.force subjects_with_variants) - 1))
    (fun i ->
      let s, v = List.nth (Lazy.force subjects_with_variants) i in
      let sym = sym_signature v and sim = sim_signature v in
      if sym <> sim then
        QCheck.Test.fail_reportf "%s %s %s: symbolic %s <> simulated %s"
          (Subjects.family_name s.Subjects.family)
          s.Subjects.alg_name v.Subjects.v_label
          (String.concat ";"
             (List.map (fun (r, c) -> Printf.sprintf "%d:%s" r c) sym))
          (String.concat ";"
             (List.map (fun (r, c) -> Printf.sprintf "%d:%s" r c) sim))
      else true)

(* ------------------------------------------------------------------ *)
(* Spin-structure classification                                       *)
(* ------------------------------------------------------------------ *)

let find_row name config =
  List.find
    (fun (r : Lint.row) ->
      let s = r.Lint.report.Analyze.subject in
      s.Subjects.alg_name = name && s.Subjects.config = config)
    (Lazy.force outcome).Lint.rows

let test_spin_classes () =
  (* The two shapes the §1.2 remote-access discussion contrasts, pinned:
     the queue lock spins on a register written only in straight-line
     code, the test-and-set locks spin on the contended bit itself.
     (The native benchmark measures the same split from saturated
     rmr/acq; BENCH_native.json records both labels side by side.) *)
  List.iter
    (fun (name, expected) ->
      let row = find_row name "n=2" in
      Alcotest.(check string)
        (name ^ " spin class") expected
        (Analyze.spin_class_name row.Lint.report.Analyze.spin_class))
    [ ("mcs-lock", "local-spin");
      ("tas-lock", "spin-on-shared");
      ("recoverable-tas", "spin-on-shared");
      ("recoverable-queue", "local-spin") ];
  (* The recovery-path subjects go through the same classifier.  The
     symbolic exploration of the [lock] re-entry still covers the
     signal-cell busy-wait branch (even though the concrete solo
     recovery path is straight-line), and that cell is written only in
     straight-line release code — so recovery keeps the local-spin
     class, which is exactly the property the RMR bound needs. *)
  List.iter
    (fun config ->
      let row = find_row "recoverable-queue" config in
      Alcotest.(check string)
        ("recoverable-queue " ^ config ^ " spin class")
        "local-spin"
        (Analyze.spin_class_name row.Lint.report.Analyze.spin_class))
    [ "n=2 recovery-held"; "n=2 recovery-not-held" ];
  (* The one-shot families never busy-wait. *)
  List.iter
    (fun (row : Lint.row) ->
      match row.Lint.report.Analyze.subject.Subjects.family with
      | Subjects.Mutex -> ()
      | Subjects.Detector | Subjects.Naming | Subjects.Consensus
      | Subjects.Renaming ->
        check_bool
          (row_label row ^ " wait-free")
          true
          (row.Lint.report.Analyze.spin_class = Analyze.Wait_free))
    (Lazy.force outcome).Lint.rows

(* ------------------------------------------------------------------ *)
(* Replay safety: static classification = dynamic scheduler flag       *)
(* ------------------------------------------------------------------ *)

let test_replay_safety_agreement () =
  List.iter
    (fun (row : Lint.row) ->
      let s = row.Lint.report.Analyze.subject in
      check_bool (row_label row ^ " replay safety")
        (s.Subjects.dynamic_replay_safe ())
        row.Lint.report.Analyze.replay_safe)
    (Lazy.force outcome).Lint.rows

let test_swallows_fixture_detected () =
  let row = find_row "fixture-swallows" "n=2" in
  check_bool "statically replay-unsafe" false
    row.Lint.report.Analyze.replay_safe;
  check_bool "warned" true
    (List.exists
       (fun (v : Lint.violation) ->
         v.Lint.code = "replay-unsafe" && v.Lint.severity = Lint.Warning)
       row.Lint.violations)

(* ------------------------------------------------------------------ *)
(* The lint gate                                                       *)
(* ------------------------------------------------------------------ *)

let test_lint_gate () =
  let o = Lazy.force outcome in
  (* Every error-severity finding comes from a deliberately broken
     fixture — i.e. the real registry lints clean and the CI gate only
     trips on genuine violations. *)
  List.iter
    (fun (row : Lint.row) ->
      if not (is_fixture row) then
        check_bool
          (row_label row ^ " clean")
          true
          (List.for_all
             (fun (v : Lint.violation) -> v.Lint.severity <> Lint.Error)
             row.Lint.violations))
    o.Lint.rows;
  check_bool "fixtures trip the gate" true (o.Lint.errors > 0);
  check "gate exit code" 1 (Lint.exit_code o);
  let wide = find_row "fixture-wide-spin" "n=2" in
  check_bool "wide-spin atomicity error" true
    (List.exists
       (fun (v : Lint.violation) ->
         v.Lint.code = "atomicity" && v.Lint.severity = Lint.Error)
       wide.Lint.violations);
  (* The JSON report round-trips the headline numbers. *)
  let json = Lint.to_json o in
  check_bool "json mentions schema" true
    (let sub = "\"schema\": \"cfc-lint/2\"" in
     let len = String.length sub in
     let rec scan i =
       i + len <= String.length json
       && (String.sub json i len = sub || scan (i + 1))
     in
     scan 0)

(* ------------------------------------------------------------------ *)
(* Product passes: races, liveness, register semantics                 *)
(* ------------------------------------------------------------------ *)

(* The planted lost-wakeup lock must be refuted — a harmful race with
   both access paths, plus the deadlock-risk liveness warning — while
   its benign twin (identical spin/write shape, but the guard register
   provably always holds one value) must come back completely clean.
   The pair pins the classification to the value analysis, not to a
   pattern match on the idiom. *)
let test_lost_wakeup_refuted_benign_clean () =
  let row = find_row "fixture-lost-wakeup" "n=2" in
  check_bool "harmful race is an error" true
    (List.exists
       (fun (v : Lint.violation) ->
         v.Lint.code = "harmful-race" && v.Lint.severity = Lint.Error)
       row.Lint.violations);
  check_bool "deadlock risk is warned" true
    (List.exists
       (fun (v : Lint.violation) ->
         v.Lint.code = "liveness" && v.Lint.severity = Lint.Warning)
       row.Lint.violations);
  check_bool "product agrees" true
    (Product.harmful row.Lint.product <> []
    && row.Lint.product.Product.liveness = Product.Deadlock_risk);
  (* Harmful races carry both parties' rendered access paths. *)
  List.iter
    (fun (r : Product.race) ->
      check_bool "left path rendered" true
        (String.length r.Product.r_left.Product.p_path > 0);
      check_bool "right path rendered" true
        (String.length r.Product.r_right.Product.p_path > 0))
    (Product.harmful row.Lint.product);
  let benign = find_row "fixture-lost-wakeup-benign" "n=2" in
  check "benign twin lints clean" 0 (List.length benign.Lint.violations);
  check_bool "benign twin has no harmful race" true
    (Product.harmful benign.Lint.product = []);
  check_bool "benign twin is not a deadlock risk" true
    (benign.Lint.product.Product.liveness <> Product.Deadlock_risk)

(* The real registry must clear all three product passes: no harmful
   race and no deadlock-risk verdict anywhere (the lint-gate test
   already implies this via severities; this pins the product fields
   directly). *)
let test_registry_products_clean () =
  List.iter
    (fun (row : Lint.row) ->
      if not (is_fixture row) then begin
        check_bool (row_label row ^ ": no harmful race") true
          (Product.harmful row.Lint.product = []);
        check_bool (row_label row ^ ": no deadlock risk") true
          (row.Lint.product.Product.liveness <> Product.Deadlock_risk)
      end)
    (Lazy.force outcome).Lint.rows

(* The recovery-path subjects go through the same product passes at
   n=3 — one size beyond the registry's standard analysis points, the
   smallest n where the pairwise construction showed a previously
   "pairwise sound" registry algorithm broken. *)
let test_recovery_products_n3 () =
  let count = ref 0 in
  List.iter
    (fun alg ->
      let (module A : Cfc_mutex.Mutex_intf.ALG) = alg in
      List.iter
        (fun held ->
          match Subjects.of_mutex_recovery ~held ~n:3 alg with
          | None -> ()
          | Some s ->
            incr count;
            let p = Product.of_report (Analyze.analyze s) in
            let label =
              Printf.sprintf "%s recovery held=%b n=3" A.name held
            in
            check_bool (label ^ ": no harmful race") true
              (Product.harmful p = []);
            check_bool (label ^ ": no deadlock risk") true
              (p.Product.liveness <> Product.Deadlock_risk);
            check_bool (label ^ ": registers classified") true
              (p.Product.registers <> []))
        [ true; false ])
    Cfc_mutex.Registry.recoverable;
  check_bool "recovery subjects analyzed" true (!count >= 4)

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let contains_sub haystack sub =
  let len = String.length sub in
  let rec scan i =
    i + len <= String.length haystack
    && (String.sub haystack i len = sub || scan (i + 1))
  in
  scan 0

(* Regression: the hand-rolled JSON emission must escape every string it
   interpolates.  Violation details carry source lines and rendered
   access paths, so quotes, backslashes and control characters all
   occur in practice. *)
let test_json_escaping () =
  let v =
    { Lint.severity = Lint.Error; code = "wall-clock";
      detail = "tricky \"quoted\" back\\slash\nnewline\ttab" }
  in
  let o =
    { Lint.rows = []; source_findings = [ v ]; errors = 1; warnings = 0 }
  in
  let json = Lint.to_json o in
  check_bool "quote escaped" true
    (contains_sub json "tricky \\\"quoted\\\"");
  check_bool "backslash escaped" true (contains_sub json "back\\\\slash");
  check_bool "newline escaped" true (contains_sub json "\\nnewline");
  check_bool "tab escaped" true (contains_sub json "\\u0009tab");
  check_bool "no raw newline inside the string" true
    (not (contains_sub json "\nnewline"))

(* ------------------------------------------------------------------ *)
(* Determinism source scan                                             *)
(* ------------------------------------------------------------------ *)

let test_sources_deterministic () =
  (* The library tree itself must be clean (seeded [Random.State] only —
     the deterministic-by-default convention, now enforced). *)
  check "lib/ clean" 0
    (List.length (Lazy.force outcome).Lint.source_findings)

let test_scan_detects_global_random () =
  let root = Filename.temp_file "cfc_lint" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  Unix.mkdir (Filename.concat root "lib") 0o755;
  let write name contents =
    let oc = open_out (Filename.concat (Filename.concat root "lib") name) in
    output_string oc contents;
    close_out oc
  in
  write "bad.ml" "let roll () = Random.int 6\n";
  write "good.ml"
    "let roll st = Random.State.int st 6\nlet mk () = Random.State.make [| 7 |]\n";
  let findings = Lint.scan_sources ~root in
  check "one finding" 1 (List.length findings);
  let v = List.hd findings in
  Alcotest.(check string) "code" "nondeterminism" v.Lint.code;
  check_bool "names the file" true
    (let sub = "bad.ml" in
     let len = String.length sub in
     let msg = v.Lint.detail in
     let rec scan i =
       i + len <= String.length msg
       && (String.sub msg i len = sub || scan (i + 1))
     in
     scan 0)

let () =
  Alcotest.run "cfc_analysis"
    [ ( "agreement",
        [ Alcotest.test_case "static = closed form = measured" `Quick
            test_three_way_agreement;
          Alcotest.test_case "battery covers every family" `Quick
            test_battery_covers_families;
          QCheck_alcotest.to_alcotest prop_sym_matches_sim ] );
      ( "classification",
        [ Alcotest.test_case "spin classes" `Quick test_spin_classes;
          Alcotest.test_case "replay safety static = dynamic" `Quick
            test_replay_safety_agreement;
          Alcotest.test_case "swallows fixture detected" `Quick
            test_swallows_fixture_detected ] );
      ( "product",
        [ Alcotest.test_case "lost-wakeup refuted, benign twin clean" `Quick
            test_lost_wakeup_refuted_benign_clean;
          Alcotest.test_case "registry clears the product passes" `Quick
            test_registry_products_clean;
          Alcotest.test_case "recovery subjects n=3" `Quick
            test_recovery_products_n3 ] );
      ( "gate",
        [ Alcotest.test_case "fixtures fail, registry passes" `Quick
            test_lint_gate;
          Alcotest.test_case "json strings escaped" `Quick
            test_json_escaping;
          Alcotest.test_case "sources deterministic" `Quick
            test_sources_deterministic;
          Alcotest.test_case "scanner catches global Random" `Quick
            test_scan_detects_global_random ] ) ]
