(* Tests for the consensus subsystem: the §1.2 definitional example.
   Exact contention-free counts, agreement/validity under every
   interleaving (model checker) and random schedules with crashes
   (wait-freedom), and executable demonstrations of the classical
   limits: plain read/write registers cannot solve consensus, and one
   single-bit RMW object stops at consensus number 2. *)

open Cfc_consensus
open Cfc_core
open Cfc_mcheck

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_inputs n =
  (* every 0/1 input vector for n processes *)
  List.init (1 lsl n) (fun mask ->
      Array.init n (fun i -> (mask lsr i) land 1))

let test_cf_exact () =
  (* The broken constructions are contention-free-sound (their defect
     only shows under contention), so their closed forms are asserted
     like everyone else's, at their natural n. *)
  let subjects =
    List.map (fun a -> (a, 2)) Registry.all
    @ [ (Registry.broken_rw, 2); (Registry.broken_three, 3) ]
  in
  List.iter
    (fun ((module A : Consensus_intf.ALG), n) ->
      List.iter
        (fun inputs ->
          let r = Consensus_harness.contention_free (module A) ~n ~inputs in
          (match A.predicted_cf_steps with
          | Some s ->
            check
              (Printf.sprintf "%s cf steps" A.name)
              s r.Consensus_harness.max.Measures.steps
          | None -> Alcotest.failf "%s: missing predicted_cf_steps" A.name);
          match A.predicted_cf_registers with
          | Some s ->
            check
              (Printf.sprintf "%s cf regs" A.name)
              s r.Consensus_harness.max.Measures.registers
          | None -> Alcotest.failf "%s: missing predicted_cf_registers" A.name)
        (all_inputs n))
    subjects

let test_exhaustive_agreement () =
  List.iter
    (fun (module A : Consensus_intf.ALG) ->
      List.iter
        (fun inputs ->
          match Props.check_consensus (module A) ~n:2 ~inputs with
          | Explore.Ok stats ->
            check_bool
              (Printf.sprintf "%s inputs %d%d explored" A.name inputs.(0)
                 inputs.(1))
              true (stats.Explore.runs > 0)
          | Explore.Violation { violation; _ } ->
            Alcotest.failf "%s: %a" A.name Spec.pp_violation violation)
        (all_inputs 2))
    Registry.all

let prop_agreement_random_with_crashes =
  QCheck.Test.make ~count:200
    ~name:"consensus: agreement+validity under random schedules and crashes"
    QCheck.(
      triple (int_bound 1_000_000) (int_bound 3)
        (option (pair (int_bound 6) (int_bound 1))))
    (fun (seed, input_mask, crash) ->
      List.for_all
        (fun (module A : Consensus_intf.ALG) ->
          let inputs = Array.init 2 (fun i -> (input_mask lsr i) land 1) in
          let crash_at =
            match crash with Some (at, pid) -> [ (at, pid) ] | None -> []
          in
          let out =
            Consensus_harness.run ~crash_at
              ~pick:(Cfc_runtime.Schedule.random ~seed)
              (module A) ~n:2 ~inputs
          in
          out.Cfc_runtime.Runner.completed
          && Consensus_harness.check out ~n:2 ~inputs = None)
        Registry.all)

(* Plain read/write registers cannot solve consensus: the checker finds a
   disagreeing interleaving of the natural attempt. *)
let test_rw_consensus_impossible () =
  let found_disagreement =
    List.exists
      (fun inputs ->
        match Props.check_consensus Registry.broken_rw ~n:2 ~inputs with
        | Explore.Ok _ -> false
        | Explore.Violation _ -> true)
      (all_inputs 2)
  in
  check_bool "read/write consensus refuted" true found_disagreement

(* Consensus number 2: the naive 3-process extension of the TAS race
   disagrees under some interleaving. *)
let test_three_process_impossible () =
  let found =
    List.exists
      (fun inputs ->
        match Props.check_consensus Registry.broken_three ~n:3 ~inputs with
        | Explore.Ok _ -> false
        | Explore.Violation _ -> true)
      (all_inputs 3)
  in
  check_bool "3-process tas consensus refuted" true found

(* But the 2-process algorithms really are wait-free: a crashed partner
   never blocks a decision (straight-line code; checked above via
   completed runs, and here via solo-after-crash). *)
let test_decide_after_partner_crash () =
  List.iter
    (fun (module A : Consensus_intf.ALG) ->
      let inputs = [| 1; 0 |] in
      (* crash p0 before it takes any step; p1 must still decide (its own
         value, by validity among survivors... p0 never wrote, so p1
         decides p1's input). *)
      let out =
        Consensus_harness.run
          ~crash_at:[ (0, 0) ]
          ~pick:(Cfc_runtime.Schedule.round_robin ())
          (module A) ~n:2 ~inputs
      in
      check_bool (A.name ^ " completed") true out.Cfc_runtime.Runner.completed;
      match
        List.assoc_opt 1
          (Measures.decisions out.Cfc_runtime.Runner.trace ~nprocs:2)
      with
      | Some v -> check (A.name ^ " survivor decides") 0 v
      | None -> Alcotest.fail (A.name ^ ": survivor undecided"))
    Registry.all

let () =
  Alcotest.run "cfc_consensus"
    [ ( "consensus",
        [ Alcotest.test_case "cf exact counts" `Quick test_cf_exact;
          Alcotest.test_case "exhaustive agreement (mcheck)" `Quick
            test_exhaustive_agreement;
          QCheck_alcotest.to_alcotest prop_agreement_random_with_crashes;
          Alcotest.test_case "read/write impossible (demo)" `Quick
            test_rw_consensus_impossible;
          Alcotest.test_case "consensus number 2 (demo)" `Quick
            test_three_process_impossible;
          Alcotest.test_case "decide after partner crash" `Quick
            test_decide_after_partner_crash ] ) ]
