(* Tests for the mutual exclusion algorithms and their measured
   complexities: exact contention-free counts (the numbers the paper's
   upper-bound theorems are built from), safety under randomized and
   adversarial schedules, atomicity accounting, and the contention
   detectors. *)

open Cfc_base
open Cfc_mutex
open Cfc_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let alg_name (module A : Mutex_intf.ALG) = A.name

(* ------------------------------------------------------------------ *)
(* Exact contention-free complexity                                    *)
(* ------------------------------------------------------------------ *)

(* Every algorithm's measured contention-free sample must match its
   predicted closed form, for every process, across a grid of (n, l). *)
let test_cf_exact () =
  let grid = [ (1, None); (2, None); (3, None); (5, None); (8, None);
               (16, None); (33, None);
               (8, Some 2); (16, Some 2); (16, Some 3); (64, Some 3);
               (64, Some 6); (100, Some 4); (128, Some 2) ]
  in
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      List.iter
        (fun (n, l) ->
          let p = Mutex_intf.params ?l n in
          if A.supports p then begin
            let r = Mutex_harness.contention_free (module A) p in
            let ctx =
              Printf.sprintf "%s n=%d l=%d" A.name n p.Mutex_intf.l
            in
            (match A.predicted_cf_steps p with
            | Some s -> check (ctx ^ " cf steps") s r.Mutex_harness.max.Measures.steps
            | None -> ());
            (match A.predicted_cf_registers p with
            | Some s ->
              check (ctx ^ " cf registers") s
                r.Mutex_harness.max.Measures.registers
            | None -> ());
            (* The prediction is the max over processes; also check every
               process individually matches (these algorithms are
               symmetric in cost). *)
            Array.iteri
              (fun me s ->
                match A.predicted_cf_steps p with
                | Some expect ->
                  check
                    (Printf.sprintf "%s p%d steps" ctx me)
                    expect s.Measures.steps
                | None -> ())
              r.Mutex_harness.per_process
          end)
        grid)
    Registry.all

(* The declared atomicity matches the widest register actually used. *)
let test_atomicity_observed () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      List.iter
        (fun (n, l) ->
          let p = Mutex_intf.params ?l n in
          if A.supports p then begin
            let r = Mutex_harness.contention_free (module A) p in
            check
              (Printf.sprintf "%s n=%d l=%d atomicity" A.name n p.Mutex_intf.l)
              r.Mutex_harness.atomicity_declared
              r.Mutex_harness.atomicity_observed
          end)
        [ (2, None); (8, None); (8, Some 2); (64, Some 3); (16, Some 4) ])
    Registry.all

(* Lamport's exact shape: 5-step entry, 2-step exit, 3 registers, and the
   read/write split (2 reads, 5 writes). *)
let test_lamport_shape () =
  let p = Mutex_intf.params 8 in
  let r = Mutex_harness.contention_free Registry.lamport_fast p in
  let s = r.Mutex_harness.max in
  check "steps" 7 s.Measures.steps;
  check "registers" 3 s.Measures.registers;
  check "read steps" 2 s.Measures.read_steps;
  check "write steps" 5 s.Measures.write_steps;
  check "read registers" 2 s.Measures.read_registers;
  check "write registers" 3 s.Measures.write_registers

(* Tree depth arithmetic: the measured step count follows 7·⌈log_c n⌉
   with c = 2^l - 1. *)
let test_tree_depths () =
  List.iter
    (fun (n, l, expect_depth) ->
      let p = Mutex_intf.params ~l n in
      let r = Mutex_harness.contention_free Registry.tree p in
      check
        (Printf.sprintf "tree n=%d l=%d steps" n l)
        (7 * expect_depth) r.Mutex_harness.max.Measures.steps;
      check
        (Printf.sprintf "tree n=%d l=%d registers" n l)
        (3 * expect_depth) r.Mutex_harness.max.Measures.registers)
    [ (3, 2, 1); (4, 2, 2); (9, 2, 2); (27, 2, 3); (28, 2, 4);
      (7, 3, 1); (49, 3, 2); (50, 3, 3); (2, 6, 1); (1000, 10, 1) ]

(* ------------------------------------------------------------------ *)
(* Safety                                                              *)
(* ------------------------------------------------------------------ *)

let assert_safe ?(rounds = 2) ~pick (module A : Mutex_intf.ALG) p =
  let out = Mutex_harness.run ~rounds ~pick (module A) p in
  (match Spec.mutual_exclusion out.Cfc_runtime.Runner.trace
           ~nprocs:p.Mutex_intf.n with
  | None -> ()
  | Some v ->
    Alcotest.failf "%s: %a" A.name Spec.pp_violation v);
  match Spec.mutex_progress out with
  | None -> ()
  | Some v -> Alcotest.failf "%s progress: %a" A.name Spec.pp_violation v

let test_safety_round_robin () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      List.iter
        (fun (n, l) ->
          let p = Mutex_intf.params ?l n in
          if A.supports p then
            assert_safe ~pick:(Cfc_runtime.Schedule.round_robin ())
              (module A) p)
        [ (2, None); (3, None); (5, None); (4, Some 2); (9, Some 2) ])
    Registry.all

let prop_safety_random =
  QCheck.Test.make ~count:60
    ~name:"mutual exclusion holds under random schedules (all algorithms)"
    QCheck.(triple (int_bound 100_000) (int_range 2 6) (int_range 2 4))
    (fun (seed, n, l) ->
      List.for_all
        (fun (module A : Mutex_intf.ALG) ->
          let p = { Mutex_intf.n; l } in
          if not (A.supports p) then true
          else begin
            let out =
              Mutex_harness.run ~rounds:2
                ~pick:(Cfc_runtime.Schedule.random ~seed)
                (module A) p
            in
            Spec.mutual_exclusion out.Cfc_runtime.Runner.trace ~nprocs:n
            = None
            && Spec.mutex_progress out = None
          end)
        Registry.all)

(* A biased scheduler that starves one process still preserves safety and
   lets the favored process through. *)
let prop_safety_biased =
  QCheck.Test.make ~count:30
    ~name:"mutual exclusion holds under biased schedules"
    QCheck.(pair (int_bound 100_000) (int_range 2 5))
    (fun (seed, n) ->
      List.for_all
        (fun (module A : Mutex_intf.ALG) ->
          let p = Mutex_intf.params n in
          if not (A.supports p) then true
          else begin
            let out =
              Mutex_harness.run ~rounds:2
                ~pick:
                  (Cfc_runtime.Schedule.biased ~seed ~favored:0 ~bias:8)
                (module A) p
            in
            Spec.mutual_exclusion out.Cfc_runtime.Runner.trace ~nprocs:n
            = None
          end)
        Registry.all)

(* Fail-stop crashes cannot break safety: any run with crashes injected
   is a legal run in which the crashed processes simply stop, so mutual
   exclusion must still hold for every algorithm (progress, of course,
   may not — a crashed lock holder blocks everyone, so the run is capped
   and only safety is asserted). *)
let prop_safety_random_crashes =
  QCheck.Test.make ~count:60
    ~name:"mutual exclusion holds under random crash schedules (all algorithms)"
    QCheck.(triple (int_bound 100_000) (int_range 2 5) (int_range 1 3))
    (fun (seed, n, ncrashes) ->
      (* Crash-only plan: distinct pids (the alternation rule allows at
         most one un-recovered crash per pid), seeded steps. *)
      let st = Random.State.make [| seed; n; ncrashes |] in
      let pids =
        List.init n Fun.id
        |> List.map (fun p -> (Random.State.bits st, p))
        |> List.sort compare
        |> List.map snd
      in
      let faults =
        List.filteri (fun i _ -> i < ncrashes) pids
        |> List.map (fun pid ->
               Cfc_runtime.Fault.crash ~step:(Random.State.int st 60) ~pid)
      in
      List.for_all
        (fun (module A : Mutex_intf.ALG) ->
          let p = Mutex_intf.params n in
          if not (A.supports p) then true
          else begin
            let out =
              Mutex_harness.run ~rounds:2 ~max_steps:2_000 ~faults
                ~pick:(Cfc_runtime.Schedule.random ~seed)
                (module A) p
            in
            Spec.mutual_exclusion out.Cfc_runtime.Runner.trace ~nprocs:n
            = None
          end)
        Registry.all)

(* Every recoverable lock in the registry also survives full
   crash–recovery chaos: crashed processes restart from the top and the
   recoverable mutual exclusion property (crashing inside the critical
   section does not release it) holds on every seeded plan, for every
   lock — so a new recoverable algorithm is covered the moment it
   registers. *)
let prop_recoverable_chaos =
  QCheck.Test.make ~count:80
    ~name:"recoverable locks: safety under seeded crash-recovery chaos"
    QCheck.(triple (int_bound 100_000) (int_range 2 5) (int_range 1 3))
    (fun (seed, n, pairs) ->
      let p = Mutex_intf.params n in
      List.for_all
        (fun alg ->
          let module A = (val alg : Mutex_intf.ALG) in
          (not (A.supports p))
          ||
          let _, plan, violation = Recovery_harness.chaos ~seed ~pairs alg p in
          match violation with
          | None -> true
          | Some v ->
            QCheck.Test.fail_reportf "%s n=%d: %a under %a" A.name n
              Spec.pp_violation v Cfc_runtime.Fault.pp_plan plan)
        Registry.recoverable)

(* ------------------------------------------------------------------ *)
(* Worst case                                                          *)
(* ------------------------------------------------------------------ *)

(* Kessels tournament: worst-case register complexity stays O(log n) (at
   most 4 per level) no matter the schedule — the [Kes82] table entry. *)
let test_kessels_wc_registers () =
  List.iter
    (fun n ->
      let p = Mutex_intf.params n in
      let s =
        Mutex_harness.wc_estimate ~seeds:[ 1; 2; 3 ]
          Registry.kessels_tournament p ~entry:true
      in
      let bound = 4 * Ixmath.ceil_log2 (max 2 n) in
      check_bool
        (Printf.sprintf "kessels n=%d wc regs %d <= %d" n
           s.Measures.registers bound)
        true
        (s.Measures.registers <= bound))
    [ 2; 4; 8; 16 ]

(* MS93 packing (EXP-NATIVE's counted half): force the slow path, then
   let the loser-turned-winner scan alone.  Plain Lamport reads n
   presence bits; the packed variant reads ceil(n/32) words — the §1.3
   multi-grain saving, measured deterministically. *)
let test_packed_slow_path_scan () =
  let slow_path_entry alg =
    let n = 32 in
    let p = Mutex_intf.params n in
    let system = Mutex_harness.system alg p in
    let memory, procs = system () in
    (* p0: announce, gate open, close gate (4 steps: b, x, read y, write
       y); p1: announce + overwrite x (2 steps); p0: read x -> lost fast
       path, retract (2 steps); p1: read closed gate, retract (2 steps);
       then round-robin: p0 scans and wins. *)
    let prefix = [ 0; 0; 0; 0; 1; 1; 0; 0; 1; 1 ] in
    let pick =
      Cfc_runtime.Schedule.pref_then prefix
        (Cfc_runtime.Schedule.round_robin ())
    in
    let out = Cfc_runtime.Runner.run ~memory ~pick procs in
    (match
       Spec.mutual_exclusion out.Cfc_runtime.Runner.trace ~nprocs:n
     with
    | None -> ()
    | Some v -> Alcotest.failf "packed scan: %a" Spec.pp_violation v);
    let entries =
      Measures.mutex_wc_entry out.Cfc_runtime.Runner.trace ~nprocs:n
    in
    List.fold_left
      (fun acc (pid, s) -> if pid = 0 then max acc s.Measures.steps else acc)
      0 entries
  in
  let plain = slow_path_entry Registry.lamport_fast in
  let packed = slow_path_entry Registry.ms_packed in
  (* plain: 6 pre-scan steps + 32 bit reads + 1 gate read; packed: the
     scan collapses to a single word read. *)
  check_bool
    (Printf.sprintf "packed slow path %d much shorter than plain %d" packed
       plain)
    true
    (packed + 24 <= plain);
  check_bool "plain really scanned" true (plain >= 32)

(* The worst-case entry step count of Lamport's algorithm grows without
   bound with the adversary's spin parameter (EXP-WC∞). *)
let test_unbounded_entry_demo () =
  let s100 = Mutex_harness.lamport_unbounded_entry ~spin:100 in
  let s1000 = Mutex_harness.lamport_unbounded_entry ~spin:1000 in
  check_bool "spin=100 at least 100 entry steps" true
    (s100.Measures.steps >= 100);
  check_bool "strictly growing" true
    (s1000.Measures.steps >= s100.Measures.steps + 800)

(* Exit code is short for every algorithm under contention too. *)
let test_wc_exit_small () =
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 4 in
      if A.supports p then begin
        let s =
          Mutex_harness.wc_estimate ~seeds:[ 7 ] (module A) p ~entry:false
        in
        check_bool
          (Printf.sprintf "%s exit steps %d bounded" A.name s.Measures.steps)
          true
          (s.Measures.steps <= 3 * Ixmath.ceil_log2 4 + 2)
      end)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Structural properties                                               *)
(* ------------------------------------------------------------------ *)

(* Kessels' defining property [Kes82]: no shared register is ever
   written by two different processes ("arbitration without common
   modifiable variables").  It is a property of the two-process arbiter
   — in a tournament the same node side is legitimately reused over time
   by successive winners from that subtree — so it is checked on the
   n=2 instance, where sides are owned permanently. *)
let test_kessels_single_writer () =
  let n = 2 in
  let out =
    Mutex_harness.run ~rounds:5
      ~pick:(Cfc_runtime.Schedule.random ~seed:5)
      Registry.kessels_tournament (Mutex_intf.params n)
  in
  let writers = Hashtbl.create 64 in
  Cfc_runtime.Trace.iter
    (fun e ->
      match e.Cfc_runtime.Event.body with
      | Cfc_runtime.Event.Access (r, k)
        when Cfc_runtime.Event.is_write k
             && r.Cfc_runtime.Register.name <> "cs.witness" ->
        let id = r.Cfc_runtime.Register.id in
        let known =
          Option.value ~default:[] (Hashtbl.find_opt writers id)
        in
        if not (List.mem e.Cfc_runtime.Event.pid known) then
          Hashtbl.replace writers id (e.Cfc_runtime.Event.pid :: known)
      | Cfc_runtime.Event.Access _ | Cfc_runtime.Event.Region_change _
      | Cfc_runtime.Event.Crash | Cfc_runtime.Event.Recover -> ())
    out.Cfc_runtime.Runner.trace;
  Hashtbl.iter
    (fun id pids ->
      check (Printf.sprintf "register %d single writer" id) 1
        (List.length pids))
    writers

(* Burns & Lynch [BL93]: any deadlock-free mutual exclusion algorithm
   for n processes needs at least n shared registers.  Every plain
   register-model algorithm here allocates at least that.  (The packed
   variant evades the count by construction — its sub-word stores are a
   multi-grain primitive outside BL93's model — which is itself worth
   pinning down: it allocates far fewer.) *)
let test_bl93_space_bound () =
  let space_of alg p =
    let memory, _ = Mutex_harness.system alg p () in
    (* minus the harness witness register *)
    Cfc_runtime.Memory.size memory - 1
  in
  List.iter
    (fun ((module A : Mutex_intf.ALG) as alg) ->
      List.iter
        (fun (n, l) ->
          let p = Mutex_intf.params ?l n in
          if A.supports p && A.name <> "lamport-fast-packed" then
            check_bool
              (Printf.sprintf "%s n=%d: %d registers >= n" A.name n
                 (space_of alg p))
              true
              (space_of alg p >= n))
        [ (2, None); (5, None); (9, Some 2); (16, Some 4) ])
    Registry.register_model;
  check_bool "packed variant beats BL93's count via multi-grain" true
    (space_of Registry.ms_packed (Mutex_intf.params 64) < 64);
  (* The one-bit algorithm meets the bound with equality: space-optimal. *)
  List.iter
    (fun n ->
      check
        (Printf.sprintf "one-bit n=%d space-optimal" n)
        n
        (space_of Registry.one_bit (Mutex_intf.params n)))
    [ 2; 7; 16 ]

(* Bakery is first-come-first-served: a process that finishes its
   doorway (its choosing section) before another begins it enters the
   critical section first.  Doorway boundaries are recovered from the
   trace (writes to the choosing bits), CS entries from region events. *)
let test_bakery_fifo () =
  let n = 5 in
  let out =
    Mutex_harness.run ~rounds:3
      ~pick:(Cfc_runtime.Schedule.random ~seed:31)
      Registry.bakery (Mutex_intf.params n)
  in
  let doorway_exit = Array.make n []
  and doorway_enter = Array.make n []
  and cs_enter = Array.make n [] in
  Cfc_runtime.Trace.iter
    (fun e ->
      let pid = e.Cfc_runtime.Event.pid in
      match e.Cfc_runtime.Event.body with
      | Cfc_runtime.Event.Access (r, Cfc_runtime.Event.A_write v)
        when r.Cfc_runtime.Register.name = Printf.sprintf "choosing[%d]" pid
        ->
        if v = 1 then
          doorway_enter.(pid) <- e.Cfc_runtime.Event.seq :: doorway_enter.(pid)
        else
          doorway_exit.(pid) <- e.Cfc_runtime.Event.seq :: doorway_exit.(pid)
      | Cfc_runtime.Event.Region_change Cfc_runtime.Event.Critical ->
        cs_enter.(pid) <- e.Cfc_runtime.Event.seq :: cs_enter.(pid)
      | Cfc_runtime.Event.Access _ | Cfc_runtime.Event.Region_change _
      | Cfc_runtime.Event.Crash | Cfc_runtime.Event.Recover -> ())
    out.Cfc_runtime.Runner.trace;
  let rounds pid =
    List.combine
      (List.combine
         (List.rev doorway_enter.(pid))
         (List.rev doorway_exit.(pid)))
      (List.rev cs_enter.(pid))
  in
  let all_rounds =
    List.concat_map (fun pid -> rounds pid) (List.init n Fun.id)
  in
  check_bool "observed rounds" true (List.length all_rounds = 3 * n);
  (* FCFS: doorway_exit(a) < doorway_enter(b) implies cs(a) < cs(b). *)
  List.iter
    (fun ((_, exit_a), cs_a) ->
      List.iter
        (fun ((enter_b, _), cs_b) ->
          if exit_a < enter_b then
            check_bool
              (Printf.sprintf "FCFS %d<%d => %d<%d" exit_a enter_b cs_a cs_b)
              true (cs_a < cs_b))
        all_rounds)
    all_rounds

(* ------------------------------------------------------------------ *)
(* Remote accesses (Â§1.2 / YA93)                                       *)
(* ------------------------------------------------------------------ *)

(* In contention-free runs, remote accesses = register complexity -- the
   Â§1.2 claim, as a property over every algorithm. *)
let prop_cf_remote_equals_registers =
  QCheck.Test.make ~count:40
    ~name:"contention-free remote accesses = register complexity"
    QCheck.(pair (int_range 1 12) (int_range 2 5))
    (fun (n, l) ->
      List.for_all
        (fun (module A : Mutex_intf.ALG) ->
          let p = { Mutex_intf.n; l } in
          if not (A.supports p) then true
          else begin
            let memory, procs = Mutex_harness.system (module A) p () in
            let out =
              Cfc_runtime.Runner.run ~memory
                ~pick:(Cfc_runtime.Schedule.solo 0)
                procs
            in
            let remote =
              (Measures.remote_accesses out.Cfc_runtime.Runner.trace
                 ~nprocs:n).(0)
            in
            let regs =
              Cfc_runtime.Trace.distinct_registers ~pid:0
                out.Cfc_runtime.Runner.trace
            in
            remote = regs
          end)
        Registry.all)

(* Local spinning: under sustained contention MCS performs a bounded
   number of remote references per acquisition (the waiter's spin
   register is written only by its predecessor), while the test-and-set
   lock's spinning is remote on every iteration. *)
let test_mcs_local_spin () =
  let n = 6 and rounds = 10 and cs_len = 25 in
  (* A long critical section makes waiters wait: local spinners hit their
     cache, shared spinners go remote every iteration. *)
  let remote_max (module A : Mutex_intf.ALG) =
    let p = Mutex_intf.params n in
    let memory = Cfc_runtime.Memory.create () in
    let module M = (val Cfc_runtime.Sim_mem.mem memory) in
    let module L = A.Make (M) in
    let inst = L.create p in
    let scratch = M.alloc ~name:"scratch" ~width:8 ~init:0 () in
    let proc me () =
      for _ = 1 to rounds do
        Cfc_runtime.Proc.region Cfc_runtime.Event.Trying;
        L.lock inst ~me;
        Cfc_runtime.Proc.region Cfc_runtime.Event.Critical;
        for k = 1 to cs_len do
          M.write scratch (k land 255)
        done;
        Cfc_runtime.Proc.region Cfc_runtime.Event.Exiting;
        L.unlock inst ~me;
        Cfc_runtime.Proc.region Cfc_runtime.Event.Remainder
      done
    in
    let out =
      Cfc_runtime.Runner.run ~memory
        ~pick:(Cfc_runtime.Schedule.round_robin ())
        (Array.init n proc)
    in
    (match
       Spec.mutual_exclusion out.Cfc_runtime.Runner.trace ~nprocs:n
     with
    | None -> ()
    | Some v -> Alcotest.failf "%s: %a" A.name Spec.pp_violation v);
    Array.fold_left max 0
      (Measures.remote_accesses out.Cfc_runtime.Runner.trace ~nprocs:n)
  in
  let mcs = remote_max Registry.mcs in
  let tas = remote_max Registry.tas_lock in
  (* MCS: bounded handover cost per acquisition, plus the shared scratch
     traffic inside the critical section (cs_len remote writes are shared
     by both algorithms, so compare totals directly). *)
  check_bool
    (Printf.sprintf "mcs %d well below tas %d" mcs tas)
    true
    (2 * mcs < tas);
  check_bool
    (Printf.sprintf "mcs overhead %d bounded" mcs)
    true
    (mcs <= (cs_len + 12) * rounds)

(* MCS hands the lock over in queue (FIFO) order. *)
let test_mcs_fifo () =
  let n = 4 in
  let out =
    Mutex_harness.run ~rounds:3
      ~pick:(Cfc_runtime.Schedule.round_robin ())
      Registry.mcs (Mutex_intf.params n)
  in
  let entries = ref [] in
  Cfc_runtime.Trace.iter
    (fun e ->
      match e.Cfc_runtime.Event.body with
      | Cfc_runtime.Event.Region_change Cfc_runtime.Event.Critical ->
        entries := e.Cfc_runtime.Event.pid :: !entries
      | Cfc_runtime.Event.Region_change _ | Cfc_runtime.Event.Access _
      | Cfc_runtime.Event.Crash | Cfc_runtime.Event.Recover -> ())
    out.Cfc_runtime.Runner.trace;
  let entries = List.rev !entries in
  check "all acquisitions" (3 * n) (List.length entries);
  (* Round-robin arrival + FIFO handover = cyclic CS order. *)
  List.iteri
    (fun i pid -> check (Printf.sprintf "entry %d cyclic" i) (i mod n) pid)
    entries

(* ------------------------------------------------------------------ *)
(* Contention detection                                                *)
(* ------------------------------------------------------------------ *)

let test_detector_solo_and_counts () =
  List.iter
    (fun (module D : Mutex_intf.DETECTOR) ->
      List.iter
        (fun (n, l) ->
          let p = Mutex_intf.params ?l n in
          if D.supports p then begin
            let r = Detect_harness.contention_free (module D) p in
            let ctx = Printf.sprintf "%s n=%d l=%d" D.name n p.Mutex_intf.l in
            (match D.predicted_cf_steps p with
            | Some s ->
              check (ctx ^ " cf steps") s r.Detect_harness.max.Measures.steps
            | None -> ());
            check (ctx ^ " atomicity") r.Detect_harness.atomicity_declared
              r.Detect_harness.atomicity_observed
          end)
        [ (1, None); (2, None); (8, None); (8, Some 1); (8, Some 2);
          (64, Some 3); (100, Some 2) ])
    Registry.detectors

let prop_at_most_one_winner =
  QCheck.Test.make ~count:100
    ~name:"contention detection: at most one winner under any schedule"
    QCheck.(triple (int_bound 100_000) (int_range 2 8) (int_range 1 4))
    (fun (seed, n, l) ->
      List.for_all
        (fun (module D : Mutex_intf.DETECTOR) ->
          let p = { Mutex_intf.n; l } in
          if not (D.supports p) then true
          else begin
            let out =
              Detect_harness.run
                ~pick:(Cfc_runtime.Schedule.random ~seed)
                (module D) p
            in
            Spec.at_most_one_winner out.Cfc_runtime.Runner.trace ~nprocs:n
            = None
            && out.Cfc_runtime.Runner.completed
          end)
        Registry.detectors)

(* Detectors are wait-free: every process decides even when others crash
   at arbitrary points. *)
let prop_detector_wait_free =
  QCheck.Test.make ~count:50
    ~name:"contention detection is wait-free under crashes"
    QCheck.(triple (int_bound 100_000) (int_range 2 6) (int_range 0 20))
    (fun (seed, n, crash_step) ->
      List.for_all
        (fun (module D : Mutex_intf.DETECTOR) ->
          let p = Mutex_intf.params n in
          if not (D.supports p) then true
          else begin
            let out =
              Detect_harness.run
                ~crash_at:[ (crash_step, seed mod n) ]
                ~pick:(Cfc_runtime.Schedule.random ~seed)
                (module D) p
            in
            out.Cfc_runtime.Runner.completed
            && Spec.at_most_one_winner out.Cfc_runtime.Runner.trace ~nprocs:n
               = None
          end)
        Registry.detectors)

(* Splitter tree: worst-case steps follow 4·⌈log n/l⌉ — the §2.6 bound. *)
let test_splitter_tree_wc () =
  List.iter
    (fun (n, l) ->
      let p = { Mutex_intf.n; l } in
      let s = Detect_harness.wc_estimate ~seeds:[ 1; 2 ]
          Registry.splitter_tree p
      in
      let expect = 4 * Ixmath.ceil_div (Ixmath.ceil_log2 n) l in
      check_bool
        (Printf.sprintf "splitter-tree n=%d l=%d wc steps %d <= %d" n l
           s.Measures.steps expect)
        true
        (s.Measures.steps <= expect))
    [ (8, 1); (8, 2); (64, 3); (100, 4); (1000, 2) ]

(* ------------------------------------------------------------------ *)
(* Registry sanity                                                     *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  check "algorithm count" 13 (List.length Registry.all);
  check "recoverable count" 2 (List.length Registry.recoverable);
  check_bool "find recoverable" true
    (Registry.find "recoverable-tas" <> None);
  check_bool "find recoverable queue" true
    (Registry.find "recoverable-queue" <> None);
  check_bool "find lamport" true (Registry.find "lamport-fast" <> None);
  check_bool "find nonsense" true (Registry.find "nonsense" = None);
  let names = List.map alg_name Registry.all in
  check "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

(* Packed-word cap boundary: the recoverable queue packs n slots of
   bits_needed(n) bits into one register, so it tops out at n = 15
   (15·4 = 60 <= 62, but 16·5 = 80 > 62).  [supports] must flip exactly
   there, and a direct [create] past the cap must fail loudly with a
   message naming the algorithm and the cap — not surface as a
   backend-specific register-width error. *)
let test_rec_queue_packing_cap () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i =
      i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
    in
    go 0
  in
  let (module Q : Mutex_intf.ALG) =
    Option.get (Registry.find "recoverable-queue")
  in
  check_bool "supports n=15" true (Q.supports (Mutex_intf.params 15));
  check_bool "rejects n=16" false (Q.supports (Mutex_intf.params 16));
  let memory = Cfc_runtime.Memory.create () in
  let module M = (val Cfc_runtime.Sim_mem.mem memory) in
  let module L = Q.Make (M) in
  (* At the boundary itself allocation must still go through. *)
  ignore (L.create (Mutex_intf.params 15));
  match L.create (Mutex_intf.params 16) with
  | exception Invalid_argument msg ->
      check_bool "error names the algorithm" true
        (contains msg "recoverable-queue");
      check_bool "error states the cap" true (contains msg "n <= 15")
  | _ -> Alcotest.fail "create past the packing cap was accepted"

let () =
  Alcotest.run "cfc_mutex"
    [ ( "contention-free",
        [ Alcotest.test_case "exact counts (all algorithms)" `Quick
            test_cf_exact;
          Alcotest.test_case "atomicity observed = declared" `Quick
            test_atomicity_observed;
          Alcotest.test_case "lamport 5+2 shape" `Quick test_lamport_shape;
          Alcotest.test_case "tree depths" `Quick test_tree_depths ] );
      ( "safety",
        [ Alcotest.test_case "round robin" `Quick test_safety_round_robin;
          QCheck_alcotest.to_alcotest prop_safety_random;
          QCheck_alcotest.to_alcotest prop_safety_biased;
          QCheck_alcotest.to_alcotest prop_safety_random_crashes;
          QCheck_alcotest.to_alcotest prop_recoverable_chaos ] );
      ( "worst-case",
        [ Alcotest.test_case "kessels wc registers O(log n)" `Quick
            test_kessels_wc_registers;
          Alcotest.test_case "unbounded entry demo" `Quick
            test_unbounded_entry_demo;
          Alcotest.test_case "packed slow-path scan (MS93)" `Quick
            test_packed_slow_path_scan;
          Alcotest.test_case "exit code short" `Quick test_wc_exit_small ] );
      ( "structure",
        [ Alcotest.test_case "kessels single-writer (Kes82)" `Quick
            test_kessels_single_writer;
          Alcotest.test_case "BL93 space bound" `Quick test_bl93_space_bound
        ] );
      ( "remote",
        [ Alcotest.test_case "bakery FCFS" `Quick test_bakery_fifo;
          QCheck_alcotest.to_alcotest prop_cf_remote_equals_registers;
          Alcotest.test_case "mcs local spin (YA93)" `Quick
            test_mcs_local_spin;
          Alcotest.test_case "mcs fifo handover" `Quick test_mcs_fifo ] );
      ( "detection",
        [ Alcotest.test_case "solo wins with exact counts" `Quick
            test_detector_solo_and_counts;
          QCheck_alcotest.to_alcotest prop_at_most_one_winner;
          QCheck_alcotest.to_alcotest prop_detector_wait_free;
          Alcotest.test_case "splitter tree wc" `Quick
            test_splitter_tree_wc ] );
      ( "registry",
        [ Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "rec-queue packing cap" `Quick
            test_rec_queue_packing_cap ] ) ]
