(* Tests for the native Atomic/Domain backend: semantic equivalence with
   the simulated backend, and real-parallelism smoke tests (mutual
   exclusion via a lost-update counter, naming uniqueness). *)

open Cfc_base
open Cfc_mutex

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

(* The native MEM implements the same register semantics. *)
let test_native_register_semantics () =
  let module M = (val Cfc_native.Native_mem.mem ()) in
  let r = M.alloc ~width:4 ~init:3 () in
  check "init" 3 (M.read r);
  M.write r 15;
  check "write" 15 (M.read r);
  (match M.write r 16 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "width overflow accepted");
  let b = M.alloc_bit ~model:Model.rmw ~init:0 () in
  check "tas" 0 (Option.get (M.bit_op b Ops.Test_and_set));
  check "tas again" 1 (Option.get (M.bit_op b Ops.Test_and_set));
  check "taf" 1 (Option.get (M.bit_op b Ops.Test_and_flip));
  check "read bit" 0 (M.read b);
  let restricted = M.alloc_bit ~model:Model.tas_only ~init:0 () in
  match M.read restricted with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "model not enforced natively"

(* The word-level primitives match their simulated semantics. *)
let test_native_word_rmw () =
  let module M = (val Cfc_native.Native_mem.mem ()) in
  let r = M.alloc ~width:8 ~init:5 () in
  check "xchg returns old" 5 (M.fetch_and_store r 9);
  check "xchg stored" 9 (M.read r);
  check_bool "cas hit" true (M.compare_and_set r ~expected:9 3);
  check_bool "cas miss" false (M.compare_and_set r ~expected:9 7);
  check "cas result" 3 (M.read r);
  let w = M.alloc ~width:8 ~init:0 () in
  M.write_field w ~index:0 ~width:2 3;
  M.write_field w ~index:3 ~width:2 2;
  check "packed" 131 (M.read w);
  match M.write_field w ~index:3 ~width:3 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range field accepted natively"

(* Single-domain lock/unlock works and is fast enough to time. *)
let test_uncontended_smoke () =
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params 4 in
      if A.supports p then begin
        let ns = Cfc_native.Native_harness.uncontended_ns ~iters:1000 alg p in
        check_bool (A.name ^ " positive time") true (ns > 0.)
      end)
    Registry.all

(* Real parallelism: 2-4 domains, no lost updates in the critical
   section for any algorithm. *)
let test_contended_exclusion () =
  let domains = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params domains in
      if A.supports p then begin
        let _ns, ok =
          Cfc_native.Native_harness.contended ~iters:2_000 ~domains alg p
        in
        check_bool (A.name ^ " no lost updates") true ok
      end)
    Registry.all

(* Naming on domains: unique names every time. *)
let test_native_naming () =
  List.iter
    (fun alg ->
      let (module A : Cfc_naming.Naming_intf.ALG) = alg in
      List.iter
        (fun n ->
          if A.supports ~n then begin
            let _ns, ok =
              Cfc_native.Native_harness.naming_ns ~repeats:20 alg ~n
            in
            check_bool (Printf.sprintf "%s n=%d unique" A.name n) true ok
          end)
        [ 4; 16 ])
    Cfc_naming.Registry.all

(* The shape result that motivates the paper: on this machine, the
   uncontended latency of the fast algorithm beats the bakery's by a
   growing margin as n grows. *)
let test_fast_beats_bakery_shape () =
  let fast_small =
    Cfc_native.Native_harness.uncontended_ns ~iters:5_000
      Registry.lamport_fast (Mutex_intf.params 4)
  and fast_big =
    Cfc_native.Native_harness.uncontended_ns ~iters:5_000
      Registry.lamport_fast (Mutex_intf.params 256)
  and bakery_big =
    Cfc_native.Native_harness.uncontended_ns ~iters:5_000 Registry.bakery
      (Mutex_intf.params 256)
  in
  (* Lamport is O(1) in n: allow 4x jitter.  Bakery at n=256 does ~770
     accesses vs Lamport's 7: demand at least a 5x gap (very lax; it is
     typically 50-100x). *)
  check_bool "lamport flat in n" true (fast_big < 4. *. fast_small +. 100.);
  check_bool "bakery much slower at n=256" true (bakery_big > 5. *. fast_big)

let () =
  Alcotest.run "cfc_native"
    [ ( "semantics",
        [ Alcotest.test_case "register semantics" `Quick
            test_native_register_semantics;
          Alcotest.test_case "word rmw + fields" `Quick
            test_native_word_rmw ] );
      ( "parallel",
        [ Alcotest.test_case "uncontended smoke" `Quick
            test_uncontended_smoke;
          Alcotest.test_case "contended exclusion" `Slow
            test_contended_exclusion;
          Alcotest.test_case "native naming" `Slow test_native_naming ] );
      ( "shape",
        [ Alcotest.test_case "fast beats bakery" `Slow
            test_fast_beats_bakery_shape ] ) ]
