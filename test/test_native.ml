(* Tests for the native Atomic/Domain backend: semantic equivalence with
   the simulated backend, and real-parallelism smoke tests (mutual
   exclusion via a lost-update counter, naming uniqueness). *)

open Cfc_base
open Cfc_mutex

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

(* The native MEM implements the same register semantics. *)
let test_native_register_semantics () =
  let module M = (val Cfc_native.Native_mem.mem ()) in
  let r = M.alloc ~width:4 ~init:3 () in
  check "init" 3 (M.read r);
  M.write r 15;
  check "write" 15 (M.read r);
  (match M.write r 16 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "width overflow accepted");
  let b = M.alloc_bit ~model:Model.rmw ~init:0 () in
  check "tas" 0 (Option.get (M.bit_op b Ops.Test_and_set));
  check "tas again" 1 (Option.get (M.bit_op b Ops.Test_and_set));
  check "taf" 1 (Option.get (M.bit_op b Ops.Test_and_flip));
  check "read bit" 0 (M.read b);
  let restricted = M.alloc_bit ~model:Model.tas_only ~init:0 () in
  match M.read restricted with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "model not enforced natively"

(* The word-level primitives match their simulated semantics. *)
let test_native_word_rmw () =
  let module M = (val Cfc_native.Native_mem.mem ()) in
  let r = M.alloc ~width:8 ~init:5 () in
  check "xchg returns old" 5 (M.fetch_and_store r 9);
  check "xchg stored" 9 (M.read r);
  check_bool "cas hit" true (M.compare_and_set r ~expected:9 3);
  check_bool "cas miss" false (M.compare_and_set r ~expected:9 7);
  check "cas result" 3 (M.read r);
  let w = M.alloc ~width:8 ~init:0 () in
  M.write_field w ~index:0 ~width:2 3;
  M.write_field w ~index:3 ~width:2 2;
  check "packed" 131 (M.read w);
  match M.write_field w ~index:3 ~width:3 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range field accepted natively"

(* Single-domain lock/unlock works and is fast enough to time. *)
let test_uncontended_smoke () =
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params 4 in
      if A.supports p then begin
        let ns = Cfc_native.Native_harness.uncontended_ns ~iters:1000 alg p in
        check_bool (A.name ^ " positive time") true (ns > 0.)
      end)
    Registry.all

(* Real parallelism: 2-4 domains, no lost updates in the critical
   section for any algorithm. *)
let test_contended_exclusion () =
  let domains = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params domains in
      if A.supports p then begin
        let _ns, ok =
          Cfc_native.Native_harness.contended ~iters:2_000 ~domains alg p
        in
        check_bool (A.name ^ " no lost updates") true ok
      end)
    Registry.all

(* Naming on domains: unique names every time. *)
let test_native_naming () =
  List.iter
    (fun alg ->
      let (module A : Cfc_naming.Naming_intf.ALG) = alg in
      List.iter
        (fun n ->
          if A.supports ~n then begin
            let _ns, ok =
              Cfc_native.Native_harness.naming_ns ~repeats:20 alg ~n
            in
            check_bool (Printf.sprintf "%s n=%d unique" A.name n) true ok
          end)
        [ 4; 16 ])
    Cfc_naming.Registry.all

(* The shape result that motivates the paper: on this machine, the
   uncontended latency of the fast algorithm beats the bakery's by a
   growing margin as n grows. *)
let test_fast_beats_bakery_shape () =
  let fast_small =
    Cfc_native.Native_harness.uncontended_ns ~iters:5_000
      Registry.lamport_fast (Mutex_intf.params 4)
  and fast_big =
    Cfc_native.Native_harness.uncontended_ns ~iters:5_000
      Registry.lamport_fast (Mutex_intf.params 256)
  and bakery_big =
    Cfc_native.Native_harness.uncontended_ns ~iters:5_000 Registry.bakery
      (Mutex_intf.params 256)
  in
  (* Lamport is O(1) in n: allow 4x jitter.  Bakery at n=256 does ~770
     accesses vs Lamport's 7: demand at least a 5x gap (very lax; it is
     typically 50-100x). *)
  check_bool "lamport flat in n" true (fast_big < 4. *. fast_small +. 100.);
  check_bool "bakery much slower at n=256" true (bakery_big > 5. *. fast_big)

(* ------------------------------------------------------------------ *)
(* Instrumented memory, latency histograms, lock service               *)
(* ------------------------------------------------------------------ *)

(* The simulated twin of a solo lock-service run: the instrumented
   native counters must reproduce its trace-computed numbers exactly. *)
let sim_solo_counters (module A : Mutex_intf.ALG) ~rounds ~cs_len =
  let open Cfc_runtime in
  let p = Mutex_intf.params 2 in
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let scratch = M.alloc ~name:"svc.scratch" ~width:8 ~init:0 () in
  let proc0 () =
    for _ = 1 to rounds do
      L.lock inst ~me:0;
      for k = 1 to cs_len do
        M.write scratch (k land 255)
      done;
      L.unlock inst ~me:0
    done
  in
  let out =
    Runner.run ~memory ~pick:(Schedule.solo 0) [| proc0; (fun () -> ()) |]
  in
  let s =
    (Cfc_core.Measures.per_process_samples out.Runner.trace ~nprocs:2).(0)
  in
  let remote =
    Cfc_core.Measures.remote_accesses out.Runner.trace ~nprocs:2
  in
  (s.Cfc_core.Measures.steps, s.Cfc_core.Measures.read_steps,
   s.Cfc_core.Measures.write_steps, remote.(0))

(* Uncontended, the instrumented counters are not estimates: ops, reads,
   writes and the write-invalidate RMR count must equal the simulated
   solo run's trace measures for every registry algorithm. *)
let test_instr_matches_sim_solo () =
  let rounds = 40 and cs_len = 3 in
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      if A.supports (Mutex_intf.params 2) then begin
        let r =
          Cfc_native.Lock_service.run
            (module A)
            { Cfc_native.Lock_service.domains = 1; rounds; mean_think = 0;
              cs_len; seed = 1; crash_every = 0 }
        in
        let c = r.Cfc_native.Lock_service.counters in
        let steps, reads, writes, rmr =
          sim_solo_counters (module A) ~rounds ~cs_len
        in
        check (A.name ^ " ops = sim steps") steps c.Cfc_native.Instr_mem.ops;
        check (A.name ^ " reads") reads c.Cfc_native.Instr_mem.reads;
        check (A.name ^ " writes") writes c.Cfc_native.Instr_mem.writes;
        check (A.name ^ " rmr = sim remote") rmr c.Cfc_native.Instr_mem.rmr;
        check (A.name ^ " ops split") c.Cfc_native.Instr_mem.ops
          (c.Cfc_native.Instr_mem.reads + c.Cfc_native.Instr_mem.writes);
        check_bool (A.name ^ " exclusion") true
          r.Cfc_native.Lock_service.exclusion_ok
      end)
    Registry.all

(* Counter semantics on hand-driven accesses: the failed CAS is a read,
   bit ops classify by Ops.writes, and the RMR mask behaves like the
   YA93 model (second read local, invalidation makes it remote again). *)
let test_instr_counter_semantics () =
  let t = Cfc_native.Instr_mem.create ~nprocs:2 in
  let module M = (val Cfc_native.Instr_mem.mem t) in
  Cfc_native.Instr_mem.register_worker t ~me:0;
  let r = M.alloc ~width:8 ~init:5 () in
  check "read" 5 (M.read r);
  check "read again" 5 (M.read r);
  M.write r 7;
  check_bool "cas miss" false (M.compare_and_set r ~expected:9 3);
  check_bool "cas hit" true (M.compare_and_set r ~expected:7 3);
  let c = (Cfc_native.Instr_mem.per_domain t).(0) in
  check "ops" 5 c.Cfc_native.Instr_mem.ops;
  (* 2 reads + failed CAS *)
  check "reads" 3 c.Cfc_native.Instr_mem.reads;
  (* write + successful CAS *)
  check "writes" 2 c.Cfc_native.Instr_mem.writes;
  check "cas attempts" 2 c.Cfc_native.Instr_mem.cas_attempts;
  check "cas failures" 1 c.Cfc_native.Instr_mem.cas_failures;
  (* First read remote, second local; own write/CAS keep the copy
     valid: exactly 1 remote reference. *)
  check "rmr" 1 c.Cfc_native.Instr_mem.rmr;
  (* A write by the other worker invalidates worker 0's copy. *)
  Cfc_native.Instr_mem.register_worker t ~me:1;
  M.write r 1;
  Cfc_native.Instr_mem.register_worker t ~me:0;
  check "reread" 1 (M.read r);
  let c0 = (Cfc_native.Instr_mem.per_domain t).(0) in
  check "rmr after invalidation" 2 c0.Cfc_native.Instr_mem.rmr;
  let c1 = (Cfc_native.Instr_mem.per_domain t).(1) in
  check "other worker's write was remote" 1 c1.Cfc_native.Instr_mem.rmr;
  (* Unregistered domains are rejected, not misattributed. *)
  let t2 = Cfc_native.Instr_mem.create ~nprocs:2 in
  let module M2 = (val Cfc_native.Instr_mem.mem t2) in
  let r2 = M2.alloc ~width:4 ~init:0 () in
  match M2.read r2 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unregistered access accepted"

let test_latency_hist () =
  let open Cfc_native.Latency_hist in
  let h = create () in
  check "empty count" 0 (count h);
  check "empty max" 0 (max_ns h);
  check_bool "empty percentile" true (percentile h 0.5 = 0.0);
  for _ = 1 to 1000 do
    record h 100
  done;
  check "count" 1000 (count h);
  check "max" 100 (max_ns h);
  (* Constant distribution: every percentile in the same bucket, within
     a factor sqrt 2 of the true value. *)
  List.iter
    (fun q ->
      let v = percentile h q in
      check_bool
        (Printf.sprintf "p%.0f=%.0f near 100" (100. *. q) v)
        true
        (v >= 100. /. sqrt 2. && v <= 100. *. sqrt 2.))
    [ 0.5; 0.9; 0.99; 1.0 ];
  (* Spread distribution: percentiles are monotone and below max. *)
  let s = create () in
  List.iter (record s) [ 10; 20; 40; 80; 5000; 10_000; 100_000; 1 ];
  let p50 = percentile s 0.5 and p90 = percentile s 0.9 in
  let p99 = percentile s 0.99 in
  check_bool "p50 <= p90" true (p50 <= p90);
  check_bool "p90 <= p99" true (p90 <= p99);
  check_bool "p99 <= max" true (p99 <= float_of_int (max_ns s));
  let m = create () in
  merge_into ~into:m h;
  merge_into ~into:m s;
  check "merged count" 1008 (count m);
  check "merged max" 100_000 (max_ns m);
  check "merged min" 1 (min_ns m)

(* Regression for the percentile envelope: the bucket midpoint is only
   accurate to sqrt 2, so a single-sample histogram used to report
   percentiles off the sample in both directions (midpoint 768 for a
   sample of 1023; the max-clamp alone still allowed undershoot).  Every
   percentile of a single-sample histogram must be the sample, exactly,
   and on any histogram the reported value must stay inside the observed
   [min_ns, max_ns] envelope. *)
let test_latency_hist_percentile_envelope () =
  let open Cfc_native.Latency_hist in
  (* 1023 sits at the very top of bucket 9 (midpoint 768): without the
     min-clamp p100 undershoots; 1025 sits at the very bottom of bucket
     10 (midpoint 1536): without the max-clamp p100 overshoots. *)
  List.iter
    (fun sample ->
      let h = create () in
      record h sample;
      check "single-sample min" sample (min_ns h);
      check "single-sample max" sample (max_ns h);
      List.iter
        (fun q ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "sample %d p%.0f exact" sample (100. *. q))
            (float_of_int sample) (percentile h q))
        [ 0.0; 0.5; 0.99; 1.0 ])
    [ 0; 1; 2; 3; 100; 1023; 1024; 1025; 999_999 ];
  (* Two-point histograms: every percentile within the envelope. *)
  let h = create () in
  record h 1023;
  record h 1025;
  List.iter
    (fun q ->
      let v = percentile h q in
      check_bool
        (Printf.sprintf "p%.0f=%.1f inside [1023, 1025]" (100. *. q) v)
        true
        (v >= 1023. && v <= 1025.))
    [ 0.0; 0.5; 0.9; 1.0 ];
  check "min tracked" 1023 (min_ns h);
  (* Negative samples clamp to 0 and stay representable. *)
  let n = create () in
  record n (-5);
  check "clamped min" 0 (min_ns n);
  Alcotest.(check (float 0.)) "clamped percentile" 0.0 (percentile n 1.0)

(* The off switch is the plain backend: a run without instrumentation
   still measures time and exclusion but reports all-zero counters. *)
let test_lock_service_passthrough () =
  let r =
    Cfc_native.Lock_service.run ~instrument:false Registry.mcs
      { Cfc_native.Lock_service.domains = 1; rounds = 200; mean_think = 0;
        cs_len = 3; seed = 7; crash_every = 0 }
  in
  check "acquisitions" 200 r.Cfc_native.Lock_service.acquisitions;
  check_bool "exclusion" true r.Cfc_native.Lock_service.exclusion_ok;
  check_bool "throughput measured" true
    (r.Cfc_native.Lock_service.throughput > 0.0);
  check "no counters" 0
    r.Cfc_native.Lock_service.counters.Cfc_native.Instr_mem.ops;
  check_bool "rmr/acq zero" true
    (r.Cfc_native.Lock_service.rmr_per_acq = 0.0)

(* Real domains under contention: exclusion witnessed, histogram filled,
   per-domain counters all active. *)
let test_lock_service_contended () =
  let domains = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
  let rounds = 500 in
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      if A.supports (Mutex_intf.params (max 2 domains)) then begin
        let r =
          Cfc_native.Lock_service.run
            (module A)
            { Cfc_native.Lock_service.domains; rounds; mean_think = 5;
              cs_len = 3; seed = 3; crash_every = 0 }
        in
        check (A.name ^ " acquisitions") (domains * rounds)
          r.Cfc_native.Lock_service.acquisitions;
        check_bool (A.name ^ " exclusion held") true
          r.Cfc_native.Lock_service.exclusion_ok;
        check_bool (A.name ^ " latency ordered") true
          (r.Cfc_native.Lock_service.p50_ns
           <= r.Cfc_native.Lock_service.p99_ns
          && r.Cfc_native.Lock_service.p99_ns
             <= float_of_int r.Cfc_native.Lock_service.max_ns);
        (* Every acquisition writes the CS scratch cs_len times, so each
           domain's write counter is at least rounds * cs_len. *)
        check_bool (A.name ^ " ops counted") true
          (r.Cfc_native.Lock_service.counters.Cfc_native.Instr_mem.writes
           >= domains * rounds * 3)
      end)
    Registry.all

(* Crash injection: every recoverable registry lock, solo and contended.
   Solo the recovery path is a fixed access sequence and the crash
   evicts the domain's cache bits, so the instrumented per-recovery RMR
   must equal the rec_registers_held closed form exactly — the native
   end of the static = predicted = measured chain.  Under contention it
   may only grow conservatively, never violate exclusion. *)
let test_lock_service_crash_injection () =
  List.iter
    (fun ((module A : Mutex_intf.ALG) as alg) ->
      let forms = Option.get (A.recovery (Mutex_intf.params 2)) in
      let r =
        Cfc_native.Lock_service.run alg
          { Cfc_native.Lock_service.domains = 1; rounds = 400;
            mean_think = 0; cs_len = 2; seed = 9; crash_every = 4 }
      in
      check_bool (A.name ^ " solo exclusion under crashes") true
        r.Cfc_native.Lock_service.exclusion_ok;
      check_bool (A.name ^ " recoveries injected") true
        (r.Cfc_native.Lock_service.recoveries > 0);
      check
        (A.name ^ " solo recovery rmr max = closed form")
        forms.Mutex_intf.rec_registers_held
        r.Cfc_native.Lock_service.recovery_rmr_max;
      check_bool
        (A.name ^ " solo recovery rmr mean = closed form")
        true
        (r.Cfc_native.Lock_service.recovery_rmr_mean
        = float_of_int forms.Mutex_intf.rec_registers_held);
      let domains = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
      let rc =
        Cfc_native.Lock_service.run alg
          { Cfc_native.Lock_service.domains; rounds = 400; mean_think = 2;
            cs_len = 2; seed = 9; crash_every = 4 }
      in
      check_bool (A.name ^ " contended exclusion under crashes") true
        rc.Cfc_native.Lock_service.exclusion_ok;
      check_bool (A.name ^ " contended recoveries injected") true
        (rc.Cfc_native.Lock_service.recoveries > 0))
    Registry.recoverable;
  (* A non-recoverable lock must be rejected, not deadlocked. *)
  check_bool "crash injection rejected for mcs" true
    (match
       Cfc_native.Lock_service.run Registry.mcs
         { Cfc_native.Lock_service.domains = 1; rounds = 10; mean_think = 0;
           cs_len = 1; seed = 1; crash_every = 2 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The recoverable queue's packed-word cap must fail identically on the
   native arena: the check lives in the algorithm, so a direct [create]
   at n = 16 names "recoverable-queue" and the n <= 15 cap instead of
   surfacing a bare Native_mem width error (the sim twin of this test is
   in test_mutex). *)
let test_rec_queue_cap_native () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i =
      i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
    in
    go 0
  in
  let (module Q : Mutex_intf.ALG) =
    Option.get (Registry.find "recoverable-queue")
  in
  let module M = (val Cfc_native.Native_mem.mem ()) in
  let module L = Q.Make (M) in
  ignore (L.create (Mutex_intf.params 15));
  match L.create (Mutex_intf.params 16) with
  | exception Invalid_argument msg ->
      check_bool "error names the algorithm" true
        (contains msg "recoverable-queue");
      check_bool "error states the cap" true (contains msg "n <= 15")
  | _ -> Alcotest.fail "create past the packing cap was accepted natively"

(* Sharded KV smoke: real domains against the bucketed store, mix A
   (update-heavy, exercises the lost-update witness) and mix E
   (scan-heavy, exercises the torn-snapshot witness).  Both witnesses
   must come out clean, every op must land on exactly one shard, and
   the per-shard kind counts must re-sum to the totals. *)
let test_kv_service_smoke () =
  let domains = 2 in
  let ops = 300 in
  List.iter
    (fun (mix_name, mix) ->
      let r =
        Cfc_native.Kv_service.run Registry.mcs
          { Cfc_native.Kv_service.domains; buckets = 8; keys = 1 lsl 12;
            ops; mean_think = 2; theta = 0.99; mix; seed = 11 }
      in
      let open Cfc_native.Kv_service in
      check (mix_name ^ " total ops") (domains * ops) r.total_ops;
      check_bool (mix_name ^ " exclusion") true r.exclusion_ok;
      check (mix_name ^ " lost updates") 0 r.lost_updates;
      check (mix_name ^ " torn scans") 0 r.torn_scans;
      check (mix_name ^ " shards") 8 (Array.length r.shards);
      let sum f = Array.fold_left (fun a s -> a + f s) 0 r.shards in
      check (mix_name ^ " shard ops resum") r.total_ops
        (sum (fun s -> s.ks_ops));
      check (mix_name ^ " shard kinds resum") r.total_ops
        (sum (fun s -> s.ks_reads + s.ks_updates + s.ks_scans + s.ks_rmws));
      check_bool (mix_name ^ " latency ordered") true
        (r.p50_ns <= r.p99_ns && r.p99_ns <= float_of_int r.max_ns);
      check_bool (mix_name ^ " counters active") true
        (r.counters.Cfc_native.Instr_mem.ops > 0);
      check_bool (mix_name ^ " hot share sane") true
        (r.hot_share > 0.0 && r.hot_share <= 1.0))
    [ ("mix A", Cfc_workload.Ycsb.mix_a); ("mix E", Cfc_workload.Ycsb.mix_e) ];
  (* Uninstrumented path: witnesses still run, counters stay zero. *)
  let r =
    Cfc_native.Kv_service.run ~instrument:false Registry.mcs
      { Cfc_native.Kv_service.domains; buckets = 4; keys = 1 lsl 10;
        ops = 200; mean_think = 0; theta = 0.0;
        mix = Cfc_workload.Ycsb.mix_a; seed = 5 }
  in
  check_bool "passthrough exclusion" true
    r.Cfc_native.Kv_service.exclusion_ok;
  check "passthrough counters" 0
    r.Cfc_native.Kv_service.counters.Cfc_native.Instr_mem.ops;
  check_bool "passthrough rmr zero" true
    (r.Cfc_native.Kv_service.rmr_per_op = 0.0)

let () =
  Alcotest.run "cfc_native"
    [ ( "semantics",
        [ Alcotest.test_case "register semantics" `Quick
            test_native_register_semantics;
          Alcotest.test_case "word rmw + fields" `Quick
            test_native_word_rmw;
          Alcotest.test_case "rec-queue packing cap (native)" `Quick
            test_rec_queue_cap_native ] );
      ( "parallel",
        [ Alcotest.test_case "uncontended smoke" `Quick
            test_uncontended_smoke;
          Alcotest.test_case "contended exclusion" `Slow
            test_contended_exclusion;
          Alcotest.test_case "native naming" `Slow test_native_naming ] );
      ( "shape",
        [ Alcotest.test_case "fast beats bakery" `Slow
            test_fast_beats_bakery_shape ] );
      ( "lock-service",
        [ Alcotest.test_case "instrumented rmr equals sim solo" `Quick
            test_instr_matches_sim_solo;
          Alcotest.test_case "counter semantics" `Quick
            test_instr_counter_semantics;
          Alcotest.test_case "latency histogram" `Quick test_latency_hist;
          Alcotest.test_case "percentile envelope" `Quick
            test_latency_hist_percentile_envelope;
          Alcotest.test_case "passthrough when off" `Quick
            test_lock_service_passthrough;
          Alcotest.test_case "contended service" `Slow
            test_lock_service_contended;
          Alcotest.test_case "crash injection (recoverable locks)" `Slow
            test_lock_service_crash_injection ] );
      ( "kv-service",
        [ Alcotest.test_case "sharded smoke + witnesses" `Slow
            test_kv_service_smoke ] ) ]
