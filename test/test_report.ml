(* Tests for the table-report layer: the regenerated paper tables must
   have the right shape and internally consistent numbers (measured
   within the printed bounds).  These are the same code paths the bench
   executable drives, so the bench output stays covered by the test
   suite. *)

open Cfc_base

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

let content_rows s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.length l > 0 && l.[0] = '|')

let test_mutex_symbolic_shape () =
  let s = Texttab.render (Cfc_core.Report.mutex_table_symbolic ()) in
  check "4 measures + header" 5 (List.length (content_rows s));
  List.iter
    (fun needle -> check_bool ("mentions " ^ needle) true (contains s needle))
    [ "Thm 1"; "Thm 2"; "Thm 3"; "Kes82"; "AT92"; "log log n" ]

let test_mutex_numeric_consistent () =
  let n = 64 and l = 3 in
  let s = Texttab.render (Cfc_core.Report.mutex_table ~n ~l) in
  check "4 measures + header" 5 (List.length (content_rows s));
  (* The tree's measured contention-free step count appears and equals
     7 * depth with capacity 7 nodes: depth 3 for n=64. *)
  check_bool "measured steps 21" true (contains s "| 21 ");
  check_bool "paper upper 14" true (contains s "| 14 ");
  check_bool "ours column 21" true (contains s "ours")

let test_naming_symbolic_shape () =
  let s = Texttab.render (Cfc_core.Report.naming_table_symbolic ()) in
  check "4 measures + header" 5 (List.length (content_rows s));
  List.iter
    (fun needle -> check_bool ("mentions " ^ needle) true (contains s needle))
    [ "tas"; "read+tas"; "read+tas+tar"; "taf"; "rmw"; "n-1"; "log n" ]

(* The numeric naming table: measured contention-free cells never beat
   the theoretical tight bound (they are lower bounds per Theorems 5/7),
   and for the taf/rmw columns they match exactly. *)
let test_naming_numeric_consistent () =
  let n = 16 in
  let s = Texttab.render (Cfc_core.Report.naming_table ~n) in
  check "4 measures + header" 5 (List.length (content_rows s));
  (* taf column: log n = 4 on all four measures, measured exactly 4. *)
  check_bool "taf tight" true (contains s "4 / 4");
  (* tas column: n-1 = 15 on contention-free measures. *)
  check_bool "tas tight" true (contains s "15 / 15")

let test_detection_table_consistent () =
  let s =
    Texttab.render (Cfc_core.Report.detection_table ~ns:[ 64 ] ~ls:[ 2; 6 ])
  in
  (* n=64: l=2 -> d=3, wc <= 12; l=6 -> d=1, wc <= 4. *)
  check "rows" 3 (List.length (content_rows s));
  check_bool "depth 3 appears" true (contains s "| 3 ");
  check_bool "depth 1 appears" true (contains s "| 1 ")

let test_unbounded_growth () =
  let s = Texttab.render (Cfc_core.Report.unbounded_table ~spins:[ 10; 200 ]) in
  check "two rows" 3 (List.length (content_rows s));
  (* the 200-spin row must show at least 200 entry steps *)
  let has_big =
    content_rows s
    |> List.exists (fun row ->
           contains row "200 "
           &&
           match String.split_on_char '|' row with
           | [ _; _; steps; _ ] -> int_of_string (String.trim steps) >= 200
           | _ -> false)
  in
  check_bool "growth visible" true has_big

let test_thm_sweep_shape () =
  let s =
    Texttab.render (Cfc_core.Report.thm_sweep ~ns:[ 16; 256 ] ~ls:[ 2; 4 ])
  in
  (* header + 2x2 rows *)
  check "rows" 5 (List.length (content_rows s))

let () =
  Alcotest.run "cfc_report"
    [ ( "tables",
        [ Alcotest.test_case "mutex symbolic" `Quick test_mutex_symbolic_shape;
          Alcotest.test_case "mutex numeric" `Quick
            test_mutex_numeric_consistent;
          Alcotest.test_case "naming symbolic" `Quick
            test_naming_symbolic_shape;
          Alcotest.test_case "naming numeric" `Quick
            test_naming_numeric_consistent;
          Alcotest.test_case "detection" `Quick test_detection_table_consistent;
          Alcotest.test_case "unbounded growth" `Quick test_unbounded_growth;
          Alcotest.test_case "sweep shape" `Quick test_thm_sweep_shape ] ) ]
