(** The §4 backoff experiment rendered as a table — shared by the bench
    harness and the [cfc-tables backoff] subcommand. *)

open Cfc_base
open Cfc_mutex

let backoff_table ~n ~rounds ~thinks ~seed ~algs =
  let t =
    Texttab.create
      ~header:[ "algorithm"; "mean think"; "observed contention";
                "winner entry mean"; "winner entry max"; "cf cost";
                "total traffic" ]
  in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      List.iter
        (fun think ->
          let r =
            Workload.run_mutex alg
              { Workload.n; rounds; mean_think = think; cs_len = 3; seed }
          in
          Texttab.add_row t
            [ A.name; string_of_int think;
              Printf.sprintf "%.2f" r.Workload.observed_contention;
              Printf.sprintf "%.2f" r.Workload.entry_steps_mean;
              string_of_int r.Workload.entry_steps_max;
              string_of_int r.Workload.cf_steps;
              string_of_int r.Workload.total_steps ])
        thinks;
      Texttab.add_sep t)
    algs;
  t
