(** The §4 backoff experiment rendered as a table — shared by the bench
    harness and the [cfc-tables backoff] subcommand. *)

open Cfc_base
open Cfc_mutex
open Cfc_core

let backoff_table ~n ~rounds ~thinks ~seed ~algs =
  let t =
    Texttab.create
      ~header:[ "algorithm"; "mean think"; "observed contention";
                "winner entry mean"; "winner entry max"; "cf cost";
                "total traffic" ]
  in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      List.iter
        (fun think ->
          let r =
            Workload.run_mutex alg
              { Workload.n; rounds; mean_think = think; cs_len = 3; seed }
          in
          Texttab.add_row t
            [ A.name; string_of_int think;
              Printf.sprintf "%.2f" r.Workload.observed_contention;
              Printf.sprintf "%.2f" r.Workload.entry_steps_mean;
              string_of_int r.Workload.entry_steps_max;
              string_of_int r.Workload.cf_steps;
              string_of_int r.Workload.total_steps ])
        thinks;
      Texttab.add_sep t)
    algs;
  t

(* ------------------------------------------------------------------ *)
(* EXP-SCALE rows: shared by bench/scale_bench and [cfc-tables scale]. *)

type scale_cf_row = {
  scf_alg : string;
  scf_n : int;
  scf_sample : Measures.sample;
  scf_predicted_steps : int option;
  scf_predicted_registers : int option;
  scf_ok : bool;
  scf_wall_s : float;
}

let scale_cf_row alg ~n =
  let (module A : Mutex_intf.ALG) = alg in
  let p = Mutex_intf.params n in
  let t0 = Sys.time () in (* lint-allow: wall-clock — timing the run itself *)
  let cf = Mutex_harness.contention_free_streaming alg p in
  let wall = Sys.time () -. t0 in (* lint-allow: wall-clock — timing the run itself *)
  let s = cf.Mutex_harness.max in
  let ps = A.predicted_cf_steps p and pr = A.predicted_cf_registers p in
  let ok_of pred v = match pred with None -> true | Some x -> x = v in
  {
    scf_alg = A.name;
    scf_n = n;
    scf_sample = s;
    scf_predicted_steps = ps;
    scf_predicted_registers = pr;
    scf_ok = ok_of ps s.Measures.steps && ok_of pr s.Measures.registers;
    scf_wall_s = wall;
  }

type scale_chaos_row = {
  sch_alg : string;
  sch_n : int;
  sch_pairs : int;
  sch_result : Workload.scale_result;
  sch_wall_s : float;
}

let scale_chaos_row ?max_turns alg (sc : Workload.scale_config) =
  let (module A : Mutex_intf.ALG) = alg in
  let t0 = Sys.time () in (* lint-allow: wall-clock — timing the run itself *)
  let r = Workload.run_mutex_scale ?max_turns alg sc in
  let wall = Sys.time () -. t0 in (* lint-allow: wall-clock — timing the run itself *)
  {
    sch_alg = A.name;
    sch_n = sc.Workload.sc_n;
    sch_pairs = sc.Workload.sc_chaos_pairs;
    sch_result = r;
    sch_wall_s = wall;
  }

let opt_pred = function None -> "-" | Some v -> string_of_int v

let scale_cf_table rows =
  let t =
    Texttab.create
      ~header:[ "algorithm"; "n"; "cf steps"; "predicted"; "cf registers";
                "predicted"; "ok"; "wall s" ]
  in
  List.iter
    (fun r ->
      Texttab.add_row t
        [ r.scf_alg; string_of_int r.scf_n;
          string_of_int r.scf_sample.Measures.steps;
          opt_pred r.scf_predicted_steps;
          string_of_int r.scf_sample.Measures.registers;
          opt_pred r.scf_predicted_registers;
          (if r.scf_ok then "ok" else "MISMATCH");
          Printf.sprintf "%.3f" r.scf_wall_s ])
    rows;
  t

let scale_chaos_table rows =
  let t =
    Texttab.create
      ~header:[ "algorithm"; "n"; "pairs"; "acquisitions"; "crashes";
                "recoveries"; "entry max"; "rec steps max"; "rec rmr max";
                "events"; "spawned"; "live peak"; "wall s" ]
  in
  List.iter
    (fun row ->
      let r = row.sch_result in
      Texttab.add_row t
        [ row.sch_alg; string_of_int row.sch_n; string_of_int row.sch_pairs;
          string_of_int r.Workload.sr_acquisitions;
          string_of_int r.Workload.sr_crashes;
          string_of_int r.Workload.sr_recoveries;
          string_of_int r.Workload.sr_entry_steps_max;
          string_of_int r.Workload.sr_recovery_steps_max;
          string_of_int r.Workload.sr_recovery_rmr_max;
          string_of_int r.Workload.sr_events;
          string_of_int r.Workload.sr_spawned;
          string_of_int r.Workload.sr_live_peak;
          Printf.sprintf "%.3f" row.sch_wall_s ])
    rows;
  t

(* JSON rows, native_bench style: hand-rolled Printf, predictions as
   null when no closed form is registered, wall clock carried as a note
   column (bench_diff ignores it). *)

let json_opt = function None -> "null" | Some v -> string_of_int v

let json_of_scale_cf_row r =
  Printf.sprintf
    "    {\"name\": %S, \"n\": %d, \"cf_steps\": %d, \"cf_registers\": %d, \
     \"cf_reads\": %d, \"cf_writes\": %d, \"predicted_steps\": %s, \
     \"predicted_registers\": %s, \"ok\": %b, \"wall_s\": %.4f}"
    r.scf_alg r.scf_n r.scf_sample.Measures.steps
    r.scf_sample.Measures.registers r.scf_sample.Measures.read_steps
    r.scf_sample.Measures.write_steps
    (json_opt r.scf_predicted_steps)
    (json_opt r.scf_predicted_registers)
    r.scf_ok r.scf_wall_s

let json_of_scale_chaos_row row =
  let r = row.sch_result in
  Printf.sprintf
    "    {\"name\": %S, \"n\": %d, \"pairs\": %d, \"acquisitions\": %d, \
     \"crashes\": %d, \"recoveries\": %d, \"entry_steps_max\": %d, \
     \"entry_steps_mean\": %.4f, \"recovery_steps_max\": %d, \
     \"recovery_rmr_max\": %d, \"events\": %d, \"turns\": %d, \
     \"total_steps\": %d, \"spawned\": %d, \"live_peak\": %d, \
     \"wall_s\": %.4f}"
    row.sch_alg row.sch_n row.sch_pairs r.Workload.sr_acquisitions
    r.Workload.sr_crashes r.Workload.sr_recoveries
    r.Workload.sr_entry_steps_max r.Workload.sr_entry_steps_mean
    r.Workload.sr_recovery_steps_max r.Workload.sr_recovery_rmr_max
    r.Workload.sr_events r.Workload.sr_turns r.Workload.sr_total_steps
    r.Workload.sr_spawned r.Workload.sr_live_peak row.sch_wall_s
