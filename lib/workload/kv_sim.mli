(** Sharded KV service on the event wheel: a bucketed store whose every
    bucket is guarded by its own instance of one registry lock, driven by
    {!Ycsb} streams at thousands of simulated clients — the deterministic
    twin of [Cfc_native.Kv_service].

    Complexity numbers stay honest under multi-lock traffic via
    {e per-shard projection}: a side-channel records which bucket each
    client currently targets, and the wheel sink routes the client's
    events to that bucket's own [Measures.Online] fold and
    [Spec.Monitor.mutual_exclusion] — so each shard's §2.2 entry windows
    are computed by {!Cfc_core.Measures} exactly as in a single-lock run,
    and exclusion is monitored on every bucket (DESIGN.md §2).

    Two safety witnesses ride along inside the critical sections: a
    per-bucket version register bumped by a {e non-atomic}
    read-then-write per mutating op (a shortfall of the final count is a
    lost update ⇔ the bucket lock failed), and a version re-read around
    every scan (a mid-scan change is a torn snapshot). *)

open Cfc_mutex

type kv_config = {
  kc_clients : int;  (** simulated clients (≥ 2; the lock's [n]) *)
  kc_buckets : int;  (** shards, each with its own lock instance *)
  kc_keys : int;  (** key space; key [k] ↦ bucket [k mod buckets] *)
  kc_ops : int;  (** operations per client *)
  kc_mean_think : int;  (** geometric think time in virtual ticks *)
  kc_theta : float;  (** Zipf skew: 0 uniform, 0.99 YCSB-zipfian *)
  kc_mix : Ycsb.mix;
  kc_seed : int;
}

val kv_default : kv_config

type shard_stat = {
  ss_ops : int;
  ss_reads : int;
  ss_updates : int;
  ss_scans : int;
  ss_rmws : int;
  ss_acquisitions : int;  (** completed §2.2 entry windows on this shard *)
  ss_entry_steps_max : int;
  ss_entry_steps_mean : float;
  ss_events : int;  (** events routed to this shard's fold *)
}

type kv_result = {
  kr_ops : int;
  kr_acquisitions : int;
  kr_lost_updates : int;  (** version-witness shortfall; 0 iff no bucket
                              lock lost a mutation *)
  kr_torn_scans : int;  (** scans that saw the bucket version move *)
  kr_hot_share : float;  (** hottest shard's fraction of all ops *)
  kr_entry_steps_max : int;
  kr_turns : int;
  kr_total_steps : int;
  kr_spawned : int;
  kr_live_peak : int;
  kr_shards : shard_stat array;
}

val run :
  ?max_turns:int -> (module Mutex_intf.ALG) -> kv_config -> kv_result
(** One deterministic run: same config + seed ⇒ identical result, field
    for field (clients draw their think times via
    {!Workload.think_stream} and their operations via {!Ycsb.stream},
    both split-seeded per client).  Raises [Invalid_argument] on an
    unsupported parameter set, a process error, or a mutual-exclusion
    violation on any bucket; raises {!Workload.Stalled} if the turn
    budget (default [20_000 · clients · ops]) is exhausted. *)
