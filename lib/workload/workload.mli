(** Workload generator over the simulator: repeated critical-section
    cycles with tunable think time (remainder-section delay) and
    critical-section length, driving the contention level from "rare"
    (the well-designed-system regime of the paper's introduction) to
    saturation.

    The headline §4 metric is the cost of the {e winning} process's entry
    measured from the moment the previous critical section was released —
    exactly the paper's worst-case entry fragment — which the discussion
    section claims stays near the contention-free cost when backoff is
    used, at any contention level. *)

open Cfc_mutex

type config = {
  n : int;  (** processes *)
  rounds : int;  (** critical-section cycles per process; [0] is legal and
                     yields an empty, NaN-free result *)
  mean_think : int;
      (** average remainder-section delay in scheduler turns (geometric,
          seeded); 0 = saturation, large = rare contention *)
  cs_len : int;  (** shared accesses performed inside the critical section *)
  seed : int;
}

val default : config

val think_stream : seed:int -> pid:int -> (mean:int -> int)
(** Per-process deterministic think-time stream: successive calls return
    independent draws from a geometric distribution on [{0, 1, 2, …}]
    with expectation [mean] ({!Cfc_base.Ixmath.geometric} over a seeded
    [Random.State]), so delays have the memoryless shape the
    "well-designed system" regime assumes — most waits short, a long
    tail, mean exactly [mean].  [mean = 0] always returns 0.

    The per-pid state is [Random.State.make [| Ixmath.mix_seed seed pid |]]
    (split-seed mixing, not the raw [(seed, pid)] pair, whose adjacent-pid
    streams are correlated); the native {!Cfc_native.Lock_service} derives
    its per-worker streams the same way, so the two backends draw
    identical sequences for identical [(seed, pid)]. *)

exception Stalled of { alg : string; stopped : Cfc_runtime.Runner.stopped;
                       acquisitions : int; max_steps : int }
(** Raised by {!run_mutex} when the run exhausts its scheduler-step
    budget (or the picker gives up) before every process finishes its
    rounds: the statistics of a truncated run silently under-report
    acquisitions, so they are never returned. *)

type result = {
  acquisitions : int;  (** completed entries observed *)
  entry_steps_mean : float;
      (** mean §2.2 entry-fragment step count (winner's cost since
          release) *)
  entry_steps_max : int;
  entry_registers_max : int;
  cf_steps : int;  (** the algorithm's solo entry+exit cost, for reference *)
  observed_contention : float;
      (** mean number of processes in their entry code at entry events —
          the run's actual contention level *)
  total_steps : int;
}

val run_mutex : ?max_steps:int -> Registry.alg -> config -> result
(** Runs the workload under round-robin scheduling (every process makes
    progress, delays come from think time) and extracts the metrics.
    Raises on a mutual exclusion violation, and {!Stalled} if the run
    does not reach quiescence within [max_steps] scheduler steps
    (default 10,000,000). *)

val contention_sweep :
  Registry.alg -> n:int -> rounds:int -> thinks:int list -> seed:int ->
  (int * result) list
(** [run_mutex] across think times: the EXP-BACKOFF series. *)

(** {2 The O(active-set) scale rig}

    {!run_mutex} materialises a full trace and steps all [n] processes
    round-robin — right for small [n], impossible for [n = 10^5].  The
    scale rig drives the same think→lock→CS→unlock cycle through the
    event wheel ({!Cfc_runtime.Wheel}) with streaming sinks
    ([Measures.Online] + [Spec.Monitor]), so cost follows the active
    set: sleeping processes are parked on the calendar queue, nothing
    is ever recorded, and the chaos variant is a
    Jepsen-in-one-process rig — thousands of crash-recovering clients
    against one recoverable lock, fully deterministic in the seed. *)

type scale_config = {
  sc_n : int;
  sc_rounds : int;  (** cycles per client per incarnation *)
  sc_mean_think : int;
      (** mean of the geometric think time in virtual ticks; large
          values (≳ 4n) keep the active set — and hence cost — small *)
  sc_cs_len : int;
  sc_seed : int;
  sc_chaos_pairs : int;
      (** crash–recovery pairs injected from {!Cfc_runtime.Fault.chaos};
          0 = crash-free.  Requires a recoverable lock when positive. *)
}

val scale_default : scale_config

type scale_result = {
  sr_acquisitions : int;  (** completed §2.2 entry windows *)
  sr_crashes : int;
  sr_recoveries : int;
  sr_entry_steps_max : int;  (** max §2.2 entry-window step count *)
  sr_entry_steps_mean : float;
  sr_recovery_steps_max : int;  (** max completed recovery-path steps *)
  sr_recovery_rmr_max : int;  (** max cold-cache recovery RMR *)
  sr_events : int;  (** events streamed (never materialised) *)
  sr_turns : int;  (** wheel turns consumed *)
  sr_total_steps : int;  (** shared accesses across all processes *)
  sr_spawned : int;  (** process records materialised *)
  sr_live_peak : int;  (** calendar-queue high-water mark *)
}

val run_mutex_scale :
  ?max_turns:int -> Registry.alg -> scale_config -> scale_result
(** One deterministic scale run: same config + seed ⇒ identical result,
    field for field.  Raises [Invalid_argument] on an unsupported
    parameter set, on chaos over a non-recoverable lock, on a mutual
    exclusion violation (streamed {!Spec.Monitor}; the recoverable
    monitor under chaos), or a process error; raises {!Stalled} if the
    turn budget (default [20_000 · n · rounds]) is exhausted. *)
