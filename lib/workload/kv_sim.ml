open Cfc_runtime
open Cfc_mutex
open Cfc_core

type kv_config = {
  kc_clients : int;
  kc_buckets : int;
  kc_keys : int;
  kc_ops : int;
  kc_mean_think : int;
  kc_theta : float;
  kc_mix : Ycsb.mix;
  kc_seed : int;
}

let kv_default =
  { kc_clients = 64; kc_buckets = 16; kc_keys = 4096; kc_ops = 8;
    kc_mean_think = 256; kc_theta = 0.99; kc_mix = Ycsb.mix_a; kc_seed = 42 }

type shard_stat = {
  ss_ops : int;
  ss_reads : int;
  ss_updates : int;
  ss_scans : int;
  ss_rmws : int;
  ss_acquisitions : int;
  ss_entry_steps_max : int;
  ss_entry_steps_mean : float;
  ss_events : int;
}

type kv_result = {
  kr_ops : int;
  kr_acquisitions : int;
  kr_lost_updates : int;
  kr_torn_scans : int;
  kr_hot_share : float;
  kr_entry_steps_max : int;
  kr_turns : int;
  kr_total_steps : int;
  kr_spawned : int;
  kr_live_peak : int;
  kr_shards : shard_stat array;
}

(* Values are 32-bit payloads; version counters share the width.  Both
   are far below the op counts any run here reaches. *)
let value_width = 32
let value_mask = (1 lsl value_width) - 1

let run ?max_turns (module A : Mutex_intf.ALG) (kc : kv_config) =
  if kc.kc_clients < 2 then invalid_arg "Kv_sim.run: clients < 2";
  if kc.kc_buckets < 1 then invalid_arg "Kv_sim.run: buckets < 1";
  if kc.kc_keys < 1 then invalid_arg "Kv_sim.run: keys < 1";
  if kc.kc_ops < 0 then invalid_arg "Kv_sim.run: ops < 0";
  let n = kc.kc_clients and nb = kc.kc_buckets in
  let p = Mutex_intf.params n in
  if not (A.supports p) then invalid_arg (A.name ^ ": unsupported");
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  (* One lock instance per bucket, all over the same arena: a client's
     steps on bucket b's lock are ordinary counted accesses, and the
     per-shard projection below decides which shard's fold sees them. *)
  let locks = Array.init nb (fun _ -> L.create p) in
  (* Interleaved key layout: key k lives in bucket [k mod nb], slot
     [k / nb] — Zipf head ranks spread across buckets with geometrically
     decreasing weight, so one run exercises shards from hot to cold.
     Scans stay inside their bucket (slots wrap), so a scan holds exactly
     one lock; cross-bucket scans would need multi-lock ordering the
     paper's model says nothing about (DESIGN.md §2). *)
  let nslots = (kc.kc_keys + nb - 1) / nb in
  let stores =
    Array.init nb (fun b ->
        M.alloc_array ~name:(Printf.sprintf "kv.store.b%d" b)
          ~width:value_width ~init:0 nslots)
  in
  let versions = M.alloc_array ~name:"kv.ver" ~width:value_width ~init:0 nb in
  (* Per-shard projection: [target.(pid)] is the bucket pid's current
     operation addresses, written by the client thunk before its
     [Trying] region change; the sink routes every event of pid to that
     bucket's own streaming fold and exclusion monitor.  Each bucket
     thus observes complete Trying→Critical→Exiting→Remainder cycles of
     exactly the clients contending for it, and its §2.2 entry windows
     are computed by Cfc_core.Measures like any single-lock run's. *)
  let target = Array.make n 0 in
  let online = Array.init nb (fun _ -> Measures.Online.create ~nprocs:n) in
  let monitors = Array.init nb (fun _ -> Spec.Monitor.mutual_exclusion ()) in
  let sink ~pid body =
    let b = target.(pid) in
    Measures.Online.feed online.(b) ~pid body;
    Spec.Monitor.feed monitors.(b) ~pid body
  in
  (* Bookkeeping outside the measured arena: op tallies and witness
     expectations (client-thunk state, not shared-memory traffic). *)
  let ops_by_kind = Array.make_matrix nb 4 0 in
  let expected_bumps = Array.make nb 0 in
  let torn_scans = ref 0 in
  let spawn me =
    let think = Workload.think_stream ~seed:kc.kc_seed ~pid:me in
    let ops = Ycsb.stream ~seed:kc.kc_seed ~client:me ~nkeys:kc.kc_keys
        ~theta:kc.kc_theta kc.kc_mix
    in
    fun () ->
      for i = 1 to kc.kc_ops do
        let op = Ycsb.next ops in
        let key = Ycsb.key_of op in
        let b = key mod nb and slot = key / nb in
        target.(me) <- b;
        let d = think ~mean:kc.kc_mean_think in
        if d > 0 then Proc.sleep d;
        Proc.region Event.Trying;
        L.lock locks.(b) ~me;
        Proc.region Event.Critical;
        (* The version counter is the lost-update witness: a non-atomic
           read-then-write per mutating op, safe exactly when the bucket
           lock excludes.  The scan's version re-read is the torn-scan
           witness: a mid-scan change means another client mutated the
           bucket while the scan held its lock. *)
        (match op with
        | Ycsb.Read _ ->
          ops_by_kind.(b).(0) <- ops_by_kind.(b).(0) + 1;
          ignore (M.read stores.(b).(slot))
        | Ycsb.Update _ ->
          ops_by_kind.(b).(1) <- ops_by_kind.(b).(1) + 1;
          expected_bumps.(b) <- expected_bumps.(b) + 1;
          M.write stores.(b).(slot) (((me lsl 16) lor (i land 0xffff))
                                     land value_mask);
          let v = M.read versions.(b) in
          M.write versions.(b) ((v + 1) land value_mask)
        | Ycsb.Scan (_, len) ->
          ops_by_kind.(b).(2) <- ops_by_kind.(b).(2) + 1;
          let v0 = M.read versions.(b) in
          for j = 0 to len - 1 do
            ignore (M.read stores.(b).((slot + j) mod nslots))
          done;
          if M.read versions.(b) <> v0 then incr torn_scans
        | Ycsb.Rmw _ ->
          ops_by_kind.(b).(3) <- ops_by_kind.(b).(3) + 1;
          expected_bumps.(b) <- expected_bumps.(b) + 1;
          let v = M.read stores.(b).(slot) in
          M.write stores.(b).(slot) ((v + 1) land value_mask);
          let v = M.read versions.(b) in
          M.write versions.(b) ((v + 1) land value_mask));
        Proc.region Event.Exiting;
        L.unlock locks.(b) ~me;
        Proc.region Event.Remainder
      done
  in
  let wheel = Wheel.create ~sink ~nprocs:n ~spawn () in
  for pid = 0 to n - 1 do
    Wheel.wake wheel pid
  done;
  let max_turns =
    match max_turns with
    | Some m -> m
    | None -> 20_000 * n * max 1 kc.kc_ops
  in
  let stopped = Wheel.run ~max_turns wheel in
  (match Wheel.first_error wheel with
  | None -> ()
  | Some (pid, e) ->
    invalid_arg
      (Printf.sprintf "%s: p%d errored: %s" A.name pid
         (Printexc.to_string e)));
  Array.iteri
    (fun b m ->
      match Spec.Monitor.result m with
      | None -> ()
      | Some v ->
        invalid_arg
          (Format.asprintf "%s: bucket %d: %a" A.name b Spec.pp_violation v))
    monitors;
  let total_ops = n * kc.kc_ops in
  (match stopped with
  | Wheel.Quiescent -> ()
  | Wheel.Out_of_turns ->
    raise
      (Workload.Stalled
         { alg = A.name; stopped = Runner.Out_of_steps;
           acquisitions = total_ops; max_steps = max_turns }));
  (* The arena outlives the run: read each bucket's final version count
     directly off the register and compare with the mutations the
     clients performed — any shortfall is a lost update. *)
  let lost = ref 0 in
  let ver_regs =
    List.filter
      (fun r ->
        String.length r.Register.name >= 7
        && String.sub r.Register.name 0 7 = "kv.ver[")
      (Memory.registers memory)
  in
  List.iteri
    (fun b r -> lost := !lost + (expected_bumps.(b) - Register.read r))
    ver_regs;
  let shards =
    Array.init nb (fun b ->
        let entries = Measures.Online.wc_entries online.(b) in
        let acq = List.length entries in
        let steps = List.map (fun (_, s) -> s.Measures.steps) entries in
        {
          ss_ops = Array.fold_left ( + ) 0 ops_by_kind.(b);
          ss_reads = ops_by_kind.(b).(0);
          ss_updates = ops_by_kind.(b).(1);
          ss_scans = ops_by_kind.(b).(2);
          ss_rmws = ops_by_kind.(b).(3);
          ss_acquisitions = acq;
          ss_entry_steps_max = List.fold_left max 0 steps;
          ss_entry_steps_mean =
            (if acq = 0 then 0.
             else
               float_of_int (List.fold_left ( + ) 0 steps)
               /. float_of_int acq);
          ss_events = Measures.Online.events_seen online.(b);
        })
  in
  let hot = Array.fold_left (fun acc s -> max acc s.ss_ops) 0 shards in
  {
    kr_ops = total_ops;
    kr_acquisitions =
      Array.fold_left (fun acc s -> acc + s.ss_acquisitions) 0 shards;
    kr_lost_updates = !lost;
    kr_torn_scans = !torn_scans;
    kr_hot_share =
      (if total_ops = 0 then 0.
       else float_of_int hot /. float_of_int total_ops);
    kr_entry_steps_max =
      Array.fold_left (fun acc s -> max acc s.ss_entry_steps_max) 0 shards;
    kr_turns = Wheel.turns wheel;
    kr_total_steps = Wheel.total_steps wheel;
    kr_spawned = Wheel.spawned wheel;
    kr_live_peak = Wheel.live_peak wheel;
    kr_shards = shards;
  }
