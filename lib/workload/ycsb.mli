(** YCSB-style workload generator: seeded Zipfian key draws
    ({!Cfc_base.Ixmath.zipf}) combined with read/update/scan/RMW
    operation mixes modelled on the YCSB core workloads.  Both KV
    drivers — the event-wheel {!Kv_sim} and the domain-parallel
    [Cfc_native.Kv_service] — consume the same streams, so for a given
    [(seed, client)] they replay identical operation sequences. *)

type op =
  | Read of int  (** read one key *)
  | Update of int  (** overwrite one key *)
  | Scan of int * int  (** [(start, len)]: read [len] consecutive keys *)
  | Rmw of int  (** read-modify-write one key *)

type mix = {
  mix_name : string;
  read : float;
  update : float;
  scan : float;
  rmw : float;  (** probabilities; must sum to 1 *)
  scan_len : int;  (** keys touched per scan *)
}

val mix_a : mix
(** YCSB A: 50% read / 50% update ("update heavy"). *)

val mix_b : mix
(** YCSB B: 95% read / 5% update ("read mostly"). *)

val mix_c : mix
(** YCSB C: 100% read. *)

val mix_e : mix
(** YCSB E: 95% scan (16 keys) / 5% RMW — YCSB E's inserts become RMW
    on existing keys because the store is fixed-size (DESIGN.md §2). *)

val mixes : mix list
(** The four presets, in order A, B, C, E. *)

val mix_of_name : string -> mix option
(** Case-insensitive lookup among {!mixes} ("a" … "e"). *)

type stream
(** Per-client deterministic operation stream. *)

val stream :
  seed:int -> client:int -> nkeys:int -> theta:float -> mix -> stream
(** The client's state is seeded with
    [Random.State.make [| Ixmath.mix_seed seed client; salt |]]
    (split-seed mixing with an op-stream salt), so streams of distinct
    clients are pairwise uncorrelated and disjoint from their think-time
    streams.  Keys are ranks of [Ixmath.zipf ~n:nkeys ~theta] — rank 0
    hottest; [theta = 0] uniform. *)

val next : stream -> op
(** Draw the next operation (two [Random.State.float] draws: key, then
    op kind). *)

val key_of : op -> int
(** The (start) key an operation targets. *)
