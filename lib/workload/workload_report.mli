(** The §4 backoff experiment rendered as a table — shared by the bench
    harness and the [cfc-tables backoff] subcommand. *)

val backoff_table :
  n:int -> rounds:int -> thinks:int list -> seed:int ->
  algs:Cfc_mutex.Registry.alg list -> Cfc_base.Texttab.t
