(** The §4 backoff experiment rendered as a table — shared by the bench
    harness and the [cfc-tables backoff] subcommand. *)

val backoff_table :
  n:int -> rounds:int -> thinks:int list -> seed:int ->
  algs:Cfc_mutex.Registry.alg list -> Cfc_base.Texttab.t

(** {2 EXP-SCALE rows}

    Shared by [bench/scale_bench] and the [cfc-tables scale]
    subcommand: one row per (algorithm, n) with the streaming
    contention-free measurement checked against the registered closed
    forms, and one row per chaos run of the Jepsen-in-one-process rig.
    Wall-clock fields are recorded for the record only — the diff gate
    ignores them. *)

type scale_cf_row = {
  scf_alg : string;
  scf_n : int;
  scf_sample : Cfc_core.Measures.sample;
      (** componentwise max over the sampled pids *)
  scf_predicted_steps : int option;  (** the registered closed form *)
  scf_predicted_registers : int option;
  scf_ok : bool;
      (** every present closed form matched exactly (absent forms pass) *)
  scf_wall_s : float;
}

val scale_cf_row : Cfc_mutex.Registry.alg -> n:int -> scale_cf_row
(** One {!Cfc_core.Mutex_harness.contention_free_streaming} measurement
    at [n], compared against [predicted_cf_steps]/[predicted_cf_registers].
    Raises like the harness on unsupported parameters. *)

type scale_chaos_row = {
  sch_alg : string;
  sch_n : int;
  sch_pairs : int;
  sch_result : Workload.scale_result;
  sch_wall_s : float;
}

val scale_chaos_row :
  ?max_turns:int -> Cfc_mutex.Registry.alg -> Workload.scale_config ->
  scale_chaos_row
(** One {!Workload.run_mutex_scale} chaos run, timed. *)

val scale_cf_table : scale_cf_row list -> Cfc_base.Texttab.t
val scale_chaos_table : scale_chaos_row list -> Cfc_base.Texttab.t

val json_of_scale_cf_row : scale_cf_row -> string
val json_of_scale_chaos_row : scale_chaos_row -> string
(** One JSON object per row, 4-space indented — the BENCH_scale.json
    row format ([wall_s] fields are informational; see
    [scripts/bench_diff.py]). *)
