open Cfc_base
open Cfc_runtime
open Cfc_mutex
open Cfc_core

type config = {
  n : int;
  rounds : int;
  mean_think : int;
  cs_len : int;
  seed : int;
}

let default = { n = 4; rounds = 20; mean_think = 10; cs_len = 3; seed = 42 }

type result = {
  acquisitions : int;
  entry_steps_mean : float;
  entry_steps_max : int;
  entry_registers_max : int;
  cf_steps : int;
  observed_contention : float;
  total_steps : int;
}

(* Geometric think time (expectation [mean], seeded per process): one
   uniform draw inverted through Ixmath.geometric, so the distribution is
   shared verbatim with the native lock service.  The per-pid state is
   split-seeded through Ixmath.mix_seed — seeding with the raw
   [| seed; pid |] pair correlates adjacent pids (the scale rig switched
   for exactly this reason); the mixer's full avalanche decorrelates
   them, and the native Lock_service derives its streams identically. *)
let think_stream ~seed ~pid =
  let st = Random.State.make [| Ixmath.mix_seed seed pid |] in
  fun ~mean ->
    if mean = 0 then 0
    else Ixmath.geometric ~u:(Random.State.float st 1.0) ~mean

exception Stalled of { alg : string; stopped : Runner.stopped;
                       acquisitions : int; max_steps : int }

let () =
  Printexc.register_printer (function
    | Stalled { alg; stopped; acquisitions; max_steps } ->
      Some
        (Format.asprintf
           "Workload.Stalled: %s exhausted its step budget (%a after %d \
            scheduler steps, %d acquisitions completed) — raise \
            ~max_steps or shrink the workload"
           alg Runner.pp_stopped stopped max_steps acquisitions)
    | _ -> None)

let run_mutex ?(max_steps = 10_000_000) (module A : Mutex_intf.ALG) config =
  let p = Mutex_intf.params config.n in
  if not (A.supports p) then invalid_arg (A.name ^ ": unsupported");
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let cs_scratch = M.alloc ~name:"wl.scratch" ~width:8 ~init:0 () in
  let proc me () =
    let think = think_stream ~seed:config.seed ~pid:me in
    for _ = 1 to config.rounds do
      for _ = 1 to think ~mean:config.mean_think do
        M.pause ()
      done;
      Proc.region Event.Trying;
      L.lock inst ~me;
      Proc.region Event.Critical;
      for k = 1 to config.cs_len do
        M.write cs_scratch (k land 255)
      done;
      Proc.region Event.Exiting;
      L.unlock inst ~me;
      Proc.region Event.Remainder
    done
  in
  let procs = Array.init config.n proc in
  let out =
    Runner.run ~max_steps ~memory ~pick:(Schedule.round_robin ()) procs
  in
  (match Spec.mutual_exclusion out.Runner.trace ~nprocs:config.n with
  | None -> ()
  | Some v ->
    invalid_arg (Format.asprintf "%s: %a" A.name Spec.pp_violation v));
  let entries = Measures.mutex_wc_entry out.Runner.trace ~nprocs:config.n in
  let acquisitions = List.length entries in
  (* A run cut short by the step budget has under-counted acquisitions
     and truncated fragments: refuse to report them as measurements. *)
  (match out.Runner.stopped with
  | Runner.Quiescent -> ()
  | (Runner.Out_of_steps | Runner.Picker_done) as stopped ->
    raise (Stalled { alg = A.name; stopped; acquisitions; max_steps }));
  let steps = List.map (fun (_, s) -> s.Measures.steps) entries in
  let regs = List.map (fun (_, s) -> s.Measures.registers) entries in
  (* Contention level: how many processes are in their entry code at each
     moment a process wins. *)
  let contention_samples =
    Trace.fold_states ~nprocs:config.n
      (fun acc regions e ->
        match e.Event.body with
        | Event.Region_change Event.Critical ->
          let trying =
            Array.to_list regions
            |> List.filter (fun r -> Event.region_equal r Event.Trying)
            |> List.length
          in
          trying :: acc
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> acc)
      [] out.Runner.trace
  in
  let mean xs =
    if xs = [] then 0.
    else
      float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
  in
  let cf = Mutex_harness.contention_free (module A) p in
  {
    acquisitions;
    entry_steps_mean = mean steps;
    entry_steps_max = List.fold_left max 0 steps;
    entry_registers_max = List.fold_left max 0 regs;
    cf_steps = cf.Mutex_harness.max.Measures.steps;
    observed_contention = mean contention_samples;
    total_steps = out.Runner.total_steps;
  }

let contention_sweep alg ~n ~rounds ~thinks ~seed =
  List.map
    (fun mean_think ->
      (mean_think, run_mutex alg { n; rounds; mean_think; cs_len = 3; seed }))
    thinks

(* ------------------------------------------------------------------ *)
(* The O(active-set) scale rig                                         *)

type scale_config = {
  sc_n : int;
  sc_rounds : int;
  sc_mean_think : int;
  sc_cs_len : int;
  sc_seed : int;
  sc_chaos_pairs : int;
}

let scale_default =
  { sc_n = 1024; sc_rounds = 2; sc_mean_think = 4096; sc_cs_len = 3;
    sc_seed = 42; sc_chaos_pairs = 0 }

type scale_result = {
  sr_acquisitions : int;
  sr_crashes : int;
  sr_recoveries : int;
  sr_entry_steps_max : int;
  sr_entry_steps_mean : float;
  sr_recovery_steps_max : int;
  sr_recovery_rmr_max : int;
  sr_events : int;
  sr_turns : int;
  sr_total_steps : int;
  sr_spawned : int;
  sr_live_peak : int;
}

let run_mutex_scale ?max_turns (module A : Mutex_intf.ALG)
    (sc : scale_config) =
  let n = sc.sc_n in
  let p = Mutex_intf.params n in
  if not (A.supports p) then invalid_arg (A.name ^ ": unsupported");
  if sc.sc_chaos_pairs > 0 && A.recovery p = None then
    invalid_arg
      (A.name
     ^ ": chaos requires a recoverable lock (a crash while holding would \
        deadlock the rig)");
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let cs_scratch = M.alloc ~name:"wl.scratch" ~width:8 ~init:0 () in
  (* Split seeds: each process owns an independent stream derived from
     (root seed, pid) through a full-avalanche mixer, so materialising
     process k never advances any other process's stream — determinism
     is per process, not per global draw order.  The stream lives in the
     spawn closure, outside the thunk body, so a crash–restart continues
     it rather than replaying it (a restarted incarnation draws fresh
     think times, as a real client would). *)
  let spawn me =
    let st = Random.State.make [| Ixmath.mix_seed sc.sc_seed me |] in
    let draw () =
      if sc.sc_mean_think = 0 then 0
      else
        Ixmath.geometric
          ~u:(Random.State.float st 1.0)
          ~mean:sc.sc_mean_think
    in
    fun () ->
      for _ = 1 to sc.sc_rounds do
        let d = draw () in
        if d > 0 then Proc.sleep d;
        Proc.region Event.Trying;
        L.lock inst ~me;
        Proc.region Event.Critical;
        for k = 1 to sc.sc_cs_len do
          M.write cs_scratch (k land 255)
        done;
        Proc.region Event.Exiting;
        L.unlock inst ~me;
        Proc.region Event.Remainder
      done
  in
  let faults =
    if sc.sc_chaos_pairs = 0 then []
    else
      Fault.chaos ~seed:sc.sc_seed ~nprocs:n ~pairs:sc.sc_chaos_pairs
        ~horizon:(max 1 (n * sc.sc_rounds * (sc.sc_cs_len + 6)))
  in
  let online = Measures.Online.create ~nprocs:n in
  let monitor =
    if sc.sc_chaos_pairs = 0 then Spec.Monitor.mutual_exclusion ()
    else Spec.Monitor.mutual_exclusion_recoverable ()
  in
  let crashes = ref 0 and recoveries = ref 0 in
  let count ~pid:_ body =
    match body with
    | Event.Crash -> incr crashes
    | Event.Recover -> incr recoveries
    | Event.Access _ | Event.Region_change _ -> ()
  in
  let sink =
    Wheel.tee (Measures.Online.feed online)
      (Wheel.tee (Spec.Monitor.feed monitor) count)
  in
  let wheel = Wheel.create ~sink ~faults ~nprocs:n ~spawn () in
  for pid = 0 to n - 1 do
    Wheel.wake wheel pid
  done;
  let max_turns =
    match max_turns with
    | Some m -> m
    | None -> 20_000 * n * max 1 sc.sc_rounds
  in
  let stopped = Wheel.run ~max_turns wheel in
  (match Wheel.first_error wheel with
  | None -> ()
  | Some (pid, e) ->
    invalid_arg
      (Printf.sprintf "%s: p%d errored: %s" A.name pid (Printexc.to_string e)));
  (match Spec.Monitor.result monitor with
  | None -> ()
  | Some v ->
    invalid_arg (Format.asprintf "%s: %a" A.name Spec.pp_violation v));
  let entries = Measures.Online.wc_entries online in
  let acquisitions = List.length entries in
  (match stopped with
  | Wheel.Quiescent -> ()
  | Wheel.Out_of_turns ->
    raise
      (Stalled { alg = A.name; stopped = Runner.Out_of_steps; acquisitions;
                 max_steps = max_turns }));
  let entry_steps = List.map (fun (_, s) -> s.Measures.steps) entries in
  let recs = Measures.Online.recovery_paths online in
  let rmrs = Measures.Online.recovery_rmr online in
  {
    sr_acquisitions = acquisitions;
    sr_crashes = !crashes;
    sr_recoveries = !recoveries;
    sr_entry_steps_max = List.fold_left max 0 entry_steps;
    sr_entry_steps_mean =
      (if entry_steps = [] then 0.
       else
         float_of_int (List.fold_left ( + ) 0 entry_steps)
         /. float_of_int acquisitions);
    sr_recovery_steps_max =
      List.fold_left (fun acc (_, s) -> max acc s.Measures.steps) 0 recs;
    sr_recovery_rmr_max =
      List.fold_left (fun acc (_, r) -> max acc r) 0 rmrs;
    sr_events = Measures.Online.events_seen online;
    sr_turns = Wheel.turns wheel;
    sr_total_steps = Wheel.total_steps wheel;
    sr_spawned = Wheel.spawned wheel;
    sr_live_peak = Wheel.live_peak wheel;
  }
