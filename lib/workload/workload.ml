open Cfc_base
open Cfc_runtime
open Cfc_mutex
open Cfc_core

type config = {
  n : int;
  rounds : int;
  mean_think : int;
  cs_len : int;
  seed : int;
}

let default = { n = 4; rounds = 20; mean_think = 10; cs_len = 3; seed = 42 }

type result = {
  acquisitions : int;
  entry_steps_mean : float;
  entry_steps_max : int;
  entry_registers_max : int;
  cf_steps : int;
  observed_contention : float;
  total_steps : int;
}

(* Geometric think time (expectation [mean], seeded per process): one
   uniform draw inverted through Ixmath.geometric, so the distribution is
   shared verbatim with the native lock service. *)
let think_stream ~seed ~pid =
  let st = Random.State.make [| seed; pid |] in
  fun ~mean ->
    if mean = 0 then 0
    else Ixmath.geometric ~u:(Random.State.float st 1.0) ~mean

exception Stalled of { alg : string; stopped : Runner.stopped;
                       acquisitions : int; max_steps : int }

let () =
  Printexc.register_printer (function
    | Stalled { alg; stopped; acquisitions; max_steps } ->
      Some
        (Format.asprintf
           "Workload.Stalled: %s exhausted its step budget (%a after %d \
            scheduler steps, %d acquisitions completed) — raise \
            ~max_steps or shrink the workload"
           alg Runner.pp_stopped stopped max_steps acquisitions)
    | _ -> None)

let run_mutex ?(max_steps = 10_000_000) (module A : Mutex_intf.ALG) config =
  let p = Mutex_intf.params config.n in
  if not (A.supports p) then invalid_arg (A.name ^ ": unsupported");
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let cs_scratch = M.alloc ~name:"wl.scratch" ~width:8 ~init:0 () in
  let proc me () =
    let think = think_stream ~seed:config.seed ~pid:me in
    for _ = 1 to config.rounds do
      for _ = 1 to think ~mean:config.mean_think do
        M.pause ()
      done;
      Proc.region Event.Trying;
      L.lock inst ~me;
      Proc.region Event.Critical;
      for k = 1 to config.cs_len do
        M.write cs_scratch (k land 255)
      done;
      Proc.region Event.Exiting;
      L.unlock inst ~me;
      Proc.region Event.Remainder
    done
  in
  let procs = Array.init config.n proc in
  let out =
    Runner.run ~max_steps ~memory ~pick:(Schedule.round_robin ()) procs
  in
  (match Spec.mutual_exclusion out.Runner.trace ~nprocs:config.n with
  | None -> ()
  | Some v ->
    invalid_arg (Format.asprintf "%s: %a" A.name Spec.pp_violation v));
  let entries = Measures.mutex_wc_entry out.Runner.trace ~nprocs:config.n in
  let acquisitions = List.length entries in
  (* A run cut short by the step budget has under-counted acquisitions
     and truncated fragments: refuse to report them as measurements. *)
  (match out.Runner.stopped with
  | Runner.Quiescent -> ()
  | (Runner.Out_of_steps | Runner.Picker_done) as stopped ->
    raise (Stalled { alg = A.name; stopped; acquisitions; max_steps }));
  let steps = List.map (fun (_, s) -> s.Measures.steps) entries in
  let regs = List.map (fun (_, s) -> s.Measures.registers) entries in
  (* Contention level: how many processes are in their entry code at each
     moment a process wins. *)
  let contention_samples =
    Trace.fold_states ~nprocs:config.n
      (fun acc regions e ->
        match e.Event.body with
        | Event.Region_change Event.Critical ->
          let trying =
            Array.to_list regions
            |> List.filter (fun r -> Event.region_equal r Event.Trying)
            |> List.length
          in
          trying :: acc
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> acc)
      [] out.Runner.trace
  in
  let mean xs =
    if xs = [] then 0.
    else
      float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
  in
  let cf = Mutex_harness.contention_free (module A) p in
  {
    acquisitions;
    entry_steps_mean = mean steps;
    entry_steps_max = List.fold_left max 0 steps;
    entry_registers_max = List.fold_left max 0 regs;
    cf_steps = cf.Mutex_harness.max.Measures.steps;
    observed_contention = mean contention_samples;
    total_steps = out.Runner.total_steps;
  }

let contention_sweep alg ~n ~rounds ~thinks ~seed =
  List.map
    (fun mean_think ->
      (mean_think, run_mutex alg { n; rounds; mean_think; cs_len = 3; seed }))
    thinks
