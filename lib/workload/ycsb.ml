(* YCSB-style operation mixes over a Zipfian key space.  The generator is
   pure stream state: every draw comes from a per-client seeded
   [Random.State] derived by split-seed mixing, so client c's stream is
   identical on the simulated and native drivers and uncorrelated with
   client c+1's (same discipline as Workload.think_stream, distinct
   salt so op draws never replicate think draws). *)

open Cfc_base

type op =
  | Read of int
  | Update of int
  | Scan of int * int
  | Rmw of int

type mix = {
  mix_name : string;
  read : float;
  update : float;
  scan : float;
  rmw : float;
  scan_len : int;
}

let check m =
  let s = m.read +. m.update +. m.scan +. m.rmw in
  if Float.abs (s -. 1.0) > 1e-9 then
    invalid_arg (Printf.sprintf "Ycsb: mix %s sums to %g, not 1" m.mix_name s);
  if m.scan > 0. && m.scan_len < 1 then
    invalid_arg (Printf.sprintf "Ycsb: mix %s scans with scan_len < 1"
                   m.mix_name);
  m

(* The canonical YCSB core workloads (A, B, C, E), with E's 5% inserts
   folded into read-modify-write — the store is fixed-size (the paper's
   model has no dynamic allocation), so "insert" is an RMW on an
   existing key.  Recorded as a DESIGN.md §2 substitution. *)
let mix_a =
  check { mix_name = "A"; read = 0.5; update = 0.5; scan = 0.; rmw = 0.;
          scan_len = 0 }

let mix_b =
  check { mix_name = "B"; read = 0.95; update = 0.05; scan = 0.; rmw = 0.;
          scan_len = 0 }

let mix_c =
  check { mix_name = "C"; read = 1.0; update = 0.; scan = 0.; rmw = 0.;
          scan_len = 0 }

let mix_e =
  check { mix_name = "E"; read = 0.; update = 0.; scan = 0.95; rmw = 0.05;
          scan_len = 16 }

let mixes = [ mix_a; mix_b; mix_c; mix_e ]

let mix_of_name s =
  List.find_opt
    (fun m -> String.lowercase_ascii m.mix_name = String.lowercase_ascii s)
    mixes

type stream = {
  st : Random.State.t;
  zipf : Ixmath.zipf;
  mix : mix;
  nkeys : int;
}

(* Salt 0x5b separates op draws from think-time draws ([mix_seed seed
   client] alone) and crash draws (salt 0x0c in Lock_service). *)
let stream ~seed ~client ~nkeys ~theta mix =
  if nkeys < 1 then invalid_arg "Ycsb.stream: nkeys < 1";
  {
    st = Random.State.make [| Ixmath.mix_seed seed client; 0x5b |];
    zipf = Ixmath.zipf ~n:nkeys ~theta;
    mix;
    nkeys;
  }

let next s =
  let key = Ixmath.zipf_draw s.zipf ~u:(Random.State.float s.st 1.0) in
  let u = Random.State.float s.st 1.0 in
  let m = s.mix in
  if u < m.read then Read key
  else if u < m.read +. m.update then Update key
  else if u < m.read +. m.update +. m.scan then
    Scan (key, min m.scan_len s.nkeys)
  else Rmw key

let key_of = function Read k | Update k | Scan (k, _) | Rmw k -> k
