open Cfc_runtime

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
  names : int array;
}

let instantiate (module A : Cfc_renaming.Renaming_intf.ALG) ~n =
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module R = A.Make (M) in
  let inst = R.create ~n in
  let proc me () =
    Proc.region Event.Trying;
    Proc.decide (R.rename inst ~me)
  in
  (memory, proc)

(* Restrict a picker to a participant set (non-participants never start,
   matching "k of n processes participate").  The run ends when no
   participant can take steps — without this check the underlying picker
   would offer the permanently-idle non-participants forever. *)
let restrict participants pick sched =
  let rec next () =
    if
      not
        (List.exists
           (fun pid -> Scheduler.status sched pid = Scheduler.Runnable)
           participants)
    then None
    else
      match pick sched with
      | None -> None
      | Some pid -> if List.mem pid participants then Some pid else next ()
  in
  next

let run ?max_steps ?crash_at ?participants ~pick
    (module A : Cfc_renaming.Renaming_intf.ALG) ~n =
  let memory, proc = instantiate (module A) ~n in
  let procs = Array.init n (fun me -> proc me) in
  let pick =
    match participants with
    | None -> pick
    | Some ps ->
      if ps = [] then invalid_arg "Renaming_harness.run: no participants";
      fun sched -> (restrict ps pick sched) ()
  in
  Runner.run ?max_steps ?crash_at ~memory ~pick procs

let check (out : Runner.outcome) ~n ~k ~bound =
  let decisions = Measures.decisions out.Runner.trace ~nprocs:n in
  let limit = bound ~n ~k in
  let out_of_range =
    List.filter (fun (_, v) -> v < 1 || v > limit) decisions
  in
  match out_of_range with
  | (pid, v) :: _ ->
    Some
      { Spec.at = Trace.length out.Runner.trace;
        pids = [ pid ];
        what = Printf.sprintf "name %d outside 1..%d (k=%d)" v limit k }
  | [] -> (
    let sorted = List.sort (fun (_, a) (_, b) -> compare a b) decisions in
    let rec dup = function
      | (p1, v1) :: (p2, v2) :: _ when v1 = v2 ->
        Some
          { Spec.at = Trace.length out.Runner.trace;
            pids = [ p1; p2 ];
            what = Printf.sprintf "duplicate name %d" v1 }
      | _ :: rest -> dup rest
      | [] -> None
    in
    dup sorted)

let contention_free (module A : Cfc_renaming.Renaming_intf.ALG) ~n =
  let samples_names =
    Array.init n (fun me ->
        let out =
          run ~participants:[ me ] ~pick:(Schedule.solo me) (module A) ~n
        in
        let name =
          match
            List.assoc_opt me (Measures.decisions out.Runner.trace ~nprocs:n)
          with
          | Some v -> v
          | None -> invalid_arg (A.name ^ ": solo process got no name")
        in
        (Measures.naming_process out.Runner.trace ~nprocs:n ~pid:me, name))
  in
  let per_process = Array.map fst samples_names in
  {
    max = Array.fold_left Measures.max_sample Measures.zero per_process;
    per_process;
    names = Array.map snd samples_names;
  }

let system alg ~n () =
  let (module A : Cfc_renaming.Renaming_intf.ALG) = alg in
  let memory, proc = instantiate (module A) ~n in
  (memory, Array.init n (fun me -> proc me))
