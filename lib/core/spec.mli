(** Safety and liveness checkers over traces — the correctness side of the
    paper's problem statements.  Used by unit tests, qcheck properties and
    the model checker alike. *)

open Cfc_runtime

type violation = {
  at : int;  (** sequence number of the offending event *)
  pids : int list;  (** processes involved *)
  what : string;
}

val pp_violation : Format.formatter -> violation -> unit

val mutual_exclusion : Trace.t -> nprocs:int -> violation option
(** No two processes simultaneously in their critical sections. *)

val mutual_exclusion_recoverable : Trace.t -> nprocs:int -> violation option
(** Mutual exclusion across crash–recoveries (Golab–Ramaraju semantics):
    a process that crashes inside its critical section still occupies it
    — shared memory says it holds the lock — until its restarted run
    next changes region.  Flags any entry to [Critical] while another
    process occupies it under this occupancy rule.  On crash-free traces
    this agrees with {!mutual_exclusion}. *)

(** Incremental checkers for the model checker's DFS: instead of
    re-scanning the whole trace at every search node, a checker carries a
    small state that is fed only the events appended since the parent node
    and checkpointed/restored alongside the scheduler.  Each incremental
    checker returns exactly the violation (same [at]/[pids]/[what]) its
    whole-trace counterpart would return at the first node where one
    exists, provided [feed] is called once per node along each DFS path. *)
module Inc : sig
  type t

  type run = {
    feed : Trace.t -> from:int -> violation option;
        (** Consume events [from .. length-1]; first violation if any. *)
    save : unit -> unit -> unit;
        (** [save ()] checkpoints the checker state and returns a restore
            thunk; the thunk may be invoked any number of times. *)
  }

  val start : t -> nprocs:int -> run

  val of_whole : (Trace.t -> nprocs:int -> violation option) -> t
  (** Stateless fallback: re-runs the whole-trace check at every node
      (identical behavior and cost to the pre-incremental engine). *)

  val on_decisions : (Trace.t -> nprocs:int -> violation option) -> t
  (** For properties that are functions of the decisions multiset only
      ({!unique_names}, {!at_most_one_winner}, consensus agreement):
      re-runs the whole check only at nodes whose new events contain a
      [Decided] region change — the verdict cannot change otherwise. *)

  val mutual_exclusion : t
  (** True-incremental {!Spec.mutual_exclusion} (region-vector state). *)

  val mutual_exclusion_recoverable : t
  (** True-incremental {!Spec.mutual_exclusion_recoverable} (occupancy
      bit-vector state). *)
end

(** Event-fed safety monitors for streaming runs.  A monitor consumes
    events as a [Wheel.sink] (partially apply {!Monitor.feed}) and keeps
    occupancy in a sparse table, so checking a 10^5-process run costs
    O(1) per event and O(active set) memory.  Fed the events of a
    recorded trace in order, each monitor yields exactly the verdict of
    its whole-trace counterpart (same [at]/[pids]/[what]); the first
    violation is sticky. *)
module Monitor : sig
  type t

  val mutual_exclusion : unit -> t
  (** Streaming {!Spec.mutual_exclusion}. *)

  val mutual_exclusion_recoverable : unit -> t
  (** Streaming {!Spec.mutual_exclusion_recoverable}. *)

  val feed : t -> pid:int -> Event.body -> unit

  val result : t -> violation option
end

val mutex_progress : Runner.outcome -> violation option
(** Deadlock-freedom evidence on a completed run: every process that
    halted went through its critical section at least once, and no
    process is stuck ([completed] implies all halted/crashed). *)

val unique_names : Trace.t -> nprocs:int -> n:int -> violation option
(** Naming safety: every decided value is in [1..n] and no two processes
    decided the same value (crashed processes need not decide). *)

val all_named : Trace.t -> nprocs:int -> violation option
(** Wait-freedom evidence on a completed naming run: every non-crashed
    process decided. *)

val at_most_one_winner : Trace.t -> nprocs:int -> violation option
(** Contention detection: at most one process decided 1. *)

val solo_wins : Trace.t -> nprocs:int -> pid:int -> violation option
(** Contention detection: in a solo run of [pid], it decided 1. *)
