(** Safety and liveness checkers over traces — the correctness side of the
    paper's problem statements.  Used by unit tests, qcheck properties and
    the model checker alike. *)

open Cfc_runtime

type violation = {
  at : int;  (** sequence number of the offending event *)
  pids : int list;  (** processes involved *)
  what : string;
}

val pp_violation : Format.formatter -> violation -> unit

val mutual_exclusion : Trace.t -> nprocs:int -> violation option
(** No two processes simultaneously in their critical sections. *)

val mutual_exclusion_recoverable : Trace.t -> nprocs:int -> violation option
(** Mutual exclusion across crash–recoveries (Golab–Ramaraju semantics):
    a process that crashes inside its critical section still occupies it
    — shared memory says it holds the lock — until its restarted run
    next changes region.  Flags any entry to [Critical] while another
    process occupies it under this occupancy rule.  On crash-free traces
    this agrees with {!mutual_exclusion}. *)

val mutex_progress : Runner.outcome -> violation option
(** Deadlock-freedom evidence on a completed run: every process that
    halted went through its critical section at least once, and no
    process is stuck ([completed] implies all halted/crashed). *)

val unique_names : Trace.t -> nprocs:int -> n:int -> violation option
(** Naming safety: every decided value is in [1..n] and no two processes
    decided the same value (crashed processes need not decide). *)

val all_named : Trace.t -> nprocs:int -> violation option
(** Wait-freedom evidence on a completed naming run: every non-crashed
    process decided. *)

val at_most_one_winner : Trace.t -> nprocs:int -> violation option
(** Contention detection: at most one process decided 1. *)

val solo_wins : Trace.t -> nprocs:int -> pid:int -> violation option
(** Contention detection: in a solo run of [pid], it decided 1. *)
