open Cfc_runtime
open Cfc_naming

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
  names : int array;
}

let instantiate (module A : Naming_intf.ALG) ~n =
  if not (A.supports ~n) then
    invalid_arg (Printf.sprintf "%s does not support n=%d" A.name n);
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module N = A.Make (M) in
  let inst = N.create ~n in
  let proc () =
    Proc.region Event.Trying;
    let name = N.run inst in
    Proc.decide name
  in
  (memory, proc)

let check_names (module A : Naming_intf.ALG) trace ~n =
  match Spec.unique_names trace ~nprocs:n ~n with
  | None -> ()
  | Some v ->
    invalid_arg (Format.asprintf "%s: %a" A.name Spec.pp_violation v)

let system (module A : Naming_intf.ALG) ~n () =
  let memory, proc = instantiate (module A) ~n in
  (memory, Array.init n (fun _ -> proc))

let run ?max_steps ?crash_at ~pick (module A : Naming_intf.ALG) ~n =
  let memory, proc = instantiate (module A) ~n in
  (* Identical processes: every pid runs the same closure. *)
  let procs = Array.init n (fun _ -> proc) in
  Runner.run ?max_steps ?crash_at ~memory ~pick procs

let contention_free (module A : Naming_intf.ALG) ~n =
  let out = run ~pick:(Schedule.sequential ()) (module A) ~n in
  check_names (module A) out.Runner.trace ~n;
  (match Spec.all_named out.Runner.trace ~nprocs:n with
  | None -> ()
  | Some v ->
    invalid_arg (Format.asprintf "%s: %a" A.name Spec.pp_violation v));
  let per_process = Measures.per_process_samples out.Runner.trace ~nprocs:n in
  let decided = Measures.decisions out.Runner.trace ~nprocs:n in
  let names =
    Array.init n (fun pid ->
        match List.assoc_opt pid decided with Some v -> v | None -> -1)
  in
  {
    max = Array.fold_left Measures.max_sample Measures.zero per_process;
    per_process;
    names;
  }

let max_over_run (module A : Naming_intf.ALG) out ~n =
  check_names (module A) out.Runner.trace ~n;
  Array.fold_left Measures.max_sample Measures.zero
    (Measures.per_process_samples out.Runner.trace ~nprocs:n)

let wc_estimate ~seeds (module A : Naming_intf.ALG) ~n =
  (* Naming is wait-free with worst case O(n) steps per process; budget
     quadratically with headroom so large-n estimates cannot silently
     truncate (the 1M default would, from n ≈ 2048). *)
  let max_steps = max 1_000_000 (8 * n * n) in
  let with_pick mk =
    let out = run ~max_steps ~pick:(mk ()) (module A) ~n in
    if not out.Runner.completed then
      invalid_arg (A.name ^ ": wc_estimate step budget exhausted");
    max_over_run (module A) out ~n
  in
  let base = with_pick Schedule.round_robin in
  List.fold_left
    (fun acc seed ->
      Measures.max_sample acc (with_pick (fun () -> Schedule.random ~seed)))
    base seeds

let lockstep_steps (module A : Naming_intf.ALG) ~n =
  let out = run ~pick:(Schedule.round_robin ()) (module A) ~n in
  check_names (module A) out.Runner.trace ~n;
  let steps = ref 0 in
  for pid = 0 to n - 1 do
    steps := max !steps (Scheduler.steps_taken out.Runner.scheduler pid)
  done;
  !steps
