open Cfc_base

let log2 = Ixmath.log2f
let logn n = log2 (float_of_int n)

(* log log n, guarded: meaningful for n >= 3 (log n > 1); for smaller n the
   theorems are vacuous and callers get a degenerate bound. *)
let loglog n = if n >= 3 then log2 (logn n) else 0.

let mutex_cf_step_lower ~n ~l =
  if n < 2 then 0.
  else begin
    let denom = float_of_int l -. 2. +. (3. *. loglog n) in
    if denom <= 0. then 0. else logn n /. denom
  end

let mutex_cf_register_lower ~n ~l =
  if n < 2 then 0.
  else begin
    let denom = float_of_int l +. loglog n in
    if denom <= 0. then 0. else sqrt (logn n /. denom)
  end

let mutex_cf_step_upper ~n ~l =
  7 * Ixmath.ceil_div (Ixmath.ceil_log2 (max 2 n)) l

let mutex_cf_register_upper ~n ~l =
  3 * Ixmath.ceil_div (Ixmath.ceil_log2 (max 2 n)) l

let mutex_wc_register_upper ~n = 4 * Ixmath.ceil_log2 (max 2 n)

let bits_accessed_lower ~n ~l =
  float_of_int (l - 1) +. mutex_cf_step_lower ~n ~l

let lemma3_holds ~n ~l ~r ~w =
  let r = float_of_int r and w = float_of_int w in
  let inner = (w *. w *. r) +. (w *. r *. r) in
  if inner < 1. then w *. float_of_int l >= logn n
  else (w *. float_of_int l) +. (w *. log2 inner) >= logn n

let lemma6_holds ~n ~l ~c ~w =
  (* Work in logs to avoid overflow: log n < log 2 + log w! + c·log(4c·w!)
     + w·(log w + l·w). *)
  let log_fact m =
    let rec go acc i = if i > m then acc else go (acc +. log2 (float_of_int i)) (i + 1) in
    go 0. 1
  in
  let c' = float_of_int c and w' = float_of_int w in
  let rhs =
    1. +. log_fact w
    +. (c' *. (2. +. log2 (max 1. c') +. log_fact w))
    +. (w' *. (log2 (max 1. w') +. (float_of_int l *. w')))
  in
  logn n < rhs

let naming_lower_cf_registers ~n = if n < 2 then 0. else logn n
let naming_wc_steps_no_taf ~n = max 0 (n - 1)
let naming_tas_only_cf_registers ~n = max 0 (n - 1)

type cell = Linear | Log

let cell_value cell ~n =
  match cell with Linear -> max 1 (n - 1) | Log -> Ixmath.ceil_log2 (max 2 n)

let cell_to_string = function Linear -> "n-1" | Log -> "log n"

(* Columns: c-f register, c-f step, w-c register, w-c step. *)
let naming_table =
  [ ("tas", Linear, Linear, Linear, Linear);
    ("read+tas", Log, Log, Linear, Linear);
    ("read+tas+tar", Log, Log, Log, Linear);
    ("taf", Log, Log, Log, Log);
    ("rmw", Log, Log, Log, Log) ]
