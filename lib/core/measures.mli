(** The paper's complexity measures (§2.2, §3.2), computed from traces.

    Every function is a pure query over a recorded {!Cfc_runtime.Trace.t};
    the harnesses produce the right runs (solo/sequential for
    contention-free, scheduler families for worst-case estimates) and
    these functions extract the numbers. *)

open Cfc_runtime

(** All six counting measures of one process over one run fragment:
    step/register complexity and their read/write refinements (the [r] and
    [w] of Lemma 3). *)
type sample = {
  steps : int;
  registers : int;
  read_steps : int;
  write_steps : int;
  read_registers : int;
  write_registers : int;
}

val zero : sample

val max_sample : sample -> sample -> sample
(** Componentwise maximum — the paper takes the max over processes/runs
    separately per measure. *)

val pp_sample : Format.formatter -> sample -> unit

val in_regions :
  Trace.t -> nprocs:int -> pid:int -> in_region:(Event.region -> bool) ->
  sample
(** Measures of [pid] over exactly its accesses performed while its own
    region satisfies [in_region]. *)

val mutex_contention_free : Trace.t -> nprocs:int -> pid:int -> sample
(** The §2.2 contention-free measure of [pid]: its accesses in entry
    ([Trying]) and exit ([Exiting]) code.  Meaningful on runs where all
    other processes stay in their remainder (the harness's solo runs);
    this function does not itself verify that. *)

val mutex_wc_entry : Trace.t -> nprocs:int -> (int * sample) list
(** The §2.2 worst-case entry-code fragments: for every transition of some
    [p] from [Trying] to [Critical] at event [j], the measures of [p] over
    the largest window [(i, j)] in which [p] is in its entry code and no
    process is in its critical section or exit code — "start counting only
    after the processes previously in the critical section have finished
    their exit code".  Returns one [(pid, sample)] per completed entry. *)

val mutex_wc_exit : Trace.t -> nprocs:int -> (int * sample) list
(** Worst-case exit-code fragments: measures of [p] over each of its
    [Exiting] stretches. *)

val per_process_samples : Trace.t -> nprocs:int -> sample array
(** Whole-run samples of every process, computed in one pass over the
    trace (use this instead of n calls to {!naming_process} when
    measuring contended runs). *)

val naming_process : Trace.t -> nprocs:int -> pid:int -> sample
(** §3.2 measure of one naming process: all its accesses from start to
    decision (its whole execution). *)

val decisions : Trace.t -> nprocs:int -> (int * int) list
(** [(pid, value)] for every process that reached [Decided v]. *)

val recovery_paths : Trace.t -> nprocs:int -> (int * sample) list
(** Crash–recovery extension of the §2.2 fragment measures: for every
    [Recover] of process [p] at event [i] whose next [p]-event of
    interest is an entry to [Critical] at event [j] (no intervening
    crash of [p]), the measures of [p] over the open fragment
    [(i, j)] — the cost of getting back into the critical section after
    a restart.  One [(pid, sample)] per completed recovery, in trace
    order; recoveries that crash again or never reach the critical
    section contribute nothing. *)

val recovery_rmr : Trace.t -> nprocs:int -> (int * int) list
(** Remote memory references of each completed recovery path, under the
    {!remote_accesses} write-invalidate model extended to crashes: a
    crash destroys the dying incarnation's cached copies (the
    Golab–Ramaraju restarted process starts with a cold cache), so a
    register is remote on the recovery path until first re-accessed.
    Returns [(pid, rmr)] per completed recovery, in the same order and
    one-to-one with {!recovery_paths} (both open at [Recover], are
    abandoned by a second [Crash], and close at the next entry to
    [Critical]). *)

val remote_accesses : Trace.t -> nprocs:int -> int array
(** Per-process {e remote memory references} under the write-invalidate
    coherent-cache model the paper's §1.2 appeals to (after [YA93]): a
    process's access to a register is remote iff it does not hold a valid
    cached copy — i.e. it never accessed the register before, or another
    process wrote (or won a compare-and-swap on) it since the process's
    last access.  A write leaves only the writer's copy valid; a read
    joins the set of valid holders.

    In a contention-free run this equals the register complexity (the
    §1.2 claim "the number of different registers accessed accurately
    reflects the number of remote accesses" — asserted by a qcheck
    property), and under contention it separates local-spin algorithms
    (MCS: bounded remotes per acquisition) from spin-on-shared ones. *)

(** Streaming (online) counterpart of the trace measures above.

    [Online.t] consumes events one at a time — typically as a
    {!Cfc_runtime.Wheel.sink} — and maintains every §2.2/§3.2
    accumulator incrementally, so a run never materialises its event
    list.  For any event sequence, each query below returns {e exactly}
    the value its materialised counterpart computes on the recorded
    trace of the same run (asserted exhaustively by the equivalence
    gate in the test battery), with one deliberate widening:
    {!Online.remote_accesses} uses pid {e sets} for the write-invalidate
    holder bookkeeping instead of the 62-bit masks of
    {!remote_accesses}, so it has no [nprocs <= 62] restriction (same
    semantics where both are defined; see DESIGN.md §2).

    What the online fold {e cannot} give you is anything requiring
    random access into the past: [Trace.regions_at], stall diagnosis
    over recent events, or the model checker's truncate/undo — keep a
    {!Cfc_runtime.Trace.t} sink for those (small n only).

    Memory is O(active set + completed fragments): per-process state is
    allocated lazily at a pid's first event, and the per-register
    holder tables grow with registers actually touched, never with
    [nprocs]. *)
module Online : sig
  type t

  val create : nprocs:int -> t

  val feed : t -> pid:int -> Event.body -> unit
  (** Consume one event.  [feed t] is a valid [Wheel.sink].  Events must
      arrive in emission order (the fold keeps its own implicit
      sequence numbering).  Raises [Invalid_argument] on an
      out-of-range pid. *)

  val feed_trace : t -> Trace.t -> unit
  (** Replay a recorded trace into the fold (the equivalence tests). *)

  val events_seen : t -> int

  val contention_free : t -> pid:int -> sample
  (** = {!mutex_contention_free} of the run so far. *)

  val per_process : t -> sample array
  (** = {!per_process_samples}.  Allocates O(nprocs); at large n prefer
      {!process_total}. *)

  val process_total : t -> pid:int -> sample
  (** One process's whole-run sample ({!per_process} cell), O(1). *)

  val wc_entries : t -> (int * sample) list
  (** = {!mutex_wc_entry}: completed §2.2 entry windows, trace order. *)

  val wc_exits : t -> (int * sample) list
  (** = {!mutex_wc_exit}. *)

  val recovery_paths : t -> (int * sample) list
  (** = {!recovery_paths}. *)

  val recovery_rmr : t -> (int * int) list
  (** = {!recovery_rmr}. *)

  val decisions : t -> (int * int) list
  (** = {!decisions}. *)

  val remote : t -> pid:int -> int
  (** = {!remote_accesses}[.(pid)], but valid at any [nprocs]. *)

  val remote_accesses : t -> int array
  (** = {!remote_accesses}.  Allocates O(nprocs). *)

  val touched : t -> Cfc_runtime.Register.t list
  (** Distinct registers accessed so far, in no particular order — the
      streaming harness resets exactly these between solo runs instead
      of scanning a trace. *)

  val touched_count : t -> int

  val spawned : t -> int
  (** Number of pids whose state has materialised (= pids seen). *)
end
