(** Measurement harness for mutual exclusion algorithms: builds the runs
    the paper's definitions quantify over and extracts the measures.

    Contention-free complexity is measured exactly: for each process a
    fresh instance is driven solo through one entry/critical/exit cycle
    (the unique contention-free run of a deterministic algorithm) and the
    maximum over processes is returned.  Worst-case complexity is
    estimated as a maximum over schedule families, with the provably
    unbounded entry cost demonstrated constructively by
    {!lamport_unbounded_entry}. *)

open Cfc_runtime
open Cfc_mutex

exception Critical_section_trampled of int
(** Raised by a checked process (argument: its pid) when the
    critical-section witness register no longer holds the value it just
    wrote — the constructive mutual-exclusion violation the model
    checker detects.  Exported so mirrors of the checked body (the
    analysis subjects) raise the same exception. *)

type cf_result = {
  max : Measures.sample;  (** componentwise max over processes *)
  per_process : Measures.sample array;
  atomicity_declared : int;  (** the algorithm's [atomicity params] *)
  atomicity_observed : int;  (** widest register actually allocated *)
}

val contention_free : Registry.alg -> Mutex_intf.params -> cf_result
(** Raises [Invalid_argument] if the algorithm does not support the
    parameters. *)

val contention_free_streaming : Registry.alg -> Mutex_intf.params -> cf_result
(** Same runs and same numbers as {!contention_free} (asserted by the
    test battery), but driven by the {!Wheel} with a streaming
    [Measures.Online] sink: no trace is materialised, only the measured
    process is ever spawned, and the between-runs reset touches exactly
    the registers the run accessed — per-run cost is O(solo path), not
    O(n).  Use this for large [n] (the EXP-SCALE sweeps). *)

val run :
  ?rounds:int ->
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  ?faults:Fault.plan ->
  pick:Schedule.picker ->
  Registry.alg ->
  Mutex_intf.params ->
  Runner.outcome
(** All [n] processes perform [rounds] (default 1) lock/unlock cycles
    under the given schedule; region annotations are added around entry,
    critical section and exit so traces support the §2.2 measures and the
    {!Spec} checkers. *)

val wc_estimate :
  ?rounds:int -> seeds:int list -> Registry.alg -> Mutex_intf.params ->
  entry:bool -> Measures.sample
(** Max over a schedule family (round-robin plus one random schedule per
    seed) of the §2.2 worst-case entry ([entry:true]) or exit fragments. *)

val system :
  ?rounds:int -> Registry.alg -> Mutex_intf.params ->
  unit -> Memory.t * (unit -> unit) array
(** A deterministic system builder (fresh memory + fresh region-annotated
    process closures on each call) — the input shape the model checker's
    replay needs. *)

val lamport_unbounded_entry : spin:int -> Measures.sample
(** The EXP-WC∞ construction: a 2-process run of Lamport's fast algorithm
    in which the winning process takes at least [spin] entry steps within
    a window where no process is in its critical section or exit code —
    evidence (growing without bound in [spin]) that the worst-case step
    complexity of mutual exclusion is infinite [AT92]. *)

val sample_pids : int -> int list
(** The processes {!contention_free} measures: all of them for [n <= 64],
    a deterministic spread (ends, powers of two and neighbours) beyond —
    the per-pid cost equality of the symmetric algorithms is asserted
    exhaustively at small [n] by the test suite. *)

val reset_touched : Memory.t -> Trace.t option -> unit
(** Restore initial values of the registers accessed in the given trace
    ([None]: reset the whole arena) — the cheap between-solo-runs reset
    shared with the other harnesses. *)
