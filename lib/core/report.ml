open Cfc_base
open Cfc_mutex

let fmtf = Printf.sprintf "%.2f"

let mutex_table_symbolic () =
  let t =
    Texttab.create ~header:[ "measure"; "lower bound"; "upper bound" ]
  in
  Texttab.add_row t
    [ "contention-free register"; "sqrt(log n / (l + log log n))  [Thm 2]";
      "3 ceil(log n / l)  [Thm 3]" ];
  Texttab.add_row t
    [ "contention-free step"; "log n / (l - 2 + 3 log log n)  [Thm 1]";
      "7 ceil(log n / l)  [Thm 3]" ];
  Texttab.add_row t
    [ "worst-case register"; "sqrt(log n / (l + log log n))  [Thm 2]";
      "O(log n)  [Kes82]" ];
  Texttab.add_row t [ "worst-case step"; "unbounded  [AT92]"; "-" ];
  t

let tree_depth ~n ~l = Tree.depth ~n ~l

let mutex_table ~n ~l =
  let p = { Mutex_intf.n; l } in
  let tree = Mutex_harness.contention_free Registry.tree p in
  let d = tree_depth ~n ~l in
  let kessels =
    Mutex_harness.wc_estimate ~seeds:[ 1; 2; 3 ] Registry.kessels_tournament
      (Mutex_intf.params n) ~entry:true
  in
  let unbounded = Mutex_harness.lamport_unbounded_entry ~spin:(50 * n) in
  let t =
    Texttab.create
      ~header:[ "measure"; "lower bound"; "measured";
                "paper upper (2^l nodes)"; "ours (2^l-1 nodes)"; "witness" ]
  in
  Texttab.add_row t
    [ "contention-free register";
      fmtf (Bounds.mutex_cf_register_lower ~n ~l);
      string_of_int tree.Mutex_harness.max.Measures.registers;
      string_of_int (Bounds.mutex_cf_register_upper ~n ~l);
      string_of_int (3 * d);
      "tree-lamport (Thm 3)" ];
  Texttab.add_row t
    [ "contention-free step";
      fmtf (Bounds.mutex_cf_step_lower ~n ~l);
      string_of_int tree.Mutex_harness.max.Measures.steps;
      string_of_int (Bounds.mutex_cf_step_upper ~n ~l);
      string_of_int (7 * d);
      "tree-lamport (Thm 3)" ];
  Texttab.add_row t
    [ "worst-case register";
      fmtf (Bounds.mutex_cf_register_lower ~n ~l);
      string_of_int kessels.Measures.registers;
      string_of_int (Bounds.mutex_wc_register_upper ~n) ^ " (4 log n)"; "-";
      "kessels tournament (Kes82), atomicity 1" ];
  Texttab.add_row t
    [ "worst-case step"; "unbounded (AT92)";
      Printf.sprintf ">= %d and growing" unbounded.Measures.steps; "-"; "-";
      Printf.sprintf "adversarial run, spin=%d" (50 * n) ];
  t

let thm_sweep ~ns ~ls =
  let t =
    Texttab.create
      ~header:[ "n"; "l"; "thm1 lower"; "tree cf steps"; "7ceil(logn/l)";
                "7d"; "thm2 lower"; "tree cf regs"; "3ceil(logn/l)"; "3d" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun l ->
          let p = { Mutex_intf.n; l } in
          if Tree.supports p then begin
            let r = Mutex_harness.contention_free Registry.tree p in
            let d = tree_depth ~n ~l in
            Texttab.add_row t
              [ string_of_int n; string_of_int l;
                fmtf (Bounds.mutex_cf_step_lower ~n ~l);
                string_of_int r.Mutex_harness.max.Measures.steps;
                string_of_int (Bounds.mutex_cf_step_upper ~n ~l);
                string_of_int (7 * d);
                fmtf (Bounds.mutex_cf_register_lower ~n ~l);
                string_of_int r.Mutex_harness.max.Measures.registers;
                string_of_int (Bounds.mutex_cf_register_upper ~n ~l);
                string_of_int (3 * d) ]
          end)
        ls;
      Texttab.add_sep t)
    ns;
  t

let naming_table_symbolic () =
  let t =
    Texttab.create
      ~header:
        ("measure"
        :: List.map (fun (c, _, _, _, _) -> c) Bounds.naming_table)
  in
  let row name get =
    Texttab.add_row t
      (name
      :: List.map
           (fun (_, cfr, cfs, wcr, wcs) ->
             Bounds.cell_to_string (get (cfr, cfs, wcr, wcs)))
           Bounds.naming_table)
  in
  row "c-f register" (fun (a, _, _, _) -> a);
  row "c-f step" (fun (_, b, _, _) -> b);
  row "w-c register" (fun (_, _, c, _) -> c);
  row "w-c step" (fun (_, _, _, d) -> d);
  t

(* Best measured value per column and measure among the column's
   algorithms. *)
let naming_measured ~n =
  List.map
    (fun (col, algs) ->
      let cf =
        List.filter_map
          (fun alg ->
            let (module A : Cfc_naming.Naming_intf.ALG) = alg in
            if A.supports ~n then
              Some (Naming_harness.contention_free alg ~n).Naming_harness.max
            else None)
          algs
      in
      let wc =
        List.filter_map
          (fun alg ->
            let (module A : Cfc_naming.Naming_intf.ALG) = alg in
            if A.supports ~n then
              Some (Naming_harness.wc_estimate ~seeds:[ 1; 2; 3 ] alg ~n)
            else None)
          algs
      in
      let best f = function
        | [] -> None  (* no algorithm in this column supports this n *)
        | xs -> Some (List.fold_left (fun acc s -> min acc (f s)) max_int xs)
      in
      ( col,
        best (fun s -> s.Measures.registers) cf,
        best (fun s -> s.Measures.steps) cf,
        best (fun s -> s.Measures.registers) wc,
        best (fun s -> s.Measures.steps) wc ))
    Cfc_naming.Registry.columns

let naming_table ~n =
  let measured = naming_measured ~n in
  let t =
    Texttab.create
      ~header:
        ("measure (theory/measured)"
        :: List.map (fun (c, _, _, _, _) -> c) Bounds.naming_table)
  in
  let cell theory meas =
    match meas with
    | Some v -> Printf.sprintf "%d / %d" (Bounds.cell_value theory ~n) v
    | None -> Printf.sprintf "%d / n/a" (Bounds.cell_value theory ~n)
  in
  let row name get_th get_ms =
    Texttab.add_row t
      (name
      :: List.map2
           (fun (_, cfr, cfs, wcr, wcs) (_, mcfr, mcfs, mwcr, mwcs) ->
             cell (get_th (cfr, cfs, wcr, wcs)) (get_ms (mcfr, mcfs, mwcr, mwcs)))
           Bounds.naming_table measured)
  in
  row "c-f register" (fun (a, _, _, _) -> a) (fun (a, _, _, _) -> a);
  row "c-f step" (fun (_, b, _, _) -> b) (fun (_, b, _, _) -> b);
  row "w-c register" (fun (_, _, c, _) -> c) (fun (_, _, c, _) -> c);
  row "w-c step" (fun (_, _, _, d) -> d) (fun (_, _, _, d) -> d);
  t

let naming_sweep ~ns =
  let t =
    Texttab.create
      ~header:[ "algorithm"; "n"; "cf steps"; "cf regs"; "wc steps (est)";
                "wc regs (est)" ]
  in
  List.iter
    (fun alg ->
      let (module A : Cfc_naming.Naming_intf.ALG) = alg in
      List.iter
        (fun n ->
          if A.supports ~n then begin
            let cf = Naming_harness.contention_free alg ~n in
            let wc = Naming_harness.wc_estimate ~seeds:[ 1; 2 ] alg ~n in
            Texttab.add_row t
              [ A.name; string_of_int n;
                string_of_int cf.Naming_harness.max.Measures.steps;
                string_of_int cf.Naming_harness.max.Measures.registers;
                string_of_int wc.Measures.steps;
                string_of_int wc.Measures.registers ]
          end)
        ns;
      Texttab.add_sep t)
    Cfc_naming.Registry.all;
  t

let detection_table ~ns ~ls =
  let t =
    Texttab.create
      ~header:[ "n"; "l"; "ceil(logn/l)"; "wc steps (measured)";
                "4*ceil(logn/l)"; "cf steps" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun l ->
          let p = { Mutex_intf.n; l } in
          let wc =
            Detect_harness.wc_estimate ~seeds:[ 1; 2; 3 ]
              Registry.splitter_tree p
          in
          let cf = Detect_harness.contention_free Registry.splitter_tree p in
          let d = Ixmath.ceil_div (Ixmath.ceil_log2 (max 2 n)) l in
          Texttab.add_row t
            [ string_of_int n; string_of_int l; string_of_int d;
              string_of_int wc.Measures.steps; string_of_int (4 * d);
              string_of_int cf.Detect_harness.max.Measures.steps ])
        ls)
    ns;
  t

let recoverable_table ~ns =
  (* Every recoverable lock in the registry (not a hard-coded one), each
     against its own closed forms; RMR is the recovery remote-reference
     count under the cold-cache model, uniform across crash points for
     both current locks.  A [stalled] count other than 0 is a
     recoverable-to-deadlocking regression. *)
  let t =
    Texttab.create
      ~header:[ "algorithm"; "n"; "cf steps (pred/meas)";
                "cf regs (pred/meas)"; "recovery held (pred/meas)";
                "recovery ~held (pred/meas)"; "recovery rmr (pred/meas)";
                "crash points"; "stalled" ]
  in
  List.iter
    (fun (module A : Mutex_intf.ALG) ->
      List.iter
        (fun n ->
          let p = Mutex_intf.params n in
          if A.supports p then begin
            let forms = Option.get (A.recovery p) in
            let cf = Mutex_harness.contention_free (module A : Mutex_intf.ALG) p in
            let sweep = Recovery_harness.solo_sweep (module A) p in
            (* The held/not-held columns use the same region mapping as
               the static recovery subjects: a crash in [Critical] is
               the held form, a crash in [Trying]/[Remainder] the
               not-held form.  Mid-exit crashes sit between the two
               (the release may or may not have completed) — they count
               toward the rmr column and the crash-point total, and the
               core tests assert each one matches one of the forms. *)
            let in_regions rs =
              List.filter
                (fun (pt : Recovery_harness.sweep_point) ->
                  List.mem pt.Recovery_harness.crash_region rs)
                sweep
            in
            let held = in_regions [ Cfc_runtime.Event.Critical ]
            and not_held =
              in_regions
                [ Cfc_runtime.Event.Trying; Cfc_runtime.Event.Remainder ]
            in
            let pm pred meas = Printf.sprintf "%d / %d" pred meas in
            let opt_pred = function Some v -> string_of_int v | None -> "-" in
            let max_rmr pts =
              List.fold_left
                (fun acc (pt : Recovery_harness.sweep_point) ->
                  match pt.Recovery_harness.outcome with
                  | Recovery_harness.Recovered { rmr; _ } -> max acc rmr
                  | Recovery_harness.Stalled -> acc)
                0 pts
            in
            Texttab.add_row t
              [ A.name; string_of_int n;
                Printf.sprintf "%s / %d"
                  (opt_pred (A.predicted_cf_steps p))
                  cf.Mutex_harness.max.Measures.steps;
                Printf.sprintf "%s / %d"
                  (opt_pred (A.predicted_cf_registers p))
                  cf.Mutex_harness.max.Measures.registers;
                pm forms.Mutex_intf.rec_steps_held
                  (Recovery_harness.max_path held).Measures.steps;
                pm forms.Mutex_intf.rec_steps_not_held
                  (Recovery_harness.max_path not_held).Measures.steps;
                pm
                  (max forms.Mutex_intf.rec_registers_held
                     forms.Mutex_intf.rec_registers_not_held)
                  (max_rmr sweep);
                string_of_int (List.length sweep);
                string_of_int (List.length (Recovery_harness.stalled sweep)) ]
          end)
        ns)
    Registry.recoverable;
  t

let faults_table ~alg ~n ~pairs ~seeds =
  let p = Mutex_intf.params n in
  let t =
    Texttab.create
      ~header:[ "seed"; "fault plan"; "stopped"; "steps"; "recoveries";
                "max recovery steps"; "safety" ]
  in
  let worst = ref None in
  List.iter
    (fun seed ->
      let out, plan, violation =
        Recovery_harness.chaos ~pairs ~seed alg p
      in
      (match (!worst, out.Cfc_runtime.Runner.stopped) with
      | None, (Cfc_runtime.Runner.Out_of_steps | Cfc_runtime.Runner.Picker_done)
        -> worst := Some out
      | _ -> ());
      let paths =
        Measures.recovery_paths out.Cfc_runtime.Runner.trace ~nprocs:n
      in
      Texttab.add_row t
        [ string_of_int seed;
          Format.asprintf "%a" Cfc_runtime.Fault.pp_plan plan;
          Format.asprintf "%a" Cfc_runtime.Runner.pp_stopped
            out.Cfc_runtime.Runner.stopped;
          string_of_int out.Cfc_runtime.Runner.total_steps;
          string_of_int (List.length paths);
          string_of_int
            (List.fold_left (fun acc (_, s) -> max acc s.Measures.steps) 0
               paths);
          (match violation with
          | None -> "ok"
          | Some v -> Format.asprintf "%a" Spec.pp_violation v) ])
    seeds;
  (t, !worst)

let unbounded_table ~spins =
  let t =
    Texttab.create
      ~header:[ "adversary spin parameter"; "winner entry steps" ]
  in
  List.iter
    (fun spin ->
      let s = Mutex_harness.lamport_unbounded_entry ~spin in
      Texttab.add_row t [ string_of_int spin; string_of_int s.Measures.steps ])
    spins;
  t
