open Cfc_runtime

type cf_result = { max : Measures.sample; per_process : Measures.sample array }

let instantiate (module A : Cfc_consensus.Consensus_intf.ALG) ~n ~inputs =
  if Array.length inputs <> n then
    invalid_arg "Consensus_harness: inputs length";
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module C = A.Make (M) in
  let inst = C.create ~n in
  let proc me () =
    Proc.region Event.Trying;
    let d = C.propose inst ~me ~value:inputs.(me) in
    Proc.decide d
  in
  (memory, proc)

let run ?max_steps ?crash_at ~pick (module A : Cfc_consensus.Consensus_intf.ALG)
    ~n ~inputs =
  let memory, proc = instantiate (module A) ~n ~inputs in
  Runner.run ?max_steps ?crash_at ~memory ~pick
    (Array.init n (fun me -> proc me))

let check (out : Runner.outcome) ~n ~inputs =
  let decisions = Measures.decisions out.Runner.trace ~nprocs:n in
  let invalid =
    List.filter
      (fun (_, v) -> not (Array.exists (Int.equal v) inputs))
      decisions
  in
  match invalid with
  | (pid, v) :: _ ->
    Some
      { Spec.at = Trace.length out.Runner.trace;
        pids = [ pid ];
        what = Printf.sprintf "decided %d, not any process's input" v }
  | [] -> (
    match decisions with
    | [] -> None
    | (_, first) :: rest -> (
      match List.filter (fun (_, v) -> v <> first) rest with
      | (pid, v) :: _ ->
        Some
          { Spec.at = Trace.length out.Runner.trace;
            pids = [ pid ];
            what = Printf.sprintf "disagreement: %d vs %d" v first }
      | [] ->
        if not out.Runner.completed then None
        else begin
          let undecided =
            List.filter
              (fun pid ->
                Scheduler.status out.Runner.scheduler pid = Scheduler.Halted
                && not (List.mem_assoc pid decisions))
              (List.init n Fun.id)
          in
          match undecided with
          | [] -> None
          | pids ->
            Some
              { Spec.at = Trace.length out.Runner.trace;
                pids;
                what = "halted without deciding" }
        end))

let contention_free (module A : Cfc_consensus.Consensus_intf.ALG) ~n ~inputs =
  let per_process =
    Array.init n (fun me ->
        let out = run ~pick:(Schedule.solo me) (module A) ~n ~inputs in
        (match
           List.assoc_opt me (Measures.decisions out.Runner.trace ~nprocs:n)
         with
        | Some v when v = inputs.(me) -> ()
        | Some v ->
          invalid_arg
            (Printf.sprintf "%s: solo process decided %d, input was %d" A.name
               v inputs.(me))
        | None -> invalid_arg (A.name ^ ": solo process undecided"));
        Measures.naming_process out.Runner.trace ~nprocs:n ~pid:me)
  in
  { max = Array.fold_left Measures.max_sample Measures.zero per_process;
    per_process }

let system alg ~n ~inputs () =
  let (module A : Cfc_consensus.Consensus_intf.ALG) = alg in
  let memory, proc = instantiate (module A) ~n ~inputs in
  (memory, Array.init n (fun me -> proc me))
