(** Measurement harness for the crash–recovery fault model: drives runs
    with injected crash/recover points and extracts the §2.2-style
    recovery-path measures via {!Measures.recovery_paths} — no ad-hoc
    counting.

    The central object is the {e solo crash-point sweep}: for every step
    [k] of a process's solo lock/unlock cycle, run it again with an
    atomic crash–restart injected just before its [k]-th access and
    measure the restarted incarnation's path back into the critical
    section.  For a recoverable lock this yields the exact recovery cost
    as a function of where the crash hit (holding the lock vs not). *)

open Cfc_runtime
open Cfc_mutex

type sweep_point = {
  crash_step : int;  (** scheduler step the crash was injected before *)
  crash_region : Event.region;  (** the region the process died in *)
  path : Measures.sample;  (** measures of its recovery path *)
}

val pp_sweep_point : Format.formatter -> sweep_point -> unit

val solo_sweep :
  ?rounds:int -> ?pid:int -> Registry.alg -> Mutex_intf.params ->
  sweep_point list
(** [solo_sweep alg p]: run [pid] (default 0) solo once per crash point
    [k = 0 .. solo steps - 1] with faults [crash@k; recover@k], and
    return one point per run in which the restarted incarnation completed
    a recovery path (re-entered the critical section).  [k = 0] is the
    "crashed before its first step" edge case.  Requires the lock to be
    recoverable — a non-recoverable lock deadlocks after restart and
    contributes no points (the runs are step-bounded, not hanging). *)

val max_path : sweep_point list -> Measures.sample
(** Componentwise maximum of the measured recovery paths. *)

val split_held : sweep_point list -> sweep_point list * sweep_point list
(** Partition into crashes that hit while (possibly) holding the lock
    (regions [Critical]/[Exiting]) and the rest. *)

val chaos :
  ?rounds:int -> ?pairs:int -> ?max_steps:int -> seed:int ->
  Registry.alg -> Mutex_intf.params ->
  Runner.outcome * Fault.plan * Spec.violation option
(** One seeded chaos run: all [n] processes under round-robin with a
    {!Fault.chaos} schedule of [pairs] (default 2) crash–recovery pairs.
    Returns the outcome, the injected plan, and the first violation of
    {!Spec.mutual_exclusion_recoverable} (a process error, e.g. the
    critical-section witness, also reports as a violation). *)
