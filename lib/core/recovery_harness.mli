(** Measurement harness for the crash–recovery fault model: drives runs
    with injected crash/recover points and extracts the §2.2-style
    recovery-path measures via {!Measures.recovery_paths} and
    {!Measures.recovery_rmr} — no ad-hoc counting.

    The central object is the {e solo crash-point sweep}: for every step
    [k] of a process's solo lock/unlock cycle, run it again with an
    atomic crash–restart injected just before its [k]-th access and
    measure the restarted incarnation's path back into the critical
    section.  For a recoverable lock this yields the exact recovery cost
    as a function of where the crash hit (holding the lock vs not); for
    a non-recoverable lock the points come back {!Stalled}.  The
    {e double sweep} re-crashes the restarted incarnation at every step
    of its recovery path, so recoverability of the recovery code itself
    is exercised, not assumed. *)

open Cfc_runtime
open Cfc_mutex

(** What the restarted incarnation did after the (last) crash. *)
type recovery =
  | Recovered of { path : Measures.sample; rmr : int }
      (** It re-entered the critical section; [path] are the measures of
          its recovery fragment, [rmr] its remote references under the
          cold-cache write-invalidate model. *)
  | Stalled
      (** It never re-entered the critical section before the run's step
          bound — the deadlocking outcome a recoverable lock must never
          produce. *)

type sweep_point = {
  crash_step : int;  (** scheduler step the crash was injected before *)
  crash_region : Event.region;  (** the region the process died in *)
  outcome : recovery;
}

type double_point = {
  first_crash : int;
  second_crash : int;  (** scheduler step of the re-crash (absolute) *)
  second_region : Event.region;  (** where the re-crash hit — [Trying]
      points here are crashes inside the recovery path itself *)
  final : recovery;  (** outcome of the last incarnation *)
}

val pp_recovery : Format.formatter -> recovery -> unit
val pp_sweep_point : Format.formatter -> sweep_point -> unit
val pp_double_point : Format.formatter -> double_point -> unit

val solo_sweep :
  ?rounds:int -> ?pid:int -> Registry.alg -> Mutex_intf.params ->
  sweep_point list
(** [solo_sweep alg p]: run [pid] (default 0) solo once per crash point
    [k = 0 .. solo steps - 1] with faults [crash@k; recover@k], and
    return one point per run in which the crash fired ([k = 0] is the
    "crashed before its first step" edge case).  A restarted incarnation
    that completed a recovery path yields [Recovered]; one that never
    re-entered the critical section (the runs are step-bounded, not
    hanging) yields [Stalled] — so a regression from recoverable to
    deadlocking is a visible point, not an empty list. *)

val double_sweep :
  ?rounds:int -> ?pid:int -> ?window:int -> Registry.alg ->
  Mutex_intf.params -> double_point list
(** Repeated-incarnation sweep: for every first crash point [k] and
    every offset [d = 1 .. window] (default: solo steps + 2), inject
    [crash@k; recover@k; crash@k+d; recover@k+d] and report the last
    incarnation's outcome.  Small [d] re-crashes the first restarted
    incarnation {e inside its recovery path}; larger [d] re-crashes it
    after a completed recovery.  Points whose second crash fell beyond
    the run's halt are omitted (nothing new runs there). *)

val max_path : sweep_point list -> Measures.sample
(** Componentwise maximum of the measured recovery paths over the
    [Recovered] points. *)

val stalled : sweep_point list -> sweep_point list
(** The [Stalled] points — empty exactly when every crash point
    recovered. *)

val split_held : sweep_point list -> sweep_point list * sweep_point list
(** Partition into crashes that hit while (possibly) holding the lock
    (regions [Critical]/[Exiting]) and the rest. *)

val chaos :
  ?rounds:int -> ?pairs:int -> ?max_steps:int -> seed:int ->
  Registry.alg -> Mutex_intf.params ->
  Runner.outcome * Fault.plan * Spec.violation option
(** One seeded chaos run: all [n] processes under round-robin with a
    {!Fault.chaos} schedule of [pairs] (default 2) crash–recovery pairs.
    Returns the outcome, the injected plan, and the first violation of
    {!Spec.mutual_exclusion_recoverable} (a process error, e.g. the
    critical-section witness, also reports as a violation). *)
