(** Harness for one-shot renaming: contention-free measurement (solo
    runs), participation-bounded runs (only [k] of [n] processes take
    steps — the adaptivity the name-space bound quantifies over), crash
    injection, and uniqueness checking. *)

open Cfc_runtime

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
  names : int array;  (** name obtained by each process in its solo run *)
}

val contention_free : Cfc_renaming.Registry.alg -> n:int -> cf_result
(** Solo run per process on fresh shared state. *)

val run :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  ?participants:int list ->
  pick:Schedule.picker ->
  Cfc_renaming.Registry.alg ->
  n:int ->
  Runner.outcome
(** Run renaming with the given participants (default: everyone);
    non-participants never start — they are simply never scheduled,
    which the solo/sequential/random-over-participants picker realizes
    via an explicit participant filter. *)

val check :
  Runner.outcome -> n:int -> k:int ->
  bound:(n:int -> k:int -> int) -> Spec.violation option
(** Names of decided processes are distinct and within [1..bound ~n ~k]. *)

val system :
  Cfc_renaming.Registry.alg -> n:int ->
  unit -> Memory.t * (unit -> unit) array
(** Deterministic system builder for the model checker. *)
