open Cfc_runtime
open Cfc_mutex

type recovery =
  | Recovered of { path : Measures.sample; rmr : int }
  | Stalled

type sweep_point = {
  crash_step : int;
  crash_region : Event.region;
  outcome : recovery;
}

type double_point = {
  first_crash : int;
  second_crash : int;
  second_region : Event.region;
  final : recovery;
}

let pp_recovery ppf = function
  | Recovered { path; rmr } ->
    Format.fprintf ppf "%a rmr=%d" Measures.pp_sample path rmr
  | Stalled -> Format.fprintf ppf "STALLED"

let pp_sweep_point ppf p =
  Format.fprintf ppf "crash@@%d (%a): %a" p.crash_step Event.pp_region
    p.crash_region pp_recovery p.outcome

let pp_double_point ppf p =
  Format.fprintf ppf "crash@@%d+%d (%a): %a" p.first_crash p.second_crash
    Event.pp_region p.second_region pp_recovery p.final

(* Sequence numbers of [pid]'s Crash events, in trace order. *)
let crash_seqs trace ~pid =
  List.rev
    (Trace.fold
       (fun acc e ->
         match e.Event.body with
         | Event.Crash when e.Event.pid = pid -> e.Event.seq :: acc
         | _ -> acc)
       [] trace)

(* The outcome of the recovery opened by [pid]'s last Recover: its path
   and RMR if it completed (re-entered the critical section), [Stalled]
   otherwise.  [recovery_paths] reports only completed recoveries, so
   "the last one completed" is detected by comparing the pid's last
   Critical entry against its last Recover. *)
let last_recovery trace ~nprocs ~pid =
  let last_recover, last_critical =
    Trace.fold
      (fun (r, c) e ->
        if e.Event.pid <> pid then (r, c)
        else
          match e.Event.body with
          | Event.Recover -> (e.Event.seq, c)
          | Event.Region_change Event.Critical -> (r, e.Event.seq)
          | _ -> (r, c))
      (-1, -1) trace
  in
  if last_critical < last_recover then Stalled
  else
    let paths =
      List.filter (fun (p, _) -> p = pid) (Measures.recovery_paths trace ~nprocs)
    and rmrs =
      List.filter (fun (p, _) -> p = pid) (Measures.recovery_rmr trace ~nprocs)
    in
    match (List.rev paths, List.rev rmrs) with
    | (_, path) :: _, (_, rmr) :: _ -> Recovered { path; rmr }
    | _ -> Stalled

let solo_sweep ?(rounds = 1) ?(pid = 0) alg (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let pick () = Schedule.solo pid in
  (* Crash-free reference run: its access count bounds the useful crash
     points (crashing a halted process is a no-op). *)
  let baseline = Mutex_harness.run ~rounds ~pick:(pick ()) alg p in
  let total = baseline.Runner.total_steps in
  List.filter_map
    (fun crash_step ->
      let faults =
        [ Fault.crash ~step:crash_step ~pid;
          Fault.recover ~step:crash_step ~pid ]
      in
      let out = Mutex_harness.run ~rounds ~faults ~pick:(pick ()) alg p in
      match crash_seqs out.Runner.trace ~pid with
      | [] -> None (* the crash never fired: not a run of the sweep *)
      | seq :: _ ->
        let crash_region =
          (Trace.regions_at out.Runner.trace seq ~nprocs:n).(pid)
        in
        (* A restarted incarnation that never re-enters the critical
           section — a recoverable-to-deadlocking regression — must be a
           visible [Stalled] point, not a silently dropped run. *)
        let outcome = last_recovery out.Runner.trace ~nprocs:n ~pid in
        Some { crash_step; crash_region; outcome })
    (List.init total Fun.id)

let double_sweep ?(rounds = 1) ?(pid = 0) ?window alg (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let pick () = Schedule.solo pid in
  let baseline = Mutex_harness.run ~rounds ~pick:(pick ()) alg p in
  let total = baseline.Runner.total_steps in
  (* The second crash lands up to [window] scheduler steps after the
     first — far enough to hit every step of the restarted incarnation's
     recovery path (and a little beyond, crashing just after it). *)
  let window = match window with Some w -> w | None -> total + 2 in
  List.concat_map
    (fun first_crash ->
      List.filter_map
        (fun d ->
          let second = first_crash + d in
          let faults =
            [ Fault.crash ~step:first_crash ~pid;
              Fault.recover ~step:first_crash ~pid;
              Fault.crash ~step:second ~pid;
              Fault.recover ~step:second ~pid ]
          in
          let out = Mutex_harness.run ~rounds ~faults ~pick:(pick ()) alg p in
          match crash_seqs out.Runner.trace ~pid with
          | [ _; seq2 ] ->
            let second_region =
              (Trace.regions_at out.Runner.trace seq2 ~nprocs:n).(pid)
            in
            let final = last_recovery out.Runner.trace ~nprocs:n ~pid in
            Some { first_crash; second_crash = second; second_region; final }
          | _ -> None (* the second crash fell past the halt: no new run *))
        (List.init window (fun d -> d + 1)))
    (List.init total Fun.id)

let max_path points =
  List.fold_left
    (fun acc p ->
      match p.outcome with
      | Recovered { path; _ } -> Measures.max_sample acc path
      | Stalled -> acc)
    Measures.zero points

let stalled points =
  List.filter (fun p -> p.outcome = Stalled) points

let split_held points =
  (* A crash is "held" when the dying incarnation had reached its
     critical section and not yet completed the exit protocol: regions
     Critical and Exiting.  (Whether the lock is semantically still held
     in Exiting depends on how far the release got — the per-point
     region plus measured path make that visible.) *)
  List.partition
    (fun p ->
      match p.crash_region with
      | Event.Critical | Event.Exiting -> true
      | Event.Remainder | Event.Trying | Event.Decided _ | Event.Halted ->
        false)
    points

let chaos ?(rounds = 2) ?(pairs = 2) ?max_steps ~seed alg
    (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let memory, procs = Mutex_harness.system ~rounds alg p () in
  (* Spread the fault points over a horizon proportional to the fault-free
     run length so early and late crashes both occur across seeds. *)
  let horizon = max 1 (20 * n * rounds) in
  let plan = Fault.chaos ~seed ~nprocs:n ~pairs ~horizon in
  let max_steps =
    match max_steps with Some m -> m | None -> 10_000 * n * rounds
  in
  let out, err =
    Runner.run_collect ~max_steps ~faults:plan ~memory
      ~pick:(Schedule.round_robin ()) procs
  in
  let violation =
    match err with
    | Some e ->
      Some
        { Spec.at = Trace.length out.Runner.trace;
          pids = [];
          what = "process error: " ^ Printexc.to_string e }
    | None -> Spec.mutual_exclusion_recoverable out.Runner.trace ~nprocs:n
  in
  (* Streaming equivalence gate: every chaos run doubles as a check that
     the online fold and monitor agree exactly with the materialised
     measures on a recovery-heavy trace.  A divergence here is a bug in
     Measures.Online or Spec.Monitor, not in the algorithm under test. *)
  let online = Measures.Online.create ~nprocs:n in
  Measures.Online.feed_trace online out.Runner.trace;
  let monitor = Spec.Monitor.mutual_exclusion_recoverable () in
  Trace.iter
    (fun e -> Spec.Monitor.feed monitor ~pid:e.Event.pid e.Event.body)
    out.Runner.trace;
  let gate what equal =
    if not equal then
      invalid_arg
        ("Recovery_harness.chaos: streaming measures diverge from the \
          materialised trace on " ^ what)
  in
  gate "recovery_paths"
    (Measures.Online.recovery_paths online
    = Measures.recovery_paths out.Runner.trace ~nprocs:n);
  gate "recovery_rmr"
    (Measures.Online.recovery_rmr online
    = Measures.recovery_rmr out.Runner.trace ~nprocs:n);
  gate "mutual_exclusion_recoverable"
    (Spec.Monitor.result monitor
    = Spec.mutual_exclusion_recoverable out.Runner.trace ~nprocs:n);
  (out, plan, violation)
