open Cfc_runtime
open Cfc_mutex

type sweep_point = {
  crash_step : int;
  crash_region : Event.region;
  path : Measures.sample;
}

let pp_sweep_point ppf p =
  Format.fprintf ppf "crash@@%d (%a): %a" p.crash_step Event.pp_region
    p.crash_region Measures.pp_sample p.path

let solo_sweep ?(rounds = 1) ?(pid = 0) alg (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let pick () = Schedule.solo pid in
  (* Crash-free reference run: its access count bounds the useful crash
     points (crashing a halted process is a no-op). *)
  let baseline = Mutex_harness.run ~rounds ~pick:(pick ()) alg p in
  let total = baseline.Runner.total_steps in
  List.filter_map
    (fun crash_step ->
      let faults =
        [ Fault.crash ~step:crash_step ~pid;
          Fault.recover ~step:crash_step ~pid ]
      in
      let out = Mutex_harness.run ~rounds ~faults ~pick:(pick ()) alg p in
      (* Locate the crash to report the region the process died in. *)
      let crash_seq =
        Trace.fold
          (fun acc e ->
            match (acc, e.Event.body) with
            | None, Event.Crash when e.Event.pid = pid -> Some e.Event.seq
            | _ -> acc)
          None out.Runner.trace
      in
      match
        (crash_seq, Measures.recovery_paths out.Runner.trace ~nprocs:n)
      with
      | Some seq, (p', path) :: _ when p' = pid ->
        let crash_region =
          (Trace.regions_at out.Runner.trace seq ~nprocs:n).(pid)
        in
        Some { crash_step; crash_region; path }
      | _ -> None)
    (List.init total Fun.id)

let max_path points =
  List.fold_left
    (fun acc p -> Measures.max_sample acc p.path)
    Measures.zero points

let split_held points =
  (* A crash is "held" when the dying incarnation had reached its
     critical section and not yet completed the exit protocol: regions
     Critical and Exiting.  (Whether the lock is semantically still held
     in Exiting depends on how far the release got — the per-point
     region plus measured path make that visible.) *)
  List.partition
    (fun p ->
      match p.crash_region with
      | Event.Critical | Event.Exiting -> true
      | Event.Remainder | Event.Trying | Event.Decided _ | Event.Halted ->
        false)
    points

let chaos ?(rounds = 2) ?(pairs = 2) ?max_steps ~seed alg
    (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let memory, procs = Mutex_harness.system ~rounds alg p () in
  (* Spread the fault points over a horizon proportional to the fault-free
     run length so early and late crashes both occur across seeds. *)
  let horizon = max 1 (20 * n * rounds) in
  let plan = Fault.chaos ~seed ~nprocs:n ~pairs ~horizon in
  let max_steps =
    match max_steps with Some m -> m | None -> 10_000 * n * rounds
  in
  let out, err =
    Runner.run_collect ~max_steps ~faults:plan ~memory
      ~pick:(Schedule.round_robin ()) procs
  in
  let violation =
    match err with
    | Some e ->
      Some
        { Spec.at = Trace.length out.Runner.trace;
          pids = [];
          what = "process error: " ^ Printexc.to_string e }
    | None -> Spec.mutual_exclusion_recoverable out.Runner.trace ~nprocs:n
  in
  (out, plan, violation)
