open Cfc_runtime
open Cfc_mutex

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
  atomicity_declared : int;
  atomicity_observed : int;
}

let instantiate (module D : Mutex_intf.DETECTOR) (p : Mutex_intf.params) =
  if not (D.supports p) then
    invalid_arg
      (Printf.sprintf "%s does not support n=%d l=%d" D.name p.Mutex_intf.n
         p.Mutex_intf.l);
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module D' = D.Make (M) in
  let inst = D'.create p in
  let proc ~me () =
    Proc.region Event.Trying;
    let alone = D'.detect inst ~me in
    Proc.decide (if alone then 1 else 0)
  in
  (memory, proc)

let contention_free (module D : Mutex_intf.DETECTOR) (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let memory, proc = instantiate (module D) p in
  let observed = Memory.max_width memory in
  let procs = Array.init n (fun i -> proc ~me:i) in
  let prev = ref None in
  let per_process =
    List.map
      (fun me ->
        Mutex_harness.reset_touched memory !prev;
        let out = Runner.run ~memory ~pick:(Schedule.solo me) procs in
        prev := Some out.Runner.trace;
        (match Spec.solo_wins out.Runner.trace ~nprocs:n ~pid:me with
        | None -> ()
        | Some v ->
          invalid_arg (Format.asprintf "%s: %a" D.name Spec.pp_violation v));
        Measures.naming_process out.Runner.trace ~nprocs:n ~pid:me)
      (Mutex_harness.sample_pids n)
    |> Array.of_list
  in
  {
    max = Array.fold_left Measures.max_sample Measures.zero per_process;
    per_process;
    atomicity_declared = D.atomicity p;
    atomicity_observed = observed;
  }

let system (module D : Mutex_intf.DETECTOR) (p : Mutex_intf.params) () =
  let memory, proc = instantiate (module D) p in
  (memory, Array.init p.Mutex_intf.n (fun me -> proc ~me))

let run ?max_steps ?crash_at ~pick (module D : Mutex_intf.DETECTOR)
    (p : Mutex_intf.params) =
  let memory, proc = instantiate (module D) p in
  let procs = Array.init p.Mutex_intf.n (fun me -> proc ~me) in
  Runner.run ?max_steps ?crash_at ~memory ~pick procs

let wc_estimate ~seeds detector (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  (* Detectors are wait-free (O(log n / l) steps each), so a budget linear
     in n with generous headroom guarantees the run completes — the
     default 1M would silently truncate large-n estimates. *)
  let max_steps = max 1_000_000 (200 * n) in
  let sample_of out =
    if not out.Runner.completed then
      invalid_arg "Detect_harness.wc_estimate: step budget exhausted";
    Array.fold_left Measures.max_sample Measures.zero
      (Measures.per_process_samples out.Runner.trace ~nprocs:n)
  in
  let with_pick mk = sample_of (run ~max_steps ~pick:(mk ()) detector p) in
  let base = with_pick Schedule.round_robin in
  List.fold_left
    (fun acc seed ->
      Measures.max_sample acc (with_pick (fun () -> Schedule.random ~seed)))
    base seeds
