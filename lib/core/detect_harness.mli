(** Harness for the contention detection problem (§2.3): solo runs (the
    winner obligation and the contention-free measures) and contended runs
    (the at-most-one-winner obligation, worst-case measures — detectors
    are wait-free so the worst case is bounded, unlike mutex). *)

open Cfc_runtime
open Cfc_mutex

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
  atomicity_declared : int;
  atomicity_observed : int;
}

val contention_free : Registry.detector -> Mutex_intf.params -> cf_result
(** Solo run per process; raises [Invalid_argument] if some solo process
    fails to decide 1 (a correctness violation, per the problem spec). *)

val run :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  pick:Schedule.picker ->
  Registry.detector ->
  Mutex_intf.params ->
  Runner.outcome
(** All [n] processes run the detector once; each decides 0 or 1. *)

val system :
  Registry.detector -> Mutex_intf.params ->
  unit -> Memory.t * (unit -> unit) array
(** Deterministic system builder for the model checker's replay. *)

val wc_estimate :
  seeds:int list -> Registry.detector -> Mutex_intf.params ->
  Measures.sample
(** Max per-process sample over round-robin and seeded random schedules
    with all processes competing. *)
