(** The closed-form bounds of Theorems 1–7, exactly as stated in the
    paper, plus the Lemma 3 / Lemma 6 inequalities they are derived from.

    All logarithms are base 2.  Lower-bound functions return floats (the
    theorems assert strict inequalities over reals); upper bounds are the
    integer costs of the explicit algorithms.  Functions are total: where
    a formula's denominator is nonpositive (tiny [n]) the lower bound
    degenerates and we return [0.], matching the theorem's vacuous truth
    there. *)

val mutex_cf_step_lower : n:int -> l:int -> float
(** Theorem 1: every (weak) deadlock-free mutual exclusion algorithm has
    contention-free step complexity [c > log n / (l - 2 + 3 log log n)]. *)

val mutex_cf_register_lower : n:int -> l:int -> float
(** Theorem 2: contention-free register complexity
    [c >= sqrt (log n / (l + log log n))]. *)

val mutex_cf_step_upper : n:int -> l:int -> int
(** Theorem 3, as stated: [7 ⌈log n / l⌉]. *)

val mutex_cf_register_upper : n:int -> l:int -> int
(** Theorem 3, as stated: [3 ⌈log n / l⌉]. *)

val mutex_wc_register_upper : n:int -> int
(** The [Kes82] entry of the mutex table: O(log n) worst-case register
    complexity with atomicity 1; we return our Kessels-tournament's exact
    register count [4 ⌈log n⌉] as the concrete witness constant. *)

val bits_accessed_lower : n:int -> l:int -> float
(** The §2.4 corollary: in every algorithm with atomicity [l] and
    contention-free step complexity [c], some process accesses at least
    [l + c - 1] shared bits without contention; with [c] at its Theorem 1
    minimum this is [l - 1 + log n / (l - 2 + 3 log log n)]. *)

val lemma3_holds : n:int -> l:int -> r:int -> w:int -> bool
(** The Lemma 3 inequality [w·l + w·log(w²r + wr²) >= log n] that every
    correct contention detector's contention-free read-register
    complexity [r] and write-step complexity [w] must satisfy.  Returns
    whether the inequality holds for the given measured values (measured
    values from a correct algorithm must satisfy it). *)

val lemma6_holds : n:int -> l:int -> c:int -> w:int -> bool
(** The Lemma 6 inequality [n < 2w!·(4c·w!)^c·(w·2^(lw))^w] relating the
    contention-free register complexity [c] and write-register complexity
    [w] of contention detection.  Computed in floating point with
    saturation (large arguments trivially satisfy it). *)

(** {1 Naming bounds (Theorems 4–7 and the naming table)} *)

val naming_lower_cf_registers : n:int -> float
(** Theorem 5: in every model, contention-free register complexity of
    naming is at least [log n]. *)

val naming_wc_steps_no_taf : n:int -> int
(** Theorem 6: without test-and-flip, worst-case step complexity is at
    least [n - 1]. *)

val naming_tas_only_cf_registers : n:int -> int
(** Theorem 7: with test-and-set only, contention-free register
    complexity is at least [n - 1]. *)

(** One cell of the paper's naming table. *)
type cell = Linear  (** the [n - 1] entry *) | Log  (** the [log n] entry *)

val cell_value : cell -> n:int -> int
val cell_to_string : cell -> string

val naming_table : (string * cell * cell * cell * cell) list
(** The paper's "tight bounds for naming" table: for each model column,
    (contention-free register, contention-free step, worst-case register,
    worst-case step). *)
