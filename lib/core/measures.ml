open Cfc_runtime

type sample = {
  steps : int;
  registers : int;
  read_steps : int;
  write_steps : int;
  read_registers : int;
  write_registers : int;
}

let zero =
  { steps = 0; registers = 0; read_steps = 0; write_steps = 0;
    read_registers = 0; write_registers = 0 }

let max_sample a b =
  {
    steps = max a.steps b.steps;
    registers = max a.registers b.registers;
    read_steps = max a.read_steps b.read_steps;
    write_steps = max a.write_steps b.write_steps;
    read_registers = max a.read_registers b.read_registers;
    write_registers = max a.write_registers b.write_registers;
  }

let pp_sample ppf s =
  Format.fprintf ppf "steps=%d regs=%d (r/w steps %d/%d, r/w regs %d/%d)"
    s.steps s.registers s.read_steps s.write_steps s.read_registers
    s.write_registers

(* Accumulate a sample from a list of (register, kind) accesses. *)
let of_accesses accesses =
  let seen = Hashtbl.create 16 in
  let seen_r = Hashtbl.create 16 in
  let seen_w = Hashtbl.create 16 in
  let steps = ref 0 and reads = ref 0 and writes = ref 0 in
  List.iter
    (fun (reg, kind) ->
      incr steps;
      Hashtbl.replace seen reg.Register.id ();
      if Event.is_write kind then begin
        incr writes;
        Hashtbl.replace seen_w reg.Register.id ()
      end
      else begin
        incr reads;
        Hashtbl.replace seen_r reg.Register.id ()
      end)
    accesses;
  {
    steps = !steps;
    registers = Hashtbl.length seen;
    read_steps = !reads;
    write_steps = !writes;
    read_registers = Hashtbl.length seen_r;
    write_registers = Hashtbl.length seen_w;
  }

let in_regions trace ~nprocs ~pid ~in_region =
  let accesses =
    Trace.fold_states ~nprocs
      (fun acc regions e ->
        match e.Event.body with
        | Event.Access (r, k) when e.Event.pid = pid && in_region regions.(pid)
          -> (r, k) :: acc
        | Event.Access _ | Event.Region_change _ | Event.Crash | Event.Recover -> acc)
      [] trace
  in
  of_accesses (List.rev accesses)

let mutex_contention_free trace ~nprocs ~pid =
  in_regions trace ~nprocs ~pid ~in_region:(function
    | Event.Trying | Event.Exiting -> true
    | Event.Remainder | Event.Critical | Event.Decided _ | Event.Halted ->
      false)

(* Worst-case entry fragments.  Scan once; for each pid track the sequence
   number after which it (re-)entered Trying, and globally the last state
   in which some process occupied its critical section or exit code.  When
   pid moves Trying -> Critical at event j, the valid window starts after
   both. *)
let mutex_wc_entry trace ~nprocs =
  let entered = Array.make nprocs (-1) in
  let last_occupied = ref (-1) in
  let out = ref [] in
  let occupied regions =
    Array.exists
      (function Event.Critical | Event.Exiting -> true | _ -> false)
      regions
  in
  let (_ : unit) =
    Trace.fold_states ~nprocs
      (fun () regions e ->
        if occupied regions then last_occupied := e.Event.seq;
        match e.Event.body with
        | Event.Region_change Event.Trying -> entered.(e.Event.pid) <- e.Event.seq
        | Event.Region_change Event.Critical
          when Event.region_equal regions.(e.Event.pid) Event.Trying ->
          let pid = e.Event.pid in
          let from = max (entered.(pid) + 1) (!last_occupied + 1) in
          let accesses = Trace.accesses_of ~from ~until:e.Event.seq ~pid trace in
          out := (pid, of_accesses accesses) :: !out
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> ())
      () trace
  in
  List.rev !out

let mutex_wc_exit trace ~nprocs =
  let entered_exit = Array.make nprocs (-1) in
  let out = ref [] in
  let (_ : unit) =
    Trace.fold_states ~nprocs
      (fun () regions e ->
        match e.Event.body with
        | Event.Region_change Event.Exiting ->
          entered_exit.(e.Event.pid) <- e.Event.seq
        | Event.Region_change _
          when Event.region_equal regions.(e.Event.pid) Event.Exiting ->
          let pid = e.Event.pid in
          let from = entered_exit.(pid) + 1 in
          let accesses = Trace.accesses_of ~from ~until:e.Event.seq ~pid trace in
          out := (pid, of_accesses accesses) :: !out
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> ())
      () trace
  in
  List.rev !out

let per_process_samples trace ~nprocs =
  let steps = Array.make nprocs 0
  and reads = Array.make nprocs 0
  and writes = Array.make nprocs 0 in
  let seen = Array.init nprocs (fun _ -> Hashtbl.create 8) in
  let seen_r = Array.init nprocs (fun _ -> Hashtbl.create 8) in
  let seen_w = Array.init nprocs (fun _ -> Hashtbl.create 8) in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        steps.(pid) <- steps.(pid) + 1;
        Hashtbl.replace seen.(pid) r.Register.id ();
        if Event.is_write k then begin
          writes.(pid) <- writes.(pid) + 1;
          Hashtbl.replace seen_w.(pid) r.Register.id ()
        end
        else begin
          reads.(pid) <- reads.(pid) + 1;
          Hashtbl.replace seen_r.(pid) r.Register.id ()
        end
      | Event.Region_change _ | Event.Crash | Event.Recover -> ())
    trace;
  Array.init nprocs (fun pid ->
      {
        steps = steps.(pid);
        registers = Hashtbl.length seen.(pid);
        read_steps = reads.(pid);
        write_steps = writes.(pid);
        read_registers = Hashtbl.length seen_r.(pid);
        write_registers = Hashtbl.length seen_w.(pid);
      })

let naming_process trace ~nprocs ~pid =
  ignore nprocs;
  of_accesses (Trace.accesses_of ~pid trace)

let remote_accesses trace ~nprocs =
  let remote = Array.make nprocs 0 in
  (* valid.(register id) = set of pids holding a valid copy, as a bitmask
     (nprocs <= 62 gets the fast path; beyond that a hashtable of pairs
     would be needed — the harnesses only use this for small n). *)
  if nprocs > 62 then invalid_arg "remote_accesses: nprocs > 62";
  let valid = Hashtbl.create 64 in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        let holders =
          Option.value ~default:0 (Hashtbl.find_opt valid r.Register.id)
        in
        if holders land (1 lsl pid) = 0 then
          remote.(pid) <- remote.(pid) + 1;
        let holders' =
          if Event.is_write k then 1 lsl pid
          else holders lor (1 lsl pid)
        in
        Hashtbl.replace valid r.Register.id holders'
      | Event.Region_change _ | Event.Crash | Event.Recover -> ())
    trace;
  remote

let recovery_paths trace ~nprocs =
  ignore nprocs;
  (* pid -> sequence number of its currently open Recover event *)
  let open_at = Hashtbl.create 8 in
  let out = ref [] in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Recover -> Hashtbl.replace open_at e.Event.pid e.Event.seq
      | Event.Crash ->
        (* Crashed again before completing the recovery: the fragment is
           abandoned; a fresh one opens at the next Recover. *)
        Hashtbl.remove open_at e.Event.pid
      | Event.Region_change Event.Critical -> (
        match Hashtbl.find_opt open_at e.Event.pid with
        | Some from ->
          Hashtbl.remove open_at e.Event.pid;
          let accesses =
            Trace.accesses_of ~from:(from + 1) ~until:e.Event.seq
              ~pid:e.Event.pid trace
          in
          out := (e.Event.pid, of_accesses accesses) :: !out
        | None -> ())
      | Event.Region_change _ | Event.Access _ -> ())
    trace;
  List.rev !out

let recovery_rmr trace ~nprocs =
  ignore nprocs;
  (* Same write-invalidate holder tracking as [remote_accesses], with the
     crash–recovery refinement: a crash destroys the dying incarnation's
     cache, so the restarted one starts cold (every register is remote
     until re-read).  Fragments open and close exactly as in
     [recovery_paths].  Holders are pid sets rather than
     [remote_accesses]'s bitmasks: the recoverable sweep runs at the
     CLI's default n = 64, past the 62-bit fast path. *)
  let module S = Set.Make (Int) in
  let valid : (int, S.t) Hashtbl.t = Hashtbl.create 64 in
  let open_rmr = Hashtbl.create 8 in
  let out = ref [] in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Crash ->
        Hashtbl.filter_map_inplace
          (fun _ h -> Some (S.remove e.Event.pid h))
          valid;
        Hashtbl.remove open_rmr e.Event.pid
      | Event.Recover -> Hashtbl.replace open_rmr e.Event.pid 0
      | Event.Region_change Event.Critical -> (
        match Hashtbl.find_opt open_rmr e.Event.pid with
        | Some rmr ->
          Hashtbl.remove open_rmr e.Event.pid;
          out := (e.Event.pid, rmr) :: !out
        | None -> ())
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        let holders =
          Option.value ~default:S.empty (Hashtbl.find_opt valid r.Register.id)
        in
        (if not (S.mem pid holders) then
           match Hashtbl.find_opt open_rmr pid with
           | Some rmr -> Hashtbl.replace open_rmr pid (rmr + 1)
           | None -> ());
        let holders' =
          if Event.is_write k then S.singleton pid else S.add pid holders
        in
        Hashtbl.replace valid r.Register.id holders'
      | Event.Region_change _ -> ())
    trace;
  List.rev !out

let decisions trace ~nprocs =
  ignore nprocs;
  Trace.fold
    (fun acc e ->
      match e.Event.body with
      | Event.Region_change (Event.Decided v) -> (e.Event.pid, v) :: acc
      | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> acc)
    [] trace
  |> List.rev
