open Cfc_runtime

type sample = {
  steps : int;
  registers : int;
  read_steps : int;
  write_steps : int;
  read_registers : int;
  write_registers : int;
}

let zero =
  { steps = 0; registers = 0; read_steps = 0; write_steps = 0;
    read_registers = 0; write_registers = 0 }

let max_sample a b =
  {
    steps = max a.steps b.steps;
    registers = max a.registers b.registers;
    read_steps = max a.read_steps b.read_steps;
    write_steps = max a.write_steps b.write_steps;
    read_registers = max a.read_registers b.read_registers;
    write_registers = max a.write_registers b.write_registers;
  }

let pp_sample ppf s =
  Format.fprintf ppf "steps=%d regs=%d (r/w steps %d/%d, r/w regs %d/%d)"
    s.steps s.registers s.read_steps s.write_steps s.read_registers
    s.write_registers

(* Accumulate a sample from a list of (register, kind) accesses. *)
let of_accesses accesses =
  let seen = Hashtbl.create 16 in
  let seen_r = Hashtbl.create 16 in
  let seen_w = Hashtbl.create 16 in
  let steps = ref 0 and reads = ref 0 and writes = ref 0 in
  List.iter
    (fun (reg, kind) ->
      incr steps;
      Hashtbl.replace seen reg.Register.id ();
      if Event.is_write kind then begin
        incr writes;
        Hashtbl.replace seen_w reg.Register.id ()
      end
      else begin
        incr reads;
        Hashtbl.replace seen_r reg.Register.id ()
      end)
    accesses;
  {
    steps = !steps;
    registers = Hashtbl.length seen;
    read_steps = !reads;
    write_steps = !writes;
    read_registers = Hashtbl.length seen_r;
    write_registers = Hashtbl.length seen_w;
  }

let in_regions trace ~nprocs ~pid ~in_region =
  let accesses =
    Trace.fold_states ~nprocs
      (fun acc regions e ->
        match e.Event.body with
        | Event.Access (r, k) when e.Event.pid = pid && in_region regions.(pid)
          -> (r, k) :: acc
        | Event.Access _ | Event.Region_change _ | Event.Crash | Event.Recover -> acc)
      [] trace
  in
  of_accesses (List.rev accesses)

let mutex_contention_free trace ~nprocs ~pid =
  in_regions trace ~nprocs ~pid ~in_region:(function
    | Event.Trying | Event.Exiting -> true
    | Event.Remainder | Event.Critical | Event.Decided _ | Event.Halted ->
      false)

(* Worst-case entry fragments.  Scan once; for each pid track the sequence
   number after which it (re-)entered Trying, and globally the last state
   in which some process occupied its critical section or exit code.  When
   pid moves Trying -> Critical at event j, the valid window starts after
   both. *)
let mutex_wc_entry trace ~nprocs =
  let entered = Array.make nprocs (-1) in
  let last_occupied = ref (-1) in
  let out = ref [] in
  let occupied regions =
    Array.exists
      (function Event.Critical | Event.Exiting -> true | _ -> false)
      regions
  in
  let (_ : unit) =
    Trace.fold_states ~nprocs
      (fun () regions e ->
        if occupied regions then last_occupied := e.Event.seq;
        match e.Event.body with
        | Event.Region_change Event.Trying -> entered.(e.Event.pid) <- e.Event.seq
        | Event.Region_change Event.Critical
          when Event.region_equal regions.(e.Event.pid) Event.Trying ->
          let pid = e.Event.pid in
          let from = max (entered.(pid) + 1) (!last_occupied + 1) in
          let accesses = Trace.accesses_of ~from ~until:e.Event.seq ~pid trace in
          out := (pid, of_accesses accesses) :: !out
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> ())
      () trace
  in
  List.rev !out

let mutex_wc_exit trace ~nprocs =
  let entered_exit = Array.make nprocs (-1) in
  let out = ref [] in
  let (_ : unit) =
    Trace.fold_states ~nprocs
      (fun () regions e ->
        match e.Event.body with
        | Event.Region_change Event.Exiting ->
          entered_exit.(e.Event.pid) <- e.Event.seq
        | Event.Region_change _
          when Event.region_equal regions.(e.Event.pid) Event.Exiting ->
          let pid = e.Event.pid in
          let from = entered_exit.(pid) + 1 in
          let accesses = Trace.accesses_of ~from ~until:e.Event.seq ~pid trace in
          out := (pid, of_accesses accesses) :: !out
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> ())
      () trace
  in
  List.rev !out

let per_process_samples trace ~nprocs =
  let steps = Array.make nprocs 0
  and reads = Array.make nprocs 0
  and writes = Array.make nprocs 0 in
  let seen = Array.init nprocs (fun _ -> Hashtbl.create 8) in
  let seen_r = Array.init nprocs (fun _ -> Hashtbl.create 8) in
  let seen_w = Array.init nprocs (fun _ -> Hashtbl.create 8) in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        steps.(pid) <- steps.(pid) + 1;
        Hashtbl.replace seen.(pid) r.Register.id ();
        if Event.is_write k then begin
          writes.(pid) <- writes.(pid) + 1;
          Hashtbl.replace seen_w.(pid) r.Register.id ()
        end
        else begin
          reads.(pid) <- reads.(pid) + 1;
          Hashtbl.replace seen_r.(pid) r.Register.id ()
        end
      | Event.Region_change _ | Event.Crash | Event.Recover -> ())
    trace;
  Array.init nprocs (fun pid ->
      {
        steps = steps.(pid);
        registers = Hashtbl.length seen.(pid);
        read_steps = reads.(pid);
        write_steps = writes.(pid);
        read_registers = Hashtbl.length seen_r.(pid);
        write_registers = Hashtbl.length seen_w.(pid);
      })

let naming_process trace ~nprocs ~pid =
  ignore nprocs;
  of_accesses (Trace.accesses_of ~pid trace)

let remote_accesses trace ~nprocs =
  let remote = Array.make nprocs 0 in
  (* valid.(register id) = set of pids holding a valid copy, as a bitmask
     (nprocs <= 62 gets the fast path; beyond that a hashtable of pairs
     would be needed — the harnesses only use this for small n). *)
  if nprocs > 62 then invalid_arg "remote_accesses: nprocs > 62";
  let valid = Hashtbl.create 64 in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        let holders =
          Option.value ~default:0 (Hashtbl.find_opt valid r.Register.id)
        in
        if holders land (1 lsl pid) = 0 then
          remote.(pid) <- remote.(pid) + 1;
        let holders' =
          if Event.is_write k then 1 lsl pid
          else holders lor (1 lsl pid)
        in
        Hashtbl.replace valid r.Register.id holders'
      | Event.Region_change _ | Event.Crash | Event.Recover -> ())
    trace;
  remote

let recovery_paths trace ~nprocs =
  ignore nprocs;
  (* pid -> sequence number of its currently open Recover event *)
  let open_at = Hashtbl.create 8 in
  let out = ref [] in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Recover -> Hashtbl.replace open_at e.Event.pid e.Event.seq
      | Event.Crash ->
        (* Crashed again before completing the recovery: the fragment is
           abandoned; a fresh one opens at the next Recover. *)
        Hashtbl.remove open_at e.Event.pid
      | Event.Region_change Event.Critical -> (
        match Hashtbl.find_opt open_at e.Event.pid with
        | Some from ->
          Hashtbl.remove open_at e.Event.pid;
          let accesses =
            Trace.accesses_of ~from:(from + 1) ~until:e.Event.seq
              ~pid:e.Event.pid trace
          in
          out := (e.Event.pid, of_accesses accesses) :: !out
        | None -> ())
      | Event.Region_change _ | Event.Access _ -> ())
    trace;
  List.rev !out

let recovery_rmr trace ~nprocs =
  ignore nprocs;
  (* Same write-invalidate holder tracking as [remote_accesses], with the
     crash–recovery refinement: a crash destroys the dying incarnation's
     cache, so the restarted one starts cold (every register is remote
     until re-read).  Fragments open and close exactly as in
     [recovery_paths].  Holders are pid sets rather than
     [remote_accesses]'s bitmasks: the recoverable sweep runs at the
     CLI's default n = 64, past the 62-bit fast path. *)
  let module S = Set.Make (Int) in
  let valid : (int, S.t) Hashtbl.t = Hashtbl.create 64 in
  let open_rmr = Hashtbl.create 8 in
  let out = ref [] in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Crash ->
        Hashtbl.filter_map_inplace
          (fun _ h -> Some (S.remove e.Event.pid h))
          valid;
        Hashtbl.remove open_rmr e.Event.pid
      | Event.Recover -> Hashtbl.replace open_rmr e.Event.pid 0
      | Event.Region_change Event.Critical -> (
        match Hashtbl.find_opt open_rmr e.Event.pid with
        | Some rmr ->
          Hashtbl.remove open_rmr e.Event.pid;
          out := (e.Event.pid, rmr) :: !out
        | None -> ())
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        let holders =
          Option.value ~default:S.empty (Hashtbl.find_opt valid r.Register.id)
        in
        (if not (S.mem pid holders) then
           match Hashtbl.find_opt open_rmr pid with
           | Some rmr -> Hashtbl.replace open_rmr pid (rmr + 1)
           | None -> ());
        let holders' =
          if Event.is_write k then S.singleton pid else S.add pid holders
        in
        Hashtbl.replace valid r.Register.id holders'
      | Event.Region_change _ -> ())
    trace;
  List.rev !out

let decisions trace ~nprocs =
  ignore nprocs;
  Trace.fold
    (fun acc e ->
      match e.Event.body with
      | Event.Region_change (Event.Decided v) -> (e.Event.pid, v) :: acc
      | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> acc)
    [] trace
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Streaming measures                                                  *)

module Online = struct
  module S = Set.Make (Int)

  (* A mutable counterpart of [sample] under construction. *)
  type acc = {
    mutable a_steps : int;
    mutable a_reads : int;
    mutable a_writes : int;
    a_seen : (int, unit) Hashtbl.t;
    a_seen_r : (int, unit) Hashtbl.t;
    a_seen_w : (int, unit) Hashtbl.t;
  }

  let acc_create () =
    { a_steps = 0; a_reads = 0; a_writes = 0;
      a_seen = Hashtbl.create 8; a_seen_r = Hashtbl.create 8;
      a_seen_w = Hashtbl.create 8 }

  let acc_reset a =
    a.a_steps <- 0;
    a.a_reads <- 0;
    a.a_writes <- 0;
    Hashtbl.reset a.a_seen;
    Hashtbl.reset a.a_seen_r;
    Hashtbl.reset a.a_seen_w

  let acc_add a (r : Register.t) k =
    a.a_steps <- a.a_steps + 1;
    Hashtbl.replace a.a_seen r.Register.id ();
    if Event.is_write k then begin
      a.a_writes <- a.a_writes + 1;
      Hashtbl.replace a.a_seen_w r.Register.id ()
    end
    else begin
      a.a_reads <- a.a_reads + 1;
      Hashtbl.replace a.a_seen_r r.Register.id ()
    end

  let acc_sample a =
    { steps = a.a_steps;
      registers = Hashtbl.length a.a_seen;
      read_steps = a.a_reads;
      write_steps = a.a_writes;
      read_registers = Hashtbl.length a.a_seen_r;
      write_registers = Hashtbl.length a.a_seen_w }

  type pstate = {
    mutable region : Event.region;
    total : acc;        (* whole-run, = per_process_samples *)
    cf : acc;           (* accesses while own region is Trying/Exiting *)
    entry : acc;        (* current §2.2 entry window candidate *)
    mutable entry_gen : int;
        (* [clear_gen] value at the last reset/add of [entry]: a mismatch
           means some event with an occupied pre-state happened since, so
           the accumulated accesses fall before the window start *)
    exit_ : acc;        (* current exit fragment *)
    rec_ : acc;         (* current recovery fragment *)
    mutable rec_open : bool;
    mutable rec_rmr : int;
    mutable remote : int;
  }

  type t = {
    o_nprocs : int;
    procs : (int, pstate) Hashtbl.t;
    mutable events : int;
    mutable occupied : int;
        (* processes whose region is Critical or Exiting — the §2.2
           occupancy predicate over the pre-event state *)
    mutable clear_gen : int;
        (* bumped once per event whose pre-state is occupied; stands in
           for the materialised scan's [last_occupied] without touching
           every process's entry accumulator *)
    mutable entries : (int * sample) list;  (* reversed *)
    mutable exits : (int * sample) list;
    mutable recs : (int * sample) list;
    mutable rec_rmrs : (int * int) list;
    mutable decs : (int * int) list;
    valid : (int, S.t) Hashtbl.t;
        (* write-invalidate holders, [remote_accesses] semantics: no
           crash eviction.  Sets instead of bitmasks, so any n *)
    rvalid : (int, S.t) Hashtbl.t;
        (* holders under the crash-evicting [recovery_rmr] semantics *)
    reg_touched : (int, Register.t) Hashtbl.t;
  }

  let create ~nprocs =
    { o_nprocs = nprocs;
      procs = Hashtbl.create 64;
      events = 0; occupied = 0; clear_gen = 0;
      entries = []; exits = []; recs = []; rec_rmrs = []; decs = [];
      valid = Hashtbl.create 64;
      rvalid = Hashtbl.create 64;
      reg_touched = Hashtbl.create 64 }

  let pstate t pid =
    match Hashtbl.find_opt t.procs pid with
    | Some p -> p
    | None ->
      if pid < 0 || pid >= t.o_nprocs then
        invalid_arg "Measures.Online: pid out of range";
      let p =
        { region = Event.Remainder;
          total = acc_create (); cf = acc_create ();
          entry = acc_create (); entry_gen = 0;
          exit_ = acc_create (); rec_ = acc_create ();
          rec_open = false; rec_rmr = 0; remote = 0 }
      in
      Hashtbl.replace t.procs pid p;
      p

  let in_cs_or_exit = function
    | Event.Critical | Event.Exiting -> true
    | Event.Remainder | Event.Trying | Event.Decided _ | Event.Halted -> false

  let feed t ~pid body =
    let p = pstate t pid in
    let pre = p.region in
    (* Pre-state occupancy advances the window clock for every event,
       mirroring the materialised scan's [last_occupied := e.seq]. *)
    if t.occupied > 0 then t.clear_gen <- t.clear_gen + 1;
    (match body with
    | Event.Access (r, k) ->
      Hashtbl.replace t.reg_touched r.Register.id r;
      acc_add p.total r k;
      (match pre with
      | Event.Trying | Event.Exiting -> acc_add p.cf r k
      | Event.Remainder | Event.Critical | Event.Decided _ | Event.Halted ->
        ());
      (* Entry-window candidate: only Trying accesses can land in a §2.2
         window; an access is in the window iff no later event (itself
         included) has an occupied pre-state, which the generation
         counter tracks lazily. *)
      (match pre with
      | Event.Trying ->
        if p.entry_gen <> t.clear_gen then begin
          acc_reset p.entry;
          p.entry_gen <- t.clear_gen
        end;
        if t.occupied = 0 then acc_add p.entry r k
      | Event.Remainder | Event.Critical | Event.Exiting | Event.Decided _
      | Event.Halted -> ());
      (match pre with
      | Event.Exiting -> acc_add p.exit_ r k
      | Event.Remainder | Event.Trying | Event.Critical | Event.Decided _
      | Event.Halted -> ());
      if p.rec_open then acc_add p.rec_ r k;
      (* remote_accesses semantics (no crash eviction) *)
      let holders =
        Option.value ~default:S.empty (Hashtbl.find_opt t.valid r.Register.id)
      in
      if not (S.mem pid holders) then p.remote <- p.remote + 1;
      Hashtbl.replace t.valid r.Register.id
        (if Event.is_write k then S.singleton pid else S.add pid holders);
      (* recovery_rmr semantics (crash-evicted holders) *)
      let rholders =
        Option.value ~default:S.empty (Hashtbl.find_opt t.rvalid r.Register.id)
      in
      if (not (S.mem pid rholders)) && p.rec_open then
        p.rec_rmr <- p.rec_rmr + 1;
      Hashtbl.replace t.rvalid r.Register.id
        (if Event.is_write k then S.singleton pid else S.add pid rholders)
    | Event.Region_change r ->
      (* Close §2.2 entry windows: Trying -> Critical. *)
      (match r with
      | Event.Critical when Event.region_equal pre Event.Trying ->
        let s =
          if p.entry_gen = t.clear_gen then acc_sample p.entry else zero
        in
        t.entries <- (pid, s) :: t.entries
      | _ -> ());
      (* Close exit fragments: any region change out of Exiting.  An
         Exiting -> Exiting re-entry only restarts the fragment (same
         pattern precedence as the materialised scan). *)
      (match r with
      | Event.Exiting -> acc_reset p.exit_
      | _ when Event.region_equal pre Event.Exiting ->
        t.exits <- (pid, acc_sample p.exit_) :: t.exits
      | _ -> ());
      (* Close recovery fragments: any entry to Critical. *)
      (match r with
      | Event.Critical when p.rec_open ->
        p.rec_open <- false;
        t.recs <- (pid, acc_sample p.rec_) :: t.recs;
        t.rec_rmrs <- (pid, p.rec_rmr) :: t.rec_rmrs
      | _ -> ());
      (match r with
      | Event.Trying ->
        acc_reset p.entry;
        p.entry_gen <- t.clear_gen
      | _ -> ());
      (match r with
      | Event.Decided v -> t.decs <- (pid, v) :: t.decs
      | _ -> ());
      let was = in_cs_or_exit pre and now = in_cs_or_exit r in
      if was && not now then t.occupied <- t.occupied - 1
      else if now && not was then t.occupied <- t.occupied + 1;
      p.region <- r
    | Event.Crash ->
      (* Fragments are abandoned and the dying incarnation's cached
         copies destroyed ([recovery_rmr] semantics); the region stays
         stale on purpose — strong occupancy, as in Trace.fold_states. *)
      p.rec_open <- false;
      Hashtbl.filter_map_inplace (fun _ h -> Some (S.remove pid h)) t.rvalid
    | Event.Recover ->
      p.rec_open <- true;
      acc_reset p.rec_;
      p.rec_rmr <- 0;
      if in_cs_or_exit p.region then t.occupied <- t.occupied - 1;
      p.region <- Event.Remainder);
    t.events <- t.events + 1

  let feed_trace t trace =
    Trace.iter (fun e -> feed t ~pid:e.Event.pid e.Event.body) trace

  let events_seen t = t.events

  let sample_of t pid which =
    match Hashtbl.find_opt t.procs pid with
    | None -> zero
    | Some p -> acc_sample (which p)

  let contention_free t ~pid = sample_of t pid (fun p -> p.cf)
  let per_process t = Array.init t.o_nprocs (fun pid -> sample_of t pid (fun p -> p.total))
  let process_total t ~pid = sample_of t pid (fun p -> p.total)
  let wc_entries t = List.rev t.entries
  let wc_exits t = List.rev t.exits
  let recovery_paths t = List.rev t.recs
  let recovery_rmr t = List.rev t.rec_rmrs
  let decisions t = List.rev t.decs

  let remote t ~pid =
    match Hashtbl.find_opt t.procs pid with Some p -> p.remote | None -> 0

  let remote_accesses t = Array.init t.o_nprocs (fun pid -> remote t ~pid)

  let touched t = Hashtbl.fold (fun _ r acc -> r :: acc) t.reg_touched []
  let touched_count t = Hashtbl.length t.reg_touched
  let spawned t = Hashtbl.length t.procs
end
