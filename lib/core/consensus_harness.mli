(** Harness for consensus — the §1.2 definitional example made
    executable.  Contention-free complexity is measured on solo runs
    exactly as the paper's sentence prescribes ("all other processes have
    either decided, or failed, or not started"); agreement and validity
    are checked on the trace decisions against the inputs. *)

open Cfc_runtime

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
}

val contention_free :
  Cfc_consensus.Registry.alg -> n:int -> inputs:int array -> cf_result
(** Solo run per process (fresh shared state each time); verifies that a
    solo process decides its own input (validity in the absence of other
    participants). *)

val run :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  pick:Schedule.picker ->
  Cfc_consensus.Registry.alg ->
  n:int ->
  inputs:int array ->
  Runner.outcome
(** All [n] processes propose [inputs.(pid)] under the schedule. *)

val check :
  Runner.outcome -> n:int -> inputs:int array -> Spec.violation option
(** Agreement + validity + (on completed runs) termination of every
    non-crashed process. *)

val system :
  Cfc_consensus.Registry.alg -> n:int -> inputs:int array ->
  unit -> Memory.t * (unit -> unit) array
(** Deterministic system builder for the model checker. *)
