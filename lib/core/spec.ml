open Cfc_runtime

type violation = { at : int; pids : int list; what : string }

let pp_violation ppf v =
  Format.fprintf ppf "@[<h>at event %d, processes [%s]: %s@]" v.at
    (String.concat "," (List.map string_of_int v.pids))
    v.what

let mutual_exclusion trace ~nprocs =
  Trace.fold_states ~nprocs
    (fun acc regions e ->
      match acc with
      | Some _ -> acc
      | None -> (
        match e.Event.body with
        | Event.Region_change Event.Critical ->
          let others =
            List.filter
              (fun q ->
                q <> e.Event.pid
                && Event.region_equal regions.(q) Event.Critical)
              (List.init nprocs Fun.id)
          in
          if others = [] then None
          else
            Some
              { at = e.Event.seq;
                pids = e.Event.pid :: others;
                what = "two processes in the critical section" }
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> None))
    None trace

let mutual_exclusion_recoverable trace ~nprocs =
  (* Crash–recovery occupancy (Golab–Ramaraju semantics): a process that
     crashes inside its critical section is still considered to occupy it
     — shared memory says it holds the lock — until it next changes
     region itself (its recovery run re-entering Trying, or re-announcing
     Critical).  So [Crash] and [Recover] leave occupancy untouched; only
     the pid's own [Region_change] events open and close it. *)
  let in_cs = Array.make nprocs false in
  Trace.fold
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None -> (
        match e.Event.body with
        | Event.Region_change r ->
          let entering = Event.region_equal r Event.Critical in
          if entering then begin
            let others =
              List.filter
                (fun q -> q <> e.Event.pid && in_cs.(q))
                (List.init nprocs Fun.id)
            in
            in_cs.(e.Event.pid) <- true;
            if others = [] then None
            else
              Some
                { at = e.Event.seq;
                  pids = e.Event.pid :: others;
                  what =
                    "two processes in the critical section (across \
                     recoveries)" }
          end
          else begin
            in_cs.(e.Event.pid) <- false;
            None
          end
        | Event.Access _ | Event.Crash | Event.Recover -> None))
    None trace

module Inc = struct
  type 's core = {
    init : nprocs:int -> 's;
    copy : 's -> 's;
    feed : 's -> Trace.t -> from:int -> violation option;
  }

  type t = T : 's core -> t

  type run = {
    feed : Trace.t -> from:int -> violation option;
    save : unit -> unit -> unit;
  }

  let start (T c) ~nprocs =
    let st = ref (c.init ~nprocs) in
    { feed = (fun trace ~from -> c.feed !st trace ~from);
      save =
        (fun () ->
          let saved = c.copy !st in
          fun () -> st := c.copy saved) }

  let of_whole check =
    T
      { init = (fun ~nprocs -> nprocs);
        copy = Fun.id;
        feed = (fun nprocs trace ~from:_ -> check trace ~nprocs) }

  let on_decisions check =
    T
      { init = (fun ~nprocs -> nprocs);
        copy = Fun.id;
        feed =
          (fun nprocs trace ~from ->
            (* Decision properties are functions of the decisions multiset
               only; if the new events decide nothing, the multiset — and
               therefore the verdict — is unchanged from the (already
               checked) prefix. *)
            let triggered = ref false in
            for i = from to Trace.length trace - 1 do
              match (Trace.get trace i).Event.body with
              | Event.Region_change (Event.Decided _) -> triggered := true
              | Event.Region_change _ | Event.Access _ | Event.Crash
              | Event.Recover -> ()
            done;
            if !triggered then check trace ~nprocs else None) }

  let mutual_exclusion =
    T
      { init = (fun ~nprocs -> Array.make nprocs Event.Remainder);
        copy = Array.copy;
        feed =
          (fun regions trace ~from ->
            let nprocs = Array.length regions in
            let result = ref None in
            let i = ref from in
            let len = Trace.length trace in
            while !result = None && !i < len do
              let e = Trace.get trace !i in
              (match e.Event.body with
              | Event.Region_change r ->
                (if Event.region_equal r Event.Critical then
                   let others =
                     List.filter
                       (fun q ->
                         q <> e.Event.pid
                         && Event.region_equal regions.(q) Event.Critical)
                       (List.init nprocs Fun.id)
                   in
                   if others <> [] then
                     result :=
                       Some
                         { at = e.Event.seq;
                           pids = e.Event.pid :: others;
                           what = "two processes in the critical section" });
                regions.(e.Event.pid) <- r
              | Event.Access _ | Event.Crash | Event.Recover -> ());
              incr i
            done;
            !result) }

  let mutual_exclusion_recoverable =
    T
      { init = (fun ~nprocs -> Array.make nprocs false);
        copy = Array.copy;
        feed =
          (fun in_cs trace ~from ->
            let nprocs = Array.length in_cs in
            let result = ref None in
            let i = ref from in
            let len = Trace.length trace in
            while !result = None && !i < len do
              let e = Trace.get trace !i in
              (match e.Event.body with
              | Event.Region_change r ->
                if Event.region_equal r Event.Critical then begin
                  let others =
                    List.filter
                      (fun q -> q <> e.Event.pid && in_cs.(q))
                      (List.init nprocs Fun.id)
                  in
                  in_cs.(e.Event.pid) <- true;
                  if others <> [] then
                    result :=
                      Some
                        { at = e.Event.seq;
                          pids = e.Event.pid :: others;
                          what =
                            "two processes in the critical section (across \
                             recoveries)" }
                end
                else in_cs.(e.Event.pid) <- false
              | Event.Access _ | Event.Crash | Event.Recover -> ());
              incr i
            done;
            !result) }
end

module Monitor = struct
  (* Event-fed safety monitors for streaming runs (Wheel sinks): same
     verdicts and violation records as the whole-trace checkers above,
     with occupancy kept sparse so feeding is O(1) per event at any n. *)

  type mode = Plain | Recoverable

  type t = {
    mode : mode;
    occupants : (int, unit) Hashtbl.t;
    mutable seq : int;
    mutable violation : violation option;
  }

  let mutual_exclusion () =
    { mode = Plain; occupants = Hashtbl.create 8; seq = 0; violation = None }

  let mutual_exclusion_recoverable () =
    { mode = Recoverable; occupants = Hashtbl.create 8; seq = 0;
      violation = None }

  let feed t ~pid body =
    (match body with
    | Event.Region_change r ->
      if t.violation = None then
        if Event.region_equal r Event.Critical then begin
          let others =
            Hashtbl.fold
              (fun q () acc -> if q <> pid then q :: acc else acc)
              t.occupants []
            |> List.sort compare
          in
          if others <> [] then
            t.violation <-
              Some
                { at = t.seq;
                  pids = pid :: others;
                  what =
                    (match t.mode with
                    | Plain -> "two processes in the critical section"
                    | Recoverable ->
                      "two processes in the critical section (across \
                       recoveries)") }
        end;
      if Event.region_equal r Event.Critical then
        Hashtbl.replace t.occupants pid ()
      else Hashtbl.remove t.occupants pid
    | Event.Recover -> (
      (* Plain occupancy mirrors Trace.fold_states (a recover resets the
         region to Remainder); recoverable occupancy deliberately
         survives crash and recover — only the pid's own region changes
         open and close it. *)
      match t.mode with
      | Plain -> Hashtbl.remove t.occupants pid
      | Recoverable -> ())
    | Event.Access _ | Event.Crash -> ());
    t.seq <- t.seq + 1

  let result t = t.violation
end

let mutex_progress (out : Runner.outcome) =
  let sched = out.Runner.scheduler in
  let nprocs = Scheduler.nprocs sched in
  if not out.Runner.completed then
    Some { at = Trace.length out.Runner.trace; pids = []; what = "run did not complete" }
  else begin
    (* Count Critical entries per process. *)
    let entries = Array.make nprocs 0 in
    Trace.iter
      (fun e ->
        match e.Event.body with
        | Event.Region_change Event.Critical ->
          entries.(e.Event.pid) <- entries.(e.Event.pid) + 1
        | Event.Region_change _ | Event.Access _ | Event.Crash | Event.Recover -> ())
      out.Runner.trace;
    let stuck =
      List.filter
        (fun pid ->
          match Scheduler.status sched pid with
          | Scheduler.Halted -> entries.(pid) = 0
          | Scheduler.Crashed -> false
          | Scheduler.Runnable | Scheduler.Errored _ -> true)
        (List.init nprocs Fun.id)
    in
    if stuck = [] then None
    else
      Some
        { at = Trace.length out.Runner.trace;
          pids = stuck;
          what = "processes finished without entering the critical section" }
  end

let unique_names trace ~nprocs ~n =
  let decided = Measures.decisions trace ~nprocs in
  let bad_range =
    List.filter (fun (_, v) -> v < 1 || v > n) decided
  in
  match bad_range with
  | (pid, v) :: _ ->
    Some
      { at = Trace.length trace;
        pids = [ pid ];
        what = Printf.sprintf "name %d outside 1..%d" v n }
  | [] -> (
    let sorted = List.sort (fun (_, a) (_, b) -> compare a b) decided in
    let rec dup = function
      | (p1, v1) :: (p2, v2) :: _ when v1 = v2 -> Some (p1, p2, v1)
      | _ :: rest -> dup rest
      | [] -> None
    in
    match dup sorted with
    | Some (p1, p2, v) ->
      Some
        { at = Trace.length trace;
          pids = [ p1; p2 ];
          what = Printf.sprintf "duplicate name %d" v }
    | None -> None)

let all_named trace ~nprocs =
  let decided = Measures.decisions trace ~nprocs in
  let crashed =
    Trace.fold
      (fun acc e ->
        match e.Event.body with
        | Event.Crash -> e.Event.pid :: acc
        | Event.Recover -> List.filter (fun p -> p <> e.Event.pid) acc
        | Event.Region_change _ | Event.Access _ -> acc)
      [] trace
  in
  let missing =
    List.filter
      (fun pid ->
        (not (List.mem pid crashed))
        && not (List.mem_assoc pid decided))
      (List.init nprocs Fun.id)
  in
  if missing = [] then None
  else
    Some
      { at = Trace.length trace;
        pids = missing;
        what = "non-crashed processes without a name" }

let at_most_one_winner trace ~nprocs =
  let winners =
    List.filter (fun (_, v) -> v = 1) (Measures.decisions trace ~nprocs)
  in
  match winners with
  | [] | [ _ ] -> None
  | ws ->
    Some
      { at = Trace.length trace;
        pids = List.map fst ws;
        what = "more than one contention-detection winner" }

let solo_wins trace ~nprocs ~pid =
  match List.assoc_opt pid (Measures.decisions trace ~nprocs) with
  | Some 1 -> None
  | Some v ->
    Some
      { at = Trace.length trace;
        pids = [ pid ];
        what = Printf.sprintf "solo process decided %d, expected 1" v }
  | None ->
    Some
      { at = Trace.length trace; pids = [ pid ]; what = "solo process undecided" }
