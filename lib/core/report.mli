(** Reproduction of the paper's tables: every function renders an ASCII
    table pairing the paper's bound (theory) with the value measured on
    our implementations.  Shared by the benchmark executable and the
    [cfc-tables] CLI. *)

val mutex_table_symbolic : unit -> Cfc_base.Texttab.t
(** The "Bounds for mutual exclusion" table of §2.6, verbatim. *)

val mutex_table : n:int -> l:int -> Cfc_base.Texttab.t
(** Table M instantiated at [(n, l)]: per measure the Theorem 1/2 lower
    bound, the measured value of the witness algorithm, and the Theorem
    3 / Kes82 upper bound. *)

val thm_sweep : ns:int list -> ls:int list -> Cfc_base.Texttab.t
(** EXP-T1/T2/T3: for each (n, l) the lower bounds, the tree's measured
    contention-free complexities, and the paper's stated upper bounds
    (7·⌈log n / l⌉ with node capacity 2^l; our nodes hold 2^l - 1, so the
    measured depth may exceed the stated bound by one level for small l —
    both are printed). *)

val naming_table_symbolic : unit -> Cfc_base.Texttab.t
(** The "Tight bounds for naming" table of §3.3, verbatim. *)

val naming_table : n:int -> Cfc_base.Texttab.t
(** Table N instantiated at [n]: for each model column and measure, the
    tight bound's value and the best measured value among that column's
    algorithms (contention-free: exact; worst-case: max over the
    lockstep adversary and seeded random schedules). *)

val naming_sweep : ns:int list -> Cfc_base.Texttab.t
(** Per-algorithm contention-free step/register measurements across n. *)

val detection_table : ns:int list -> ls:int list -> Cfc_base.Texttab.t
(** EXP-CD: splitter-tree worst-case steps vs the §2.6 ⌈log n / l⌉ claim. *)

val recoverable_table : ns:int list -> Cfc_base.Texttab.t
(** EXP-REC: the recoverable lock's predicted vs measured contention-free
    (crash-free solo) complexities, and the predicted vs measured
    recovery-path step counts of the solo crash-point sweep, split into
    crashes that hit while holding the lock and the rest. *)

val faults_table :
  alg:Cfc_mutex.Registry.alg -> n:int -> pairs:int -> seeds:int list ->
  Cfc_base.Texttab.t * Cfc_runtime.Runner.outcome option
(** One chaos run per seed: the injected plan, how the run stopped, the
    completed recoveries with their maximum measured path cost, and the
    recoverable-mutual-exclusion verdict.  Also returns the first outcome
    that did not reach quiescence, for {!Cfc_runtime.Runner.pp_diagnosis}
    rendering by the CLI. *)

val unbounded_table : spins:int list -> Cfc_base.Texttab.t
(** EXP-WC∞: winner's entry steps grow without bound with the adversary
    parameter. *)
