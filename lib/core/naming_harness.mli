(** Harness for the naming problem (§3).

    Contention-free complexity follows the §3.2 definition verbatim: in a
    sequential run every process executes while all others have either
    terminated before it started or not started yet; the measure is the
    max per-process sample over such runs (we take the ascending order —
    for the symmetric deterministic algorithms here any order yields the
    same multiset of runs).  Worst-case complexity is estimated over
    schedule families, including the Theorem 6 lockstep adversary that
    keeps identical processes identical as long as possible. *)

open Cfc_runtime
open Cfc_naming

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
  names : int array;  (** the name each process obtained *)
}

val contention_free : Registry.alg -> n:int -> cf_result
(** Sequential run; raises [Invalid_argument] on a naming-safety
    violation (duplicate or out-of-range name). *)

val run :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  pick:Schedule.picker ->
  Registry.alg ->
  n:int ->
  Runner.outcome
(** All [n] processes run the algorithm once under the given schedule. *)

val system :
  Registry.alg -> n:int -> unit -> Cfc_runtime.Memory.t * (unit -> unit) array
(** Deterministic system builder for the model checker's replay. *)

val wc_estimate : seeds:int list -> Registry.alg -> n:int -> Measures.sample
(** Max per-process sample over the lockstep (round-robin) adversary of
    Theorem 6 and seeded random schedules.  Verifies name uniqueness on
    every run. *)

val lockstep_steps : Registry.alg -> n:int -> int
(** The Theorem 6 experiment in isolation: run the identical processes in
    lockstep rounds and return the maximum per-process step count — at
    least [n - 1] for every model without test-and-flip. *)
