open Cfc_base
open Cfc_runtime
open Cfc_mutex

type cf_result = {
  max : Measures.sample;
  per_process : Measures.sample array;
  atomicity_declared : int;
  atomicity_observed : int;
}

exception Critical_section_trampled of int

let instantiate (module A : Mutex_intf.ALG) (p : Mutex_intf.params) =
  if not (A.supports p) then
    invalid_arg
      (Printf.sprintf "%s does not support n=%d l=%d" A.name p.Mutex_intf.n
         p.Mutex_intf.l);
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let observed_width = Memory.max_width memory in
  (* A witness register exercised inside the critical section: it widens
     the window in which an exclusion failure is observable and directly
     detects a concurrent writer.  Its accesses happen in the [Critical]
     region, so no §2.2 measure counts them. *)
  let witness =
    M.alloc ~name:"cs.witness"
      ~width:(Ixmath.bits_needed (max 1 (p.Mutex_intf.n - 1)))
      ~init:0 ()
  in
  let proc ~me ~rounds () =
    for _ = 1 to rounds do
      Proc.region Event.Trying;
      L.lock inst ~me;
      Proc.region Event.Critical;
      M.write witness me;
      if M.read witness <> me then raise (Critical_section_trampled me);
      Proc.region Event.Exiting;
      L.unlock inst ~me;
      Proc.region Event.Remainder
    done
  in
  (memory, observed_width, proc)

(* Resetting the whole arena between solo runs is O(n . registers);
   a solo run touches only O(depth) registers, so reset just those. *)
let reset_touched memory trace =
  match trace with
  | None -> Memory.reset memory
  | Some t ->
    Trace.iter
      (fun e ->
        match e.Event.body with
        | Event.Access (r, _) -> Register.reset r
        | Event.Region_change _ | Event.Crash | Event.Recover -> ())
      t

(* Which processes to measure: all of them up to 64, then a deterministic
   spread (ends, powers of two, and their neighbours) — our algorithms'
   solo cost depends on the pid only through its tree position, and the
   per-pid equality is asserted exhaustively at small n by the tests. *)
let sample_pids n =
  if n <= 64 then List.init n Fun.id
  else begin
    let candidates =
      [ 0; 1; 2; (n / 2) - 1; n / 2; n - 2; n - 1 ]
      @ List.concat_map
          (fun k ->
            let v = Ixmath.pow2 k in
            if v < n then [ v - 1; v ] else [])
          (List.init 20 Fun.id)
    in
    List.sort_uniq compare (List.filter (fun i -> i >= 0 && i < n) candidates)
  end

let contention_free (module A : Mutex_intf.ALG) (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let memory, observed_width, proc = instantiate (module A) p in
  (* Closures are restartable (the scheduler starts them lazily), so one
     array serves all the solo runs. *)
  let procs = Array.init n (fun i -> proc ~me:i ~rounds:1) in
  (* The §2.2 contention-free run has every other process still in its
     remainder (never started).  Restoring the previous run's touched
     registers is equivalent to a fresh instance. *)
  let prev = ref None in
  let per_process =
    List.map
      (fun me ->
        reset_touched memory !prev;
        let out = Runner.run ~memory ~pick:(Schedule.solo me) procs in
        prev := Some out.Runner.trace;
        Measures.mutex_contention_free out.Runner.trace ~nprocs:n ~pid:me)
      (sample_pids n)
    |> Array.of_list
  in
  {
    max = Array.fold_left Measures.max_sample Measures.zero per_process;
    per_process;
    atomicity_declared = A.atomicity p;
    atomicity_observed = observed_width;
  }

(* O(active-set) variant of [contention_free]: the same solo runs driven
   by the event wheel with a streaming measures sink, so nothing is
   O(n) per run — the arena is allocated once, exactly one process
   record materialises per solo run (lazy spawn), no trace is recorded,
   and the between-runs reset touches exactly the registers the online
   fold saw.  This is what makes the n = 10^5..10^6 sweeps of
   EXP-SCALE possible; equality with [contention_free] at small n is
   asserted by the test battery. *)
let contention_free_streaming (module A : Mutex_intf.ALG)
    (p : Mutex_intf.params) =
  let n = p.Mutex_intf.n in
  let _memory, observed_width, proc = instantiate (module A) p in
  let spawn me = proc ~me ~rounds:1 in
  let per_process =
    List.map
      (fun me ->
        let online = Measures.Online.create ~nprocs:n in
        let wheel =
          Wheel.create ~sink:(Measures.Online.feed online) ~nprocs:n ~spawn ()
        in
        Wheel.wake wheel me;
        (match Wheel.run wheel with
        | Wheel.Quiescent -> ()
        | Wheel.Out_of_turns -> assert false (* no turn bound given *));
        (match Wheel.first_error wheel with
        | None -> ()
        | Some (pid, error) ->
          raise
            (Runner.Process_error
               { pid; steps = Wheel.steps_taken wheel pid; error;
                 recent = [] }));
        let s = Measures.Online.contention_free online ~pid:me in
        List.iter Register.reset (Measures.Online.touched online);
        s)
      (sample_pids n)
    |> Array.of_list
  in
  {
    max = Array.fold_left Measures.max_sample Measures.zero per_process;
    per_process;
    atomicity_declared = A.atomicity p;
    atomicity_observed = observed_width;
  }

let system ?(rounds = 1) (module A : Mutex_intf.ALG) (p : Mutex_intf.params)
    () =
  let memory, _, proc = instantiate (module A) p in
  (memory, Array.init p.Mutex_intf.n (fun me -> proc ~me ~rounds))

let run ?(rounds = 1) ?max_steps ?crash_at ?faults ~pick
    (module A : Mutex_intf.ALG) (p : Mutex_intf.params) =
  let memory, _, proc = instantiate (module A) p in
  let procs = Array.init p.Mutex_intf.n (fun me -> proc ~me ~rounds) in
  Runner.run ?max_steps ?crash_at ?faults ~memory ~pick procs

let wc_estimate ?(rounds = 2) ~seeds alg (p : Mutex_intf.params) ~entry =
  let fragments out =
    let nprocs = p.Mutex_intf.n in
    let frags =
      if entry then Measures.mutex_wc_entry out.Runner.trace ~nprocs
      else Measures.mutex_wc_exit out.Runner.trace ~nprocs
    in
    List.fold_left
      (fun acc (_, s) -> Measures.max_sample acc s)
      Measures.zero frags
  in
  let with_pick mk =
    let out = run ~rounds ~max_steps:2_000_000 ~pick:(mk ()) alg p in
    fragments out
  in
  let base = with_pick Schedule.round_robin in
  List.fold_left
    (fun acc seed ->
      Measures.max_sample acc (with_pick (fun () -> Schedule.random ~seed)))
    base seeds

(* Explicit 2-process schedule forcing the eventual winner of Lamport's
   fast algorithm to spin [spin] times inside a window where no process
   occupies the critical section (see the .mli).  Process 0 uses slot 1,
   process 1 slot 2; the step-by-step account is in the comments. *)
let lamport_unbounded_entry ~spin =
  let p = Mutex_intf.params 2 in
  let memory, _, proc = instantiate (module Lamport_fast) p in
  let procs = Array.init 2 (fun me -> proc ~me ~rounds:1) in
  let prefix =
    List.concat
      [ [ 0; 0; 0; 0 ];  (* p0: b1:=1; x:=1; read y=0; y:=1            *)
        [ 1; 1 ];        (* p1: b2:=1; x:=2                            *)
        [ 0; 0; 0; 0 ];  (* p0: read x=2 (fast path lost); b1:=0;
                            slow-path scan: read b1=0; read b2=1       *)
        (* p0 spins on b2: each loop iteration costs two scheduler
           turns (one read access + one free pause), so schedule 2·spin
           turns to get at least [spin] counted accesses. *)
        List.init (2 * spin) (fun _ -> 0);
        [ 1; 1 ];        (* p1: read y=1 (gate closed); b2:=0          *)
      ]
  in
  let pick = Schedule.pref_then prefix (Schedule.round_robin ()) in
  let out = Runner.run ~memory ~pick procs in
  (match Spec.mutual_exclusion out.Runner.trace ~nprocs:2 with
  | None -> ()
  | Some v ->
    invalid_arg (Format.asprintf "unbounded demo: %a" Spec.pp_violation v));
  let entries = Measures.mutex_wc_entry out.Runner.trace ~nprocs:2 in
  List.fold_left
    (fun acc (pid, s) -> if pid = 0 then Measures.max_sample acc s else acc)
    Measures.zero entries
