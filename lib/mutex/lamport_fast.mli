(** Lamport's fast mutual exclusion algorithm [Lam87]: exactly 7 accesses
    to 3 distinct registers in the absence of contention (5 entry + 2
    exit).  See the implementation header for the full account.

    {!Core} exposes the x/y gate logic over an abstract presence
    structure so the multi-grain packed variant ({!Ms_packed}) reuses the
    identical control flow; {!Node} is the concrete
    one-bit-per-slot arbiter used directly and as the {!Tree} node. *)

open Cfc_base

module Core (M : Mem_intf.MEM) : sig
  (** The [b]-array abstraction: [set ~slot v] is one shared access
      announcing/retracting a slot; [await_clear] spins until every slot
      is absent (slow path only). *)
  type presence = {
    set : slot:int -> int -> unit;
    await_clear : unit -> unit;
  }

  type t

  val gate_width : capacity:int -> int
  (** Width of the [x]/[y] gate registers: [bits_needed capacity]
      (value 0 of [y] means "free"). *)

  val make :
    ?name:string ->
    ?on_contention:(attempt:int -> unit) ->
    capacity:int ->
    presence:presence ->
    unit ->
    t
  (** [on_contention] is the §4 backoff hook, called before re-polling
      the gate after a failed attempt; it must not touch shared memory
      except via [M.pause]. *)

  val lock : t -> slot:int -> unit
  (** [slot] ∈ [1..capacity]; at most one process may use a slot at a
      time. *)

  val unlock : t -> slot:int -> unit
end

module Node (M : Mem_intf.MEM) : sig
  type t

  val create :
    ?name:string ->
    ?on_contention:(attempt:int -> unit) ->
    capacity:int ->
    unit ->
    t
  (** The paper's algorithm: presence = one 1-bit register per slot. *)

  val lock : t -> slot:int -> unit
  val unlock : t -> slot:int -> unit
end

include Mutex_intf.ALG
