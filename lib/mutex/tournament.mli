(** Binary tournament trees over any two-process lock (Peterson–Fischer
    [PF77]); with {!Kessels} nodes this is the bit-only O(log n)
    worst-case-register algorithm of the paper's mutex table ([Kes82]).
    See the implementation header. *)

module Make (T : Mutex_intf.TWO) : Mutex_intf.ALG
(** An n-process algorithm with contention-free cost
    [⌈log n⌉ · T.cf_steps] / [⌈log n⌉ · T.cf_registers]. *)

module Peterson_tournament : Mutex_intf.ALG
module Kessels_tournament : Mutex_intf.ALG
module Dekker_tournament : Mutex_intf.ALG
