(** The Theorem 3 construction: a tree of Lamport fast-mutex nodes with
    [l]-bit registers — contention-free complexity exactly [7·d] steps
    and [3·d] registers for tree depth [d].  See the implementation
    header for the capacity-(2^l − 1) encoding note and the release-order
    discussion. *)

val capacity_of_l : int -> int
(** Slots per node: [2^l - 1] (an [l]-bit gate must also encode "free").
    Raises [Invalid_argument] for [l < 2]. *)

val depth : n:int -> l:int -> int
(** Tree depth [⌈log_(2^l - 1) n⌉], at least 1. *)

include Mutex_intf.ALG
