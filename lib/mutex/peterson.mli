(** A two-process lock for tournament trees; see the implementation
    header for the algorithm and its exact solo cost. *)

include Mutex_intf.TWO
