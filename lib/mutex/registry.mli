(** First-class-module registry of the mutual exclusion algorithms and
    contention detectors, for harness sweeps and benches. *)

type alg = (module Mutex_intf.ALG)
type detector = (module Mutex_intf.DETECTOR)

val lamport_fast : alg
val tree : alg
val peterson_tournament : alg
val kessels_tournament : alg
val dekker_tournament : alg
val bakery : alg
val one_bit : alg
val tas_lock : alg

val rec_tas : alg
(** The recoverable (crash–recovery) lock; see {!Rec_tas}. *)

val backoff : alg
val ms_packed : alg
val mcs : alg

val all : alg list
(** Every algorithm, for sweeps. *)

val register_model : alg list
(** The algorithms within the paper's atomic-register model (excludes
    the RMW-based locks), i.e. those the Theorem 1/2 lower bounds apply
    to. *)

val splitter : detector
val splitter_tree : detector
val detectors : detector list

val find : string -> alg option
(** Look up an algorithm by its [name]. *)
