(** First-class-module registry of the mutual exclusion algorithms and
    contention detectors, for harness sweeps and benches. *)

type alg = (module Mutex_intf.ALG)
type detector = (module Mutex_intf.DETECTOR)

val lamport_fast : alg
val tree : alg
val peterson_tournament : alg
val kessels_tournament : alg
val dekker_tournament : alg
val bakery : alg
val one_bit : alg
val tas_lock : alg

val rec_tas : alg
(** The recoverable (crash–recovery) test-and-set lock; see {!Rec_tas}. *)

val rec_queue : alg
(** The recoverable queue lock; see {!Rec_queue}. *)

val backoff : alg
val ms_packed : alg
val mcs : alg

val all : alg list
(** Every algorithm, for sweeps. *)

val is_recoverable : alg -> bool
(** Whether the algorithm declares recovery closed forms
    ([ALG.recovery] is [Some _]). *)

val recoverable : alg list
(** The recoverable sublist of {!all} — what the faults test battery,
    [cfc-tables faults] and the bench's recoverable section enumerate. *)

val register_model : alg list
(** The algorithms within the paper's atomic-register model (excludes
    the RMW-based locks), i.e. those the Theorem 1/2 lower bounds apply
    to. *)

val splitter : detector
val splitter_tree : detector
val detectors : detector list

val find : string -> alg option
(** Look up an algorithm by its [name]. *)
