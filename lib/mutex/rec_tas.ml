(** Recoverable test-and-set lock: the crash–recovery companion of
    {!Tas_lock}, in the Golab–Ramaraju recoverable-mutex model (crash
    wipes local state, shared memory persists, the restarted process
    re-runs its program from the top).

    A single owner register holds [0] (free) or [me + 1] (held by [me]),
    acquired by compare-and-swap.  Because winning the CAS and recording
    ownership are one atomic step, there is no window in which a crash
    loses the lock: the recovery path simply re-reads the owner register
    — if a previous incarnation of this process holds the lock it
    re-enters the critical section directly, otherwise it competes
    afresh.  Recovery and first acquisition share one idempotent code
    path, so the algorithm needs no explicit recover section.

    Like {!Tas_lock} this lives outside the paper's read/write-register
    model (it is excluded from [Registry.register_model]); the Theorem 1
    lower bound does not apply to it.

    Contention-free (crash-free) solo cost: 1 read + 1 CAS + 1 write
    = 3 steps on 1 register.  Recovery-path cost (checked by tests via
    {!Cfc_core.Measures.recovery_paths}): 1 step when the crashed
    incarnation held the lock, 2 steps when it did not. *)

open Cfc_base

let name = "recoverable-tas"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.Mutex_intf.n
let predicted_cf_steps (_ : Mutex_intf.params) = Some 3
let predicted_cf_registers (_ : Mutex_intf.params) = Some 1

(* Closed forms for the solo recovery path, asserted against
   [Measures.recovery_paths] by tests and the recoverable bench. *)
let recovery_steps_held = 1
let recovery_steps_not_held = 2

let recovery (_ : Mutex_intf.params) =
  Some
    {
      Mutex_intf.rec_steps_held = recovery_steps_held;
      rec_steps_not_held = recovery_steps_not_held;
      rec_registers_held = 1;
      rec_registers_not_held = 1;
    }

module Make (M : Mem_intf.MEM) = struct
  type t = { owner : M.reg }

  let create (p : Mutex_intf.params) =
    { owner =
        M.alloc ~name:"rectas.owner"
          ~width:(Ixmath.bits_needed p.Mutex_intf.n)
          ~init:0 () }

  let lock t ~me =
    (* The read is what makes the lock recoverable: a restarted
       incarnation that already holds the lock must re-enter, not
       deadlock competing against itself. *)
    if M.read t.owner = me + 1 then ()
    else
      while not (M.compare_and_set t.owner ~expected:0 (me + 1)) do
        M.pause ()
      done

  let unlock t ~me:_ = M.write t.owner 0
end
