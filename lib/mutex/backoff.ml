(** Exponential backoff on top of Lamport's fast mutex — the §4 discussion:
    "when a process notices contention it delays itself for some time,
    giving other processes a chance to proceed", which makes the winner's
    time-to-enter under contention close to the contention-free time
    (the MS93 observation reproduced by EXP-BACKOFF).

    Backoff is implemented with [M.pause] (a local step: it consumes a
    scheduling turn in the simulator and a [cpu_relax] natively) so it
    never adds shared-memory accesses; in the absence of contention the
    hook never fires and the cost is exactly Lamport's 7 steps /
    3 registers. *)

open Cfc_base

let name = "lamport-fast+backoff"
let supports = Lamport_fast.supports
let atomicity = Lamport_fast.atomicity
let predicted_cf_steps = Lamport_fast.predicted_cf_steps
let predicted_cf_registers = Lamport_fast.predicted_cf_registers

(* Delay doubles with each failed attempt, capped at [max_exponent]. *)
let max_exponent = 10

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  module N = Lamport_fast.Node (M)

  type t = N.t

  let create (p : Mutex_intf.params) =
    let on_contention ~attempt =
      let e = min attempt max_exponent in
      for _ = 1 to Ixmath.pow2 e do
        M.pause ()
      done
    in
    N.create ~on_contention ~capacity:p.Mutex_intf.n ()

  let lock t ~me = N.lock t ~slot:(me + 1)
  let unlock t ~me = N.unlock t ~slot:(me + 1)
end
