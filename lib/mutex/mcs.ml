(** The Mellor-Crummey–Scott queue lock (1991): the canonical
    {e local-spin} mutual exclusion algorithm, included to make the
    paper's §1.2 remote-access discussion (Yang–Anderson [YA93])
    executable: under the write-invalidate cache model of
    {!Cfc_core.Measures.remote_accesses}, an MCS acquisition performs a
    bounded number of remote references at {e any} contention level —
    the waiter spins on a register only its predecessor ever writes —
    whereas a test-and-set lock's spinning is remote on every iteration.

    Outside the paper's atomic-register model: it needs word-sized
    fetch-and-store and compare-and-swap (queue tail), so it does not
    appear in {!Registry.register_model} and the Theorem 1/2 bounds do
    not apply to it.

    Queue encoding over registers: [tail] and [next.(i)] hold process
    ids shifted by one (0 = null); [locked.(i)] is the spin flag of
    process [i], written only by [i]'s predecessor.

    Contention-free cost: clear next, arm flag, exchange tail (entry),
    read next, compare-and-swap tail (exit) — 5 steps over 3 registers. *)

open Cfc_base

let name = "mcs-lock"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.Mutex_intf.n
let predicted_cf_steps (_ : Mutex_intf.params) = Some 5
let predicted_cf_registers (_ : Mutex_intf.params) = Some 3

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  type t = { tail : M.reg; next : M.reg array; locked : M.reg array }

  let create (p : Mutex_intf.params) =
    let n = p.Mutex_intf.n in
    let width = Ixmath.bits_needed n in
    {
      tail = M.alloc ~name:"mcs.tail" ~width ~init:0 ();
      next = M.alloc_array ~name:"mcs.next" ~width ~init:0 n;
      locked = M.alloc_array ~name:"mcs.locked" ~width:1 ~init:0 n;
    }

  let lock t ~me =
    let id = me + 1 in
    M.write t.next.(me) 0;
    (* Arm the spin flag before publishing the node: the predecessor may
       clear it at any moment after the exchange below. *)
    M.write t.locked.(me) 1;
    let pred = M.fetch_and_store t.tail id in
    if pred <> 0 then begin
      M.write t.next.(pred - 1) id;
      (* Local spin: only the predecessor ever writes locked.(me). *)
      while M.read t.locked.(me) = 1 do
        M.pause ()
      done
    end

  let unlock t ~me =
    let id = me + 1 in
    let succ = M.read t.next.(me) in
    if succ <> 0 then M.write t.locked.(succ - 1) 0
    else if not (M.compare_and_set t.tail ~expected:id 0) then begin
      (* A successor won the exchange but has not linked yet. *)
      let succ = ref (M.read t.next.(me)) in
      while !succ = 0 do
        M.pause ();
        succ := M.read t.next.(me)
      done;
      M.write t.locked.(!succ - 1) 0
    end
end
