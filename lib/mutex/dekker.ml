(** Dekker's algorithm: the first correct two-process mutual exclusion
    algorithm (attributed by Dijkstra), using three shared bits — two
    intent flags and a turn bit that only the critical-section leaver
    writes.  Atomicity 1.  Included as a third tournament building block
    beside {!Peterson} and {!Kessels}; with it the tournament gives yet
    another bit-only O(log n) contention-free point in the mutex table.

    Contention-free cost per lock+unlock: write flag, read other flag
    (loop not entered), exit write turn, write flag — 4 steps over 3
    registers. *)

open Cfc_base

let name = "dekker-2p"
let atomicity = 1
let cf_steps = 4
let cf_registers = 3

module Make (M : Mem_intf.MEM) = struct
  type t = { flag : M.reg array; turn : M.reg }

  let create ~name () =
    {
      flag = M.alloc_array ~name:(name ^ ".flag") ~width:1 ~init:0 2;
      turn = M.alloc ~name:(name ^ ".turn") ~width:1 ~init:0 ();
    }

  let lock t ~side =
    assert (side = 0 || side = 1);
    M.write t.flag.(side) 1;
    while M.read t.flag.(1 - side) = 1 do
      if M.read t.turn <> side then begin
        M.write t.flag.(side) 0;
        while M.read t.turn <> side do
          M.pause ()
        done;
        M.write t.flag.(side) 1
      end
      else M.pause ()
    done

  let unlock t ~side =
    M.write t.turn (1 - side);
    M.write t.flag.(side) 0
end
