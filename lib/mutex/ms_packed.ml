(** The Michael–Scott multi-grain variant of Lamport's fast mutex
    ([MS93], pointed to by the paper's §1.3: packing several small
    registers into one word "enabling reads or writes to all or a subset
    of them in one atomic step" improved [Lam87] by more than 25%).

    The presence bits of the [b] array are packed [word_bits] to a word;
    a process announces itself with a 1-bit sub-word store (one step,
    neighbours untouched) and the slow-path scan reads [⌈n/word_bits⌉]
    whole words instead of [n] individual bits.  The contention-free cost
    is identical to Lamport's (7 steps, 3 registers) — the gain is the
    contended slow path, visible in total-traffic workloads and wall
    clock.  Atomicity is [max(bits_needed n, word_bits)] since a scan
    reads a whole word in one step. *)

open Cfc_base

let word_bits = 32

let name = "lamport-fast-packed"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1

let atomicity (p : Mutex_intf.params) =
  if p.Mutex_intf.n <= 1 then Ixmath.bits_needed p.Mutex_intf.n
  else max (Ixmath.bits_needed p.Mutex_intf.n) (min word_bits p.Mutex_intf.n)

let predicted_cf_steps (_ : Mutex_intf.params) = Some 7
let predicted_cf_registers (_ : Mutex_intf.params) = Some 3

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  module C = Lamport_fast.Core (M)

  type t = C.t

  let create (p : Mutex_intf.params) =
    let capacity = p.Mutex_intf.n in
    let bits_per_word = min word_bits (max 1 capacity) in
    let words = Ixmath.ceil_div capacity bits_per_word in
    let b =
      M.alloc_array ~name:"lamp.bw" ~width:bits_per_word ~init:0 words
    in
    let presence =
      {
        C.set =
          (fun ~slot v ->
            let bit = slot - 1 in
            M.write_field b.(bit / bits_per_word)
              ~index:(bit mod bits_per_word) ~width:1 v);
        await_clear =
          (fun () ->
            (* Faithful to Lamport's per-bit scan: each presence bit must
               be OBSERVED zero once, not all simultaneously — a word
               snapshot confirms every bit that is zero in it, and we
               re-read only until every bit of the word has been
               confirmed by some snapshot.  One read per word when
               uncontended. *)
            for w = 0 to words - 1 do
              let bits_here = min bits_per_word (capacity - (w * bits_per_word)) in
              let full = Ixmath.pow2 bits_here - 1 in
              let confirmed = ref 0 in
              let continue = ref true in
              while !continue do
                let v = M.read b.(w) in
                confirmed := !confirmed lor (lnot v land full);
                if !confirmed = full then continue := false
                else M.pause ()
              done
            done);
      }
    in
    C.make ~name:"lamp" ~capacity ~presence ()

  let lock t ~me = C.lock t ~slot:(me + 1)
  let unlock t ~me = C.unlock t ~slot:(me + 1)
end
