(** See the header comment in the implementation for the algorithm's
    description, the crash–recovery model, and its exact costs. *)

include Mutex_intf.ALG

val recovery_steps_held : int
(** Exact step count of the solo recovery path when the crashed
    incarnation held the lock (re-enter via one read). *)

val recovery_steps_not_held : int
(** Exact step count of the solo recovery path when it did not hold the
    lock (one read plus one CAS). *)
