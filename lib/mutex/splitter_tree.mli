(** The §2.6 contention detector: a [2^l]-ary tree of splitters with
    worst-case step complexity [4⌈log n / l⌉]; see the implementation
    header for the soundness argument and the model-checker history. *)

val depth : n:int -> l:int -> int
(** Tree depth [⌈log n / l⌉] (at least 1). *)

include Mutex_intf.DETECTOR
