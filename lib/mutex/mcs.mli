(** See the header comment in the implementation for the algorithm's
    description and its exact contention-free cost. *)

include Mutex_intf.ALG
