(** Peterson's two-process mutual exclusion algorithm, using three shared
    bits (two intent flags and one multi-writer victim bit).  Atomicity 1.

    Contention-free cost per lock+unlock: write flag, write victim, read
    other flag (loop exits immediately), exit write flag — 4 steps over 3
    registers (the victim register is written but the other's flag decides;
    the other flag read touches a 3rd register). *)

open Cfc_base

let name = "peterson-2p"
let atomicity = 1
let cf_steps = 4
let cf_registers = 3

module Make (M : Mem_intf.MEM) = struct
  type t = { flag : M.reg array; victim : M.reg }

  let create ~name () =
    {
      flag = M.alloc_array ~name:(name ^ ".flag") ~width:1 ~init:0 2;
      victim = M.alloc ~name:(name ^ ".victim") ~width:1 ~init:0 ();
    }

  let lock t ~side =
    assert (side = 0 || side = 1);
    M.write t.flag.(side) 1;
    M.write t.victim side;
    while M.read t.flag.(1 - side) = 1 && M.read t.victim = side do
      M.pause ()
    done

  let unlock t ~side = M.write t.flag.(side) 0
end
