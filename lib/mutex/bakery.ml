(** Lamport's bakery algorithm (1974): the classic n-process mutual
    exclusion baseline whose contention-free step complexity is Θ(n) —
    exactly the cost profile the paper's fast algorithms improve on.

    Contention-free cost: entry = write choosing, n ticket reads, write
    ticket, write choosing, and per other process one choosing read and
    one ticket read — [3n + 1] steps; exit = 1 step; total [3n + 2] steps
    over [2n] registers.

    Tickets grow without bound under sustained contention; the simulator's
    registers are finite, so we allocate [ticket_width]-bit tickets
    (default 30) and document this as the standard bounded-run
    approximation of an unbounded register (see DESIGN.md).  Atomicity is
    therefore [ticket_width], not a function of [n]. *)

open Cfc_base

let ticket_width = 30
let name = "bakery"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
let atomicity (_ : Mutex_intf.params) = ticket_width

let predicted_cf_steps (p : Mutex_intf.params) =
  Some ((3 * p.Mutex_intf.n) + 2)

let predicted_cf_registers (p : Mutex_intf.params) = Some (2 * p.Mutex_intf.n)

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  type t = { n : int; choosing : M.reg array; ticket : M.reg array }

  let create (p : Mutex_intf.params) =
    let n = p.Mutex_intf.n in
    {
      n;
      choosing = M.alloc_array ~name:"choosing" ~width:1 ~init:0 n;
      ticket = M.alloc_array ~name:"ticket" ~width:ticket_width ~init:0 n;
    }

  let lock t ~me =
    M.write t.choosing.(me) 1;
    let maxt = ref 0 in
    for j = 0 to t.n - 1 do
      let v = M.read t.ticket.(j) in
      if v > !maxt then maxt := v
    done;
    M.write t.ticket.(me) (!maxt + 1);
    M.write t.choosing.(me) 0;
    let mine = !maxt + 1 in
    for j = 0 to t.n - 1 do
      if j <> me then begin
        while M.read t.choosing.(j) = 1 do
          M.pause ()
        done;
        let precedes v = v <> 0 && (v < mine || (v = mine && j < me)) in
        while precedes (M.read t.ticket.(j)) do
          M.pause ()
        done
      end
    done

  let unlock t ~me = M.write t.ticket.(me) 0
end
