(** The one-bit mutual exclusion algorithm (Burns; Lamport's "one-bit
    solution"): deadlock-free mutual exclusion with exactly one shared
    bit per process — the matching upper bound for the Burns–Lynch space
    theorem the paper cites ([BL93]: any deadlock-free mutex needs n
    registers).  Space-optimal and bit-only (atomicity 1), but its
    contention-free step complexity is Θ(n): the process must scan every
    other bit — exactly the cost profile Theorem 3's tree removes.

    Entry for process i: raise b[i]; if any lower-priority... rather,
    any lower-INDEX bit is up, back off and retry (lower indices win
    ties); once the prefix is clear with b[i] up, wait for all higher
    indices to clear.  Exit: drop b[i].  Deadlock-free (the lowest
    raised index always makes progress) but not starvation-free —
    lockout of high indices is possible, which is fine for the paper's
    (weak) deadlock-freedom requirement.

    Contention-free: 1 raise + (n - 1) scans + 1 drop = n + 1 steps over
    n registers, identical for every process. *)

open Cfc_base

let name = "one-bit"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
let atomicity (_ : Mutex_intf.params) = 1
let predicted_cf_steps (p : Mutex_intf.params) = Some (p.Mutex_intf.n + 1)
let predicted_cf_registers (p : Mutex_intf.params) = Some p.Mutex_intf.n

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  type t = { n : int; b : M.reg array }

  let create (p : Mutex_intf.params) =
    { n = p.Mutex_intf.n;
      b = M.alloc_array ~name:"ob" ~width:1 ~init:0 p.Mutex_intf.n }

  let lock t ~me =
    let rec enter () =
      M.write t.b.(me) 1;
      let rec scan_lower j =
        if j >= me then true
        else if M.read t.b.(j) = 1 then begin
          (* A lower index is competing: yield to it and retry. *)
          M.write t.b.(me) 0;
          while M.read t.b.(j) = 1 do
            M.pause ()
          done;
          false
        end
        else scan_lower (j + 1)
      in
      if scan_lower 0 then
        for j = me + 1 to t.n - 1 do
          while M.read t.b.(j) = 1 do
            M.pause ()
          done
        done
      else enter ()
    in
    enter ()

  let unlock t ~me = M.write t.b.(me) 0
end
