(** See the header comment in the implementation for the algorithm, the
    crash–recovery model, the packed-queue encoding and its exact
    contention-free and recovery-path costs. *)

include Mutex_intf.ALG
