(** Lamport's fast mutex with exponential backoff (§4); see the
    implementation header. *)

val max_exponent : int
(** Cap on the backoff doubling (delay ≤ 2^max_exponent pauses). *)

include Mutex_intf.ALG
