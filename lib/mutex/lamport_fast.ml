(** Lamport's fast mutual exclusion algorithm [Lam87].

    In the absence of contention a process performs exactly 7 accesses to 3
    distinct registers: entry = announce presence; write x; read y; write
    y; read x (5 steps), exit = clear y; clear presence (2 steps) — the
    constant contention-free complexity that motivates the paper.  In the
    presence of contention the entry code may busy-wait without bound (the
    worst-case step complexity of mutual exclusion is infinite, [AT92]).

    The algorithm is exposed three ways:
    - {!Core}: the x/y gate logic over an abstract {e presence} structure
      (the [b] array), so the packed multi-grain variant ({!Ms_packed})
      reuses the identical control flow;
    - {!Node}: presence = one 1-bit register per slot (the paper's
      algorithm), reusable as a tree node with ids [1..capacity];
    - the {!Cfc_mutex.Mutex_intf.ALG} interface for [n] processes
      directly, where process [me] uses slot [me+1] and the gate registers
      have width [bits_needed n] (the paper's atomicity-[log n] point). *)

open Cfc_base

module Core (M : Mem_intf.MEM) = struct
  (** The [b] array abstraction: [set ~slot v] is one shared access
      announcing (or retracting) the slot's presence; [await_clear] spins
      until every slot is absent (only used on the slow path). *)
  type presence = {
    set : slot:int -> int -> unit;
    await_clear : unit -> unit;
  }

  type t = {
    capacity : int;
    x : M.reg;  (** last announced slot; holds 1..capacity *)
    y : M.reg;  (** gate: 0 = free, otherwise the slot that closed it *)
    b : presence;
    on_contention : attempt:int -> unit;
        (** called before re-polling the gate on a failed attempt — the
            backoff hook of the §4 discussion; must not access shared
            memory other than via [M.pause] *)
  }

  (* Values stored in x and y range over 0..capacity (0 = "free" in y), so
     width bits_needed capacity suffices for both. *)
  let gate_width ~capacity = Ixmath.bits_needed capacity

  let make ?(name = "lam") ?(on_contention = fun ~attempt:_ -> ())
      ~capacity ~presence () =
    if capacity < 1 then invalid_arg "Lamport_fast: capacity";
    {
      capacity;
      x = M.alloc ~name:(name ^ ".x") ~width:(gate_width ~capacity) ~init:0 ();
      y = M.alloc ~name:(name ^ ".y") ~width:(gate_width ~capacity) ~init:0 ();
      b = presence;
      on_contention;
    }

  (* One attempt at the fast path; returns true when the lock is won. *)
  let rec attempt ?(tries = 0) t ~slot =
    t.b.set ~slot 1;
    M.write t.x slot;
    if M.read t.y <> 0 then begin
      t.b.set ~slot 0;
      t.on_contention ~attempt:tries;
      while M.read t.y <> 0 do
        M.pause ()
      done;
      attempt ~tries:(tries + 1) t ~slot
    end
    else begin
      M.write t.y slot;
      if M.read t.x <> slot then begin
        (* Slow path: someone else announced after us. *)
        t.b.set ~slot 0;
        t.b.await_clear ();
        if M.read t.y = slot then true
        else begin
          t.on_contention ~attempt:tries;
          while M.read t.y <> 0 do
            M.pause ()
          done;
          attempt ~tries:(tries + 1) t ~slot
        end
      end
      else true
    end

  let lock t ~slot =
    if slot < 1 || slot > t.capacity then invalid_arg "Lamport_fast: slot";
    ignore (attempt t ~slot : bool)

  let unlock t ~slot =
    M.write t.y 0;
    t.b.set ~slot 0
end

module Node (M : Mem_intf.MEM) = struct
  module C = Core (M)

  type t = C.t

  let create ?(name = "lam") ?on_contention ~capacity () =
    let bits = M.alloc_array ~name:(name ^ ".b") ~width:1 ~init:0 capacity in
    let presence =
      {
        C.set = (fun ~slot v -> M.write bits.(slot - 1) v);
        await_clear =
          (fun () ->
            for j = 0 to capacity - 1 do
              while M.read bits.(j) <> 0 do
                M.pause ()
              done
            done);
      }
    in
    C.make ~name ?on_contention ~capacity ~presence ()

  let lock = C.lock
  let unlock = C.unlock
end

let name = "lamport-fast"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.Mutex_intf.n

(* Contention-free: 5 entry + 2 exit accesses over {b[me], x, y}. *)
let predicted_cf_steps (_ : Mutex_intf.params) = Some 7
let predicted_cf_registers (_ : Mutex_intf.params) = Some 3

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  module N = Node (M)

  type t = N.t

  let create (p : Mutex_intf.params) = N.create ~capacity:p.Mutex_intf.n ()
  let lock t ~me = N.lock t ~slot:(me + 1)
  let unlock t ~me = N.unlock t ~slot:(me + 1)
end
