(** Lamport's splitter: the wait-free core of the fast-path and a direct
    solution to the contention detection problem (§2.3) with atomicity
    [⌈log(n+1)⌉].  At most one process returns [true] ("alone"); a process
    running solo always does.

    Cost (same solo and worst case — the code is straight-line):
    write x, read y, write y, read x = 4 steps, 2 registers. *)

open Cfc_base

let name = "splitter"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1

(* x holds ids 1..n (0 is the unused initial value), y is one bit. *)
let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.Mutex_intf.n
let predicted_cf_steps (_ : Mutex_intf.params) = Some 4
let predicted_wc_steps (_ : Mutex_intf.params) = Some 4

module Make (M : Mem_intf.MEM) = struct
  type t = { x : M.reg; y : M.reg }

  let create (p : Mutex_intf.params) =
    let w = Ixmath.bits_needed p.Mutex_intf.n in
    {
      x = M.alloc ~name:"sp.x" ~width:w ~init:0 ();
      y = M.alloc ~name:"sp.y" ~width:1 ~init:0 ();
    }

  let detect t ~me =
    let id = me + 1 in
    M.write t.x id;
    if M.read t.y = 1 then false
    else begin
      M.write t.y 1;
      M.read t.x = id
    end
end
