(** Kessels' two-process arbiter [Kes82]: mutual exclusion with four
    single-writer shared bits (no register is written by both processes),
    the building block of the paper's bit-only O(log n) worst-case
    register complexity entry in the mutex table.  Atomicity 1.

    The victim of Peterson's algorithm is encoded as the XOR of two
    single-writer bits: victim = side 0 iff [turn0 = turn1].

    Contention-free cost per lock+unlock: write req, read other turn,
    write own turn, read other req (loop exits), exit write req —
    5 steps over 4 registers. *)

open Cfc_base

let name = "kessels-2p"
let atomicity = 1
let cf_steps = 5
let cf_registers = 4

module Make (M : Mem_intf.MEM) = struct
  type t = { req : M.reg array; turn : M.reg array }

  let create ~name () =
    {
      req = M.alloc_array ~name:(name ^ ".req") ~width:1 ~init:0 2;
      turn = M.alloc_array ~name:(name ^ ".turn") ~width:1 ~init:0 2;
    }

  let lock t ~side =
    assert (side = 0 || side = 1);
    M.write t.req.(side) 1;
    let other_turn = M.read t.turn.(1 - side) in
    (* Make self the victim: side 0 sets turns equal, side 1 unequal. *)
    let mine = if side = 0 then other_turn else 1 - other_turn in
    M.write t.turn.(side) mine;
    let victim_is_me () =
      let theirs = M.read t.turn.(1 - side) in
      if side = 0 then theirs = mine else theirs <> mine
    in
    while M.read t.req.(1 - side) = 1 && victim_is_me () do
      M.pause ()
    done

  let unlock t ~side = M.write t.req.(side) 0
end
