(** Binary tournament tree over any two-process lock (Peterson–Fischer
    [PF77]; with {!Kessels} nodes this is the bit-only algorithm whose
    worst-case register complexity is O(log n) — the [Kes82] row of the
    paper's mutex table).  Process [me] enters at its leaf and plays one
    two-process match per level; release is top-down (see {!Tree} for why).

    Contention-free complexity: [d · cf] where [d = ⌈log2 n⌉] and [cf] is
    the node lock's solo cost — O(log n) steps and registers with
    atomicity 1, matching the paper's claim that for [l = 1] the
    contention-free step complexity Θ(log n) is achievable. *)

open Cfc_base

module Make (T : Mutex_intf.TWO) = struct
  let name = T.name ^ "-tournament"
  let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
  let atomicity (_ : Mutex_intf.params) = T.atomicity
  let depth n = if n <= 1 then 1 else Ixmath.ceil_log2 n

  let predicted_cf_steps (p : Mutex_intf.params) =
    Some (T.cf_steps * depth p.Mutex_intf.n)

  let predicted_cf_registers (p : Mutex_intf.params) =
    Some (T.cf_registers * depth p.Mutex_intf.n)

  let recovery (_ : Mutex_intf.params) = None

  module Make (M : Mem_intf.MEM) = struct
    module L = T.Make (M)

    type t = { n : int; depth : int; levels : L.t array array }

    let create (p : Mutex_intf.params) =
      let n = p.Mutex_intf.n in
      let depth = depth n in
      let levels =
        Array.init depth (fun j ->
            let groups = Ixmath.ceil_div n (Ixmath.pow2 (j + 1)) in
            Array.init groups (fun g ->
                L.create ~name:(Printf.sprintf "%s.%d.%d" T.name j g) ()))
      in
      { n; depth; levels }

    let node_and_side t ~me ~level =
      let group = me / Ixmath.pow2 (level + 1) in
      let side = me / Ixmath.pow2 level mod 2 in
      (t.levels.(level).(group), side)

    let lock t ~me =
      assert (me >= 0 && me < t.n);
      for j = 0 to t.depth - 1 do
        let node, side = node_and_side t ~me ~level:j in
        L.lock node ~side
      done

    let unlock t ~me =
      for j = t.depth - 1 downto 0 do
        let node, side = node_and_side t ~me ~level:j in
        L.unlock node ~side
      done
  end
end

module Peterson_tournament = Make (Peterson)
module Kessels_tournament = Make (Kessels)
module Dekker_tournament = Make (Dekker)
