(** Recoverable queue lock: the crash–recovery companion of {!Mcs}, in
    the Golab–Ramaraju recoverable-mutex model (crash wipes local state,
    shared memory persists, the restarted process re-runs its program
    from the top), assembled Golab-style from two explicit components —
    a persistent FIFO task queue and per-process promotion/signal cells.

    A classical MCS enqueue is unrecoverable here: the predecessor comes
    back only as the return value of the fetch-and-store on the tail, so
    a crash between the exchange and persisting that value loses the
    only copy of the information needed to link the queue — the
    predecessor's release then blocks forever (this exact bug is the
    broken model-checker fixture refuted by the fault exploration).  The
    queue is instead one {e packed} register [q] (§1.3-style
    field-packing, as in {!Ms_packed}): a FIFO of process ids in
    [⌈log2 (n+1)⌉]-bit slots, slot 0 the head, 0 the empty slot, ids
    shifted by one.  Enqueue and dequeue are then single CASes, so every
    crash leaves [q] consistent, and membership and headship are pure
    functions of one read — the queue is its own recovery log, and the
    per-incarnation state a restarted process needs is re-derived from
    that read.

    The signal cell [sig.(i)] is only a wakeup hint: entry to the
    critical section is always validated by [head q = i + 1].  A waiter
    that wakes on a stale hint clears the cell and re-validates; because
    a releaser dequeues {e before} signalling, the re-validation read
    cannot miss a real grant.  A releaser that crashes between the
    dequeue and the signal leaves the new head unsignalled; any later
    [lock] (in particular the crashed process's own restarted
    incarnation) repairs the lost wakeup before enqueueing itself.

    Like {!Mcs} and {!Rec_tas} this lives outside the paper's
    read/write-register model (CAS; excluded from
    [Registry.register_model]).  Packing bounds it to
    [n·⌈log2 (n+1)⌉ <= 62] (n <= 15 in practice).

    Contention-free (crash-free) solo cost: read + CAS-enqueue (entry),
    read + CAS-dequeue + signal clear (exit) — 5 steps on 2 registers.
    Recovery-path cost (asserted against
    {!Cfc_core.Measures.recovery_paths}): 1 step when the crashed
    incarnation held the lock (one read shows it is still head), 2 when
    it did not (read + re-enqueue CAS); crashes mid-exit cost one or the
    other depending on whether the dequeue took effect.  One register —
    hence one recovery remote reference — in every case. *)

open Cfc_base

let name = "recoverable-queue"

let field_bits (p : Mutex_intf.params) = Ixmath.bits_needed p.Mutex_intf.n
let queue_bits (p : Mutex_intf.params) = p.Mutex_intf.n * field_bits p

let supports (p : Mutex_intf.params) =
  p.Mutex_intf.n >= 1 && queue_bits p <= 62

let atomicity = queue_bits
let predicted_cf_steps (_ : Mutex_intf.params) = Some 5
let predicted_cf_registers (_ : Mutex_intf.params) = Some 2

let recovery (_ : Mutex_intf.params) =
  Some
    {
      Mutex_intf.rec_steps_held = 1;
      rec_steps_not_held = 2;
      rec_registers_held = 1;
      rec_registers_not_held = 1;
    }

module Make (M : Mem_intf.MEM) = struct
  type t = { n : int; fb : int; q : M.reg; signal : M.reg array }

  let create (p : Mutex_intf.params) =
    let n = p.Mutex_intf.n in
    (* Fail loudly at the packing cap: without this check the oversized
       allocation surfaces as a backend-specific width error
       ("Register.make recq.q: width 80" on the simulator, a bare
       "Native_mem: width" natively) that names neither the algorithm
       nor the cap.  Registry-driven sweeps gate on [supports] and never
       get here; a direct caller gets the full story. *)
    if not (supports p) then
      invalid_arg
        (Printf.sprintf
           "%s: n = %d exceeds the packed-word queue cap (n slots of \
            bits_needed(n) bits each: %d * %d = %d bits > 62); the packed \
            encoding supports n <= 15"
           name n n (field_bits p) (queue_bits p));
    {
      n;
      fb = field_bits p;
      q = M.alloc ~name:"recq.q" ~width:(queue_bits p) ~init:0 ();
      signal = M.alloc_array ~name:"recq.sig" ~width:1 ~init:0 n;
    }

  (* Pure views of one queue word. *)
  let slot t w s = (w lsr (s * t.fb)) land ((1 lsl t.fb) - 1)
  let head t w = slot t w 0

  let member t w id =
    let rec go s = s < t.n && (slot t w s = id || go (s + 1)) in
    go 0

  (* First free slot; the queue holds each of the n processes at most
     once, so it never overflows. *)
  let enqueue t w id =
    let rec go s = if slot t w s = 0 then s else go (s + 1) in
    w lor (id lsl (go 0 * t.fb))

  let dequeue t w = w lsr t.fb

  (* Spin on the own signal cell until it is set, then validate against
     the queue: a releaser dequeues before signalling, so on a genuine
     grant the head re-read cannot miss; a stale hint (a helper's repair,
     or one left over from a crashed exit) is cleared and re-validated. *)
  let rec wait t ~me =
    let id = me + 1 in
    while M.read t.signal.(me) = 0 do
      M.pause ()
    done;
    if head t (M.read t.q) = id then ()
    else begin
      M.write t.signal.(me) 0;
      if head t (M.read t.q) = id then () else wait t ~me
    end

  let rec lock t ~me =
    let id = me + 1 in
    let w = M.read t.q in
    if head t w = id then ()
      (* Head of the queue: holding already (a restarted incarnation that
         crashed in or after its critical section) or freshly granted. *)
    else if member t w id then wait t ~me
      (* Enqueued by a crashed incarnation: resume waiting. *)
    else begin
      (* Repair a lost wakeup before enqueueing: a releaser that crashed
         between its dequeue and its signal left the current head
         unsignalled.  A spurious signal is harmless (the waiter
         validates against the queue), so staleness of [w] is fine. *)
      (match head t w with
      | 0 -> ()
      | h -> if M.read t.signal.(h - 1) = 0 then M.write t.signal.(h - 1) 1);
      if M.compare_and_set t.q ~expected:w (enqueue t w id) then
        if head t w = 0 then () (* empty queue: enqueueing is entering *)
        else wait t ~me
      else lock t ~me
    end

  let unlock t ~me =
    (* Dequeue (single CAS, retried against concurrent enqueues — they
       never change the head, which is still [me + 1]), then wake the
       new head, then retire the own hint cell for the next passage. *)
    let rec pop () =
      let w = M.read t.q in
      if M.compare_and_set t.q ~expected:w (dequeue t w) then w
      else pop ()
    in
    let w = pop () in
    (match head t (dequeue t w) with
    | 0 -> ()
    | h -> M.write t.signal.(h - 1) 1);
    M.write t.signal.(me) 0
end
