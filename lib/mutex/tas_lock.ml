(** Test-and-set spin lock: one shared bit in the read–modify–write model.
    Outside the paper's atomic-register model for mutex (§2 assumes
    read/write registers only), included as the RMW baseline the naming
    section's primitives suggest: constant contention-free complexity
    with atomicity 1 — demonstrating that the Theorem 1 lower bound is a
    fact about plain registers, not about shared memory per se.

    Contention-free cost: 1 TAS + 1 write = 2 steps, 1 register. *)

open Cfc_base

let name = "tas-lock"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
let atomicity (_ : Mutex_intf.params) = 1
let predicted_cf_steps (_ : Mutex_intf.params) = Some 2
let predicted_cf_registers (_ : Mutex_intf.params) = Some 1

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  type t = { bit : M.reg }

  let create (_ : Mutex_intf.params) =
    { bit = M.alloc_bit ~name:"tas.lock" ~model:Cfc_base.Model.rmw ~init:0 () }

  let lock t ~me:_ =
    while M.bit_op t.bit Ops.Test_and_set = Some 1 do
      M.pause ()
    done

  let unlock t ~me:_ = M.write t.bit 0
end
