(** Interfaces for mutual exclusion and contention detection algorithms.

    Algorithms are functors over {!Cfc_base.Mem_intf.MEM} so the identical
    code runs on the instrumented simulator and on the native multicore
    backend.  An algorithm never annotates regions or measures anything —
    harnesses do that around [lock]/[unlock]. *)

open Cfc_base

type params = {
  n : int;  (** number of competing processes, ids [0..n-1] *)
  l : int;  (** the atomicity parameter: target register width in bits.
                Algorithms that do not trade off on [l] ignore it. *)
}

(** [params n] with [l] defaulting to [bits_needed n] (large registers). *)
let params ?l n =
  let l = match l with Some l -> l | None -> Ixmath.bits_needed n in
  { n; l }

(** Predicted solo recovery-path complexity of a recoverable lock, in
    the Golab–Ramaraju crash–recovery model: the cost for a restarted
    incarnation to get back into its critical section, split by whether
    the crashed incarnation held the lock (crash in [Critical]) or not
    (crash in [Trying]).  Crashes in [Exiting] are ambiguous — the
    release may or may not have taken effect — so a sweep point there
    must cost one of the two forms, never more.  Registers double as the
    predicted recovery RMR: a crash invalidates the incarnation's cached
    copies, so solo every distinct register on the path is one remote
    reference (the §1.2 claim, extended to recovery). *)
type recovery_forms = {
  rec_steps_held : int;
  rec_steps_not_held : int;
  rec_registers_held : int;
  rec_registers_not_held : int;
}

(** A mutual exclusion algorithm. *)
module type ALG = sig
  val name : string

  val supports : params -> bool
  (** Whether the algorithm is defined for these parameters (e.g. a
      2-process algorithm supports only [n <= 2]). *)

  val recovery : params -> recovery_forms option
  (** [Some forms] iff the lock is recoverable (a restarted incarnation
      re-runs [lock] from the top and re-enters instead of deadlocking);
      the exact solo recovery closed forms are asserted against
      {!Cfc_core.Measures.recovery_paths} by tests and benches.  [None]
      for ordinary locks, for which a crash while holding blocks the
      system. *)

  val atomicity : params -> int
  (** The width in bits of the widest register the algorithm accesses —
      the paper's [l].  Must match what [create] actually allocates
      (cross-checked by tests against {!Cfc_runtime.Memory.max_width}). *)

  (** Predicted contention-free complexity, if the algorithm has a known
      closed form (used by exact-count tests and the bench tables). *)
  val predicted_cf_steps : params -> int option

  val predicted_cf_registers : params -> int option

  module Make (M : Mem_intf.MEM) : sig
    type t

    val create : params -> t
    (** Allocate the shared registers.  Call outside process execution. *)

    val lock : t -> me:int -> unit
    val unlock : t -> me:int -> unit
  end
end

(** A two-process lock, the building block of tournament trees [PF77].
    Sides are 0 and 1; at most one process uses a side at a time. *)
module type TWO = sig
  val name : string

  val atomicity : int
  (** Width of the widest register (1 for the bit-only algorithms). *)

  val cf_steps : int
  (** Exact solo lock+unlock access count. *)

  val cf_registers : int
  (** Exact solo distinct-register count. *)

  module Make (M : Mem_intf.MEM) : sig
    type t

    val create : name:string -> unit -> t
    val lock : t -> side:int -> unit
    val unlock : t -> side:int -> unit
  end
end

(** A solution to the contention detection problem (§2.3): in every run at
    most one process outputs [true]; a process running alone outputs
    [true].  Single-shot: call [detect] once per process. *)
module type DETECTOR = sig
  val name : string
  val supports : params -> bool
  val atomicity : params -> int
  val predicted_cf_steps : params -> int option
  val predicted_wc_steps : params -> int option
  (** Worst-case step complexity when the algorithm is wait-free (the §2.6
      claim that contention detection has bounded worst-case step
      complexity, unlike mutual exclusion). *)

  module Make (M : Mem_intf.MEM) : sig
    type t

    val create : params -> t
    val detect : t -> me:int -> bool
  end
end
