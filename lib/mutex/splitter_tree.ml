(** The §2.6 contention detector for small atomicity: "contention
    detection can be solved by an algorithm whose worst-case step
    complexity is ⌈log n / l⌉" (up to the splitter's constant factor 4).

    A [2^l]-ary tree of splitters.  Each node has an [l]-bit register [x]
    (all [2^l] values are usable slot ids — unlike the mutex tree's gate,
    [x] needs no "empty" encoding, so the node capacity is exactly [2^l]
    and the depth exactly [⌈log n / l⌉]) and a 1-bit gate [y].  A process
    enters at its leaf with slot = its id within the leaf group and plays
    the classic splitter at each node on the way to the root: write [x],
    lose if [y] is set, set [y], lose if [x] changed.  It outputs 1 iff it
    wins every node.

    Soundness needs slot ids to be distinct among the processes that ever
    compete at a node — true by construction: leaf groups use distinct
    within-group ids, and at an inner node the competitors are winners of
    distinct children.  With distinct ids the splitter admits at most one
    winner (if [p]'s x-write precedes [q]'s, [p]'s successful verify read
    must precede [q]'s x-write — nobody else can rewrite [p]'s slot — so
    [q] reads the gate after [p] set it and loses).  A naive flat
    "chunked" splitter is NOT sound for n ≥ 3 — a third process sharing a
    chunk can restore it between verification reads; the bounded model
    checker found the 16-step counterexample, kept as a regression
    fixture in the mcheck test suite.

    Wait-free and straight-line: worst case = contention-free =
    [4·⌈log n / l⌉] steps over [2·⌈log n / l⌉] registers. *)

open Cfc_base

let depth ~n ~l = Ixmath.ceil_log2 (max 2 n) |> fun b -> Ixmath.ceil_div b l

let name = "splitter-tree"

let supports (p : Mutex_intf.params) =
  p.Mutex_intf.n >= 1 && p.Mutex_intf.l >= 1

let atomicity (p : Mutex_intf.params) =
  min p.Mutex_intf.l (Ixmath.ceil_log2 (max 2 p.Mutex_intf.n))

let predicted_cf_steps (p : Mutex_intf.params) =
  Some (4 * depth ~n:p.Mutex_intf.n ~l:p.Mutex_intf.l)

let predicted_wc_steps = predicted_cf_steps

module Make (M : Mem_intf.MEM) = struct
  type node = { x : M.reg; y : M.reg }

  type t = {
    n : int;
    arity : int;  (** 2^l *)
    depth : int;
    levels : node array array;
  }

  let create (p : Mutex_intf.params) =
    let n = p.Mutex_intf.n in
    let width = atomicity p in
    let arity = Ixmath.pow2 width in
    let depth = depth ~n ~l:width in
    let levels =
      Array.init depth (fun j ->
          let groups = Ixmath.ceil_div n (Ixmath.ipow arity (j + 1)) in
          Array.init groups (fun g ->
              {
                x =
                  M.alloc ~name:(Printf.sprintf "st%d.%d.x" j g) ~width
                    ~init:0 ();
                y =
                  M.alloc ~name:(Printf.sprintf "st%d.%d.y" j g) ~width:1
                    ~init:0 ();
              }))
    in
    { n; arity; depth; levels }

  (* The classic splitter: at most one winner among distinct slots. *)
  let splitter node ~slot =
    M.write node.x slot;
    if M.read node.y = 1 then false
    else begin
      M.write node.y 1;
      M.read node.x = slot
    end

  let detect t ~me =
    assert (me >= 0 && me < t.n);
    let rec climb j =
      if j >= t.depth then true
      else begin
        let group = me / Ixmath.ipow t.arity (j + 1) in
        let slot = me / Ixmath.ipow t.arity j mod t.arity in
        if splitter t.levels.(j).(group) ~slot then climb (j + 1)
        else false
      end
    in
    climb 0
end
