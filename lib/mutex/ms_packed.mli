(** The Michael–Scott multi-grain variant of Lamport's fast mutex (§1.3);
    see the implementation header for the construction. *)

val word_bits : int
(** Presence bits packed per word (32). *)

include Mutex_intf.ALG
