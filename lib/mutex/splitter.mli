(** Lamport's splitter as a contention detector (§2.3); see the
    implementation header. *)

include Mutex_intf.DETECTOR
