(** First-class-module registry of all mutual exclusion algorithms and
    contention detectors, for harness sweeps and benches. *)

type alg = (module Mutex_intf.ALG)
type detector = (module Mutex_intf.DETECTOR)

let lamport_fast : alg = (module Lamport_fast)
let tree : alg = (module Tree)
let peterson_tournament : alg = (module Tournament.Peterson_tournament)
let kessels_tournament : alg = (module Tournament.Kessels_tournament)
let dekker_tournament : alg = (module Tournament.Dekker_tournament)
let bakery : alg = (module Bakery)
let tas_lock : alg = (module Tas_lock)
let rec_tas : alg = (module Rec_tas)
let rec_queue : alg = (module Rec_queue)
let backoff : alg = (module Backoff)
let ms_packed : alg = (module Ms_packed)
let mcs : alg = (module Mcs)
let one_bit : alg = (module One_bit)

let all : alg list =
  [ lamport_fast; tree; peterson_tournament; kessels_tournament;
    dekker_tournament; bakery; one_bit; tas_lock; rec_tas; rec_queue;
    backoff; ms_packed; mcs ]

let is_recoverable (module A : Mutex_intf.ALG) =
  A.recovery (Mutex_intf.params 2) <> None

let recoverable : alg list = List.filter is_recoverable all

(** The algorithms within the paper's atomic-register model (excludes the
    RMW-based {!Tas_lock} and the CAS-based {!Rec_tas}), i.e. those the
    Theorem 1/2 lower bounds apply to. *)
let register_model : alg list =
  [ lamport_fast; tree; peterson_tournament; kessels_tournament;
    dekker_tournament; bakery; one_bit; backoff; ms_packed ]

let splitter : detector = (module Splitter)
let splitter_tree : detector = (module Splitter_tree)
let detectors : detector list = [ splitter; splitter_tree ]

let find name_ : alg option =
  List.find_opt (fun (module A : Mutex_intf.ALG) -> A.name = name_) all
