(** The Theorem 3 construction: a tree of Lamport fast-mutex nodes.

    For atomicity [l], each node is a copy of Lamport's algorithm with its
    own registers of width [l], arbitrating among [c = 2^l - 1] slots
    (an [l]-bit register distinguishes [2^l] values and the gate register
    [y] must also encode "free", leaving [2^l - 1] usable slot ids; the
    paper's prose says "2^l processes per node", glossing this encoding —
    see DESIGN.md).  A process enters at its leaf and climbs to the root,
    holding every node on its path; it releases top-down, which preserves
    the invariant that at most one process uses any slot of any node at a
    time (the paper releases bottom-up; both orders are safe for the same
    counts, the top-down order makes the slot invariant immediate).

    Contention-free complexity: exactly [7·d] steps and [3·d] registers
    where [d = ⌈log_c n⌉] is the tree depth — the paper's
    [O(⌈log n / l⌉)] upper bound (Theorem 3). *)

open Cfc_base

let capacity_of_l l =
  if l < 2 then
    invalid_arg "Tree: atomicity l must be >= 2 (use a bit-only tournament \
                 algorithm for l = 1)"
  else Ixmath.pow2 l - 1

let depth ~n ~l = Ixmath.ceil_log ~base:(capacity_of_l l) n

let name = "tree-lamport"
let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1 && p.Mutex_intf.l >= 2
let atomicity (p : Mutex_intf.params) = p.Mutex_intf.l

let predicted_cf_steps (p : Mutex_intf.params) =
  Some (7 * depth ~n:p.Mutex_intf.n ~l:p.Mutex_intf.l)

let predicted_cf_registers (p : Mutex_intf.params) =
  Some (3 * depth ~n:p.Mutex_intf.n ~l:p.Mutex_intf.l)

let recovery (_ : Mutex_intf.params) = None

module Make (M : Mem_intf.MEM) = struct
  module N = Lamport_fast.Node (M)

  type t = {
    n : int;
    capacity : int;
    depth : int;
    levels : N.t array array;  (** [levels.(j).(g)]: node [g] at level [j] *)
  }

  let create (p : Mutex_intf.params) =
    let n = p.Mutex_intf.n and l = p.Mutex_intf.l in
    let capacity = capacity_of_l l in
    let depth = depth ~n ~l in
    let levels =
      Array.init depth (fun j ->
          let groups = Ixmath.ceil_div n (Ixmath.ipow capacity (j + 1)) in
          Array.init groups (fun g ->
              N.create ~name:(Printf.sprintf "t%d.%d" j g) ~capacity ()))
    in
    { n; capacity; depth; levels }

  let node_and_slot t ~me ~level =
    let c = t.capacity in
    let group = me / Ixmath.ipow c (level + 1) in
    let slot = (me / Ixmath.ipow c level) mod c + 1 in
    (t.levels.(level).(group), slot)

  let lock t ~me =
    assert (me >= 0 && me < t.n);
    for j = 0 to t.depth - 1 do
      let node, slot = node_and_slot t ~me ~level:j in
      N.lock node ~slot
    done

  let unlock t ~me =
    for j = t.depth - 1 downto 0 do
      let node, slot = node_and_slot t ~me ~level:j in
      N.unlock node ~slot
    done
end
