open Cfc_base

type cell = { atom : int Atomic.t; width : int; model : Model.t option }

let fits ~width v = v >= 0 && (width >= 62 || v < 1 lsl width)

let make_cell ?model ~width ~init () =
  if width < 1 || width > 62 then invalid_arg "Native_mem: width";
  if not (fits ~width init) then invalid_arg "Native_mem: init too wide";
  { atom = Atomic.make init; width; model }

(* Same access-time width enforcement (and message shape) as the
   simulated backend's [Register.check_fits], so a width bug reported on
   one backend reproduces verbatim on the other. *)
let check_fits c ~op v =
  if not (fits ~width:c.width v) then
    invalid_arg
      (Printf.sprintf
         "native register: %s value %d does not fit in declared width %d bits"
         op v c.width)

let require c op =
  match c.model with
  | None -> ()
  | Some m ->
    if not (Model.mem op m) then
      invalid_arg
        (Printf.sprintf "native register: %s not in model %s"
           (Ops.to_string op) (Model.to_string m))

let mem () : Mem_intf.mem =
  (module struct
    type reg = cell

    let alloc ?name:_ ~width ~init () = make_cell ~width ~init ()
    let alloc_bit ?name:_ ~model ~init () = make_cell ~model ~width:1 ~init ()

    let alloc_array ?name:_ ~width ~init k =
      Array.init k (fun _ -> make_cell ~width ~init ())

    let alloc_bit_array ?name:_ ~model ~init k =
      Array.init k (fun _ -> make_cell ~model ~width:1 ~init ())

    let read c =
      require c Ops.Read;
      Atomic.get c.atom

    let write c v =
      check_fits c ~op:"write" v;
      (match c.model with
      | None -> ()
      | Some _ -> require c (if v = 0 then Ops.Write_0 else Ops.Write_1));
      Atomic.set c.atom v

    let write_field c ~index ~width v =
      (match c.model with
      | Some _ -> invalid_arg "native write_field: model-restricted bit"
      | None -> ());
      if width < 1 || index < 0 || (index + 1) * width > c.width then
        invalid_arg
          (Printf.sprintf
             "native write_field: field %d of width %d out of range (register \
              width %d)"
             index width c.width);
      if not (fits ~width v) then
        invalid_arg
          (Printf.sprintf
             "native write_field: value %d does not fit in field width %d bits"
             v width);
      let shift = index * width in
      let mask = ((1 lsl width) - 1) lsl shift in
      let rec go () =
        let old = Atomic.get c.atom in
        let nv = old land lnot mask lor (v lsl shift) in
        if old = nv || Atomic.compare_and_set c.atom old nv then ()
        else go ()
      in
      go ()

    let bit_op c op =
      if c.width <> 1 then invalid_arg "native bit_op: not a bit";
      require c op;
      let rec go () =
        let old = Atomic.get c.atom in
        let nv, ret = Ops.apply op old in
        if old = nv || Atomic.compare_and_set c.atom old nv then ret
        else go ()
      in
      go ()

    let fetch_and_store c v =
      (match c.model with
      | Some _ -> invalid_arg "native fetch_and_store: model-restricted bit"
      | None -> ());
      check_fits c ~op:"fetch_and_store" v;
      Atomic.exchange c.atom v

    let compare_and_set c ~expected v =
      (match c.model with
      | Some _ -> invalid_arg "native compare_and_set: model-restricted bit"
      | None -> ());
      check_fits c ~op:"compare_and_set" v;
      Atomic.compare_and_set c.atom expected v

    let pause () = Domain.cpu_relax ()
  end : Mem_intf.MEM)
