(** Wall-clock harness on real domains: the EXP-NATIVE experiments.

    Absolute numbers are machine-dependent; what reproduces the paper is
    the {e shape}: constant uncontended latency for Lamport's algorithm
    vs Θ(log n / l) for the tree vs Θ(n) for the bakery, and the §4
    backoff effect under contention. *)

open Cfc_mutex

val uncontended_ns : ?iters:int -> Registry.alg -> Mutex_intf.params -> float
(** Nanoseconds per lock/unlock cycle on a single domain (the
    contention-free path), median of several batches. *)

val contended :
  ?iters:int -> domains:int -> Registry.alg -> Mutex_intf.params ->
  float * bool
(** [(ns_per_cycle, exclusion_ok)] with [domains] domains hammering the
    lock; [exclusion_ok] is a shared-counter check (count equals total
    iterations iff no lost updates inside the critical section). *)

val naming_ns : ?repeats:int -> Cfc_naming.Registry.alg -> n:int -> float * bool
(** Wall-clock for assigning [n] names with [n] domains... capped at the
    machine's core count by running processes in waves; the boolean is
    the uniqueness check. *)
