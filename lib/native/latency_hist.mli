(** Fixed-size log2-bucket latency histogram for the native lock
    service: bucket [k] holds samples whose nanosecond value has
    [floor_log2 = k], so the whole int range fits in 63 counters, the
    record path never allocates, and percentiles are good to a factor
    [sqrt 2] — plenty for the orders-of-magnitude spreads lock-
    acquisition latency exhibits under contention.

    Not thread-safe: keep one histogram per worker domain and
    {!merge_into} after joining. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Add one sample in nanoseconds (negatives clamp to 0). *)

val merge_into : into:t -> t -> unit
(** Accumulate [t]'s samples into [into] (bucket-wise; exact). *)

val count : t -> int
(** Number of recorded samples. *)

val max_ns : t -> int
(** Largest recorded sample, exact (0 when empty). *)

val min_ns : t -> int
(** Smallest recorded sample, exact (0 when empty). *)

val percentile : t -> float -> float
(** [percentile t q] for [q ∈ [0, 1]]: the midpoint of the bucket
    holding the [⌈q·count⌉]-th smallest sample, clamped into the observed
    [[{!min_ns}, {!max_ns}]] envelope — no percentile ever exceeds the
    largest recorded sample or undershoots the smallest, and a
    single-sample histogram reports the sample exactly at every [q].
    0 when empty. *)
