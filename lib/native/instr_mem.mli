(** An instrumented wrapper around {!Native_mem}: the same [Atomic.t]
    registers, plus per-domain access counters and a software estimate of
    remote memory references (RMR).

    Counters live in a flat int array with one padded cache line per
    domain (no sharing, no atomic increments), so the overhead per access
    is a handful of private stores.  Turning instrumentation {e off} is
    not a flag on this module — it is simply using the uninstrumented
    {!Native_mem.mem} arena, which stays zero-cost because no check ever
    runs on its hot path.

    The RMR estimate replays the write-invalidate cache model of
    {!Cfc_core.Measures.remote_accesses} online: per register, a bitmask
    of domains holding a valid copy; an access is remote iff the
    accessing domain's bit is clear; a write invalidates everyone else.
    On a solo (uncontended) run the count is {e exactly} the trace
    measure — a test asserts this against the simulated backend — while
    under real concurrency the mask update races benignly and the
    estimate is conservative (never undercounts a remote access caused
    by an observed interleaving).

    Semantic-access accounting matches the trace model of
    {!Cfc_runtime.Event}: one count per [MEM] call (the base backend's
    internal CAS retries inside [bit_op]/[write_field] are invisible,
    as they are in the simulator); a failed [compare_and_set] counts as
    a read, [bit_op] is a write iff {!Cfc_base.Ops.writes} holds. *)

type counters = {
  ops : int;  (** all semantic accesses *)
  reads : int;
  writes : int;  (** [ops = reads + writes] *)
  cas_attempts : int;  (** explicit [compare_and_set] calls *)
  cas_failures : int;  (** …of which returned [false] *)
  rmr : int;  (** write-invalidate remote-access estimate *)
}

val zero : counters
val add : counters -> counters -> counters
val pp : Format.formatter -> counters -> unit

type t
(** One instrumented arena plus its counters. *)

val create : nprocs:int -> t
(** Fresh arena for [nprocs] worker domains ([1..62] — the RMR bitmask
    packs into one word, as in [Measures.remote_accesses]). *)

val mem : t -> Cfc_base.Mem_intf.mem
(** The instrumented memory.  Allocate registers before spawning
    domains; every accessing domain must call {!register_worker}
    first. *)

val register_worker : t -> me:int -> unit
(** Bind the calling domain to worker slot [me] (domain-local).  An
    access from an unregistered domain raises [Failure]. *)

val evict : t -> me:int -> unit
(** Drop worker [me]'s bit from every register's holders mask — the
    cache of a crashed process dies with it, so a crash–restart's
    subsequent accesses count as remote exactly as in the cold-cache
    model of [Cfc_core.Measures.recovery_rmr].  Called by the
    crash-injecting lock service at each injected crash point.  Benign
    races with concurrent accesses keep the estimate conservative, as
    for ordinary accesses. *)

val per_domain : t -> counters array
(** Per-worker counters.  Only coherent once the workers have been
    joined (plain stores; [Domain.join] is the synchronization). *)

val totals : t -> counters
