(** Domain-parallel sharded KV service: a bucketed store whose every
    bucket is guarded by its own instance of one registry lock, driven
    by the same {!Cfc_workload.Ycsb} streams as the deterministic wheel
    twin [Cfc_workload.Kv_sim] — for a given [(seed, client)] both
    backends replay the identical operation sequence.

    Values live in plain lock-guarded arrays; the per-bucket version
    register lives in the counted {!Instr_mem} arena, so the RMR
    estimate covers lock + version traffic (DESIGN.md §2).  The version
    counter's non-atomic read-then-write per mutating op is the
    lost-update witness, and the version re-read around each scan is the
    torn-snapshot witness — both must come out clean iff every bucket
    lock actually excludes (same construction as
    {!Lock_service}'s witness). *)

open Cfc_mutex
open Cfc_workload

type config = {
  domains : int;  (** worker domains, including the caller's *)
  buckets : int;  (** shards, each with its own lock instance *)
  keys : int;  (** key space; key [k] ↦ bucket [k mod buckets] *)
  ops : int;  (** operations per domain *)
  mean_think : int;  (** mean geometric think time, in [cpu_relax] spins *)
  theta : float;  (** Zipf skew: 0 uniform, 0.99 YCSB-zipfian *)
  mix : Ycsb.mix;
  seed : int;
}

val default : config

type shard_stat = {
  ks_ops : int;  (** lock acquisitions on this shard *)
  ks_reads : int;
  ks_updates : int;
  ks_scans : int;
  ks_rmws : int;
  ks_p50_ns : float;  (** lock-acquisition latency on this shard *)
  ks_p99_ns : float;
  ks_max_ns : int;
}

type result = {
  total_ops : int;
  elapsed_ns : int;
  throughput : float;  (** completed operations per second *)
  p50_ns : float;  (** acquisition latency over all shards *)
  p90_ns : float;
  p99_ns : float;
  max_ns : int;
  counters : Instr_mem.counters;  (** zeros when run uninstrumented *)
  rmr_per_op : float;
  lost_updates : int;  (** version-witness shortfall (0 = clean) *)
  torn_scans : int;  (** scans that saw their bucket version move *)
  exclusion_ok : bool;  (** both witnesses clean *)
  hot_share : float;  (** hottest shard's fraction of all ops *)
  shards : shard_stat array;
}

val run : ?instrument:bool -> (module Mutex_intf.ALG) -> config -> result
(** Runs [domains · ops] operations against the sharded store and
    reports throughput, per-shard latency, the instrumentation counters
    and both witnesses.  [instrument:false] swaps in the uninstrumented
    {!Native_mem} arena (zero-overhead hot path; [counters] all zero).
    Raises [Invalid_argument] on bad dimensions or an unsupported
    parameter set. *)
