(* 63 buckets: bucket k holds samples with floor_log2 ns = k, i.e. ns in
   [2^k, 2^(k+1)); bucket 0 also takes ns <= 1.  Fixed size, no
   allocation on the record path. *)

let buckets = 63

type t = {
  counts : int array;
  mutable min_ns : int;  (* max_int when empty *)
  mutable max_ns : int;
  mutable total : int;
}

let create () =
  { counts = Array.make buckets 0; min_ns = max_int; max_ns = 0; total = 0 }

(* floor_log2 without Ixmath: ns can be 0 here and the loop below is the
   hot path, so keep it branch-light. *)
let bucket_of ns =
  if ns <= 1 then 0
  else begin
    let k = ref 0 and v = ref ns in
    while !v > 1 do
      incr k;
      v := !v lsr 1
    done;
    min !k (buckets - 1)
  end

let record t ns =
  let ns = if ns < 0 then 0 else ns in
  let b = bucket_of ns in
  t.counts.(b) <- t.counts.(b) + 1;
  if ns < t.min_ns then t.min_ns <- ns;
  if ns > t.max_ns then t.max_ns <- ns;
  t.total <- t.total + 1

let merge_into ~into t =
  for i = 0 to buckets - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  if t.min_ns < into.min_ns then into.min_ns <- t.min_ns;
  if t.max_ns > into.max_ns then into.max_ns <- t.max_ns;
  into.total <- into.total + t.total

let count t = t.total
let max_ns t = t.max_ns
let min_ns t = if t.total = 0 then 0 else t.min_ns

(* Arithmetic midpoint of the bucket's value range: 1.5 * 2^k (bucket 0
   reports 1).  Good to within a factor sqrt(2) by construction, which is
   all a log-bucket histogram can promise. *)
let bucket_mid k = if k = 0 then 1.0 else 1.5 *. Float.of_int (1 lsl k)

let percentile t q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Latency_hist.percentile: q outside [0, 1]";
  if t.total = 0 then 0.0
  else begin
    let rank = Float.to_int (Float.round (q *. Float.of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let cum = ref 0 and b = ref 0 in
    (try
       for k = 0 to buckets - 1 do
         cum := !cum + t.counts.(k);
         if !cum >= rank then begin
           b := k;
           raise Exit
         end
       done
     with Exit -> ());
    (* The midpoint is only bucket-accurate: clamp it into the observed
       [min_ns, max_ns] envelope so no reported percentile can exceed the
       largest recorded sample (largest sample low in its bucket) or
       undershoot the smallest (smallest sample high in its bucket).  In
       particular a single-sample histogram reports the sample exactly at
       every q. *)
    Float.max
      (Float.of_int t.min_ns)
      (Float.min (bucket_mid !b) (Float.of_int t.max_ns))
  end
