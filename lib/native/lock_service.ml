open Cfc_base
open Cfc_mutex

type config = {
  domains : int;
  rounds : int;
  mean_think : int;
  cs_len : int;
  seed : int;
  crash_every : int;
}

let default = { domains = 2; rounds = 2_000; mean_think = 10; cs_len = 3;
                seed = 42; crash_every = 0 }

type result = {
  acquisitions : int;
  elapsed_ns : int;
  throughput : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : int;
  counters : Instr_mem.counters;
  rmr_per_acq : float;
  exclusion_ok : bool;
  recoveries : int;
  recovery_p50_ns : float;
  recovery_p99_ns : float;
  recovery_max_ns : int;
  recovery_rmr_mean : float;
  recovery_rmr_max : int;
}

let now () = Monotonic_clock.now ()

let run ?(instrument = true) (module A : Mutex_intf.ALG) config =
  if config.domains < 1 then invalid_arg "Lock_service.run: domains < 1";
  if config.rounds < 0 then invalid_arg "Lock_service.run: rounds < 0";
  if config.crash_every < 0 then
    invalid_arg "Lock_service.run: crash_every < 0";
  (* Algorithms are parameterized by n >= 2; a solo service still
     instantiates for two so the code path is the real one. *)
  let n = max 2 config.domains in
  let p = Mutex_intf.params n in
  if not (A.supports p) then
    invalid_arg (Printf.sprintf "%s: unsupported params" A.name);
  if config.crash_every > 0 && A.recovery p = None then
    invalid_arg
      (Printf.sprintf "%s: crash injection needs a recoverable lock" A.name);
  let instr = Instr_mem.create ~nprocs:n in
  (* The off switch is using the plain backend: nothing on Native_mem's
     hot path ever consults an instrumentation flag. *)
  let memory = if instrument then Instr_mem.mem instr else Native_mem.mem () in
  let module M = (val memory) in
  (* [create] may initialize registers with counted writes: attribute
     them to worker 0 (the main domain), which runs there anyway. *)
  Instr_mem.register_worker instr ~me:0;
  let module L = A.Make (M) in
  let inst = L.create p in
  let scratch = M.alloc ~name:"svc.scratch" ~width:8 ~init:0 () in
  (* Start barrier and exclusion witness live outside [M]: they model the
     service's clients, not the lock, so they must not be counted.  The
     witness is deliberately non-atomic — lost updates would show as a
     shortfall iff mutual exclusion broke (same trick as
     Native_harness.contended). *)
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let witness = ref 0 in
  let hists = Array.init config.domains (fun _ -> Latency_hist.create ()) in
  let rec_hists = Array.init config.domains (fun _ -> Latency_hist.create ()) in
  let rec_rmr_tot = Array.make config.domains 0 in
  let rec_rmr_max = Array.make config.domains 0 in
  let rec_counts = Array.make config.domains 0 in
  let worker me () =
    Instr_mem.register_worker instr ~me;
    (* Split-seed mixing, verbatim the same stream as
       Workload.think_stream ~seed ~pid:me — raw [| seed; me |] seeding
       correlates adjacent workers. *)
    let st = Random.State.make [| Ixmath.mix_seed config.seed me |] in
    (* A separate stream for crash points so adding injection does not
       perturb the think-time sequence of crash-free runs. *)
    let crash_st = Random.State.make [| Ixmath.mix_seed config.seed me; 0x0c |] in
    let hist = hists.(me) in
    Atomic.incr ready;
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    for _ = 1 to config.rounds do
      if config.mean_think > 0 then begin
        let k =
          Ixmath.geometric ~u:(Random.State.float st 1.0)
            ~mean:config.mean_think
        in
        for _ = 1 to k do
          Domain.cpu_relax ()
        done
      end;
      let t0 = now () in
      L.lock inst ~me;
      let t1 = now () in
      Latency_hist.record hist (Int64.to_int (Int64.sub t1 t0));
      (* Cooperative crash-while-holding: a domain cannot be killed, but
         the Golab–Ramaraju model only requires that the incarnation's
         {e local} state is lost and the process re-runs [lock] from the
         top — which is exactly what abandoning the acquisition (the
         completed call's locals are dead anyway) and calling [lock]
         again does.  The re-entry is the recovery path; its latency and
         its RMR delta (own Instr_mem slot, written by this very domain,
         so coherent mid-run) are recorded separately.  The witness still
         increments once per critical section. *)
      if
        config.crash_every > 0
        && Random.State.int crash_st config.crash_every = 0
      then begin
        (* The crash also destroys the incarnation's cache. *)
        Instr_mem.evict instr ~me;
        let rmr0 = (Instr_mem.per_domain instr).(me).Instr_mem.rmr in
        let r0 = now () in
        L.lock inst ~me;
        let r1 = now () in
        Latency_hist.record rec_hists.(me) (Int64.to_int (Int64.sub r1 r0));
        let d = (Instr_mem.per_domain instr).(me).Instr_mem.rmr - rmr0 in
        rec_rmr_tot.(me) <- rec_rmr_tot.(me) + d;
        if d > rec_rmr_max.(me) then rec_rmr_max.(me) <- d;
        rec_counts.(me) <- rec_counts.(me) + 1
      end;
      witness := !witness + 1;
      for k = 1 to config.cs_len do
        M.write scratch (k land 255)
      done;
      L.unlock inst ~me
    done
  in
  let spawned =
    List.init (config.domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  while Atomic.get ready < config.domains - 1 do
    Domain.cpu_relax ()
  done;
  let t_start = now () in
  Atomic.set go true;
  worker 0 ();
  List.iter Domain.join spawned;
  let elapsed_ns = Int64.to_int (Int64.sub (now ()) t_start) in
  let merged = Latency_hist.create () in
  Array.iter (fun h -> Latency_hist.merge_into ~into:merged h) hists;
  let rec_merged = Latency_hist.create () in
  Array.iter (fun h -> Latency_hist.merge_into ~into:rec_merged h) rec_hists;
  let recoveries = Array.fold_left ( + ) 0 rec_counts in
  let acquisitions = config.domains * config.rounds in
  let counters = Instr_mem.totals instr in
  let per_acq v =
    if acquisitions = 0 then 0.0
    else Float.of_int v /. Float.of_int acquisitions
  in
  {
    acquisitions;
    elapsed_ns;
    throughput =
      (if elapsed_ns <= 0 then 0.0
       else Float.of_int acquisitions /. (Float.of_int elapsed_ns /. 1e9));
    p50_ns = Latency_hist.percentile merged 0.50;
    p90_ns = Latency_hist.percentile merged 0.90;
    p99_ns = Latency_hist.percentile merged 0.99;
    max_ns = Latency_hist.max_ns merged;
    counters;
    rmr_per_acq = per_acq counters.Instr_mem.rmr;
    exclusion_ok = !witness = acquisitions;
    recoveries;
    recovery_p50_ns = Latency_hist.percentile rec_merged 0.50;
    recovery_p99_ns = Latency_hist.percentile rec_merged 0.99;
    recovery_max_ns = Latency_hist.max_ns rec_merged;
    recovery_rmr_mean =
      (if recoveries = 0 then 0.0
       else
         Float.of_int (Array.fold_left ( + ) 0 rec_rmr_tot)
         /. Float.of_int recoveries);
    recovery_rmr_max = Array.fold_left max 0 rec_rmr_max;
  }
