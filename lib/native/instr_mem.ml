open Cfc_base

(* One cache line per domain: counters live at [pid * stride], and a
   stride of 16 words (128 bytes) keeps two domains' slots off the same
   line on every mainstream core, so incrementing them is as cheap as a
   private store. *)
let stride = 16
let o_ops = 0
let o_reads = 1
let o_writes = 2
let o_cas_attempts = 3
let o_cas_failures = 4
let o_rmr = 5

type counters = {
  ops : int;
  reads : int;
  writes : int;
  cas_attempts : int;
  cas_failures : int;
  rmr : int;
}

let zero =
  { ops = 0; reads = 0; writes = 0; cas_attempts = 0; cas_failures = 0;
    rmr = 0 }

let add a b =
  {
    ops = a.ops + b.ops;
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    cas_attempts = a.cas_attempts + b.cas_attempts;
    cas_failures = a.cas_failures + b.cas_failures;
    rmr = a.rmr + b.rmr;
  }

let pp ppf c =
  Format.fprintf ppf "ops=%d r/w=%d/%d cas=%d(-%d) rmr=%d" c.ops c.reads
    c.writes c.cas_attempts c.cas_failures c.rmr

type t = {
  nprocs : int;
  counts : int array;
  key : int Domain.DLS.key;
  arena : Mem_intf.mem;
  all_holders : int Atomic.t list ref;
      (* every register's holders mask, for [evict]; registers are
         allocated before the workers spawn, so the list itself is never
         mutated concurrently *)
}

let create ~nprocs =
  if nprocs < 1 || nprocs > 62 then
    invalid_arg "Instr_mem.create: nprocs outside 1..62";
  let counts = Array.make (nprocs * stride) 0 in
  let all_holders = ref [] in
  let key = Domain.DLS.new_key (fun () -> -1) in
  let me () =
    let v = Domain.DLS.get key in
    if v < 0 then
      failwith "Instr_mem: domain not registered (call register_worker)";
    v
  in
  let bump pid slot =
    let i = (pid * stride) + slot in
    counts.(i) <- counts.(i) + 1
  in
  (* The YA93 write-invalidate cache model of Measures.remote_accesses,
     transplanted: [holders] is the bitmask of pids with a valid cached
     copy.  An access is remote iff the pid's bit is clear; a write
     leaves only the writer's copy valid, a read joins the holders.
     Under true concurrency the mask update races benignly (a reader's
     lost join merely re-counts its next access as remote), so the
     estimate is exact when uncontended and conservative otherwise. *)
  let touch holders ~write pid =
    let bit = 1 lsl pid in
    let h = Atomic.get holders in
    if h land bit = 0 then bump pid o_rmr;
    if write then Atomic.set holders bit
    else if h land bit = 0 then
      ignore (Atomic.compare_and_set holders h (h lor bit))
  in
  let module N = (val Native_mem.mem ()) in
  let arena : Mem_intf.mem =
    (module struct
      type reg = { base : N.reg; holders : int Atomic.t }

      let wrap base =
        let holders = Atomic.make 0 in
        all_holders := holders :: !all_holders;
        { base; holders }
      let alloc ?name ~width ~init () = wrap (N.alloc ?name ~width ~init ())

      let alloc_bit ?name ~model ~init () =
        wrap (N.alloc_bit ?name ~model ~init ())

      let alloc_array ?name ~width ~init k =
        Array.map wrap (N.alloc_array ?name ~width ~init k)

      let alloc_bit_array ?name ~model ~init k =
        Array.map wrap (N.alloc_bit_array ?name ~model ~init k)

      (* One semantic access: mirrors what the simulated backend records
         as a single trace event (internal CAS retries of the base
         backend's bit_op/write_field are invisible there too). *)
      let count r ~write =
        let pid = me () in
        bump pid o_ops;
        bump pid (if write then o_writes else o_reads);
        touch r.holders ~write pid

      let read r =
        let v = N.read r.base in
        count r ~write:false;
        v

      let write r v =
        N.write r.base v;
        count r ~write:true

      let write_field r ~index ~width v =
        N.write_field r.base ~index ~width v;
        count r ~write:true

      (* Classified like Event.is_write (A_bit): by what the operation
         can do, not by whether this application changed the bit. *)
      let bit_op r op =
        let ret = N.bit_op r.base op in
        count r ~write:(Ops.writes op);
        ret

      let fetch_and_store r v =
        let old = N.fetch_and_store r.base v in
        count r ~write:true;
        old

      (* A failed CAS is a read (Event.is_write on A_cas). *)
      let compare_and_set r ~expected v =
        let ok = N.compare_and_set r.base ~expected v in
        let pid = me () in
        bump pid o_cas_attempts;
        if not ok then bump pid o_cas_failures;
        count r ~write:ok;
        ok

      let pause () = N.pause ()
    end : Mem_intf.MEM)
  in
  { nprocs; counts; key; arena; all_holders }

let mem t = t.arena

let evict t ~me =
  if me < 0 || me >= t.nprocs then
    invalid_arg "Instr_mem.evict: me outside 0..nprocs-1";
  (* A crash destroys the process's cache: drop [me]'s bit from every
     register's holders mask, so the restarted incarnation's accesses
     count as remote exactly as in [Measures.recovery_rmr]'s cold-cache
     model.  The CAS loop races benignly with concurrent mask updates —
     same conservativity argument as [touch]. *)
  let bit = 1 lsl me in
  List.iter
    (fun h ->
      let rec clear () =
        let v = Atomic.get h in
        if v land bit <> 0 && not (Atomic.compare_and_set h v (v land lnot bit))
        then clear ()
      in
      clear ())
    !(t.all_holders)

let register_worker t ~me =
  if me < 0 || me >= t.nprocs then
    invalid_arg "Instr_mem.register_worker: me outside 0..nprocs-1";
  Domain.DLS.set t.key me

let per_domain t =
  Array.init t.nprocs (fun pid ->
      let g slot = t.counts.((pid * stride) + slot) in
      {
        ops = g o_ops;
        reads = g o_reads;
        writes = g o_writes;
        cas_attempts = g o_cas_attempts;
        cas_failures = g o_cas_failures;
        rmr = g o_rmr;
      })

let totals t = Array.fold_left add zero (per_domain t)
