open Cfc_mutex

let now () = Monotonic_clock.now ()

let ns_of span = Int64.to_float span

(* Median of [k] timed batches of [iters] calls to [f]; returns ns per
   call. *)
let time_batches ?(k = 5) ~iters f =
  let samples =
    List.init k (fun _ ->
        let t0 = now () in
        for _ = 1 to iters do
          f ()
        done;
        ns_of (Int64.sub (now ()) t0) /. float_of_int iters)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (k / 2)

let instantiate (module A : Mutex_intf.ALG) (p : Mutex_intf.params) =
  if not (A.supports p) then
    invalid_arg (Printf.sprintf "%s: unsupported params" A.name);
  let module M = (val Native_mem.mem ()) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let lock ~me = L.lock inst ~me and unlock ~me = L.unlock inst ~me in
  (lock, unlock)

let uncontended_ns ?(iters = 20_000) alg p =
  let lock, unlock = instantiate alg p in
  time_batches ~iters (fun () ->
      lock ~me:0;
      unlock ~me:0)

let contended ?(iters = 5_000) ~domains alg (p : Mutex_intf.params) =
  if domains > p.Mutex_intf.n then invalid_arg "contended: domains > n";
  let lock, unlock = instantiate alg p in
  (* A deliberately non-atomic shared counter: its final value equals the
     total number of critical sections iff mutual exclusion held (lost
     updates would show as a shortfall). *)
  let counter = ref 0 in
  let t0 = now () in
  let worker me () =
    for _ = 1 to iters do
      lock ~me;
      counter := !counter + 1;
      unlock ~me
    done
  in
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  List.iter Domain.join spawned;
  let elapsed = ns_of (Int64.sub (now ()) t0) in
  let total = domains * iters in
  (elapsed /. float_of_int total, !counter = total)

let naming_ns ?(repeats = 50) (module A : Cfc_naming.Naming_intf.ALG) ~n =
  if not (A.supports ~n) then invalid_arg (A.name ^ ": unsupported n");
  let cores = max 1 (min 4 (Domain.recommended_domain_count () - 1)) in
  let ok = ref true in
  let t0 = now () in
  for _ = 1 to repeats do
    let module M = (val Native_mem.mem ()) in
    let module N = A.Make (M) in
    let inst = N.create ~n in
    (* n naming processes distributed over the available cores in waves;
       each domain runs its share sequentially (a legal schedule). *)
    let results = Array.make n 0 in
    let worker d () =
      let i = ref d in
      while !i < n do
        results.(!i) <- N.run inst;
        i := !i + cores
      done
    in
    let spawned =
      List.init (cores - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    let sorted = List.sort compare (Array.to_list results) in
    if sorted <> List.init n (fun i -> i + 1) then ok := false
  done;
  let elapsed = ns_of (Int64.sub (now ()) t0) in
  (elapsed /. float_of_int repeats, !ok)
