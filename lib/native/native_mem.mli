(** The native {!Cfc_base.Mem_intf.MEM} backend: registers are
    [Atomic.t] cells (sequentially consistent in OCaml 5, matching the
    paper's atomic-register model), so the very same algorithm functors
    run on real domains for wall-clock benchmarking.

    Width accounting and operation models are still enforced (cheaply) so
    that an algorithm's declared atomicity stays honest on this backend
    too; bit operations are implemented as compare-and-set loops, which
    preserves their atomic semantics (hardware test-and-set is the
    special case that never retries). *)

val mem : unit -> Cfc_base.Mem_intf.mem
(** A fresh arena.  Thread-safe: allocate before spawning domains. *)
