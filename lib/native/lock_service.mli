(** Domain-parallel lock-service benchmark: the native counterpart of
    {!Cfc_workload.Workload}.  Each of [domains] worker domains loops
    [rounds] times through think (geometric, same
    {!Cfc_base.Ixmath.geometric} distribution and per-worker seeding as
    the simulated workload, in [Domain.cpu_relax] turns) → lock →
    critical section ([cs_len] shared writes) → unlock, timing each
    acquisition with a monotonic clock into per-domain
    {!Latency_hist} histograms.

    With [instrument] (default), the lock runs on {!Instr_mem}, so the
    result carries semantic-access counters and the write-invalidate RMR
    estimate; without it, on plain {!Native_mem} with all counters zero.
    Mutual exclusion is witnessed by a deliberately non-atomic counter
    (a lost update means a violation), as in
    {!Native_harness.contended}. *)

open Cfc_mutex

type config = {
  domains : int;  (** worker domains (the lock instantiates at [max 2 domains]) *)
  rounds : int;  (** acquisitions per domain *)
  mean_think : int;  (** mean geometric think, in [cpu_relax] turns *)
  cs_len : int;  (** shared writes inside the critical section *)
  seed : int;
  crash_every : int;
      (** 0 (default) = no crash injection.  Otherwise each acquisition
          crashes with probability [1/crash_every] (seeded, per-domain
          stream): the worker abandons the completed [lock] call —
          cooperatively losing the incarnation's local state, which is
          all a Golab–Ramaraju crash destroys, since domains cannot be
          killed — and re-runs [lock] from the top as the restarted
          incarnation.  The re-entry (the crash-while-holding recovery
          path) is timed into a separate histogram and its per-call RMR
          delta recorded.  Requires a recoverable lock. *)
}

val default : config

type result = {
  acquisitions : int;  (** [domains * rounds] *)
  elapsed_ns : int;  (** wall clock from barrier release to last join *)
  throughput : float;  (** acquisitions per second *)
  p50_ns : float;  (** acquisition-latency percentiles (lock call only) *)
  p90_ns : float;
  p99_ns : float;
  max_ns : int;
  counters : Instr_mem.counters;  (** totals; zero when uninstrumented *)
  rmr_per_acq : float;  (** [counters.rmr / acquisitions] *)
  exclusion_ok : bool;  (** non-atomic witness saw no lost update *)
  recoveries : int;  (** injected crash–recovery re-entries (0 without injection) *)
  recovery_p50_ns : float;  (** recovery-path latency percentiles *)
  recovery_p99_ns : float;
  recovery_max_ns : int;
  recovery_rmr_mean : float;
      (** mean instrumented RMR per recovery re-entry; zero when
          uninstrumented *)
  recovery_rmr_max : int;  (** worst single re-entry *)
}

val run : ?instrument:bool -> (module Mutex_intf.ALG) -> config -> result
(** Raises [Invalid_argument] if the algorithm does not support
    [max 2 domains] processes, [domains < 1], [rounds < 0],
    [crash_every < 0], or [crash_every > 0] on a lock whose [recovery]
    is [None]. *)
