open Cfc_base
open Cfc_mutex
open Cfc_workload

type config = {
  domains : int;
  buckets : int;
  keys : int;
  ops : int;
  mean_think : int;
  theta : float;
  mix : Ycsb.mix;
  seed : int;
}

let default =
  { domains = 2; buckets = 16; keys = 1 lsl 20; ops = 2_000;
    mean_think = 10; theta = 0.99; mix = Ycsb.mix_a; seed = 42 }

type shard_stat = {
  ks_ops : int;
  ks_reads : int;
  ks_updates : int;
  ks_scans : int;
  ks_rmws : int;
  ks_p50_ns : float;
  ks_p99_ns : float;
  ks_max_ns : int;
}

type result = {
  total_ops : int;
  elapsed_ns : int;
  throughput : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : int;
  counters : Instr_mem.counters;
  rmr_per_op : float;
  lost_updates : int;
  torn_scans : int;
  exclusion_ok : bool;
  hot_share : float;
  shards : shard_stat array;
}

let now () = Monotonic_clock.now ()

(* Mirrors Kv_sim: 32-bit version counters, key k ↦ bucket [k mod
   buckets], slot [k / buckets], scans wrap inside their bucket. *)
let value_width = 32
let value_mask = (1 lsl value_width) - 1

let run ?(instrument = true) (module A : Mutex_intf.ALG) config =
  if config.domains < 1 then invalid_arg "Kv_service.run: domains < 1";
  if config.buckets < 1 then invalid_arg "Kv_service.run: buckets < 1";
  if config.keys < 1 then invalid_arg "Kv_service.run: keys < 1";
  if config.ops < 0 then invalid_arg "Kv_service.run: ops < 0";
  let n = max 2 config.domains in
  let nb = config.buckets in
  let p = Mutex_intf.params n in
  if not (A.supports p) then
    invalid_arg (Printf.sprintf "%s: unsupported params" A.name);
  let instr = Instr_mem.create ~nprocs:n in
  let memory = if instrument then Instr_mem.mem instr else Native_mem.mem () in
  let module M = (val memory) in
  Instr_mem.register_worker instr ~me:0;
  let module L = A.Make (M) in
  let locks = Array.init nb (fun _ -> L.create p) in
  let nslots = (config.keys + nb - 1) / nb in
  (* Values live in plain (unsynchronized) int arrays guarded by the
     bucket locks — at millions of keys the counted arena would swamp
     the RMR estimate with store traffic that the paper's lock analysis
     says nothing about.  The per-bucket version register stays in the
     counted arena, so lock + version traffic is what the RMR numbers
     cover (DESIGN.md §2), and its non-atomic read-then-write under the
     lock doubles as the lost-update witness, exactly as in Kv_sim. *)
  let values = Array.init nb (fun _ -> Array.make nslots 0) in
  let versions = M.alloc_array ~name:"kv.ver" ~width:value_width ~init:0 nb in
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let hists =
    Array.init config.domains (fun _ ->
        Array.init nb (fun _ -> Latency_hist.create ()))
  in
  let ops_by_kind =
    Array.init config.domains (fun _ -> Array.make_matrix nb 4 0)
  in
  let expected = Array.init config.domains (fun _ -> Array.make nb 0) in
  let torn = Array.make config.domains 0 in
  let worker me () =
    Instr_mem.register_worker instr ~me;
    (* Same split-seeded streams as the wheel driver: think times via
       mix_seed (the Workload.think_stream discipline), operations via
       Ycsb.stream — a (seed, client) pair replays the identical op
       sequence on both backends. *)
    let st = Random.State.make [| Ixmath.mix_seed config.seed me |] in
    let ops = Ycsb.stream ~seed:config.seed ~client:me ~nkeys:config.keys
        ~theta:config.theta config.mix
    in
    Atomic.incr ready;
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    for i = 1 to config.ops do
      if config.mean_think > 0 then begin
        let k =
          Ixmath.geometric ~u:(Random.State.float st 1.0)
            ~mean:config.mean_think
        in
        for _ = 1 to k do
          Domain.cpu_relax ()
        done
      end;
      let op = Ycsb.next ops in
      let key = Ycsb.key_of op in
      let b = key mod nb and slot = key / nb in
      let t0 = now () in
      L.lock locks.(b) ~me;
      let t1 = now () in
      Latency_hist.record hists.(me).(b) (Int64.to_int (Int64.sub t1 t0));
      (match op with
      | Ycsb.Read _ ->
        ops_by_kind.(me).(b).(0) <- ops_by_kind.(me).(b).(0) + 1;
        ignore (Sys.opaque_identity values.(b).(slot))
      | Ycsb.Update _ ->
        ops_by_kind.(me).(b).(1) <- ops_by_kind.(me).(b).(1) + 1;
        expected.(me).(b) <- expected.(me).(b) + 1;
        values.(b).(slot) <- ((me lsl 16) lor (i land 0xffff)) land value_mask;
        let v = M.read versions.(b) in
        M.write versions.(b) ((v + 1) land value_mask)
      | Ycsb.Scan (_, len) ->
        ops_by_kind.(me).(b).(2) <- ops_by_kind.(me).(b).(2) + 1;
        let v0 = M.read versions.(b) in
        let acc = ref 0 in
        for j = 0 to len - 1 do
          acc := !acc + values.(b).((slot + j) mod nslots)
        done;
        ignore (Sys.opaque_identity !acc);
        if M.read versions.(b) <> v0 then torn.(me) <- torn.(me) + 1
      | Ycsb.Rmw _ ->
        ops_by_kind.(me).(b).(3) <- ops_by_kind.(me).(b).(3) + 1;
        expected.(me).(b) <- expected.(me).(b) + 1;
        values.(b).(slot) <- (values.(b).(slot) + 1) land value_mask;
        let v = M.read versions.(b) in
        M.write versions.(b) ((v + 1) land value_mask));
      L.unlock locks.(b) ~me
    done
  in
  let spawned =
    List.init (config.domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  while Atomic.get ready < config.domains - 1 do
    Domain.cpu_relax ()
  done;
  let t_start = now () in
  Atomic.set go true;
  worker 0 ();
  List.iter Domain.join spawned;
  let elapsed_ns = Int64.to_int (Int64.sub (now ()) t_start) in
  let total_ops = config.domains * config.ops in
  (* Witness audit, after the joins: each bucket's final version count
     must equal the mutations performed on it, and no scan may have seen
     the version move while it held the lock. *)
  let lost = ref 0 in
  for b = 0 to nb - 1 do
    let exp = ref 0 in
    for me = 0 to config.domains - 1 do
      exp := !exp + expected.(me).(b)
    done;
    lost := !lost + (!exp - M.read versions.(b))
  done;
  let torn_scans = Array.fold_left ( + ) 0 torn in
  let shard_hists =
    Array.init nb (fun b ->
        let h = Latency_hist.create () in
        for me = 0 to config.domains - 1 do
          Latency_hist.merge_into ~into:h hists.(me).(b)
        done;
        h)
  in
  let merged = Latency_hist.create () in
  Array.iter (fun h -> Latency_hist.merge_into ~into:merged h) shard_hists;
  let kind k b =
    let t = ref 0 in
    for me = 0 to config.domains - 1 do
      t := !t + ops_by_kind.(me).(b).(k)
    done;
    !t
  in
  let shards =
    Array.init nb (fun b ->
        let h = shard_hists.(b) in
        {
          ks_ops = Latency_hist.count h;
          ks_reads = kind 0 b;
          ks_updates = kind 1 b;
          ks_scans = kind 2 b;
          ks_rmws = kind 3 b;
          ks_p50_ns = Latency_hist.percentile h 0.50;
          ks_p99_ns = Latency_hist.percentile h 0.99;
          ks_max_ns = Latency_hist.max_ns h;
        })
  in
  let hot = Array.fold_left (fun acc s -> max acc s.ks_ops) 0 shards in
  let counters = Instr_mem.totals instr in
  {
    total_ops;
    elapsed_ns;
    throughput =
      (if elapsed_ns <= 0 then 0.0
       else Float.of_int total_ops /. (Float.of_int elapsed_ns /. 1e9));
    p50_ns = Latency_hist.percentile merged 0.50;
    p90_ns = Latency_hist.percentile merged 0.90;
    p99_ns = Latency_hist.percentile merged 0.99;
    max_ns = Latency_hist.max_ns merged;
    counters;
    rmr_per_op =
      (if total_ops = 0 then 0.0
       else Float.of_int counters.Instr_mem.rmr /. Float.of_int total_ops);
    lost_updates = !lost;
    torn_scans;
    exclusion_ok = !lost = 0 && torn_scans = 0;
    hot_share =
      (if total_ops = 0 then 0.0
       else Float.of_int hot /. Float.of_int total_ops);
    shards;
  }
