(** Deliberately broken constructions the fault-aware checker must
    refute.  Kept in the library (not the test suite) so the tests and
    the benchmark's committed baselines refute the {e same} modules. *)

(** An MCS queue lock with an intent-flag "recovery" fast path: the
    [inq] flag is raised before the node is published to the queue, so a
    crash in between forges a grant and the restarted incarnation enters
    the critical section alongside the real queue head.  Crash-free it
    is plain MCS and verifies; one crash–recovery pair at n = 2 refutes
    it.  See the implementation header for why this is the
    lost-exchange-return information bug in disguise. *)
module Broken_recovery_queue : Cfc_mutex.Mutex_intf.ALG

val broken_recovery_queue : Cfc_mutex.Registry.alg
