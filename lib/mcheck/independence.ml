open Cfc_runtime

(* ------------------------------------------------------------------ *)
(* Footprints: which registers a step may read or write, as bitmasks
   over register ids (allocation order).  Conflict is the §POR may-not-
   commute relation: a write on a register some other step touches. *)

type fp = { f_read : int; f_write : int }

let fp_empty = { f_read = 0; f_write = 0 }

let fp_union a b =
  { f_read = a.f_read lor b.f_read; f_write = a.f_write lor b.f_write }

let fp_equal a b = a.f_read = b.f_read && a.f_write = b.f_write

let conflict a b =
  a.f_write land (b.f_read lor b.f_write) <> 0
  || b.f_write land a.f_read <> 0

(* The widest register id a bitmask can carry without touching the sign
   bit of a 63-bit OCaml int. *)
let max_reg_bits = 62

let class_of_kind : Event.access_kind -> string = function
  | Event.A_read _ -> "read"
  | Event.A_write _ -> "write"
  | Event.A_field _ -> "write-field"
  | Event.A_xchg _ -> "xchg"
  | Event.A_cas _ -> "cas"
  | Event.A_bit (op, _) -> "bit:" ^ Cfc_base.Ops.to_string op

let fp_of_access ?(changed = true) ~reg (kind : Event.access_kind) =
  let bit = 1 lsl reg in
  let writes =
    changed
    &&
    match kind with
    (* A failed CAS records as a read ([Event.is_write] is
       success-dependent), but whether it succeeds depends on the
       interleaving, so for commutation it must count as a write. *)
    | Event.A_cas _ -> true
    | k -> Event.is_write k
  in
  { f_read = bit; f_write = (if writes then bit else 0) }

(* ------------------------------------------------------------------ *)
(* The static model of one process: its access graph
   ([Cfc_analysis.Analyze]), re-indexed as arrays, with the footprint of
   every node and the fixpoint union of footprints reachable from it. *)

type ninfo = {
  i_reg : int;
  i_cls : string;
  i_fp : fp;
  i_cycle : bool;
  i_may_end : bool;
}

type model = {
  m_entry : int list;  (* nodes with baseline position 0 *)
  m_info : ninfo array;
  m_succ : int array array;
  m_future : fp array;  (* [i_fp] unioned over graph-reachable nodes *)
  m_cycset : (int * string, unit) Hashtbl.t;
      (* (register, op class) pairs appearing on a detected busy-wait
         cycle, occurrence-independent: the dynamic search prunes spin
         unrolling long before it reaches the occurrence indices the
         symbolic engine flagged, so membership must not depend on how
         many times the instruction already executed *)
}

type t = { models : model option array }

let usable t = Array.exists Option.is_some t.models

let model_of_graph (g : Cfc_analysis.Analyze.graph) =
  let open Cfc_analysis.Analyze in
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) g.g_nodes [])
  in
  let keys = Array.of_list keys in
  let nn = Array.length keys in
  if nn = 0 then None
  else begin
    let index = Hashtbl.create nn in
    Array.iteri (fun i k -> Hashtbl.replace index k i) keys;
    let node i = Hashtbl.find g.g_nodes keys.(i) in
    let overflow = ref false in
    let info =
      Array.init nn (fun i ->
          let n = node i in
          if n.n_reg >= max_reg_bits then overflow := true;
          let bit = 1 lsl n.n_reg in
          {
            i_reg = n.n_reg;
            i_cls = n.n_class;
            i_fp =
              {
                f_read = bit;
                (* anything but a plain read may write: CAS and bit ops
                   conservatively so, since success is value-dependent *)
                f_write = (if n.n_class = "read" then 0 else bit);
              };
            i_cycle = n.n_cycle;
            i_may_end = n.n_may_end;
          })
    in
    let entry = ref [] in
    Array.iteri
      (fun i _ -> if (node i).n_baseline = 0 then entry := i :: !entry)
      keys;
    if !overflow || !entry = [] then None
    else begin
      let succ = Array.make nn [] in
      Hashtbl.iter
        (fun (a, b) () ->
          match (Hashtbl.find_opt index a, Hashtbl.find_opt index b) with
          | Some ia, Some ib -> succ.(ia) <- ib :: succ.(ia)
          | _ -> ())
        g.g_edges;
      let succ =
        Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) succ
      in
      let future = Array.map (fun inf -> inf.i_fp) info in
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to nn - 1 do
          let f =
            Array.fold_left
              (fun acc j -> fp_union acc future.(j))
              future.(i) succ.(i)
          in
          if not (fp_equal f future.(i)) then begin
            future.(i) <- f;
            changed := true
          end
        done
      done;
      let cycset = Hashtbl.create 8 in
      Array.iter
        (fun inf -> if inf.i_cycle then Hashtbl.replace cycset (inf.i_reg, inf.i_cls) ())
        info;
      Some
        {
          m_entry = List.sort compare !entry;
          m_info = info;
          m_succ = succ;
          m_future = future;
          m_cycset = cycset;
        }
    end
  end

let of_report (report : Cfc_analysis.Analyze.report) =
  {
    models =
      Array.of_list
        (List.map
           (fun vr -> model_of_graph vr.Cfc_analysis.Analyze.vr_graph)
           report.Cfc_analysis.Analyze.variants);
  }

let build subject_opt ~config =
  match subject_opt with
  | None -> None
  | Some subject -> (
    match Cfc_analysis.Analyze.analyze ?config subject with
    | report ->
      let t = of_report report in
      if usable t then Some t else None
    | exception _ -> None)

let mutex ?config alg (p : Cfc_mutex.Mutex_intf.params) =
  (* [of_mutex_checked], not [of_mutex]: the checked arena has the
     critical-section witness register, and footprints are bit positions
     in allocation order. *)
  build
    (Cfc_analysis.Subjects.of_mutex_checked ~l:p.Cfc_mutex.Mutex_intf.l
       ~n:p.Cfc_mutex.Mutex_intf.n alg)
    ~config

let detector ?config det (p : Cfc_mutex.Mutex_intf.params) =
  build
    (Cfc_analysis.Subjects.of_detector ~n:p.Cfc_mutex.Mutex_intf.n det)
    ~config

(* ------------------------------------------------------------------ *)
(* Dynamic position tracking: the set of graph nodes a process's next
   access may correspond to, advanced on every observed access.  A
   process whose accesses stop matching its graph (the bounded symbolic
   exploration under-covered its behavior) degrades permanently to [Top]
   — no static claim is made about it again, and the exploration around
   it falls back to full expansion. *)

type pos = Top | Nodes of int list  (* nonempty *)

type tracker = { t : t; pos : pos array }
type snap = pos array

let track t ~nprocs =
  {
    t;
    pos =
      Array.init nprocs (fun pid ->
          if pid < Array.length t.models then
            match t.models.(pid) with
            | Some m -> Nodes m.m_entry
            | None -> Top
          else Top);
  }

let snapshot tr = Array.copy tr.pos
let restore tr s = Array.blit s 0 tr.pos 0 (Array.length tr.pos)

let model tr pid =
  if pid < Array.length tr.t.models then tr.t.models.(pid) else None

let observe tr ~pid ~reg ~kind =
  match tr.pos.(pid) with
  | Top -> ()
  | Nodes pos -> (
    match model tr pid with
    | None -> tr.pos.(pid) <- Top
    | Some m -> (
      let cls = class_of_kind kind in
      let matched =
        List.filter
          (fun i -> m.m_info.(i).i_reg = reg && m.m_info.(i).i_cls = cls)
          pos
      in
      match matched with
      | [] -> tr.pos.(pid) <- Top
      | _ ->
        let next =
          List.sort_uniq compare
            (List.concat_map
               (fun i -> Array.to_list m.m_succ.(i))
               matched)
        in
        (* Past the last graph node the process either halts (and is
           never consulted again) or starts its body over (the harness
           [rounds] loop): restart the position at the entry. *)
        let next = if next = [] then m.m_entry else next in
        tr.pos.(pid) <- Nodes next))

let cycle_member tr ~pid ~reg ~kind =
  match model tr pid with
  | None -> false
  | Some m -> Hashtbl.mem m.m_cycset (reg, class_of_kind kind)

let next_fp tr pid =
  match tr.pos.(pid) with
  | Top -> None
  | Nodes pos -> (
    match model tr pid with
    | None -> None
    | Some m ->
      Some
        (List.fold_left
           (fun acc i -> fp_union acc m.m_info.(i).i_fp)
           fp_empty pos))

let future_fp tr pid =
  match tr.pos.(pid) with
  | Top -> None
  | Nodes pos -> (
    match model tr pid with
    | None -> None
    | Some m ->
      Some
        (List.fold_left
           (fun acc i -> fp_union acc m.m_future.(i))
           fp_empty pos))

let known tr pid = match tr.pos.(pid) with Top -> false | Nodes _ -> true

let next_may_end tr pid =
  match tr.pos.(pid) with
  | Top -> true
  | Nodes pos -> (
    match model tr pid with
    | None -> true
    | Some m -> List.exists (fun i -> m.m_info.(i).i_may_end) pos)
