(** Dynamic conflict collection for {!Explore}'s [observe_access] hook.

    A collector accumulates the set of distinct (pid, register, op
    class) shared accesses an exploration executes, and projects it to
    the cross-process conflicting pairs — same register, at least one
    writing side — the search actually exercised.  This is the dynamic
    ground truth the static race enumeration
    ([Cfc_analysis.Product.races]) is tested against: every pair
    reported here must be matched by [Product.has_pair]. *)

type t

val create : unit -> t

val observer :
  t ->
  pid:int ->
  reg:Cfc_runtime.Register.t ->
  kind:Cfc_runtime.Event.access_kind ->
  unit
(** Pass [observer t] as [observe_access].  Deduplicating and
    thread-safe (worker domains may fire it concurrently), so wiring it
    into a multi-node search is cheap: one mutex + one hash probe per
    access. *)

type access = {
  pid : int;
  rid : int;      (** register id within the checked arena *)
  reg : string;   (** register name, as allocated by the algorithm *)
  cls : string;   (** op class per {!Independence.class_of_kind} *)
  is_write : bool;
      (** per {!Cfc_runtime.Event.is_write} — a CAS counts as a write
          whether or not it succeeded on any particular execution *)
}

val accesses : t -> access list
(** Every distinct triple observed, sorted (pid, register, class). *)

type pair = {
  rid : int;
  reg : string;
  pid_a : int;
  cls_a : string;
  pid_b : int;
  cls_b : string;
}

val pairs : t -> pair list
(** Unordered cross-process conflict pairs ([pid_a < pid_b], each pair
    once, sorted): same register, distinct pids, at least one side a
    write. *)
