open Cfc_runtime
module Inc = Cfc_core.Spec.Inc

type config = { max_depth : int; max_steps_per_proc : int; max_states : int }

let default_config =
  { max_depth = 60; max_steps_per_proc = 25; max_states = 500_000 }

type stats = { runs : int; states : int; pruned : int; truncated : bool }

type engine = Incremental | Replay

type action = Step of int | Crash of int | Recover of int

let pp_action ppf = function
  | Step pid -> Format.fprintf ppf "step p%d" pid
  | Crash pid -> Format.fprintf ppf "crash p%d" pid
  | Recover pid -> Format.fprintf ppf "recover p%d" pid

type 'schedule gen_result =
  | Ok of stats
  | Violation of {
      schedule : 'schedule;
      violation : Cfc_core.Spec.violation;
      stats : stats;
    }

type result = int list gen_result
type fault_result = action list gen_result

(* Execute one action schedule from scratch. *)
let exec_actions ~system actions =
  let memory, procs = system () in
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  List.iter
    (function
      | Step pid -> ignore (Scheduler.step sched pid)
      | Crash pid -> Scheduler.crash sched pid
      | Recover pid -> Scheduler.recover sched pid)
    actions;
  (memory, sched, trace)

let outcome_of (memory, sched, trace) =
  let total_steps =
    List.init (Scheduler.nprocs sched) (Scheduler.steps_taken sched)
    |> List.fold_left ( + ) 0
  in
  let stopped =
    if Scheduler.all_quiescent sched then Runner.Quiescent
    else Runner.Picker_done
  in
  {
    Runner.memory;
    trace;
    scheduler = sched;
    completed = (stopped = Runner.Quiescent);
    stopped;
    total_steps;
  }

let replay_actions ~system ~schedule =
  outcome_of (exec_actions ~system schedule)

let replay ~system ~schedule =
  replay_actions ~system ~schedule:(List.map (fun pid -> Step pid) schedule)

exception Found of action list * Cfc_core.Spec.violation
exception Budget

exception Fallback
(* Raised when a process catches a register-op exception and keeps going:
   observation replay cannot rebuild such a process, so the incremental
   engine bails out and the exploration re-runs on the replay engine. *)

(* The memo table: compact structural keys ({!State_key.t} plus the crash
   budget already used), hashed deeply.  Pre-sized from the state budget so
   the hot loop never pays for resizes. *)
module Tbl = Hashtbl.Make (struct
  type t = State_key.t * int

  let equal ((ka, ua) : t) ((kb, ub) : t) = ua = ub && State_key.equal ka kb
  let hash ((k, u) : t) = State_key.hash k + u
end)

let tbl_size config = max 64 (min config.max_states 65_536)

type counters = {
  mutable runs : int;
  mutable states : int;
  mutable pruned : int;
  mutable truncated : bool;
}

let new_counters () = { runs = 0; states = 0; pruned = 0; truncated = false }

let stats_of c : stats =
  { runs = c.runs; states = c.states; pruned = c.pruned;
    truncated = c.truncated }

(* Scheduler choices offered at the current state, in the canonical order
   shared by both engines: steps (runnable pids ascending, within the step
   budget, optionally symmetry-reduced), then crashes, then recoveries.
   Built back-to-front by consing so the hot path allocates exactly the
   result list. *)
let candidates_of sched ~config ~symmetric ~pairs ~nprocs ~used =
  let acc = ref [] in
  if pairs > 0 then begin
    for pid = nprocs - 1 downto 0 do
      if Scheduler.status sched pid = Scheduler.Crashed then
        acc := Recover pid :: !acc
    done;
    (* Crashing a process that has not yet taken a step reaches, after its
       recovery, a state indistinguishable from never crashing it — skip
       those branches outright. *)
    if used < pairs then
      for pid = nprocs - 1 downto 0 do
        if
          Scheduler.status sched pid = Scheduler.Runnable
          && Scheduler.started sched pid
        then acc := Crash pid :: !acc
      done
  end;
  if symmetric then begin
    (* Symmetry reduction: when all processes run identical code, schedules
       that differ only in which not-yet-started process goes first are
       isomorphic under a pid permutation, so only the lowest-numbered
       fresh process needs exploring — ordered after the started ones. *)
    let fresh = ref (-1) in
    for pid = nprocs - 1 downto 0 do
      if
        Scheduler.status sched pid = Scheduler.Runnable
        && Scheduler.steps_taken sched pid < config.max_steps_per_proc
        && not (Scheduler.started sched pid)
      then fresh := pid
    done;
    if !fresh >= 0 then acc := Step !fresh :: !acc;
    for pid = nprocs - 1 downto 0 do
      if
        Scheduler.status sched pid = Scheduler.Runnable
        && Scheduler.steps_taken sched pid < config.max_steps_per_proc
        && Scheduler.started sched pid
      then acc := Step pid :: !acc
    done
  end
  else
    for pid = nprocs - 1 downto 0 do
      if
        Scheduler.status sched pid = Scheduler.Runnable
        && Scheduler.steps_taken sched pid < config.max_steps_per_proc
      then acc := Step pid :: !acc
    done;
  !acc

let bump_used used a = match a with Crash _ -> used + 1 | Step _ | Recover _ -> used

(* ------------------------------------------------------------------ *)
(* The replay engine: dscheck-style re-execution of the whole schedule
   prefix at every node.  Kept as the reference implementation (the
   equivalence tests pin the incremental engine to it) and as the
   fallback for replay-unsafe processes. *)

let run_replay ~config ~symmetric ~pairs ~system ~check () =
  let seen = Tbl.create (tbl_size config) in
  let c = new_counters () in
  (* The process count is a property of the system shape, not of any
     particular node: hoist the pid list out of the per-node work. *)
  let nprocs = Array.length (snd (system ())) in
  let pids = List.init nprocs Fun.id in
  let rec expand schedule depth used =
    if c.states >= config.max_states then begin
      c.truncated <- true;
      raise Budget
    end;
    c.states <- c.states + 1;
    (* [schedule] is kept reversed (most recent action first). *)
    let memory, sched, trace = exec_actions ~system (List.rev schedule) in
    (* Process errors (assertion failures inside algorithms, the critical
       section witness, model violations) are violations in themselves. *)
    List.iter
      (fun pid ->
        match Scheduler.status sched pid with
        | Scheduler.Errored e ->
          raise
            (Found
               ( List.rev schedule,
                 {
                   Cfc_core.Spec.at = Trace.length trace;
                   pids = [ pid ];
                   what = "process error: " ^ Printexc.to_string e;
                 } ))
        | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed -> ())
      pids;
    (match check trace ~nprocs with
    | Some v -> raise (Found (List.rev schedule, v))
    | None -> ());
    let key = (State_key.of_system memory sched trace, used) in
    if Tbl.mem seen key then c.pruned <- c.pruned + 1
    else begin
      Tbl.add seen key ();
      let candidates =
        candidates_of sched ~config ~symmetric ~pairs ~nprocs ~used
      in
      if candidates = [] then begin
        if not (Scheduler.all_quiescent sched) then c.truncated <- true;
        c.runs <- c.runs + 1
      end
      else if depth >= config.max_depth then begin
        c.truncated <- true;
        c.runs <- c.runs + 1
      end
      else
        List.iter
          (fun a -> expand (a :: schedule) (depth + 1) (bump_used used a))
          candidates
    end
  in
  match expand [] 0 0 with
  | () -> Ok (stats_of c)
  | exception Budget -> Ok (stats_of c)
  | exception Found (schedule, violation) ->
    Violation { schedule; violation; stats = stats_of c }

(* ------------------------------------------------------------------ *)
(* The incremental engine: one live (memory, scheduler, trace) per search
   branch, extended by a single action per node and rolled back by
   checkpoint/undo between siblings.  Checkpoints are O(nprocs +
   registers) scalars — continuations are one-shot and cannot be cloned,
   so a process whose continuation was consumed by an abandoned sibling
   is rebuilt lazily by the scheduler from its recorded observations
   (exactly the [obs] lists maintained here, which double as the state
   key's per-process component). *)

type inc_state = {
  i_config : config;
  i_symmetric : bool;
  i_pairs : int;
  i_memory : Memory.t;
  i_sched : Scheduler.t;
  i_trace : Trace.t;
  i_obs : State_key.cell list array;  (* per pid, newest first *)
  i_obs_hash : int array;  (* per pid, rolling State_key.cell_hash fold *)
  i_nprocs : int;
  i_inc : Inc.run;
  i_seen : unit Tbl.t;
  i_c : counters;
}

type checkpoint = {
  ck_sched : Scheduler.snap;
  ck_regvals : int array;
  ck_tracelen : int;
  ck_obs : State_key.cell list array;
  ck_obs_hash : int array;
  ck_inc : unit -> unit;
}

let make_inc_state ~config ~symmetric ~pairs ~system ~inc ~seen ~c =
  let memory, procs = system () in
  let trace = Trace.create () in
  let obs = Array.make (Array.length procs) [] in
  let oracle pid = List.rev_map (fun cl -> cl.State_key.kind) obs.(pid) in
  let sched = Scheduler.create ~oracle ~memory ~trace procs in
  let nprocs = Scheduler.nprocs sched in
  { i_config = config; i_symmetric = symmetric; i_pairs = pairs;
    i_memory = memory; i_sched = sched; i_trace = trace; i_obs = obs;
    i_obs_hash = Array.make (Array.length procs) 0; i_nprocs = nprocs;
    i_inc = Inc.start inc ~nprocs; i_seen = seen; i_c = c }

let apply st a =
  let before = Trace.length st.i_trace in
  (match a with
  | Step pid -> ignore (Scheduler.step st.i_sched pid)
  | Crash pid -> Scheduler.crash st.i_sched pid
  | Recover pid -> Scheduler.recover st.i_sched pid);
  if not (Scheduler.replay_safe st.i_sched) then raise Fallback;
  (* Fold the new events into the per-process observation lists (a crash
     wipes local state, so the observation history restarts). *)
  for i = before to Trace.length st.i_trace - 1 do
    let e = Trace.get st.i_trace i in
    match e.Event.body with
    | Event.Access (r, k) ->
      let pid = e.Event.pid in
      let cl = State_key.cell r k in
      st.i_obs.(pid) <- cl :: st.i_obs.(pid);
      st.i_obs_hash.(pid) <- State_key.cell_hash st.i_obs_hash.(pid) cl
    | Event.Crash ->
      st.i_obs.(e.Event.pid) <- [];
      st.i_obs_hash.(e.Event.pid) <- 0
    | Event.Region_change _ | Event.Recover -> ()
  done

let save st ~regvals ~tracelen =
  { ck_sched = Scheduler.snapshot st.i_sched;
    ck_regvals = regvals;
    ck_tracelen = tracelen;
    ck_obs = Array.copy st.i_obs;
    ck_obs_hash = Array.copy st.i_obs_hash;
    ck_inc = st.i_inc.Inc.save () }

let rollback st ck =
  Scheduler.restore st.i_sched ck.ck_sched;
  Memory.restore_values st.i_memory ck.ck_regvals;
  Trace.truncate st.i_trace ck.ck_tracelen;
  Array.blit ck.ck_obs 0 st.i_obs 0 st.i_nprocs;
  Array.blit ck.ck_obs_hash 0 st.i_obs_hash 0 st.i_nprocs;
  ck.ck_inc ()

let state_key_of st ~regvals ~used =
  ( { State_key.k_regvals = regvals;
      k_procs =
        Array.init st.i_nprocs (fun pid ->
            { State_key.k_status =
                State_key.status_tag (Scheduler.status st.i_sched pid);
              k_region = Scheduler.region st.i_sched pid;
              k_obs_hash = st.i_obs_hash.(pid);
              k_obs = st.i_obs.(pid) }) },
    used )

(* [from] is the trace length at the parent node: the incremental check
   consumes only the events the arriving action appended. *)
let rec expand_inc st schedule depth used ~from =
  let config = st.i_config and c = st.i_c in
  if c.states >= config.max_states then begin
    c.truncated <- true;
    raise Budget
  end;
  c.states <- c.states + 1;
  let trace_len = Trace.length st.i_trace in
  for pid = 0 to st.i_nprocs - 1 do
    match Scheduler.status st.i_sched pid with
    | Scheduler.Errored e ->
      raise
        (Found
           ( List.rev schedule,
             {
               Cfc_core.Spec.at = trace_len;
               pids = [ pid ];
               what = "process error: " ^ Printexc.to_string e;
             } ))
    | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed -> ()
  done;
  (match st.i_inc.Inc.feed st.i_trace ~from with
  | Some v -> raise (Found (List.rev schedule, v))
  | None -> ());
  let regvals = Memory.values st.i_memory in
  let key = state_key_of st ~regvals ~used in
  (* Membership test and insert in one hashing pass: [replace] on a
     present key leaves the size unchanged. *)
  let population = Tbl.length st.i_seen in
  Tbl.replace st.i_seen key ();
  if Tbl.length st.i_seen = population then c.pruned <- c.pruned + 1
  else begin
    let candidates =
      candidates_of st.i_sched ~config ~symmetric:st.i_symmetric
        ~pairs:st.i_pairs ~nprocs:st.i_nprocs ~used
    in
    match candidates with
    | [] ->
      if not (Scheduler.all_quiescent st.i_sched) then c.truncated <- true;
      c.runs <- c.runs + 1
    | _ when depth >= config.max_depth ->
      c.truncated <- true;
      c.runs <- c.runs + 1
    | [ a ] ->
      (* A chain: no sibling will ever need this state back, so no
         checkpoint is taken. *)
      apply st a;
      expand_inc st (a :: schedule) (depth + 1) (bump_used used a)
        ~from:trace_len
    | candidates ->
      (* Checkpoint once; restore between siblings only — the last child
         leaves the state dirty, and the nearest branching ancestor's
         (absolute) restore repairs it. *)
      let ck = save st ~regvals ~tracelen:trace_len in
      List.iteri
        (fun i a ->
          if i > 0 then rollback st ck;
          apply st a;
          expand_inc st (a :: schedule) (depth + 1) (bump_used used a)
            ~from:trace_len)
        candidates
  end

let run_inc_seq ~config ~symmetric ~pairs ~system ~inc () =
  let c = new_counters () in
  let st =
    make_inc_state ~config ~symmetric ~pairs ~system ~inc
      ~seen:(Tbl.create (tbl_size config)) ~c
  in
  match expand_inc st [] 0 0 ~from:0 with
  | () -> Ok (stats_of c)
  | exception Budget -> Ok (stats_of c)
  | exception Found (schedule, violation) ->
    Violation { schedule; violation; stats = stats_of c }

(* ------------------------------------------------------------------ *)
(* Domain-parallel exploration: the root node's candidate actions are
   independent subtrees; workers pull them from a shared index and run a
   full incremental engine on each (own system, own memo table, own
   counters — continuations and registers cannot cross domains).  Results
   are merged by branch index, so the verdict, counterexample schedule
   and stats are deterministic and independent of the number of domains:
   the reported violation is the one in the earliest branch in canonical
   candidate order, i.e. the same branch the sequential DFS enters first.

   The per-branch memo tables cannot share prunes across branches, so
   [states]/[pruned] exceed the sequential engine's on diamond-heavy
   state spaces (each branch re-discovers states the sequential search
   reaches first through an earlier branch); DESIGN.md §2 records this
   deviation.  Each branch also gets the full [max_states] budget. *)

type branch_result =
  | B_ok of stats
  | B_viol of action list * Cfc_core.Spec.violation * stats
  | B_fallback

let run_branch ~config ~symmetric ~pairs ~system ~inc a =
  let c = new_counters () in
  let st =
    make_inc_state ~config ~symmetric ~pairs ~system ~inc
      ~seen:(Tbl.create (tbl_size config)) ~c
  in
  (* Seed the memo with the initial state's key so a schedule that loops
     back to it is pruned exactly as in the sequential search. *)
  Tbl.add st.i_seen (state_key_of st ~regvals:(Memory.values st.i_memory) ~used:0) ();
  match
    apply st a;
    expand_inc st [ a ] 1 (bump_used 0 a) ~from:0
  with
  | () -> B_ok (stats_of c)
  | exception Budget -> B_ok (stats_of c)
  | exception Found (schedule, violation) ->
    B_viol (schedule, violation, stats_of c)
  | exception Fallback -> B_fallback

let run_inc_par ~config ~symmetric ~pairs ~system ~inc ~domains () =
  (* The root node is processed by the coordinator (it is the common
     prefix of every branch); its counter contributions mirror the
     sequential engine's. *)
  let c = new_counters () in
  let st =
    make_inc_state ~config ~symmetric ~pairs ~system ~inc
      ~seen:(Tbl.create 64) ~c
  in
  c.states <- 1;
  (* No process has run at the root: no errors, nothing to feed. *)
  let candidates =
    candidates_of st.i_sched ~config ~symmetric ~pairs ~nprocs:st.i_nprocs
      ~used:0
  in
  match candidates with
  | [] ->
    if not (Scheduler.all_quiescent st.i_sched) then c.truncated <- true;
    c.runs <- 1;
    Ok (stats_of c)
  | _ when 0 >= config.max_depth ->
    c.truncated <- true;
    c.runs <- 1;
    Ok (stats_of c)
  | candidates ->
    let jobs = Array.of_list candidates in
    let njobs = Array.length jobs in
    let results = Array.make njobs (B_ok (stats_of (new_counters ()))) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < njobs then begin
          results.(i) <-
            run_branch ~config ~symmetric ~pairs ~system ~inc jobs.(i);
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init
        (max 0 (min domains njobs - 1))
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    if Array.exists (function B_fallback -> true | B_ok _ | B_viol _ -> false)
         results
    then raise Fallback;
    (* First violating branch in candidate order wins; its stats merge
       with the branches the sequential DFS would have completed before
       reaching it. *)
    let first_viol = ref None in
    for i = njobs - 1 downto 0 do
      match results.(i) with
      | B_viol (schedule, violation, _) -> first_viol := Some (i, schedule, violation)
      | B_ok _ | B_fallback -> ()
    done;
    let last = match !first_viol with Some (i, _, _) -> i | None -> njobs - 1 in
    for i = 0 to last do
      let s =
        match results.(i) with
        | B_ok s -> s
        | B_viol (_, _, s) -> s
        | B_fallback -> assert false
      in
      c.runs <- c.runs + s.runs;
      c.states <- c.states + s.states;
      c.pruned <- c.pruned + s.pruned;
      c.truncated <- c.truncated || s.truncated
    done;
    (match !first_viol with
    | Some (_, schedule, violation) ->
      Violation { schedule; violation; stats = stats_of c }
    | None -> Ok (stats_of c))

(* ------------------------------------------------------------------ *)

(* The engine, over action schedules.  [pairs] is the crash–recovery
   budget: 0 disables fault injection entirely (the plain interleaving
   exploration), [pairs > 0] additionally offers, at every decision
   point, crashing any started runnable process (while crashes remain in
   the budget) and recovering any crashed one. *)
let run_gen ?(config = default_config) ?(symmetric = false)
    ?(engine = Incremental) ?(domains = 1) ?(replay_safe = true) ?inc ~pairs
    ~system ~check () =
  let inc = match inc with Some i -> i | None -> Inc.of_whole check in
  match engine with
  | Replay -> run_replay ~config ~symmetric ~pairs ~system ~check ()
  | Incremental when not replay_safe ->
    (* A static analysis (or a previous run) already knows some process
       swallows mid-access discontinuation; the incremental engine would
       only rediscover that and raise [Fallback] mid-search.  Skip the
       wasted work and start on the replay engine directly. *)
    run_replay ~config ~symmetric ~pairs ~system ~check ()
  | Incremental -> (
    try
      if domains <= 1 then run_inc_seq ~config ~symmetric ~pairs ~system ~inc ()
      else run_inc_par ~config ~symmetric ~pairs ~system ~inc ~domains ()
    with Fallback ->
      (* Some process caught a register-op exception and continued; its
         local state is invisible to observation replay.  Start over on
         the (always sound) replay engine. *)
      run_replay ~config ~symmetric ~pairs ~system ~check ())

let run ?config ?symmetric ?engine ?domains ?replay_safe ?inc ~system ~check ()
    =
  match
    run_gen ?config ?symmetric ?engine ?domains ?replay_safe ?inc ~pairs:0
      ~system ~check ()
  with
  | Ok stats -> Ok stats
  | Violation { schedule; violation; stats } ->
    let pids =
      List.map
        (function
          | Step pid -> pid
          | Crash _ | Recover _ -> assert false (* pairs = 0 *))
        schedule
    in
    Violation { schedule = pids; violation; stats }

let run_faults ?config ?symmetric ?engine ?domains ?replay_safe ?inc
    ?(pairs = 2) ~system ~check () =
  run_gen ?config ?symmetric ?engine ?domains ?replay_safe ?inc ~pairs ~system
    ~check ()
