open Cfc_runtime
module Inc = Cfc_core.Spec.Inc

type config = { max_depth : int; max_steps_per_proc : int; max_states : int }

let default_config =
  { max_depth = 60; max_steps_per_proc = 25; max_states = 500_000 }

type stats = {
  runs : int;
  states : int;
  pruned_dedup : int;
  pruned_sym : int;
  pruned_por : int;
  fp_collisions : int;
  seen_pop : int;
  seen_cap : int;
  truncated : bool;
}

type engine = Incremental | Replay

type action = Step of int | Crash of int | Recover of int

let pp_action ppf = function
  | Step pid -> Format.fprintf ppf "step p%d" pid
  | Crash pid -> Format.fprintf ppf "crash p%d" pid
  | Recover pid -> Format.fprintf ppf "recover p%d" pid

type 'schedule gen_result =
  | Ok of stats
  | Violation of {
      schedule : 'schedule;
      violation : Cfc_core.Spec.violation;
      stats : stats;
    }

type result = int list gen_result
type fault_result = action list gen_result

(* Execute one action schedule from scratch. *)
let exec_actions ~system actions =
  let memory, procs = system () in
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  List.iter
    (function
      | Step pid -> ignore (Scheduler.step sched pid)
      | Crash pid -> Scheduler.crash sched pid
      | Recover pid -> Scheduler.recover sched pid)
    actions;
  (memory, sched, trace)

let outcome_of (memory, sched, trace) =
  let total_steps =
    List.init (Scheduler.nprocs sched) (Scheduler.steps_taken sched)
    |> List.fold_left ( + ) 0
  in
  let stopped =
    if Scheduler.all_quiescent sched then Runner.Quiescent
    else Runner.Picker_done
  in
  {
    Runner.memory;
    trace;
    scheduler = sched;
    completed = (stopped = Runner.Quiescent);
    stopped;
    total_steps;
  }

let replay_actions ~system ~schedule =
  outcome_of (exec_actions ~system schedule)

let replay ~system ~schedule =
  replay_actions ~system ~schedule:(List.map (fun pid -> Step pid) schedule)

exception Found of action list * Cfc_core.Spec.violation
exception Budget

exception Fallback
(* Raised when a process catches a register-op exception and keeps going:
   observation replay cannot rebuild such a process, so the incremental
   engine bails out and the exploration re-runs on the replay engine. *)

(* The memo table: compact structural keys ({!State_key.t} plus the crash
   budget already used), hashed deeply.  Pre-sized from the state budget
   (or the caller's [seen_hint]) so the hot loop never pays for
   resizes. *)
module Tbl = Hashtbl.Make (struct
  type t = State_key.t * int

  let equal ((ka, ua) : t) ((kb, ub) : t) = ua = ub && State_key.equal ka kb
  let hash ((k, u) : t) = State_key.hash k + u
end)

(* Pre-size the seen set for the worst case: the search stops at
   [max_states] entries, so paying the (few-MB) bucket array up front
   buys zero rehashes mid-search.  An earlier version clamped this at
   65 536 and rehashed the table repeatedly on big sweeps. *)
let tbl_size ?hint config =
  match hint with
  | Some n when n > 0 -> max 64 (min n config.max_states)
  | Some _ | None -> max 64 config.max_states

type counters = {
  mutable runs : int;
  mutable states : int;
  mutable pruned_dedup : int;
  mutable pruned_sym : int;
  mutable pruned_por : int;
  mutable fp_collisions : int;
  mutable seen_pop : int;
  mutable seen_cap : int;
  mutable cutoffs : int;
      (* depth/step-budget cutoffs below the current node — a subtree is
         marked fully explored (sharable across branches) only when this
         did not move while expanding it *)
  mutable truncated : bool;
}

let new_counters () =
  { runs = 0; states = 0; pruned_dedup = 0; pruned_sym = 0; pruned_por = 0;
    fp_collisions = 0; seen_pop = 0; seen_cap = 0; cutoffs = 0;
    truncated = false }

let cutoff c =
  c.truncated <- true;
  c.cutoffs <- c.cutoffs + 1

let stats_of c : stats =
  { runs = c.runs; states = c.states; pruned_dedup = c.pruned_dedup;
    pruned_sym = c.pruned_sym; pruned_por = c.pruned_por;
    fp_collisions = c.fp_collisions; seen_pop = c.seen_pop;
    seen_cap = c.seen_cap; truncated = c.truncated }

(* ------------------------------------------------------------------ *)
(* The seen set.  One abstraction covers the four storage shapes the
   engines need: exact keys or 64-bit×2 fingerprints (compact mode),
   private to one search or shared across domain-parallel branches
   (sharded, mutex-striped).

   Every stored state carries one {!Seen.entry}:

   - [e_sleep]/[e_steps] — what the stored exploration assumed, for the
     partial-order reduction's coverage check ({!Seen.covers}): a
     revisit is pruned only if the stored exploration slept on no more
     transitions and had at least as much per-process step budget.
     Without reduction they are never read (presence alone prunes).
   - [e_open] — in-progress expansions of the state on some DFS stack:
     the reduction's cycle proviso (a singleton ample set must not step
     onto a state still being expanded).
   - [e_done]/[e_branch] — cross-branch prune gating in shared mode: a
     branch may prune on another branch's entry only once that branch
     {e completed} the state's subtree without hitting any bound
     ([e_done]); an in-progress or bound-cut foreign entry is adopted
     and re-explored instead.  Completion-gating is what keeps the
     verdict and counterexample schedule deterministic and identical to
     the sequential search's: a pruned-on foreign subtree is fully
     explored and violation-free, so no branch's DFS can have its
     verdict changed by another branch's timing — only its stats.
   - [e_fp2] — the second fingerprint lane in compact mode: a first-lane
     hit with a second-lane mismatch is a {e detected} collision
     (counted in [fp_collisions], explored without storing — sound,
     merely slower); an undetected collision needs both 62-bit lanes to
     agree at once. *)
module Seen = struct
  type entry = {
    mutable e_sleep : int;
    mutable e_steps : int array;
    mutable e_open : int;
    mutable e_done : bool;
    mutable e_branch : int;
    e_fp2 : int;
  }

  (* Shared entry for the unreduced single-search fast path, where only
     presence matters; never mutated. *)
  let dummy =
    { e_sleep = 0; e_steps = [||]; e_open = 0; e_done = false;
      e_branch = 0; e_fp2 = 0 }

  type store = Exact of entry Tbl.t | Compact of (int, entry) Hashtbl.t

  type shard = { sh_lock : Mutex.t; sh_store : store }

  type t = Local of store | Sharded of shard array

  (* Handle on an entered state: the entry plus the lock protecting it
     (shared mode only). *)
  type tok = { t_entry : entry; t_lock : Mutex.t option }

  let nshards = 64

  let mk_store ~compact cap =
    if compact then Compact (Hashtbl.create cap) else Exact (Tbl.create cap)

  let create ~compact ~shared cap =
    if shared then
      Sharded
        (Array.init nshards (fun _ ->
             { sh_lock = Mutex.create ();
               sh_store = mk_store ~compact (max 16 (cap / nshards)) }))
    else Local (mk_store ~compact cap)

  let store_pop = function
    | Exact t -> Tbl.length t
    | Compact t -> Hashtbl.length t

  let population = function
    | Local s -> store_pop s
    | Sharded shards ->
      Array.fold_left (fun acc sh -> acc + store_pop sh.sh_store) 0 shards

  let fp_of ((key, used) : State_key.t * int) = State_key.fingerprint key used

  let shard_of shards ((k, u) : State_key.t * int) =
    shards.(((State_key.hash k + u) land max_int) mod nshards)

  let covers e ~sleep ~steps =
    e.e_sleep land lnot sleep = 0
    && (let ok = ref true in
        Array.iteri (fun i s -> if s < e.e_steps.(i) then ok := false) steps;
        !ok)

  let fresh ~sleep ~steps ~branch ~fp2 =
    { e_sleep = sleep; e_steps = steps; e_open = 0; e_done = false;
      e_branch = branch; e_fp2 = fp2 }

  (* [None]: pruned (the matching counter has been bumped).  [Some e]:
     proceed and expand; [e]'s payload has been (re)set to this visit's
     sleep/steps. *)
  let enter_store store ~c ~por ~shared ~branch ~rewritten ~sleep ~steps key
      =
    let prune () =
      if rewritten then c.pruned_sym <- c.pruned_sym + 1
      else c.pruned_dedup <- c.pruned_dedup + 1;
      None
    in
    let decide e =
      let mine = (not shared) || e.e_done || e.e_branch = branch in
      if mine && ((not por) || covers e ~sleep ~steps) then prune ()
      else begin
        e.e_sleep <- sleep;
        e.e_steps <- steps;
        e.e_branch <- branch;
        Some e
      end
    in
    match store with
    | Exact tbl when (not por) && not shared ->
      (* membership test and insert in one hashing pass: [replace] on a
         present key leaves the size unchanged *)
      let population = Tbl.length tbl in
      Tbl.replace tbl key dummy;
      if Tbl.length tbl = population then prune () else Some dummy
    | Exact tbl -> (
      match Tbl.find_opt tbl key with
      | Some e -> decide e
      | None ->
        let e = fresh ~sleep ~steps ~branch ~fp2:0 in
        Tbl.add tbl key e;
        Some e)
    | Compact tbl -> (
      let fp1, fp2 = fp_of key in
      match Hashtbl.find_opt tbl fp1 with
      | Some e when e.e_fp2 <> fp2 ->
        c.fp_collisions <- c.fp_collisions + 1;
        Some (fresh ~sleep ~steps ~branch ~fp2)
      | Some e -> decide e
      | None ->
        let e = fresh ~sleep ~steps ~branch ~fp2 in
        Hashtbl.add tbl fp1 e;
        Some e)

  let enter seen ~c ~por ~branch ~rewritten ~sleep ~steps key =
    match seen with
    | Local store -> (
      match
        enter_store store ~c ~por ~shared:false ~branch ~rewritten ~sleep
          ~steps key
      with
      | None -> None
      | Some e -> Some { t_entry = e; t_lock = None })
    | Sharded shards -> (
      let sh = shard_of shards key in
      Mutex.lock sh.sh_lock;
      let r =
        enter_store sh.sh_store ~c ~por ~shared:true ~branch ~rewritten
          ~sleep ~steps key
      in
      Mutex.unlock sh.sh_lock;
      match r with
      | None -> None
      | Some e -> Some { t_entry = e; t_lock = Some sh.sh_lock })

  let with_lock tok f =
    match tok.t_lock with
    | None -> f tok.t_entry
    | Some l ->
      Mutex.lock l;
      let r = f tok.t_entry in
      Mutex.unlock l;
      r

  let open_incr tok = with_lock tok (fun e -> e.e_open <- e.e_open + 1)
  let open_decr tok = with_lock tok (fun e -> e.e_open <- e.e_open - 1)

  (* Mark the state's subtree fully explored — only meaningful (and only
     paid for) in shared mode, where it gates cross-branch pruning. *)
  let mark_done tok =
    match tok.t_lock with
    | None -> ()
    | Some l ->
      Mutex.lock l;
      tok.t_entry.e_done <- true;
      Mutex.unlock l

  let find_store store key =
    match store with
    | Exact tbl -> Tbl.find_opt tbl key
    | Compact tbl -> (
      let fp1, fp2 = fp_of key in
      match Hashtbl.find_opt tbl fp1 with
      | Some e when e.e_fp2 = fp2 -> Some e
      | Some _ | None -> None)

  let is_open seen key =
    match seen with
    | Local store -> (
      match find_store store key with Some e -> e.e_open > 0 | None -> false)
    | Sharded shards ->
      let sh = shard_of shards key in
      Mutex.lock sh.sh_lock;
      let r =
        match find_store sh.sh_store key with
        | Some e -> e.e_open > 0
        | None -> false
      in
      Mutex.unlock sh.sh_lock;
      r

  (* Seed the root state of a branch-parallel search: the root node is
     handled by the coordinator (it is the common prefix of every
     branch), so every branch may prune schedules looping back to it —
     exactly as the sequential search does with its root entry. *)
  let seed seen ~nprocs ~sleep key =
    let e =
      { e_sleep = sleep; e_steps = Array.make nprocs 0; e_open = 0;
        e_done = true; e_branch = -1; e_fp2 = 0 }
    in
    match seen with
    | Local store -> (
      match store with
      | Exact tbl -> Tbl.replace tbl key e
      | Compact tbl ->
        let fp1, fp2 = fp_of key in
        Hashtbl.replace tbl fp1 { e with e_fp2 = fp2 })
    | Sharded shards -> (
      let sh = shard_of shards key in
      Mutex.lock sh.sh_lock;
      (match sh.sh_store with
      | Exact tbl -> Tbl.replace tbl key e
      | Compact tbl ->
        let fp1, fp2 = fp_of key in
        Hashtbl.replace tbl fp1 { e with e_fp2 = fp2 });
      Mutex.unlock sh.sh_lock)
end

(* Scheduler choices offered at the current state, in the canonical order
   shared by both engines: steps (runnable pids ascending, optionally
   restricted to the lowest fresh pid, within the step budget), then
   crashes, then recoveries.  Built back-to-front by consing so the hot
   path allocates exactly the result list. *)
let candidates_of sched ~config ~fresh_only ~pairs ~nprocs ~used =
  let acc = ref [] in
  if pairs > 0 then begin
    for pid = nprocs - 1 downto 0 do
      if Scheduler.status sched pid = Scheduler.Crashed then
        acc := Recover pid :: !acc
    done;
    (* Crashing a process that has not yet taken a step reaches, after its
       recovery, a state indistinguishable from never crashing it — skip
       those branches outright. *)
    if used < pairs then
      for pid = nprocs - 1 downto 0 do
        if
          Scheduler.status sched pid = Scheduler.Runnable
          && Scheduler.started sched pid
        then acc := Crash pid :: !acc
      done
  end;
  if fresh_only then begin
    (* Candidate-level symmetry pruning, sound for literally identical
       (anonymous) processes: schedules that differ only in which
       not-yet-started process goes first are isomorphic under a pid
       permutation, so only the lowest-numbered fresh process needs
       exploring — ordered after the started ones. *)
    let fresh = ref (-1) in
    for pid = nprocs - 1 downto 0 do
      if
        Scheduler.status sched pid = Scheduler.Runnable
        && Scheduler.steps_taken sched pid < config.max_steps_per_proc
        && not (Scheduler.started sched pid)
      then fresh := pid
    done;
    if !fresh >= 0 then acc := Step !fresh :: !acc;
    for pid = nprocs - 1 downto 0 do
      if
        Scheduler.status sched pid = Scheduler.Runnable
        && Scheduler.steps_taken sched pid < config.max_steps_per_proc
        && Scheduler.started sched pid
      then acc := Step pid :: !acc
    done
  end
  else
    for pid = nprocs - 1 downto 0 do
      if
        Scheduler.status sched pid = Scheduler.Runnable
        && Scheduler.steps_taken sched pid < config.max_steps_per_proc
      then acc := Step pid :: !acc
    done;
  !acc

let bump_used used a = match a with Crash _ -> used + 1 | Step _ | Recover _ -> used

(* Candidate-level fresh-pid pruning applies only to a pure (identical
   processes) symmetry group and is kept off under POR, whose sleep-set
   bookkeeping assumes the full candidate list. *)
let fresh_only_of ~sym ~ind =
  (match sym with Some s -> Symmetry.is_pure s | None -> false)
  && ind = None

(* ------------------------------------------------------------------ *)
(* The replay engine: dscheck-style re-execution of the whole schedule
   prefix at every node.  Kept as the reference implementation (the
   equivalence tests pin the incremental engine to it) and as the
   fallback for replay-unsafe processes.  Never partial-order reduced
   and always exact-keyed; the symmetry canonicalisation does apply, so
   reduced verdicts can be cross-checked on both engines. *)

let run_replay ~config ?seen_hint ?observe ~sym ~pairs ~system ~check () =
  let cap = tbl_size ?hint:seen_hint config in
  let seen : unit Tbl.t = Tbl.create cap in
  let c = new_counters () in
  c.seen_cap <- cap;
  let fresh_only = fresh_only_of ~sym ~ind:None in
  (* The process count is a property of the system shape, not of any
     particular node: hoist the pid list out of the per-node work. *)
  let nprocs = Array.length (snd (system ())) in
  let pids = List.init nprocs Fun.id in
  let rec expand schedule depth used =
    if c.states >= config.max_states then begin
      c.truncated <- true;
      raise Budget
    end;
    c.states <- c.states + 1;
    (* [schedule] is kept reversed (most recent action first). *)
    let memory, sched, trace = exec_actions ~system (List.rev schedule) in
    (* Re-executing a prefix replays its accesses; the observer sees each
       one once per node that extends it.  Consumers dedup. *)
    (match observe with
    | None -> ()
    | Some f ->
      for i = 0 to Trace.length trace - 1 do
        let e = Trace.get trace i in
        match e.Event.body with
        | Event.Access (r, k) -> f ~pid:e.Event.pid ~reg:r ~kind:k
        | Event.Crash | Event.Recover | Event.Region_change _ -> ()
      done);
    (* Process errors (assertion failures inside algorithms, the critical
       section witness, model violations) are violations in themselves. *)
    List.iter
      (fun pid ->
        match Scheduler.status sched pid with
        | Scheduler.Errored e ->
          raise
            (Found
               ( List.rev schedule,
                 {
                   Cfc_core.Spec.at = Trace.length trace;
                   pids = [ pid ];
                   what = "process error: " ^ Printexc.to_string e;
                 } ))
        | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed -> ())
      pids;
    (match check trace ~nprocs with
    | Some v -> raise (Found (List.rev schedule, v))
    | None -> ());
    let raw = State_key.of_system memory sched trace in
    let ckey, rewritten =
      match sym with
      | None -> (raw, false)
      | Some s ->
        let k, pi = Symmetry.canon s raw in
        (k, pi <> None)
    in
    let key = (ckey, used) in
    if Tbl.mem seen key then
      if rewritten then c.pruned_sym <- c.pruned_sym + 1
      else c.pruned_dedup <- c.pruned_dedup + 1
    else begin
      Tbl.add seen key ();
      let candidates =
        candidates_of sched ~config ~fresh_only ~pairs ~nprocs ~used
      in
      if candidates = [] then begin
        if not (Scheduler.all_quiescent sched) then c.truncated <- true;
        c.runs <- c.runs + 1
      end
      else if depth >= config.max_depth then begin
        c.truncated <- true;
        c.runs <- c.runs + 1
      end
      else
        List.iter
          (fun a -> expand (a :: schedule) (depth + 1) (bump_used used a))
          candidates
    end
  in
  let finish () = c.seen_pop <- Tbl.length seen in
  match expand [] 0 0 with
  | () ->
    finish ();
    Ok (stats_of c)
  | exception Budget ->
    finish ();
    Ok (stats_of c)
  | exception Found (schedule, violation) ->
    finish ();
    Violation { schedule; violation; stats = stats_of c }

(* ------------------------------------------------------------------ *)
(* The incremental engine: one live (memory, scheduler, trace) per search
   branch, extended by a single action per node and rolled back by
   checkpoint/undo between siblings.  Checkpoints are O(nprocs +
   registers) scalars — continuations are one-shot and cannot be cloned,
   so a process whose continuation was consumed by an abandoned sibling
   is rebuilt lazily by the scheduler from its recorded observations
   (exactly the [obs] lists maintained here, which double as the state
   key's per-process component). *)

(* Partial-order reduction state, present only when an independence hint
   is active.  [p_canon]/[p_meta] are the canonical observation lists the
   memo key uses instead of the raw ones: completed busy-wait iterations
   are dropped (see [drop_reentry]), so states differing only in how long
   a process spun before the loop let it through share a key.  This leans
   on the same memoryless-spin reading of busy-wait loops the analyzer's
   cycle cut already assumes — a spin iteration that kept the process in
   the loop left no trace in its local state (DESIGN.md §2 records the
   assumption).  The raw [i_obs] lists are untouched — they feed the
   scheduler's rebuild oracle and must remain the exact history. *)
type por_state = {
  p_tr : Independence.tracker;
  p_canon : State_key.cell list array;  (* per pid, newest first *)
  p_meta : (int * bool) list array;
      (* parallel to [p_canon]: (hash after this cell, cycle-member) *)
}

type inc_state = {
  i_config : config;
  i_fresh_only : bool;
  i_sym : Symmetry.t option;
  i_pairs : int;
  i_branch : int;  (* root-branch index in parallel mode, else 0 *)
  i_memory : Memory.t;
  i_sched : Scheduler.t;
  i_trace : Trace.t;
  i_obs : State_key.cell list array;  (* per pid, newest first *)
  i_obs_hash : int array;  (* per pid, rolling State_key.cell_hash fold *)
  i_nprocs : int;
  i_inc : Inc.run;
  i_seen : Seen.t;
  i_c : counters;
  i_por : por_state option;
  i_observe :
    (pid:int -> reg:Register.t -> kind:Event.access_kind -> unit) option;
}

type checkpoint = {
  ck_sched : Scheduler.snap;
  ck_regvals : int array;
  ck_tracelen : int;
  ck_obs : State_key.cell list array;
  ck_obs_hash : int array;
  ck_inc : unit -> unit;
  ck_por :
    (State_key.cell list array * (int * bool) list array * Independence.snap)
    option;
}

let make_inc_state ~config ~sym ~pairs ~branch ~system ~inc ~ind ~seen ~c
    ~observe =
  let memory, procs = system () in
  let trace = Trace.create () in
  let obs = Array.make (Array.length procs) [] in
  let oracle pid = List.rev_map (fun cl -> cl.State_key.kind) obs.(pid) in
  let sched = Scheduler.create ~oracle ~memory ~trace procs in
  let nprocs = Scheduler.nprocs sched in
  let por =
    match ind with
    | None -> None
    | Some t ->
      Some
        { p_tr = Independence.track t ~nprocs;
          p_canon = Array.make nprocs [];
          p_meta = Array.make nprocs [] }
  in
  { i_config = config; i_fresh_only = fresh_only_of ~sym ~ind; i_sym = sym;
    i_pairs = pairs; i_branch = branch; i_memory = memory; i_sched = sched;
    i_trace = trace; i_obs = obs;
    i_obs_hash = Array.make (Array.length procs) 0; i_nprocs = nprocs;
    i_inc = Inc.start inc ~nprocs; i_seen = seen; i_c = c; i_por = por;
    i_observe = observe }

(* ---- spin-history canonicalization (lists newest first) ---- *)

(* A busy-wait access re-entering its cycle at a (register, op class) the
   trailing run of cycle cells already contains means the run back to that
   cell was one completed spin iteration: the guard held, the process went
   around, and (memoryless-spin, DESIGN.md §2) its local state is as if
   the iteration never happened.  Drop the iteration from the canonical
   observations before appending the new cell.  Values are deliberately
   ignored — whatever the wasted iteration read only fed the guard, and
   any effect a spin-loop write had on shared state is carried by the
   register values in the key.  The scan stops at the first non-cycle
   cell, so loop exits and later re-entries (harness rounds) never
   collapse across. *)
let drop_reentry obs meta ~reg ~cls =
  let rec scan obs meta =
    match (obs, meta) with
    | cl :: obs', (_, true) :: meta' ->
      if
        cl.State_key.reg = reg
        && String.equal (Independence.class_of_kind cl.State_key.kind) cls
      then Some (obs', meta')
      else scan obs' meta'
    | _, _ -> None
  in
  scan obs meta

(* Apply one action to the live system.  Returns the shared access the
   step performed, if any (a step performs at most one; pause steps and
   crash/recover perform none). *)
let apply st a =
  let before = Trace.length st.i_trace in
  (match a with
  | Step pid -> ignore (Scheduler.step st.i_sched pid)
  | Crash pid -> Scheduler.crash st.i_sched pid
  | Recover pid -> Scheduler.recover st.i_sched pid);
  if not (Scheduler.replay_safe st.i_sched) then raise Fallback;
  (* Fold the new events into the per-process observation lists (a crash
     wipes local state, so the observation history restarts). *)
  let access = ref None in
  for i = before to Trace.length st.i_trace - 1 do
    let e = Trace.get st.i_trace i in
    match e.Event.body with
    | Event.Access (r, k) ->
      let pid = e.Event.pid in
      let cl = State_key.cell r k in
      st.i_obs.(pid) <- cl :: st.i_obs.(pid);
      st.i_obs_hash.(pid) <- State_key.cell_hash st.i_obs_hash.(pid) cl;
      access := Some (pid, r, k);
      (match st.i_observe with
      | Some f -> f ~pid ~reg:r ~kind:k
      | None -> ());
      (match st.i_por with
      | None -> ()
      | Some por ->
        Independence.observe por.p_tr ~pid ~reg:r.Register.id ~kind:k;
        let is_cyc =
          Independence.cycle_member por.p_tr ~pid ~reg:r.Register.id ~kind:k
        in
        let obs0, meta0 =
          if is_cyc then
            match
              drop_reentry por.p_canon.(pid) por.p_meta.(pid)
                ~reg:r.Register.id ~cls:(Independence.class_of_kind k)
            with
            | Some om -> om
            | None -> (por.p_canon.(pid), por.p_meta.(pid))
          else (por.p_canon.(pid), por.p_meta.(pid))
        in
        let h = match meta0 with [] -> 0 | (h, _) :: _ -> h in
        por.p_canon.(pid) <- cl :: obs0;
        por.p_meta.(pid) <- (State_key.cell_hash h cl, is_cyc) :: meta0)
    | Event.Crash ->
      st.i_obs.(e.Event.pid) <- [];
      st.i_obs_hash.(e.Event.pid) <- 0
    | Event.Region_change _ | Event.Recover -> ()
  done;
  !access

let save st ~regvals ~tracelen =
  { ck_sched = Scheduler.snapshot st.i_sched;
    ck_regvals = regvals;
    ck_tracelen = tracelen;
    ck_obs = Array.copy st.i_obs;
    ck_obs_hash = Array.copy st.i_obs_hash;
    ck_inc = st.i_inc.Inc.save ();
    ck_por =
      (match st.i_por with
      | None -> None
      | Some por ->
        Some
          ( Array.copy por.p_canon,
            Array.copy por.p_meta,
            Independence.snapshot por.p_tr )) }

let rollback st ck =
  Scheduler.restore st.i_sched ck.ck_sched;
  Memory.restore_values st.i_memory ck.ck_regvals;
  Trace.truncate st.i_trace ck.ck_tracelen;
  Array.blit ck.ck_obs 0 st.i_obs 0 st.i_nprocs;
  Array.blit ck.ck_obs_hash 0 st.i_obs_hash 0 st.i_nprocs;
  ck.ck_inc ();
  match (st.i_por, ck.ck_por) with
  | Some por, Some (canon, meta, snap) ->
    Array.blit canon 0 por.p_canon 0 st.i_nprocs;
    Array.blit meta 0 por.p_meta 0 st.i_nprocs;
    Independence.restore por.p_tr snap
  | _, _ -> ()

let state_key_of st ~regvals ~used =
  let obs, obs_hash =
    match st.i_por with
    | Some por ->
      ( (fun pid -> por.p_canon.(pid)),
        fun pid ->
          match por.p_meta.(pid) with [] -> 0 | (h, _) :: _ -> h )
    | None -> ((fun pid -> st.i_obs.(pid)), fun pid -> st.i_obs_hash.(pid))
  in
  ( { State_key.k_regvals = regvals;
      k_procs =
        Array.init st.i_nprocs (fun pid ->
            { State_key.k_status =
                State_key.status_tag (Scheduler.status st.i_sched pid);
              k_region = Scheduler.region st.i_sched pid;
              k_obs_hash = obs_hash pid;
              k_obs = obs pid }) },
    used )

(* ---- symmetry canonicalisation of memo keys ---- *)

(* A memo key plus how canonicalisation transformed it: [kk_pi] is the
   witness permutation (raw pid [p] sits at canonical slot
   [kk_pi.(p)]), needed to carry the POR payload — sleep sets and step
   vectors are per-pid and must live in the same pid space as the key
   they are stored under. *)
type keyed = {
  kk_key : State_key.t * int;
  kk_rewritten : bool;
  kk_pi : int array option;
}

let canon_key_of st ~regvals ~used =
  let raw = state_key_of st ~regvals ~used in
  match st.i_sym with
  | None -> { kk_key = raw; kk_rewritten = false; kk_pi = None }
  | Some s ->
    let k, u = raw in
    let k', pi = Symmetry.canon s k in
    { kk_key = (k', u); kk_rewritten = pi <> None; kk_pi = pi }

let perm_sleep pi sleep =
  match pi with
  | None -> sleep
  | Some pi ->
    if sleep = 0 then 0
    else begin
      let s = ref 0 in
      Array.iteri
        (fun p slot -> if sleep land (1 lsl p) <> 0 then s := !s lor (1 lsl slot))
        pi;
      !s
    end

let perm_steps pi steps =
  match pi with
  | None -> steps
  | Some pi ->
    let out = Array.make (Array.length steps) 0 in
    Array.iteri (fun p slot -> out.(slot) <- steps.(p)) pi;
    out

(* ---- reduction helpers ---- *)

let steps_vector st = Array.init st.i_nprocs (Scheduler.steps_taken st.i_sched)

(* Which sleeping processes stay asleep across the executed access: those
   whose next step provably commutes with it.  A pause step (no access)
   commutes with everything, and so does the value-aware footprint of an
   access that changed nothing ([before] is the register-value array at
   the parent node).  An unknown next step wakes the sleeper. *)
let filter_sleep st por sleep access ~before =
  if sleep = 0 then 0
  else
    match access with
    | None -> sleep
    | Some (_, r, k) ->
      let changed = Memory.values st.i_memory <> before in
      let afp = Independence.fp_of_access ~changed ~reg:r.Register.id k in
      let s = ref 0 in
      for t = 0 to st.i_nprocs - 1 do
        if sleep land (1 lsl t) <> 0 then
          match Independence.next_fp por.p_tr t with
          | Some nfp when not (Independence.conflict nfp afp) ->
            s := !s lor (1 lsl t)
          | Some _ | None -> ()
      done;
      !s

(* The static side of the singleton-ample check: a process degraded to
   unknown (its accesses stopped matching its graph) is never picked as
   a singleton, preserving "statically unanalyzable ⇒ full expansion". *)
let singleton_prefilter por a =
  match a with
  | Crash _ | Recover _ -> false
  | Step p -> Independence.known por.p_tr p

(* Did the events appended since [from] include a region change?  The
   property checkers consume exactly region changes (protocol regions,
   decisions, halting) — so this is the dynamic visibility of the step
   just applied, checked on the real transition rather than approximated
   statically. *)
let step_visible st ~from =
  let n = Trace.length st.i_trace in
  let rec scan i =
    i < n
    &&
    match (Trace.get st.i_trace i).Event.body with
    | Event.Region_change _ -> true
    | Event.Access _ | Event.Crash | Event.Recover -> scan (i + 1)
  in
  scan from

exception Sub_conflict
exception Sub_budget

(* The dynamic side of the singleton-ample check: a bounded exhaustive
   exploration of the others-only subsystem (every process but [p],
   crash-free — reduction is gated to pairs = 0) from the current state,
   which is the CHILD state s·a of the step under probe.  [Step p] may
   stand alone for the whole ample set only if no access any other
   process can reach without p's help conflicts with a's footprint
   [afp]: an others-only path from the parent s that behaves differently
   than from s·a must first read a register a wrote, and that very read
   occurs (at the same position) along the probe, tripping the conflict
   check.  Paths that need p to move again are covered by the child's
   own subtree.

   When a itself was visible ([a_visible]), the property monitors — all
   of which consume only the trace's region-change events, and detect a
   violation from the interleaved region sequence — additionally depend
   on the order of a against other visible steps, so the probe also
   fails on any reachable others-only region change.  (Two invisible
   steps, or one visible and one invisible, are monitor-independent: the
   region sequence the checkers consume is the same either way.)

   The probe keeps raw (uncanonicalised) keys: it answers a question
   about this concrete state, and the few hundred nodes it touches are
   not worth the canonicalisation work.

   The probe restores the entry state on normal return and may leave it
   dirty on a negative answer — callers roll back to their own
   checkpoint before trying anything else. *)
let others_commute st ~p ~afp ~a_visible ~used =
  let config = st.i_config in
  let seen : unit Tbl.t = Tbl.create 256 in
  let budget = ref 4096 in
  let rec go () =
    decr budget;
    if !budget <= 0 then raise Sub_budget;
    let regvals = Memory.values st.i_memory in
    let key = state_key_of st ~regvals ~used in
    if not (Tbl.mem seen key) then begin
      Tbl.add seen key ();
      let cands =
        candidates_of st.i_sched ~config ~fresh_only:false ~pairs:0
          ~nprocs:st.i_nprocs ~used
        |> List.filter (function
             | Step q -> q <> p
             | Crash _ | Recover _ -> false)
      in
      match cands with
      | [] -> ()
      | cands ->
        let tracelen = Trace.length st.i_trace in
        let ck = save st ~regvals ~tracelen in
        List.iter
          (fun a ->
            (match apply st a with
            | Some (_, r, k) ->
              let changed = Memory.values st.i_memory <> regvals in
              if
                Independence.conflict
                  (Independence.fp_of_access ~changed ~reg:r.Register.id k)
                  afp
              then raise Sub_conflict
            | None -> ());
            if a_visible && step_visible st ~from:tracelen then
              raise Sub_conflict;
            go ();
            rollback st ck)
          cands
    end
  in
  match go () with
  | () -> true
  | exception Sub_conflict -> false
  | exception Sub_budget -> false

(* [from] is the trace length at the parent node: the incremental check
   consumes only the events the arriving action appended.  [sleep] is the
   sleep set as a pid bitmask (always 0 without reduction); [pre] carries
   the child's canonical key and register values when the parent's
   singleton probe already computed them. *)
let rec expand_inc st schedule depth used ~from ~sleep ~pre =
  let config = st.i_config and c = st.i_c in
  if c.states >= config.max_states then begin
    cutoff c;
    raise Budget
  end;
  c.states <- c.states + 1;
  let trace_len = Trace.length st.i_trace in
  for pid = 0 to st.i_nprocs - 1 do
    match Scheduler.status st.i_sched pid with
    | Scheduler.Errored e ->
      raise
        (Found
           ( List.rev schedule,
             {
               Cfc_core.Spec.at = trace_len;
               pids = [ pid ];
               what = "process error: " ^ Printexc.to_string e;
             } ))
    | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed -> ()
  done;
  (match st.i_inc.Inc.feed st.i_trace ~from with
  | Some v -> raise (Found (List.rev schedule, v))
  | None -> ());
  let kk, regvals =
    match pre with
    | Some (kk, regvals) -> (kk, regvals)
    | None ->
      let regvals = Memory.values st.i_memory in
      (canon_key_of st ~regvals ~used, regvals)
  in
  let por = Option.is_some st.i_por in
  (* The POR payload travels with the key: both live in canonical pid
     space, mapped by the witness permutation. *)
  let sleep_c = perm_sleep kk.kk_pi sleep in
  let steps_c = if por then perm_steps kk.kk_pi (steps_vector st) else [||] in
  let proceed =
    Seen.enter st.i_seen ~c ~por ~branch:st.i_branch
      ~rewritten:kk.kk_rewritten ~sleep:sleep_c ~steps:steps_c kk.kk_key
  in
  match proceed with
  | None -> ()
  | Some tok ->
    (* Stack tracking is only consulted (and only safe to mutate — the
       POR-off local path shares [Seen.dummy] across states) under
       reduction. *)
    let tracked = por in
    if tracked then Seen.open_incr tok;
    let cut0 = c.cutoffs in
    Fun.protect
      ~finally:(fun () -> if tracked then Seen.open_decr tok)
      (fun () ->
        let candidates =
          candidates_of st.i_sched ~config ~fresh_only:st.i_fresh_only
            ~pairs:st.i_pairs ~nprocs:st.i_nprocs ~used
        in
        match st.i_por with
        | Some por ->
          expand_por st por schedule depth used ~trace_len ~regvals ~sleep
            candidates
        | None -> (
          match candidates with
          | [] ->
            if not (Scheduler.all_quiescent st.i_sched) then cutoff c;
            c.runs <- c.runs + 1
          | _ when depth >= config.max_depth ->
            cutoff c;
            c.runs <- c.runs + 1
          | [ a ] ->
            (* A chain: no sibling will ever need this state back, so no
               checkpoint is taken. *)
            ignore (apply st a);
            expand_inc st (a :: schedule) (depth + 1) (bump_used used a)
              ~from:trace_len ~sleep:0 ~pre:None
          | candidates ->
            (* Checkpoint once; restore between siblings only — the last
               child leaves the state dirty, and the nearest branching
               ancestor's (absolute) restore repairs it. *)
            let ck = save st ~regvals ~tracelen:trace_len in
            List.iteri
              (fun i a ->
                if i > 0 then rollback st ck;
                ignore (apply st a);
                expand_inc st (a :: schedule) (depth + 1) (bump_used used a)
                  ~from:trace_len ~sleep:0 ~pre:None)
              candidates));
    (* Completed without raising and without hitting any bound below:
       other branches may now prune on this state. *)
    if c.cutoffs = cut0 then Seen.mark_done tok

(* The reduced node expansion.  Sleeping processes' steps are covered by
   commuted schedules under an earlier sibling, so they are dropped up
   front.  Among the rest the node tries a singleton ample set — one
   process whose applied step changes no region (dynamic invisibility),
   does not land on an already-covered state (the proviso: reduced
   cycles cannot starve the other processes), and whose footprint no
   other process can reach a conflicting access for on its own
   ([others_commute]).  If no such process exists the node expands
   fully, accumulating prior siblings into each child's sleep set. *)
and expand_por st por schedule depth used ~trace_len ~regvals ~sleep candidates =
  let config = st.i_config and c = st.i_c in
  let live, slept =
    List.partition
      (function
        | Step p -> sleep land (1 lsl p) = 0
        | Crash _ | Recover _ -> true (* reduction is gated to pairs = 0 *))
      candidates
  in
  c.pruned_por <- c.pruned_por + List.length slept;
  match live with
  | [] ->
    if candidates = [] then begin
      if not (Scheduler.all_quiescent st.i_sched) then cutoff c;
      c.runs <- c.runs + 1
    end
    (* otherwise every enabled step is asleep: each is explored, after
       commuting, under an earlier sibling of some ancestor *)
  | _ when depth >= config.max_depth ->
    cutoff c;
    c.runs <- c.runs + 1
  | [ a ] ->
    (* a chain, as in the unreduced engine: no checkpoint *)
    let access = apply st a in
    expand_inc st (a :: schedule) (depth + 1) (bump_used used a)
      ~from:trace_len
      ~sleep:(filter_sleep st por sleep access ~before:regvals)
      ~pre:None
  | live ->
    let nlive = List.length live in
    let ck = save st ~regvals ~tracelen:trace_len in
    let dirty = ref false in
    let chosen = ref None in
    let rec pick = function
      | [] -> ()
      | a :: rest ->
        if not (singleton_prefilter por a) then pick rest
        else begin
          if !dirty then rollback st ck;
          dirty := true;
          let access = apply st a in
          let child_regvals = Memory.values st.i_memory in
          let child_used = bump_used used a in
          let child_kk = canon_key_of st ~regvals:child_regvals ~used:child_used in
          let child_sleep = filter_sleep st por sleep access ~before:regvals in
          (* the cycle proviso: never step a singleton onto a state still
             being expanded on the DFS stack — the other processes' steps
             would be deferred around the cycle forever.  A child already
             fully explored is fine: its (completed) subtree carried the
             deferred steps.  The canonical key is the one the stack
             tracking is recorded under. *)
          let child_open = Seen.is_open st.i_seen child_kk.kk_key in
          let ok =
            (not child_open)
            &&
            match (a, access) with
            | Step p, Some (_, r, k) ->
              others_commute st ~p
                ~afp:
                  (Independence.fp_of_access
                     ~changed:(child_regvals <> regvals)
                     ~reg:r.Register.id k)
                ~a_visible:(step_visible st ~from:trace_len)
                ~used:child_used
            | _, None -> false (* a pause child shares the parent's key *)
            | (Crash _ | Recover _), _ -> false
          in
          if ok then chosen := Some (a, child_kk, child_regvals, child_sleep)
          else pick rest
        end
    in
    pick live;
    (match !chosen with
    | Some (a, child_kk, child_regvals, child_sleep) ->
      (* the state already carries [a] applied (the probe's work) *)
      c.pruned_por <- c.pruned_por + (nlive - 1);
      expand_inc st (a :: schedule) (depth + 1) (bump_used used a)
        ~from:trace_len ~sleep:child_sleep
        ~pre:(Some (child_kk, child_regvals))
    | None ->
      let sleep_now = ref sleep in
      List.iteri
        (fun i a ->
          if i > 0 || !dirty then rollback st ck;
          let access = apply st a in
          expand_inc st (a :: schedule) (depth + 1) (bump_used used a)
            ~from:trace_len
            ~sleep:(filter_sleep st por !sleep_now access ~before:regvals)
            ~pre:None;
          match a with
          | Step p -> sleep_now := !sleep_now lor (1 lsl p)
          | Crash _ | Recover _ -> ())
        live)

let run_inc_seq ~config ?seen_hint ?observe ~sym ~compact ~pairs ~system
    ~inc ~ind () =
  let c = new_counters () in
  let cap = tbl_size ?hint:seen_hint config in
  let seen = Seen.create ~compact ~shared:false cap in
  c.seen_cap <- cap;
  let st =
    make_inc_state ~config ~sym ~pairs ~branch:0 ~system ~inc ~ind ~seen ~c
      ~observe
  in
  let finish () = c.seen_pop <- Seen.population seen in
  match expand_inc st [] 0 0 ~from:0 ~sleep:0 ~pre:None with
  | () ->
    finish ();
    Ok (stats_of c)
  | exception Budget ->
    finish ();
    Ok (stats_of c)
  | exception Found (schedule, violation) ->
    finish ();
    Violation { schedule; violation; stats = stats_of c }

(* ------------------------------------------------------------------ *)
(* Domain-parallel exploration: the root node's candidate actions are
   independent subtrees; workers pull them from a shared index and run a
   full incremental engine on each (own system, own counters —
   continuations and registers cannot cross domains).  Results are
   merged by branch index, so the verdict, counterexample schedule and
   stats are deterministic and independent of the number of domains: the
   reported violation is the one in the earliest branch in canonical
   candidate order, i.e. the same branch the sequential DFS enters first.

   By default the branches pool their prunes through one shared sharded
   seen set ([share_seen]); cross-branch pruning is gated on subtree
   completion (see {!Seen}), which keeps verdict and schedule — though
   not the stats — deterministic.  [share_seen:false] falls back to
   fully private per-branch tables (each branch then re-discovers the
   states the others reached first — the A/B baseline the bench uses to
   demonstrate the pooling).  Each branch keeps the full [max_states]
   budget either way.

   Under reduction the root expands fully, and branch [i] starts with the
   prior branches' pids asleep (filtered through its own first action),
   mirroring the sequential sleep propagation. *)

type branch_result =
  | B_ok of stats
  | B_viol of action list * Cfc_core.Spec.violation * stats
  | B_fallback

let run_branch ~config ?seen_hint ?observe ~sym ~compact ~shared ~branch
    ~pairs ~system ~inc ~ind ~sleep0 a =
  let c = new_counters () in
  let seen =
    match shared with
    | Some seen -> seen
    | None ->
      let cap = tbl_size ?hint:seen_hint config in
      c.seen_cap <- cap;
      Seen.create ~compact ~shared:false cap
  in
  let st =
    make_inc_state ~config ~sym ~pairs ~branch ~system ~inc ~ind ~seen ~c
      ~observe
  in
  let regvals0 = Memory.values st.i_memory in
  (* With a private table, seed the memo with the initial state's key so
     a schedule that loops back to it is pruned exactly as in the
     sequential search (the shared table is seeded once by the
     coordinator instead). *)
  (match shared with
  | Some _ -> ()
  | None ->
    let kk = canon_key_of st ~regvals:regvals0 ~used:0 in
    Seen.seed seen ~nprocs:st.i_nprocs ~sleep:sleep0 kk.kk_key);
  let finish () =
    if shared = None then c.seen_pop <- Seen.population seen
  in
  match
    let access = apply st a in
    let sleep =
      match st.i_por with
      | None -> 0
      | Some por -> filter_sleep st por sleep0 access ~before:regvals0
    in
    expand_inc st [ a ] 1 (bump_used 0 a) ~from:0 ~sleep ~pre:None
  with
  | () ->
    finish ();
    B_ok (stats_of c)
  | exception Budget ->
    finish ();
    B_ok (stats_of c)
  | exception Found (schedule, violation) ->
    finish ();
    B_viol (schedule, violation, stats_of c)
  | exception Fallback -> B_fallback

let run_inc_par ~config ?seen_hint ?observe ~sym ~compact ~share_seen ~pairs
    ~system ~inc ~ind ~domains () =
  (* The root node is processed by the coordinator (it is the common
     prefix of every branch); its counter contributions mirror the
     sequential engine's. *)
  let c = new_counters () in
  let st =
    make_inc_state ~config ~sym ~pairs ~branch:0 ~system ~inc ~ind
      ~seen:(Seen.create ~compact ~shared:false 64) ~c ~observe
  in
  c.states <- 1;
  (* No process has run at the root: no errors, nothing to feed. *)
  let candidates =
    candidates_of st.i_sched ~config ~fresh_only:st.i_fresh_only ~pairs
      ~nprocs:st.i_nprocs ~used:0
  in
  match candidates with
  | [] ->
    if not (Scheduler.all_quiescent st.i_sched) then c.truncated <- true;
    c.runs <- 1;
    Ok (stats_of c)
  | _ when 0 >= config.max_depth ->
    c.truncated <- true;
    c.runs <- 1;
    Ok (stats_of c)
  | candidates ->
    let jobs = Array.of_list candidates in
    let njobs = Array.length jobs in
    let shared_cap = tbl_size ?hint:seen_hint config in
    let shared =
      if share_seen then begin
        let seen = Seen.create ~compact ~shared:true shared_cap in
        (* seed the root state (fully handled here) so every branch may
           prune schedules looping back to it *)
        let regvals0 = Memory.values st.i_memory in
        let kk = canon_key_of st ~regvals:regvals0 ~used:0 in
        Seen.seed seen ~nprocs:st.i_nprocs ~sleep:0 kk.kk_key;
        Some seen
      end
      else None
    in
    (* sleep seed per branch: the pids of the branches before it *)
    let sleeps = Array.make njobs 0 in
    (match ind with
    | None -> ()
    | Some _ ->
      let acc = ref 0 in
      Array.iteri
        (fun i a ->
          sleeps.(i) <- !acc;
          match a with
          | Step p -> acc := !acc lor (1 lsl p)
          | Crash _ | Recover _ -> ())
        jobs);
    let results = Array.make njobs (B_ok (stats_of (new_counters ()))) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < njobs then begin
          results.(i) <-
            run_branch ~config ?seen_hint ?observe ~sym ~compact ~shared
              ~branch:i ~pairs ~system ~inc ~ind ~sleep0:sleeps.(i) jobs.(i);
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init
        (max 0 (min domains njobs - 1))
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    if Array.exists (function B_fallback -> true | B_ok _ | B_viol _ -> false)
         results
    then raise Fallback;
    (* First violating branch in candidate order wins; its stats merge
       with the branches the sequential DFS would have completed before
       reaching it. *)
    let first_viol = ref None in
    for i = njobs - 1 downto 0 do
      match results.(i) with
      | B_viol (schedule, violation, _) -> first_viol := Some (i, schedule, violation)
      | B_ok _ | B_fallback -> ()
    done;
    let last = match !first_viol with Some (i, _, _) -> i | None -> njobs - 1 in
    for i = 0 to last do
      let s =
        match results.(i) with
        | B_ok s -> s
        | B_viol (_, _, s) -> s
        | B_fallback -> assert false
      in
      c.runs <- c.runs + s.runs;
      c.states <- c.states + s.states;
      c.pruned_dedup <- c.pruned_dedup + s.pruned_dedup;
      c.pruned_sym <- c.pruned_sym + s.pruned_sym;
      c.pruned_por <- c.pruned_por + s.pruned_por;
      c.fp_collisions <- c.fp_collisions + s.fp_collisions;
      c.seen_pop <- c.seen_pop + s.seen_pop;
      c.seen_cap <- c.seen_cap + s.seen_cap;
      c.truncated <- c.truncated || s.truncated
    done;
    (match shared with
    | Some seen ->
      c.seen_pop <- c.seen_pop + Seen.population seen;
      c.seen_cap <- c.seen_cap + shared_cap
    | None -> ());
    (match !first_viol with
    | Some (_, schedule, violation) ->
      Violation { schedule; violation; stats = stats_of c }
    | None -> Ok (stats_of c))

(* ------------------------------------------------------------------ *)

(* The engine, over action schedules.  [pairs] is the crash–recovery
   budget: 0 disables fault injection entirely (the plain interleaving
   exploration), [pairs > 0] additionally offers, at every decision
   point, crashing any started runnable process (while crashes remain in
   the budget) and recovering any crashed one. *)
let run_gen ?(config = default_config) ?symmetry ?(engine = Incremental)
    ?(domains = 1) ?(share_seen = true) ?(compact = false)
    ?(replay_safe = true) ?independence ?seen_hint ?inc ?observe_access
    ~pairs ~system ~check () =
  let inc = match inc with Some i -> i | None -> Inc.of_whole check in
  (* The partial-order reduction applies only where its soundness
     argument does: the plain interleaving exploration (no crash
     branches — a crash wipes local state asynchronously and commutes
     with nothing the model sees) and only for systems with at least one
     usable model.  The symmetry canonicalisation composes with it — the
     memo payload travels into canonical pid space — and stays on under
     fault injection (a crash is as pid-equivariant as a step). *)
  let ind =
    match independence with
    | Some t when pairs = 0 && Independence.usable t -> Some t
    | Some _ | None -> None
  in
  let sym = symmetry in
  let observe = observe_access in
  match engine with
  | Replay ->
    run_replay ~config ?seen_hint ?observe ~sym ~pairs ~system ~check ()
  | Incremental when not replay_safe ->
    (* A static analysis (or a previous run) already knows some process
       swallows mid-access discontinuation; the incremental engine would
       only rediscover that and raise [Fallback] mid-search.  Skip the
       wasted work and start on the replay engine directly. *)
    run_replay ~config ?seen_hint ?observe ~sym ~pairs ~system ~check ()
  | Incremental -> (
    try
      if domains <= 1 then
        run_inc_seq ~config ?seen_hint ?observe ~sym ~compact ~pairs ~system
          ~inc ~ind ()
      else
        run_inc_par ~config ?seen_hint ?observe ~sym ~compact ~share_seen
          ~pairs ~system ~inc ~ind ~domains ()
    with Fallback ->
      (* Some process caught a register-op exception and continued; its
         local state is invisible to observation replay.  Start over on
         the (always sound) replay engine. *)
      run_replay ~config ?seen_hint ?observe ~sym ~pairs ~system ~check
        ())

let run ?config ?symmetry ?engine ?domains ?share_seen ?compact ?replay_safe
    ?independence ?seen_hint ?inc ?observe_access ~system ~check () =
  match
    run_gen ?config ?symmetry ?engine ?domains ?share_seen ?compact
      ?replay_safe ?independence ?seen_hint ?inc ?observe_access ~pairs:0
      ~system ~check ()
  with
  | Ok stats -> Ok stats
  | Violation { schedule; violation; stats } ->
    let pids =
      List.map
        (function
          | Step pid -> pid
          | Crash _ | Recover _ -> assert false (* pairs = 0 *))
        schedule
    in
    Violation { schedule = pids; violation; stats }

let run_faults ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?independence ?seen_hint ?inc ?observe_access ?(pairs = 2)
    ~system ~check () =
  run_gen ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?independence ?seen_hint ?inc ?observe_access ~pairs
    ~system ~check ()
