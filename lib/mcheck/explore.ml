open Cfc_runtime

type config = { max_depth : int; max_steps_per_proc : int; max_states : int }

let default_config =
  { max_depth = 60; max_steps_per_proc = 25; max_states = 500_000 }

type stats = { runs : int; states : int; pruned : int; truncated : bool }

type result =
  | Ok of stats
  | Violation of {
      schedule : int list;
      violation : Cfc_core.Spec.violation;
      stats : stats;
    }

(* Execute one schedule from scratch. *)
let exec ~system schedule =
  let memory, procs = system () in
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  List.iter (fun pid -> ignore (Scheduler.step sched pid)) schedule;
  (memory, sched, trace)

let replay ~system ~schedule =
  let memory, procs = system () in
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  List.iter (fun pid -> ignore (Scheduler.step sched pid)) schedule;
  let total_steps =
    List.init (Scheduler.nprocs sched) (Scheduler.steps_taken sched)
    |> List.fold_left ( + ) 0
  in
  {
    Runner.memory;
    trace;
    scheduler = sched;
    completed = Scheduler.all_quiescent sched;
    total_steps;
  }

(* The state fingerprint: register values, plus per process its status,
   region and full observation history (which, for a deterministic
   process, determines its local state).  Structural equality — no hash
   collisions can cause unsound pruning. *)
type proc_key = {
  k_status : int;
  k_region : Event.region;
  k_obs : (int * int * int) list;  (* (register id, kind, value) reversed *)
}

let status_tag = function
  | Scheduler.Runnable -> 0
  | Scheduler.Halted -> 1
  | Scheduler.Crashed -> 2
  | Scheduler.Errored _ -> 3

let state_key memory sched trace =
  let nprocs = Scheduler.nprocs sched in
  let obs = Array.make nprocs [] in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let cell =
          match k with
          | Event.A_read v -> (r.Register.id, 0, v)
          | Event.A_write v -> (r.Register.id, 1, v)
          | Event.A_field (index, width, v) ->
            (r.Register.id, 10_000 + (index * 64) + width, v)
          | Event.A_xchg (v, old) -> (r.Register.id, 20_000 + v, old)
          | Event.A_cas (expected, v, success) ->
            ( r.Register.id,
              30_000 + (expected * 2) + Bool.to_int success,
              v )
          | Event.A_bit (op, ret) ->
            ( r.Register.id,
              2 + Cfc_base.Ops.to_index op,
              match ret with None -> -1 | Some v -> v )
        in
        obs.(e.Event.pid) <- cell :: obs.(e.Event.pid)
      | Event.Region_change _ | Event.Crash -> ())
    trace;
  let regvals =
    List.map (fun r -> r.Register.value) (Memory.registers memory)
  in
  let procs =
    Array.init nprocs (fun pid ->
        {
          k_status = status_tag (Scheduler.status sched pid);
          k_region = Scheduler.region sched pid;
          k_obs = obs.(pid);
        })
  in
  (regvals, procs)

exception Found of int list * Cfc_core.Spec.violation
exception Budget

let run ?(config = default_config) ?(symmetric = false) ~system ~check () =
  let seen = Hashtbl.create 4096 in
  let runs = ref 0 and states = ref 0 and pruned = ref 0 in
  let truncated = ref false in
  let rec expand schedule depth =
    if !states >= config.max_states then begin
      truncated := true;
      raise Budget
    end;
    incr states;
    (* [schedule] is kept reversed (most recent pid first). *)
    let memory, sched, trace = exec ~system (List.rev schedule) in
    let nprocs = Scheduler.nprocs sched in
    (* Process errors (assertion failures inside algorithms, the critical
       section witness, model violations) are violations in themselves. *)
    List.iter
      (fun pid ->
        match Scheduler.status sched pid with
        | Scheduler.Errored e ->
          raise
            (Found
               ( List.rev schedule,
                 {
                   Cfc_core.Spec.at = Trace.length trace;
                   pids = [ pid ];
                   what = "process error: " ^ Printexc.to_string e;
                 } ))
        | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed -> ())
      (List.init nprocs Fun.id);
    (match check trace ~nprocs with
    | Some v -> raise (Found (List.rev schedule, v))
    | None -> ());
    let key = state_key memory sched trace in
    if Hashtbl.mem seen key then incr pruned
    else begin
      Hashtbl.add seen key ();
      if Scheduler.all_quiescent sched then incr runs
      else if depth >= config.max_depth then begin
        truncated := true;
        incr runs
      end
      else begin
        let candidates =
          List.filter
            (fun pid ->
              Scheduler.steps_taken sched pid < config.max_steps_per_proc)
            (Scheduler.runnable sched)
        in
        (* Symmetry reduction: when all processes run identical code,
           schedules that differ only in which not-yet-started process
           goes first are isomorphic under a pid permutation, so only the
           lowest-numbered fresh process needs exploring. *)
        let candidates =
          if not symmetric then candidates
          else begin
            let started, fresh =
              List.partition (Scheduler.started sched) candidates
            in
            match fresh with [] -> started | f :: _ -> started @ [ f ]
          end
        in
        if candidates = [] then begin
          truncated := true;
          incr runs
        end
        else
          List.iter
            (fun pid -> expand (pid :: schedule) (depth + 1))
            candidates
      end
    end
  in
  let stats () =
    { runs = !runs; states = !states; pruned = !pruned;
      truncated = !truncated }
  in
  match expand [] 0 with
  | () -> Ok (stats ())
  | exception Budget -> Ok (stats ())
  | exception Found (schedule, violation) ->
    Violation { schedule; violation; stats = stats () }
