open Cfc_runtime

type config = { max_depth : int; max_steps_per_proc : int; max_states : int }

let default_config =
  { max_depth = 60; max_steps_per_proc = 25; max_states = 500_000 }

type stats = { runs : int; states : int; pruned : int; truncated : bool }

type action = Step of int | Crash of int | Recover of int

let pp_action ppf = function
  | Step pid -> Format.fprintf ppf "step p%d" pid
  | Crash pid -> Format.fprintf ppf "crash p%d" pid
  | Recover pid -> Format.fprintf ppf "recover p%d" pid

type 'schedule gen_result =
  | Ok of stats
  | Violation of {
      schedule : 'schedule;
      violation : Cfc_core.Spec.violation;
      stats : stats;
    }

type result = int list gen_result
type fault_result = action list gen_result

(* Execute one action schedule from scratch. *)
let exec_actions ~system actions =
  let memory, procs = system () in
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  List.iter
    (function
      | Step pid -> ignore (Scheduler.step sched pid)
      | Crash pid -> Scheduler.crash sched pid
      | Recover pid -> Scheduler.recover sched pid)
    actions;
  (memory, sched, trace)

let outcome_of (memory, sched, trace) =
  let total_steps =
    List.init (Scheduler.nprocs sched) (Scheduler.steps_taken sched)
    |> List.fold_left ( + ) 0
  in
  let stopped =
    if Scheduler.all_quiescent sched then Runner.Quiescent
    else Runner.Picker_done
  in
  {
    Runner.memory;
    trace;
    scheduler = sched;
    completed = (stopped = Runner.Quiescent);
    stopped;
    total_steps;
  }

let replay_actions ~system ~schedule =
  outcome_of (exec_actions ~system schedule)

let replay ~system ~schedule =
  replay_actions ~system ~schedule:(List.map (fun pid -> Step pid) schedule)

(* The state fingerprint: register values, plus per process its status,
   region and full observation history (which, for a deterministic
   process, determines its local state).  Structural equality — no hash
   collisions can cause unsound pruning.

   Crash–recovery soundness: a crash wipes local state, so the
   observation history restarts from scratch — pre-crash observations
   cannot influence the restarted incarnation, and keeping them would
   (unsoundly for pruning in the other direction: merely conservatively)
   distinguish states with identical futures.  The number of crashes
   already injected joins the key separately (see [run_gen]): two
   otherwise-identical states with different remaining fault budgets have
   different futures. *)
type proc_key = {
  k_status : int;
  k_region : Event.region;
  k_obs : (int * int * int) list;  (* (register id, kind, value) reversed *)
}

let status_tag = function
  | Scheduler.Runnable -> 0
  | Scheduler.Halted -> 1
  | Scheduler.Crashed -> 2
  | Scheduler.Errored _ -> 3

let state_key memory sched trace =
  let nprocs = Scheduler.nprocs sched in
  let obs = Array.make nprocs [] in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let cell =
          match k with
          | Event.A_read v -> (r.Register.id, 0, v)
          | Event.A_write v -> (r.Register.id, 1, v)
          | Event.A_field (index, width, v) ->
            (r.Register.id, 10_000 + (index * 64) + width, v)
          | Event.A_xchg (v, old) -> (r.Register.id, 20_000 + v, old)
          | Event.A_cas (expected, v, success) ->
            ( r.Register.id,
              30_000 + (expected * 2) + Bool.to_int success,
              v )
          | Event.A_bit (op, ret) ->
            ( r.Register.id,
              2 + Cfc_base.Ops.to_index op,
              match ret with None -> -1 | Some v -> v )
        in
        obs.(e.Event.pid) <- cell :: obs.(e.Event.pid)
      | Event.Crash -> obs.(e.Event.pid) <- []
      | Event.Region_change _ | Event.Recover -> ())
    trace;
  let regvals =
    List.map (fun r -> r.Register.value) (Memory.registers memory)
  in
  let procs =
    Array.init nprocs (fun pid ->
        {
          k_status = status_tag (Scheduler.status sched pid);
          k_region = Scheduler.region sched pid;
          k_obs = obs.(pid);
        })
  in
  (regvals, procs)

exception Found of action list * Cfc_core.Spec.violation
exception Budget

(* The engine, over action schedules.  [pairs] is the crash–recovery
   budget: 0 disables fault injection entirely (the plain interleaving
   exploration), [pairs > 0] additionally offers, at every decision
   point, crashing any started runnable process (while crashes remain in
   the budget) and recovering any crashed one. *)
let run_gen ?(config = default_config) ?(symmetric = false) ~pairs ~system
    ~check () =
  let seen = Hashtbl.create 4096 in
  let runs = ref 0 and states = ref 0 and pruned = ref 0 in
  let truncated = ref false in
  let rec expand schedule depth used =
    if !states >= config.max_states then begin
      truncated := true;
      raise Budget
    end;
    incr states;
    (* [schedule] is kept reversed (most recent action first). *)
    let memory, sched, trace = exec_actions ~system (List.rev schedule) in
    let nprocs = Scheduler.nprocs sched in
    (* Process errors (assertion failures inside algorithms, the critical
       section witness, model violations) are violations in themselves. *)
    List.iter
      (fun pid ->
        match Scheduler.status sched pid with
        | Scheduler.Errored e ->
          raise
            (Found
               ( List.rev schedule,
                 {
                   Cfc_core.Spec.at = Trace.length trace;
                   pids = [ pid ];
                   what = "process error: " ^ Printexc.to_string e;
                 } ))
        | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed -> ())
      (List.init nprocs Fun.id);
    (match check trace ~nprocs with
    | Some v -> raise (Found (List.rev schedule, v))
    | None -> ());
    let key = (state_key memory sched trace, used) in
    if Hashtbl.mem seen key then incr pruned
    else begin
      Hashtbl.add seen key ();
      let pids = List.init nprocs Fun.id in
      let step_candidates =
        List.filter
          (fun pid ->
            Scheduler.steps_taken sched pid < config.max_steps_per_proc)
          (Scheduler.runnable sched)
      in
      (* Symmetry reduction: when all processes run identical code,
         schedules that differ only in which not-yet-started process
         goes first are isomorphic under a pid permutation, so only the
         lowest-numbered fresh process needs exploring. *)
      let step_candidates =
        if not symmetric then step_candidates
        else begin
          let started, fresh =
            List.partition (Scheduler.started sched) step_candidates
          in
          match fresh with [] -> started | f :: _ -> started @ [ f ]
        end
      in
      let fault_candidates =
        if pairs = 0 then []
        else begin
          let crashable =
            (* Crashing a process that has not yet taken a step reaches,
               after its recovery, a state indistinguishable from never
               crashing it — skip those branches outright. *)
            if used < pairs then
              List.filter
                (fun pid ->
                  Scheduler.status sched pid = Scheduler.Runnable
                  && Scheduler.started sched pid)
                pids
            else []
          in
          let recoverable =
            List.filter
              (fun pid -> Scheduler.status sched pid = Scheduler.Crashed)
              pids
          in
          List.map (fun pid -> Crash pid) crashable
          @ List.map (fun pid -> Recover pid) recoverable
        end
      in
      let candidates =
        List.map (fun pid -> Step pid) step_candidates @ fault_candidates
      in
      if candidates = [] then begin
        if not (Scheduler.all_quiescent sched) then truncated := true;
        incr runs
      end
      else if depth >= config.max_depth then begin
        truncated := true;
        incr runs
      end
      else
        List.iter
          (fun a ->
            let used = match a with Crash _ -> used + 1 | _ -> used in
            expand (a :: schedule) (depth + 1) used)
          candidates
    end
  in
  let stats () =
    { runs = !runs; states = !states; pruned = !pruned;
      truncated = !truncated }
  in
  match expand [] 0 0 with
  | () -> Ok (stats ())
  | exception Budget -> Ok (stats ())
  | exception Found (schedule, violation) ->
    Violation { schedule; violation; stats = stats () }

let run ?config ?symmetric ~system ~check () =
  match run_gen ?config ?symmetric ~pairs:0 ~system ~check () with
  | Ok stats -> Ok stats
  | Violation { schedule; violation; stats } ->
    let pids =
      List.map
        (function
          | Step pid -> pid
          | Crash _ | Recover _ -> assert false (* pairs = 0 *))
        schedule
    in
    Violation { schedule = pids; violation; stats }

let run_faults ?config ?symmetric ?(pairs = 2) ~system ~check () =
  run_gen ?config ?symmetric ~pairs ~system ~check ()
