open Cfc_runtime

(* Pid-symmetry reduction: a canonicalisation pass on state keys.  Two
   flavors share one interface:

   - [identical]: the processes run literally the same closure (the
     naming harness), so permuting pids permutes [k_procs] and touches
     nothing else — the canonical form just sorts the per-process
     records.

   - derived ([of_report] / [mutex]): the processes run pid-specialised
     code (mutex variants index flag arrays by [me] and write their pid
     into the CS witness), so a pid permutation π must be accompanied by
     a register bijection ρ and per-register value maps.  Both are
     derived from the access-graph analyzer: ρ by positionally matching
     the exact completed-path witnesses ([vr_completed]) of variant p
     against variant π(p), the value maps by aligning the
     written-value sets ([n_wvals]) — values only p writes to r must
     correspond to values only π(p) writes to ρ(r).

   A permutation for which no consistent (ρ, value maps) exists is
   simply not in the group — tournament trees at n=4 get the order-8
   tree-automorphism group, not S₄.  A permutation whose value map is
   partial stays in the group but raises [Inapplicable] on states
   holding unmapped values; such states keep their raw key, which is
   always sound (fewer merges, never a wrong one).

   Soundness is anchored the way this repo anchors every reduction
   (see independence.mli): a qcheck congruence property (permuting the
   pids of a live system yields the identical canonical key) plus
   registry-wide verdict-equivalence sweeps against the unreduced
   engine. *)

exception Inapplicable

type vmap = {
  vm_dom : int array;  (* sorted *)
  vm_img : int array;
  vm_amb : int option;
      (* a value that is both the register's initial value and a written
         value whose alignment image differs from the target's initial
         value: the key cannot tell the two provenances apart, so it maps
         cleanly only where provenance is manifest (a write observation);
         anywhere else — register contents, read results — it raises
         [Inapplicable] *)
}

type regmap = {
  rm_rho : int;  (* target register id *)
  rm_vmap : vmap option;  (* [None] = identity *)
}

type remap = {
  r_pi : int array;  (* pid [p] moves to canonical slot [r_pi.(p)] *)
  r_regs : regmap array;  (* indexed by source register id *)
}

type t = {
  s_nprocs : int;
  s_pure : bool;  (* identical processes: canon = sort k_procs *)
  s_perms : remap array;  (* non-identity members (empty when pure) *)
}

let nprocs t = t.s_nprocs
let is_pure t = t.s_pure

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun r -> x :: r) (permutations (List.filter (( <> ) x) l)))
      l

let pid_perms n =
  permutations (List.init n Fun.id)
  |> List.filter_map (fun l ->
         let pi = Array.of_list l in
         if Array.for_all2 ( = ) pi (Array.init n Fun.id) then None
         else Some pi)

let perms t =
  if t.s_pure then pid_perms t.s_nprocs
  else Array.to_list (Array.map (fun rm -> rm.r_pi) t.s_perms)

let group_order t =
  if t.s_pure then (
    let f = ref 1 in
    for i = 2 to t.s_nprocs do
      f := !f * i
    done;
    !f)
  else Array.length t.s_perms + 1

let identical ~nprocs =
  { s_nprocs = nprocs; s_pure = true; s_perms = [||] }

(* ------------------------------------------------------------------ *)
(* Applying a remap to a key. *)

(* [apply_vmap] maps a value at a {e written} position (a write
   observation — provenance is manifestly "written", so the alignment
   applies even to an ambiguous value); [apply_vmap_obs] maps a value at
   an {e observed} position (register contents, read results), where an
   ambiguous value could be either the initial value or a written one
   and must not be mapped at all. *)
let apply_vmap vm v =
  match vm with
  | None -> v
  | Some { vm_dom; vm_img; _ } ->
    let lo = ref 0 and hi = ref (Array.length vm_dom - 1) in
    let res = ref None in
    while !res = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let d = vm_dom.(mid) in
      if d = v then res := Some vm_img.(mid)
      else if d < v then lo := mid + 1
      else hi := mid - 1
    done;
    (match !res with Some v' -> v' | None -> raise Inapplicable)

let apply_vmap_obs vm v =
  (match vm with
  | Some { vm_amb = Some a; _ } when a = v -> raise Inapplicable
  | _ -> ());
  apply_vmap vm v

let remap_cell rm (c : State_key.cell) =
  let m = rm.r_regs.(c.reg) in
  let identity_v = m.rm_vmap = None in
  let kind =
    match c.kind with
    | Event.A_read v -> Event.A_read (apply_vmap_obs m.rm_vmap v)
    | Event.A_write v -> Event.A_write (apply_vmap m.rm_vmap v)
    | Event.A_xchg (w, o) ->
      Event.A_xchg (apply_vmap m.rm_vmap w, apply_vmap_obs m.rm_vmap o)
    | Event.A_cas (e, d, ok) ->
      Event.A_cas (apply_vmap_obs m.rm_vmap e, apply_vmap m.rm_vmap d, ok)
    | Event.A_field _ ->
      (* sub-word writes name bit offsets inside the register, and packed
         layouts make the offset pid-dependent (process p writes the
         p-th field) — the analyzer's path classes flatten the offset
         away, so no correspondence can be derived and the cell never
         carries across a pid renaming *)
      raise Inapplicable
    | Event.A_bit _ as k ->
      (* bit results are not register contents; safe under a register
         move, unsafe under a value remap *)
      if identity_v then k else raise Inapplicable
  in
  { State_key.reg = m.rm_rho; kind }

let remap_proc rm (p : State_key.proc_key) =
  let obs = List.map (remap_cell rm) p.State_key.k_obs in
  let obs_hash = List.fold_left State_key.cell_hash 0 (List.rev obs) in
  { p with State_key.k_obs = obs; k_obs_hash = obs_hash }

let remap_key_rm rm (key : State_key.t) : State_key.t =
  let n = Array.length key.State_key.k_procs in
  let procs = Array.make n key.State_key.k_procs.(0) in
  for p = 0 to n - 1 do
    procs.(rm.r_pi.(p)) <- remap_proc rm key.State_key.k_procs.(p)
  done;
  let nregs = Array.length key.State_key.k_regvals in
  let regvals = Array.make nregs 0 in
  (* [k_regvals] comes from [Memory.values], which lists registers in
     reverse allocation order: key index [i] holds register id
     [nregs - 1 - i].  The register maps speak in register ids. *)
  for i = 0 to nregs - 1 do
    let m = rm.r_regs.(nregs - 1 - i) in
    regvals.(nregs - 1 - m.rm_rho) <-
      apply_vmap_obs m.rm_vmap key.State_key.k_regvals.(i)
  done;
  { State_key.k_regvals = regvals; k_procs = procs }

let permute_procs pi (key : State_key.t) =
  let n = Array.length key.State_key.k_procs in
  let procs = Array.make n key.State_key.k_procs.(0) in
  for p = 0 to n - 1 do
    procs.(pi.(p)) <- key.State_key.k_procs.(p)
  done;
  { key with State_key.k_procs = procs }

let remap_key t pi key =
  if t.s_pure then permute_procs pi key
  else
    match Array.find_opt (fun rm -> rm.r_pi = pi) t.s_perms with
    | Some rm -> remap_key_rm rm key
    | None -> invalid_arg "Symmetry.remap_key: not a group member"

let canon_pure (key : State_key.t) =
  let n = Array.length key.State_key.k_procs in
  let idx = List.init n Fun.id in
  let sorted =
    List.sort
      (fun a b ->
        let c =
          compare key.State_key.k_procs.(a) key.State_key.k_procs.(b)
        in
        if c <> 0 then c else compare a b)
      idx
  in
  let pi = Array.make n 0 in
  List.iteri (fun slot p -> pi.(p) <- slot) sorted;
  if Array.for_all2 ( = ) pi (Array.of_list idx) then (key, None)
  else
    let procs = Array.make n key.State_key.k_procs.(0) in
    Array.iteri (fun p slot -> procs.(slot) <- key.State_key.k_procs.(p)) pi;
    ({ key with State_key.k_procs = procs }, Some pi)

let canon t (key : State_key.t) =
  if t.s_pure then canon_pure key
  else begin
    let best = ref key and best_pi = ref None in
    Array.iter
      (fun rm ->
        match remap_key_rm rm key with
        | k2 ->
          if compare k2 !best < 0 then begin
            best := k2;
            best_pi := Some rm.r_pi
          end
        | exception Inapplicable -> ())
      t.s_perms;
    (!best, !best_pi)
  end

(* ------------------------------------------------------------------ *)
(* Deriving the group from an analyzer report. *)

module Iset = Set.Make (Int)

type reg_info = {
  ri_width : int;
  ri_w : Iset.t array;  (* per variant: values it writes to this reg *)
  ri_exact : bool;  (* every contributing node's value set was exact *)
  ri_multi : bool array;
      (* per variant: some single static access writes >= 2 distinct
         values — the value written varies with the path taken *)
  ri_obs : bool array;  (* per variant: observes (returns a value read
                           from) this register *)
}

let collect_reg_info nregs (variants : Cfc_analysis.Analyze.variant_report list)
    =
  let n = List.length variants in
  let info =
    Array.init nregs (fun _ ->
        { ri_width = 0;
          ri_w = Array.make n Iset.empty;
          ri_exact = true;
          ri_multi = Array.make n false;
          ri_obs = Array.make n false })
  in
  let ok = ref true in
  List.iteri
    (fun p vr ->
      Hashtbl.iter
        (fun _ (node : Cfc_analysis.Analyze.node) ->
          let r = node.Cfc_analysis.Analyze.n_reg in
          if r < 0 || r >= nregs then ok := false
          else begin
            let ri = info.(r) in
            let multi = Array.copy ri.ri_multi in
            if
              node.n_write
              && List.length (List.sort_uniq compare node.n_wvals) >= 2
            then multi.(p) <- true;
            let obs = Array.copy ri.ri_obs in
            if node.n_observes then obs.(p) <- true;
            info.(r) <-
              { ri_width = max ri.ri_width node.n_width;
                ri_w =
                  (let w = Array.copy ri.ri_w in
                   w.(p) <-
                     List.fold_left
                       (fun s v -> Iset.add v s)
                       w.(p) node.n_wvals;
                   w);
                ri_exact = ri.ri_exact && node.n_wvals_exact;
                ri_multi = multi;
                ri_obs = obs }
          end)
        vr.Cfc_analysis.Analyze.vr_graph.Cfc_analysis.Analyze.g_nodes)
    variants;
  if !ok then Some info else None

(* Positional path matching: the register correspondence forced by
   requiring variant [p]'s completed solo paths to become variant [q]'s
   under the renaming.  Paths are sorted by (shape, registers); shapes
   must agree pairwise, and the zipped register sequences must form a
   functional, injective, width-preserving map. *)
let sigma widths (paths_p : (int * string * int) list list)
    (paths_q : (int * string * int) list list) =
  if List.length paths_p <> List.length paths_q then None
  else begin
    let shape path = List.map (fun (_, cls, occ) -> (cls, occ)) path in
    let sort_paths ps =
      List.sort
        (fun a b ->
          let c = compare (shape a) (shape b) in
          if c <> 0 then c else compare a b)
        ps
    in
    let ps = sort_paths paths_p and qs = sort_paths paths_q in
    let map = Hashtbl.create 16 and img = Hashtbl.create 16 in
    let ok = ref true in
    List.iter2
      (fun pa qa ->
        if !ok then
          if shape pa <> shape qa then ok := false
          else
            List.iter2
              (fun (r1, _, _) (r2, _, _) ->
                if !ok then
                  match Hashtbl.find_opt map r1 with
                  | Some r2' -> if r2' <> r2 then ok := false
                  | None -> (
                    match Hashtbl.find_opt img r2 with
                    | Some _ -> ok := false
                    | None ->
                      if widths r1 <> widths r2 then ok := false
                      else begin
                        Hashtbl.add map r1 r2;
                        Hashtbl.add img r2 ()
                      end))
              pa qa)
      ps qs;
    if !ok then Some map else None
  end

(* The value map for source register [r] → target register [t] under pid
   permutation [pi], from the written-value sets: identity when every
   variant's set carries over unchanged; otherwise align the
   exclusively-written values of p with those of π(p) (sorted), the
   common values with the common values, and route the initial value to
   the initial value when it is not already covered. *)
let derive_vmap ~init ~pi info r t =
  let n = Array.length pi in
  let src = info.(r) and tgt = info.(t) in
  let identity_ok = ref true in
  for p = 0 to n - 1 do
    if not (Iset.equal src.ri_w.(p) tgt.ri_w.(pi.(p))) then
      identity_ok := false
  done;
  if !identity_ok then
    if init.(r) = init.(t) then Some None (* total identity *)
    else None
  else if not (src.ri_exact && tgt.ri_exact) then None
  else begin
    (* Align values by writer set: a value written exactly by the
       variants in S must correspond to a target value written exactly
       by π(S).  (An earlier exclusive/common split aligned the shared
       values in sorted order, which is permutation-blind: the
       tournament's top-level side register — left subtree writes 0,
       right subtree writes 1, both values "common" at n=4 — needs 0↔1
       under a cross-subtree permutation, not the identity.) *)
    let writer_sets w =
      let tbl = Hashtbl.create 16 in
      Array.iteri
        (fun p s ->
          Iset.iter
            (fun v ->
              let ws =
                match Hashtbl.find_opt tbl v with Some l -> l | None -> []
              in
              Hashtbl.replace tbl v (p :: ws))
            s)
        w;
      tbl
    in
    let group tbl f =
      let g = Hashtbl.create 16 in
      Hashtbl.iter
        (fun v ws ->
          let key = List.sort compare (f ws) in
          let vs =
            match Hashtbl.find_opt g key with Some l -> l | None -> []
          in
          Hashtbl.replace g key (v :: vs))
        tbl;
      g
    in
    let gs =
      group (writer_sets src.ri_w) (List.map (fun p -> pi.(p)))
    and gt = group (writer_sets tgt.ri_w) Fun.id in
    let pairs = ref [] in
    let ok = ref (Hashtbl.length gs = Hashtbl.length gt) in
    if !ok then
      Hashtbl.iter
        (fun key vs ->
          match Hashtbl.find_opt gt key with
          | None -> ok := false
          | Some vt ->
            let vs = List.sort compare vs
            and vt = List.sort compare vt in
            if List.length vs <> List.length vt then ok := false
            else
              List.iter2 (fun a b -> pairs := (a, b) :: !pairs) vs vt)
        gs;
    if not !ok then None
    else begin
      begin
        (* functional + injective merge *)
        let dom = Hashtbl.create 16 and img = Hashtbl.create 16 in
        List.iter
          (fun (a, b) ->
            match Hashtbl.find_opt dom a with
            | Some b' -> if b' <> b then ok := false
            | None ->
              if Hashtbl.mem img b then ok := false
              else begin
                Hashtbl.add dom a b;
                Hashtbl.add img b ()
              end)
          !pairs;
        let amb = ref None in
        (match Hashtbl.find_opt dom init.(r) with
        | Some b when b = init.(t) -> ()
        | Some _ ->
          (* the initial value is also a written value whose alignment
             image is not the target's initial value: keys cannot tell
             the two provenances apart, so the value maps only where
             provenance is manifest (a write observation) and is
             ambiguous everywhere else *)
          amb := Some init.(r)
        | None ->
          if not (Hashtbl.mem img init.(t)) then begin
            Hashtbl.add dom init.(r) init.(t);
            Hashtbl.add img init.(t) ()
          end
          (* else: leave init unmapped — states holding it keep their
             raw key (Inapplicable at runtime), which is sound *));
        if not !ok then None
        else begin
          let items =
            Hashtbl.fold (fun a b acc -> (a, b) :: acc) dom []
            |> List.sort compare
          in
          let vm_dom = Array.of_list (List.map fst items)
          and vm_img = Array.of_list (List.map snd items) in
          Some (Some { vm_dom; vm_img; vm_amb = !amb })
        end
      end
    end
  end

let of_report ~init (report : Cfc_analysis.Analyze.report) =
  let variants = report.Cfc_analysis.Analyze.variants in
  let n = List.length variants in
  let nregs = Array.length init in
  if n < 2 || n > 6 then None
  else
    match collect_reg_info nregs variants with
    | None -> None
    | Some info ->
      let widths r = info.(r).ri_width in
      let paths =
        Array.of_list
          (List.map (fun vr -> vr.Cfc_analysis.Analyze.vr_completed) variants)
      in
      let node_tbl =
        Array.of_list
          (List.map
             (fun vr ->
               vr.Cfc_analysis.Analyze.vr_graph.Cfc_analysis.Analyze.g_nodes)
             variants)
      in
      let sigma_cache = Hashtbl.create 16 in
      let sigma_pq p q =
        match Hashtbl.find_opt sigma_cache (p, q) with
        | Some s -> s
        | None ->
          let s = sigma widths paths.(p) paths.(q) in
          Hashtbl.add sigma_cache (p, q) s;
          s
      in
      let build_perm pi =
        let rho = Array.make nregs (-1) in
        let ok = ref true in
        for p = 0 to n - 1 do
          if !ok then
            match sigma_pq p pi.(p) with
            | None -> ok := false
            | Some map ->
              Hashtbl.iter
                (fun r1 r2 ->
                  if rho.(r1) = -1 then rho.(r1) <- r2
                  else if rho.(r1) <> r2 then ok := false)
                map
        done;
        if not !ok then None
        else begin
          (* complete with identity; require a register bijection *)
          for r = 0 to nregs - 1 do
            if rho.(r) = -1 then rho.(r) <- r
          done;
          let seen = Array.make nregs false in
          Array.iter
            (fun t ->
              if t < 0 || t >= nregs || seen.(t) then ok := false
              else seen.(t) <- true)
            rho;
          if not !ok then None
          else begin
            (* A register where some variant's single static access
               writes >= 2 distinct values (the written value varies
               with the path taken) admits no trustworthy static value
               correspondence IF another variant can observe it (the
               value may be computed from an observation — Kessels'
               turn bits, where one side copies the other's bit and the
               other negates it).  Such a register poisons any
               permutation that moves it or moves a variant touching
               it; a permutation fixing both leaves the values' meaning
               untouched.  A multi-valued register nobody else observes
               (a crash-recovery hint re-armed on restart) is harmless:
               the per-position constants are pinned by the node
               correspondence check below. *)
            let variants_idx = Array.init n Fun.id in
            for r = 0 to nregs - 1 do
              let ri = info.(r) in
              let cross =
                Array.exists
                  (fun p ->
                    ri.ri_multi.(p)
                    && Array.exists
                         (fun q -> q <> p && ri.ri_obs.(q))
                         variants_idx)
                  variants_idx
              in
              if
                cross
                && (rho.(r) <> r
                   || Array.exists
                        (fun p ->
                          pi.(p) <> p && (ri.ri_multi.(p) || ri.ri_obs.(p)))
                        variants_idx)
              then ok := false
            done;
            let regs =
              Array.init nregs (fun r ->
                  match derive_vmap ~init ~pi info r rho.(r) with
                  | Some vm -> { rm_rho = rho.(r); rm_vmap = vm }
                  | None ->
                    ok := false;
                    { rm_rho = r; rm_vmap = None })
            in
            (* Matched-node write-value correspondence: variant [p]'s
               write at static position (r, cls, occ) must become
               variant [pi(p)]'s write at (rho r, cls, occ) with exactly
               the image value set — pinning the per-position constants
               the set-level alignment above cannot see. *)
            if !ok then
              for p = 0 to n - 1 do
                if !ok then
                  Hashtbl.iter
                    (fun _ (nd : Cfc_analysis.Analyze.node) ->
                      if !ok && nd.n_write && nd.n_wvals <> [] then
                        let tgt_key =
                          (rho.(nd.n_reg), nd.n_class, nd.n_occ)
                        in
                        match Hashtbl.find_opt node_tbl.(pi.(p)) tgt_key with
                        | None -> ok := false
                        | Some nd2 ->
                          if not nd2.n_write then ok := false
                          else begin
                            let vm = regs.(nd.n_reg).rm_vmap in
                            match
                              List.sort_uniq compare
                                (List.map (apply_vmap vm) nd.n_wvals)
                            with
                            | imgs ->
                              if imgs <> List.sort_uniq compare nd2.n_wvals
                              then ok := false
                            | exception Inapplicable -> ok := false
                          end)
                    node_tbl.(p)
              done;
            if !ok then Some { r_pi = pi; r_regs = regs } else None
          end
        end
      in
      let perms = List.filter_map build_perm (pid_perms n) in
      if perms = [] then None
      else
        Some
          { s_nprocs = n; s_pure = false; s_perms = Array.of_list perms }

let build ?config subject_opt ~init =
  match subject_opt with
  | None -> None
  | Some subject -> (
    match Cfc_analysis.Analyze.analyze ?config subject with
    | report ->
      (* [Memory.values] is in reverse allocation order; [of_report]
         wants register-id indexing *)
      let v = init () in
      let nregs = Array.length v in
      let by_id = Array.init nregs (fun r -> v.(nregs - 1 - r)) in
      of_report ~init:by_id report
    | exception _ -> None)

let mutex ?config alg (p : Cfc_mutex.Mutex_intf.params) =
  build ?config
    (Cfc_analysis.Subjects.of_mutex_checked ~l:p.Cfc_mutex.Mutex_intf.l
       ~n:p.Cfc_mutex.Mutex_intf.n alg)
    ~init:(fun () ->
      Memory.values (fst (Cfc_core.Mutex_harness.system alg p ())))

let detector ?config det (p : Cfc_mutex.Mutex_intf.params) =
  build ?config
    (Cfc_analysis.Subjects.of_detector ~n:p.Cfc_mutex.Mutex_intf.n det)
    ~init:(fun () ->
      Memory.values (fst (Cfc_core.Detect_harness.system det p ())))
