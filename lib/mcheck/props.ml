open Cfc_core

let check_mutex ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?independence ?seen_hint ?observe_access ?rounds alg p =
  Explore.run ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?independence ?seen_hint ?observe_access
    ~inc:Spec.Inc.mutual_exclusion
    ~system:(Mutex_harness.system ?rounds alg p)
    ~check:(fun trace ~nprocs -> Spec.mutual_exclusion trace ~nprocs)
    ()

let check_mutex_recoverable ?config ?symmetry ?engine ?domains ?share_seen
    ?compact ?replay_safe ?independence ?seen_hint ?pairs ?rounds alg p =
  Explore.run_faults ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?independence ?seen_hint ?pairs
    ~inc:Spec.Inc.mutual_exclusion_recoverable
    ~system:(Mutex_harness.system ?rounds alg p)
    ~check:(fun trace ~nprocs ->
      Spec.mutual_exclusion_recoverable trace ~nprocs)
    ()

let check_detector ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?independence ?seen_hint det p =
  let check trace ~nprocs = Spec.at_most_one_winner trace ~nprocs in
  Explore.run ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?independence ?seen_hint
    ~inc:(Spec.Inc.on_decisions check)
    ~system:(Detect_harness.system det p)
    ~check ()

let check_consensus ?config ?engine ?domains ?share_seen ?compact ?replay_safe
    ?seen_hint alg ~n ~inputs =
  let check trace ~nprocs =
    (* Build a pseudo-outcome view: the agreement/validity check only
       needs decisions from the trace. *)
    let decisions = Measures.decisions trace ~nprocs in
    let invalid =
      List.filter
        (fun (_, v) -> not (Array.exists (Int.equal v) inputs))
        decisions
    in
    match invalid with
    | (pid, v) :: _ ->
      Some
        { Spec.at = Cfc_runtime.Trace.length trace;
          pids = [ pid ];
          what = Printf.sprintf "decided %d, not an input" v }
    | [] -> (
      match decisions with
      | (_, a) :: rest -> (
        match List.filter (fun (_, v) -> v <> a) rest with
        | (pid, v) :: _ ->
          Some
            { Spec.at = Cfc_runtime.Trace.length trace;
              pids = [ pid ];
              what = Printf.sprintf "disagreement: %d vs %d" v a }
        | [] -> None)
      | [] -> None)
  in
  Explore.run ?config ?engine ?domains ?share_seen ?compact ?replay_safe
    ?seen_hint
    ~inc:(Spec.Inc.on_decisions check)
    ~system:(Consensus_harness.system alg ~n ~inputs)
    ~check ()

let check_renaming ?config ?engine ?domains ?share_seen ?compact ?replay_safe
    ?seen_hint alg ~n =
  let (module A : Cfc_renaming.Renaming_intf.ALG) = alg in
  let check trace ~nprocs =
    let decisions = Measures.decisions trace ~nprocs in
    let limit = A.name_space ~n ~k:n in
    let bad = List.filter (fun (_, v) -> v < 1 || v > limit) decisions in
    match bad with
    | (pid, v) :: _ ->
      Some
        { Spec.at = Cfc_runtime.Trace.length trace;
          pids = [ pid ];
          what = Printf.sprintf "name %d outside 1..%d" v limit }
    | [] -> (
      let sorted =
        List.sort (fun (_, a) (_, b) -> compare a b) decisions
      in
      let rec dup = function
        | (p1, v1) :: (p2, v2) :: _ when v1 = v2 ->
          Some
            { Spec.at = Cfc_runtime.Trace.length trace;
              pids = [ p1; p2 ];
              what = Printf.sprintf "duplicate name %d" v1 }
        | _ :: rest -> dup rest
        | [] -> None
      in
      dup sorted)
  in
  Explore.run ?config ?engine ?domains ?share_seen ?compact ?replay_safe
    ?seen_hint
    ~inc:(Spec.Inc.on_decisions check)
    ~system:(Renaming_harness.system alg ~n)
    ~check ()

let check_naming ?config ?engine ?domains ?share_seen ?compact ?replay_safe
    ?seen_hint ?(symmetric = true) alg ~n =
  let check trace ~nprocs = Spec.unique_names trace ~nprocs ~n in
  let symmetry = if symmetric then Some (Symmetry.identical ~nprocs:n) else None in
  Explore.run ?config ?symmetry ?engine ?domains ?share_seen ?compact
    ?replay_safe ?seen_hint
    ~inc:(Spec.Inc.on_decisions check)
    ~system:(Naming_harness.system alg ~n)
    ~check ()
