open Cfc_core

let check_mutex ?config ?rounds alg p =
  Explore.run ?config
    ~system:(Mutex_harness.system ?rounds alg p)
    ~check:(fun trace ~nprocs -> Spec.mutual_exclusion trace ~nprocs)
    ()

let check_mutex_recoverable ?config ?pairs ?rounds alg p =
  Explore.run_faults ?config ?pairs
    ~system:(Mutex_harness.system ?rounds alg p)
    ~check:(fun trace ~nprocs ->
      Spec.mutual_exclusion_recoverable trace ~nprocs)
    ()

let check_detector ?config det p =
  Explore.run ?config
    ~system:(Detect_harness.system det p)
    ~check:(fun trace ~nprocs -> Spec.at_most_one_winner trace ~nprocs)
    ()

let check_consensus ?config alg ~n ~inputs =
  Explore.run ?config
    ~system:(Consensus_harness.system alg ~n ~inputs)
    ~check:(fun trace ~nprocs ->
      (* Build a pseudo-outcome view: the agreement/validity check only
         needs decisions from the trace. *)
      let decisions = Measures.decisions trace ~nprocs in
      let invalid =
        List.filter
          (fun (_, v) -> not (Array.exists (Int.equal v) inputs))
          decisions
      in
      match invalid with
      | (pid, v) :: _ ->
        Some
          { Spec.at = Cfc_runtime.Trace.length trace;
            pids = [ pid ];
            what = Printf.sprintf "decided %d, not an input" v }
      | [] -> (
        match decisions with
        | (_, a) :: rest -> (
          match List.filter (fun (_, v) -> v <> a) rest with
          | (pid, v) :: _ ->
            Some
              { Spec.at = Cfc_runtime.Trace.length trace;
                pids = [ pid ];
                what = Printf.sprintf "disagreement: %d vs %d" v a }
          | [] -> None)
        | [] -> None))
    ()

let check_renaming ?config alg ~n =
  let (module A : Cfc_renaming.Renaming_intf.ALG) = alg in
  Explore.run ?config
    ~system:(Renaming_harness.system alg ~n)
    ~check:(fun trace ~nprocs ->
      let decisions = Measures.decisions trace ~nprocs in
      let limit = A.name_space ~n ~k:n in
      let bad = List.filter (fun (_, v) -> v < 1 || v > limit) decisions in
      match bad with
      | (pid, v) :: _ ->
        Some
          { Spec.at = Cfc_runtime.Trace.length trace;
            pids = [ pid ];
            what = Printf.sprintf "name %d outside 1..%d" v limit }
      | [] -> (
        let sorted =
          List.sort (fun (_, a) (_, b) -> compare a b) decisions
        in
        let rec dup = function
          | (p1, v1) :: (p2, v2) :: _ when v1 = v2 ->
            Some
              { Spec.at = Cfc_runtime.Trace.length trace;
                pids = [ p1; p2 ];
                what = Printf.sprintf "duplicate name %d" v1 }
          | _ :: rest -> dup rest
          | [] -> None
        in
        dup sorted))
    ()

let check_naming ?config ?(symmetric = true) alg ~n =
  Explore.run ?config ~symmetric
    ~system:(Naming_harness.system alg ~n)
    ~check:(fun trace ~nprocs -> Spec.unique_names trace ~nprocs ~n)
    ()
