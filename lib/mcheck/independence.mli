(** Static independence for partial-order reduction, derived from the
    access graphs of [Cfc_analysis.Analyze].

    Two enabled steps commute when their (register, operation-class)
    footprints are disjoint or overlap read-only; a CAS or write on a
    register the other step touches always conflicts (CAS counts as a
    write even though a failed one records as a read — whether it
    succeeds depends on the interleaving).  The per-process graphs come
    from a {e bounded} symbolic exploration, so they may under-cover a
    process's behavior under contention; the {!tracker} therefore
    follows every process's position in its own graph and permanently
    degrades it to "unknown" (every query answers [None]/conservative)
    the moment an observed access fails to match — from then on the
    exploration treats that process as conflicting with everything.
    End-to-end soundness is anchored the way the engine-equivalence
    suite anchors the incremental engine: reduced and unreduced
    verdicts are asserted identical over the whole registry and the
    broken fixtures, and static independence is qcheck-validated
    against dynamic commutation on live schedulers.

    Models describe the system the checker actually runs: the mutex
    constructor analyzes [Subjects.of_mutex_checked] (the harness arena
    {e with} the critical-section witness register), so footprint bit
    positions equal the checked system's register ids. *)

(** A step footprint: registers possibly read / possibly written, as
    bitmasks over register ids in allocation order. *)
type fp = { f_read : int; f_write : int }

val fp_empty : fp
val fp_union : fp -> fp -> fp

val conflict : fp -> fp -> bool
(** May the two steps fail to commute — some register is written by one
    and touched by the other? *)

val fp_of_access :
  ?changed:bool -> reg:int -> Cfc_runtime.Event.access_kind -> fp
(** Footprint of one executed access (CAS always a write).
    [~changed:false] records that the access is known to have left every
    register value as it was — a failed CAS, an exchange returning the
    value it stored, a re-write of the current value.  Such an access is
    dynamically read-only: reordering it across any step that does not
    change what it read yields the same memory and the same local
    outcome, so its footprint carries no write bit. *)

val class_of_kind : Cfc_runtime.Event.access_kind -> string
(** The dynamic access's [Sym_mem.op_class] — the node-matching key. *)

type t
(** Per-process static models for one checked system ([None] for a
    process whose graph was unusable: empty, no entry node, or register
    ids beyond bitmask range). *)

val usable : t -> bool
(** At least one process has a model (otherwise the hint is pure
    overhead). *)

val mutex :
  ?config:Cfc_analysis.Analyze.config ->
  Cfc_mutex.Registry.alg ->
  Cfc_mutex.Mutex_intf.params ->
  t option
(** Analyze the checked mutex arena (algorithm + witness register) and
    build the independence hint.  [None] when the algorithm does not
    support the parameters, the analysis fails, or no per-process model
    is usable — callers just omit the hint then. *)

val detector :
  ?config:Cfc_analysis.Analyze.config ->
  Cfc_mutex.Registry.detector ->
  Cfc_mutex.Mutex_intf.params ->
  t option

val of_report : Cfc_analysis.Analyze.report -> t
(** Models straight from an existing analysis report (the report must
    describe the very system being checked — same process bodies, same
    register allocation order). *)

(** {1 Dynamic position tracking} *)

type tracker
type snap

val track : t -> nprocs:int -> tracker
(** Fresh tracker with every process at its graph entry (processes
    beyond the model count are unknown from the start). *)

val observe :
  tracker -> pid:int -> reg:int -> kind:Cfc_runtime.Event.access_kind -> unit
(** Advance [pid] by one executed access.  An access matching no
    candidate node degrades the process to unknown, permanently. *)

val cycle_member :
  tracker -> pid:int -> reg:int -> kind:Cfc_runtime.Event.access_kind -> bool
(** Does the access's (register, op class) appear on a detected
    busy-wait cycle of [pid]'s graph?  Occurrence-independent (the
    dynamic search prunes spin unrolling long before the occurrence
    indices the symbolic engine flagged) — the gate for the spin-history
    canonicalization. *)

val next_fp : tracker -> int -> fp option
(** Union footprint of the process's possible next accesses; [None] if
    unknown. *)

val future_fp : tracker -> int -> fp option
(** Union footprint of everything the process may still access (next
    accesses and their graph closure); [None] if unknown. *)

val known : tracker -> int -> bool
(** Is the process still tracked (not degraded to unknown)?  The
    reduction refuses to build a singleton ample set around an
    unanalyzable process — it falls back to full expansion instead. *)

val next_may_end : tracker -> int -> bool
(** May the process's next access complete its body (and so decide /
    halt / change protocol region)?  [true] when unknown — used as a
    static pre-filter before the dynamic visibility probe. *)

val snapshot : tracker -> snap
val restore : tracker -> snap -> unit
