(** The model checker's state fingerprint: register values plus, per
    process, its status, protocol region and the observation history since
    its last (re)start (which determines the local state of a
    deterministic process).

    Keys are compared structurally, and each observation keeps the full
    {!Cfc_runtime.Event.access_kind} variant — an earlier encoding packed
    the kind into magic integer ranges ([20_000 + v] for exchanges,
    [30_000 + 2e + success] for compare-and-sets, …), which collide once
    register values reach the next range's base (e.g. an exchange writing
    10_000 aliased a compare-and-set); see the regression tests in
    [test_mcheck]. *)

open Cfc_runtime

type cell = { reg : int; kind : Event.access_kind }
(** One observed access: which register, and the full operation with its
    observed result. *)

type proc_key = {
  k_status : int;  (** {!status_tag} of the scheduler status *)
  k_region : Event.region;
  k_obs_hash : int;
      (** left fold of {!cell_hash} over [k_obs], oldest observation
          first, starting from [0] — maintained incrementally by the
          incremental engine so {!hash} never walks the lists *)
  k_obs : cell list;  (** observations since last (re)start, newest first *)
}

type t = { k_regvals : int array; k_procs : proc_key array }

val status_tag : Scheduler.status -> int
(** Small-int encoding of the status constructor ([Errored] exceptions
    carry closures, so statuses are not compared structurally). *)

val cell : Register.t -> Event.access_kind -> cell

val cell_hash : int -> cell -> int
(** One fold step of the rolling observation hash.  Both construction
    paths ({!of_system}'s trace scan and the incremental engine's
    per-event update) must fold in the same order — oldest first — so
    structurally equal keys carry equal [k_obs_hash] fields. *)

val of_system : Memory.t -> Scheduler.t -> Trace.t -> t
(** Build the key by a full trace scan (the replay engine's path; the
    incremental engine maintains the observation lists and their rolling
    hashes as events are appended instead). *)

val equal : t -> t -> bool
(** Structural — no hash collision can cause unsound pruning. *)

val hash : t -> int
(** O(nprocs + registers): combines the register values and each
    process's status, region and precomputed [k_obs_hash] without
    traversing the observation lists. *)

val fingerprint : t -> int -> int * int
(** [fingerprint t salt] digests the {e entire} key — every register
    value, every observation with its full operand list — through two
    independent 62-bit multiply–xorshift lanes seeded with [salt] (the
    compact seen-set passes the crash-budget component of its memo key
    there).  The pair gives ~124 bits of discrimination; a collision on
    both lanes at once is what it takes for the compact mode to wrongly
    merge two distinct states.  Deterministic across runs and domains. *)
