(** Pid-symmetry reduction as a canonicalisation pass on
    {!State_key.t}: the exploration memoises [canon key] instead of
    [key], so states that are pid-renamings of each other merge.
    Because the reduction acts on the {e key} rather than on the
    candidate schedule (the previous [symmetric] mode pruned
    candidates), it composes with the partial-order reduction: the memo
    payload (sleep set, step vector) is carried into canonical pid
    space by the witness permutation returned alongside the key.

    Two constructors:

    - {!identical} — the processes run literally the same closure (the
      naming harness): permuting pids permutes the per-process records
      and nothing else, so the canonical form sorts [k_procs].

    - {!of_report} / {!mutex} — pid-specialised code: each admissible
      pid permutation π carries a register bijection ρ (derived by
      positionally matching the analyzer's exact completed-path
      witnesses of variant [p] against variant [π(p)]) and per-register
      value maps (derived by aligning written-value sets: values only
      [p] writes must correspond to values only [π(p)] writes).
      Permutations with no consistent (ρ, value maps) are excluded —
      the tournament locks at n=4 get their order-8 tree-automorphism
      group, not S₄.  A state holding a value outside a partial value
      map keeps its raw key (sound: fewer merges, never a wrong one).

    Soundness is anchored empirically, like the partial-order
    reduction: a qcheck congruence property (permuting the pids of a
    live system yields the identical canonical key) and registry-wide
    verdict-equivalence sweeps against the unreduced engine — see
    [test_mcheck]. *)

type t

val identical : nprocs:int -> t
(** The full symmetric group on identical processes (naming): canon
    sorts the per-process records; registers are untouched (anonymous
    processes cannot index memory by pid). *)

val of_report : init:int array -> Cfc_analysis.Analyze.report -> t option
(** Derive the symmetry group from an analyzer report over the {e
    checked} subject (the arena the model checker explores, witness
    register included) and the initial register values of that arena,
    indexed by {e register id} (allocation order — note
    [Memory.values] lists them reversed; {!mutex} and {!detector} do
    the flip).
    [None] when no non-identity permutation admits a consistent
    register/value correspondence, or when [n] is outside [2..6]
    (the n! enumeration guard). *)

val mutex :
  ?config:Cfc_analysis.Analyze.config ->
  Cfc_mutex.Registry.alg ->
  Cfc_mutex.Mutex_intf.params ->
  t option
(** {!of_report} over {!Cfc_analysis.Subjects.of_mutex_checked} with the
    initial values of a freshly instantiated checked arena. *)

val detector :
  ?config:Cfc_analysis.Analyze.config ->
  Cfc_mutex.Registry.detector ->
  Cfc_mutex.Mutex_intf.params ->
  t option
(** {!of_report} over {!Cfc_analysis.Subjects.of_detector} with the
    initial values of a fresh detector arena. *)

val nprocs : t -> int

val is_pure : t -> bool
(** [true] for {!identical} — the exploration may additionally restrict
    fresh-process candidates to the lowest pid (the old candidate-level
    pruning), which is sound for anonymous identical processes and is
    still gated off under POR. *)

val group_order : t -> int
(** Number of admissible permutations including the identity. *)

val perms : t -> int array list
(** The non-identity pid permutations of the group — exposed for the
    congruence tests. *)

val canon : t -> State_key.t -> State_key.t * int array option
(** [canon t key] is the canonical representative of [key]'s orbit (the
    minimum, by structural comparison, over all applicable remapped
    images) together with the witness permutation π that produced it —
    [None] when the key is its own canonical form.  The witness maps
    raw pid [p] to canonical slot [π.(p)]; the exploration uses it to
    carry sleep sets and step vectors into canonical space. *)

val remap_key : t -> int array -> State_key.t -> State_key.t
(** Apply one group member (identified by its pid permutation, which
    must come from {!perms}) to a key — exposed for the congruence
    tests.  Raises [Inapplicable] on values outside a partial value
    map.  For a pure group this permutes [k_procs] only. *)

exception Inapplicable
