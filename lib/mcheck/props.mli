(** Ready-made model-checking problems: systems (from the core harnesses)
    paired with the safety property the paper requires of them.  Every
    checker supplies the incremental form of its property
    ({!Cfc_core.Spec.Inc}), so the default {!Explore.Incremental} engine
    pays O(new events) per node instead of a whole-trace rescan;
    [symmetry]/[engine]/[domains]/[share_seen]/[compact]/[replay_safe]/
    [independence]/[seen_hint] are forwarded to
    {!Explore.run}/{!Explore.run_faults} — pass [replay_safe:false] when
    static analysis says the algorithm swallows discontinuation, so the
    search starts on the replay engine instead of falling back,
    [independence] (from {!Independence.mutex} /
    {!Independence.detector}) to enable the partial-order reduction, and
    [symmetry] (from {!Symmetry.mutex}) to canonicalise memo keys under
    the admissible pid permutations; the two reductions compose.
    Consensus, renaming and naming take no [independence]: no
    ready-made constructor builds their hint yet (use {!Explore.run}
    with {!Independence.of_report} directly if needed). *)

val check_mutex :
  ?config:Explore.config -> ?symmetry:Symmetry.t -> ?engine:Explore.engine ->
  ?domains:int -> ?share_seen:bool -> ?compact:bool ->
  ?replay_safe:bool -> ?independence:Independence.t -> ?seen_hint:int ->
  ?observe_access:
    (pid:int ->
    reg:Cfc_runtime.Register.t ->
    kind:Cfc_runtime.Event.access_kind ->
    unit) ->
  ?rounds:int -> Cfc_mutex.Registry.alg ->
  Cfc_mutex.Mutex_intf.params -> Explore.result
(** Exhaustively (within bounds) verify mutual exclusion — including the
    critical-section witness register — for the given algorithm and
    parameters.  [observe_access] (see {!Explore.run}) is the hook the
    {!Conflicts} collector plugs into. *)

val check_mutex_recoverable :
  ?config:Explore.config -> ?symmetry:Symmetry.t -> ?engine:Explore.engine ->
  ?domains:int -> ?share_seen:bool -> ?compact:bool ->
  ?replay_safe:bool -> ?independence:Independence.t -> ?seen_hint:int ->
  ?pairs:int -> ?rounds:int ->
  Cfc_mutex.Registry.alg -> Cfc_mutex.Mutex_intf.params ->
  Explore.fault_result
(** Exhaustively (within bounds) verify mutual exclusion under the
    crash–recovery fault model: {!Explore.run_faults} enumerates up to
    [pairs] (default 2) crash–recovery pairs as scheduler choices and the
    property is {!Cfc_core.Spec.mutual_exclusion_recoverable} — a process
    that crashes inside its critical section still occupies it until its
    restarted run re-enters the protocol. *)

val check_detector :
  ?config:Explore.config -> ?symmetry:Symmetry.t -> ?engine:Explore.engine ->
  ?domains:int -> ?share_seen:bool -> ?compact:bool ->
  ?replay_safe:bool -> ?independence:Independence.t -> ?seen_hint:int ->
  Cfc_mutex.Registry.detector ->
  Cfc_mutex.Mutex_intf.params -> Explore.result
(** Verify the at-most-one-winner property of a contention detector. *)

val check_consensus :
  ?config:Explore.config -> ?engine:Explore.engine -> ?domains:int ->
  ?share_seen:bool -> ?compact:bool -> ?replay_safe:bool -> ?seen_hint:int ->
  Cfc_consensus.Registry.alg -> n:int ->
  inputs:int array -> Explore.result
(** Verify agreement + validity of a consensus algorithm for the given
    inputs. *)

val check_renaming :
  ?config:Explore.config -> ?engine:Explore.engine -> ?domains:int ->
  ?share_seen:bool -> ?compact:bool -> ?replay_safe:bool -> ?seen_hint:int ->
  Cfc_renaming.Registry.alg -> n:int ->
  Explore.result
(** Verify distinct in-range new names (full participation bound). *)

val check_naming :
  ?config:Explore.config -> ?engine:Explore.engine -> ?domains:int ->
  ?share_seen:bool -> ?compact:bool -> ?replay_safe:bool -> ?seen_hint:int ->
  ?symmetric:bool -> Cfc_naming.Registry.alg ->
  n:int -> Explore.result
(** Verify unique in-range names.  [symmetric] (default true — naming
    processes are identical by construction) builds the pure
    {!Symmetry.identical} group and enables the canonicalisation-based
    symmetry reduction. *)
