(* Dynamic conflict collection: a tiny accumulator meant to be plugged
   into [Explore]'s [observe_access] hook.  It records the set of
   distinct (pid, register, op class) access triples the exploration
   executed — the hook fires once per access per node, so the table
   dedups — and derives from it the cross-process conflict pairs the
   search actually exercised.  The static analyzer's race enumeration
   (Cfc_analysis.Product) must cover every one of these pairs; the
   test battery pins that inclusion. *)

type access = {
  pid : int;
  rid : int;
  reg : string;
  cls : string;
  is_write : bool;
}

type t = {
  seen : (int * int * string, access) Hashtbl.t;
      (* keyed (pid, register id, op class) *)
  lock : Mutex.t;  (* the observer may fire from worker domains *)
}

let create () = { seen = Hashtbl.create 64; lock = Mutex.create () }

let observer t ~pid ~reg ~kind =
  let cls = Independence.class_of_kind kind in
  let key = (pid, reg.Cfc_runtime.Register.id, cls) in
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.seen key) then
    Hashtbl.add t.seen key
      { pid;
        rid = reg.Cfc_runtime.Register.id;
        reg = reg.Cfc_runtime.Register.name;
        cls;
        is_write = Cfc_runtime.Event.is_write kind };
  Mutex.unlock t.lock

let accesses t =
  Hashtbl.fold (fun _ a acc -> a :: acc) t.seen []
  |> List.sort (fun a b -> compare (a.pid, a.rid, a.cls) (b.pid, b.rid, b.cls))

type pair = {
  rid : int;
  reg : string;
  pid_a : int;
  cls_a : string;
  pid_b : int;
  cls_b : string;
}

(* Cross-process pairs on the same register with at least one writing
   side: exactly the "conflict" of the independence relation, projected
   to op classes.  Unordered — each pair appears once, with
   [pid_a < pid_b]. *)
let pairs t =
  let acc = accesses t in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a.pid < b.pid && a.rid = b.rid && (a.is_write || b.is_write)
          then
            Some
              { rid = a.rid; reg = a.reg; pid_a = a.pid; cls_a = a.cls;
                pid_b = b.pid; cls_b = b.cls }
          else None)
        acc)
    acc
  |> List.sort_uniq compare
