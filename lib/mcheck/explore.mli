(** Bounded exhaustive exploration of interleavings by deterministic
    replay (dscheck-style: one-shot continuations cannot be cloned, so
    each schedule prefix re-executes the system from its initial state).

    The state space is pruned with a soundness-preserving memoization:
    two schedule prefixes that reach the same fingerprint — register
    values plus, per process, its protocol region and the value sequence
    it has observed since its last (re)start (which determines the local
    state of a deterministic process) — have identical futures, so only
    the first is expanded.  Spin loops therefore do not blow up the
    search: re-reading an unchanged register leaves every other component
    equal, and the observation list folds in the same value, so the
    states eventually repeat and are cut off by the
    [max_steps_per_proc] bound.

    {!run_faults} additionally enumerates bounded crash–recovery faults
    ({!action}) as scheduler choices: at every decision point any started
    runnable process may crash (losing its local state — its observation
    history resets) and any crashed process may recover, up to a budget
    of crash–recovery pairs.  The crash count joins the memo key, so
    pruning stays sound across fault branches.

    Guarantees: within the given bounds the search visits every reachable
    interleaving class, so a reported [Ok] means no violation exists up to
    the bounds (not absolute correctness); a reported violation comes with
    its schedule and replays deterministically. *)

type config = {
  max_depth : int;  (** total scheduler steps per explored run *)
  max_steps_per_proc : int;  (** per-process access budget *)
  max_states : int;  (** abort threshold on explored prefixes *)
}

val default_config : config

type stats = {
  runs : int;  (** maximal schedules explored *)
  states : int;  (** scheduler steps executed across all replays *)
  pruned : int;  (** prefixes cut by the memoization *)
  truncated : bool;  (** some branch hit a bound *)
}

(** One scheduler choice in a fault-aware schedule. *)
type action =
  | Step of int     (** advance the pid by one shared access *)
  | Crash of int    (** fail-stop the pid (local state lost) *)
  | Recover of int  (** restart the crashed pid from the top *)

val pp_action : Format.formatter -> action -> unit

type 'schedule gen_result =
  | Ok of stats
  | Violation of {
      schedule : 'schedule;  (** choices, in execution order *)
      violation : Cfc_core.Spec.violation;
      stats : stats;
    }

type result = int list gen_result
type fault_result = action list gen_result

val run :
  ?config:config ->
  ?symmetric:bool ->
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  check:(Cfc_runtime.Trace.t -> nprocs:int -> Cfc_core.Spec.violation option) ->
  unit ->
  result
(** [run ~system ~check ()] re-creates the system from scratch for every
    replay ([system] must be deterministic: fresh memory and fresh process
    closures) and checks [check] on the trace after every step of every
    explored schedule.  No faults are injected.

    [symmetric] (default false) is only sound when every process runs
    literally identical code (the naming problem's setting): among
    processes that have not yet taken a step, only the lowest-numbered is
    scheduled — any other choice reaches an isomorphic state under a pid
    permutation, and the checked properties are pid-symmetric. *)

val run_faults :
  ?config:config ->
  ?symmetric:bool ->
  ?pairs:int ->
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  check:(Cfc_runtime.Trace.t -> nprocs:int -> Cfc_core.Spec.violation option) ->
  unit ->
  fault_result
(** Like {!run} but additionally enumerates crash and recovery points as
    scheduler choices, up to [pairs] (default 2) crash–recovery pairs per
    run.  Crashing a process that has not yet taken a step is skipped
    (indistinguishable from not crashing it).  With [pairs = 0] this is
    exactly {!run} modulo the schedule type. *)

val replay :
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  schedule:int list ->
  Cfc_runtime.Runner.outcome
(** Re-execute one schedule (for counterexample inspection). *)

val replay_actions :
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  schedule:action list ->
  Cfc_runtime.Runner.outcome
(** Re-execute one fault-aware schedule. *)
