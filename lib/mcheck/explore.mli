(** Bounded exhaustive exploration of interleavings.

    Two engines share one search order and one memoization:

    - {b Incremental} (the default): one live (memory, scheduler, trace)
      per search branch, extended by a single action per node.  Sibling
      branches are explored by checkpoint/undo — a checkpoint stores the
      register values, the trace length, the scheduler's scalar state
      and the incremental-checker state, all O(nprocs + registers).
      One-shot continuations cannot be cloned, so a process whose
      continuation was consumed by an abandoned sibling is rebuilt
      lazily: its thunk is restarted and driven against the observations
      recorded for it (deterministic processes re-suspend at exactly the
      same point).  A process that catches a register-op exception and
      keeps going cannot be rebuilt this way; the engine detects this and
      transparently re-runs on the replay engine.
    - {b Replay} (dscheck-style): every node re-executes the whole
      schedule prefix from a fresh system.  Kept as the reference
      implementation and the fallback; the test suite pins the
      incremental engine's verdicts, schedules and stats to it.  The
      replay engine is never partial-order reduced and never
      hash-compacted (always exact keys).

    The state space is pruned with a soundness-preserving memoization:
    two schedule prefixes that reach the same fingerprint
    ({!State_key.t}: register values plus, per process, its protocol
    region and the observations since its last (re)start, which determine
    the local state of a deterministic process) have identical futures,
    so only the first is expanded.  Spin loops therefore do not blow up
    the search.  The crash count joins the memo key, so pruning stays
    sound across fault branches.

    {b Symmetry reduction} ([symmetry] hint, both engines): memo keys
    are canonicalised under the admissible pid permutations before
    lookup (see {!Symmetry}), so states that are pid-renamings of each
    other — registers, register contents and observation histories
    remapped consistently — merge into one orbit representative.
    Because the reduction acts on the key rather than on the candidate
    schedule, it composes with the partial-order reduction (the memo
    payload travels into canonical pid space by the witness permutation)
    and stays on under fault injection.  [pruned_sym] counts prune hits
    whose key the canonicalisation had rewritten.

    {b Partial-order reduction} ([independence] hint, incremental engine
    only): a static may-conflict relation between per-process next steps,
    derived from the {!Independence} access-graph models, lets a node
    schedule a single process when its next step provably commutes with
    everything every other live process may still do — the skipped
    interleavings reach the same states modulo commutation.  Three
    guards keep it sound: the chosen step must pass a {e dynamic}
    commutation probe (an exhaustive bounded walk of the others-only
    subsystem from the child state, failing on any value-aware footprint
    conflict with the chosen access — and, when the chosen step changed
    a protocol region, on any reachable other-process region change,
    since region sequences are all the property monitors consume); it
    must not land on a state currently open on the DFS stack (the
    ignoring-problem cycle proviso); and sleeping processes ({e sleep
    sets}: already explored under an earlier sibling after
    commuting) wake as soon as a conflicting access executes.  Under
    reduction the memo stores what each exploration assumed (sleep set
    and per-process step budget) and a revisit re-explores unless
    covered.  States differing only in how many times a process re-read
    an unchanged busy-wait register are merged (spin-period
    canonicalization) — sound under the memoryless-spin reading of
    busy-wait loops the analyzer's cycle detection already assumes
    (DESIGN.md §2).  Reduction is gated off under fault injection
    ([pairs > 0]) and for processes whose dynamic accesses leave their
    static graph (conservative degradation, per process).  The reduced
    and unreduced searches are asserted to agree on every registry
    system and every broken fixture by the test suite.

    {b Compact seen set} ([compact], incremental engine only): the memo
    stores two independent 62-bit fingerprints of each key
    ({!State_key.fingerprint}) instead of the full structural key —
    a large constant-factor memory saving on big sweeps.  A first-lane
    hit whose second lane mismatches is a {e detected} collision
    (counted in [fp_collisions], explored without storing — sound,
    merely slower); wrongly merging two distinct states would need both
    lanes to collide at once (~124 bits).  The exact mode remains the
    default and the tests cross-check compact verdicts against it.

    {b Domain parallelism} ([domains > 1], incremental engine only): the
    root node's candidate actions are independent subtrees fanned out
    over [Domain.spawn] workers, each with its own system and counters.
    By default ([share_seen]) the branches pool their prunes through one
    shared, mutex-striped seen set; cross-branch pruning is gated on
    subtree {e completion} (a state another branch finished exploring
    without hitting any bound), which keeps the verdict and the reported
    counterexample schedule deterministic — identical for every
    [domains] value and every timing — while the stats (how much work
    each branch happened to skip) may vary run to run.  Results merge by
    branch index: the reported violation is the one in the earliest
    branch in canonical candidate order, i.e. the same branch the
    sequential DFS enters first.  [share_seen:false] reverts to fully
    private per-branch tables (deterministic stats, but branches
    re-discover each other's states).  Each branch gets the full
    [max_states] budget either way; [domains = 1] (the default) is
    exactly the sequential search.

    {!run_faults} additionally enumerates bounded crash–recovery faults
    ({!action}) as scheduler choices: at every decision point any started
    runnable process may crash (losing its local state — its observation
    history resets) and any crashed process may recover, up to a budget
    of crash–recovery pairs.

    Guarantees: within the given bounds the search visits every reachable
    interleaving class, so a reported [Ok] means no violation exists up to
    the bounds (not absolute correctness); a reported violation comes with
    its schedule and replays deterministically. *)

type config = {
  max_depth : int;  (** total scheduler steps per explored run *)
  max_steps_per_proc : int;  (** per-process access budget *)
  max_states : int;  (** abort threshold on explored prefixes *)
}

val default_config : config

type stats = {
  runs : int;  (** maximal schedules explored *)
  states : int;  (** search nodes visited *)
  pruned_dedup : int;
      (** prefixes cut by the memoization on an unrewritten key *)
  pruned_sym : int;
      (** prefixes cut on a key the symmetry canonicalisation rewrote;
          always 0 without a [symmetry] hint *)
  pruned_por : int;
      (** enabled transitions skipped by the partial-order reduction
          (sleeping processes, plus the siblings a singleton ample set
          dropped); always 0 without an [independence] hint *)
  fp_collisions : int;
      (** detected fingerprint collisions in compact mode (state explored
          without storing); always 0 in exact mode *)
  seen_pop : int;  (** seen-set entries at the end of the search *)
  seen_cap : int;
      (** seen-set initial capacity ([max_states] or the [seen_hint]);
          with private per-branch tables, the sum over branches *)
  truncated : bool;  (** some branch hit a bound *)
}

(** Which exploration engine to use (see the module docstring). *)
type engine =
  | Incremental  (** live system + checkpoint/undo (default) *)
  | Replay       (** re-execute the whole prefix at every node *)

(** One scheduler choice in a fault-aware schedule. *)
type action =
  | Step of int     (** advance the pid by one shared access *)
  | Crash of int    (** fail-stop the pid (local state lost) *)
  | Recover of int  (** restart the crashed pid from the top *)

val pp_action : Format.formatter -> action -> unit

type 'schedule gen_result =
  | Ok of stats
  | Violation of {
      schedule : 'schedule;  (** choices, in execution order *)
      violation : Cfc_core.Spec.violation;
      stats : stats;
    }

type result = int list gen_result
type fault_result = action list gen_result

val run :
  ?config:config ->
  ?symmetry:Symmetry.t ->
  ?engine:engine ->
  ?domains:int ->
  ?share_seen:bool ->
  ?compact:bool ->
  ?replay_safe:bool ->
  ?independence:Independence.t ->
  ?seen_hint:int ->
  ?inc:Cfc_core.Spec.Inc.t ->
  ?observe_access:
    (pid:int ->
    reg:Cfc_runtime.Register.t ->
    kind:Cfc_runtime.Event.access_kind ->
    unit) ->
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  check:(Cfc_runtime.Trace.t -> nprocs:int -> Cfc_core.Spec.violation option) ->
  unit ->
  result
(** [run ~system ~check ()] explores every interleaving within bounds
    ([system] must be deterministic: fresh memory and fresh process
    closures on each call) and checks the safety property at every node.
    No faults are injected.

    [check] is the whole-trace property; [inc] (default
    [Spec.Inc.of_whole check]) is its incremental form, fed only the
    events each action appends — supply one for per-node O(1) checking.
    The two must agree; the replay engine always uses [check].

    [symmetry] switches on the canonicalisation-based symmetry reduction
    described in the module docstring (build the group with
    {!Symmetry.identical} for literally identical processes or
    {!Symmetry.mutex}/{!Symmetry.of_report} for pid-specialised code).
    Sound only when the checked property is pid-symmetric, which every
    property in {!Props} is.  For a pure (identical-processes) group the
    engines additionally restrict fresh-process candidates to the lowest
    pid — the old candidate-level pruning — when no [independence] hint
    is active.

    [domains] (default 1) fans the root branches over that many domains
    (capped by the branch count; incremental engine only); [share_seen]
    (default [true]) pools prunes across branches through a shared
    sharded seen set — see the module docstring for the determinism
    story.

    [compact] (default [false]) stores 2×62-bit fingerprints instead of
    full keys in the incremental engine's seen set; collisions are
    counted in [fp_collisions].  The replay engine ignores it.

    [replay_safe] (default [true]) is a hint from static analysis (see
    [Cfc_analysis.Analyze]): pass [false] when some process is known to
    swallow a mid-access discontinuation, and the exploration starts on
    the replay engine directly instead of discovering the problem and
    falling back mid-search.  Passing [false] for a replay-safe system is
    sound — only slower; passing [true] for an unsafe one merely restores
    the dynamic fallback.

    [independence] (see {!Independence.mutex}) switches the incremental
    engine to the partial-order-reduced search described in the module
    docstring; the verdict is unchanged, [states] shrinks, [pruned_por]
    counts the skipped work.  Composes with [symmetry].  Ignored under
    fault injection, on the replay engine and when no per-process model
    is usable.

    [seen_hint] pre-sizes the memo table below its [max_states] default
    (pass a previous run's [seen_pop] to trim memory on repeated small
    runs); purely a performance hint.

    [observe_access] is called on every shared access the exploration
    executes, as it happens.  The callback sees each distinct access many
    times (once per node that performs or — on the replay engine —
    re-executes it), so consumers must deduplicate; the set of (pid,
    register, kind) triples delivered is the set of accesses in the
    explored prefix tree, on either engine.  With [domains > 1] the
    callback fires concurrently from worker domains and must be
    thread-safe. *)

val run_faults :
  ?config:config ->
  ?symmetry:Symmetry.t ->
  ?engine:engine ->
  ?domains:int ->
  ?share_seen:bool ->
  ?compact:bool ->
  ?replay_safe:bool ->
  ?independence:Independence.t ->
  ?seen_hint:int ->
  ?inc:Cfc_core.Spec.Inc.t ->
  ?observe_access:
    (pid:int ->
    reg:Cfc_runtime.Register.t ->
    kind:Cfc_runtime.Event.access_kind ->
    unit) ->
  ?pairs:int ->
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  check:(Cfc_runtime.Trace.t -> nprocs:int -> Cfc_core.Spec.violation option) ->
  unit ->
  fault_result
(** Like {!run} but additionally enumerates crash and recovery points as
    scheduler choices, up to [pairs] (default 2) crash–recovery pairs per
    run.  Crashing a process that has not yet taken a step is skipped
    (indistinguishable from not crashing it).  With [pairs = 0] this is
    exactly {!run} modulo the schedule type — including the reduction,
    which is otherwise gated off under fault injection.  The symmetry
    reduction stays on across fault branches (crash and recovery are
    pid-equivariant). *)

val replay :
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  schedule:int list ->
  Cfc_runtime.Runner.outcome
(** Re-execute one schedule (for counterexample inspection). *)

val replay_actions :
  system:(unit -> Cfc_runtime.Memory.t * (unit -> unit) array) ->
  schedule:action list ->
  Cfc_runtime.Runner.outcome
(** Re-execute one fault-aware schedule. *)
