open Cfc_runtime

type cell = { reg : int; kind : Event.access_kind }

type proc_key = {
  k_status : int;
  k_region : Event.region;
  k_obs_hash : int;  (* left fold of [cell_hash] over k_obs, oldest first *)
  k_obs : cell list;  (* newest first *)
}

type t = { k_regvals : int array; k_procs : proc_key array }

let status_tag = function
  | Scheduler.Runnable -> 0
  | Scheduler.Halted -> 1
  | Scheduler.Crashed -> 2
  | Scheduler.Errored _ -> 3

let cell r k = { reg = r.Register.id; kind = k }
let cell_hash h c = (h * 31) + Hashtbl.hash c

let of_system memory sched trace =
  let nprocs = Scheduler.nprocs sched in
  let obs = Array.make nprocs [] in
  let obs_hash = Array.make nprocs 0 in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        let c = cell r k in
        obs.(pid) <- c :: obs.(pid);
        obs_hash.(pid) <- cell_hash obs_hash.(pid) c
      | Event.Crash ->
        obs.(e.Event.pid) <- [];
        obs_hash.(e.Event.pid) <- 0
      | Event.Region_change _ | Event.Recover -> ())
    trace;
  { k_regvals = Memory.values memory;
    k_procs =
      Array.init nprocs (fun pid ->
          { k_status = status_tag (Scheduler.status sched pid);
            k_region = Scheduler.region sched pid;
            k_obs_hash = obs_hash.(pid);
            k_obs = obs.(pid) }) }

let equal (a : t) (b : t) = a = b

let hash (t : t) =
  let h = ref 0 in
  Array.iter (fun v -> h := (!h * 31) + v) t.k_regvals;
  Array.iter
    (fun p ->
      h := (!h * 31) + p.k_status;
      h := (!h * 31) + Hashtbl.hash p.k_region;
      h := (!h * 31) + p.k_obs_hash)
    t.k_procs;
  !h land max_int
