open Cfc_runtime

type cell = { reg : int; kind : Event.access_kind }

type proc_key = {
  k_status : int;
  k_region : Event.region;
  k_obs_hash : int;  (* left fold of [cell_hash] over k_obs, oldest first *)
  k_obs : cell list;  (* newest first *)
}

type t = { k_regvals : int array; k_procs : proc_key array }

let status_tag = function
  | Scheduler.Runnable -> 0
  | Scheduler.Halted -> 1
  | Scheduler.Crashed -> 2
  | Scheduler.Errored _ -> 3

let cell r k = { reg = r.Register.id; kind = k }
let cell_hash h c = (h * 31) + Hashtbl.hash c

let of_system memory sched trace =
  let nprocs = Scheduler.nprocs sched in
  let obs = Array.make nprocs [] in
  let obs_hash = Array.make nprocs 0 in
  Trace.iter
    (fun e ->
      match e.Event.body with
      | Event.Access (r, k) ->
        let pid = e.Event.pid in
        let c = cell r k in
        obs.(pid) <- c :: obs.(pid);
        obs_hash.(pid) <- cell_hash obs_hash.(pid) c
      | Event.Crash ->
        obs.(e.Event.pid) <- [];
        obs_hash.(e.Event.pid) <- 0
      | Event.Region_change _ | Event.Recover -> ())
    trace;
  { k_regvals = Memory.values memory;
    k_procs =
      Array.init nprocs (fun pid ->
          { k_status = status_tag (Scheduler.status sched pid);
            k_region = Scheduler.region sched pid;
            k_obs_hash = obs_hash.(pid);
            k_obs = obs.(pid) }) }

let equal (a : t) (b : t) = a = b

(* Two independent multiply–xorshift lanes over the full key structure.
   Unlike [hash] (which leans on the rolling [k_obs_hash]), the
   fingerprint walks the observation lists and folds every operand
   directly, so the two 62-bit lanes together give the compact seen-set
   its ~124 bits of discrimination. *)

let fp_m1 = 0x2545F4914F6CDD1D
let fp_m2 = 0x27D4EB2F165667C5

let fp_mix m h v =
  let h = (h lxor v) * m in
  h lxor (h lsr 29)

let region_code = function
  | Event.Remainder -> 0
  | Event.Trying -> 1
  | Event.Critical -> 2
  | Event.Exiting -> 3
  | Event.Halted -> 4
  | Event.Decided _ -> 5

let fp_kind m h = function
  | Event.A_read v -> fp_mix m (fp_mix m h 1) v
  | Event.A_write v -> fp_mix m (fp_mix m h 2) v
  | Event.A_field (i, w, v) ->
    fp_mix m (fp_mix m (fp_mix m (fp_mix m h 3) i) w) v
  | Event.A_xchg (w, o) -> fp_mix m (fp_mix m (fp_mix m h 4) w) o
  | Event.A_cas (e, d, ok) ->
    fp_mix m
      (fp_mix m (fp_mix m (fp_mix m h 5) e) d)
      (if ok then 1 else 0)
  | Event.A_bit (op, v) ->
    fp_mix m
      (fp_mix m (fp_mix m h 6) (Hashtbl.hash op))
      (match v with None -> -1 | Some v -> v)

let fp_lane m (t : t) salt =
  let h = ref (fp_mix m salt (Array.length t.k_regvals)) in
  Array.iter (fun v -> h := fp_mix m !h v) t.k_regvals;
  Array.iter
    (fun p ->
      h := fp_mix m !h p.k_status;
      h := fp_mix m !h (region_code p.k_region);
      (h :=
         match p.k_region with
         | Event.Decided v -> fp_mix m !h v
         | _ -> !h);
      List.iter
        (fun c ->
          h := fp_mix m !h c.reg;
          h := fp_kind m !h c.kind)
        p.k_obs;
      h := fp_mix m !h (-2))
    t.k_procs;
  !h

let fingerprint (t : t) salt =
  (fp_lane fp_m1 t salt, fp_lane fp_m2 t (salt + 0x5851F42D))

let hash (t : t) =
  let h = ref 0 in
  Array.iter (fun v -> h := (!h * 31) + v) t.k_regvals;
  Array.iter
    (fun p ->
      h := (!h * 31) + p.k_status;
      h := (!h * 31) + Hashtbl.hash p.k_region;
      h := (!h * 31) + p.k_obs_hash)
    t.k_procs;
  !h land max_int
