(** Deliberately broken constructions the fault-aware checker must
    refute — negative fixtures for the crash–recovery battery, shared by
    the test suite and the benchmark so the "still refuted" gate and the
    committed baselines exercise the very same modules. *)

open Cfc_base
open Cfc_mutex

(** An MCS queue lock "made recoverable" the tempting-but-wrong way: the
    process records its intent to enter in a per-process [inq] flag and,
    after a restart, trusts [inq]=1 ∧ [locked]=0 as proof that its
    previous incarnation already owned the lock.

    The mistake is the order of announcements.  [inq] is raised {e
    before} the node is published to the queue ([fetch_and_store] on
    the tail), so a crash in that window leaves a grant-shaped footprint
    for an acquisition that never happened: the restarted incarnation
    takes the fast path straight into the critical section while the
    queue — which never saw it — admits somebody else.  This is the
    same information-loss bug as persisting the [fetch_and_store]
    return value too late (the predecessor edge exists only in the lost
    return value): the recovery log must be written by the same atomic
    step that changes the queue, which is exactly what the packed-word
    encoding of the real recoverable queue lock does.

    Crash-free the fast path is unreachable ([unlock] lowers [inq]
    before releasing, so every fresh [lock] call sees [inq]=0) and the
    algorithm is plain MCS — the crash-free checker must find nothing,
    and the fault-aware checker must refute it with a single
    crash–recovery pair at n = 2. *)
module Broken_recovery_queue : Mutex_intf.ALG = struct
  let name = "fixture-broken-recovery-queue"
  let supports (p : Mutex_intf.params) = p.Mutex_intf.n >= 1
  let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.Mutex_intf.n
  (* Solo cycle: read inq, raise inq/entering, clear next, arm flag,
     exchange tail, lower entering (entry = 7) + lower inq, read next,
     compare-and-swap tail (exit = 3). *)
  let predicted_cf_steps (_ : Mutex_intf.params) = Some 10
  let predicted_cf_registers (_ : Mutex_intf.params) = Some 5

  (* The forms the construction {e claims}: a held restart revalidates in
     2 steps over 2 registers, a not-held restart re-runs the 7-step
     entry after the failed fast-path read.  The claim is the bug — the
     checker's counterexample shows the "revalidation" admits a second
     process. *)
  let recovery (_ : Mutex_intf.params) =
    Some
      { Mutex_intf.rec_steps_held = 2;
        rec_steps_not_held = 7;
        rec_registers_held = 2;
        rec_registers_not_held = 5 }

  module Make (M : Mem_intf.MEM) = struct
    type t = {
      tail : M.reg;
      next : M.reg array;
      locked : M.reg array;  (** MCS spin flag, written by the predecessor *)
      inq : M.reg array;  (** the broken "I am in the queue" intent flag *)
      entering : M.reg array;
          (** raised while the entry protocol is still running — the
              fast path reads it as "my last incarnation got past the
              queue", which the crash window below makes a lie *)
    }

    let create (p : Mutex_intf.params) =
      let n = p.Mutex_intf.n in
      let width = Ixmath.bits_needed n in
      {
        tail = M.alloc ~name:"brq.tail" ~width ~init:0 ();
        next = M.alloc_array ~name:"brq.next" ~width ~init:0 n;
        locked = M.alloc_array ~name:"brq.locked" ~width:1 ~init:0 n;
        inq = M.alloc_array ~name:"brq.inq" ~width:1 ~init:0 n;
        entering = M.alloc_array ~name:"brq.entering" ~width:1 ~init:0 n;
      }

    let lock t ~me =
      let id = me + 1 in
      if M.read t.inq.(me) = 1 && M.read t.entering.(me) = 0 then
        (* "Recovery": the footprint says the previous incarnation was
           past the entry protocol and never released — so the lock must
           still be ours.  A crash between the two writes below forges
           exactly this footprint without any enqueue. *)
        ()
      else begin
        M.write t.inq.(me) 1;
        (* <-- a crash here leaves inq=1, entering=0: a forged grant *)
        M.write t.entering.(me) 1;
        M.write t.next.(me) 0;
        M.write t.locked.(me) 1;
        let pred = M.fetch_and_store t.tail id in
        if pred <> 0 then begin
          M.write t.next.(pred - 1) id;
          while M.read t.locked.(me) = 1 do
            M.pause ()
          done
        end;
        M.write t.entering.(me) 0
      end

    let unlock t ~me =
      let id = me + 1 in
      M.write t.inq.(me) 0;
      let succ = M.read t.next.(me) in
      if succ <> 0 then M.write t.locked.(succ - 1) 0
      else if not (M.compare_and_set t.tail ~expected:id 0) then begin
        let succ = ref (M.read t.next.(me)) in
        while !succ = 0 do
          M.pause ();
          succ := M.read t.next.(me)
        done;
        M.write t.locked.(!succ - 1) 0
      end
  end
end

let broken_recovery_queue : Registry.alg = (module Broken_recovery_queue)
