(** The lint gate: run the {!Analyze} passes over a battery of subjects,
    check every closed form, the trace-measured agreement, atomicity
    conformance and replay-safety, scan the library sources for
    non-deterministic randomness, and render the outcome as a table or a
    JSON report.  [cfc-tables lint] is a thin wrapper; CI fails the
    build on any error-severity finding. *)

type severity = Error | Warning

type violation = { severity : severity; code : string; detail : string }
(** [code] is a stable machine-readable tag: ["cf-steps"],
    ["cf-registers"], ["static-vs-measured"], ["atomicity"],
    ["replay-unsafe"], ["harmful-race"], ["liveness"],
    ["nondeterminism"], ["wall-clock"]. *)

type row = {
  report : Analyze.report;
  product : Product.t;  (** the pairwise product passes over [report] *)
  measured : Cfc_core.Measures.sample;
  violations : violation list;
}

type outcome = {
  rows : row list;
  source_findings : violation list;  (** determinism scan of [lib/] *)
  errors : int;
  warnings : int;
}

val check_subject : ?config:Analyze.config -> Subjects.t -> row

val scan_sources : root:string -> violation list
(** Scan every [.ml]/[.mli] under [root]'s [lib], [bench], [bin] and
    [examples] for determinism violations: uses of the global [Random]
    module (anything but the seeded [State] sub-module), the
    environment-seeded [make_self_init], and wall-clock reads (the Unix
    [gettimeofday] and the Sys process timer) on lines not carrying the
    benchmark-timer allow marker. *)

val find_root : unit -> string option
(** Walk up from the current directory to the first directory containing
    [lib/base/ops.ml] (works both from a dune sandbox and from a source
    checkout). *)

val run :
  ?config:Analyze.config ->
  ?fixtures:bool ->
  ?root:string ->
  unit ->
  outcome
(** Analyze the whole {!Subjects.registry} (plus the broken
    {!Fixtures} when [fixtures] is set) and scan the sources under
    [root] (default: {!find_root}; the scan is skipped when no root is
    found). *)

val print : outcome -> unit
(** Human-readable table plus one line per violation. *)

val to_json : outcome -> string

val exit_code : outcome -> int
(** 0 when no error-severity finding, 1 otherwise (warnings alone do not
    fail the gate). *)
