open Cfc_base
open Cfc_core

type severity = Error | Warning

type violation = { severity : severity; code : string; detail : string }

type row = {
  report : Analyze.report;
  product : Product.t;
  measured : Measures.sample;
  violations : violation list;
}

type outcome = {
  rows : row list;
  source_findings : violation list;
  errors : int;
  warnings : int;
}

let severity_name = function Error -> "error" | Warning -> "warning"

(* ---------- the per-algorithm checks ---------- *)

let check_subject ?config (subject : Subjects.t) =
  let report = Analyze.analyze ?config subject in
  let product = Product.of_report ?config report in
  let measured = subject.Subjects.measured () in
  let v = ref [] in
  let push severity code detail = v := { severity; code; detail } :: !v in
  let static = report.Analyze.static_cf in
  (match subject.Subjects.predicted_steps with
  | Some p when p <> static.Measures.steps ->
    push Error "cf-steps"
      (Printf.sprintf "static %d steps but closed form says %d"
         static.Measures.steps p)
  | _ -> ());
  (match subject.Subjects.predicted_registers with
  | Some p when p <> static.Measures.registers ->
    push Error "cf-registers"
      (Printf.sprintf "static %d registers but closed form says %d"
         static.Measures.registers p)
  | _ -> ());
  if static <> measured then
    push Error "static-vs-measured"
      (Format.asprintf "static (%a) disagrees with trace-measured (%a)"
         Measures.pp_sample static Measures.pp_sample measured);
  (match subject.Subjects.declared_atomicity with
  | Some l when report.Analyze.max_width > l ->
    push Error "atomicity"
      (Printf.sprintf
         "accesses a %d-bit register but declares atomicity l=%d"
         report.Analyze.max_width l)
  | _ -> ());
  if not report.Analyze.replay_safe then
    push Warning "replay-unsafe"
      "a process can swallow a mid-access discontinuation and keep \
       running; the model checker must use the replay engine";
  List.iter
    (fun (r : Product.race) ->
      push Error "harmful-race"
        (Printf.sprintf "on %s: %s | %s: %s | %s: %s" r.Product.r_name
           r.Product.r_note r.Product.r_left.Product.p_group
           r.Product.r_left.Product.p_path r.Product.r_right.Product.p_group
           r.Product.r_right.Product.p_path))
    (Product.harmful product);
  if product.Product.liveness = Product.Deadlock_risk then
    push Warning "liveness"
      "every write that can break some busy-wait is guarded by a volatile \
       register (the lost-wakeup shape); the protocol can deadlock";
  { report; product; measured; violations = List.rev !v }

(* ---------- determinism scan ---------- *)

(* Tokens assembled from pieces so the scanner never flags its own
   source. *)
let random_mod = "Random" ^ "."
let unix_mod = "Unix" ^ "."
let sys_mod = "Sys" ^ "."

(* A wall-clock read is permitted only on a line carrying this marker —
   used by the Bechamel-adjacent benchmark timers, where wall time is
   the measurement itself, never an input to the system under test. *)
let wall_clock_marker = "lint-allow: wall" ^ "-clock"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let line_contains line sub =
  let n = String.length line and m = String.length sub in
  let rec at i = i + m <= n && (String.sub line i m = sub || at (i + 1)) in
  at 0

(* Call [f member end_pos] for every occurrence of [prefix] (not preceded
   by an identifier character) followed by the longest identifier run. *)
let each_member line prefix f =
  let n = String.length line and fn = String.length prefix in
  let i = ref 0 in
  while !i + fn <= n do
    if
      String.sub line !i fn = prefix
      && (!i = 0 || not (is_ident_char line.[!i - 1]))
    then begin
      let j = ref (!i + fn) in
      while !j < n && is_ident_char line.[!j] do
        incr j
      done;
      f (String.sub line (!i + fn) (!j - (!i + fn))) !j;
      i := max (!i + 1) !j
    end
    else incr i
  done

let scan_line ~path ~lineno line acc =
  let acc = ref acc in
  let push code detail =
    acc :=
      { severity = Error; code; detail = Printf.sprintf "%s:%d: %s" path lineno detail }
      :: !acc
  in
  each_member line random_mod (fun member j ->
      if member <> "State" then
        push "nondeterminism"
          (Printf.sprintf
             "global randomness (%s%s); only seeded Random.State is allowed"
             random_mod member)
      else
        (* State's make_self_init seeds from the environment — as
           nondeterministic as the global functions. *)
        let tail = "." ^ "make_self_init" in
        let tn = String.length tail in
        if
          j + tn <= String.length line
          && String.sub line j tn = tail
          && (j + tn = String.length line || not (is_ident_char line.[j + tn]))
        then
          push "nondeterminism"
            (Printf.sprintf
               "environment-seeded randomness (%sState%s); use an explicit \
                seed"
               random_mod tail));
  if not (line_contains line wall_clock_marker) then begin
    each_member line unix_mod (fun member _ ->
        if member = "gettimeofday" then
          push "wall-clock"
            (Printf.sprintf
               "wall-clock read (%s%s) outside a benchmark timer; mark the \
                line with '%s' if it only feeds a measurement"
               unix_mod member wall_clock_marker));
    each_member line sys_mod (fun member _ ->
        if member = "time" then
          push "wall-clock"
            (Printf.sprintf
               "wall-clock read (%s%s) outside a benchmark timer; mark the \
                line with '%s' if it only feeds a measurement"
               sys_mod member wall_clock_marker))
  end;
  !acc

let scan_file path acc =
  let ic = open_in path in
  let acc = ref acc in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       acc := scan_line ~path ~lineno:!lineno line !acc
     done
   with End_of_file -> ());
  close_in ic;
  !acc

let scanned_dirs = [ "lib"; "bench"; "bin"; "examples" ]

let scan_sources ~root =
  let rec walk dir acc =
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path acc
        else if
          Filename.check_suffix entry ".ml"
          || Filename.check_suffix entry ".mli"
        then scan_file path acc
        else acc)
      acc
      (Sys.readdir dir)
  in
  List.rev
    (List.fold_left
       (fun acc d ->
         let dir = Filename.concat root d in
         if Sys.file_exists dir && Sys.is_directory dir then walk dir acc
         else acc)
       [] scanned_dirs)

let find_root () =
  let marker root = Filename.concat root (Filename.concat "lib" "base") in
  let rec up dir =
    if Sys.file_exists (Filename.concat (marker dir) "ops.ml") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

(* ---------- driver ---------- *)

let run ?config ?(fixtures = false) ?root () =
  let subjects =
    Subjects.registry () @ (if fixtures then Fixtures.subjects () else [])
  in
  let rows = List.map (check_subject ?config) subjects in
  let source_findings =
    match (root, find_root ()) with
    | Some r, _ | None, Some r -> scan_sources ~root:r
    | None, None -> []
  in
  let all =
    source_findings @ List.concat_map (fun r -> r.violations) rows
  in
  {
    rows;
    source_findings;
    errors = List.length (List.filter (fun v -> v.severity = Error) all);
    warnings = List.length (List.filter (fun v -> v.severity = Warning) all);
  }

let exit_code outcome = if outcome.errors > 0 then 1 else 0

(* ---------- rendering ---------- *)

let opt_int = function Some i -> string_of_int i | None -> "-"

let sr (s : Measures.sample) =
  Printf.sprintf "%d/%d" s.Measures.steps s.Measures.registers

let print outcome =
  let tab =
    Texttab.create
      ~header:
        [ "family"; "algorithm"; "cfg"; "static s/r"; "closed form";
          "measured"; "l decl/max"; "spin"; "liveness"; "races h/t";
          "replay"; "issues" ]
  in
  List.iter
    (fun r ->
      let s = r.report.Analyze.subject in
      Texttab.add_row tab
        [
          Subjects.family_name s.Subjects.family;
          s.Subjects.alg_name;
          s.Subjects.config;
          sr r.report.Analyze.static_cf;
          Printf.sprintf "%s/%s"
            (opt_int s.Subjects.predicted_steps)
            (opt_int s.Subjects.predicted_registers);
          sr r.measured;
          Printf.sprintf "%s/%d"
            (opt_int s.Subjects.declared_atomicity)
            r.report.Analyze.max_width;
          Analyze.spin_class_name r.report.Analyze.spin_class;
          Product.liveness_name r.product.Product.liveness;
          Printf.sprintf "%d/%d"
            (List.length (Product.harmful r.product))
            (List.length r.product.Product.races);
          (if r.report.Analyze.replay_safe then "safe" else "UNSAFE");
          string_of_int (List.length r.violations);
        ])
    outcome.rows;
  Texttab.print tab;
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          Printf.printf "%s[%s] %s %s: %s\n" (severity_name v.severity)
            v.code
            r.report.Analyze.subject.Subjects.alg_name
            r.report.Analyze.subject.Subjects.config v.detail)
        r.violations)
    outcome.rows;
  List.iter
    (fun v ->
      Printf.printf "%s[%s] %s\n" (severity_name v.severity) v.code v.detail)
    outcome.source_findings;
  Printf.printf "lint: %d subjects, %d errors, %d warnings\n"
    (List.length outcome.rows) outcome.errors outcome.warnings

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let sample_json (s : Measures.sample) =
  Printf.sprintf
    "{\"steps\": %d, \"registers\": %d, \"read_steps\": %d, \
     \"write_steps\": %d, \"read_registers\": %d, \"write_registers\": %d}"
    s.Measures.steps s.Measures.registers s.Measures.read_steps
    s.Measures.write_steps s.Measures.read_registers s.Measures.write_registers

let violation_json v =
  Printf.sprintf "{\"severity\": \"%s\", \"code\": \"%s\", \"detail\": \"%s\"}"
    (severity_name v.severity) (json_escape v.code) (json_escape v.detail)

let opt_json = function Some i -> string_of_int i | None -> "null"

let to_json outcome =
  let row_json r =
    let s = r.report.Analyze.subject in
    let p = r.product in
    let count verdict =
      List.length
        (List.filter
           (fun (x : Product.race) -> x.Product.r_verdict = verdict)
           p.Product.races)
    in
    let register_json (g : Product.reg_verdict) =
      Printf.sprintf "{\"name\": \"%s\", \"width\": %d, \"semantics\": \"%s\"}"
        (json_escape g.Product.g_name)
        g.Product.g_width
        (Product.semantics_name g.Product.g_semantics)
    in
    Printf.sprintf
      "    {\"family\": \"%s\", \"name\": \"%s\", \"config\": \"%s\", \
       \"static\": %s, \"measured\": %s, \"predicted_steps\": %s, \
       \"predicted_registers\": %s, \"declared_atomicity\": %s, \
       \"max_accessed_width\": %d, \"spin_class\": \"%s\", \
       \"replay_safe\": %b, \"graph_nodes\": %d, \"graph_edges\": %d, \
       \"liveness\": \"%s\", \"races\": {\"total\": %d, \"harmful\": %d, \
       \"sync\": %d, \"benign\": %d}, \"registers\": [%s], \
       \"violations\": [%s]}"
      (Subjects.family_name s.Subjects.family)
      (json_escape s.Subjects.alg_name)
      (json_escape s.Subjects.config)
      (sample_json r.report.Analyze.static_cf)
      (sample_json r.measured)
      (opt_json s.Subjects.predicted_steps)
      (opt_json s.Subjects.predicted_registers)
      (opt_json s.Subjects.declared_atomicity)
      r.report.Analyze.max_width
      (Analyze.spin_class_name r.report.Analyze.spin_class)
      r.report.Analyze.replay_safe r.report.Analyze.nodes
      r.report.Analyze.edges
      (Product.liveness_name p.Product.liveness)
      (List.length p.Product.races)
      (count Product.Harmful) (count Product.Sync)
      (count Product.Read_read + count Product.Same_value_write
     + count Product.Failed_cas + count Product.Protected)
      (String.concat ", " (List.map register_json p.Product.registers))
      (String.concat ", " (List.map violation_json r.violations))
  in
  Printf.sprintf
    "{\n  \"schema\": \"cfc-lint/2\",\n  \"errors\": %d,\n  \"warnings\": \
     %d,\n  \"source_findings\": [%s],\n  \"subjects\": [\n%s\n  ]\n}\n"
    outcome.errors outcome.warnings
    (String.concat ", " (List.map violation_json outcome.source_findings))
    (String.concat ",\n" (List.map row_json outcome.rows))
