(** The symbolic access-graph analyzer: bounded exhaustive solo
    exploration of one {!Subjects.t} on the {!Sym_mem} backend, the
    per-variant shared-access graph, and the four static passes —
    contention-free complexity, atomicity conformance, spin-structure
    classification, and replay-safety.

    Exploration: the baseline path runs with no injections (it {e is}
    the contention-free run, so the §2.2/§3.2 measures are read off its
    graph nodes); every value-returning access then becomes a fork
    point, and plans of up to [max_forks] injections (strictly
    increasing indices, values from {!Sym_mem.candidate_values}) are
    replayed breadth-first up to [max_paths] per variant.  A path ends
    when the body returns, the step budget runs out, a busy-wait cycle
    is recognized (three identical observation periods), or an injected
    value drives the algorithm into an exception (such a path is
    infeasible under real schedules and is discarded). *)

open Cfc_core

type config = {
  max_forks : int;  (** injections per path (fork depth bound) *)
  max_paths : int;  (** replayed paths per variant *)
  max_steps : int;  (** accesses per path *)
  max_period : int;  (** longest busy-wait pattern recognized *)
}

val default_config : config

(** A node of the shared-access graph: one shared operation, identified
    by (register, operation class, occurrence number along its path) and
    merged across explored paths. *)
type node = {
  n_reg : int;  (** register id (allocation order) *)
  n_name : string;
  n_width : int;
  n_class : string;  (** {!Sym_mem.op_class} *)
  n_occ : int;
  mutable n_write : bool;  (** writes the register on some path *)
  mutable n_observes : bool;  (** returns a value read from it *)
  mutable n_cycle : bool;  (** lies on a detected busy-wait cycle *)
  mutable n_may_end : bool;
      (** is the last access of some path on which the body returned —
          executing it can complete the variant (and, under a harness,
          trigger the post-body decision/region change) *)
  mutable n_baseline : int;
      (** position on the contention-free baseline path, [-1] if the
          node is reachable only under contention *)
  mutable n_baseline_write : bool;
  mutable n_wvals : int list;
      (** distinct values this access stored across explored paths
          (post-access register content of writing executions) *)
  mutable n_wvals_exact : bool;
      (** [false] once the stored-value set overflowed the cap — the
          access may then write anything *)
  mutable n_spinvals : int list;
      (** distinct values observed at this access while it was part of a
          detected busy-wait cycle — the values the spin does {e not}
          accept *)
  mutable n_spinvals_exact : bool;
}

type key = int * string * int

type graph = {
  g_nodes : (key, node) Hashtbl.t;
  g_edges : (key * key, unit) Hashtbl.t;  (** control-flow successors *)
}

type variant_report = {
  vr_label : string;
  vr_graph : graph;
  vr_baseline : Measures.sample;
      (** §2.2/§3.2 measures of the baseline path, from the graph *)
  vr_paths : int;  (** paths replayed (including discarded ones) *)
  vr_completed : key list list;
      (** the key sequence of every explored path on which the body
          returned — exact witnesses for "can the variant complete
          without executing node [k]?" questions, which the merged graph
          cannot answer (merging fabricates cross-path walks no real
          execution follows) *)
  vr_spin_regs : (int * string) list;
      (** registers observed inside busy-wait cycles *)
  vr_writes_line : int list;  (** registers written outside any cycle *)
  vr_writes_cycle : int list;  (** registers written inside a cycle *)
  vr_max_width : int;  (** widest register accessed on any path *)
  vr_replay_safe : bool;
}

(** The spin-structure prediction, in the write-invalidate (YA93) model
    the §1.2 remote-access discussion appeals to:
    - [Wait_free]: no busy-wait cycle on any explored path;
    - [Local_spin]: every spun-on register is remotely written only in
      straight-line code, so each remote passage invalidates the
      spinner's cached copy a bounded number of times (bounded RMR per
      passage — the MCS shape);
    - [Spin_on_shared]: some spun-on register is written {e inside}
      another variant's busy-wait cycle, so a single adversarial
      passage forces unboundedly many remote references (the
      test-and-set shape). *)
type spin_class = Wait_free | Local_spin | Spin_on_shared

val spin_class_name : spin_class -> string

type report = {
  subject : Subjects.t;
  variants : variant_report list;
  static_cf : Measures.sample;
      (** componentwise max of the baseline measures over variants —
          the static contention-free complexity *)
  nodes : int;
  edges : int;
  max_width : int;
  spin_class : spin_class;
  replay_safe : bool;
      (** no access raising mid-body can leave the process running: the
          static counterpart of [Scheduler.replay_safe], established by
          probing every baseline access index (plus any genuine raise
          observed while exploring) *)
}

val analyze : ?config:config -> Subjects.t -> report
(** Raises [Failure] if a baseline (injection-free) solo execution does
    not terminate within the budget — a contention-free run that spins
    is an algorithm bug, not an analysis result. *)
