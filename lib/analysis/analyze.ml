open Cfc_runtime
open Cfc_core

type config = {
  max_forks : int;
  max_paths : int;
  max_steps : int;
  max_period : int;
}

let default_config =
  { max_forks = 3; max_paths = 400; max_steps = 2000; max_period = 8 }

type node = {
  n_reg : int;
  n_name : string;
  n_width : int;
  n_class : string;
  n_occ : int;
  mutable n_write : bool;
  mutable n_observes : bool;
  mutable n_cycle : bool;
  mutable n_may_end : bool;
  mutable n_baseline : int;
  mutable n_baseline_write : bool;
  mutable n_wvals : int list;
  mutable n_wvals_exact : bool;
  mutable n_spinvals : int list;
  mutable n_spinvals_exact : bool;
}

type key = int * string * int

(* Value sets on nodes are capped: past [max_vals] distinct values the
   set is dropped and marked inexact, and every consumer must fall back
   to "could be anything". *)
let max_vals = 8

let add_val vals exact v =
  if not exact then (vals, false)
  else if List.mem v vals then (vals, true)
  else if List.length vals >= max_vals then ([], false)
  else (v :: vals, true)

type graph = {
  g_nodes : (key, node) Hashtbl.t;
  g_edges : (key * key, unit) Hashtbl.t;
}

type variant_report = {
  vr_label : string;
  vr_graph : graph;
  vr_baseline : Measures.sample;
  vr_paths : int;
  vr_completed : key list list;
  vr_spin_regs : (int * string) list;
  vr_writes_line : int list;
  vr_writes_cycle : int list;
  vr_max_width : int;
  vr_replay_safe : bool;
}

type spin_class = Wait_free | Local_spin | Spin_on_shared

let spin_class_name = function
  | Wait_free -> "wait-free"
  | Local_spin -> "local-spin"
  | Spin_on_shared -> "spin-on-shared"

type report = {
  subject : Subjects.t;
  variants : variant_report list;
  static_cf : Measures.sample;
  nodes : int;
  edges : int;
  max_width : int;
  spin_class : spin_class;
  replay_safe : bool;
}

(* ---------- one path ---------- *)

type path_end = P_done | P_cut of Sym_mem.cut_reason | P_raised of exn

let run_variant ~config (v : Subjects.variant) ~plan ~probe_at =
  let ctx =
    Sym_mem.create ~max_steps:config.max_steps ~max_period:config.max_period
      ~plan ~probe_at ()
  in
  let mem = Sym_mem.mem ctx in
  let solo = v.Subjects.make mem in
  List.iter (fun f -> f ()) solo.Subjects.context;
  Sym_mem.start_recording ctx;
  let ending =
    match solo.Subjects.body () with
    | () -> P_done
    | exception Sym_mem.Cut r -> P_cut r
    | exception e -> P_raised e
  in
  (ctx, ending)

(* An exception was swallowed iff some access raised and the process
   nevertheless went on — performed further accesses, or completed the
   body instead of letting the exception escape. *)
let swallowed ctx ending =
  Sym_mem.swallowed ctx
  || Sym_mem.raised_at ctx <> None
     && (match ending with P_raised _ -> false | P_done | P_cut _ -> true)

(* ---------- graph construction ---------- *)

let sample_of_steps steps =
  let seen = Hashtbl.create 16 in
  let seen_r = Hashtbl.create 16 in
  let seen_w = Hashtbl.create 16 in
  let n = ref 0 and reads = ref 0 and writes = ref 0 in
  List.iter
    (fun (s : Sym_mem.step) ->
      incr n;
      let id = s.s_reg.Register.id in
      Hashtbl.replace seen id ();
      if s.s_write then begin
        incr writes;
        Hashtbl.replace seen_w id ()
      end
      else begin
        incr reads;
        Hashtbl.replace seen_r id ()
      end)
    steps;
  {
    Measures.steps = !n;
    registers = Hashtbl.length seen;
    read_steps = !reads;
    write_steps = !writes;
    read_registers = Hashtbl.length seen_r;
    write_registers = Hashtbl.length seen_w;
  }

let observes : Sym_mem.op -> bool = function
  | O_read | O_xchg | O_cas _ -> true
  | O_bit b -> Cfc_base.Ops.returns_value b
  | O_write | O_field _ -> false

(* Merge one path into the graph and return its key sequence.  Node
   identity is (register, op class, occurrence along the path), so
   re-executions of the same instruction in a loop become distinct nodes
   up to the point where the cycle was recognized; [cycle] holds the
   trace indices of the detected period. *)
let merge_path g ~baseline ~ended ~cycle steps =
  let occs = Hashtbl.create 16 in
  let in_cycle i = List.exists (fun (s : Sym_mem.step) -> s.s_index = i) cycle in
  let nsteps = List.length steps in
  let prev = ref None in
  let keys = ref [] in
  let first_cycle_key = ref None in
  let last_cycle_key = ref None in
  List.iteri
    (fun pos (s : Sym_mem.step) ->
      let id = s.s_reg.Register.id in
      let cls = Sym_mem.op_class s.s_op in
      let occ =
        let o = Option.value ~default:0 (Hashtbl.find_opt occs (id, cls)) in
        Hashtbl.replace occs (id, cls) (o + 1);
        o
      in
      let k = (id, cls, occ) in
      let node =
        match Hashtbl.find_opt g.g_nodes k with
        | Some n -> n
        | None ->
          let n =
            {
              n_reg = id;
              n_name = s.s_reg.Register.name;
              n_width = s.s_reg.Register.width;
              n_class = cls;
              n_occ = occ;
              n_write = false;
              n_observes = false;
              n_cycle = false;
              n_may_end = false;
              n_baseline = -1;
              n_baseline_write = false;
              n_wvals = [];
              n_wvals_exact = true;
              n_spinvals = [];
              n_spinvals_exact = true;
            }
          in
          Hashtbl.add g.g_nodes k n;
          n
      in
      node.n_write <- node.n_write || s.s_write;
      node.n_observes <- node.n_observes || observes s.s_op;
      if s.s_write then begin
        let vals, exact = add_val node.n_wvals node.n_wvals_exact s.s_post in
        node.n_wvals <- vals;
        node.n_wvals_exact <- exact
      end;
      if in_cycle s.s_index then begin
        node.n_cycle <- true;
        if observes s.s_op then begin
          let vals, exact =
            add_val node.n_spinvals node.n_spinvals_exact s.s_value
          in
          node.n_spinvals <- vals;
          node.n_spinvals_exact <- exact
        end;
        if !first_cycle_key = None then first_cycle_key := Some k;
        last_cycle_key := Some k
      end;
      if ended && pos = nsteps - 1 then node.n_may_end <- true;
      if baseline then begin
        node.n_baseline <- pos;
        node.n_baseline_write <- s.s_write
      end;
      (match !prev with
      | Some pk -> Hashtbl.replace g.g_edges (pk, k) ()
      | None -> ());
      prev := Some k;
      keys := k :: !keys)
    steps;
  (* the busy-wait back edge *)
  (match (!last_cycle_key, !first_cycle_key) with
  | Some a, Some b -> Hashtbl.replace g.g_edges (a, b) ()
  | _ -> ());
  List.rev !keys

(* ---------- per-variant exploration ---------- *)

let explore ~config (v : Subjects.variant) =
  let g = { g_nodes = Hashtbl.create 64; g_edges = Hashtbl.create 64 } in
  let queue = Queue.create () in
  Queue.add [] queue;
  let seen_plans = Hashtbl.create 64 in
  Hashtbl.add seen_plans [] ();
  let paths = ref 0 in
  let baseline = ref Measures.zero in
  let baseline_len = ref 0 in
  let natural_swallow = ref false in
  let completed = ref [] in
  while (not (Queue.is_empty queue)) && !paths < config.max_paths do
    let plan = Queue.take queue in
    incr paths;
    let ctx, ending = run_variant ~config v ~plan ~probe_at:(-1) in
    let steps = Sym_mem.steps ctx in
    let is_baseline = plan = [] in
    if is_baseline then begin
      (match ending with
      | P_raised e -> raise e
      | P_cut _ ->
        failwith "Analyze: solo contention-free execution did not terminate"
      | P_done -> ());
      baseline := sample_of_steps steps;
      baseline_len := List.length steps
    end;
    let infeasible =
      match ending with P_raised _ -> not is_baseline | _ -> false
    in
    if not infeasible then begin
      if swallowed ctx ending then natural_swallow := true;
      let cycle = Option.value ~default:[] (Sym_mem.spin_cycle ctx) in
      let ended = match ending with P_done -> true | P_cut _ | P_raised _ -> false in
      let keys = merge_path g ~baseline:is_baseline ~ended ~cycle steps in
      if ended then completed := keys :: !completed;
      if List.length plan < config.max_forks then begin
        let last =
          match List.rev plan with [] -> -1 | (i, _) :: _ -> i
        in
        List.iter
          (fun (i, value) ->
            if i > last then begin
              let child = plan @ [ (i, value) ] in
              if not (Hashtbl.mem seen_plans child) then begin
                Hashtbl.add seen_plans child ();
                Queue.add child queue
              end
            end)
          (Sym_mem.alternatives ctx)
      end
    end
  done;
  (g, !baseline, !baseline_len, !paths, List.rev !completed, !natural_swallow)

(* The replay-safety probe: discontinue each baseline access in turn and
   check the exception escapes (the process really stops). *)
let probe_replay_safe ~config (v : Subjects.variant) ~len =
  let safe = ref true in
  for k = 0 to len - 1 do
    if !safe then begin
      let ctx, ending = run_variant ~config v ~plan:[] ~probe_at:k in
      if swallowed ctx ending then safe := false
    end
  done;
  !safe

let analyze_variant ~config (v : Subjects.variant) =
  let g, baseline, baseline_len, paths, completed, natural_swallow =
    explore ~config v
  in
  let spin_regs = Hashtbl.create 8 in
  let w_line = Hashtbl.create 8 in
  let w_cycle = Hashtbl.create 8 in
  let max_width = ref 0 in
  Hashtbl.iter
    (fun _ n ->
      max_width := max !max_width n.n_width;
      if n.n_cycle && n.n_observes then
        Hashtbl.replace spin_regs n.n_reg n.n_name;
      if n.n_write then
        Hashtbl.replace (if n.n_cycle then w_cycle else w_line) n.n_reg ())
    g.g_nodes;
  let keys h = List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) h []) in
  {
    vr_label = v.Subjects.v_label;
    vr_graph = g;
    vr_baseline = baseline;
    vr_paths = paths;
    vr_completed = completed;
    vr_spin_regs =
      List.sort compare
        (Hashtbl.fold (fun r name l -> (r, name) :: l) spin_regs []);
    vr_writes_line = keys w_line;
    vr_writes_cycle = keys w_cycle;
    vr_max_width = !max_width;
    vr_replay_safe =
      (not natural_swallow) && probe_replay_safe ~config v ~len:baseline_len;
  }

(* ---------- whole-subject classification ---------- *)

let spin_classify variants =
  let spins vr = vr.vr_spin_regs <> [] in
  if not (List.exists spins variants) then Wait_free
  else
    let written_in_remote_cycle vr (r, _) =
      List.exists
        (fun other ->
          other.vr_label <> vr.vr_label && List.mem r other.vr_writes_cycle)
        variants
    in
    if
      List.exists
        (fun vr -> List.exists (written_in_remote_cycle vr) vr.vr_spin_regs)
        variants
    then Spin_on_shared
    else Local_spin

let analyze ?(config = default_config) (subject : Subjects.t) =
  let variants = List.map (analyze_variant ~config) subject.Subjects.variants in
  {
    subject;
    variants;
    static_cf =
      List.fold_left
        (fun acc vr -> Measures.max_sample acc vr.vr_baseline)
        Measures.zero variants;
    nodes =
      List.fold_left (fun n vr -> n + Hashtbl.length vr.vr_graph.g_nodes) 0
        variants;
    edges =
      List.fold_left (fun n vr -> n + Hashtbl.length vr.vr_graph.g_edges) 0
        variants;
    max_width = List.fold_left (fun w vr -> max w vr.vr_max_width) 0 variants;
    spin_class = spin_classify variants;
    replay_safe = List.for_all (fun vr -> vr.vr_replay_safe) variants;
  }
