open Cfc_base

type verdict =
  | Protected
  | Read_read
  | Same_value_write
  | Failed_cas
  | Sync
  | Harmful

let verdict_name = function
  | Protected -> "protected"
  | Read_read -> "read-read"
  | Same_value_write -> "same-value-write"
  | Failed_cas -> "failed-cas"
  | Sync -> "sync"
  | Harmful -> "HARMFUL"

type party = {
  p_group : string;
  p_class : string;
  p_writes : bool;
  p_values : int list option;
  p_path : string;
}

type race = {
  r_reg : int;
  r_name : string;
  r_left : party;
  r_right : party;
  r_verdict : verdict;
  r_note : string;
}

type wakeup = {
  w_spinner : string;
  w_reg : int;
  w_name : string;
  w_writers : string list;
  w_suppressible : bool;
}

type liveness =
  | Starvation_free_candidate
  | Deadlock_free_candidate
  | Deadlock_risk
  | Unknown_liveness

let liveness_name = function
  | Starvation_free_candidate -> "starvation-free-candidate"
  | Deadlock_free_candidate -> "deadlock-free-candidate"
  | Deadlock_risk -> "DEADLOCK-RISK"
  | Unknown_liveness -> "unknown"

type semantics = Safe_ok | Regular_ok | Atomic_required

let semantics_name = function
  | Safe_ok -> "safe-ok"
  | Regular_ok -> "regular-ok"
  | Atomic_required -> "atomic-required"

type reg_verdict = {
  g_reg : int;
  g_name : string;
  g_width : int;
  g_readers : string list;
  g_writers : string list;
  g_semantics : semantics;
}

type t = {
  report : Analyze.report;
  concurrent : bool;
  races : race list;
  wakeups : wakeup list;
  liveness : liveness;
  registers : reg_verdict list;
}

(* The harness's critical-section witness (see Subjects.of_mutex_checked)
   is the one register the region annotations place entirely inside the
   mutual-exclusion region: its cross-process pairs are discharged by the
   protocol under analysis itself. *)
let protected_names = [ "cs.witness" ]

(* ---------- variant plumbing: groups, entries, reachability ---------- *)

(* The process a variant models: its label up to a ['/'] (consensus
   variants enumerate inputs per pid as "p0/in1").  Labels starting with
   'p' are concurrently running processes; the naming family's "seq%d"
   positions are sequential by construction and take no product. *)
let group_of_label l =
  match String.index_opt l '/' with
  | Some i -> String.sub l 0 i
  | None -> l

let is_process_group g = String.length g > 0 && g.[0] = 'p'

type vinfo = {
  vr : Analyze.variant_report;
  group : string;
  entry : Analyze.key option;
  succ : (Analyze.key, Analyze.key list) Hashtbl.t;
}

let vinfo_of (vr : Analyze.variant_report) =
  let g = vr.Analyze.vr_graph in
  let entry = ref None in
  Hashtbl.iter
    (fun k (n : Analyze.node) -> if n.Analyze.n_baseline = 0 then entry := Some k)
    g.Analyze.g_nodes;
  let succ = Hashtbl.create (Hashtbl.length g.Analyze.g_nodes) in
  Hashtbl.iter
    (fun (a, b) () ->
      Hashtbl.replace succ a
        (b :: Option.value ~default:[] (Hashtbl.find_opt succ a)))
    g.Analyze.g_edges;
  { vr; group = group_of_label vr.Analyze.vr_label; entry = !entry; succ }

let node_of v k = Hashtbl.find v.vr.Analyze.vr_graph.Analyze.g_nodes k

let render_node (n : Analyze.node) =
  Printf.sprintf "%s:%s@%d" n.Analyze.n_name n.Analyze.n_class n.Analyze.n_occ

(* A representative entry→target path (shortest, BFS parents), rendered
   for race reports.  Falls back to the bare node when the target is
   unreachable from the entry (contention-only node of a pruned path). *)
let render_path v target =
  match v.entry with
  | None -> render_node (node_of v target)
  | Some e ->
    let parent = Hashtbl.create 64 in
    let q = Queue.create () in
    Hashtbl.add parent e e;
    Queue.add e q;
    let found = ref (e = target) in
    while (not !found) && not (Queue.is_empty q) do
      let k = Queue.take q in
      List.iter
        (fun k' ->
          if not (Hashtbl.mem parent k') then begin
            Hashtbl.add parent k' k;
            if k' = target then found := true else Queue.add k' q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt v.succ k))
    done;
    if not !found then render_node (node_of v target)
    else begin
      let rec walk k acc =
        let p = Hashtbl.find parent k in
        if p = k then k :: acc else walk p (k :: acc)
      in
      let keys = walk target [] in
      let keys =
        (* Elide the middle of long paths; ends carry the story. *)
        let n = List.length keys in
        if n <= 8 then List.map Option.some keys
        else
          List.filteri (fun i _ -> i < 4 || i >= n - 3) keys
          |> List.map Option.some
          |> fun l ->
          List.concat [ List.filteri (fun i _ -> i < 4) l; [ None ];
                        List.filteri (fun i _ -> i >= 4) l ]
      in
      String.concat " -> "
        (List.map
           (function None -> "..." | Some k -> render_node (node_of v k))
           keys)
    end

(* ---------- per-(process, register, class) aggregation ---------- *)

type agg = {
  mutable a_write : bool;
  mutable a_observes : bool;
  mutable a_vals : int list;
  mutable a_exact : bool;
  mutable a_rep : (vinfo * Analyze.key) option;  (* prefers baseline nodes *)
  mutable a_rep_baseline : bool;
}

let aggregate vinfos =
  let by_cls : (string * int * string, agg) Hashtbl.t = Hashtbl.create 64 in
  let reg_names = Hashtbl.create 16 in
  List.iter
    (fun v ->
      Hashtbl.iter
        (fun k (n : Analyze.node) ->
          Hashtbl.replace reg_names n.Analyze.n_reg
            (n.Analyze.n_name, n.Analyze.n_width);
          let key = (v.group, n.Analyze.n_reg, n.Analyze.n_class) in
          let a =
            match Hashtbl.find_opt by_cls key with
            | Some a -> a
            | None ->
              let a =
                { a_write = false; a_observes = false; a_vals = [];
                  a_exact = true; a_rep = None; a_rep_baseline = false }
              in
              Hashtbl.add by_cls key a;
              a
          in
          a.a_write <- a.a_write || n.Analyze.n_write;
          a.a_observes <- a.a_observes || n.Analyze.n_observes;
          if n.Analyze.n_write then
            if not n.Analyze.n_wvals_exact then a.a_exact <- false
            else
              List.iter
                (fun v ->
                  if not (List.mem v a.a_vals) then a.a_vals <- v :: a.a_vals)
                n.Analyze.n_wvals;
          let is_base = n.Analyze.n_baseline >= 0 in
          if a.a_rep = None || (is_base && not a.a_rep_baseline) then begin
            a.a_rep <- Some (v, k);
            a.a_rep_baseline <- is_base
          end)
        v.vr.Analyze.vr_graph.Analyze.g_nodes)
    vinfos;
  (by_cls, reg_names)

(* ---------- pass 2 support: volatile guards and suppressibility ---------- *)

(* A register is a volatile guard when at least two processes blind-write
   it on their contention-free baseline paths and the written values are
   not provably one common value: whichever process writes last wins, in
   any interleaving, with no observation in between to order them. *)
let volatile_guards vinfos =
  let per_reg = Hashtbl.create 16 in
  List.iter
    (fun v ->
      Hashtbl.iter
        (fun _ (n : Analyze.node) ->
          if
            n.Analyze.n_class = "write"
            && n.Analyze.n_baseline >= 0
            && not n.Analyze.n_observes
          then begin
            let groups, vals, exact =
              Option.value ~default:([], [], true)
                (Hashtbl.find_opt per_reg n.Analyze.n_reg)
            in
            let groups =
              if List.mem v.group groups then groups else v.group :: groups
            in
            let vals = n.Analyze.n_wvals @ vals in
            let exact = exact && n.Analyze.n_wvals_exact in
            Hashtbl.replace per_reg n.Analyze.n_reg (groups, vals, exact)
          end)
        v.vr.Analyze.vr_graph.Analyze.g_nodes)
    vinfos;
  Hashtbl.fold
    (fun reg (groups, vals, exact) acc ->
      if List.length groups < 2 then acc
      else if exact && List.length (List.sort_uniq compare vals) <= 1 then acc
      else reg :: acc)
    per_reg []

(* Can overwriting guard register [g] steer [v] onto a completed path
   that never performs the write at [wkey]?  Decided over the {e exact}
   explored completed paths, not the merged graph: merging fabricates
   cross-path walks (a fast-path prefix stitched to a slow-path suffix
   through a shared node) that no execution follows, and graph
   reachability over them flags unconditional unlock writes as
   avoidable.  A completed path that never executes [wkey] but does
   observe [g] is a real witness: the adversarial injection that drove
   the explorer down it is precisely a remote overwrite of [g]. *)
let suppressible v ~wkey ~guard =
  List.exists
    (fun path ->
      (not (List.mem wkey path))
      && List.exists
           (fun k ->
             let n = node_of v k in
             n.Analyze.n_reg = guard && n.Analyze.n_observes)
           path)
    v.vr.Analyze.vr_completed

(* The values a variant's busy-wait on [reg] was observed rejecting. *)
let spin_values v reg =
  Hashtbl.fold
    (fun _ (n : Analyze.node) (vals, exact) ->
      if n.Analyze.n_reg = reg && n.Analyze.n_cycle && n.Analyze.n_observes
      then (n.Analyze.n_spinvals @ vals, exact && n.Analyze.n_spinvals_exact)
      else (vals, exact))
    v.vr.Analyze.vr_graph.Analyze.g_nodes ([], true)

(* ---------- the passes ---------- *)

let of_report ?(config = Analyze.default_config) (report : Analyze.report) =
  let vinfos = List.map vinfo_of report.Analyze.variants in
  let groups = List.sort_uniq compare (List.map (fun v -> v.group) vinfos) in
  let concurrent =
    List.length groups >= 2 && List.for_all is_process_group groups
  in
  let truncated =
    List.exists
      (fun v -> v.vr.Analyze.vr_paths >= config.Analyze.max_paths)
      vinfos
  in
  let by_cls, reg_names = aggregate vinfos in
  let protected_reg reg =
    match Hashtbl.find_opt reg_names reg with
    | Some (name, _) -> List.mem name protected_names
    | None -> false
  in
  if not concurrent then begin
    (* Sequential variants: no two accesses ever overlap.  Liveness is
       only claimable when no path can spin at all. *)
    let liveness =
      if truncated then Unknown_liveness
      else if report.Analyze.spin_class = Analyze.Wait_free then
        Starvation_free_candidate
      else Unknown_liveness
    in
    let registers =
      Hashtbl.fold
        (fun reg (name, width) acc ->
          { g_reg = reg; g_name = name; g_width = width; g_readers = [];
            g_writers = []; g_semantics = Safe_ok }
          :: acc)
        reg_names []
      |> List.sort (fun a b -> compare a.g_reg b.g_reg)
    in
    { report; concurrent; races = []; wakeups = []; liveness; registers }
  end
  else begin
    let volatile = volatile_guards vinfos in
    (* Pass 2: one wakeup record per (spinning variant, spun register),
       plus the corroborated lost-wakeup promotions for pass 1. *)
    let promotions = ref [] in
    (* A spin on a register no other process ever writes is a phantom:
       the injections that sustained it model remote writes that cannot
       occur in any real execution (the solo explorer is value- and
       writer-blind; the product pass is where writer existence is
       known).  Such spins are dropped rather than reported. *)
    let remotely_written v reg =
      List.exists
        (fun w ->
          w.group <> v.group
          && Hashtbl.fold
               (fun _ (n : Analyze.node) acc ->
                 acc || (n.Analyze.n_reg = reg && n.Analyze.n_write))
               w.vr.Analyze.vr_graph.Analyze.g_nodes false)
        vinfos
    in
    let wakeups =
      List.concat_map
        (fun v ->
          List.filter_map
            (fun (reg, name) ->
              if not (remotely_written v reg) then None
              else
              let spinvals, spin_exact = spin_values v reg in
              let breaking = ref [] in
              List.iter
                (fun w ->
                  if w.group <> v.group then
                    Hashtbl.iter
                      (fun k (n : Analyze.node) ->
                        if
                          n.Analyze.n_reg = reg && n.Analyze.n_write
                          && ((not spin_exact)
                             || (not n.Analyze.n_wvals_exact)
                             || List.exists
                                  (fun x -> not (List.mem x spinvals))
                                  n.Analyze.n_wvals)
                        then breaking := (w, k) :: !breaking)
                      w.vr.Analyze.vr_graph.Analyze.g_nodes)
                vinfos;
              let suppressed_by (w, k) =
                List.find_opt
                  (fun g -> g <> reg && suppressible w ~wkey:k ~guard:g)
                  (List.sort compare volatile)
              in
              let verdicts = List.map suppressed_by !breaking in
              let all_suppressible =
                !breaking <> [] && List.for_all Option.is_some verdicts
              in
              if all_suppressible then
                List.iter2
                  (fun (w, _) g ->
                    match g with
                    | Some g ->
                      promotions :=
                        ( g,
                          Printf.sprintf
                            "overwriting %s can suppress %s's wake-up of \
                             %s's busy-wait on %s"
                            (fst (Hashtbl.find reg_names g))
                            w.vr.Analyze.vr_label v.vr.Analyze.vr_label name )
                        :: !promotions
                    | None -> ())
                  !breaking verdicts;
              Some
                {
                  w_spinner = v.vr.Analyze.vr_label;
                  w_reg = reg;
                  w_name = name;
                  w_writers =
                    List.sort_uniq compare
                      (List.map (fun (w, _) -> w.group) !breaking);
                  w_suppressible = all_suppressible;
                })
            v.vr.Analyze.vr_spin_regs)
        vinfos
    in
    (* Pass 1: classify every cross-process pair on every register. *)
    let party group reg cls =
      let a = Hashtbl.find by_cls (group, reg, cls) in
      {
        p_group = group;
        p_class = cls;
        p_writes = a.a_write;
        p_values =
          (if a.a_exact then Some (List.sort_uniq compare a.a_vals) else None);
        p_path =
          (match a.a_rep with
          | Some (v, k) -> render_path v k
          | None -> "?");
      }
    in
    let agg_of group reg cls = Hashtbl.find by_cls (group, reg, cls) in
    let classes_on =
      let tbl = Hashtbl.create 64 in
      Hashtbl.iter
        (fun (group, reg, cls) _ ->
          Hashtbl.replace tbl (group, reg)
            (cls :: Option.value ~default:[] (Hashtbl.find_opt tbl (group, reg))))
        by_cls;
      tbl
    in
    let races = ref [] in
    let regs =
      List.sort compare (Hashtbl.fold (fun r _ acc -> r :: acc) reg_names [])
    in
    List.iter
      (fun reg ->
        let rec pairs = function
          | [] -> ()
          | ga :: rest ->
            List.iter
              (fun gb ->
                match
                  ( Hashtbl.find_opt classes_on (ga, reg),
                    Hashtbl.find_opt classes_on (gb, reg) )
                with
                | Some cas, Some cbs ->
                  List.iter
                    (fun ca ->
                      List.iter
                        (fun cb ->
                          let aa = agg_of ga reg ca
                          and ab = agg_of gb reg cb in
                          let verdict =
                            if protected_reg reg then Protected
                            else if not (aa.a_write || ab.a_write) then
                              if ca = "cas" || cb = "cas" then Failed_cas
                              else Read_read
                            else if
                              ca = "write" && cb = "write"
                              && (not aa.a_observes)
                              && (not ab.a_observes)
                              && aa.a_exact && ab.a_exact
                              && List.length
                                   (List.sort_uniq compare
                                      (aa.a_vals @ ab.a_vals))
                                 <= 1
                            then Same_value_write
                            else Sync
                          in
                          races :=
                            {
                              r_reg = reg;
                              r_name = fst (Hashtbl.find reg_names reg);
                              r_left = party ga reg ca;
                              r_right = party gb reg cb;
                              r_verdict = verdict;
                              r_note = "";
                            }
                            :: !races)
                        (List.sort compare cbs))
                    (List.sort compare cas)
                | _ -> ())
              rest;
            pairs rest
        in
        pairs groups)
      regs;
    let races =
      List.rev_map
        (fun r ->
          if
            r.r_verdict = Sync
            && r.r_left.p_class = "write" && r.r_right.p_class = "write"
          then
            match List.find_opt (fun (g, _) -> g = r.r_reg) !promotions with
            | Some (_, note) -> { r with r_verdict = Harmful; r_note = note }
            | None -> r
          else r)
        !races
    in
    let liveness =
      if truncated then Unknown_liveness
      else if List.exists (fun w -> w.w_suppressible) wakeups then
        Deadlock_risk
      else if report.Analyze.spin_class = Analyze.Wait_free then
        Starvation_free_candidate
      else if List.exists (fun w -> w.w_writers = []) wakeups then
        Unknown_liveness
      else if report.Analyze.spin_class = Analyze.Local_spin then
        Starvation_free_candidate
      else Deadlock_free_candidate
    in
    (* Pass 3: per-register semantics demand. *)
    let registers =
      List.map
        (fun reg ->
          let name, width = Hashtbl.find reg_names reg in
          let readers = ref [] and writers = ref [] in
          Hashtbl.iter
            (fun (group, r, _) a ->
              if r = reg then begin
                if a.a_observes && not (List.mem group !readers) then
                  readers := group :: !readers;
                if a.a_write && not (List.mem group !writers) then
                  writers := group :: !writers
              end)
            by_cls;
          let readers = List.sort compare !readers
          and writers = List.sort compare !writers in
          let overlap =
            List.exists
              (fun r -> List.exists (fun w -> w <> r) writers)
              readers
          in
          let semantics =
            if protected_reg reg then Safe_ok
            else if not overlap then Safe_ok
            else if List.length writers <= 1 then Regular_ok
            else Atomic_required
          in
          { g_reg = reg; g_name = name; g_width = width;
            g_readers = readers; g_writers = writers; g_semantics = semantics })
        regs
    in
    { report; concurrent; races; wakeups; liveness; registers }
  end

let harmful t = List.filter (fun r -> r.r_verdict = Harmful) t.races

let has_pair t ~reg ~cls_a ~cls_b =
  List.exists
    (fun r ->
      r.r_reg = reg
      && ((r.r_left.p_class = cls_a && r.r_right.p_class = cls_b)
         || (r.r_left.p_class = cls_b && r.r_right.p_class = cls_a)))
    t.races

(* ---------- rendering ---------- *)

let print t =
  let s = t.report.Analyze.subject in
  Printf.printf "%s %s: liveness %s%s\n" s.Subjects.alg_name s.Subjects.config
    (liveness_name t.liveness)
    (if t.concurrent then "" else " (sequential variants; no product)");
  if t.wakeups <> [] then begin
    let tab =
      Texttab.create ~header:[ "spinner"; "spins on"; "woken by"; "wake-up" ]
    in
    List.iter
      (fun w ->
        Texttab.add_row tab
          [
            w.w_spinner;
            w.w_name;
            (if w.w_writers = [] then "-" else String.concat "," w.w_writers);
            (if w.w_suppressible then "SUPPRESSIBLE"
             else if w.w_writers = [] then "outside model"
             else "reliable");
          ])
      t.wakeups;
    Texttab.print tab
  end;
  if t.races <> [] then begin
    let tab =
      Texttab.create
        ~header:[ "register"; "pair"; "classes"; "values"; "verdict" ]
    in
    List.iter
      (fun r ->
        let vals p =
          match p.p_values with
          | Some [] | None -> "?"
          | Some vs -> String.concat "," (List.map string_of_int vs)
        in
        Texttab.add_row tab
          [
            r.r_name;
            Printf.sprintf "%s/%s" r.r_left.p_group r.r_right.p_group;
            Printf.sprintf "%s/%s" r.r_left.p_class r.r_right.p_class;
            (if r.r_left.p_writes || r.r_right.p_writes then
               Printf.sprintf "%s/%s" (vals r.r_left) (vals r.r_right)
             else "-");
            verdict_name r.r_verdict;
          ])
      t.races;
    Texttab.print tab
  end;
  let tab =
    Texttab.create ~header:[ "register"; "w"; "readers"; "writers"; "needs" ]
  in
  List.iter
    (fun g ->
      Texttab.add_row tab
        [
          g.g_name;
          string_of_int g.g_width;
          String.concat "," g.g_readers;
          String.concat "," g.g_writers;
          semantics_name g.g_semantics;
        ])
    t.registers;
  Texttab.print tab;
  List.iter
    (fun r ->
      Printf.printf "HARMFUL %s: %s\n  %s: %s\n  %s: %s\n" r.r_name r.r_note
        r.r_left.p_group r.r_left.p_path r.r_right.p_group r.r_right.p_path)
    (harmful t)
