open Cfc_base
open Cfc_mutex

(* A working test-and-set lock, except that the lock register is three
   bits wide while the declared atomicity claims single-bit accesses.
   Solo cost (2 steps, 1 register) and the spin structure are ordinary;
   the only defect is the width lie. *)
module Wide_spin : Mutex_intf.ALG = struct
  let name = "fixture-wide-spin"
  let supports (p : Mutex_intf.params) = p.n >= 1
  let atomicity _ = 1
  let predicted_cf_steps _ = Some 2
  let predicted_cf_registers _ = Some 1
  let recovery _ = None

  module Make (M : Mem_intf.MEM) = struct
    type t = { flag : M.reg }

    let create (_ : Mutex_intf.params) =
      { flag = M.alloc ~name:"ws.flag" ~width:3 ~init:0 () }

    let lock t ~me =
      ignore me;
      while M.fetch_and_store t.flag 1 <> 0 do
        M.pause ()
      done

    let unlock t ~me =
      ignore me;
      M.write t.flag 0
  end
end

(* A lock that tolerates a width violation: the first entry access writes
   2 into a 1-bit register and swallows the resulting Invalid_argument.
   Under the scheduler the same handler would swallow a replay
   discontinuation, so the process cannot be stopped mid-access — the
   shape that forces the model checker onto the replay engine. *)
module Swallows : Mutex_intf.ALG = struct
  let name = "fixture-swallows"
  let supports (p : Mutex_intf.params) = p.n >= 1
  let atomicity _ = 1
  let predicted_cf_steps _ = Some 2
  let predicted_cf_registers _ = Some 1
  let recovery _ = None

  module Make (M : Mem_intf.MEM) = struct
    type t = { bit : M.reg; narrow : M.reg }

    let create (_ : Mutex_intf.params) =
      {
        bit = M.alloc ~name:"sw.bit" ~width:1 ~init:0 ();
        narrow = M.alloc ~name:"sw.narrow" ~width:1 ~init:0 ();
      }

    let lock t ~me =
      ignore me;
      (try M.write t.narrow 2 with Invalid_argument _ -> ());
      while M.fetch_and_store t.bit 1 <> 0 do
        M.pause ()
      done

    let unlock t ~me =
      ignore me;
      M.write t.bit 0
  end
end

let wide_spin : Registry.alg = (module Wide_spin)
let swallows : Registry.alg = (module Swallows)

let subjects () =
  List.filter_map Fun.id
    [ Subjects.of_mutex ~n:2 wide_spin; Subjects.of_mutex ~n:2 swallows ]
