open Cfc_base
open Cfc_mutex

(* A working test-and-set lock, except that the lock register is three
   bits wide while the declared atomicity claims single-bit accesses.
   Solo cost (2 steps, 1 register) and the spin structure are ordinary;
   the only defect is the width lie. *)
module Wide_spin : Mutex_intf.ALG = struct
  let name = "fixture-wide-spin"
  let supports (p : Mutex_intf.params) = p.n >= 1
  let atomicity _ = 1
  let predicted_cf_steps _ = Some 2
  let predicted_cf_registers _ = Some 1
  let recovery _ = None

  module Make (M : Mem_intf.MEM) = struct
    type t = { flag : M.reg }

    let create (_ : Mutex_intf.params) =
      { flag = M.alloc ~name:"ws.flag" ~width:3 ~init:0 () }

    let lock t ~me =
      ignore me;
      while M.fetch_and_store t.flag 1 <> 0 do
        M.pause ()
      done

    let unlock t ~me =
      ignore me;
      M.write t.flag 0
  end
end

(* A lock that tolerates a width violation: the first entry access writes
   2 into a 1-bit register and swallows the resulting Invalid_argument.
   Under the scheduler the same handler would swallow a replay
   discontinuation, so the process cannot be stopped mid-access — the
   shape that forces the model checker onto the replay engine. *)
module Swallows : Mutex_intf.ALG = struct
  let name = "fixture-swallows"
  let supports (p : Mutex_intf.params) = p.n >= 1
  let atomicity _ = 1
  let predicted_cf_steps _ = Some 2
  let predicted_cf_registers _ = Some 1
  let recovery _ = None

  module Make (M : Mem_intf.MEM) = struct
    type t = { bit : M.reg; narrow : M.reg }

    let create (_ : Mutex_intf.params) =
      {
        bit = M.alloc ~name:"sw.bit" ~width:1 ~init:0 ();
        narrow = M.alloc ~name:"sw.narrow" ~width:1 ~init:0 ();
      }

    let lock t ~me =
      ignore me;
      (try M.write t.narrow 2 with Invalid_argument _ -> ());
      while M.fetch_and_store t.bit 1 <> 0 do
        M.pause ()
      done

    let unlock t ~me =
      ignore me;
      M.write t.bit 0
  end
end

(* The lost-wakeup lock: a correct test-and-set core whose release is
   guarded by an owner register that every entry blind-writes with its
   own id.  Solo it is indistinguishable from a guarded TAS (the guard
   read always succeeds), and mutual exclusion even holds under
   contention — but a competitor's entry can overwrite [owner] between
   the holder's write and its release read, so the holder skips the
   [flag := 0] wake-up and every spinner starves.  Exactly the harmful
   race the solo analyzer cannot see and the product passes must. *)
module Lost_wakeup : Mutex_intf.ALG = struct
  let name = "fixture-lost-wakeup"
  let supports (p : Mutex_intf.params) = p.n >= 1
  let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.n
  let predicted_cf_steps _ = Some 4
  let predicted_cf_registers _ = Some 2
  let recovery _ = None

  module Make (M : Mem_intf.MEM) = struct
    type t = { owner : M.reg; flag : M.reg }

    let create (p : Mutex_intf.params) =
      {
        owner =
          M.alloc ~name:"lw.owner" ~width:(Ixmath.bits_needed p.n) ~init:0 ();
        flag = M.alloc ~name:"lw.flag" ~width:1 ~init:0 ();
      }

    let lock t ~me =
      M.write t.owner (me + 1);
      while M.fetch_and_store t.flag 1 <> 0 do
        M.pause ()
      done

    let unlock t ~me = if M.read t.owner = me + 1 then M.write t.flag 0
  end
end

(* The benign twin: byte-identical product structure, except every entry
   writes the {e same} constant into [owner], so the write/write race on
   it cannot change any release decision — the guard read always sees 1
   and the wake-up is unconditional in effect.  Must pass the race
   passes clean. *)
module Lost_wakeup_benign : Mutex_intf.ALG = struct
  let name = "fixture-lost-wakeup-benign"
  let supports (p : Mutex_intf.params) = p.n >= 1
  let atomicity (p : Mutex_intf.params) = Ixmath.bits_needed p.n
  let predicted_cf_steps _ = Some 4
  let predicted_cf_registers _ = Some 2
  let recovery _ = None

  module Make (M : Mem_intf.MEM) = struct
    type t = { owner : M.reg; flag : M.reg }

    let create (p : Mutex_intf.params) =
      {
        owner =
          M.alloc ~name:"lwb.owner" ~width:(Ixmath.bits_needed p.n) ~init:0 ();
        flag = M.alloc ~name:"lwb.flag" ~width:1 ~init:0 ();
      }

    let lock t ~me =
      ignore me;
      M.write t.owner 1;
      while M.fetch_and_store t.flag 1 <> 0 do
        M.pause ()
      done

    let unlock t ~me =
      ignore me;
      if M.read t.owner = 1 then M.write t.flag 0
  end
end

let wide_spin : Registry.alg = (module Wide_spin)
let swallows : Registry.alg = (module Swallows)
let lost_wakeup : Registry.alg = (module Lost_wakeup)
let lost_wakeup_benign : Registry.alg = (module Lost_wakeup_benign)

let subjects () =
  List.filter_map Fun.id
    [
      Subjects.of_mutex ~n:2 wide_spin;
      Subjects.of_mutex ~n:2 swallows;
      Subjects.of_mutex ~n:2 lost_wakeup;
      Subjects.of_mutex ~n:2 lost_wakeup_benign;
    ]
