(** Uniform packaging of every registered algorithm, of every family, as
    an analysis subject: the solo executions the contention-free
    definitions quantify over (per-pid for mutex/detection/consensus/
    renaming, per-sequential-position for naming, matching each
    harness), plus the declared closed forms and a hook to the harness's
    trace-measured value — so the three-way agreement
    static = closed form = measured is checked against the very same
    run population. *)

open Cfc_base

type family = Mutex | Detector | Naming | Consensus | Renaming

val family_name : family -> string

(** One solo execution: [context] runs are executed concretely and
    unrecorded (the completed predecessors of the §3.2 sequential-run
    measure — empty for the fresh-state families), then [body] is the
    measured execution. *)
type solo = { context : (unit -> unit) list; body : unit -> unit }

type variant = {
  v_label : string;
  make : Mem_intf.mem -> solo;
      (** Allocates a fresh instance on the given backend; called once
          per re-execution, so paths never share state. *)
}

type t = {
  family : family;
  alg_name : string;
  config : string;  (** e.g. ["n=8"] — display label for the table *)
  n : int;
  declared_atomicity : int option;
      (** the algorithm's [atomicity] (mutex/detectors), [1] for the
          bit-model families, [None] where the interface declares none *)
  predicted_steps : int option;
  predicted_registers : int option;
  variants : variant list;
  measured : unit -> Cfc_core.Measures.sample;
      (** the harness's trace-measured contention-free max *)
  dynamic_replay_safe : unit -> bool;
      (** [Scheduler.replay_safe] after a full contended round-robin run
          — the dynamic flag the static classification must agree
          with *)
}

(** Builders return [None] when the algorithm does not support the
    parameters. *)

val of_mutex : ?l:int -> n:int -> Cfc_mutex.Registry.alg -> t option

val of_mutex_checked : ?l:int -> n:int -> Cfc_mutex.Registry.alg -> t option
(** Like {!of_mutex}, but the solo mirrors the system
    [Mutex_harness.instantiate] actually model-checks: a critical-section
    witness register is allocated after the algorithm instance (so
    register ids align with the checked arena) and written/verified
    between [lock] and [unlock].  Use this — not {!of_mutex} — when
    deriving static facts (footprints, independence) about the checked
    system; its baseline measures include the witness accesses and must
    not be compared against the §2.2 closed forms. *)

val of_mutex_recovery :
  held:bool -> n:int -> Cfc_mutex.Registry.alg -> t option
(** The recovery path as a static subject, for recoverable locks
    ([None] when [A.recovery] is [None]).  The unrecorded [context]
    reproduces the shared state a crashed incarnation leaves behind —
    a completed [lock] for [held:true], a completed [lock]; [unlock]
    cycle for [held:false] — and the measured [body] is the restarted
    incarnation's [lock] re-entry, exactly what the Golab–Ramaraju
    model re-runs after a crash.  [predicted_steps]/[predicted_registers]
    are the algorithm's [recovery] closed forms for that crash mode, and
    [measured] is the componentwise max over the matching
    {!Cfc_core.Recovery_harness.solo_sweep} points (crashes in
    [Critical] for [held], in [Trying]/[Remainder] for [not-held]) — so
    the battery's three-way agreement covers recovery paths too.  The
    register count doubles as the static recovery RMR: the restarted
    incarnation's cache is cold, so each distinct register on the solo
    recovery path costs exactly one remote reference. *)

val of_detector : n:int -> Cfc_mutex.Registry.detector -> t option
val of_naming : n:int -> Cfc_naming.Registry.alg -> t option
val of_consensus : n:int -> Cfc_consensus.Registry.alg -> t option
val of_renaming : n:int -> Cfc_renaming.Registry.alg -> t

val registry : unit -> t list
(** The standard battery: every algorithm of every family registry
    (including the deliberately broken consensus constructions, which
    are contention-free-sound) at the standard analysis sizes
    (n ∈ {2, 8} for mutex/detectors, {2, 4, 8} for naming, consensus at
    its [n_max], renaming at n ∈ {2, 4}), plus both recovery subjects
    ({!of_mutex_recovery}) for every recoverable lock at n ∈ {2, 8}. *)
