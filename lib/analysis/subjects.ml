open Cfc_base
open Cfc_runtime
open Cfc_core

type family = Mutex | Detector | Naming | Consensus | Renaming

let family_name = function
  | Mutex -> "mutex"
  | Detector -> "detect"
  | Naming -> "naming"
  | Consensus -> "consensus"
  | Renaming -> "renaming"

type solo = { context : (unit -> unit) list; body : unit -> unit }
type variant = { v_label : string; make : Mem_intf.mem -> solo }

type t = {
  family : family;
  alg_name : string;
  config : string;
  n : int;
  declared_atomicity : int option;
  predicted_steps : int option;
  predicted_registers : int option;
  variants : variant list;
  measured : unit -> Measures.sample;
  dynamic_replay_safe : unit -> bool;
}

let of_mutex ?l ~n (module A : Cfc_mutex.Mutex_intf.ALG) =
  let p = Cfc_mutex.Mutex_intf.params ?l n in
  if not (A.supports p) then None
  else
    let variants =
      List.map
        (fun me ->
          {
            v_label = Printf.sprintf "p%d" me;
            make =
              (fun mem ->
                let module M = (val mem : Mem_intf.MEM) in
                let module L = A.Make (M) in
                let t = L.create p in
                {
                  context = [];
                  body =
                    (fun () ->
                      L.lock t ~me;
                      L.unlock t ~me);
                });
          })
        (Mutex_harness.sample_pids n)
    in
    Some
      {
        family = Mutex;
        alg_name = A.name;
        config =
          (match l with
          | None -> Printf.sprintf "n=%d" n
          | Some l -> Printf.sprintf "n=%d l=%d" n l);
        n;
        declared_atomicity = Some (A.atomicity p);
        predicted_steps = A.predicted_cf_steps p;
        predicted_registers = A.predicted_cf_registers p;
        variants;
        measured =
          (fun () ->
            (Mutex_harness.contention_free (module A) p).Mutex_harness.max);
        dynamic_replay_safe =
          (fun () ->
            let out =
              Mutex_harness.run ~pick:(Schedule.round_robin ()) (module A) p
            in
            Scheduler.replay_safe out.Runner.scheduler);
      }

(* The model-checked mutex system is not the bare [lock; unlock] solo the
   §2.2 measures quantify over: [Mutex_harness.instantiate] additionally
   allocates a critical-section witness register (after the algorithm
   instance, so ids shift by nothing) and exercises it between lock and
   unlock.  Static facts about the checked system — the independence
   relation the model checker's partial-order reduction consumes — must
   come from a subject with the same arena layout and the same access
   sequence, so this builder mirrors the harness body exactly (minus the
   region annotations, which perform no shared accesses). *)
let of_mutex_checked ?l ~n (module A : Cfc_mutex.Mutex_intf.ALG) =
  let p = Cfc_mutex.Mutex_intf.params ?l n in
  if not (A.supports p) then None
  else
    let variants =
      List.map
        (fun me ->
          {
            v_label = Printf.sprintf "p%d" me;
            make =
              (fun mem ->
                let module M = (val mem : Mem_intf.MEM) in
                let module L = A.Make (M) in
                let t = L.create p in
                let witness =
                  M.alloc ~name:"cs.witness"
                    ~width:(Ixmath.bits_needed (max 1 (n - 1)))
                    ~init:0 ()
                in
                {
                  context = [];
                  body =
                    (fun () ->
                      L.lock t ~me;
                      M.write witness me;
                      if M.read witness <> me then
                        raise (Mutex_harness.Critical_section_trampled me);
                      L.unlock t ~me);
                });
          })
        (Mutex_harness.sample_pids n)
    in
    Some
      {
        family = Mutex;
        alg_name = A.name;
        config = Printf.sprintf "n=%d checked" n;
        n;
        declared_atomicity = Some (A.atomicity p);
        predicted_steps = None;
        predicted_registers = None;
        variants;
        measured =
          (fun () ->
            (Mutex_harness.contention_free (module A) p).Mutex_harness.max);
        dynamic_replay_safe =
          (fun () ->
            let out =
              Mutex_harness.run ~pick:(Schedule.round_robin ()) (module A) p
            in
            Scheduler.replay_safe out.Runner.scheduler);
      }

(* The recovery path as a static subject: in the Golab–Ramaraju model a
   restarted process re-runs [lock] from the top against whatever the
   crashed incarnation left in shared memory.  The [context] mechanism
   reproduces exactly that persistent pre-crash state — concretely and
   unrecorded — and the recorded [body] is the recovery re-entry:
   [held] runs lock-after-lock (the crashed incarnation held the lock),
   [not_held] runs lock-after-lock+unlock (it did not).  The static
   measures of these subjects are the access-graph recovery costs,
   asserted by the battery against the algorithm's closed forms and the
   crash-point sweep's trace-measured paths; the register count doubles
   as the static recovery RMR (cold cache: every distinct register on
   the solo path is remote exactly once). *)
let of_mutex_recovery ~held ~n (module A : Cfc_mutex.Mutex_intf.ALG) =
  let p = Cfc_mutex.Mutex_intf.params n in
  if not (A.supports p) then None
  else
    match A.recovery p with
    | None -> None
    | Some forms ->
      let variants =
        List.map
          (fun me ->
            {
              v_label = Printf.sprintf "p%d" me;
              make =
                (fun mem ->
                  let module M = (val mem : Mem_intf.MEM) in
                  let module L = A.Make (M) in
                  let t = L.create p in
                  {
                    context =
                      (if held then [ (fun () -> L.lock t ~me) ]
                       else
                         [ (fun () -> L.lock t ~me);
                           (fun () -> L.unlock t ~me) ]);
                    body = (fun () -> L.lock t ~me);
                  });
            })
          (Mutex_harness.sample_pids n)
      in
      let crashed_in region =
        (* The sweep points whose measured path this subject models:
           crashes while holding for [held], crashes in the entry
           protocol for [not_held].  (Mid-exit crashes are ambiguous
           between the two and asserted separately by the core tests.) *)
        match (held, region) with
        | true, Cfc_runtime.Event.Critical -> true
        | false, (Cfc_runtime.Event.Trying | Cfc_runtime.Event.Remainder) ->
          true
        | _ -> false
      in
      Some
        {
          family = Mutex;
          alg_name = A.name;
          config =
            Printf.sprintf "n=%d recovery-%s" n
              (if held then "held" else "not-held");
          n;
          declared_atomicity = Some (A.atomicity p);
          predicted_steps =
            Some
              (if held then forms.Cfc_mutex.Mutex_intf.rec_steps_held
               else forms.Cfc_mutex.Mutex_intf.rec_steps_not_held);
          predicted_registers =
            Some
              (if held then forms.Cfc_mutex.Mutex_intf.rec_registers_held
               else forms.Cfc_mutex.Mutex_intf.rec_registers_not_held);
          variants;
          measured =
            (fun () ->
              List.fold_left
                (fun acc (pt : Recovery_harness.sweep_point) ->
                  match pt.Recovery_harness.outcome with
                  | Recovery_harness.Recovered { path; _ }
                    when crashed_in pt.Recovery_harness.crash_region ->
                    Measures.max_sample acc path
                  | _ -> acc)
                Measures.zero
                (Recovery_harness.solo_sweep (module A : Cfc_mutex.Mutex_intf.ALG) p));
          dynamic_replay_safe =
            (fun () ->
              let out =
                Mutex_harness.run ~pick:(Schedule.round_robin ()) (module A) p
              in
              Scheduler.replay_safe out.Runner.scheduler);
        }

let of_detector ~n (module D : Cfc_mutex.Mutex_intf.DETECTOR) =
  let p = Cfc_mutex.Mutex_intf.params n in
  if not (D.supports p) then None
  else
    let variants =
      List.map
        (fun me ->
          {
            v_label = Printf.sprintf "p%d" me;
            make =
              (fun mem ->
                let module M = (val mem : Mem_intf.MEM) in
                let module Det = D.Make (M) in
                let t = Det.create p in
                { context = []; body = (fun () -> ignore (Det.detect t ~me)) });
          })
        (Mutex_harness.sample_pids n)
    in
    Some
      {
        family = Detector;
        alg_name = D.name;
        config = Printf.sprintf "n=%d" n;
        n;
        declared_atomicity = Some (D.atomicity p);
        predicted_steps = D.predicted_cf_steps p;
        predicted_registers = None;
        variants;
        measured =
          (fun () ->
            (Detect_harness.contention_free (module D) p).Detect_harness.max);
        dynamic_replay_safe =
          (fun () ->
            let out =
              Detect_harness.run ~pick:(Schedule.round_robin ()) (module D) p
            in
            Scheduler.replay_safe out.Runner.scheduler);
      }

let of_naming ~n (module A : Cfc_naming.Naming_intf.ALG) =
  if not (A.supports ~n) then None
  else
    let variants =
      List.init n (fun pos ->
          {
            v_label = Printf.sprintf "seq%d" pos;
            make =
              (fun mem ->
                let module M = (val mem : Mem_intf.MEM) in
                let module N = A.Make (M) in
                let t = N.create ~n in
                {
                  context =
                    List.init pos (fun _ () -> ignore (N.run t));
                  body = (fun () -> ignore (N.run t));
                });
          })
    in
    Some
      {
        family = Naming;
        alg_name = A.name;
        config = Printf.sprintf "n=%d" n;
        n;
        declared_atomicity = Some 1;
        predicted_steps = A.predicted_cf_steps ~n;
        predicted_registers = A.predicted_cf_registers ~n;
        variants;
        measured =
          (fun () ->
            (Naming_harness.contention_free (module A) ~n).Naming_harness.max);
        dynamic_replay_safe =
          (fun () ->
            let out =
              Naming_harness.run ~pick:(Schedule.round_robin ()) (module A) ~n
            in
            Scheduler.replay_safe out.Runner.scheduler);
      }

let of_consensus ~n (module C : Cfc_consensus.Consensus_intf.ALG) =
  if n > C.n_max then None
  else
    let variants =
      List.concat_map
        (fun me ->
          List.map
            (fun value ->
              {
                v_label = Printf.sprintf "p%d/in%d" me value;
                make =
                  (fun mem ->
                    let module M = (val mem : Mem_intf.MEM) in
                    let module K = C.Make (M) in
                    let t = K.create ~n in
                    {
                      context = [];
                      body = (fun () -> ignore (K.propose t ~me ~value));
                    });
              })
            [ 0; 1 ])
        (List.init n Fun.id)
    in
    Some
      {
        family = Consensus;
        alg_name = C.name;
        config = Printf.sprintf "n=%d" n;
        n;
        declared_atomicity = Some 1;
        predicted_steps = C.predicted_cf_steps;
        predicted_registers = C.predicted_cf_registers;
        variants;
        measured =
          (fun () ->
            List.fold_left
              (fun acc inputs ->
                Measures.max_sample acc
                  (Consensus_harness.contention_free (module C) ~n ~inputs)
                    .Consensus_harness.max)
              Measures.zero
              [ Array.make n 0; Array.make n 1 ]);
        dynamic_replay_safe =
          (fun () ->
            let out =
              Consensus_harness.run ~pick:(Schedule.round_robin ()) (module C)
                ~n ~inputs:(Array.init n (fun i -> i land 1))
            in
            Scheduler.replay_safe out.Runner.scheduler);
      }

let of_renaming ~n (module R : Cfc_renaming.Renaming_intf.ALG) =
  let variants =
    List.init n (fun me ->
        {
          v_label = Printf.sprintf "p%d" me;
          make =
            (fun mem ->
              let module M = (val mem : Mem_intf.MEM) in
              let module G = R.Make (M) in
              let t = G.create ~n in
              { context = []; body = (fun () -> ignore (G.rename t ~me)) });
        })
  in
  {
    family = Renaming;
    alg_name = R.name;
    config = Printf.sprintf "n=%d" n;
    n;
    declared_atomicity = None;
    predicted_steps = R.predicted_cf_steps;
    predicted_registers = R.predicted_cf_registers;
    variants;
    measured =
      (fun () ->
        (Renaming_harness.contention_free (module R) ~n).Renaming_harness.max);
    dynamic_replay_safe =
      (fun () ->
        let out =
          Renaming_harness.run ~pick:(Schedule.round_robin ()) (module R) ~n
        in
        Scheduler.replay_safe out.Runner.scheduler);
  }

let registry () =
  List.filter_map Fun.id
    (List.concat_map
       (fun alg -> [ of_mutex ~n:2 alg; of_mutex ~n:8 alg ])
       Cfc_mutex.Registry.all
    @ List.concat_map
        (fun alg ->
          List.concat_map
            (fun n ->
              [ of_mutex_recovery ~held:true ~n alg;
                of_mutex_recovery ~held:false ~n alg ])
            [ 2; 8 ])
        Cfc_mutex.Registry.recoverable
    @ List.concat_map
        (fun d -> [ of_detector ~n:2 d; of_detector ~n:8 d ])
        Cfc_mutex.Registry.detectors
    @ List.concat_map
        (fun a -> [ of_naming ~n:2 a; of_naming ~n:4 a; of_naming ~n:8 a ])
        Cfc_naming.Registry.all
    @ List.map (fun a -> of_consensus ~n:2 a) Cfc_consensus.Registry.all
    @ [
        of_consensus ~n:2 Cfc_consensus.Registry.broken_rw;
        of_consensus ~n:3 Cfc_consensus.Registry.broken_three;
      ]
    @ List.concat_map
        (fun a -> [ Some (of_renaming ~n:2 a); Some (of_renaming ~n:4 a) ])
        Cfc_renaming.Registry.all)
