(** The symbolic backend: a third implementation of
    {!Cfc_base.Mem_intf.MEM} that executes an algorithm {e solo} and
    records every shared access, while letting a driver {e inject}
    adversarial register contents at chosen access indices — the
    "unconstrained read" forks of the static analyzer.

    State is held in an ordinary {!Cfc_runtime.Memory.t} arena and all
    semantic checks (widths, §3.1 operation models) are the runtime's
    own ({!Cfc_runtime.Register}), so the symbolic backend can never
    drift from the simulator's semantics.  Unlike {!Cfc_runtime.Sim_mem}
    no effects are performed: the algorithm runs in the analyzer's own
    stack, which is what makes bounded exhaustive forking cheap
    (thousands of re-executions per algorithm).

    An injection [(i, v)] means: immediately before the [i]-th recorded
    access, set the accessed register to [v] (as if a remote process had
    just written it); the access then executes concretely.  Re-running
    the same deterministic code with a prefix-compatible plan reaches
    the same indices, which is what makes plans replayable. *)

open Cfc_runtime

(** Classification tag of one recorded access. *)
type op =
  | O_read
  | O_write
  | O_field of int * int  (** index, field width *)
  | O_xchg
  | O_cas of bool  (** success *)
  | O_bit of Cfc_base.Ops.t

type step = {
  s_index : int;  (** position among the recorded accesses, from 0 *)
  s_reg : Register.t;
  s_op : op;
  s_value : int;
      (** observed pre-value for value-returning ops; written value for
          plain writes *)
  s_post : int;
      (** the register's content immediately after the access — what a
          writing access actually stored (equals [s_value] for pure
          reads and failed CAS) *)
  s_write : bool;  (** same convention as {!Cfc_runtime.Event.is_write} *)
  s_injected : bool;
}

val op_class : op -> string
(** Coarse label used for graph-node identity and cross-backend
    comparison ([O_cas true] and [O_cas false] share ["cas"]). *)

val step_sig : step -> int * string
(** [(register id, op class)] — the shape compared against the simulated
    backend's trace by the equivalence property. *)

type cut_reason =
  | Budget  (** the per-path step budget was exhausted *)
  | Spin  (** a busy-wait cycle was detected (see {!ctx} below) *)

exception Cut of cut_reason
(** Raised out of an access to end the current path.  Algorithms never
    catch it (asserted by the replay-safety pass itself: a process that
    swallows foreign exceptions is flagged). *)

type ctx

val create :
  ?max_steps:int ->
  ?max_period:int ->
  ?plan:(int * int) list ->
  ?probe_at:int ->
  unit ->
  ctx
(** A fresh symbolic context.  [plan] is the injection list (strictly
    increasing indices).  [probe_at] (default: none) raises
    {!probe_exn} {e instead of} performing the access with that index —
    the replay-safety probe, standing in for the scheduler discontinuing
    the process mid-access.  [max_steps] (default 2000) bounds the path;
    [max_period] (default 8) bounds the busy-wait patterns recognized:
    a cycle is declared when the last [3p] recorded accesses are three
    identical repetitions of a length-[p] pattern of
    (register, op, value). *)

val mem : ctx -> Cfc_base.Mem_intf.mem
(** The MEM instance backed by [ctx].  Accesses are recorded (and
    injections applied) only between {!start_recording} and the end of
    the run; before that, accesses execute concretely without being
    counted — used for the sequential-context prefix of the naming
    measure. *)

val arena : ctx -> Memory.t
val start_recording : ctx -> unit

val steps : ctx -> step list
(** Recorded accesses, in execution order. *)

val spin_cycle : ctx -> step list option
(** One period of the detected busy-wait cycle, oldest first;
    [Some _] iff the path ended with [Cut Spin]. *)

val alternatives : ctx -> (int * int) list
(** Fork opportunities discovered along this path: [(i, v)] such that
    injecting pre-value [v] at access [i] could change the execution
    (only value-returning accesses generate alternatives, and [v] ranges
    over {!candidate_values} minus the observed pre-value). *)

val raised_at : ctx -> int option
(** Index of the first access that raised (a genuine width/model
    violation, or the probe). *)

val swallowed : ctx -> bool
(** The process kept accessing shared memory (or terminated normally)
    after an access raised — it caught an exception that was not
    addressed to it, so discontinuing it mid-access would not stop it:
    the static face of [Scheduler.replay_safe = false]. *)

val probe_exn : exn
(** The exception injected by [probe_at].  It is an [Invalid_argument]
    (like every genuine register error), so an algorithm's handler
    cannot tell it from the real thing. *)

val is_probe : exn -> bool

val candidate_values : width:int -> int list
(** The adversarial value pool for a register of the given width: all
    values for widths up to {!exhaustive_width_limit} bits, else the
    corners [0; 1; 2; 2{^width}-1]. *)

val exhaustive_width_limit : int
