open Cfc_base
open Cfc_runtime

type op =
  | O_read
  | O_write
  | O_field of int * int
  | O_xchg
  | O_cas of bool
  | O_bit of Ops.t

type step = {
  s_index : int;
  s_reg : Register.t;
  s_op : op;
  s_value : int;
  s_post : int;
  s_write : bool;
  s_injected : bool;
}

let op_class = function
  | O_read -> "read"
  | O_write -> "write"
  | O_field _ -> "write-field"
  | O_xchg -> "xchg"
  | O_cas _ -> "cas"
  | O_bit b -> "bit:" ^ Ops.to_string b

let step_sig s = (s.s_reg.Register.id, op_class s.s_op)

type cut_reason = Budget | Spin

exception Cut of cut_reason

type ctx = {
  arena : Memory.t;
  max_steps : int;
  max_period : int;
  probe_at : int;
  mutable pending : (int * int) list;
  mutable steps_rev : step list;
  mutable nsteps : int;
  mutable recording : bool;
  mutable alts_rev : (int * int) list;
  mutable raised_at : int option;
  mutable after_raise : bool;
  mutable injected_now : bool;
  mutable spin : step list option;
}

let probe_msg = "symbolic replay-safety probe: access discontinued"
let probe_exn = Invalid_argument probe_msg

let is_probe = function
  | Invalid_argument m -> String.equal m probe_msg
  | _ -> false

let exhaustive_width_limit = 4

let candidate_values ~width =
  if width <= exhaustive_width_limit then List.init (1 lsl width) Fun.id
  else
    let top = if width >= 62 then max_int else (1 lsl width) - 1 in
    [ 0; 1; 2; top ]

let create ?(max_steps = 2000) ?(max_period = 8) ?(plan = []) ?(probe_at = -1)
    () =
  let rec increasing = function
    | (i, _) :: ((j, _) :: _ as rest) ->
      if i >= j then invalid_arg "Sym_mem.create: plan indices not increasing";
      increasing rest
    | [ _ ] | [] -> ()
  in
  increasing plan;
  {
    arena = Memory.create ();
    max_steps;
    max_period;
    probe_at;
    pending = plan;
    steps_rev = [];
    nsteps = 0;
    recording = false;
    alts_rev = [];
    raised_at = None;
    after_raise = false;
    injected_now = false;
    spin = None;
  }

let arena t = t.arena
let start_recording t = t.recording <- true
let steps t = List.rev t.steps_rev
let spin_cycle t = t.spin
let alternatives t = List.rev t.alts_rev
let raised_at t = t.raised_at
let swallowed t = t.after_raise

(* Bookkeeping shared by every recorded access: budget, the replay-safety
   probe, and the injection of an adversarial pre-value.  Returns [true]
   when the access is to be recorded (i.e. we are past
   [start_recording]). *)
let pre_access t r =
  if not t.recording then false
  else begin
    if t.raised_at <> None then t.after_raise <- true;
    if t.nsteps >= t.max_steps then raise (Cut Budget);
    let i = t.nsteps in
    if i = t.probe_at then begin
      t.nsteps <- i + 1;
      if t.raised_at = None then t.raised_at <- Some i;
      raise probe_exn
    end;
    (match t.pending with
    | (j, v) :: rest when j = i ->
      Register.restore r v;
      t.pending <- rest;
      t.injected_now <- true
    | _ -> t.injected_now <- false);
    true
  end

(* Run the semantic operation; a raise (width or model violation) still
   consumes the access index — in the simulator a failing access is a
   scheduler step that discontinues the process — and is remembered so
   that any later access proves the exception was swallowed. *)
let guarded t f =
  try f ()
  with
  | Cut _ as e -> raise e
  | e ->
    let i = t.nsteps in
    t.nsteps <- i + 1;
    if t.raised_at = None then t.raised_at <- Some i;
    raise e

let alts_for r op value =
  match op with
  | O_read | O_xchg | O_cas _ ->
    List.filter
      (fun v -> v <> value)
      (candidate_values ~width:r.Register.width)
  | O_bit b when Ops.returns_value b -> [ 1 - value ]
  | O_bit _ | O_write | O_field _ -> []

(* Busy-wait recognition: the last [3p] accesses are three identical
   repetitions of a length-[p] pattern of (register, op, value).  A
   deterministic solo process whose observations repeat is looping; one
   period is kept as the cycle. *)
let check_spin t =
  let same a b =
    a.s_reg.Register.id = b.s_reg.Register.id
    && a.s_op = b.s_op && a.s_value = b.s_value
  in
  let rec take k = function
    | _ when k = 0 -> Some []
    | [] -> None
    | x :: rest -> (
      match take (k - 1) rest with None -> None | Some l -> Some (x :: l))
  in
  let rec try_period p =
    if p > t.max_period then ()
    else
      match take (3 * p) t.steps_rev with
      | None -> ()
      | Some window ->
        let arr = Array.of_list window in
        let periodic = ref true in
        for k = 0 to (2 * p) - 1 do
          if not (same arr.(k) arr.(k + p)) then periodic := false
        done;
        if !periodic then begin
          t.spin <- Some (List.rev (List.filteri (fun i _ -> i < p) window));
          raise (Cut Spin)
        end
        else try_period (p + 1)
  in
  try_period 1

let record t r op value ~write =
  let i = t.nsteps in
  t.nsteps <- i + 1;
  let st =
    {
      s_index = i;
      s_reg = r;
      s_op = op;
      s_value = value;
      s_post = r.Register.value;
      s_write = write;
      s_injected = t.injected_now;
    }
  in
  t.steps_rev <- st :: t.steps_rev;
  List.iter (fun v -> t.alts_rev <- (i, v) :: t.alts_rev) (alts_for r op value);
  check_spin t

let mem t : Mem_intf.mem =
  (module struct
    type reg = Register.t

    let alloc ?name ~width ~init () = Memory.alloc ?name ~width ~init t.arena

    let alloc_bit ?name ~model ~init () =
      Memory.alloc ?name ~model ~width:1 ~init t.arena

    let alloc_array ?name ~width ~init k =
      Memory.alloc_array ?name ~width ~init t.arena k

    let alloc_bit_array ?name ~model ~init k =
      Memory.alloc_array ?name ~model ~width:1 t.arena ~init k

    let read r =
      if pre_access t r then begin
        let v = guarded t (fun () -> Register.read r) in
        record t r O_read v ~write:false;
        v
      end
      else Register.read r

    let write r v =
      if pre_access t r then begin
        guarded t (fun () -> Register.write r v);
        record t r O_write v ~write:true
      end
      else Register.write r v

    let write_field r ~index ~width v =
      if pre_access t r then begin
        guarded t (fun () -> Register.write_field r ~index ~width v);
        record t r (O_field (index, width)) v ~write:true
      end
      else Register.write_field r ~index ~width v

    let bit_op r op =
      if pre_access t r then begin
        let pre = r.Register.value in
        let ret = guarded t (fun () -> Register.bit_op r op) in
        let value = match ret with Some old -> old | None -> pre in
        record t r (O_bit op) value ~write:(Ops.writes op);
        ret
      end
      else Register.bit_op r op

    let fetch_and_store r v =
      if pre_access t r then begin
        let old = guarded t (fun () -> Register.fetch_and_store r v) in
        record t r O_xchg old ~write:true;
        old
      end
      else Register.fetch_and_store r v

    let compare_and_set r ~expected v =
      if pre_access t r then begin
        let pre = r.Register.value in
        let ok = guarded t (fun () -> Register.compare_and_set r ~expected v) in
        record t r (O_cas ok) pre ~write:ok;
        ok
      end
      else Register.compare_and_set r ~expected v

    let pause () = ()
  end : Mem_intf.MEM)
