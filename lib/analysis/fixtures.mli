(** Deliberately defective algorithms the lint gate must flag — the
    negative tests of the static analyzer.  They are never registered in
    {!Cfc_mutex.Registry}; only the analysis tests and the
    [cfc-tables lint --fixtures] gate see them. *)

val wide_spin : Cfc_mutex.Registry.alg
(** A test-and-set-style lock whose declared [atomicity] is 1 while its
    spin register is 3 bits wide — the atomicity-conformance pass must
    report the width excess.  Its closed forms are correct, so it
    produces exactly one violation. *)

val swallows : Cfc_mutex.Registry.alg
(** A lock that performs an out-of-width write under [try ... with
    Invalid_argument _ -> ()] and keeps going: the discontinuation
    exception of a replay would be swallowed the same way, so the static
    replay-safety pass must classify it unsafe (and the dynamic
    [Scheduler.replay_safe] flag agrees). *)

val subjects : unit -> Subjects.t list
(** Both fixtures packaged as analysis subjects (n = 2). *)
