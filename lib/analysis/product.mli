(** Pairwise product passes over the per-process access graphs.

    {!Analyze} executes every variant {e solo}, so its report certifies
    contention-free facts but is structurally blind to anything that only
    manifests when two processes run together.  This module closes that
    gap with a bounded product construction over the already-extracted
    graphs: every pair of distinct-process variants is overlaid
    register-by-register, yielding three static passes per subject.

    {b 1. Race classification.}  Every pair of accesses by two different
    processes to the same register is enumerated and classified.  Pairs
    discharged by the protocol itself — registers accessed only inside
    the mutual-exclusion region, statically the harness's
    critical-section witness (see DESIGN.md §2) — are [Protected];
    read/read overlaps, writes that provably store one common value, and
    CAS accesses that never succeed on any explored path are benign;
    everything else is a [Sync] race (the synchronization idiom the
    algorithm is built from — its register-semantics demand is what pass
    3 reports) unless pass 2 corroborates actual harm, which promotes it
    to [Harmful] with both access paths.

    {b 2. Spin-wakeup / liveness skeleton.}  For every busy-wait cycle
    {!Sym_mem} detected, the set of remote writes that can break it: a
    write by another process that can store a value outside the set the
    spin was observed rejecting.  A breaking write is {e suppressible}
    when it is guarded by an observation of a register that two processes
    blind-write with different values on their contention-free paths —
    overwriting that register can steer the writer onto a completed path
    that never performs the wake-up (the lost-wakeup shape).  A spin all
    of whose breaking writes are suppressible makes the subject
    [Deadlock_risk] and promotes the guard races to [Harmful]; otherwise
    the verdict follows the {!Analyze.spin_class}: no spins is
    wait-free, per-process spin registers bound bypass (the handoff
    shape) and yield [Starvation_free_candidate], spinning on a register
    written inside another process's cycle admits unbounded bypass and
    yields [Deadlock_free_candidate].

    {b 3. Weaker-register sensitivity.}  Per register: if no read by one
    process can overlap a write by another, safe registers suffice; if
    reads overlap the writes of a single writing process, regular
    registers suffice; otherwise atomic semantics are required — the
    prediction table ROADMAP item 3's checker is to confirm against the
    Just-Verification results. *)

type verdict =
  | Protected  (** discharged by the mutual-exclusion region *)
  | Read_read
  | Same_value_write  (** all writers provably store one common value *)
  | Failed_cas  (** a CAS that never succeeds on any explored path *)
  | Sync  (** the protocol's own synchronization race *)
  | Harmful  (** corroborated by the lost-wakeup analysis of pass 2 *)

val verdict_name : verdict -> string

(** One side of a race: the merged accesses of one process group on the
    raced register, with a representative control-flow path. *)
type party = {
  p_group : string;  (** process label, e.g. ["p0"] *)
  p_class : string;  (** {!Sym_mem.op_class} *)
  p_writes : bool;
  p_values : int list option;
      (** stored values when statically exact, [None] when unknown *)
  p_path : string;  (** rendered entry→access path *)
}

type race = {
  r_reg : int;
  r_name : string;
  r_left : party;
  r_right : party;
  r_verdict : verdict;
  r_note : string;  (** non-empty for [Harmful]: the corroboration *)
}

(** One spin cycle and its wake-up budget. *)
type wakeup = {
  w_spinner : string;  (** process label of the spinning variant *)
  w_reg : int;
  w_name : string;  (** spun-on register *)
  w_writers : string list;
      (** process labels owning a breaking write (can store a value the
          spin does not accept) *)
  w_suppressible : bool;
      (** every breaking write is guarded by a volatile register — the
          wake-up can be lost *)
}

type liveness =
  | Starvation_free_candidate
  | Deadlock_free_candidate
  | Deadlock_risk
  | Unknown_liveness

val liveness_name : liveness -> string

type semantics = Safe_ok | Regular_ok | Atomic_required

val semantics_name : semantics -> string

type reg_verdict = {
  g_reg : int;
  g_name : string;
  g_width : int;
  g_readers : string list;  (** process groups observing the register *)
  g_writers : string list;  (** process groups writing it *)
  g_semantics : semantics;
}

type t = {
  report : Analyze.report;
  concurrent : bool;
      (** variants model concurrently running processes (false for the
          naming family, whose variants are sequential positions — no
          product is taken and every register tolerates safe
          semantics) *)
  races : race list;  (** every cross-process pair, all verdicts *)
  wakeups : wakeup list;
  liveness : liveness;
  registers : reg_verdict list;
}

val of_report : ?config:Analyze.config -> Analyze.report -> t
(** [config] must be the one the report was analyzed under (used to
    detect truncated explorations, which force [Unknown_liveness]). *)

val harmful : t -> race list

val has_pair : t -> reg:int -> cls_a:string -> cls_b:string -> bool
(** Does the race set contain a pair on [reg] whose two operation
    classes are [{cls_a, cls_b}] (unordered)?  The coverage query the
    model-checker suite uses to pin the static race set against the
    dynamic conflicts observed at n=2. *)

val print : t -> unit
(** Render the three passes as tables on stdout. *)
