(** Two-process binary consensus from one test-and-set bit (the classic
    consensus-number-2 construction [Her91]).

    Each process publishes its proposal in its own register, then races
    on the bit: the test-and-set winner (old value 0) decides its own
    proposal; the loser reads the winner's register and adopts it.

    Contention-free cost: write own proposal, test-and-set (win), decide
    own value — 2 steps over 2 registers.  A loser pays one extra read.
    Wait-free and straight-line. *)

open Cfc_base

let name = "tas-consensus"
let model = Model.tas_only
let n_max = 2
let predicted_cf_steps = Some 2
let predicted_cf_registers = Some 2

module Make (M : Mem_intf.MEM) = struct
  type t = { race : M.reg; proposal : M.reg array }

  let create ~n =
    if n < 1 || n > n_max then invalid_arg "Tas_consensus.create: n";
    {
      race = M.alloc_bit ~name:"cons.race" ~model ~init:0 ();
      proposal = M.alloc_array ~name:"cons.prop" ~width:1 ~init:0 2;
    }

  let propose t ~me ~value =
    assert (me = 0 || me = 1);
    assert (value = 0 || value = 1);
    M.write t.proposal.(me) value;
    if M.bit_op t.race Ops.Test_and_set = Some 0 then value
    else M.read t.proposal.(1 - me)
end
