(** Registry of consensus algorithms, plus deliberately broken
    constructions used by the test suite to demonstrate (rather than
    cite) the classical limits: read/write registers cannot solve
    consensus, and one single-bit RMW object cannot take three processes
    past its consensus number of 2. *)

open Cfc_base

type alg = (module Consensus_intf.ALG)

let tas_consensus : alg = (module Tas_consensus)
let taf_consensus : alg = (module Taf_consensus)
let all : alg list = [ tas_consensus; taf_consensus ]

(** A plausible-but-wrong read/write "consensus": publish, then adopt the
    lexicographically first published proposal.  The bounded model checker
    exhibits a disagreeing interleaving — the executable face of the FLP /
    Herlihy consensus-number-1 limit for plain registers. *)
module Broken_rw : Consensus_intf.ALG = struct
  let name = "broken-rw-consensus"
  let model = Model.read_write
  let n_max = 2

  (* Solo: publish proposal, raise the written flag, read [written.(0)]
     and adopt — 4 steps either way; process 1 touches its own two
     registers plus [written.(0)], so the register max is 3.  (The
     defect is contended disagreement, not solo cost, so the closed
     forms are exact and the CF battery asserts them.) *)
  let predicted_cf_steps = Some 4
  let predicted_cf_registers = Some 3

  module Make (M : Mem_intf.MEM) = struct
    type t = { written : M.reg array; proposal : M.reg array }

    let create ~n =
      if n < 1 || n > 2 then invalid_arg "Broken_rw.create: n";
      {
        written = M.alloc_array ~name:"brw.w" ~width:1 ~init:0 2;
        proposal = M.alloc_array ~name:"brw.p" ~width:1 ~init:0 2;
      }

    let propose t ~me ~value =
      M.write t.proposal.(me) value;
      M.write t.written.(me) 1;
      if M.read t.written.(0) = 1 then M.read t.proposal.(0)
      else M.read t.proposal.(me)
  end
end

(** The naive 3-process extension of the test-and-set race: losers cannot
    tell {e who} won, so "adopt the other announced proposal" picks
    inconsistently.  The model checker finds the disagreement — the
    executable face of consensus number 2. *)
module Broken_three : Consensus_intf.ALG = struct
  let name = "broken-3p-tas-consensus"
  let model = Model.of_list [ Ops.Test_and_set; Ops.Read ]
  let n_max = 3

  (* Solo: publish, announce, win the race — 3 steps over 3 registers
     for every process; the losing branches only run under contention. *)
  let predicted_cf_steps = Some 3
  let predicted_cf_registers = Some 3

  module Make (M : Mem_intf.MEM) = struct
    type t = { race : M.reg; written : M.reg array; proposal : M.reg array }

    let create ~n =
      if n < 1 || n > 3 then invalid_arg "Broken_three.create: n";
      {
        race = M.alloc_bit ~name:"b3.race" ~model:Model.tas_only ~init:0 ();
        written = M.alloc_array ~name:"b3.w" ~width:1 ~init:0 3;
        proposal = M.alloc_array ~name:"b3.p" ~width:1 ~init:0 3;
      }

    let propose t ~me ~value =
      M.write t.proposal.(me) value;
      M.write t.written.(me) 1;
      if M.bit_op t.race Ops.Test_and_set = Some 0 then value
      else begin
        (* Guess the winner: first other process that has announced. *)
        let a = (me + 1) mod 3 and b = (me + 2) mod 3 in
        if M.read t.written.(a) = 1 then M.read t.proposal.(a)
        else M.read t.proposal.(b)
      end
  end
end

let broken_rw : alg = (module Broken_rw)
let broken_three : alg = (module Broken_three)
