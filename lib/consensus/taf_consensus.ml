(** Two-process binary consensus from one test-and-flip bit — the same
    race as {!Tas_consensus} with the §3.1 fetch-and-complement
    primitive: the first flipper observes 0 and wins.  Included to show
    the §3.3 model refinements carry over to consensus: any
    old-value-returning bit operation supports the race, while the
    non-returning operations cannot (see the model checker tests).

    Contention-free cost: 2 steps over 2 registers. *)

open Cfc_base

let name = "taf-consensus"
let model = Model.taf
let n_max = 2
let predicted_cf_steps = Some 2
let predicted_cf_registers = Some 2

module Make (M : Mem_intf.MEM) = struct
  type t = { race : M.reg; proposal : M.reg array }

  let create ~n =
    if n < 1 || n > n_max then invalid_arg "Taf_consensus.create: n";
    {
      race = M.alloc_bit ~name:"cons.race" ~model ~init:0 ();
      proposal = M.alloc_array ~name:"cons.prop" ~width:1 ~init:0 2;
    }

  let propose t ~me ~value =
    assert (me = 0 || me = 1);
    assert (value = 0 || value = 1);
    M.write t.proposal.(me) value;
    if M.bit_op t.race Ops.Test_and_flip = Some 0 then value
    else M.read t.proposal.(1 - me)
end
