(** Registry of consensus algorithms, plus deliberately broken
    constructions used to demonstrate the classical limits (see the
    implementation header). *)

type alg = (module Consensus_intf.ALG)

val tas_consensus : alg
val taf_consensus : alg
val all : alg list

val broken_rw : alg
(** A plausible-but-wrong read/write "consensus": the model checker
    exhibits a disagreeing interleaving (consensus number 1). *)

val broken_three : alg
(** The naive 3-process extension of the test-and-set race: losers
    cannot tell who won (consensus number 2). *)
