(** Two-process binary consensus from one test-and-set bit; see the
    implementation header. *)

include Consensus_intf.ALG
