(** Interfaces for wait-free binary consensus.

    The paper uses consensus as its running example when {e defining} the
    complexity measures (§1.2: "the contention-free register complexity
    of a consensus algorithm is the maximum number of different registers
    accessed by a process along runs in which, while this process is
    executing, all other processes have either decided, or failed, or not
    started").  This library makes those definitional examples
    executable: consensus algorithms over the same bit models, measured
    by the same harness machinery.

    A consensus algorithm must satisfy, in every run:
    - {e agreement}: no two processes decide differently;
    - {e validity}: the decision is some process's input;
    - {e wait-freedom}: every process decides in a bounded number of its
      own steps regardless of the others (including crashes).

    Single-bit read–modify–write objects have consensus number 2
    (Herlihy [Her91]), so the algorithms here are for two processes; the
    3-process impossibility is demonstrated — not just cited — by the
    bounded model checker driving every interleaving of the natural
    (incorrect) 3-process extension in the test suite. *)

open Cfc_base

module type ALG = sig
  val name : string

  val model : Model.t
  (** The bit operations required (plus plain read/write registers for
      the proposal values). *)

  val n_max : int
  (** Maximum number of processes the algorithm is correct for (2 for
      everything built from single-bit RMW, per its consensus number). *)

  val predicted_cf_steps : int option
  (** Exact solo-run step count, when known. *)

  val predicted_cf_registers : int option

  module Make (M : Mem_intf.MEM) : sig
    type t

    val create : n:int -> t
    (** Raises [Invalid_argument] if [n > n_max]. *)

    val propose : t -> me:int -> value:int -> int
    (** Run the protocol with input [value] ∈ {0, 1}; returns the decided
        value.  Call once per process. *)
  end
end
