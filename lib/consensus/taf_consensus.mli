(** Two-process binary consensus from one test-and-flip bit; see the
    implementation header. *)

include Consensus_intf.ALG
