(** A naming algorithm of Theorem 4; see the implementation header for
    the construction, its exact costs, and the correctness argument. *)

include Naming_intf.ALG
