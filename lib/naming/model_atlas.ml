open Cfc_base

type cell = Linear | Logarithmic

type classification =
  | Unsolvable
  | Bounds of {
      cf_register : cell;
      cf_step : cell;
      wc_register : cell;
      wc_step : cell;
      witness : string;
    }

let pp_cell ppf = function
  | Linear -> Format.pp_print_string ppf "n-1"
  | Logarithmic -> Format.pp_print_string ppf "log n"

(* A symmetry breaker both modifies the bit and returns its old value. *)
let breakers = [ Ops.Test_and_set; Ops.Test_and_reset; Ops.Test_and_flip ]

let classify m =
  let has op = Model.mem op m in
  if not (List.exists has breakers) then Unsolvable
  else begin
    let taf = has Ops.Test_and_flip in
    let set_and_reset = has Ops.Test_and_set && has Ops.Test_and_reset in
    let read = has Ops.Read in
    let wc_step = if taf then Logarithmic else Linear in
    let wc_register = if taf || set_and_reset then Logarithmic else Linear in
    let cf = if taf || set_and_reset || read then Logarithmic else Linear in
    let witness =
      if taf then "test-and-flip tree (Thm 4.1)"
      else if set_and_reset then "set/reset alternation tree (Thm 4.2)"
      else if read && has Ops.Test_and_set then
        "read+test-and-set search (Thm 4.4) / scan (Thm 4.3)"
      else if read then "dual of read+test-and-set search"
      else if has Ops.Test_and_set then "test-and-set scan (Thm 4.3)"
      else "dual of test-and-set scan"
    in
    Bounds { cf_register = cf; cf_step = cf; wc_register; wc_step; witness }
  end

let all () =
  List.init 256 (fun mask ->
      let m =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) Ops.all
        |> Model.of_list
      in
      (m, classify m))

let solvable_count () =
  List.length
    (List.filter (fun (_, c) -> c <> Unsolvable) (all ()))
