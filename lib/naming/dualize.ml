(** Model duality (§3.2): exchanging the roles of 0 and 1 turns an
    algorithm for model M into one for the dual model with identical
    complexity on every measure.  [Make] realizes the construction
    executably: it interposes a memory adapter that complements initial
    values and read results and maps every operation to its dual, so e.g.
    dualizing {!Tas_scan} yields a test-and-reset scan over bits initially
    1.  Tests use it to validate the paper's claim that dual models share
    all bounds. *)

open Cfc_base

(* A MEM transformer: bit registers allocated through it live in the dual
   world (complemented values, dual operations); wide registers pass
   through untouched. *)
module Dual_mem (M : Mem_intf.MEM) : Mem_intf.MEM with type reg = M.reg * bool =
struct
  (* [(r, dualized)]: [dualized] marks registers whose stored value is the
     complement of the abstract value. *)
  type reg = M.reg * bool

  let alloc ?name ~width ~init () = (M.alloc ?name ~width ~init (), false)

  let alloc_bit ?name ~model ~init () =
    (M.alloc_bit ?name ~model:(Model.dual model) ~init:(1 - init) (), true)

  let alloc_array ?name ~width ~init k =
    Array.map (fun r -> (r, false)) (M.alloc_array ?name ~width ~init k)

  let alloc_bit_array ?name ~model ~init k =
    Array.map
      (fun r -> (r, true))
      (M.alloc_bit_array ?name ~model:(Model.dual model) ~init:(1 - init) k)

  let read (r, dualized) =
    let v = M.read r in
    if dualized then 1 - v else v

  let write (r, dualized) v = M.write r (if dualized then 1 - v else v)

  let write_field (r, dualized) ~index ~width v =
    if dualized then invalid_arg "Dual_mem: write_field on a dualized bit"
    else M.write_field r ~index ~width v

  let bit_op (r, dualized) op =
    if dualized then
      Option.map (fun v -> 1 - v) (M.bit_op r (Ops.dual op))
    else M.bit_op r op

  let fetch_and_store (r, dualized) v =
    if dualized then invalid_arg "Dual_mem: fetch_and_store on a dualized bit"
    else M.fetch_and_store r v

  let compare_and_set (r, dualized) ~expected v =
    if dualized then invalid_arg "Dual_mem: compare_and_set on a dualized bit"
    else M.compare_and_set r ~expected v

  let pause = M.pause
end

module Make (A : Naming_intf.ALG) : Naming_intf.ALG = struct
  let name = A.name ^ "-dual"
  let model = Model.dual A.model
  let supports = A.supports
  let predicted_cf_steps = A.predicted_cf_steps
  let predicted_wc_steps = A.predicted_wc_steps
  let predicted_cf_registers = A.predicted_cf_registers
  let predicted_wc_registers = A.predicted_wc_registers

  module Make (M : Mem_intf.MEM) = struct
    module Inner = A.Make (Dual_mem (M))

    type t = Inner.t

    let create = Inner.create
    let run = Inner.run
  end
end

module Tar_scan = Make (Tas_scan)
(** The dual of {!Tas_scan}: a test-and-reset scan over bits initially 1 —
    the [{test-and-reset}] model, with the same [n - 1] tight bounds. *)
