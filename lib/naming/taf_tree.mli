(** Theorem 4, part 1: naming with test-and-flip in worst-case [log n]
    steps — tight on all four measures by Theorem 5.  See the
    implementation header for the alternation argument. *)

(** The tree walk parameterized by the register model, so the full
    read–modify–write column ({!Rmw_tree}) reuses it verbatim. *)
module MakeWith (_ : sig
  val name : string
  val model : Cfc_base.Model.t
end) : Naming_intf.ALG

include Naming_intf.ALG
