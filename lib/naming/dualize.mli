(** Model duality (§3.2), executable: transform an algorithm for model M
    into one for dual(M) with identical complexity on every measure, by
    complementing bit values and mapping each operation to its dual. *)

module Dual_mem (M : Cfc_base.Mem_intf.MEM) :
  Cfc_base.Mem_intf.MEM with type reg = M.reg * bool
(** The memory adapter: bit registers allocated through it live in the
    dual world; wide registers pass through untouched. *)

module Make (A : Naming_intf.ALG) : Naming_intf.ALG
(** [Make (A)] names itself [A.name ^ "-dual"] and declares
    [Model.dual A.model]. *)

module Tar_scan : Naming_intf.ALG
(** The dual of {!Tas_scan}: a test-and-reset scan over bits initially
    1 — the [{test-and-reset}] model, same [n - 1] tight bounds. *)
