(** Theorem 4, part 1: naming with [test-and-flip] in worst-case [log n]
    steps (tight on all four measures by Theorem 5).

    [n - 1] shared bits arranged as a balanced binary tree of depth
    [log n].  Each process walks root-to-leaf applying one test-and-flip
    per node: returned 0 goes left, 1 goes right; at a leaf numbered [f]
    the returned value picks between names [2f - 1] and [2f].

    Uniqueness: test-and-flip makes the sequence of values returned at a
    node alternate 0,1,0,1,…, so of the [k] processes that reach a node,
    exactly [⌈k/2⌉] descend left and [⌊k/2⌋] right; inductively at most
    two processes reach each leaf and they see different values there.

    The same tree solves the full read–modify–write column (the rmw model
    includes test-and-flip); {!Rmw_tree} instantiates it that way. *)

open Cfc_base

module MakeWith (Spec : sig
  val name : string
  val model : Model.t
end) =
struct
  let name = Spec.name
  let model = Spec.model
  let supports ~n = n >= 1 && Ixmath.is_pow2 n
  let predicted_cf_steps ~n = Some (Ixmath.ceil_log2 n)
  let predicted_wc_steps ~n = Some (Ixmath.ceil_log2 n)
  let predicted_cf_registers ~n = Some (Ixmath.ceil_log2 n)
  let predicted_wc_registers ~n = Some (Ixmath.ceil_log2 n)

  module Make (M : Mem_intf.MEM) = struct
    type t = { n : int; bits : M.reg array (* heap layout, index 1..n-1 *) }

    let create ~n =
      if not (Ixmath.is_pow2 n) then
        invalid_arg "Taf_tree.create: n must be a power of two";
      (* bits.(0) unused so that node i has children 2i and 2i+1 *)
      { n; bits = M.alloc_bit_array ~name:"taf" ~model:Spec.model ~init:0 n }

    let run t =
      if t.n = 1 then 1
      else begin
        let rec walk i =
          let v = Option.get (M.bit_op t.bits.(i) Ops.Test_and_flip) in
          if 2 * i >= t.n then begin
            (* [i] is a leaf; leaves are n/2 .. n-1, numbered 1 .. n/2. *)
            let f = i - (t.n / 2) + 1 in
            (2 * f) - 1 + v
          end
          else walk ((2 * i) + v)
        in
        walk 1
      end
  end
end

include MakeWith (struct
  let name = "taf-tree"
  let model = Model.taf
end)
