(** Theorem 4, part 4: naming with [read] + [test-and-set] in
    contention-free complexity Θ(log n).

    [n - 1] bits, initially 0.  A process descends the complete binary
    decision tree over positions 1..n-1 — [log n - 1] read probes at
    positions n/2, n/2 ± n/4, … — and test-and-sets the odd position the
    descent lands on as its [log n]-th step.  If that operation returns 1
    it falls back to the linear scan from the next index (as in
    {!Tas_scan}).

    In a contention-free (sequential) run the descent lands exactly on the
    least unclaimed index when that index is odd (the process finishes in
    exactly [log n] steps) and one short of it when it is even (one extra
    test-and-set; [log n + 1] steps, touching no new register because the
    claimed bit was one of the read probes).  So the exact contention-free
    complexity of this algorithm is [log n] registers and [log n + 1]
    steps; the paper's table reports both as [log n] — the step entry is
    asymptotic, and in fact no algorithm can do better: with read and
    test-and-set, a group of processes with identical histories shrinks by
    at most one terminating process per test-and-set probe, so at most
    [2^(k-1) + 1] processes can finish within [k] steps, forcing some
    contention-free run of length [≥ log n + 1] (see EXPERIMENTS.md).

    Why the fallback never breaks uniqueness of name [n]: bits only go
    0→1, and a process claims index [j] only having observed 1 at [j - 1]
    (or [j = 1]), so by induction on claim times the claimed set is a
    prefix at every moment; name [n] is taken only when all [n - 1] bits
    are claimed by the other [n - 1] processes — at most once. *)

open Cfc_base

let name = "tas-read-search"
let model = Model.tas_read
let supports ~n = n >= 1 && Ixmath.is_pow2 n

let predicted_cf_steps ~n =
  if n = 1 then Some 0
  else if n = 2 then Some 1
  else Some (Ixmath.ceil_log2 n + 1)

let predicted_wc_steps ~n =
  if n = 1 then Some 0 else Some (max 1 (n - 2 + Ixmath.ceil_log2 n))

let predicted_cf_registers ~n =
  if n = 1 then Some 0 else Some (Ixmath.ceil_log2 n)

let predicted_wc_registers ~n =
  if n = 1 then Some 0 else Some (max 1 (n - 1))

module Make (M : Mem_intf.MEM) = struct
  type t = { n : int; bits : M.reg array }

  let create ~n =
    if not (Ixmath.is_pow2 n) then
      invalid_arg "Tas_read_search.create: n must be a power of two";
    { n; bits = M.alloc_bit_array ~name:"bs" ~model ~init:0 (max 0 (n - 1)) }

  let tas t j = Option.get (M.bit_op t.bits.(j - 1) Ops.Test_and_set)

  let run t =
    if t.n = 1 then 1
    else begin
      (* Complete-tree descent: positions n/2, ±n/4, …, landing odd. *)
      let rec descend pos step =
        if step = 0 then pos
        else if M.read t.bits.(pos - 1) = 1 then descend (pos + step) (step / 2)
        else descend (pos - step) (step / 2)
      in
      let first = descend (t.n / 2) (t.n / 4) in
      let rec claim j =
        if j > t.n - 1 then t.n
        else if tas t j = 0 then j
        else claim (j + 1)
      in
      claim first
    end
end
