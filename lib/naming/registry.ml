(** First-class-module registry of the naming algorithms, organized by the
    paper's table columns. *)

type alg = (module Naming_intf.ALG)

let tas_scan : alg = (module Tas_scan)
let tas_read_search : alg = (module Tas_read_search)
let tas_tar_tree : alg = (module Tas_tar_tree)
let taf_tree : alg = (module Taf_tree)
let rmw_tree : alg = (module Rmw_tree)
let tar_scan : alg = (module Dualize.Tar_scan)

let all : alg list =
  [ tas_scan; tas_read_search; tas_tar_tree; taf_tree; rmw_tree; tar_scan ]

(** The algorithms realizing each column of the paper's naming table.  A
    column may need different algorithms for different cells (e.g. the
    read+tas+tar column gets its contention-free and worst-case-register
    bounds from different constructions); the harness takes the best value
    per cell. *)
let columns : (string * alg list) list =
  [ ("tas", [ tas_scan ]);
    ("read+tas", [ tas_read_search; tas_scan ]);
    ("read+tas+tar", [ tas_read_search; tas_tar_tree; tas_scan ]);
    ("taf", [ taf_tree ]);
    ("rmw", [ rmw_tree ]) ]

let find name_ : alg option =
  List.find_opt (fun (module A : Naming_intf.ALG) -> A.name = name_) all
