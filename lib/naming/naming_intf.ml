(** Interface for naming algorithms (§3): wait-free assignment of unique
    names from [1..n] to [n] initially identical processes communicating
    through shared bits supporting the operations of a {!Cfc_base.Model.t}.

    Processes are anonymous — [run] takes no process identity, so any two
    processes execute literally the same code (the symmetry that makes the
    problem non-trivial; the Theorem 5/6 lower-bound arguments rely on
    it).  Wait-freedom is exercised by the harness through crash
    injection: a run must assign unique names to all non-crashed
    participants no matter which processes stop. *)

open Cfc_base

module type ALG = sig
  val name : string

  val model : Model.t
  (** The operations the algorithm needs (its column in the paper's
      table). *)

  val supports : n:int -> bool
  (** Tree-based algorithms require [n] to be a power of two. *)

  (** Exact closed-form complexities where known ([n >= 2]); [None] when
      the algorithm has no published closed form for that measure. *)

  val predicted_cf_steps : n:int -> int option
  val predicted_wc_steps : n:int -> int option
  val predicted_cf_registers : n:int -> int option
  val predicted_wc_registers : n:int -> int option

  module Make (M : Mem_intf.MEM) : sig
    type t

    val create : n:int -> t
    (** Allocate the shared bits (outside process execution). *)

    val run : t -> int
    (** Executed by each participating process; returns its name in
        [1..n].  Identity-free by construction. *)
  end
end
