(** Theorem 4, part 3: naming with [test-and-set] alone — the trivial
    linear scan, worst-case step complexity [n - 1] (tight on all four
    measures in this model, Theorem 7).

    [n - 1] bits, initially 0.  Each process test-and-sets bit 1, 2, …
    until an operation returns 0 (it claims that index as its name) or the
    bits are exhausted (it takes name [n]).  Each bit returns 0 to exactly
    one process, so names are unique; straight-line per bit, hence
    wait-free. *)

open Cfc_base

let name = "tas-scan"
let model = Model.tas_only
let supports ~n = n >= 1
let predicted_cf_steps ~n = Some (max 1 (n - 1))
let predicted_wc_steps ~n = Some (max 1 (n - 1))
let predicted_cf_registers ~n = Some (max 1 (n - 1))
let predicted_wc_registers ~n = Some (max 1 (n - 1))

module Make (M : Mem_intf.MEM) = struct
  type t = { n : int; bits : M.reg array }

  let create ~n =
    { n; bits = M.alloc_bit_array ~name:"scan" ~model ~init:0 (max 0 (n - 1)) }

  let run t =
    let rec claim j =
      if j > t.n - 1 then t.n
      else if Option.get (M.bit_op t.bits.(j - 1) Ops.Test_and_set) = 0 then j
      else claim (j + 1)
    in
    claim 1
end
