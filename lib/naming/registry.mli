(** First-class-module registry of the naming algorithms, organized by
    the paper's table columns. *)

type alg = (module Naming_intf.ALG)

val tas_scan : alg
val tas_read_search : alg
val tas_tar_tree : alg
val taf_tree : alg
val rmw_tree : alg
val tar_scan : alg

val all : alg list

val columns : (string * alg list) list
(** The algorithms realizing each column of the paper's naming table;
    a column may need different algorithms for different cells, and the
    harness takes the best value per cell. *)

val find : string -> alg option
