(** The §3.3 exercise, done: a classification of all [2^8] operation
    models by the four naming complexity measures.

    The paper proves bounds for five models and "leaves it as an exercise
    for the reader to come up with bounds for the other models"; the
    classification below follows from the paper's own results plus
    duality:

    - {e Unsolvable}: a model whose every operation either never modifies
      the bit (skip, read) or never returns a value (write-0, write-1,
      flip) cannot break symmetry deterministically (the §3.1
      observation: identical processes stay identical under lockstep) —
      32 of the 256 models.
    - Otherwise the model contains a {e symmetry breaker} (test-and-set,
      test-and-reset, or test-and-flip) and naming is solvable; each
      measure is [n-1] or [Θ(log n)]:
      - worst-case step: logarithmic iff test-and-flip is available
        (Theorem 6 forces [n-1] without it, Theorem 4(1) achieves
        [log n] with it);
      - worst-case register: logarithmic iff test-and-flip, or both
        test-and-set and test-and-reset (Theorem 4(2)'s alternation
        tree); [n-1] otherwise (tight per the paper's table);
      - contention-free step and register: logarithmic iff the model has
        test-and-flip, both set+reset, or a breaker plus read (Theorems
        4(1,2,4) and duals); with a lone breaker and no read they stay
        [n-1] (Theorem 7 and its dual).

    Every logarithmic cell is witnessed by an algorithm in this
    repository (possibly through the {!Dualize} construction), which the
    test suite cross-checks by measurement. *)

open Cfc_base

type cell = Linear | Logarithmic

type classification =
  | Unsolvable
  | Bounds of {
      cf_register : cell;
      cf_step : cell;
      wc_register : cell;
      wc_step : cell;
      witness : string;  (** construction achieving the upper bounds *)
    }

val classify : Model.t -> classification

val all : unit -> (Model.t * classification) list
(** All 256 models with their classification, in mask order. *)

val solvable_count : unit -> int
val pp_cell : Format.formatter -> cell -> unit
