(** The full read–modify–write column of the naming table: the
    {!Taf_tree} walk over bits that support all eight operations —
    [log n] tight on all four measures. *)

include Taf_tree.MakeWith (struct
  let name = "rmw-tree"
  let model = Cfc_base.Model.rmw
end)
