(** Theorem 4, part 2: naming with [test-and-set] + [test-and-reset] whose
    worst-case {e register} complexity is [log n] (the step complexity
    stays Θ(n) in the worst case — that is the point of the table's third
    column).

    The {!Taf_tree} walk, but a node's test-and-flip is emulated by
    alternating test-and-set and test-and-reset until the test-and-set
    returns 0 (acts as flip 0→1) or the test-and-reset returns 1 (flip
    1→0).  The value of the last operation routes exactly as in the flip
    tree: successful set = "saw 0", successful reset = "saw 1".

    Per node, successful operations strictly alternate set/reset, so the
    counting argument of {!Taf_tree} applies verbatim: at most two
    processes per leaf, with different final values — names are unique.

    In a contention-free (sequential) run, process [k] spends 1 step per
    node when the bit is in the state its test-and-set expects and 2
    otherwise, so its contention-free step complexity is at most
    [2 log n] = O(log n); the table's [log n] entry for contention-free
    step complexity is achieved by the model's {!Tas_read_search}
    algorithm (a model richer in one measure may use a different
    algorithm per measure). *)

open Cfc_base

let name = "tas-tar-tree"
let model = Model.of_list [ Ops.Test_and_set; Ops.Test_and_reset ]
let supports ~n = n >= 1 && Ixmath.is_pow2 n
let predicted_cf_steps ~n = Some (2 * Ixmath.ceil_log2 n)
let predicted_wc_steps ~n:_ = None
let predicted_cf_registers ~n = Some (Ixmath.ceil_log2 n)
let predicted_wc_registers ~n = Some (Ixmath.ceil_log2 n)

module Make (M : Mem_intf.MEM) = struct
  type t = { n : int; bits : M.reg array }

  let create ~n =
    if not (Ixmath.is_pow2 n) then
      invalid_arg "Tas_tar_tree.create: n must be a power of two";
    { n; bits = M.alloc_bit_array ~name:"tt" ~model ~init:0 n }

  (* Emulated test-and-flip: the returned value of the last (successful)
     operation, as in the paper's proof of Theorem 4(2). *)
  let rec flip_emulated bit =
    if Option.get (M.bit_op bit Ops.Test_and_set) = 0 then 0
    else if Option.get (M.bit_op bit Ops.Test_and_reset) = 1 then 1
    else flip_emulated bit

  let run t =
    if t.n = 1 then 1
    else begin
      let rec walk i =
        let v = flip_emulated t.bits.(i) in
        if 2 * i >= t.n then (2 * (i - (t.n / 2) + 1)) - 1 + v
        else walk ((2 * i) + v)
      in
      walk 1
    end
end
