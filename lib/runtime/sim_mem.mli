(** The simulated {!Cfc_base.Mem_intf.MEM} backend.

    Allocation goes directly to a {!Memory.t} arena (algorithm creation
    happens outside process execution); every access performs an effect
    handled by the scheduler, so the scheduler fully controls interleaving
    and records every step. *)

val mem : Memory.t -> Cfc_base.Mem_intf.mem
(** A first-class [MEM] module whose registers live in the given arena.
    [read]/[write]/[bit_op] must only be called from code running under
    {!Proc.start} (i.e. inside a scheduled process); calling them outside
    raises [Effect.Unhandled]. *)
