(** Fault schedules for the crash–recovery model.

    A {!plan} is a list of timed fault points generalizing the old
    [crash_at] crash lists: a [Crash] fail-stops a process (local state
    lost, shared memory untouched), a later [Recover] of the same pid
    restarts its program from the top (Golab–Ramaraju crash–recovery).
    Plans are validated before a run: pids in range, no duplicates, and
    per-pid alternation crash / recover / crash / …  Faults scheduled at
    the same step apply in plan order, so [crash @@ k] followed by
    [recover @@ k] models an atomic crash–restart. *)

type kind = Crash | Recover

type point = {
  step : int;  (** scheduler step index just before which the fault fires *)
  pid : int;
  kind : kind;
}

type plan = point list

val crash : step:int -> pid:int -> point
val recover : step:int -> pid:int -> point

val of_crash_at : (int * int) list -> plan
(** Lift a legacy [crash_at] list of [(step, pid)] into a plan of crash
    points (no recoveries: fail-stop). *)

val validate : nprocs:int -> plan -> plan
(** Check a plan and return it sorted by step (stably, preserving plan
    order within a step).  Raises [Invalid_argument] with a descriptive
    message on: out-of-range or negative fields, exact duplicate points,
    crashing an already-crashed pid, or recovering a non-crashed pid. *)

val chaos : seed:int -> nprocs:int -> pairs:int -> horizon:int -> plan
(** Seeded random fault schedule: [pairs] crash–recovery pairs spread
    over roughly [horizon] scheduler steps.  Deterministic in [seed] and
    always passes {!validate}. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_point : Format.formatter -> point -> unit
val pp_plan : Format.formatter -> plan -> unit
