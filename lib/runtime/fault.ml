type kind = Crash | Recover

type point = { step : int; pid : int; kind : kind }

type plan = point list

let crash ~step ~pid = { step; pid; kind = Crash }
let recover ~step ~pid = { step; pid; kind = Recover }
let of_crash_at l = List.map (fun (step, pid) -> crash ~step ~pid) l

let pp_kind ppf = function
  | Crash -> Format.pp_print_string ppf "crash"
  | Recover -> Format.pp_print_string ppf "recover"

let pp_point ppf p =
  Format.fprintf ppf "%a p%d @@ step %d" pp_kind p.kind p.pid p.step

let pp_plan ppf plan =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_point)
    plan

let invalidf fmt = Format.kasprintf invalid_arg fmt

(* Sort by step, stably: two faults at the same step are applied in plan
   order, so [crash @ k; recover @ k] is a legal atomic crash–restart. *)
let sort plan = List.stable_sort (fun a b -> compare a.step b.step) plan

let validate ~nprocs plan =
  List.iter
    (fun p ->
      if p.pid < 0 || p.pid >= nprocs then
        invalidf "Fault.validate: %a: pid out of range (nprocs = %d)"
          pp_point p nprocs;
      if p.step < 0 then
        invalidf "Fault.validate: %a: negative step index" pp_point p)
    plan;
  (* Exact duplicates first: they would also fail the alternation check
     below, but deserve a more direct message. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen (p.step, p.pid, p.kind) then
        invalidf "Fault.validate: duplicate fault point %a" pp_point p;
      Hashtbl.add seen (p.step, p.pid, p.kind) ())
    plan;
  let plan = sort plan in
  (* Per pid, faults must alternate crash / recover starting with a
     crash: you cannot crash a process that is already crashed, nor
     recover one that is not. *)
  let crashed = Array.make nprocs false in
  List.iter
    (fun p ->
      match p.kind with
      | Crash ->
        if crashed.(p.pid) then
          invalidf
            "Fault.validate: %a: p%d is already crashed at that point \
             (missing an intervening recover)"
            pp_point p p.pid;
        crashed.(p.pid) <- true
      | Recover ->
        if not crashed.(p.pid) then
          invalidf
            "Fault.validate: %a: p%d is not crashed at that point \
             (recover must follow a crash)"
            pp_point p p.pid;
        crashed.(p.pid) <- false)
    plan;
  plan

let chaos ~seed ~nprocs ~pairs ~horizon =
  if nprocs <= 0 then invalid_arg "Fault.chaos: nprocs must be positive";
  if horizon <= 0 then invalid_arg "Fault.chaos: horizon must be positive";
  if pairs < 0 then invalid_arg "Fault.chaos: pairs must be non-negative";
  let st = Random.State.make [| seed; nprocs; pairs; horizon |] in
  (* Per pid, fault points are generated left to right, so alternation
     holds by construction and [validate] always accepts the result. *)
  let next = Array.make nprocs 0 in
  let span = max 1 (horizon / max 1 pairs) in
  let plan = ref [] in
  for _ = 1 to pairs do
    let pid = Random.State.int st nprocs in
    let c = next.(pid) + Random.State.int st span in
    let r = c + Random.State.int st span in
    (* Strictly past [r]: with many pairs per pid the span draws can be
       0, and a cursor left at [r] would let the next pair duplicate a
       fault point (which [validate] rejects). *)
    next.(pid) <- r + 1;
    plan := recover ~step:r ~pid :: crash ~step:c ~pid :: !plan
  done;
  validate ~nprocs (List.rev !plan)
