open Cfc_base

type region = Remainder | Trying | Critical | Exiting | Decided of int | Halted

let region_equal a b =
  match (a, b) with
  | Remainder, Remainder | Trying, Trying | Critical, Critical
  | Exiting, Exiting | Halted, Halted -> true
  | Decided x, Decided y -> x = y
  | (Remainder | Trying | Critical | Exiting | Decided _ | Halted), _ -> false

let pp_region ppf = function
  | Remainder -> Format.pp_print_string ppf "remainder"
  | Trying -> Format.pp_print_string ppf "trying"
  | Critical -> Format.pp_print_string ppf "critical"
  | Exiting -> Format.pp_print_string ppf "exiting"
  | Decided v -> Format.fprintf ppf "decided(%d)" v
  | Halted -> Format.pp_print_string ppf "halted"

type access_kind =
  | A_read of int
  | A_write of int
  | A_field of int * int * int
  | A_xchg of int * int
  | A_cas of int * int * bool
  | A_bit of Ops.t * int option

let is_write = function
  | A_read _ -> false
  | A_write _ | A_field _ | A_xchg _ -> true
  | A_cas (_, _, success) -> success
  | A_bit (op, _) -> Ops.writes op

let is_read k = not (is_write k)

type t = { seq : int; pid : int; body : body }

and body =
  | Access of Register.t * access_kind
  | Region_change of region
  | Crash
  | Recover

let pp ppf e =
  match e.body with
  | Access (r, A_read v) ->
    Format.fprintf ppf "%4d p%d read  %s -> %d" e.seq e.pid r.Register.name v
  | Access (r, A_write v) ->
    Format.fprintf ppf "%4d p%d write %s := %d" e.seq e.pid r.Register.name v
  | Access (r, A_field (index, width, v)) ->
    Format.fprintf ppf "%4d p%d write %s[%d:%d] := %d" e.seq e.pid
      r.Register.name index width v
  | Access (r, A_xchg (v, old)) ->
    Format.fprintf ppf "%4d p%d xchg  %s := %d -> %d" e.seq e.pid
      r.Register.name v old
  | Access (r, A_cas (expected, v, success)) ->
    Format.fprintf ppf "%4d p%d cas   %s (%d -> %d) %s" e.seq e.pid
      r.Register.name expected v
      (if success then "ok" else "failed")
  | Access (r, A_bit (op, ret)) ->
    Format.fprintf ppf "%4d p%d %s %s%s" e.seq e.pid (Ops.to_string op)
      r.Register.name
      (match ret with None -> "" | Some v -> Printf.sprintf " -> %d" v)
  | Region_change reg ->
    Format.fprintf ppf "%4d p%d enters %a" e.seq e.pid pp_region reg
  | Crash -> Format.fprintf ppf "%4d p%d CRASH" e.seq e.pid
  | Recover -> Format.fprintf ppf "%4d p%d RECOVER" e.seq e.pid
