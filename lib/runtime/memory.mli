(** A shared-memory arena: allocator and registry of {!Register.t} cells.

    One arena corresponds to one run configuration.  Allocation happens when
    an algorithm instance is created (outside process execution); the
    registers then constitute the run's shared state.  [reset] restores all
    initial values, which together with a deterministic schedule gives
    deterministic replay (used by the model checker). *)

type t

val create : unit -> t

val alloc :
  ?name:string -> ?model:Cfc_base.Model.t -> width:int -> init:int -> t ->
  Register.t
(** Allocate a fresh register.  Default [name] is ["r<id>"]. *)

val alloc_array :
  ?name:string -> ?model:Cfc_base.Model.t -> width:int -> init:int -> t ->
  int -> Register.t array
(** [alloc_array t k]: registers named ["name[0]" … "name[k-1]"]. *)

val registers : t -> Register.t list
(** All allocated registers, in allocation order. *)

val size : t -> int
(** Number of registers allocated (the paper's space complexity). *)

val max_width : t -> int
(** The largest width allocated so far — an upper bound on the atomicity of
    any algorithm using only this arena; [0] for an empty arena.  Widths
    are additionally enforced on every write-class access: {!Register}
    raises a descriptive [Invalid_argument] when a stored value would
    exceed the register's declared width (so does the native backend). *)

val reset : t -> unit
(** Restore every register to its initial value. *)

val values : t -> int array
(** Snapshot of every register's current value (internal order, matching
    {!restore_values}).  O(registers); the checkpoint half of the model
    checker's undo machinery. *)

val restore_values : t -> int array -> unit
(** Write a {!values} snapshot back.  Raises [Invalid_argument] if the
    arena allocated registers since the snapshot was taken. *)

val dump : t -> string
(** One-line rendering of the current contents, for debugging. *)

val fingerprint : t -> int
(** A hash of the current register values (state pruning in the model
    checker). *)
