(** The effect-based process engine.

    An algorithm runs as a plain OCaml function; every shared-memory access
    performs an effect.  [start] installs a deep handler that reifies the
    function into a {!suspension}: the scheduler inspects the pending
    request, performs the semantic operation on the register, and resumes
    the one-shot continuation with the result.  This realizes the paper's
    interleaving semantics with one suspension point per atomic step. *)

type _ Effect.t +=
  | E_read : Register.t -> int Effect.t
  | E_write : Register.t * int -> unit Effect.t
  | E_write_field : Register.t * int * int * int -> unit Effect.t
  | E_xchg : Register.t * int -> int Effect.t
  | E_cas : Register.t * int * int -> bool Effect.t
  | E_bit_op : Register.t * Cfc_base.Ops.t -> int option Effect.t
  | E_region : Event.region -> unit Effect.t
  | E_pause : unit Effect.t
  | E_sleep : int -> unit Effect.t

exception Crashed
(** Raised inside a process to unwind it when the scheduler injects a
    fail-stop crash. *)

type suspension =
  | Done                    (** the process function returned *)
  | Failed of exn           (** the process raised (including {!Crashed}) *)
  | Read of Register.t * (int, suspension) Effect.Deep.continuation
  | Write of Register.t * int * (unit, suspension) Effect.Deep.continuation
  | Write_field of
      Register.t * int * int * int
      * (unit, suspension) Effect.Deep.continuation
  | Xchg of Register.t * int * (int, suspension) Effect.Deep.continuation
  | Cas of
      Register.t * int * int * (bool, suspension) Effect.Deep.continuation
  | Bit_op of
      Register.t * Cfc_base.Ops.t
      * (int option, suspension) Effect.Deep.continuation
  | Region of Event.region * (unit, suspension) Effect.Deep.continuation
  | Pause of (unit, suspension) Effect.Deep.continuation
  | Sleep of int * (unit, suspension) Effect.Deep.continuation
      (** like [Pause], but carries a requested delay in virtual ticks.
          {!Scheduler} treats it as a plain pause (one turn); {!Wheel}
          parks the process until the wheel clock reaches the wake tick. *)

val start : (unit -> unit) -> suspension
(** Run the function until its first suspension point (or completion). *)

val region : Event.region -> unit
(** Performs [E_region] — annotate the current process's protocol region.
    Harness code uses this around entry/critical/exit sections. *)

val decide : int -> unit
(** [decide v] = [region (Decided v)]. *)

val sleep : int -> unit
(** Performs [E_sleep d] — yield for [d] virtual ticks of think time.
    Free (no shared access is charged).  Under {!Scheduler} it behaves
    exactly like a single pause; under {!Wheel} the process leaves the
    active set until the wheel clock reaches [now + max 1 d]. *)
