(** The O(active-set) event-wheel scheduler.

    {!Scheduler} steps all [n] processes round-robin and is the right
    engine for adversarial interleavings at small [n]; this module is the
    large-[n] engine (ROADMAP item 2, FoundationDB-style deterministic
    simulation).  Three properties make a run cost proportional to the
    {e active set} instead of [n]:

    - a calendar queue (binary min-heap keyed by wake tick, FIFO within a
      tick) holds only processes that are runnable {e now} or parked on a
      {!Proc.sleep} timer — a process idling in its remainder section
      costs zero per turn;
    - per-process state is sparse (a hash table) and spawned lazily: a
      process materialises at its first {!wake}, so a solo run over an
      [n = 10^6] arena allocates one process record, not [10^6];
    - events are pushed to a {!sink} as they happen instead of being
      materialised in a {!Trace.t} — pair it with [Measures.Online] for
      O(active-set) memory, or with {!trace_sink} to keep full recording
      at small [n].

    Determinism: turns are totally ordered by [(wake tick, insertion
    sequence number)], so identical wake/sleep/fault inputs produce the
    identical event stream — same seed, same run.

    Faults follow {!Runner}'s convention: a {!Fault.point}'s [step] field
    counts {e turns} of the wheel, and all due faults are applied before
    each turn.  When the heap drains while fault points remain pending,
    the turn clock fast-forwards to the next fault (so a recover can
    still fire into an otherwise-quiescent system). *)

type status = Runnable | Halted | Crashed | Errored of exn

type sink = pid:int -> Event.body -> unit
(** Consumes events in emission order.  The wheel assigns no sequence
    numbers — a streaming consumer (e.g. [Measures.Online]) keeps its own
    counter, and {!trace_sink} lets {!Trace.record} assign them. *)

val null_sink : sink
val trace_sink : Trace.t -> sink
val tee : sink -> sink -> sink
(** [tee a b] feeds each event to [a] then [b]. *)

type t

val create :
  ?sink:sink ->
  ?faults:Fault.plan ->
  nprocs:int ->
  spawn:(int -> unit -> unit) ->
  unit -> t
(** [create ~nprocs ~spawn ()]: a wheel over pids [0..nprocs-1] where
    process [i] runs [spawn i] (called once, at the process's first
    {!wake} — lazy spawn).  [faults] is validated against [nprocs].
    Nothing runs until woken. *)

val wake : ?at:int -> t -> int -> unit
(** Queue a process to run at tick [at] (default: the current {!now}).
    Materialises its state if needed.  No-op if it is already queued,
    halted, errored, or crashed (a crashed process re-enters through the
    fault plan's recover point, which re-queues it).  Raises
    [Invalid_argument] if [at] is in the past or the pid out of range. *)

type stopped =
  | Quiescent     (** heap drained and no fault points pending *)
  | Out_of_turns  (** turn budget exhausted *)

val run : ?max_turns:int -> t -> stopped
(** Drive the wheel until quiescence or [max_turns] (default [max_int])
    turns.  One turn = one queued process popped and advanced by exactly
    one shared-memory access (absorbing free region changes and pauses at
    the {!Scheduler} granularity: a pause or a fresh sleep ends the
    turn). *)

(** {2 Queries} *)

val now : t -> int
(** Current virtual tick (the wake tick of the last popped entry). *)

val turns : t -> int
val nprocs : t -> int
val status : t -> int -> status
(** [Runnable] for a never-woken process, mirroring {!Scheduler}. *)

val region : t -> int -> Event.region
val steps_taken : t -> int -> int
val total_steps : t -> int
val spawned : t -> int
(** Number of process records materialised so far (≤ active set). *)

val live_peak : t -> int
(** High-water mark of the calendar queue: the most entries (runnable or
    timer-parked, possibly a few stale) ever simultaneously queued. *)

val first_error : t -> (int * exn) option
(** The first process error in turn order, if any (deterministic). *)
