type outcome = {
  memory : Memory.t;
  trace : Trace.t;
  scheduler : Scheduler.t;
  completed : bool;
  total_steps : int;
}

let first_error sched =
  let rec find pid =
    if pid >= Scheduler.nprocs sched then None
    else
      match Scheduler.status sched pid with
      | Scheduler.Errored e -> Some e
      | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed ->
        find (pid + 1)
  in
  find 0

let run_collect ?(max_steps = 1_000_000) ?(crash_at = []) ~memory ~pick procs =
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  let crash_at = List.sort compare crash_at in
  let pending_crashes = ref crash_at in
  let steps = ref 0 in
  let completed = ref false in
  let continue = ref true in
  while !continue do
    (match !pending_crashes with
    | (at, pid) :: rest when at <= !steps ->
      Scheduler.crash sched pid;
      pending_crashes := rest
    | _ -> ());
    if Scheduler.all_quiescent sched then begin
      completed := true;
      continue := false
    end
    else if !steps >= max_steps then continue := false
    else
      match pick sched with
      | None -> continue := false
      | Some pid -> (
        incr steps;
        match Scheduler.step sched pid with
        | Scheduler.Progress | Scheduler.Finished | Scheduler.Not_runnable ->
          ())
  done;
  let total_steps =
    let n = ref 0 in
    for pid = 0 to Scheduler.nprocs sched - 1 do
      n := !n + Scheduler.steps_taken sched pid
    done;
    !n
  in
  ( { memory; trace; scheduler = sched; completed = !completed; total_steps },
    first_error sched )

let run ?max_steps ?crash_at ~memory ~pick procs =
  let outcome, err = run_collect ?max_steps ?crash_at ~memory ~pick procs in
  match err with
  | None -> outcome
  | Some e ->
    invalid_arg
      (Printf.sprintf "Runner.run: a process errored: %s"
         (Printexc.to_string e))
