type stopped =
  | Quiescent
  | Out_of_steps
  | Picker_done

type outcome = {
  memory : Memory.t;
  trace : Trace.t;
  scheduler : Scheduler.t;
  completed : bool;
  stopped : stopped;
  total_steps : int;
}

exception Process_error of {
  pid : int;
  steps : int;
  error : exn;
  recent : Event.t list;
}

let () =
  Printexc.register_printer (function
    | Process_error { pid; steps; error; recent } ->
      Some
        (Format.asprintf
           "Runner.Process_error: p%d errored after %d steps: %s@\n\
            last events of p%d:@\n%a"
           pid steps (Printexc.to_string error) pid
           (Format.pp_print_list ~pp_sep:Format.pp_print_newline Event.pp)
           recent)
    | _ -> None)

let first_error sched =
  let rec find pid =
    if pid >= Scheduler.nprocs sched then None
    else
      match Scheduler.status sched pid with
      | Scheduler.Errored e -> Some (pid, e)
      | Scheduler.Runnable | Scheduler.Halted | Scheduler.Crashed ->
        find (pid + 1)
  in
  find 0

let run_collect ?(max_steps = 1_000_000) ?(crash_at = []) ?(faults = [])
    ~memory ~pick procs =
  let nprocs = Array.length procs in
  let plan = Fault.validate ~nprocs (Fault.of_crash_at crash_at @ faults) in
  let trace = Trace.create () in
  let sched = Scheduler.create ~memory ~trace procs in
  let pending = ref plan in
  let steps = ref 0 in
  let stopped = ref Quiescent in
  let continue = ref true in
  (* Apply every fault due at the current step count, in plan order.
     Afterwards any remaining pending fault is strictly in the future. *)
  let apply_due () =
    let rec go () =
      match !pending with
      | f :: rest when f.Fault.step <= !steps ->
        (match f.Fault.kind with
        | Fault.Crash -> Scheduler.crash sched f.Fault.pid
        | Fault.Recover -> Scheduler.recover sched f.Fault.pid);
        pending := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  while !continue do
    apply_due ();
    let fast_forward () =
      (* Nothing can run right now but fault points remain: jump the step
         clock to the next one so a pending recover can still fire.
         [apply_due] guarantees its step is strictly ahead, so this makes
         progress. *)
      match !pending with
      | [] -> None
      | f :: _ ->
        steps := max !steps f.Fault.step;
        Some ()
    in
    if Scheduler.all_quiescent sched then (
      match fast_forward () with
      | Some () -> ()
      | None ->
        stopped := Quiescent;
        continue := false)
    else if !steps >= max_steps then begin
      stopped := Out_of_steps;
      continue := false
    end
    else
      match pick sched with
      | None -> (
        match fast_forward () with
        | Some () -> ()
        | None ->
          stopped := Picker_done;
          continue := false)
      | Some pid -> (
        incr steps;
        match Scheduler.step sched pid with
        | Scheduler.Progress | Scheduler.Finished | Scheduler.Not_runnable ->
          ())
  done;
  let total_steps =
    let n = ref 0 in
    for pid = 0 to Scheduler.nprocs sched - 1 do
      n := !n + Scheduler.steps_taken sched pid
    done;
    !n
  in
  ( { memory; trace; scheduler = sched;
      completed = (!stopped = Quiescent); stopped = !stopped; total_steps },
    Option.map snd (first_error sched) )

let run ?max_steps ?crash_at ?faults ~memory ~pick procs =
  let outcome, _ = run_collect ?max_steps ?crash_at ?faults ~memory ~pick procs in
  match first_error outcome.scheduler with
  | None -> outcome
  | Some (pid, error) ->
    raise
      (Process_error
         { pid;
           steps = Scheduler.steps_taken outcome.scheduler pid;
           error;
           recent = Trace.last ~pid 5 outcome.trace })

(* ------------------------------------------------------------------ *)
(* Stall / error diagnosis                                            *)

type proc_report = {
  d_pid : int;
  d_status : Scheduler.status;
  d_region : Event.region;
  d_steps : int;
  d_recent : Event.t list;
}

let diagnose ?(recent = 5) out =
  let sched = out.scheduler in
  List.init (Scheduler.nprocs sched) (fun pid ->
      { d_pid = pid;
        d_status = Scheduler.status sched pid;
        d_region = Scheduler.region sched pid;
        d_steps = Scheduler.steps_taken sched pid;
        d_recent = Trace.last ~pid recent out.trace })

let pp_stopped ppf = function
  | Quiescent -> Format.pp_print_string ppf "quiescent"
  | Out_of_steps -> Format.pp_print_string ppf "step budget exhausted"
  | Picker_done -> Format.pp_print_string ppf "picker gave up"

let pp_status ppf = function
  | Scheduler.Runnable -> Format.pp_print_string ppf "runnable"
  | Scheduler.Halted -> Format.pp_print_string ppf "halted"
  | Scheduler.Crashed -> Format.pp_print_string ppf "crashed"
  | Scheduler.Errored e ->
    Format.fprintf ppf "errored (%s)" (Printexc.to_string e)

let pp_diagnosis ppf out =
  Format.fprintf ppf "run stopped: %a; %d total steps@\n" pp_stopped
    out.stopped out.total_steps;
  List.iter
    (fun d ->
      Format.fprintf ppf "p%d: %a, region %a, %d steps@\n" d.d_pid pp_status
        d.d_status Event.pp_region d.d_region d.d_steps;
      List.iter (fun e -> Format.fprintf ppf "    %a@\n" Event.pp e) d.d_recent)
    (diagnose out)
