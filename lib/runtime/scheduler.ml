type status = Runnable | Halted | Crashed | Errored of exn

type pstate = {
  pid : int;
  thunk : unit -> unit;
  mutable susp : Proc.suspension option; (* None until first scheduled *)
  mutable status : status;
  mutable region : Event.region;
  mutable steps : int;
}

type t = {
  trace : Trace.t;
  procs : pstate array;
  mutable active : int;  (* processes still Runnable *)
}

let create ~memory:_ ~trace thunks =
  let procs =
    Array.mapi
      (fun pid thunk ->
        { pid; thunk; susp = None; status = Runnable;
          region = Event.Remainder; steps = 0 })
      thunks
  in
  { trace; procs; active = Array.length procs }

let nprocs t = Array.length t.procs
let status t pid = t.procs.(pid).status
let region t pid = t.procs.(pid).region
let steps_taken t pid = t.procs.(pid).steps
let started t pid = t.procs.(pid).susp <> None

let runnable t =
  Array.to_list t.procs
  |> List.filter (fun p -> p.status = Runnable)
  |> List.map (fun p -> p.pid)

let all_quiescent t = t.active = 0

type step_result = Progress | Finished | Not_runnable

let record t p body = ignore (Trace.record t.trace ~pid:p.pid body)

let finish t p outcome =
  t.active <- t.active - 1;
  (match outcome with
  | `Halted ->
    p.status <- Halted;
    p.region <- Event.Halted;
    record t p (Event.Region_change Event.Halted)
  | `Errored e -> p.status <- Errored e);
  Finished

(* Advance [p] until one shared access has been performed (absorbing free
   region changes), or until a pause / completion. *)
let step t pid =
  let p = t.procs.(pid) in
  if p.status <> Runnable then Not_runnable
  else begin
    let current =
      match p.susp with
      | Some s -> s
      | None ->
        let s = Proc.start p.thunk in
        p.susp <- Some s;
        s
    in
    (* Store the post-access suspension.  Region changes are free local
       events: absorb them eagerly so a process's protocol region is
       always current at the end of the step that made it true (deferring
       them would create phantom occupancy windows that skew the §2.2
       fragment measures).  Completion is also finalized eagerly so
       quiescence is observable without another step. *)
    let rec settle s =
      p.susp <- Some s;
      match s with
      | Proc.Done -> finish t p `Halted
      | Proc.Failed e -> finish t p (`Errored e)
      | Proc.Region (r, k) ->
        p.region <- r;
        record t p (Event.Region_change r);
        settle (Effect.Deep.continue k ())
      | Proc.Read _ | Proc.Write _ | Proc.Write_field _ | Proc.Xchg _
      | Proc.Cas _ | Proc.Bit_op _ | Proc.Pause _ ->
        Progress
    in
    let rec go s =
      match s with
      | Proc.Done -> finish t p `Halted
      | Proc.Failed e -> finish t p (`Errored e)
      | Proc.Region (r, k) ->
        p.region <- r;
        record t p (Event.Region_change r);
        let s = Effect.Deep.continue k () in
        p.susp <- Some s;
        go s
      | Proc.Pause k -> settle (Effect.Deep.continue k ())
      | Proc.Read (r, k) -> begin
        match Register.read r with
        | v ->
          record t p (Event.Access (r, Event.A_read v));
          p.steps <- p.steps + 1;
          settle (Effect.Deep.continue k v)
        | exception e -> abort k e
      end
      | Proc.Write (r, v, k) -> begin
        match Register.write r v with
        | () ->
          record t p (Event.Access (r, Event.A_write v));
          p.steps <- p.steps + 1;
          settle (Effect.Deep.continue k ())
        | exception e -> abort k e
      end
      | Proc.Write_field (r, index, width, v, k) -> begin
        match Register.write_field r ~index ~width v with
        | () ->
          record t p (Event.Access (r, Event.A_field (index, width, v)));
          p.steps <- p.steps + 1;
          settle (Effect.Deep.continue k ())
        | exception e -> abort k e
      end
      | Proc.Xchg (r, v, k) -> begin
        match Register.fetch_and_store r v with
        | old ->
          record t p (Event.Access (r, Event.A_xchg (v, old)));
          p.steps <- p.steps + 1;
          settle (Effect.Deep.continue k old)
        | exception e -> abort k e
      end
      | Proc.Cas (r, expected, v, k) -> begin
        match Register.compare_and_set r ~expected v with
        | success ->
          record t p (Event.Access (r, Event.A_cas (expected, v, success)));
          p.steps <- p.steps + 1;
          settle (Effect.Deep.continue k success)
        | exception e -> abort k e
      end
      | Proc.Bit_op (r, op, k) -> begin
        match Register.bit_op r op with
        | ret ->
          record t p (Event.Access (r, Event.A_bit (op, ret)));
          p.steps <- p.steps + 1;
          settle (Effect.Deep.continue k ret)
        | exception e -> abort k e
      end
    and abort : type a. (a, Proc.suspension) Effect.Deep.continuation -> exn
        -> step_result =
     fun k e ->
      (* A semantic violation (model/width): unwind the process with the
         offending exception so its continuation is consumed, then record
         the error. *)
      let s = try Effect.Deep.discontinue k e with e' -> Proc.Failed e' in
      p.susp <- Some s;
      match s with
      | Proc.Failed e -> finish t p (`Errored e)
      | Proc.Done -> finish t p `Halted
      | Proc.Read _ | Proc.Write _ | Proc.Write_field _ | Proc.Xchg _
      | Proc.Cas _ | Proc.Bit_op _ | Proc.Region _ | Proc.Pause _ ->
        (* The process caught the exception and kept going. *)
        go s
    in
    go current
  end

let discontinue_susp s =
  match s with
  | Proc.Done | Proc.Failed _ -> ()
  | Proc.Read (_, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Write (_, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Write_field (_, _, _, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Xchg (_, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Cas (_, _, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Bit_op (_, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Region (_, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Pause k ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())

let crash t pid =
  let p = t.procs.(pid) in
  if p.status = Runnable then begin
    (match p.susp with Some s -> discontinue_susp s | None -> ());
    t.active <- t.active - 1;
    p.status <- Crashed;
    record t p Event.Crash
  end

let recover t pid =
  let p = t.procs.(pid) in
  if p.status = Crashed then begin
    (* Crash–recovery model: local state is lost (the consumed suspension
       is dropped, so the next [step] re-invokes the process thunk from
       the top), shared memory persists untouched.  The restarted process
       begins in Remainder, like a freshly created one. *)
    p.susp <- None;
    p.status <- Runnable;
    p.region <- Event.Remainder;
    t.active <- t.active + 1;
    record t p Event.Recover
  end
