type status = Runnable | Halted | Crashed | Errored of exn

type pstate = {
  pid : int;
  thunk : unit -> unit;
  mutable susp : Proc.suspension option;
      (* None when not yet started, or when the live continuation was
         invalidated by [restore] (rebuilt lazily at the next [step]) *)
  mutable status : status;
  mutable region : Event.region;
  mutable steps : int;
  mutable calls : int;
      (* access-or-pause effects answered since the last (re)start; pins
         the suspension point for observation replay *)
  mutable started : bool;
  mutable version : int;  (* clock stamp of the last mutation *)
}

type t = {
  trace : Trace.t;
  procs : pstate array;
  mutable active : int;  (* processes still Runnable *)
  mutable clock : int;
  oracle : (int -> Event.access_kind list) option;
      (* per-pid access kinds observed since its last (re)start, oldest
         first — the answers needed to rebuild an invalidated suspension *)
  mutable replay_safe : bool;
      (* false once a process catches a register-op exception and keeps
         going: that answer is not in the trace, so rebuilds would
         diverge.  Checked by the incremental explorer. *)
}

exception Replay_mismatch of string

let create ?oracle ~memory:_ ~trace thunks =
  let procs =
    Array.mapi
      (fun pid thunk ->
        { pid; thunk; susp = None; status = Runnable;
          region = Event.Remainder; steps = 0; calls = 0; started = false;
          version = 0 })
      thunks
  in
  { trace; procs; active = Array.length procs; clock = 0; oracle;
    replay_safe = true }

let nprocs t = Array.length t.procs
let status t pid = t.procs.(pid).status
let region t pid = t.procs.(pid).region
let steps_taken t pid = t.procs.(pid).steps
let started t pid = t.procs.(pid).started
let replay_safe t = t.replay_safe

let runnable t =
  let acc = ref [] in
  for pid = Array.length t.procs - 1 downto 0 do
    if t.procs.(pid).status = Runnable then acc := pid :: !acc
  done;
  !acc

let all_quiescent t = t.active = 0

type step_result = Progress | Finished | Not_runnable

let record t p body = ignore (Trace.record t.trace ~pid:p.pid body)

let bump t p =
  t.clock <- t.clock + 1;
  p.version <- t.clock

let finish t p outcome =
  t.active <- t.active - 1;
  (match outcome with
  | `Halted ->
    p.status <- Halted;
    p.region <- Event.Halted;
    record t p (Event.Region_change Event.Halted)
  | `Errored e -> p.status <- Errored e);
  Finished

(* Reconstruct the suspension of a process whose continuation was
   invalidated by [restore].  One-shot continuations cannot be cloned, so
   we restart the thunk and drive its (deterministic) effect stream,
   answering accesses from the recorded observations and pauses with [()],
   until exactly [p.calls] access-or-pause effects have been answered.
   Region effects are free and were already recorded before the
   checkpoint, so they are absorbed silently. *)
let rebuild t p =
  let oracle =
    match t.oracle with
    | Some f -> f
    | None ->
      invalid_arg
        "Scheduler.rebuild: no observation oracle (create with ~oracle \
         before using snapshot/restore)"
  in
  let answers = ref (oracle p.pid) in
  let remaining = ref p.calls in
  let mismatch what =
    raise (Replay_mismatch (Printf.sprintf "pid %d: %s" p.pid what))
  in
  let pop () =
    match !answers with
    | a :: tl ->
      answers := tl;
      a
    | [] -> mismatch "observation list exhausted"
  in
  let rec drive s =
    match s with
    | Proc.Region (_, k) -> drive (Effect.Deep.continue k ())
    | _ when !remaining = 0 -> s
    | Proc.Done | Proc.Failed _ -> mismatch "process terminated early"
    | Proc.Pause k | Proc.Sleep (_, k) ->
      decr remaining;
      drive (Effect.Deep.continue k ())
    | Proc.Read (_, k) -> begin
      decr remaining;
      match pop () with
      | Event.A_read v -> drive (Effect.Deep.continue k v)
      | _ -> mismatch "expected a read observation"
    end
    | Proc.Write (_, _, k) -> begin
      decr remaining;
      match pop () with
      | Event.A_write _ -> drive (Effect.Deep.continue k ())
      | _ -> mismatch "expected a write observation"
    end
    | Proc.Write_field (_, _, _, _, k) -> begin
      decr remaining;
      match pop () with
      | Event.A_field _ -> drive (Effect.Deep.continue k ())
      | _ -> mismatch "expected a field-write observation"
    end
    | Proc.Xchg (_, _, k) -> begin
      decr remaining;
      match pop () with
      | Event.A_xchg (_, old) -> drive (Effect.Deep.continue k old)
      | _ -> mismatch "expected an exchange observation"
    end
    | Proc.Cas (_, _, _, k) -> begin
      decr remaining;
      match pop () with
      | Event.A_cas (_, _, success) -> drive (Effect.Deep.continue k success)
      | _ -> mismatch "expected a compare-and-set observation"
    end
    | Proc.Bit_op (_, _, k) -> begin
      decr remaining;
      match pop () with
      | Event.A_bit (_, ret) -> drive (Effect.Deep.continue k ret)
      | _ -> mismatch "expected a bit-op observation"
    end
  in
  let s = drive (Proc.start p.thunk) in
  (match !answers with
  | [] -> ()
  | _ :: _ -> mismatch "unconsumed observations after replay");
  s

(* Advance [p] until one shared access has been performed (absorbing free
   region changes), or until a pause / completion. *)
let step t pid =
  let p = t.procs.(pid) in
  if p.status <> Runnable then Not_runnable
  else begin
    let current =
      match p.susp with
      | Some s -> s
      | None ->
        let s =
          if p.started then rebuild t p
          else begin
            p.started <- true;
            Proc.start p.thunk
          end
        in
        p.susp <- Some s;
        s
    in
    bump t p;
    (* Store the post-access suspension.  Region changes are free local
       events: absorb them eagerly so a process's protocol region is
       always current at the end of the step that made it true (deferring
       them would create phantom occupancy windows that skew the §2.2
       fragment measures).  Completion is also finalized eagerly so
       quiescence is observable without another step. *)
    let rec settle s =
      p.susp <- Some s;
      match s with
      | Proc.Done -> finish t p `Halted
      | Proc.Failed e -> finish t p (`Errored e)
      | Proc.Region (r, k) ->
        p.region <- r;
        record t p (Event.Region_change r);
        settle (Effect.Deep.continue k ())
      | Proc.Read _ | Proc.Write _ | Proc.Write_field _ | Proc.Xchg _
      | Proc.Cas _ | Proc.Bit_op _ | Proc.Pause _ | Proc.Sleep _ ->
        Progress
    in
    let rec go s =
      match s with
      | Proc.Done -> finish t p `Halted
      | Proc.Failed e -> finish t p (`Errored e)
      | Proc.Region (r, k) ->
        p.region <- r;
        record t p (Event.Region_change r);
        let s = Effect.Deep.continue k () in
        p.susp <- Some s;
        go s
      | Proc.Pause k | Proc.Sleep (_, k) ->
        (* The round-robin scheduler has no clock: a sleep degrades to a
           single pause (one turn of the picker). *)
        p.calls <- p.calls + 1;
        settle (Effect.Deep.continue k ())
      | Proc.Read (r, k) -> begin
        match Register.read r with
        | v ->
          record t p (Event.Access (r, Event.A_read v));
          p.steps <- p.steps + 1;
          p.calls <- p.calls + 1;
          settle (Effect.Deep.continue k v)
        | exception e -> abort k e
      end
      | Proc.Write (r, v, k) -> begin
        match Register.write r v with
        | () ->
          record t p (Event.Access (r, Event.A_write v));
          p.steps <- p.steps + 1;
          p.calls <- p.calls + 1;
          settle (Effect.Deep.continue k ())
        | exception e -> abort k e
      end
      | Proc.Write_field (r, index, width, v, k) -> begin
        match Register.write_field r ~index ~width v with
        | () ->
          record t p (Event.Access (r, Event.A_field (index, width, v)));
          p.steps <- p.steps + 1;
          p.calls <- p.calls + 1;
          settle (Effect.Deep.continue k ())
        | exception e -> abort k e
      end
      | Proc.Xchg (r, v, k) -> begin
        match Register.fetch_and_store r v with
        | old ->
          record t p (Event.Access (r, Event.A_xchg (v, old)));
          p.steps <- p.steps + 1;
          p.calls <- p.calls + 1;
          settle (Effect.Deep.continue k old)
        | exception e -> abort k e
      end
      | Proc.Cas (r, expected, v, k) -> begin
        match Register.compare_and_set r ~expected v with
        | success ->
          record t p (Event.Access (r, Event.A_cas (expected, v, success)));
          p.steps <- p.steps + 1;
          p.calls <- p.calls + 1;
          settle (Effect.Deep.continue k success)
        | exception e -> abort k e
      end
      | Proc.Bit_op (r, op, k) -> begin
        match Register.bit_op r op with
        | ret ->
          record t p (Event.Access (r, Event.A_bit (op, ret)));
          p.steps <- p.steps + 1;
          p.calls <- p.calls + 1;
          settle (Effect.Deep.continue k ret)
        | exception e -> abort k e
      end
    and abort : type a. (a, Proc.suspension) Effect.Deep.continuation -> exn
        -> step_result =
     fun k e ->
      (* A semantic violation (model/width): unwind the process with the
         offending exception so its continuation is consumed, then record
         the error. *)
      let s = try Effect.Deep.discontinue k e with e' -> Proc.Failed e' in
      p.susp <- Some s;
      match s with
      | Proc.Failed e -> finish t p (`Errored e)
      | Proc.Done -> finish t p `Halted
      | Proc.Read _ | Proc.Write _ | Proc.Write_field _ | Proc.Xchg _
      | Proc.Cas _ | Proc.Bit_op _ | Proc.Region _ | Proc.Pause _
      | Proc.Sleep _ ->
        (* The process caught the exception and kept going — that answer
           is invisible to observation replay, so rebuilds of this
           process would diverge. *)
        t.replay_safe <- false;
        go s
    in
    go current
  end

let discontinue_susp s =
  match s with
  | Proc.Done | Proc.Failed _ -> ()
  | Proc.Read (_, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Write (_, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Write_field (_, _, _, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Xchg (_, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Cas (_, _, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Bit_op (_, _, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Region (_, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Pause k ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())
  | Proc.Sleep (_, k) ->
    (try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> ())

let crash t pid =
  let p = t.procs.(pid) in
  if p.status = Runnable then begin
    (* A [None] suspension on a started process means its continuation
       was invalidated by [restore]; there is nothing live to unwind. *)
    (match p.susp with Some s -> discontinue_susp s | None -> ());
    p.susp <- None;
    t.active <- t.active - 1;
    p.status <- Crashed;
    bump t p;
    record t p Event.Crash
  end

let recover t pid =
  let p = t.procs.(pid) in
  if p.status = Crashed then begin
    (* Crash–recovery model: local state is lost (the consumed suspension
       is dropped, so the next [step] re-invokes the process thunk from
       the top), shared memory persists untouched.  The restarted process
       begins in Remainder, like a freshly created one. *)
    p.susp <- None;
    p.status <- Runnable;
    p.region <- Event.Remainder;
    p.calls <- 0;
    p.started <- false;
    t.active <- t.active + 1;
    bump t p;
    record t p Event.Recover
  end

type psnap = {
  s_status : status;
  s_region : Event.region;
  s_steps : int;
  s_calls : int;
  s_started : bool;
  s_version : int;
}

type snap = { s_active : int; s_procs : psnap array }

let snapshot t =
  { s_active = t.active;
    s_procs =
      Array.map
        (fun p ->
          { s_status = p.status; s_region = p.region; s_steps = p.steps;
            s_calls = p.calls; s_started = p.started; s_version = p.version })
        t.procs }

let restore t snap =
  if t.oracle = None then
    invalid_arg "Scheduler.restore: create with ~oracle to enable undo";
  t.active <- snap.s_active;
  Array.iteri
    (fun i ps ->
      let p = t.procs.(i) in
      (* Equal version stamps mean the process was not touched since the
         snapshot: its suspension is still the live, unconsumed one.
         Otherwise the continuation was consumed by the abandoned branch;
         drop it and rebuild lazily at the next [step]. *)
      if p.version <> ps.s_version then begin
        p.status <- ps.s_status;
        p.region <- ps.s_region;
        p.steps <- ps.s_steps;
        p.calls <- ps.s_calls;
        p.started <- ps.s_started;
        p.version <- ps.s_version;
        p.susp <- None
      end)
    snap.s_procs
