open Cfc_base

type _ Effect.t +=
  | E_read : Register.t -> int Effect.t
  | E_write : Register.t * int -> unit Effect.t
  | E_write_field : Register.t * int * int * int -> unit Effect.t
  | E_xchg : Register.t * int -> int Effect.t
  | E_cas : Register.t * int * int -> bool Effect.t
  | E_bit_op : Register.t * Ops.t -> int option Effect.t
  | E_region : Event.region -> unit Effect.t
  | E_pause : unit Effect.t
  | E_sleep : int -> unit Effect.t

exception Crashed

type suspension =
  | Done
  | Failed of exn
  | Read of Register.t * (int, suspension) Effect.Deep.continuation
  | Write of Register.t * int * (unit, suspension) Effect.Deep.continuation
  | Write_field of
      Register.t * int * int * int
      * (unit, suspension) Effect.Deep.continuation
  | Xchg of Register.t * int * (int, suspension) Effect.Deep.continuation
  | Cas of
      Register.t * int * int * (bool, suspension) Effect.Deep.continuation
  | Bit_op of
      Register.t * Ops.t * (int option, suspension) Effect.Deep.continuation
  | Region of Event.region * (unit, suspension) Effect.Deep.continuation
  | Pause of (unit, suspension) Effect.Deep.continuation
  | Sleep of int * (unit, suspension) Effect.Deep.continuation

let handler : (unit, suspension) Effect.Deep.handler =
  {
    retc = (fun () -> Done);
    exnc = (fun e -> Failed e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_read r ->
          Some
            (fun (k : (a, suspension) Effect.Deep.continuation) -> Read (r, k))
        | E_write (r, v) ->
          Some (fun (k : (a, suspension) Effect.Deep.continuation) ->
              Write (r, v, k))
        | E_write_field (r, index, width, v) ->
          Some (fun (k : (a, suspension) Effect.Deep.continuation) ->
              Write_field (r, index, width, v, k))
        | E_xchg (r, v) ->
          Some (fun (k : (a, suspension) Effect.Deep.continuation) ->
              Xchg (r, v, k))
        | E_cas (r, expected, v) ->
          Some (fun (k : (a, suspension) Effect.Deep.continuation) ->
              Cas (r, expected, v, k))
        | E_bit_op (r, op) ->
          Some (fun (k : (a, suspension) Effect.Deep.continuation) ->
              Bit_op (r, op, k))
        | E_region reg ->
          Some (fun (k : (a, suspension) Effect.Deep.continuation) ->
              Region (reg, k))
        | E_pause ->
          Some
            (fun (k : (a, suspension) Effect.Deep.continuation) -> Pause k)
        | E_sleep d ->
          Some (fun (k : (a, suspension) Effect.Deep.continuation) ->
              Sleep (d, k))
        | _ -> None);
  }

let start f = Effect.Deep.match_with f () handler

let region r = Effect.perform (E_region r)
let decide v = region (Event.Decided v)
let sleep d = Effect.perform (E_sleep d)
