type status = Runnable | Halted | Crashed | Errored of exn

type sink = pid:int -> Event.body -> unit

let null_sink ~pid:_ _ = ()
let trace_sink trace ~pid body = ignore (Trace.record trace ~pid body)
let tee a b ~pid body = a ~pid body; b ~pid body

type pstate = {
  pid : int;
  thunk : unit -> unit;
  mutable susp : Proc.suspension option;
  mutable status : status;
  mutable region : Event.region;
  mutable steps : int;
  mutable epoch : int;
      (* bumped on crash: queued heap entries carry the epoch they were
         pushed under, so a crash invalidates them in O(1) and the stale
         entries are dropped when popped *)
  mutable queued : bool;
}

(* Calendar-queue entry.  [e_seq] is a global insertion counter: the heap
   order is (tick, insertion order), i.e. FIFO within a tick, which makes
   the whole run deterministic in its inputs. *)
type entry = { e_tick : int; e_seq : int; e_pid : int; e_epoch : int }

type t = {
  sink : sink;
  spawn : int -> unit -> unit;
  nprocs : int;
  procs : (int, pstate) Hashtbl.t;
  mutable heap : entry array;
  mutable hlen : int;
  mutable hseq : int;
  mutable now : int;
  mutable turns : int;
  mutable pending : Fault.plan;
  mutable first_error : (int * exn) option;
  mutable live_peak : int;
}

let dummy_entry = { e_tick = 0; e_seq = 0; e_pid = 0; e_epoch = 0 }

let create ?(sink = null_sink) ?(faults = []) ~nprocs ~spawn () =
  { sink; spawn; nprocs;
    procs = Hashtbl.create 64;
    heap = Array.make 64 dummy_entry;
    hlen = 0; hseq = 0; now = 0; turns = 0;
    pending = Fault.validate ~nprocs faults;
    first_error = None; live_peak = 0 }

(* ------------------------------------------------------------------ *)
(* Binary min-heap on (tick, insertion seq)                            *)

let entry_less a b =
  a.e_tick < b.e_tick || (a.e_tick = b.e_tick && a.e_seq < b.e_seq)

let heap_push t e =
  if t.hlen = Array.length t.heap then begin
    let bigger = Array.make (2 * t.hlen) dummy_entry in
    Array.blit t.heap 0 bigger 0 t.hlen;
    t.heap <- bigger
  end;
  let i = ref t.hlen in
  t.heap.(!i) <- e;
  t.hlen <- t.hlen + 1;
  if t.hlen > t.live_peak then t.live_peak <- t.hlen;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_less t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let heap_pop t =
  if t.hlen = 0 then None
  else begin
    let top = t.heap.(0) in
    t.hlen <- t.hlen - 1;
    if t.hlen > 0 then begin
      t.heap.(0) <- t.heap.(t.hlen);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.hlen && entry_less t.heap.(l) t.heap.(!smallest) then
          smallest := l;
        if r < t.hlen && entry_less t.heap.(r) t.heap.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end

(* ------------------------------------------------------------------ *)
(* Process state                                                       *)

let materialize t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None ->
    if pid < 0 || pid >= t.nprocs then invalid_arg "Wheel: pid out of range";
    let p =
      { pid; thunk = t.spawn pid; susp = None; status = Runnable;
        region = Event.Remainder; steps = 0; epoch = 0; queued = false }
    in
    Hashtbl.replace t.procs pid p;
    p

let emit t p body = t.sink ~pid:p.pid body

let push t ~tick p =
  if not p.queued then begin
    p.queued <- true;
    heap_push t
      { e_tick = tick; e_seq = t.hseq; e_pid = p.pid; e_epoch = p.epoch };
    t.hseq <- t.hseq + 1
  end

let wake ?at t pid =
  let p = materialize t pid in
  let tick = match at with None -> t.now | Some a -> a in
  if tick < t.now then invalid_arg "Wheel.wake: tick in the past";
  match p.status with
  | Runnable -> push t ~tick p
  | Halted | Crashed | Errored _ -> ()

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)

let discontinue_susp s =
  let kill k = try ignore (Effect.Deep.discontinue k Proc.Crashed) with _ -> () in
  match s with
  | Proc.Done | Proc.Failed _ -> ()
  | Proc.Read (_, k) -> kill k
  | Proc.Write (_, _, k) -> kill k
  | Proc.Write_field (_, _, _, _, k) -> kill k
  | Proc.Xchg (_, _, k) -> kill k
  | Proc.Cas (_, _, _, k) -> kill k
  | Proc.Bit_op (_, _, k) -> kill k
  | Proc.Region (_, k) -> kill k
  | Proc.Pause k -> kill k
  | Proc.Sleep (_, k) -> kill k

let crash t pid =
  let p = materialize t pid in
  if p.status = Runnable then begin
    (match p.susp with Some s -> discontinue_susp s | None -> ());
    p.susp <- None;
    p.status <- Crashed;
    (* Invalidate any queued entry rather than searching the heap: stale
       epochs are skipped at pop time. *)
    p.epoch <- p.epoch + 1;
    p.queued <- false;
    emit t p Event.Crash
  end

let recover t pid =
  let p = materialize t pid in
  if p.status = Crashed then begin
    (* Golab–Ramaraju: local state lost, shared memory persists; the
       restarted incarnation re-runs the thunk from the top, starting in
       Remainder.  It re-enters the wheel immediately at the current
       tick. *)
    p.susp <- None;
    p.status <- Runnable;
    p.region <- Event.Remainder;
    emit t p Event.Recover;
    push t ~tick:t.now p
  end

let apply_due t =
  let rec go () =
    match t.pending with
    | f :: rest when f.Fault.step <= t.turns ->
      (match f.Fault.kind with
      | Fault.Crash -> crash t f.Fault.pid
      | Fault.Recover -> recover t f.Fault.pid);
      t.pending <- rest;
      go ()
    | _ -> ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The turn engine (mirrors Scheduler.step's settle/go split)          *)

let record_error t p e =
  p.status <- Errored e;
  match t.first_error with
  | Some _ -> ()
  | None -> t.first_error <- Some (p.pid, e)

let finish t p outcome =
  match outcome with
  | `Halted ->
    p.status <- Halted;
    p.region <- Event.Halted;
    emit t p (Event.Region_change Event.Halted)
  | `Errored e -> record_error t p e

(* Park the post-access suspension: absorb free region changes eagerly
   (same reasoning as Scheduler.step's settle — deferred region changes
   would skew the §2.2 occupancy windows), park sleeps on their timer,
   and everything else at the very next tick. *)
let rec settle t p s =
  p.susp <- Some s;
  match s with
  | Proc.Done -> finish t p `Halted
  | Proc.Failed e -> finish t p (`Errored e)
  | Proc.Region (r, k) ->
    p.region <- r;
    emit t p (Event.Region_change r);
    settle t p (Effect.Deep.continue k ())
  | Proc.Sleep (d, _) -> push t ~tick:(t.now + max 1 d) p
  | Proc.Read _ | Proc.Write _ | Proc.Write_field _ | Proc.Xchg _
  | Proc.Cas _ | Proc.Bit_op _ | Proc.Pause _ ->
    push t ~tick:(t.now + 1) p

(* Advance one turn: perform at most one shared access, then park. *)
let rec exec t p s =
  match s with
  | Proc.Done -> finish t p `Halted
  | Proc.Failed e -> finish t p (`Errored e)
  | Proc.Region (r, k) ->
    p.region <- r;
    emit t p (Event.Region_change r);
    exec t p (Effect.Deep.continue k ())
  | Proc.Sleep (d, _) ->
    (* A fresh sleep ends the turn; the process leaves the active set
       until the wheel clock reaches the wake tick. *)
    p.susp <- Some s;
    push t ~tick:(t.now + max 1 d) p
  | Proc.Pause k ->
    (* A pause ends the turn at the next suspension point, exactly like
       Scheduler.step: one pause = one turn. *)
    settle t p (Effect.Deep.continue k ())
  | Proc.Read (r, k) -> begin
    match Register.read r with
    | v ->
      emit t p (Event.Access (r, Event.A_read v));
      p.steps <- p.steps + 1;
      settle t p (Effect.Deep.continue k v)
    | exception e -> abort t p k e
  end
  | Proc.Write (r, v, k) -> begin
    match Register.write r v with
    | () ->
      emit t p (Event.Access (r, Event.A_write v));
      p.steps <- p.steps + 1;
      settle t p (Effect.Deep.continue k ())
    | exception e -> abort t p k e
  end
  | Proc.Write_field (r, index, width, v, k) -> begin
    match Register.write_field r ~index ~width v with
    | () ->
      emit t p (Event.Access (r, Event.A_field (index, width, v)));
      p.steps <- p.steps + 1;
      settle t p (Effect.Deep.continue k ())
    | exception e -> abort t p k e
  end
  | Proc.Xchg (r, v, k) -> begin
    match Register.fetch_and_store r v with
    | old ->
      emit t p (Event.Access (r, Event.A_xchg (v, old)));
      p.steps <- p.steps + 1;
      settle t p (Effect.Deep.continue k old)
    | exception e -> abort t p k e
  end
  | Proc.Cas (r, expected, v, k) -> begin
    match Register.compare_and_set r ~expected v with
    | success ->
      emit t p (Event.Access (r, Event.A_cas (expected, v, success)));
      p.steps <- p.steps + 1;
      settle t p (Effect.Deep.continue k success)
    | exception e -> abort t p k e
  end
  | Proc.Bit_op (r, op, k) -> begin
    match Register.bit_op r op with
    | ret ->
      emit t p (Event.Access (r, Event.A_bit (op, ret)));
      p.steps <- p.steps + 1;
      settle t p (Effect.Deep.continue k ret)
    | exception e -> abort t p k e
  end

and abort : type a.
    t -> pstate -> (a, Proc.suspension) Effect.Deep.continuation -> exn -> unit
    =
 fun t p k e ->
  (* Semantic violation (model/width): unwind the process with the
     offending exception so the one-shot continuation is consumed.  If
     the process catches it and keeps going, it is simply parked at its
     next suspension point (the wheel has no observation-replay machinery
     to protect, unlike Scheduler). *)
  let s = try Effect.Deep.discontinue k e with e' -> Proc.Failed e' in
  settle t p s

let turn t p =
  match p.susp with
  | Some (Proc.Sleep (_, k)) ->
    (* Popped at its wake tick: the timer expired; resume through the
       sleep and run on to the next access. *)
    p.susp <- None;
    exec t p (Effect.Deep.continue k ())
  | Some s ->
    p.susp <- None;
    exec t p s
  | None ->
    (* First activation, or first turn after a recover: run the thunk
       from the top. *)
    exec t p (Proc.start p.thunk)

type stopped = Quiescent | Out_of_turns

let run ?(max_turns = max_int) t =
  let result = ref None in
  while !result = None do
    apply_due t;
    if t.turns >= max_turns then result := Some Out_of_turns
    else begin
      (* Pop the next valid entry, dropping stale ones (crashed since
         they were queued: epoch mismatch). *)
      let rec next () =
        match heap_pop t with
        | None -> None
        | Some e -> (
          match Hashtbl.find_opt t.procs e.e_pid with
          | Some p
            when p.epoch = e.e_epoch && p.queued && p.status = Runnable ->
            p.queued <- false;
            Some (e, p)
          | Some _ | None -> next ())
      in
      match next () with
      | Some (e, p) ->
        if e.e_tick > t.now then t.now <- e.e_tick;
        t.turns <- t.turns + 1;
        turn t p
      | None -> (
        (* Heap drained.  Pending faults keep the run alive: jump the
           turn clock so the next fault (typically a recover) fires. *)
        match t.pending with
        | [] -> result := Some Quiescent
        | f :: _ -> t.turns <- max t.turns f.Fault.step)
    end
  done;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let now t = t.now
let turns t = t.turns
let nprocs t = t.nprocs

let status t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p.status
  | None -> Runnable

let region t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p.region
  | None -> Event.Remainder

let steps_taken t pid =
  match Hashtbl.find_opt t.procs pid with Some p -> p.steps | None -> 0

let total_steps t = Hashtbl.fold (fun _ p acc -> acc + p.steps) t.procs 0
let spawned t = Hashtbl.length t.procs
let live_peak t = t.live_peak
let first_error t = t.first_error
